// Failure-injection / fuzz-style tests: every parser and executor must
// return an error Status (never crash, hang, or corrupt memory) on
// arbitrary malformed input, including adversarially nested programs.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "arith/executor.h"
#include "arith/parser.h"
#include "gen/serialize.h"
#include "ir/ir.h"
#include "logic/executor.h"
#include "logic/parser.h"
#include "net/frame.h"
#include "program/template.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "store/codec.h"
#include "store/columnar.h"
#include "store/wal.h"
#include "table/table.h"
#include "tests/test_util.h"

namespace uctr {
namespace {

/// Random byte soup biased toward the grammar's special characters so the
/// fuzz inputs reach deep parser states.
std::string RandomGarbage(Rng* rng, size_t max_len) {
  static const char kAlphabet[] =
      "{};,()[]'\"<>=!#@. abcdefgSELECT FROM WHERE eq hop count all_rows "
      "filter_ subtract divide 0123456789-";
  size_t len = rng->Index(max_len) + 1;
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->Index(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam() * 7919 + 17};
};

TEST_P(FuzzTest, SqlParserNeverCrashes) {
  Table t = testing::MakeNationsTable();
  for (int i = 0; i < 300; ++i) {
    std::string input = RandomGarbage(&rng_, 120);
    auto parsed = sql::Parse(input);
    if (parsed.ok()) {
      // Whatever parsed must also execute or fail cleanly.
      (void)sql::Execute(parsed.ValueOrDie(), t);
    }
  }
}

TEST_P(FuzzTest, LogicParserNeverCrashes) {
  Table t = testing::MakeNationsTable();
  for (int i = 0; i < 300; ++i) {
    std::string input = RandomGarbage(&rng_, 120);
    auto parsed = logic::Parse(input);
    if (parsed.ok()) {
      (void)logic::Execute(*parsed.ValueOrDie(), t);
    }
  }
}

TEST_P(FuzzTest, ArithParserNeverCrashes) {
  Table t = testing::MakeNationsTable();
  for (int i = 0; i < 300; ++i) {
    std::string input = RandomGarbage(&rng_, 120);
    auto parsed = arith::Parse(input);
    if (parsed.ok()) {
      (void)arith::Execute(parsed.ValueOrDie(), t);
    }
  }
}

TEST_P(FuzzTest, CsvParserNeverCrashes) {
  for (int i = 0; i < 300; ++i) {
    (void)Table::FromCsv(RandomGarbage(&rng_, 200));
  }
}

TEST_P(FuzzTest, JsonReaderNeverCrashes) {
  for (int i = 0; i < 300; ++i) {
    (void)SampleFromJson(RandomGarbage(&rng_, 200));
  }
}

TEST_P(FuzzTest, TemplatePatternsNeverCrash) {
  for (int i = 0; i < 200; ++i) {
    (void)ProgramTemplate::Make(ProgramType::kLogicalForm,
                                RandomGarbage(&rng_, 120));
  }
}

TEST_P(FuzzTest, FrameDecoderNeverCrashes) {
  // Random byte soup fed in random-size chunks: the decoder may poison or
  // produce frames, but must never crash, hang, or over-buffer.
  for (int round = 0; round < 50; ++round) {
    net::FrameDecoder decoder(4096);
    std::string stream = RandomGarbage(&rng_, 2000);
    size_t off = 0;
    std::string payload;
    while (off < stream.size()) {
      size_t chunk = rng_.Index(64) + 1;
      if (chunk > stream.size() - off) chunk = stream.size() - off;
      (void)decoder.Feed(stream.data() + off, chunk);
      off += chunk;
      while (decoder.Next(&payload)) {
        EXPECT_LE(payload.size(), 4096u);
      }
    }
  }
}

TEST_P(FuzzTest, FrameRoundTripSurvivesTornDelivery) {
  // Encode real frames, deliver them torn at random boundaries, and
  // require every payload back intact and in order.
  for (int round = 0; round < 20; ++round) {
    std::vector<std::string> payloads;
    std::string stream;
    size_t count = rng_.Index(20) + 1;
    for (size_t i = 0; i < count; ++i) {
      payloads.push_back(RandomGarbage(&rng_, 300));
      stream += net::EncodeFrame(payloads.back()).ValueOrDie();
    }
    net::FrameDecoder decoder;
    size_t off = 0, popped = 0;
    std::string payload;
    while (off < stream.size()) {
      size_t chunk = rng_.Index(97) + 1;
      if (chunk > stream.size() - off) chunk = stream.size() - off;
      ASSERT_TRUE(decoder.Feed(stream.data() + off, chunk).ok());
      off += chunk;
      while (decoder.Next(&payload)) {
        ASSERT_LT(popped, payloads.size());
        EXPECT_EQ(payload, payloads[popped]);
        ++popped;
      }
    }
    EXPECT_EQ(popped, payloads.size());
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST_P(FuzzTest, TableCodecNeverCrashesOnGarbage) {
  // Random byte soup through the table codec: decode must return an error
  // Status (or, vanishingly unlikely, a usable table), never crash.
  for (int i = 0; i < 300; ++i) {
    auto decoded = store::Codec::Decode(RandomGarbage(&rng_, 400));
    if (decoded.ok()) (void)decoded->ToTable();
  }
}

TEST_P(FuzzTest, TableCodecSurvivesTornFrameDelivery) {
  // A registered table shipped as a framed payload, delivered torn at
  // random boundaries: reassembly must reproduce the exact codec bytes,
  // so the fingerprint — and therefore the registry identity — is stable
  // across the wire.
  std::string encoded = store::Codec::Encode(
      store::ColumnarTable::FromTable(testing::MakeFinanceTable()));
  std::string fingerprint = store::Codec::Fingerprint(encoded);
  for (int round = 0; round < 20; ++round) {
    std::string stream = net::EncodeFrame(encoded).ValueOrDie();
    net::FrameDecoder decoder;
    size_t off = 0;
    std::string payload, reassembled;
    while (off < stream.size()) {
      size_t chunk = rng_.Index(97) + 1;
      if (chunk > stream.size() - off) chunk = stream.size() - off;
      ASSERT_TRUE(decoder.Feed(stream.data() + off, chunk).ok());
      off += chunk;
      while (decoder.Next(&payload)) reassembled = payload;
    }
    ASSERT_EQ(reassembled, encoded);
    EXPECT_EQ(store::Codec::Fingerprint(reassembled), fingerprint);
    ASSERT_TRUE(store::Codec::Decode(reassembled).ok());
  }
}

TEST_P(FuzzTest, TableCodecRejectsBitFlippedFrames) {
  // Corruption introduced mid-flight must surface as a decode error, not
  // a silently different table.
  std::string encoded = store::Codec::Encode(
      store::ColumnarTable::FromTable(testing::MakeNationsTable()));
  for (int i = 0; i < 100; ++i) {
    std::string corrupt = encoded;
    size_t byte = rng_.Index(corrupt.size());
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1u << rng_.Index(8)));
    EXPECT_FALSE(store::Codec::Decode(corrupt).ok())
        << "bit flip at byte " << byte;
  }
}

// ---- WAL recovery (store::Wal::Scan / TruncateTo) ----
//
// The durable store's crash-recovery loop runs Scan over whatever bytes a
// dead process left behind. The matrix below feeds it byte soup, torn
// logs, and bit-flipped logs: Scan must never crash, never deliver a
// payload that was not appended (the checksum gate), and always leave a
// TruncateTo-repairable file behind.

/// Writes `bytes` to a per-seed scratch path and returns the path.
std::string WriteWalScratch(uint64_t seed, const std::string& bytes) {
  std::string path = (std::filesystem::temp_directory_path() /
                      ("uctr_fuzz_wal_" + std::to_string(seed) + "_" +
                       std::to_string(::getpid()) + ".log"))
                         .string();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path;
}

TEST_P(FuzzTest, WalScanNeverCrashesOnGarbage) {
  for (int i = 0; i < 50; ++i) {
    std::string path =
        WriteWalScratch(GetParam(), RandomGarbage(&rng_, 4096));
    size_t records = 0;
    auto valid =
        store::Wal::Scan(path, [&](uint64_t, std::string) { ++records; });
    ASSERT_TRUE(valid.ok());
    // Garbage almost never frames a valid record; whatever the scan
    // declares valid must be truncatable and then scan cleanly.
    ASSERT_TRUE(store::Wal::TruncateTo(path, *valid).ok());
    auto again =
        store::Wal::Scan(path, [&](uint64_t, std::string) {});
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, *valid);
    std::filesystem::remove(path);
  }
}

TEST_P(FuzzTest, WalScanSurvivesTornAndBitFlippedLogs) {
  // A healthy multi-record log, then random damage: any delivered payload
  // must be one of the appended ones (checksums catch the flips), and the
  // repaired file must append + rescan cleanly — the exact sequence
  // DurableStore::Recover performs after a crash.
  std::vector<std::string> payloads;
  std::string log;
  for (int i = 0; i < 6; ++i) {
    payloads.push_back(RandomGarbage(&rng_, 200));
    log += store::Wal::EncodeRecord(payloads.back());
  }
  for (int round = 0; round < 40; ++round) {
    std::string damaged = log.substr(0, rng_.Index(log.size() + 1));
    if (!damaged.empty() && rng_.Index(2) == 0) {
      size_t byte = rng_.Index(damaged.size());
      damaged[byte] =
          static_cast<char>(damaged[byte] ^ (1u << rng_.Index(8)));
    }
    std::string path = WriteWalScratch(GetParam(), damaged);
    std::vector<std::string> delivered;
    auto valid = store::Wal::Scan(path, [&](uint64_t, std::string payload) {
      delivered.push_back(std::move(payload));
    });
    ASSERT_TRUE(valid.ok());
    EXPECT_LE(*valid, damaged.size());
    for (const std::string& payload : delivered) {
      EXPECT_NE(std::find(payloads.begin(), payloads.end(), payload),
                payloads.end())
          << "scan fabricated a payload that was never appended";
    }
    ASSERT_TRUE(store::Wal::TruncateTo(path, *valid).ok());
    {
      store::Wal::Options options;
      options.fsync = store::FsyncMode::kNever;
      store::Wal wal = store::Wal::Open(path, options).ValueOrDie();
      ASSERT_TRUE(wal.Append("post-repair").ok());
    }
    size_t after = 0;
    std::string last;
    auto revalid =
        store::Wal::Scan(path, [&](uint64_t, std::string payload) {
          ++after;
          last = std::move(payload);
        });
    ASSERT_TRUE(revalid.ok());
    EXPECT_EQ(last, "post-repair");  // the new record lands intact
    std::filesystem::remove(path);
  }
}

// ---- Compiled-plan bytecode (ir::DecodePlan / ir::VerifyPlan) ----
//
// DecodePlan is a total function over arbitrary bytes: every input yields
// either an error Status or a *verified* plan that executes without
// crashing (ASan/UBSan prove no OOB on the mutated inputs below).

std::vector<ir::Plan> FuzzSeedPlans() {
  Table nations = testing::MakeNationsTable();
  Table finance = testing::MakeFinanceTable();
  const struct {
    ir::Family family;
    const Table* table;
    const char* text;
  } kSeeds[] = {
      {ir::Family::kSql, &nations,
       "SELECT [nation], [gold] FROM w WHERE [total] > '10' "
       "ORDER BY [gold] DESC LIMIT 3"},
      {ir::Family::kLogic, &nations,
       "and { most_greater { all_rows ; total ; 10 } ; eq { hop { "
       "nth_argmax { all_rows ; gold ; 2 } ; nation } ; china } }"},
      {ir::Family::kArith, &finance,
       "subtract([2019 of revenue], [2018 of revenue]), "
       "divide(#0, [2018 of revenue])"},
  };
  std::vector<ir::Plan> plans;
  for (const auto& seed : kSeeds) {
    plans.push_back(
        ir::Compile(seed.family, seed.text, seed.table->schema())
            .ValueOrDie());
  }
  return plans;
}

TEST_P(FuzzTest, PlanDecoderNeverCrashesOnGarbage) {
  Table t = testing::MakeNationsTable();
  for (int i = 0; i < 300; ++i) {
    // Raw (un-biased) byte soup: the codec sees binary, not grammar text.
    size_t len = rng_.Index(500);
    std::string bytes(len, '\0');
    for (char& c : bytes) c = static_cast<char>(rng_.Index(256));
    auto decoded = ir::DecodePlan(bytes);
    if (decoded.ok()) {
      // Anything decode accepts must verify and execute safely.
      ASSERT_TRUE(ir::VerifyPlan(decoded.ValueOrDie()).ok());
      (void)ir::ExecutePlan(decoded.ValueOrDie(), t);
    }
  }
}

TEST_P(FuzzTest, PlanDecoderRejectsTruncationAndBitFlips) {
  for (const ir::Plan& plan : FuzzSeedPlans()) {
    std::string bytes = ir::EncodePlan(plan);
    for (int i = 0; i < 100; ++i) {
      std::string_view truncated(bytes.data(), rng_.Index(bytes.size()));
      EXPECT_FALSE(ir::DecodePlan(truncated).ok());
      std::string flipped = bytes;
      size_t byte = rng_.Index(flipped.size());
      flipped[byte] =
          static_cast<char>(flipped[byte] ^ (1u << rng_.Index(8)));
      // A flip in the body breaks the checksum; a flip in the trailing
      // checksum itself mismatches the (intact) body. Either way: error.
      EXPECT_FALSE(ir::DecodePlan(flipped).ok()) << "flip at " << byte;
    }
  }
}

TEST_P(FuzzTest, PlanVerifierStopsChecksumRepairedMutations) {
  // The adversarial case: corrupt the body, then re-stamp a valid
  // checksum so decode reaches the structural layer. VerifyPlan is the
  // last line of defense — whatever it admits must execute as a clean
  // Status or value on real tables, never a crash or OOB read.
  Table nations = testing::MakeNationsTable();
  Table finance = testing::MakeFinanceTable();
  for (const ir::Plan& plan : FuzzSeedPlans()) {
    std::string bytes = ir::EncodePlan(plan);
    for (int i = 0; i < 400; ++i) {
      std::string mutated = bytes;
      // 1-4 byte flips anywhere in the body (ill-typed ops, bad register
      // fields, wild column/pool/aux indices, inflated counts...).
      size_t flips = rng_.Index(4) + 1;
      for (size_t f = 0; f < flips; ++f) {
        size_t byte = rng_.Index(mutated.size() - 8);
        mutated[byte] =
            static_cast<char>(mutated[byte] ^ (1u << rng_.Index(8)));
      }
      uint64_t sum = ir::Fnv1a(mutated.data(), mutated.size() - 8);
      for (int b = 0; b < 8; ++b) {
        mutated[mutated.size() - 8 + b] =
            static_cast<char>((sum >> (8 * b)) & 0xFF);
      }
      auto decoded = ir::DecodePlan(mutated);
      if (!decoded.ok()) continue;  // Rejected: exactly what we want.
      ASSERT_TRUE(ir::VerifyPlan(decoded.ValueOrDie()).ok());
      (void)ir::ExecutePlan(decoded.ValueOrDie(), nations);
      (void)ir::ExecutePlan(decoded.ValueOrDie(), finance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(0, 8));

// --------------------------------------------------- adversarial nesting

TEST(AdversarialTest, DeeplyNestedLogicalFormRejected) {
  std::string bomb;
  for (int i = 0; i < 100000; ++i) bomb += "a { ";
  auto r = logic::Parse(bomb);
  EXPECT_FALSE(r.ok());  // depth guard, not a stack overflow
}

TEST(AdversarialTest, DeeplyNestedJsonRejected) {
  std::string bomb(100000, '[');
  EXPECT_FALSE(SampleFromJson(bomb).ok());
}

TEST(AdversarialTest, HugeFlatLogicalFormStillParses) {
  // Breadth (many siblings) is fine; only depth is bounded.
  std::string wide = "and { eq { 1 ; 1 } ; eq { 1 ; 1 } }";
  EXPECT_TRUE(logic::Parse(wide).ok());
  std::string deep_ok = "eq { count { filter_eq { filter_greater { "
                        "filter_less { all_rows ; a ; 1 } ; b ; 2 } ; c ; 3 "
                        "} } ; 4 }";
  EXPECT_TRUE(logic::Parse(deep_ok).ok());
}

TEST(AdversarialTest, SqlWithManyConditionsParses) {
  std::string query = "SELECT nation FROM w WHERE gold = '1'";
  for (int i = 0; i < 500; ++i) query += " AND gold = '1'";
  EXPECT_TRUE(sql::Parse(query).ok());  // WHERE is iterative, not recursive
}

TEST(AdversarialTest, ArithWithManySteps) {
  std::string program = "add(1, 2)";
  for (int i = 0; i < 500; ++i) {
    program += ", add(#" + std::to_string(i) + ", 1)";
  }
  auto parsed = arith::Parse(program);
  ASSERT_TRUE(parsed.ok());
  Table t = testing::MakeNationsTable();
  EXPECT_DOUBLE_EQ(arith::Execute(parsed.ValueOrDie(), t)->scalar().number(),
                   503.0);
}

}  // namespace
}  // namespace uctr
