// Property-based tests of the SQL executor: for randomly generated tables
// and queries, the executor's output must agree with direct recomputation
// from the table, and parsing must round-trip through ToString.

#include <gtest/gtest.h>

#include "common/numeric.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace uctr::sql {
namespace {

class SqlPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam()};
};

TEST_P(SqlPropertyTest, EqualityFilterMatchesDirectScan) {
  Table t = uctr::testing::RandomTable(&rng_);
  // Pick a random existing cell as the filter value.
  size_t col = 1 + rng_.Index(t.num_columns() - 1);
  size_t row = rng_.Index(t.num_rows());
  std::string value = t.cell(row, col).ToDisplayString();
  std::string column = t.schema().column(col).name;

  auto r = ExecuteQuery(
      "SELECT [name] FROM w WHERE [" + column + "] = '" + value + "'", t);
  ASSERT_TRUE(r.ok());

  std::vector<std::string> expected;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (t.cell(i, col).Equals(Value::FromText(value))) {
      expected.push_back(t.cell(i, 0).ToDisplayString());
    }
  }
  ASSERT_EQ(r->values.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(r->values[i].ToDisplayString(), expected[i]);
  }
  EXPECT_EQ(r->evidence_rows.size(), expected.size());
}

TEST_P(SqlPropertyTest, OrderByProducesSortedValues) {
  Table t = uctr::testing::RandomTable(&rng_);
  size_t col = 1 + rng_.Index(t.num_columns() - 1);
  std::string column = t.schema().column(col).name;
  bool desc = rng_.Bernoulli(0.5);

  auto r = ExecuteQuery("SELECT [" + column + "] FROM w ORDER BY [" +
                            column + "] " + (desc ? "DESC" : "ASC"),
                        t);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->values.size(), t.num_rows());
  for (size_t i = 1; i < r->values.size(); ++i) {
    int cmp = r->values[i - 1].Compare(r->values[i]);
    if (desc) {
      EXPECT_GE(cmp, 0);
    } else {
      EXPECT_LE(cmp, 0);
    }
  }
}

TEST_P(SqlPropertyTest, CountStarEqualsMatchingRows) {
  Table t = uctr::testing::RandomTable(&rng_);
  size_t col = 1 + rng_.Index(t.num_columns() - 1);
  std::string column = t.schema().column(col).name;
  int64_t threshold = rng_.UniformInt(0, 50);

  auto r = ExecuteQuery("SELECT COUNT(*) FROM w WHERE [" + column + "] > '" +
                            std::to_string(threshold) + "'",
                        t);
  ASSERT_TRUE(r.ok());
  size_t expected = 0;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (t.cell(i, col).number() > static_cast<double>(threshold)) ++expected;
  }
  EXPECT_DOUBLE_EQ(r->scalar().number(), static_cast<double>(expected));
}

TEST_P(SqlPropertyTest, AggregatesMatchDirectComputation) {
  Table t = uctr::testing::RandomTable(&rng_);
  size_t col = 1 + rng_.Index(t.num_columns() - 1);
  std::string column = t.schema().column(col).name;

  double sum = 0, lo = 1e18, hi = -1e18;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    double v = t.cell(i, col).number();
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_DOUBLE_EQ(
      ExecuteQuery("SELECT SUM([" + column + "]) FROM w", t)->scalar()
          .number(),
      sum);
  EXPECT_DOUBLE_EQ(
      ExecuteQuery("SELECT MIN([" + column + "]) FROM w", t)->scalar()
          .number(),
      lo);
  EXPECT_DOUBLE_EQ(
      ExecuteQuery("SELECT MAX([" + column + "]) FROM w", t)->scalar()
          .number(),
      hi);
  EXPECT_TRUE(NearlyEqual(
      ExecuteQuery("SELECT AVG([" + column + "]) FROM w", t)->scalar()
          .number(),
      sum / static_cast<double>(t.num_rows())));
}

TEST_P(SqlPropertyTest, LimitNeverExceedsRequested) {
  Table t = uctr::testing::RandomTable(&rng_);
  int64_t limit = rng_.UniformInt(0, 12);
  auto r = ExecuteQuery(
      "SELECT [name] FROM w ORDER BY [metric1] DESC LIMIT " +
          std::to_string(limit),
      t);
  if (limit == 0) {
    EXPECT_FALSE(r.ok());  // empty result is discarded by policy
    return;
  }
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->values.size(),
            static_cast<size_t>(limit));
  EXPECT_EQ(r->values.size(),
            std::min<size_t>(t.num_rows(), static_cast<size_t>(limit)));
}

TEST_P(SqlPropertyTest, ParseToStringRoundTripPreservesSemantics) {
  Table t = uctr::testing::RandomTable(&rng_);
  size_t col = 1 + rng_.Index(t.num_columns() - 1);
  std::string column = t.schema().column(col).name;
  std::string query = "SELECT [name] FROM w WHERE [" + column + "] >= '" +
                      std::to_string(rng_.UniformInt(0, 40)) +
                      "' ORDER BY [" + column + "] DESC LIMIT 3";
  auto stmt = Parse(query).ValueOrDie();
  auto again = Parse(stmt.ToString()).ValueOrDie();

  auto r1 = Execute(stmt, t);
  auto r2 = Execute(again, t);
  ASSERT_EQ(r1.ok(), r2.ok());
  if (r1.ok()) {
    EXPECT_EQ(r1->ToDisplayString(), r2->ToDisplayString());
  }
}

TEST_P(SqlPropertyTest, SumOfPartitionsEqualsTotal) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string column = t.schema().column(1).name;
  int64_t pivot = rng_.UniformInt(10, 40);
  auto total =
      ExecuteQuery("SELECT COUNT(*) FROM w", t)->scalar().number();
  auto above = ExecuteQuery("SELECT COUNT(*) FROM w WHERE [" + column +
                                "] > '" + std::to_string(pivot) + "'",
                            t)
                   ->scalar()
                   .number();
  auto below_eq = ExecuteQuery("SELECT COUNT(*) FROM w WHERE [" + column +
                                   "] <= '" + std::to_string(pivot) + "'",
                               t)
                      ->scalar()
                      .number();
  EXPECT_DOUBLE_EQ(above + below_eq, total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace uctr::sql
