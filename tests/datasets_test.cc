#include <gtest/gtest.h>

#include <set>

#include "datasets/benchmark.h"
#include "datasets/corpus.h"
#include "datasets/vocab.h"

namespace uctr::datasets {
namespace {

// ------------------------------------------------------------------ Vocab

TEST(VocabTest, EveryDomainHasMultipleTopics) {
  for (Domain d :
       {Domain::kWikipedia, Domain::kFinance, Domain::kScience}) {
    const auto& topics = TopicsFor(d);
    EXPECT_GE(topics.size(), 3u) << DomainToString(d);
    for (const Topic& t : topics) {
      EXPECT_GE(t.entities.size(), 8u) << t.name;
      EXPECT_GE(t.numeric_columns.size(), 3u) << t.name;
    }
  }
}

TEST(VocabTest, TopicsWithinDomainAreDisjoint) {
  const auto& topics = TopicsFor(Domain::kWikipedia);
  std::set<std::string> seen;
  for (const Topic& t : topics) {
    for (const std::string& e : t.entities) {
      EXPECT_TRUE(seen.insert(e).second) << "duplicate entity " << e;
    }
  }
}

// ----------------------------------------------------------------- Corpus

TEST(CorpusTest, GeneratesWellFormedTables) {
  Rng rng(1);
  CorpusConfig config;
  config.domain = Domain::kWikipedia;
  config.num_tables = 12;
  CorpusGenerator gen(config, &rng);
  auto corpus = gen.Generate();
  ASSERT_EQ(corpus.size(), 12u);
  for (const TableWithText& entry : corpus) {
    EXPECT_GE(entry.table.num_rows(), config.min_rows);
    EXPECT_LE(entry.table.num_rows(), config.max_rows);
    EXPECT_GE(entry.table.num_columns(), 3u);
    // First column is the entity column; at least two numeric columns.
    EXPECT_GE(entry.table.ColumnsOfType(ColumnType::kNumber).size(), 2u);
    EXPECT_GE(entry.paragraph.size(), 2u);
  }
}

TEST(CorpusTest, FinanceTablesRenderMoney) {
  Rng rng(2);
  CorpusConfig config;
  config.domain = Domain::kFinance;
  config.num_tables = 3;
  CorpusGenerator gen(config, &rng);
  auto corpus = gen.Generate();
  bool any_money = false;
  for (const auto& entry : corpus) {
    for (size_t r = 0; r < entry.table.num_rows(); ++r) {
      for (size_t c = 1; c < entry.table.num_columns(); ++c) {
        std::string display = entry.table.cell(r, c).ToDisplayString();
        if (!display.empty() && display[0] == '$') any_money = true;
        // Money cells must still parse numerically.
        if (!display.empty() && display[0] == '$') {
          EXPECT_TRUE(entry.table.cell(r, c).is_number()) << display;
        }
      }
    }
  }
  EXPECT_TRUE(any_money);
}

TEST(CorpusTest, ParagraphDescribesWithheldRow) {
  Rng rng(3);
  CorpusConfig config;
  config.domain = Domain::kWikipedia;
  config.num_tables = 6;
  CorpusGenerator gen(config, &rng);
  for (const auto& entry : gen.Generate()) {
    // The first paragraph sentence names an entity absent from the table.
    const std::string& hidden = entry.paragraph[0];
    bool mentions_table_entity = false;
    for (size_t r = 0; r < entry.table.num_rows(); ++r) {
      std::string entity = entry.table.cell(r, 0).ToDisplayString();
      if (hidden.find(entity) != std::string::npos) {
        mentions_table_entity = true;
      }
    }
    EXPECT_FALSE(mentions_table_entity) << hidden;
  }
}

TEST(CorpusTest, TopicRestrictionRespected) {
  Rng rng(4);
  CorpusConfig config;
  config.domain = Domain::kWikipedia;
  config.topic_indices = {0};
  config.num_tables = 5;
  CorpusGenerator gen(config, &rng);
  const Topic& topic = TopicsFor(Domain::kWikipedia)[0];
  for (const auto& entry : gen.Generate()) {
    EXPECT_EQ(entry.table.schema().column(0).name, topic.entity_header);
  }
}

TEST(CorpusTest, DeterministicGivenSeed) {
  CorpusConfig config;
  config.num_tables = 4;
  Rng rng_a(7), rng_b(7);
  CorpusGenerator gen_a(config, &rng_a), gen_b(config, &rng_b);
  auto a = gen_a.Generate();
  auto b = gen_b.Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].table.ToCsv(), b[i].table.ToCsv());
  }
}

// -------------------------------------------------------------- Benchmark

TEST(BenchmarkTest, FeverousSimShape) {
  Rng rng(11);
  BenchmarkScale scale;
  scale.unlabeled_tables = 6;
  scale.gold_train_tables = 6;
  scale.eval_tables = 4;
  Benchmark bench = MakeFeverousSim(scale, &rng);
  EXPECT_EQ(bench.task, TaskType::kFactVerification);
  EXPECT_EQ(bench.num_classes, 2);
  EXPECT_EQ(bench.unlabeled.size(), 6u);
  EXPECT_GT(bench.gold_train.size(), 20u);
  EXPECT_GT(bench.gold_dev.size(), 5u);
  EXPECT_GT(bench.gold_test.size(), 5u);
  // Both labels present in gold data.
  EXPECT_GT(bench.gold_train.CountLabel(Label::kSupported), 0u);
  EXPECT_GT(bench.gold_train.CountLabel(Label::kRefuted), 0u);
}

TEST(BenchmarkTest, TatQaSimHasHybridEvidenceAndBothProgramTypes) {
  Rng rng(13);
  BenchmarkScale scale;
  scale.unlabeled_tables = 4;
  scale.gold_train_tables = 8;
  scale.eval_tables = 4;
  Benchmark bench = MakeTatQaSim(scale, &rng);
  EXPECT_EQ(bench.domain, Domain::kFinance);
  EXPECT_EQ(bench.task, TaskType::kQuestionAnswering);
  // Evidence sources mix table-only and hybrid buckets.
  size_t hybrid = bench.gold_train.CountSource(EvidenceSource::kTableSplit) +
                  bench.gold_train.CountSource(EvidenceSource::kTableExpand) +
                  bench.gold_train.CountSource(EvidenceSource::kTextOnly);
  EXPECT_GT(hybrid, 0u);
  EXPECT_GT(bench.gold_train.CountSource(EvidenceSource::kTableOnly), 0u);
  // Arithmetic reasoning present.
  EXPECT_GT(bench.gold_train.CountReasoningType("arithmetic"), 0u);
}

TEST(BenchmarkTest, WikiSqlSimIsTableOnly) {
  Rng rng(17);
  BenchmarkScale scale;
  scale.unlabeled_tables = 4;
  scale.gold_train_tables = 6;
  scale.eval_tables = 4;
  Benchmark bench = MakeWikiSqlSim(scale, &rng);
  for (const Sample& s : bench.gold_train.samples) {
    EXPECT_EQ(s.source, EvidenceSource::kTableOnly);
  }
}

TEST(BenchmarkTest, SemTabFactsSimIsLowResourceThreeWay) {
  Rng rng(19);
  BenchmarkScale scale;  // defaults
  Benchmark bench = MakeSemTabFactsSim(scale, &rng);
  EXPECT_EQ(bench.num_classes, 3);
  EXPECT_LT(bench.unlabeled.size(), scale.unlabeled_tables);
  EXPECT_GT(bench.gold_train.CountLabel(Label::kUnknown), 0u);
}

TEST(BenchmarkTest, GoldSamplesHaveExecutableProvenance) {
  Rng rng(23);
  BenchmarkScale scale;
  scale.unlabeled_tables = 4;
  scale.gold_train_tables = 5;
  scale.eval_tables = 4;
  Benchmark bench = MakeWikiSqlSim(scale, &rng);
  ASSERT_FALSE(bench.gold_test.empty());
  for (const Sample& s : bench.gold_test.samples) {
    EXPECT_FALSE(s.sentence.empty());
    EXPECT_FALSE(s.answer.empty());
    EXPECT_TRUE(s.program.Validate().ok()) << s.program.text;
  }
}

}  // namespace
}  // namespace uctr::datasets
