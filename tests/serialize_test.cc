#include <gtest/gtest.h>

#include "gen/generator.h"
#include "gen/serialize.h"
#include "program/library.h"
#include "tests/test_util.h"

namespace uctr {
namespace {

using testing::MakeFinanceTable;
using testing::MakeNationsTable;

Sample MakeQaSample() {
  Sample s;
  s.task = TaskType::kQuestionAnswering;
  s.table = MakeNationsTable();
  s.paragraph = {"Some \"context\" with a\nnewline.", "Second sentence."};
  s.sentence = "Which nation has the highest gold?";
  s.answer = "united states";
  s.program = {ProgramType::kSql,
               "SELECT [nation] FROM w ORDER BY [gold] DESC LIMIT 1"};
  s.reasoning_type = "superlative";
  s.source = EvidenceSource::kTableOnly;
  s.evidence_rows = {0, 3};
  return s;
}

TEST(JsonQuoteTest, EscapesSpecials) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("a\nb\tc"), "\"a\\nb\\tc\"");
}

TEST(SerializeTest, QaSampleRoundTrips) {
  Sample original = MakeQaSample();
  std::string json = SampleToJson(original);
  Sample restored = SampleFromJson(json).ValueOrDie();

  EXPECT_EQ(restored.task, original.task);
  EXPECT_EQ(restored.sentence, original.sentence);
  EXPECT_EQ(restored.answer, original.answer);
  EXPECT_EQ(restored.paragraph, original.paragraph);
  EXPECT_EQ(restored.program.type, original.program.type);
  EXPECT_EQ(restored.program.text, original.program.text);
  EXPECT_EQ(restored.reasoning_type, original.reasoning_type);
  EXPECT_EQ(restored.source, original.source);
  EXPECT_EQ(restored.evidence_rows, original.evidence_rows);
  EXPECT_EQ(restored.table.ToCsv(), original.table.ToCsv());
  EXPECT_EQ(restored.table.name(), original.table.name());
}

TEST(SerializeTest, ClaimSampleRoundTrips) {
  Sample s;
  s.task = TaskType::kFactVerification;
  s.table = MakeFinanceTable();
  s.sentence = "The revenue in 2019 was $1,200.5.";
  s.label = Label::kRefuted;
  s.program = {ProgramType::kLogicalForm,
               "eq { hop { filter_eq { all_rows ; item ; revenue } ; 2019 } "
               "; 99 }"};
  s.source = EvidenceSource::kTableExpand;

  Sample restored = SampleFromJson(SampleToJson(s)).ValueOrDie();
  EXPECT_EQ(restored.label, Label::kRefuted);
  EXPECT_EQ(restored.source, EvidenceSource::kTableExpand);
  // The restored program still executes identically.
  EXPECT_EQ(restored.program.Execute(restored.table)->scalar().boolean(),
            s.program.Execute(s.table)->scalar().boolean());
}

TEST(SerializeTest, DatasetJsonlRoundTrips) {
  Rng rng(5);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = 10;
  Generator gen(config, &lib, &rng);
  TableWithText input;
  input.table = MakeNationsTable();
  Dataset original = gen.GenerateDataset({input});
  ASSERT_GT(original.size(), 5u);

  std::string jsonl = DatasetToJsonl(original);
  Dataset restored = DatasetFromJsonl(jsonl).ValueOrDie();
  ASSERT_EQ(restored.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored.samples[i].sentence, original.samples[i].sentence);
    EXPECT_EQ(restored.samples[i].label, original.samples[i].label);
    EXPECT_EQ(restored.samples[i].program.text,
              original.samples[i].program.text);
  }
}

TEST(SerializeTest, RejectsMalformedInput) {
  EXPECT_FALSE(SampleFromJson("").ok());
  EXPECT_FALSE(SampleFromJson("{").ok());
  EXPECT_FALSE(SampleFromJson("[1,2]").ok());
  EXPECT_FALSE(SampleFromJson("{\"task\":\"nonsense\"}").ok());
  EXPECT_FALSE(SampleFromJson(
                   "{\"task\":\"question_answering\",\"answer\":\"x\","
                   "\"sentence\":\"q\",\"table\":\"a,b\\n1,2\\n\","
                   "\"bogus_field\":1}")
                   .ok());
  // Missing table.
  EXPECT_FALSE(SampleFromJson(
                   "{\"task\":\"question_answering\",\"answer\":\"x\","
                   "\"sentence\":\"q\"}")
                   .ok());
}

TEST(SerializeTest, HandlesEmptyDataset) {
  Dataset empty;
  EXPECT_EQ(DatasetToJsonl(empty), "");
  EXPECT_EQ(DatasetFromJsonl("")->size(), 0u);
  EXPECT_EQ(DatasetFromJsonl("\n\n")->size(), 0u);
}

}  // namespace
}  // namespace uctr
