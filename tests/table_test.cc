#include <gtest/gtest.h>

#include "table/table.h"
#include "table/value.h"
#include "tests/test_util.h"

namespace uctr {
namespace {

using testing::MakeFinanceTable;
using testing::MakeNationsTable;

// ----------------------------------------------------------------- Value

TEST(ValueTest, FromTextInference) {
  EXPECT_TRUE(Value::FromText("").is_null());
  EXPECT_TRUE(Value::FromText("n/a").is_null());
  EXPECT_TRUE(Value::FromText("-").is_null());
  EXPECT_TRUE(Value::FromText("42").is_number());
  EXPECT_TRUE(Value::FromText("$1,200.5").is_number());
  EXPECT_TRUE(Value::FromText("true").is_bool());
  EXPECT_TRUE(Value::FromText("hello world").is_string());
}

TEST(ValueTest, NumberKeepsSurfaceText) {
  Value v = Value::FromText(" $1,200.50 ");
  ASSERT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.number(), 1200.5);
  EXPECT_EQ(v.ToDisplayString(), "$1,200.50");
}

TEST(ValueTest, SemanticEquality) {
  EXPECT_TRUE(Value::FromText("$1,200.5").Equals(Value::Number(1200.5)));
  EXPECT_TRUE(Value::String("China").Equals(Value::String("china")));
  EXPECT_FALSE(Value::Number(1).Equals(Value::String("one")));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Number(0)));
}

TEST(ValueTest, CompareNumericAndString) {
  EXPECT_LT(Value::Number(2).Compare(Value::Number(10)), 0);
  EXPECT_GT(Value::String("zebra").Compare(Value::String("Apple")), 0);
  EXPECT_LT(Value::Null().Compare(Value::Number(0)), 0);
  // String "30" vs number 24 compares numerically.
  EXPECT_GT(Value::String("30").Compare(Value::Number(24)), 0);
}

TEST(ValueTest, ToNumberConversions) {
  EXPECT_DOUBLE_EQ(Value::FromText("12.5%").ToNumber().ValueOrDie(), 12.5);
  EXPECT_FALSE(Value::String("abc").ToNumber().ok());
  EXPECT_FALSE(Value::Null().ToNumber().ok());
  EXPECT_DOUBLE_EQ(Value::Bool(true).ToNumber().ValueOrDie(), 1.0);
}

// ----------------------------------------------------------------- Table

TEST(TableTest, FromCsvBasics) {
  Table t = MakeNationsTable();
  EXPECT_EQ(t.num_rows(), 5u);
  EXPECT_EQ(t.num_columns(), 5u);
  EXPECT_EQ(t.schema().column(0).name, "nation");
  EXPECT_EQ(t.cell(0, 0).ToDisplayString(), "united states");
  EXPECT_DOUBLE_EQ(t.cell(1, 1).number(), 8.0);
}

TEST(TableTest, CsvQuotedFields) {
  auto t = Table::FromCsv(
      "a,b\n\"x, y\",\"he said \"\"hi\"\"\"\n").ValueOrDie();
  EXPECT_EQ(t.cell(0, 0).ToDisplayString(), "x, y");
  EXPECT_EQ(t.cell(0, 1).ToDisplayString(), "he said \"hi\"");
}

TEST(TableTest, CsvRoundTrip) {
  Table t = MakeFinanceTable();
  auto again = Table::FromCsv(t.ToCsv()).ValueOrDie();
  ASSERT_EQ(again.num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      EXPECT_TRUE(again.cell(r, c).Equals(t.cell(r, c)))
          << "cell " << r << "," << c;
    }
  }
}

TEST(TableTest, TypeInference) {
  Table t = MakeNationsTable();
  EXPECT_EQ(t.schema().column(0).type, ColumnType::kText);
  EXPECT_EQ(t.schema().column(1).type, ColumnType::kNumber);
  EXPECT_EQ(t.schema().column(4).type, ColumnType::kNumber);
}

TEST(TableTest, TypeInferenceToleratesFootnote) {
  auto t = Table::FromCsv(
      "name,value\na,1\nb,2\nc,3\nd,4\ne,5\nf,6\ng,7\nh,8\ni,9\nj,see note\n")
      .ValueOrDie();
  // 9/10 numeric cells: still a numeric column.
  EXPECT_EQ(t.schema().column(1).type, ColumnType::kNumber);
}

TEST(TableTest, ColumnIndexCaseInsensitiveAndFuzzy) {
  Table t = MakeNationsTable();
  EXPECT_EQ(t.ColumnIndex("GOLD").ValueOrDie(), 1u);
  EXPECT_EQ(t.ColumnIndex("silver").ValueOrDie(), 2u);
  EXPECT_FALSE(t.ColumnIndex("platinum").ok());
}

TEST(TableTest, RowIndexByName) {
  Table t = MakeFinanceTable();
  EXPECT_EQ(t.RowIndexByName("revenue").ValueOrDie(), 0u);
  EXPECT_EQ(t.RowIndexByName("Stockholders' Equity").ValueOrDie(), 3u);
  EXPECT_FALSE(t.RowIndexByName("dividends").ok());
}

TEST(TableTest, CellByNames) {
  Table t = MakeFinanceTable();
  Value v = t.CellByNames("revenue", "2019").ValueOrDie();
  EXPECT_DOUBLE_EQ(v.number(), 1200.5);
}

TEST(TableTest, SubTableAndWithoutRow) {
  Table t = MakeNationsTable();
  Table sub = t.SubTable({2, 0});
  ASSERT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.cell(0, 0).ToDisplayString(), "japan");
  EXPECT_EQ(sub.cell(1, 0).ToDisplayString(), "united states");

  Table without = t.WithoutRow(0);
  EXPECT_EQ(without.num_rows(), 4u);
  EXPECT_EQ(without.cell(0, 0).ToDisplayString(), "china");
}

TEST(TableTest, AppendRowValidatesWidth) {
  Table t = MakeNationsTable();
  EXPECT_FALSE(t.AppendRow({Value::String("x")}).ok());
  EXPECT_TRUE(t.AppendRow({Value::String("italy"), Value::Number(1),
                           Value::Number(2), Value::Number(3),
                           Value::Number(6)})
                  .ok());
  EXPECT_EQ(t.num_rows(), 6u);
}

TEST(TableTest, ColumnsOfType) {
  Table t = MakeNationsTable();
  auto nums = t.ColumnsOfType(ColumnType::kNumber);
  EXPECT_EQ(nums.size(), 4u);
  auto texts = t.ColumnsOfType(ColumnType::kText);
  ASSERT_EQ(texts.size(), 1u);
  EXPECT_EQ(texts[0], 0u);
}

TEST(TableTest, LinearizeMentionsHeadersAndCells) {
  Table t = MakeNationsTable();
  std::string lin = t.Linearize();
  EXPECT_NE(lin.find("col: nation is united states"), std::string::npos);
  EXPECT_NE(lin.find("col: total is 30"), std::string::npos);
}

TEST(TableTest, MarkdownRender) {
  Table t = MakeNationsTable();
  std::string md = t.ToMarkdown();
  EXPECT_NE(md.find("| nation |"), std::string::npos);
  EXPECT_NE(md.find("| china |"), std::string::npos);
}

TEST(TableTest, EmptyCsvFails) {
  EXPECT_FALSE(Table::FromCsv("").ok());
}

TEST(TableTest, RaggedRowFails) {
  EXPECT_FALSE(Table::FromCsv("a,b\n1\n").ok());
}

}  // namespace
}  // namespace uctr
