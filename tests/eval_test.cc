#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace uctr::eval {
namespace {

TEST(MetricsTest, LabelAccuracy) {
  std::vector<Label> gold = {Label::kSupported, Label::kRefuted,
                             Label::kSupported, Label::kUnknown};
  std::vector<Label> pred = {Label::kSupported, Label::kSupported,
                             Label::kSupported, Label::kUnknown};
  EXPECT_DOUBLE_EQ(LabelAccuracy(pred, gold), 0.75);
  EXPECT_DOUBLE_EQ(LabelAccuracy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(LabelAccuracy({Label::kSupported}, gold), 0.0);  // size
}

TEST(MetricsTest, ExactMatchToleratesFormatting) {
  EXPECT_TRUE(ExactMatch("8", "8"));
  EXPECT_TRUE(ExactMatch("$1,200.5", "1200.5"));
  EXPECT_TRUE(ExactMatch("0.2005", "20.05"));  // percent scale
  EXPECT_TRUE(ExactMatch("China", "china"));
  EXPECT_FALSE(ExactMatch("7", "8"));
  EXPECT_FALSE(ExactMatch("", "8"));
}

TEST(MetricsTest, NumeracyF1AllOrNothingForNumbers) {
  EXPECT_DOUBLE_EQ(NumeracyF1("8", "8"), 1.0);
  EXPECT_DOUBLE_EQ(NumeracyF1("8.01", "8"), 0.0);  // close is not credit
  // Textual answers get token-level partial credit.
  double f1 = NumeracyF1("united states of america", "united states");
  EXPECT_GT(f1, 0.5);
  EXPECT_LT(f1, 1.0);
}

TEST(MetricsTest, AnswerEmF1Averages) {
  EmF1 r = AnswerEmF1({"8", "wrong", "united states"},
                      {"8", "7", "united states"});
  EXPECT_NEAR(r.em, 2.0 / 3.0, 1e-9);
  EXPECT_GE(r.f1, r.em);  // F1 dominates EM
}

TEST(MetricsTest, DenotationAccuracy) {
  EXPECT_DOUBLE_EQ(
      DenotationAccuracy({"a", "b", "$3"}, {"a", "c", "3"}), 2.0 / 3.0);
}

TEST(MetricsTest, ThreeWayMicroF1EqualsAccuracy) {
  std::vector<Label> gold = {Label::kSupported, Label::kRefuted,
                             Label::kUnknown, Label::kUnknown};
  std::vector<Label> pred = {Label::kSupported, Label::kUnknown,
                             Label::kUnknown, Label::kRefuted};
  EXPECT_DOUBLE_EQ(ThreeWayMicroF1(pred, gold), 0.5);
}

TEST(MetricsTest, FeverousScoreBoundedByAccuracyAndRecall) {
  Rng rng(5);
  std::vector<bool> correct(1000, true);
  double score = FeverousScore(correct, 0.25, &rng);
  EXPECT_NEAR(score, 0.25, 0.05);  // all labels right: score ~= recall
  std::vector<bool> half(1000);
  for (size_t i = 0; i < half.size(); ++i) half[i] = i % 2 == 0;
  double score_half = FeverousScore(half, 0.25, &rng);
  EXPECT_NEAR(score_half, 0.125, 0.04);
  EXPECT_DOUBLE_EQ(FeverousScore({}, 0.25, &rng), 0.0);
}

TEST(MetricsTest, FeverousScoreExpectationWithNullRng) {
  // Null rng yields the exact expectation rather than a sampled score.
  std::vector<bool> correct = {true, true, false, false};
  EXPECT_DOUBLE_EQ(FeverousScore(correct, 0.5, nullptr), 0.25);
  EXPECT_DOUBLE_EQ(FeverousScore(correct, 1.0, nullptr), 0.5);
  EXPECT_DOUBLE_EQ(FeverousScore({}, 0.5, nullptr), 0.0);
}

}  // namespace
}  // namespace uctr::eval
