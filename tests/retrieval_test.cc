#include <gtest/gtest.h>

#include "datasets/corpus.h"
#include "datasets/retrieval.h"
#include "gen/generator.h"
#include "program/library.h"
#include "tests/test_util.h"

namespace uctr::datasets {
namespace {

std::vector<TableWithText> MakePool(Rng* rng, size_t n) {
  CorpusConfig config;
  config.domain = Domain::kWikipedia;
  config.num_tables = n;
  CorpusGenerator gen(config, rng);
  return gen.Generate();
}

TEST(RetrievalTest, ExactTableTextRetrievesItself) {
  Rng rng(3);
  auto pool = MakePool(&rng, 12);
  EvidenceRetriever retriever(pool);
  ASSERT_EQ(retriever.pool_size(), 12u);

  // Query built from a pool entry's own linearization hits it at rank 1.
  for (size_t i = 0; i < pool.size(); i += 3) {
    auto top = retriever.Retrieve(pool[i].table.Linearize(), 1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0], i);
  }
}

TEST(RetrievalTest, ClaimsRetrieveTheirSourceTable) {
  Rng rng(7);
  auto pool = MakePool(&rng, 10);
  // Generate claims from each pool entry; retrieval should find the
  // source table well above chance (1/10).
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = 4;
  config.use_table_to_text = false;
  config.use_text_to_table = false;
  Generator generator(config, &library, &rng);

  std::vector<std::pair<std::string, size_t>> queries;
  for (size_t i = 0; i < pool.size(); ++i) {
    for (const Sample& s : generator.GenerateFromTable(pool[i])) {
      queries.push_back({s.sentence, i});
    }
  }
  ASSERT_GT(queries.size(), 20u);

  EvidenceRetriever retriever(pool);
  double recall1 = retriever.RecallAtK(queries, 1);
  double recall3 = retriever.RecallAtK(queries, 3);
  EXPECT_GT(recall1, 0.3);
  EXPECT_GE(recall3, recall1);
  EXPECT_GT(recall3, 0.5);
}

TEST(RetrievalTest, TopKOrderingAndBounds) {
  Rng rng(11);
  auto pool = MakePool(&rng, 6);
  EvidenceRetriever retriever(pool);
  auto top = retriever.Retrieve("population of springfield", 3);
  EXPECT_LE(top.size(), 3u);
  auto all = retriever.Retrieve("population of springfield", 100);
  EXPECT_EQ(all.size(), 6u);
  EXPECT_DOUBLE_EQ(retriever.RecallAtK({}, 3), 0.0);
}

TEST(RetrievalTest, UnrelatedQueryStillReturnsCandidates) {
  Rng rng(13);
  auto pool = MakePool(&rng, 5);
  EvidenceRetriever retriever(pool);
  auto top = retriever.Retrieve("zzz qqq completely unrelated words", 2);
  EXPECT_EQ(top.size(), 2u);  // ranked by (zero) score, still returned
}

}  // namespace
}  // namespace uctr::datasets
