#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/json.h"
#include "common/numeric.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace uctr {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

// ---------------------------------------------------------------- Result

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  UCTR_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Half(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_TRUE(Quarter(8).ok());
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

// ------------------------------------------------------------ StringUtil

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpties) {
  auto parts = SplitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TrimAndCase) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_EQ(Capitalize("hello"), "Hello");
}

TEST(StringUtilTest, PrefixSuffixContains) {
  EXPECT_TRUE(StartsWith("filter_eq", "filter_"));
  EXPECT_TRUE(EndsWith("filter_eq", "_eq"));
  EXPECT_TRUE(EqualsIgnoreCase("Total", "tOtAl"));
  EXPECT_TRUE(ContainsIgnoreCase("Gross Profit Margin", "profit"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abcd"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(StringUtilTest, EditDistance) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
}

TEST(StringUtilTest, WordTokensKeepsNumbersTogether) {
  auto toks = WordTokens("Revenue was $1,234.5 (up 12.5%) in 2019.");
  // "$1,234.5" and "12.5%" should each survive as single tokens.
  std::set<std::string> set(toks.begin(), toks.end());
  EXPECT_TRUE(set.count("$1,234.5"));
  EXPECT_TRUE(set.count("12.5%"));
  EXPECT_TRUE(set.count("revenue"));
  EXPECT_TRUE(set.count("2019"));
}

// --------------------------------------------------------------- Numeric

TEST(NumericTest, ParsesPlainNumbers) {
  EXPECT_DOUBLE_EQ(*ParseNumber("42"), 42.0);
  EXPECT_DOUBLE_EQ(*ParseNumber("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(*ParseNumber("1e3"), 1000.0);
}

TEST(NumericTest, ParsesMessyFinancialText) {
  EXPECT_DOUBLE_EQ(*ParseNumber("$1,234.50"), 1234.50);
  EXPECT_DOUBLE_EQ(*ParseNumber("US$3"), 3.0);
  EXPECT_DOUBLE_EQ(*ParseNumber("12.5%"), 12.5);
  EXPECT_DOUBLE_EQ(*ParseNumber("(1,234)"), -1234.0);
}

// Regression test: the sign used to be stripped by strtod AFTER the
// currency/percent strips, so signed currency and percent forms were
// rejected outright.
TEST(NumericTest, ParsesSignedCurrencyAndPercent) {
  EXPECT_DOUBLE_EQ(*ParseNumber("-$5"), -5.0);
  EXPECT_DOUBLE_EQ(*ParseNumber("-€1,200"), -1200.0);
  EXPECT_DOUBLE_EQ(*ParseNumber("+3%"), 3.0);
  EXPECT_DOUBLE_EQ(*ParseNumber("- $7.25"), -7.25);
  EXPECT_DOUBLE_EQ(*ParseNumber("+US$40"), 40.0);
  // The sign composes with the accounting parentheses exactly as the
  // pre-fix strtod path did: "(-5)" is (-1) * (-5) = +5.
  EXPECT_DOUBLE_EQ(*ParseNumber("(-5)"), 5.0);
  EXPECT_DOUBLE_EQ(*ParseNumber("($1,000)"), -1000.0);
}

TEST(NumericTest, RejectsNonNumbers) {
  EXPECT_FALSE(ParseNumber("hello").has_value());
  EXPECT_FALSE(ParseNumber("").has_value());
  EXPECT_FALSE(ParseNumber("12abc").has_value());
  EXPECT_FALSE(ParseNumber(",12").has_value());  // comma without digit before
  EXPECT_FALSE(ParseNumber("--5").has_value());  // at most one explicit sign
  EXPECT_FALSE(ParseNumber("+-5").has_value());
  EXPECT_FALSE(ParseNumber("-").has_value());
  EXPECT_FALSE(ParseNumber("-$").has_value());
}

TEST(NumericTest, FormatNumberCompact) {
  EXPECT_EQ(FormatNumber(42.0), "42");
  EXPECT_EQ(FormatNumber(3.14159, 2), "3.14");
  EXPECT_EQ(FormatNumber(-1200.5), "-1200.5");
}

TEST(NumericTest, NearlyEqual) {
  EXPECT_TRUE(NearlyEqual(1.0, 1.0 + 1e-9));
  EXPECT_FALSE(NearlyEqual(1.0, 1.1));
  EXPECT_TRUE(NearlyEqual(1e12, 1e12 + 1.0));  // relative tolerance
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.03);
}

TEST(RngTest, SampleIndicesWithoutReplacement) {
  Rng rng(5);
  auto idx = rng.SampleIndices(10, 4);
  EXPECT_EQ(idx.size(), 4u);
  std::set<size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 4u);
  for (size_t i : idx) EXPECT_LT(i, 10u);
}

TEST(RngTest, SampleIndicesCappedAtN) {
  Rng rng(5);
  auto idx = rng.SampleIndices(3, 10);
  EXPECT_EQ(idx.size(), 3u);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(13);
  std::map<size_t, int> counts;
  for (int i = 0; i < 10000; ++i) {
    counts[rng.WeightedIndex({1.0, 0.0, 3.0})]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 2);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, GaussianRoughlyStandard) {
  Rng rng(19);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}


// ------------------------------------------------------------------ JSON

TEST(JsonTest, ParsesScalarsObjectsAndArrays) {
  json::Value v =
      json::Parse(R"({"name":"t1","n":3.5,"rows":[1,2],"meta":{"k":"v"}})")
          .ValueOrDie();
  ASSERT_TRUE(v.is_object());
  const json::Value::Object& obj = v.as_object();
  EXPECT_EQ(json::GetStringOr(obj, "name", ""), "t1");
  EXPECT_DOUBLE_EQ(json::GetNumberOr(obj, "n", 0.0), 3.5);
  EXPECT_EQ(json::GetNumberOr(obj, "missing", -1.0), -1.0);
  auto rows = obj.find("rows");
  ASSERT_NE(rows, obj.end());
  ASSERT_TRUE(rows->second.is_array());
  EXPECT_EQ(rows->second.as_array().size(), 2u);
}

TEST(JsonTest, ParsesEscapesAndUnicode) {
  json::Value v =
      json::Parse(R"({"s":"a\"b\n\u0041"})").ValueOrDie();
  EXPECT_EQ(json::GetStringOr(v.as_object(), "s", ""), "a\"b\nA");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(json::Parse("[1,2,]").ok());
  EXPECT_FALSE(json::Parse("{} trailing").ok());
  // The wire format is a deliberate subset: strings, numbers, objects,
  // arrays. Bare literals are rejected rather than mis-parsed.
  EXPECT_FALSE(json::Parse("{\"a\":true}").ok());
  EXPECT_FALSE(json::Parse("null").ok());
  // Nesting beyond the depth limit is an error, not a stack overflow.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json::Parse(deep).ok());
}

TEST(JsonTest, QuoteEscapesControlCharacters) {
  EXPECT_EQ(json::Quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json::Quote("line\nbreak"), "\"line\\nbreak\"");
  // Round trip: Quote then Parse restores the original string.
  json::Value v = json::Parse("{" + json::Quote("k") + ":" +
                              json::Quote("v\t\x01z") + "}")
                      .ValueOrDie();
  EXPECT_EQ(json::GetStringOr(v.as_object(), "k", ""), "v\t\x01z");
}

}  // namespace
}  // namespace uctr
