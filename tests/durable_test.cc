// Tests of the durable table store: WAL record framing and recovery
// semantics (torn tails, corrupt records), the DurableStore ack contract
// ("acked = appended": after a crash at ANY byte offset of the WAL, a
// restart recovers exactly the acked prefix, byte-identical), snapshot
// compaction, eviction-reload, and the serve-level wiring (a restarted
// Server with the same --store-dir serves the same table_ref responses,
// non-degraded).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/server.h"
#include "store/codec.h"
#include "store/columnar.h"
#include "store/durable_registry.h"
#include "store/registry.h"
#include "store/wal.h"
#include "tests/test_util.h"

namespace uctr::store {
namespace {

namespace fs = std::filesystem;
using serve::EngineConfig;
using serve::InferenceEngine;
using serve::Server;
using serve::ServerConfig;
using testing::MakeFinanceTable;
using testing::MakeNationsTable;
using testing::RandomTable;

/// A fresh directory under the system temp root, removed on destruction.
/// Each test gets its own so parallel ctest shards never collide.
class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "uctr_durable_XXXXXX").string();
    char* made = mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path_ = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string Sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

Wal::Options NoSyncOptions(obs::MetricsRegistry* metrics = nullptr) {
  Wal::Options options;
  options.fsync = FsyncMode::kNever;
  options.metrics = metrics;
  return options;
}

std::string EncodeTableBytes(const Table& table) {
  return Codec::Encode(ColumnarTable::FromTable(table));
}

// ------------------------------------------------------------------ Wal

TEST(WalTest, FsyncModeParsesAndPrints) {
  EXPECT_EQ(ParseFsyncMode("always").ValueOrDie(), FsyncMode::kAlways);
  EXPECT_EQ(ParseFsyncMode("interval").ValueOrDie(), FsyncMode::kInterval);
  EXPECT_EQ(ParseFsyncMode("never").ValueOrDie(), FsyncMode::kNever);
  EXPECT_FALSE(ParseFsyncMode("sometimes").ok());
  EXPECT_STREQ(FsyncModeToString(FsyncMode::kAlways), "always");
  EXPECT_STREQ(FsyncModeToString(FsyncMode::kInterval), "interval");
  EXPECT_STREQ(FsyncModeToString(FsyncMode::kNever), "never");
}

TEST(WalTest, AppendThenScanRoundTrips) {
  TempDir dir;
  const std::string path = dir.Sub("wal.log");
  std::vector<std::string> payloads = {EncodeTableBytes(MakeNationsTable()),
                                       EncodeTableBytes(MakeFinanceTable()),
                                       std::string("short"),
                                       std::string(1 << 15, '\x7f')};
  std::vector<uint64_t> offsets;
  {
    Wal wal = Wal::Open(path, NoSyncOptions()).ValueOrDie();
    for (const std::string& payload : payloads) {
      uint64_t offset = 0;
      ASSERT_TRUE(wal.Append(payload, &offset).ok());
      offsets.push_back(offset);
    }
    EXPECT_EQ(wal.size_bytes(), fs::file_size(path));
  }
  std::vector<std::string> replayed;
  std::vector<uint64_t> replayed_offsets;
  uint64_t valid = Wal::Scan(path,
                             [&](uint64_t offset, std::string payload) {
                               replayed_offsets.push_back(offset);
                               replayed.push_back(std::move(payload));
                             })
                       .ValueOrDie();
  EXPECT_EQ(valid, fs::file_size(path));
  EXPECT_EQ(replayed, payloads);  // byte-identical, in append order
  EXPECT_EQ(replayed_offsets, offsets);
}

TEST(WalTest, MissingFileScansAsEmpty) {
  TempDir dir;
  size_t records = 0;
  uint64_t valid =
      Wal::Scan(dir.Sub("absent.log"),
                [&](uint64_t, std::string) { ++records; })
          .ValueOrDie();
  EXPECT_EQ(valid, 0u);
  EXPECT_EQ(records, 0u);
}

TEST(WalTest, CorruptRecordIsSkippedAndScanContinues) {
  TempDir dir;
  const std::string path = dir.Sub("wal.log");
  std::string a = EncodeTableBytes(MakeNationsTable());
  std::string b = EncodeTableBytes(MakeFinanceTable());
  std::string c(100, 'c');
  std::string file =
      Wal::EncodeRecord(a) + Wal::EncodeRecord(b) + Wal::EncodeRecord(c);
  // Flip one payload byte inside the middle record: its checksum no longer
  // matches, but the framing is intact, so the scan must deliver a and c.
  file[Wal::EncodeRecord(a).size() + Wal::kRecordHeaderBytes + 3] ^= 0x01;
  WriteFile(path, file);

  obs::MetricsRegistry metrics;
  std::vector<std::string> replayed;
  uint64_t valid = Wal::Scan(path,
                             [&](uint64_t, std::string payload) {
                               replayed.push_back(std::move(payload));
                             },
                             &metrics)
                       .ValueOrDie();
  EXPECT_EQ(valid, file.size());  // framing fine end to end: nothing torn
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0], a);
  EXPECT_EQ(replayed[1], c);
  EXPECT_EQ(metrics.counter("store_wal_corrupt_records_total")->value(),
            1u);
}

TEST(WalTest, ImplausiblePayloadLengthIsTornTailNotSkipAhead) {
  TempDir dir;
  const std::string path = dir.Sub("wal.log");
  std::string good = Wal::EncodeRecord("payload");
  // Header claiming a payload far past kMaxPayloadBytes: a corrupt length
  // must stop the scan, not convince it to "skip" 2^60 bytes forward.
  std::string evil(Wal::kRecordHeaderBytes, '\0');
  evil[0] = 'U'; evil[1] = 'W'; evil[2] = 'A'; evil[3] = 'L';
  evil[4] = 1;                     // version
  evil[8 + 7] = 0x10;              // size = 0x10'00'00'00'00'00'00'00
  WriteFile(path, good + evil);

  std::vector<std::string> replayed;
  uint64_t valid = Wal::Scan(path,
                             [&](uint64_t, std::string payload) {
                               replayed.push_back(std::move(payload));
                             })
                       .ValueOrDie();
  EXPECT_EQ(valid, good.size());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], "payload");
  ASSERT_TRUE(Wal::TruncateTo(path, valid).ok());
  EXPECT_EQ(fs::file_size(path), good.size());
}

// The core recovery pin, at the framing level: cut the log at EVERY byte
// offset and assert the scan yields exactly the records that fit entirely
// before the cut — never a partial record, never a skipped complete one.
TEST(WalTest, TruncationAtEveryOffsetRecoversExactlyThePrefix) {
  TempDir dir;
  std::vector<std::string> payloads = {"alpha", "bb", std::string(300, 'z'),
                                       EncodeTableBytes(MakeNationsTable())};
  std::string file;
  std::vector<uint64_t> record_end;  // cumulative end offset of record i
  for (const std::string& payload : payloads) {
    file += Wal::EncodeRecord(payload);
    record_end.push_back(file.size());
  }

  const std::string path = dir.Sub("cut.log");
  for (size_t cut = 0; cut <= file.size(); ++cut) {
    WriteFile(path, file.substr(0, cut));
    std::vector<std::string> replayed;
    auto valid = Wal::Scan(path, [&](uint64_t, std::string payload) {
      replayed.push_back(std::move(payload));
    });
    ASSERT_TRUE(valid.ok()) << "cut=" << cut;
    size_t expect_records = 0;
    while (expect_records < record_end.size() &&
           record_end[expect_records] <= cut) {
      ++expect_records;
    }
    ASSERT_EQ(replayed.size(), expect_records) << "cut=" << cut;
    for (size_t i = 0; i < expect_records; ++i) {
      EXPECT_EQ(replayed[i], payloads[i]) << "cut=" << cut;
    }
    // The declared valid prefix is exactly the surviving whole records.
    EXPECT_EQ(*valid, expect_records == 0 ? 0 : record_end[expect_records - 1])
        << "cut=" << cut;

    // Repair + append must produce a clean log again.
    ASSERT_TRUE(Wal::TruncateTo(path, *valid).ok());
    {
      Wal wal = Wal::Open(path, NoSyncOptions()).ValueOrDie();
      ASSERT_TRUE(wal.Append("appended-after-repair").ok());
    }
    std::vector<std::string> after;
    uint64_t valid2 = Wal::Scan(path, [&](uint64_t, std::string payload) {
                        after.push_back(std::move(payload));
                      }).ValueOrDie();
    ASSERT_EQ(after.size(), expect_records + 1) << "cut=" << cut;
    EXPECT_EQ(after.back(), "appended-after-repair");
    EXPECT_EQ(valid2, fs::file_size(path));
  }
}

// --------------------------------------------------------- DurableStore

DurableStoreConfig StoreConfig(const std::string& dir,
                               obs::MetricsRegistry* metrics) {
  DurableStoreConfig config;
  config.dir = dir;
  config.fsync = FsyncMode::kNever;  // kill -9 semantics; fast tests
  config.metrics = metrics;
  return config;
}

TEST(DurableStoreTest, PutRecoverServesByteIdenticalTables) {
  TempDir dir;
  std::vector<Table> tables = {MakeNationsTable(), MakeFinanceTable()};
  Rng rng(7);
  for (int i = 0; i < 6; ++i) tables.push_back(RandomTable(&rng));

  std::vector<std::string> fingerprints;
  std::vector<std::string> encoded;
  {
    obs::MetricsRegistry metrics;
    TableRegistry registry({}, &metrics);
    DurableStore store(&registry, StoreConfig(dir.path(), &metrics));
    ASSERT_TRUE(store.Recover().ok());
    EXPECT_EQ(store.recovered_tables(), 0u);
    for (Table& table : tables) {
      encoded.push_back(EncodeTableBytes(table));
      auto put = store.Put(std::move(table));
      ASSERT_TRUE(put.ok()) << put.status().ToString();
      fingerprints.push_back(put->fingerprint);
    }
    EXPECT_EQ(store.durable_tables(), tables.size());
  }  // process "dies" — nothing fsynced, file contents survive

  obs::MetricsRegistry metrics;
  TableRegistry registry({}, &metrics);
  DurableStore store(&registry, StoreConfig(dir.path(), &metrics));
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_EQ(store.recovered_tables(), tables.size());
  for (size_t i = 0; i < fingerprints.size(); ++i) {
    EXPECT_TRUE(store.Contains(fingerprints[i]));
    // Byte-identical by content address: same canonical codec bytes.
    EXPECT_EQ(store.GetEncodedBytes(fingerprints[i]).ValueOrDie(),
              encoded[i]);
    ASSERT_NE(store.Get(fingerprints[i]), nullptr);
  }
}

TEST(DurableStoreTest, IdenticalPutDoesNotGrowTheWal) {
  TempDir dir;
  obs::MetricsRegistry metrics;
  TableRegistry registry({}, &metrics);
  DurableStore store(&registry, StoreConfig(dir.path(), &metrics));
  ASSERT_TRUE(store.Recover().ok());
  ASSERT_TRUE(store.Put(MakeNationsTable()).ok());
  uint64_t bytes_after_first = store.wal_bytes();
  auto again = store.Put(MakeNationsTable());
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->inserted);
  EXPECT_EQ(store.wal_bytes(), bytes_after_first);  // dedup: no new record
  EXPECT_EQ(store.durable_tables(), 1u);
}

TEST(DurableStoreTest, PutEncodedBytesValidatesBeforeLogging) {
  TempDir dir;
  obs::MetricsRegistry metrics;
  TableRegistry registry({}, &metrics);
  DurableStore store(&registry, StoreConfig(dir.path(), &metrics));
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_FALSE(store.PutEncodedBytes("not codec bytes").ok());
  EXPECT_EQ(store.wal_bytes(), 0u);  // the WAL never holds invalid bytes

  std::string good = EncodeTableBytes(MakeFinanceTable());
  auto put = store.PutEncodedBytes(good);
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put->fingerprint, Codec::Fingerprint(good));
  EXPECT_EQ(store.GetEncodedBytes(put->fingerprint).ValueOrDie(), good);
}

// The acceptance pin: kill -9 at EVERY WAL offset, restart, and the store
// serves exactly the acked prefix — acked tables byte-identical, unacked
// tables absent.
TEST(DurableStoreTest, KillAtEveryWalOffsetRecoversExactlyTheAckedPrefix) {
  TempDir work;
  // Build a golden store: 5 tables, each one WAL record, known boundaries.
  std::vector<std::string> fingerprints;
  std::vector<std::string> encoded;
  std::vector<uint64_t> record_end;
  {
    obs::MetricsRegistry metrics;
    TableRegistry registry({}, &metrics);
    DurableStore store(&registry, StoreConfig(work.Sub("golden"), &metrics));
    ASSERT_TRUE(store.Recover().ok());
    Rng rng(11);
    std::vector<Table> tables = {MakeNationsTable(), MakeFinanceTable()};
    for (int i = 0; i < 3; ++i) tables.push_back(RandomTable(&rng));
    for (Table& table : tables) {
      encoded.push_back(EncodeTableBytes(table));
      auto put = store.Put(std::move(table));
      ASSERT_TRUE(put.ok());
      fingerprints.push_back(put->fingerprint);
      record_end.push_back(store.wal_bytes());
    }
  }
  const std::string golden_wal = ReadFile(work.Sub("golden") + "/wal.log");
  ASSERT_EQ(golden_wal.size(), record_end.back());

  // Byte-offset sweep. Each cut simulates kill -9 after exactly `cut`
  // bytes reached the file; recovery must serve the longest record prefix.
  for (size_t cut = 0; cut <= golden_wal.size(); ++cut) {
    std::string crash_dir = work.Sub("crash");
    std::error_code ec;
    fs::remove_all(crash_dir, ec);
    fs::create_directories(crash_dir);
    WriteFile(crash_dir + "/wal.log", golden_wal.substr(0, cut));

    obs::MetricsRegistry metrics;
    TableRegistry registry({}, &metrics);
    DurableStore store(&registry, StoreConfig(crash_dir, &metrics));
    ASSERT_TRUE(store.Recover().ok()) << "cut=" << cut;

    size_t acked = 0;
    while (acked < record_end.size() && record_end[acked] <= cut) ++acked;
    ASSERT_EQ(store.recovered_tables(), acked) << "cut=" << cut;
    for (size_t i = 0; i < fingerprints.size(); ++i) {
      if (i < acked) {
        EXPECT_TRUE(store.Contains(fingerprints[i])) << "cut=" << cut;
        EXPECT_EQ(store.GetEncodedBytes(fingerprints[i]).ValueOrDie(),
                  encoded[i])
            << "cut=" << cut;
      } else {
        EXPECT_FALSE(store.Contains(fingerprints[i])) << "cut=" << cut;
        EXPECT_EQ(store.Get(fingerprints[i]), nullptr) << "cut=" << cut;
      }
    }
    // The repaired store accepts new puts (the torn tail is gone).
    ASSERT_TRUE(store.Put(MakeNationsTable()).ok()) << "cut=" << cut;
  }
}

TEST(DurableStoreTest, EvictedDurableTableReloadsFromDisk) {
  TempDir dir;
  obs::MetricsRegistry metrics;
  // A registry small enough that a handful of tables forces LRU eviction
  // (single shard so eviction pressure is deterministic).
  RegistryConfig small;
  small.capacity_bytes = 1;  // every insert evicts the previous resident
  small.num_shards = 1;
  TableRegistry registry(small, &metrics);
  DurableStore store(&registry, StoreConfig(dir.path(), &metrics));
  ASSERT_TRUE(store.Recover().ok());

  std::string first_bytes = EncodeTableBytes(MakeNationsTable());
  auto first = store.Put(MakeNationsTable());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(store.Put(MakeFinanceTable()).ok());  // evicts the first

  EXPECT_EQ(registry.Get(first->fingerprint), nullptr);  // really evicted
  // The durable store turns that hard miss into a disk reload.
  std::shared_ptr<const Table> reloaded = store.Get(first->fingerprint);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(EncodeTableBytes(*reloaded), first_bytes);
  EXPECT_GE(store.evict_reloads(), 1u);
  EXPECT_EQ(metrics.counter("store_evict_reload_total")->value(),
            store.evict_reloads());
}

TEST(DurableStoreTest, CompactionPreservesEveryTableAndShrinksTheWal) {
  TempDir dir;
  std::vector<std::string> fingerprints;
  std::vector<std::string> encoded;
  {
    obs::MetricsRegistry metrics;
    TableRegistry registry({}, &metrics);
    DurableStoreConfig config = StoreConfig(dir.path(), &metrics);
    config.compact_wal_bytes = 1;  // every put after the first compacts
    TableRegistry reg2({}, &metrics);
    DurableStore store(&registry, config);
    ASSERT_TRUE(store.Recover().ok());
    Rng rng(23);
    for (int i = 0; i < 5; ++i) {
      Table table = RandomTable(&rng);
      encoded.push_back(EncodeTableBytes(table));
      auto put = store.Put(std::move(table));
      ASSERT_TRUE(put.ok()) << put.status().ToString();
      fingerprints.push_back(put->fingerprint);
    }
    EXPECT_GE(store.compactions(), 1u);
    EXPECT_TRUE(fs::exists(dir.Sub("snapshot.log")));
    // Everything is still servable from the live store after compaction.
    for (size_t i = 0; i < fingerprints.size(); ++i) {
      EXPECT_EQ(store.GetEncodedBytes(fingerprints[i]).ValueOrDie(),
                encoded[i]);
    }
  }
  // ...and from a recovered one (snapshot + WAL replay).
  obs::MetricsRegistry metrics;
  TableRegistry registry({}, &metrics);
  DurableStore store(&registry, StoreConfig(dir.path(), &metrics));
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_EQ(store.recovered_tables(), fingerprints.size());
  for (size_t i = 0; i < fingerprints.size(); ++i) {
    EXPECT_EQ(store.GetEncodedBytes(fingerprints[i]).ValueOrDie(),
              encoded[i]);
  }
}

TEST(DurableStoreTest, RecoverySkipsCorruptRecordsAndKeepsTheRest) {
  TempDir dir;
  std::string a = EncodeTableBytes(MakeNationsTable());
  std::string b = EncodeTableBytes(MakeFinanceTable());
  std::string wal = Wal::EncodeRecord(a) + Wal::EncodeRecord(b);
  // Corrupt a payload byte of the FIRST record (framing intact).
  wal[Wal::kRecordHeaderBytes + 5] ^= 0x40;
  fs::create_directories(dir.path());
  WriteFile(dir.Sub("wal.log"), wal);

  obs::MetricsRegistry metrics;
  TableRegistry registry({}, &metrics);
  DurableStore store(&registry, StoreConfig(dir.path(), &metrics));
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_EQ(store.recovered_tables(), 1u);
  EXPECT_TRUE(store.Contains(Codec::Fingerprint(b)));
  EXPECT_FALSE(store.Contains(Codec::Fingerprint(a)));
  EXPECT_GE(metrics.counter("store_wal_corrupt_records_total")->value(),
            1u);
}

TEST(DurableStoreTest, RecoverFailsWhenDirIsAFile) {
  TempDir dir;
  WriteFile(dir.Sub("occupied"), "i am a file");
  obs::MetricsRegistry metrics;
  TableRegistry registry({}, &metrics);
  DurableStore store(&registry, StoreConfig(dir.Sub("occupied"), &metrics));
  EXPECT_FALSE(store.Recover().ok());
}

// -------------------------------------------------- serve::Server wiring

const char* kMedalsCsv =
    "nation,gold,silver,bronze,total\n"
    "united states,10,12,8,30\n"
    "china,8,6,10,24\n"
    "japan,5,9,4,18\n";

std::string JsonEscapeNewlines(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

std::string ExtractField(const std::string& response, const std::string& key) {
  std::string needle = "\"" + key + "\":\"";
  size_t pos = response.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  size_t end = response.find('"', pos);
  return response.substr(pos, end - pos);
}

const InferenceEngine& SharedEngine() {
  static const InferenceEngine engine = [] {
    EngineConfig config;
    return InferenceEngine::Create(config, "", "").ValueOrDie();
  }();
  return engine;
}

ServerConfig DurableServerConfig(const std::string& dir,
                                 obs::MetricsRegistry* metrics) {
  ServerConfig config;
  config.scheduler.num_workers = 1;
  config.metrics = metrics;
  config.store_dir = dir;
  config.store_fsync = FsyncMode::kNever;
  return config;
}

TEST(ServerDurableTest, TableRefSurvivesServerRestartNonDegraded) {
  TempDir dir;
  std::string fingerprint;
  std::string first_answer;
  const std::string query =
      "The gold of the row whose nation is china is 8.";
  {
    obs::MetricsRegistry metrics;
    Server server(&SharedEngine(), DurableServerConfig(dir.path(), &metrics));
    ASSERT_TRUE(server.recovery_status().ok());
    std::string put = server.HandleLine(
        "{\"id\":1,\"op\":\"put_table\",\"table\":\"" +
        JsonEscapeNewlines(kMedalsCsv) + "\"}");
    ASSERT_NE(put.find("\"status\":\"ok\""), std::string::npos) << put;
    fingerprint = ExtractField(put, "fingerprint");
    ASSERT_EQ(fingerprint.size(), 16u);
    first_answer = server.HandleLine(
        "{\"id\":2,\"op\":\"verify\",\"table_ref\":\"" + fingerprint +
        "\",\"query\":\"" + query + "\"}");
    ASSERT_NE(first_answer.find("\"status\":\"ok\""), std::string::npos);
  }  // server restarts (same store dir, fresh registry)

  obs::MetricsRegistry metrics;
  Server server(&SharedEngine(), DurableServerConfig(dir.path(), &metrics));
  ASSERT_TRUE(server.recovery_status().ok());
  EXPECT_GE(server.durable_store()->recovered_tables(), 1u);
  std::string answer = server.HandleLine(
      "{\"id\":2,\"op\":\"verify\",\"table_ref\":\"" + fingerprint +
      "\",\"query\":\"" + query + "\"}");
  // Identical response bytes, served from the recovered registry — not
  // the degraded inline-fallback path (there is no inline table to fall
  // back to) and not an error.
  EXPECT_EQ(answer, first_answer);
  EXPECT_EQ(answer.find("\"degraded\""), std::string::npos) << answer;
  EXPECT_EQ(metrics.counter("degraded_store_fallback_total")->value(), 0u);
}

TEST(ServerDurableTest, GetTableAndPutTableHexRoundTrip) {
  TempDir dir;
  obs::MetricsRegistry metrics;
  Server server(&SharedEngine(), DurableServerConfig(dir.path(), &metrics));
  ASSERT_TRUE(server.recovery_status().ok());
  std::string put = server.HandleLine(
      "{\"id\":1,\"op\":\"put_table\",\"table\":\"" +
      JsonEscapeNewlines(kMedalsCsv) + "\"}");
  std::string fingerprint = ExtractField(put, "fingerprint");
  ASSERT_EQ(fingerprint.size(), 16u);

  // get_table returns the canonical codec bytes as hex.
  std::string got = server.HandleLine(
      "{\"id\":2,\"op\":\"get_table\",\"table_ref\":\"" + fingerprint +
      "\"}");
  ASSERT_NE(got.find("\"status\":\"ok\""), std::string::npos) << got;
  std::string hex = ExtractField(got, "table_hex");
  ASSERT_FALSE(hex.empty());
  std::string bytes = Codec::FromHex(hex).ValueOrDie();
  EXPECT_EQ(Codec::Fingerprint(bytes), fingerprint);

  // A second server (fresh, memory-only) accepts those bytes via
  // put_table table_hex and registers the same fingerprint — the router's
  // read-repair delivery path.
  ServerConfig memory_only;
  memory_only.scheduler.num_workers = 1;
  obs::MetricsRegistry metrics2;
  memory_only.metrics = &metrics2;
  Server sibling(&SharedEngine(), memory_only);
  std::string repaired = sibling.HandleLine(
      "{\"id\":3,\"op\":\"put_table\",\"table_hex\":\"" + hex + "\"}");
  ASSERT_NE(repaired.find("\"status\":\"ok\""), std::string::npos)
      << repaired;
  EXPECT_EQ(ExtractField(repaired, "fingerprint"), fingerprint);
  std::string answer = sibling.HandleLine(
      "{\"id\":4,\"op\":\"verify\",\"table_ref\":\"" + fingerprint +
      "\",\"query\":\"The gold of the row whose nation is china is 8.\"}");
  EXPECT_NE(answer.find("\"status\":\"ok\""), std::string::npos) << answer;

  // get_table for an unknown ref is a clean error, not a crash.
  std::string missing = server.HandleLine(
      "{\"id\":5,\"op\":\"get_table\",\"table_ref\":\"0000000000000000\"}");
  EXPECT_NE(missing.find("\"status\":\"error\""), std::string::npos);
  // put_table with bad hex is rejected without touching the WAL.
  std::string bad = server.HandleLine(
      "{\"id\":6,\"op\":\"put_table\",\"table_hex\":\"zz\"}");
  EXPECT_NE(bad.find("\"status\":\"error\""), std::string::npos);
}

TEST(ServerDurableTest, RecoveryFailureIsSurfacedNotSwallowed) {
  TempDir dir;
  WriteFile(dir.Sub("blocked"), "file in the way");
  obs::MetricsRegistry metrics;
  Server server(&SharedEngine(),
                DurableServerConfig(dir.Sub("blocked"), &metrics));
  EXPECT_FALSE(server.recovery_status().ok());
}

}  // namespace
}  // namespace uctr::store
