// Property-based tests of the logical-form executor: algebraic identities
// between operators must hold on arbitrary tables.

#include <gtest/gtest.h>

#include "common/numeric.h"
#include "logic/executor.h"
#include "logic/parser.h"
#include "program/auto_generator.h"
#include "program/sampler.h"
#include "tests/test_util.h"

namespace uctr::logic {
namespace {

class LogicPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam()};

  Value Exec(const std::string& lf, const Table& t) {
    auto r = ExecuteLogicalForm(lf, t);
    EXPECT_TRUE(r.ok()) << lf << " -> " << r.status();
    return r.ok() ? r->scalar() : Value::Null();
  }

  std::string RandomNumericColumn(const Table& t) {
    return t.schema().column(1 + rng_.Index(t.num_columns() - 1)).name;
  }
};

TEST_P(LogicPropertyTest, NthMaxOneEqualsMax) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string col = RandomNumericColumn(t);
  Value nth = Exec("nth_max { all_rows ; " + col + " ; 1 }", t);
  Value max = Exec("max { all_rows ; " + col + " }", t);
  EXPECT_TRUE(nth.Equals(max));
  Value nth_min = Exec("nth_min { all_rows ; " + col + " ; 1 }", t);
  Value min = Exec("min { all_rows ; " + col + " }", t);
  EXPECT_TRUE(nth_min.Equals(min));
}

TEST_P(LogicPropertyTest, ArgmaxHopEqualsMax) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string col = RandomNumericColumn(t);
  Value via_argmax =
      Exec("hop { argmax { all_rows ; " + col + " } ; " + col + " }", t);
  Value direct = Exec("max { all_rows ; " + col + " }", t);
  EXPECT_TRUE(via_argmax.Equals(direct));
}

TEST_P(LogicPropertyTest, FilterPartitionsCountsNoNulls) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string col = RandomNumericColumn(t);
  std::string v = std::to_string(rng_.UniformInt(0, 50));
  double eq = Exec("count { filter_eq { all_rows ; " + col + " ; " + v +
                       " } }",
                   t)
                  .number();
  double ne = Exec("count { filter_not_eq { all_rows ; " + col + " ; " + v +
                       " } }",
                   t)
                  .number();
  EXPECT_DOUBLE_EQ(eq + ne, static_cast<double>(t.num_rows()));

  double gt = Exec("count { filter_greater { all_rows ; " + col + " ; " + v +
                       " } }",
                   t)
                  .number();
  double le = Exec("count { filter_less_eq { all_rows ; " + col + " ; " + v +
                       " } }",
                   t)
                  .number();
  EXPECT_DOUBLE_EQ(gt + le, static_cast<double>(t.num_rows()));
}

TEST_P(LogicPropertyTest, FiltersCommute) {
  Table t = uctr::testing::RandomTable(&rng_, 0, 3);
  std::string c1 = t.schema().column(1).name;
  std::string c2 = t.schema().column(2).name;
  std::string v1 = std::to_string(rng_.UniformInt(10, 40));
  std::string v2 = std::to_string(rng_.UniformInt(10, 40));
  double ab = Exec("count { filter_greater { filter_less { all_rows ; " +
                       c1 + " ; " + v1 + " } ; " + c2 + " ; " + v2 + " } }",
                   t)
                  .number();
  double ba = Exec("count { filter_less { filter_greater { all_rows ; " +
                       c2 + " ; " + v2 + " } ; " + c1 + " ; " + v1 + " } }",
                   t)
                  .number();
  EXPECT_DOUBLE_EQ(ab, ba);
}

TEST_P(LogicPropertyTest, GreaterAntisymmetricWithLess) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string col = RandomNumericColumn(t);
  std::string a = "max { all_rows ; " + col + " }";
  std::string b = "avg { all_rows ; " + col + " }";
  bool greater = Exec("greater { " + a + " ; " + b + " }", t).boolean();
  bool less_swapped = Exec("less { " + b + " ; " + a + " }", t).boolean();
  EXPECT_EQ(greater, less_swapped);
}

TEST_P(LogicPropertyTest, MajorityImpliesCountThreshold) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string col = RandomNumericColumn(t);
  std::string v = std::to_string(rng_.UniformInt(0, 50));
  bool most =
      Exec("most_greater { all_rows ; " + col + " ; " + v + " }", t)
          .boolean();
  double matching = Exec("count { filter_greater { all_rows ; " + col +
                             " ; " + v + " } }",
                         t)
                        .number();
  EXPECT_EQ(most, matching * 2 > static_cast<double>(t.num_rows()));
}

TEST_P(LogicPropertyTest, AllImpliesMost) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string col = RandomNumericColumn(t);
  std::string v = std::to_string(rng_.UniformInt(0, 20));
  bool all = Exec("all_greater_eq { all_rows ; " + col + " ; " + v + " }", t)
                 .boolean();
  bool most =
      Exec("most_greater_eq { all_rows ; " + col + " ; " + v + " }", t)
          .boolean();
  if (all && t.num_rows() >= 1) EXPECT_TRUE(most);
}

TEST_P(LogicPropertyTest, SumEqualsAvgTimesCount) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string col = RandomNumericColumn(t);
  double sum = Exec("sum { all_rows ; " + col + " }", t).number();
  double avg = Exec("avg { all_rows ; " + col + " }", t).number();
  EXPECT_TRUE(NearlyEqual(sum, avg * static_cast<double>(t.num_rows())))
      << sum << " vs " << avg * t.num_rows();
}

TEST_P(LogicPropertyTest, OnlyMatchesCountOne) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string col = RandomNumericColumn(t);
  std::string v = std::to_string(rng_.UniformInt(0, 50));
  std::string filter =
      "filter_eq { all_rows ; " + col + " ; " + v + " }";
  bool only = Exec("only { " + filter + " }", t).boolean();
  double count = Exec("count { " + filter + " }", t).number();
  EXPECT_EQ(only, count == 1.0);
}

TEST_P(LogicPropertyTest, RandomClaimsRoundTripThroughToString) {
  // Auto-generated templates instantiated on random tables give arbitrary
  // deep programs; re-parsing their canonical rendering must preserve the
  // execution result.
  Table t = uctr::testing::RandomTable(&rng_, 8, 3);
  AutoGenConfig config;
  AutoTemplateGenerator gen(config, &rng_);
  ProgramSampler sampler(&rng_);
  int checked = 0;
  for (int i = 0; i < 30 && checked < 8; ++i) {
    ProgramTemplate tmpl = gen.Propose();
    auto sampled = sampler.SampleClaim(tmpl, t, i % 2 == 0);
    if (!sampled.ok()) continue;
    ++checked;
    auto node = Parse(sampled->program.text).ValueOrDie();
    auto reparsed = Parse(node->ToString()).ValueOrDie();
    auto r1 = Execute(*node, t).ValueOrDie();
    auto r2 = Execute(*reparsed, t).ValueOrDie();
    EXPECT_TRUE(r1.scalar().Equals(r2.scalar())) << node->ToString();
  }
  EXPECT_GE(checked, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogicPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace uctr::logic
