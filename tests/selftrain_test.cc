// Self-training orchestrator tests: crash/resume byte-identity at every
// phase boundary, confidence-filter edge cases, manifest validation, and
// the gen-checkpoint config fingerprinting the orchestrator relies on.

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/file_util.h"
#include "datasets/corpus.h"
#include "fault/fault.h"
#include "gen/parallel.h"
#include "model/confidence.h"
#include "model/linear_model.h"
#include "selftrain/manifest.h"
#include "selftrain/selftrain.h"

namespace uctr {
namespace {

using selftrain::ConfigFingerprint;
using selftrain::Manifest;
using selftrain::RoundPhase;
using selftrain::SelfTrainConfig;
using selftrain::SelfTrainer;
using selftrain::SelfTrainReport;

/// Fresh per-test scratch directory under the system temp dir.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("uctr_selftrain_test_" + tag + "_" +
              std::to_string(static_cast<unsigned long>(::getpid()))))
                .string();
    std::filesystem::remove_all(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Disarms the global fault injector on entry and exit; optionally arms a
/// spec for the scope.
class FaultGuard {
 public:
  FaultGuard() { fault::FaultInjector::Global().Disarm(); }
  explicit FaultGuard(const std::string& spec) {
    fault::FaultInjector::Global().Disarm();
    fault::FaultInjector::Global().Seed(0xFA17);
    Status s = fault::FaultInjector::Global().ArmSpec(spec);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  ~FaultGuard() { fault::FaultInjector::Global().Disarm(); }
};

/// Tiny-but-real loop configuration: small enough that the
/// kill-at-every-boundary sweep stays fast, big enough that every phase
/// does real work.
SelfTrainConfig TinyConfig(const std::string& state_dir, size_t rounds = 2) {
  SelfTrainConfig config;
  config.state_dir = state_dir;
  config.rounds = rounds;
  config.seed = 7;
  config.tables_per_round = 4;
  config.samples_per_table = 4;
  config.eval_tables = 4;
  config.eval_samples_per_table = 4;
  config.num_threads = 2;
  return config;
}

std::string MustRead(const std::string& path) {
  auto text = ReadFileText(path);
  EXPECT_TRUE(text.ok()) << path << ": " << text.status().ToString();
  return text.ok() ? text.ValueOrDie() : "";
}

/// The durable artifacts that must be byte-identical across any
/// kill/resume schedule. attempts.log is deliberately absent: it is an
/// append-only operational journal whose line order races across
/// generator threads even between two uninterrupted runs.
std::vector<std::string> ArtifactsOf(const SelfTrainConfig& config) {
  std::vector<std::string> paths = {config.state_dir + "/MANIFEST"};
  for (size_t r = 0; r <= config.rounds; ++r) {
    std::string dir = config.state_dir + "/round-" + std::to_string(r);
    paths.push_back(dir + "/filter");
    paths.push_back(dir + "/weights.txt");
    paths.push_back(dir + "/losses");
    paths.push_back(dir + "/RESULT");
  }
  return paths;
}

// ----------------------------------------------------------- manifest

TEST(SelfTrainManifestTest, SerializeParseRoundTrip) {
  Manifest manifest;
  manifest.seed = 99;
  manifest.config_fingerprint = 0xDEADBEEF;
  manifest.MarkDone(0, RoundPhase::kGenerate);
  manifest.MarkDone(0, RoundPhase::kLabel);
  manifest.MarkDone(1, RoundPhase::kGenerate);

  auto parsed = Manifest::Parse(manifest.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seed, 99u);
  EXPECT_EQ(parsed->config_fingerprint, 0xDEADBEEFu);
  EXPECT_TRUE(parsed->IsDone(0, RoundPhase::kGenerate));
  EXPECT_TRUE(parsed->IsDone(1, RoundPhase::kGenerate));
  EXPECT_FALSE(parsed->IsDone(1, RoundPhase::kLabel));
  EXPECT_FALSE(parsed->RoundComplete(0));
  EXPECT_EQ(parsed->Serialize(), manifest.Serialize());
}

TEST(SelfTrainManifestTest, RejectsCorruptInput) {
  EXPECT_FALSE(Manifest::Parse("not a manifest").ok());
  EXPECT_FALSE(Manifest::Parse("uctr-selftrain v1\nseed 1\n").ok());  // no config
  EXPECT_FALSE(
      Manifest::Parse("uctr-selftrain v1\nseed 1\nconfig 2\ndone 0 9\n")
          .ok());  // phase out of range
  EXPECT_FALSE(
      Manifest::Parse("uctr-selftrain v1\nseed 1\nconfig 2\nbogus line\n")
          .ok());
}

TEST(SelfTrainManifestTest, LoadRejectsMismatchedKey) {
  ScratchDir dir("manifest_key");
  std::filesystem::create_directories(dir.path());
  std::string path = dir.path() + "/MANIFEST";

  auto fresh = selftrain::LoadOrCreateManifest(path, 1, 2);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(selftrain::StoreManifest(path, *fresh).ok());

  EXPECT_TRUE(selftrain::LoadOrCreateManifest(path, 1, 2).ok());
  auto wrong_seed = selftrain::LoadOrCreateManifest(path, 9, 2);
  EXPECT_FALSE(wrong_seed.ok());
  auto wrong_config = selftrain::LoadOrCreateManifest(path, 1, 9);
  EXPECT_FALSE(wrong_config.ok());
}

// --------------------------------------------------------- confidence

TEST(ConfidenceTest, MarginToConfidenceRejectsInvalidMargins) {
  EXPECT_FALSE(
      model::MarginToConfidence(std::numeric_limits<double>::quiet_NaN())
          .ok());
  EXPECT_FALSE(
      model::MarginToConfidence(std::numeric_limits<double>::infinity())
          .ok());
  EXPECT_FALSE(model::MarginToConfidence(-0.1).ok());

  auto zero = model::MarginToConfidence(0.0);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(*zero, 0.0);
  auto one = model::MarginToConfidence(1.0);
  ASSERT_TRUE(one.ok());
  EXPECT_DOUBLE_EQ(*one, 0.5);
  // Monotone squash: bigger margins, bigger confidence, always < 1.
  EXPECT_LT(*model::MarginToConfidence(1.0),
            *model::MarginToConfidence(5.0));
  EXPECT_LT(*model::MarginToConfidence(1e9), 1.0);
}

TEST(ConfidenceTest, ApplyPolicyKeepsAndDrops) {
  model::FilterPolicy policy;
  policy.threshold = 0.3;
  policy.temperature = 1.0;
  policy.require_agreement = true;

  // All kept: confident and agreeing.
  auto kept = model::ApplyPolicy({/*score=*/0.4, /*agrees=*/true}, policy);
  ASSERT_TRUE(kept.ok());
  EXPECT_TRUE(kept->keep);
  EXPECT_DOUBLE_EQ(kept->weight, 0.4);

  // All dropped: below threshold.
  auto low = model::ApplyPolicy({0.2, true}, policy);
  ASSERT_TRUE(low.ok());
  EXPECT_FALSE(low->keep);

  // Dropped by disagreement despite high confidence.
  auto disagree = model::ApplyPolicy({0.45, false}, policy);
  ASSERT_TRUE(disagree.ok());
  EXPECT_FALSE(disagree->keep);
  policy.require_agreement = false;
  auto tolerated = model::ApplyPolicy({0.45, false}, policy);
  ASSERT_TRUE(tolerated.ok());
  EXPECT_TRUE(tolerated->keep);

  // Sharpening temperature: weight = score^(1/T).
  policy.temperature = 0.5;
  auto sharpened = model::ApplyPolicy({0.4, true}, policy);
  ASSERT_TRUE(sharpened.ok());
  EXPECT_DOUBLE_EQ(sharpened->weight, 0.4 * 0.4);

  // Corrupt inputs are errors, never silent keeps.
  EXPECT_FALSE(
      model::ApplyPolicy({std::numeric_limits<double>::quiet_NaN(), true},
                         policy)
          .ok());
  policy.temperature = 0.0;
  EXPECT_FALSE(model::ApplyPolicy({0.4, true}, policy).ok());
}

TEST(ConfidenceTest, KeptWeightIsAlwaysTrainable) {
  // Degenerate corner: threshold 0 keeps a zero-confidence sample; its
  // weight must still be positive or the trainer would silently skip it.
  model::FilterPolicy policy;
  policy.threshold = 0.0;
  policy.require_agreement = false;
  auto decision = model::ApplyPolicy({0.0, false}, policy);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->keep);
  EXPECT_GT(decision->weight, 0.0);
}

// ------------------------------------------- weighted linear training

TEST(WeightedTrainingTest, UnitWeightsReproduceUnweightedBitForBit) {
  Rng rng_a(3), rng_b(3);
  std::vector<model::Example> unweighted, weighted;
  for (int i = 0; i < 40; ++i) {
    model::Example ex;
    ex.features = {{static_cast<uint32_t>(i % 7), 1.0f},
                   {static_cast<uint32_t>(13 + i % 5), 0.5f}};
    ex.label = i % 2;
    unweighted.push_back(ex);
    ex.weight = 1.0f;
    weighted.push_back(ex);
  }
  model::LinearModel a(2, 64), b(2, 64);
  model::TrainConfig config;
  a.Train(unweighted, config, &rng_a);
  b.Train(weighted, config, &rng_b);
  EXPECT_EQ(a.SaveToString(), b.SaveToString());
}

TEST(WeightedTrainingTest, InvalidWeightsAreSkippedNotPropagated) {
  Rng rng_a(3), rng_b(3);
  std::vector<model::Example> clean, polluted;
  for (int i = 0; i < 20; ++i) {
    model::Example ex;
    ex.features = {{static_cast<uint32_t>(i % 7), 1.0f}};
    ex.label = i % 2;
    clean.push_back(ex);
    polluted.push_back(ex);
  }
  // Poison examples: NaN, inf, zero, and negative weights must all be
  // skipped, leaving training identical to the clean set. Shuffle is off
  // so the two runs visit the shared examples in the same order.
  model::Example poison;
  poison.features = {{3, 10.0f}};
  poison.label = 1;
  for (float w : {std::numeric_limits<float>::quiet_NaN(),
                  std::numeric_limits<float>::infinity(), 0.0f, -2.0f}) {
    poison.weight = w;
    polluted.push_back(poison);
  }
  model::TrainConfig config;
  config.shuffle = false;
  model::LinearModel a(2, 64), b(2, 64);
  std::vector<double> losses_a, losses_b;
  a.Train(clean, config, &rng_a, &losses_a);
  b.Train(polluted, config, &rng_b, &losses_b);
  EXPECT_EQ(a.SaveToString(), b.SaveToString());
  EXPECT_EQ(losses_a, losses_b);
}

TEST(WeightedTrainingTest, EpochLossTrajectoryIsExposed) {
  Rng rng(3);
  std::vector<model::Example> examples;
  for (int i = 0; i < 30; ++i) {
    model::Example ex;
    ex.features = {{static_cast<uint32_t>(i % 5), 1.0f}};
    ex.label = i % 2 == 0 && i % 5 < 3 ? 0 : 1;
    examples.push_back(ex);
  }
  model::TrainConfig config;
  config.epochs = 6;
  model::LinearModel model(2, 64);
  std::vector<double> losses;
  double last = model.Train(examples, config, &rng, &losses);
  ASSERT_EQ(losses.size(), 6u);
  EXPECT_DOUBLE_EQ(losses.back(), last);
  EXPECT_LT(losses.back(), losses.front()) << "training failed to converge";
}

// ----------------------------------- gen-checkpoint config fingerprint

TEST(GenConfigFingerprintTest, DistinguishesDatasetShapingKnobs) {
  GenerationConfig base;
  uint64_t fp = GenerationConfigFingerprint(base);
  EXPECT_EQ(fp, GenerationConfigFingerprint(base)) << "must be stable";

  GenerationConfig changed = base;
  changed.samples_per_table += 1;
  EXPECT_NE(GenerationConfigFingerprint(changed), fp);
  changed = base;
  changed.task = TaskType::kFactVerification;
  changed.program_types = {ProgramType::kLogicalForm};
  EXPECT_NE(GenerationConfigFingerprint(changed), fp);
  changed = base;
  changed.supported_fraction = 0.75;
  EXPECT_NE(GenerationConfigFingerprint(changed), fp);
  changed = base;
  changed.reasoning_weights["superlative"] = 2.0;
  EXPECT_NE(GenerationConfigFingerprint(changed), fp);
  changed = base;
  changed.nl.stochastic = !changed.nl.stochastic;
  EXPECT_NE(GenerationConfigFingerprint(changed), fp);
}

TEST(GenConfigFingerprintTest, CheckpointRejectsConfigMismatch) {
  FaultGuard clean;
  ScratchDir dir("gen_mismatch");
  static const TemplateLibrary library = TemplateLibrary::Builtin();
  std::vector<TableWithText> corpus;
  {
    Rng rng(5);
    datasets::CorpusConfig corpus_config;
    corpus_config.num_tables = 3;
    corpus = datasets::CorpusGenerator(corpus_config, &rng).Generate();
  }
  GenerationConfig config;
  config.samples_per_table = 3;
  CheckpointOptions checkpoint;
  checkpoint.directory = dir.path();
  auto first = GenerateDatasetCheckpointed(config, &library, corpus, 5, 1,
                                           checkpoint);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Same directory, same seed and corpus, different generation config:
  // the v2 manifest's config fingerprint must reject the resume.
  config.samples_per_table = 4;
  auto second = GenerateDatasetCheckpointed(config, &library, corpus, 5, 1,
                                            checkpoint);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------- orchestrator proper

TEST(SelfTrainerTest, UninterruptedRunCompletesAndReports) {
  FaultGuard clean;
  ScratchDir dir("full");
  SelfTrainConfig config = TinyConfig(dir.path());
  SelfTrainer trainer(config);
  auto report = trainer.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->complete);
  ASSERT_EQ(report->rounds.size(), config.rounds + 1);
  EXPECT_EQ(report->phases_run, (config.rounds + 1) * 4);
  // Round 0 bootstraps from everything...
  EXPECT_EQ(report->rounds[0].kept, report->rounds[0].generated);
  EXPECT_GT(report->rounds[0].generated, 0u);
  // ...and later rounds filter (kept + dropped always covers scored).
  for (size_t r = 1; r < report->rounds.size(); ++r) {
    EXPECT_EQ(report->rounds[r].kept + report->rounds[r].dropped,
              report->rounds[r].generated);
  }
  // The delta table is part of the byte-identity contract.
  EXPECT_NE(report->DeltaTable().find("| round |"), std::string::npos);
  // Re-running over the finished directory resumes everything.
  auto rerun = SelfTrainer(config).Run();
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_TRUE(rerun->complete);
  EXPECT_EQ(rerun->phases_run, 0u);
  EXPECT_EQ(rerun->DeltaTable(), report->DeltaTable());
}

TEST(SelfTrainerTest, KillAtEveryPhaseBoundaryResumesByteIdentically) {
  FaultGuard clean;
  ScratchDir ref_dir("boundary_ref");
  SelfTrainConfig ref_config = TinyConfig(ref_dir.path());
  auto reference = SelfTrainer(ref_config).Run();
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(reference->complete);

  const size_t total_phases = (ref_config.rounds + 1) * 4;
  for (size_t budget = 1; budget < total_phases; ++budget) {
    ScratchDir dir("boundary_" + std::to_string(budget));
    SelfTrainConfig config = TinyConfig(dir.path());
    // "Kill" after `budget` phases (the budget stops at a phase boundary
    // with the manifest durable, exactly like kill -9 between phases)...
    config.max_phase_steps = budget;
    auto partial = SelfTrainer(config).Run();
    ASSERT_TRUE(partial.ok()) << partial.status().ToString();
    EXPECT_FALSE(partial->complete);
    EXPECT_EQ(partial->phases_run, budget);
    // ...then resume to completion.
    config.max_phase_steps = 0;
    auto resumed = SelfTrainer(config).Run();
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    ASSERT_TRUE(resumed->complete);
    EXPECT_EQ(resumed->phases_run, total_phases - budget);

    EXPECT_EQ(resumed->DeltaTable(), reference->DeltaTable())
        << "budget " << budget;
    for (const std::string& artifact : ArtifactsOf(ref_config)) {
      std::string relative = artifact.substr(ref_config.state_dir.size());
      EXPECT_EQ(MustRead(config.state_dir + relative), MustRead(artifact))
          << "artifact " << relative << " diverged at budget " << budget;
    }
  }
}

TEST(SelfTrainerTest, TransientFaultsAreRetriedInRun) {
  ScratchDir dir("transient");
  SelfTrainConfig config = TinyConfig(dir.path(), /*rounds=*/1);
  // One transient fault at each phase boundary: the retry policy must
  // absorb all of them within the same run.
  FaultGuard guard(
      "selftrain.generate=error(unavailable):n=1;"
      "selftrain.label=error(unavailable):n=1;"
      "selftrain.train=error(unavailable):n=1;"
      "selftrain.eval=error(unavailable):n=1");
  auto report = SelfTrainer(config).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->complete);
  EXPECT_GE(fault::FaultInjector::Global().injected_total(), 4u);
}

TEST(SelfTrainerTest, PermanentFaultAbortsThenResumesByteIdentically) {
  ScratchDir ref_dir("perm_ref");
  SelfTrainConfig ref_config = TinyConfig(ref_dir.path(), /*rounds=*/1);
  {
    FaultGuard clean;
    auto reference = SelfTrainer(ref_config).Run();
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  }

  ScratchDir dir("perm");
  SelfTrainConfig config = TinyConfig(dir.path(), /*rounds=*/1);
  {
    // A permanent (non-transient) fault mid-sequence: the run must abort
    // with the error rather than retry forever or corrupt state.
    FaultGuard guard("selftrain.train=error(internal):n=1");
    auto crashed = SelfTrainer(config).Run();
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.status().code(), StatusCode::kInternal);
  }
  {
    // Faults cleared: the same directory resumes to the reference bytes.
    FaultGuard clean;
    auto resumed = SelfTrainer(config).Run();
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_TRUE(resumed->complete);
    for (const std::string& artifact : ArtifactsOf(ref_config)) {
      std::string relative = artifact.substr(ref_config.state_dir.size());
      EXPECT_EQ(MustRead(config.state_dir + relative), MustRead(artifact))
          << "artifact " << relative;
    }
  }
}

TEST(SelfTrainerTest, StateDirRejectsMismatchedRun) {
  FaultGuard clean;
  ScratchDir dir("mismatch");
  SelfTrainConfig config = TinyConfig(dir.path(), /*rounds=*/0);
  ASSERT_TRUE(SelfTrainer(config).Run().ok());

  SelfTrainConfig other_seed = config;
  other_seed.seed += 1;
  auto seed_clash = SelfTrainer(other_seed).Run();
  ASSERT_FALSE(seed_clash.ok());
  EXPECT_EQ(seed_clash.status().code(), StatusCode::kInvalidArgument);

  SelfTrainConfig other_config = config;
  other_config.filter.threshold = 0.11;
  auto config_clash = SelfTrainer(other_config).Run();
  ASSERT_FALSE(config_clash.ok());
  EXPECT_EQ(config_clash.status().code(), StatusCode::kInvalidArgument);
}

TEST(SelfTrainerTest, RoundsCanBeExtendedOnTheSameStateDir) {
  FaultGuard clean;
  ScratchDir dir("extend");
  SelfTrainConfig config = TinyConfig(dir.path(), /*rounds=*/1);
  auto first = SelfTrainer(config).Run();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->complete);
  std::string round1_weights = MustRead(dir.path() + "/round-1/weights.txt");

  // --rounds is not part of the config fingerprint: extending the horizon
  // resumes rounds 0..1 untouched and runs round 2 on top.
  config.rounds = 2;
  auto extended = SelfTrainer(config).Run();
  ASSERT_TRUE(extended.ok()) << extended.status().ToString();
  EXPECT_TRUE(extended->complete);
  EXPECT_EQ(extended->phases_run, 4u);
  EXPECT_EQ(extended->rounds.size(), 3u);
  EXPECT_EQ(MustRead(dir.path() + "/round-1/weights.txt"), round1_weights);
}

TEST(SelfTrainerTest, AllDroppedRoundKeepsModelAndStateConsistent) {
  FaultGuard clean;
  ScratchDir dir("all_dropped");
  SelfTrainConfig config = TinyConfig(dir.path(), /*rounds=*/1);
  // A verifier margin never exceeds 1, so confidence caps at 0.5: a 0.9
  // threshold drops every candidate.
  config.filter.threshold = 0.9;
  auto report = SelfTrainer(config).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->complete);
  EXPECT_EQ(report->rounds[1].kept, 0u);
  EXPECT_EQ(report->rounds[1].dropped, report->rounds[1].generated);
  // Training on zero samples leaves the model exactly where it was.
  EXPECT_EQ(MustRead(dir.path() + "/round-1/weights.txt"),
            MustRead(dir.path() + "/round-0/weights.txt"));
  EXPECT_EQ(report->rounds[1].accuracy, report->rounds[0].accuracy);
}

TEST(SelfTrainerTest, ZeroThresholdWithoutAgreementKeepsEverything) {
  FaultGuard clean;
  ScratchDir dir("all_kept");
  SelfTrainConfig config = TinyConfig(dir.path(), /*rounds=*/1);
  config.filter.threshold = 0.0;
  config.filter.require_agreement = false;
  auto report = SelfTrainer(config).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->complete);
  EXPECT_EQ(report->rounds[1].kept, report->rounds[1].generated);
  EXPECT_EQ(report->rounds[1].dropped, 0u);
}

TEST(SelfTrainerTest, QaTaskRunsEndToEnd) {
  FaultGuard clean;
  ScratchDir dir("qa");
  SelfTrainConfig config = TinyConfig(dir.path(), /*rounds=*/1);
  config.task = TaskType::kQuestionAnswering;
  auto report = SelfTrainer(config).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->complete);
  EXPECT_EQ(report->rounds.size(), 2u);
}

TEST(SelfTrainerTest, ValidatesTopicSplit) {
  FaultGuard clean;
  ScratchDir dir("topics");
  SelfTrainConfig config = TinyConfig(dir.path());
  config.eval_topics = {0};  // overlaps train_topics {0, 1, 2}
  auto report = SelfTrainer(config).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(SelfTrainerTest, ConfigFingerprintSeparatesSchedules) {
  SelfTrainConfig a = TinyConfig("/tmp/x");
  SelfTrainConfig b = a;
  EXPECT_EQ(ConfigFingerprint(a), ConfigFingerprint(b));
  b.rounds += 5;          // horizon is resumable...
  b.num_threads = 7;      // ...and parallelism is artifact-invariant...
  b.max_phase_steps = 3;  // ...as is the test step budget.
  EXPECT_EQ(ConfigFingerprint(a), ConfigFingerprint(b));

  b = a;
  b.thresholds = {0.2, 0.4};
  EXPECT_NE(ConfigFingerprint(a), ConfigFingerprint(b));
  b = a;
  b.task = TaskType::kQuestionAnswering;
  EXPECT_NE(ConfigFingerprint(a), ConfigFingerprint(b));
  b = a;
  b.eval_topics = {4};
  EXPECT_NE(ConfigFingerprint(a), ConfigFingerprint(b));
}

}  // namespace
}  // namespace uctr
