// Differential tests of the unified IR / bytecode VM against the family
// tree-walk executors: on the compiled subset the two paths must be
// byte-identical — same values, same evidence rows, same error Status —
// for every built-in template over randomized tables. Also covers the
// plan codec round-trip, the bytecode verifier's rejection cases, plan
// cache keying/invalidation, and the concurrent first-compile race.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ir/ir.h"
#include "ir/plan_cache.h"
#include "obs/metrics.h"
#include "program/library.h"
#include "program/sampler.h"
#include "tests/test_util.h"

namespace uctr {
namespace {

ir::Family FamilyOf(ProgramType type) {
  switch (type) {
    case ProgramType::kSql:
      return ir::Family::kSql;
    case ProgramType::kLogicalForm:
      return ir::Family::kLogic;
    case ProgramType::kArithmetic:
      return ir::Family::kArith;
  }
  return ir::Family::kSql;
}

// Executes `program` down both paths and asserts observable identity:
// success/failure, error code + message, value types and display strings,
// and evidence rows. Exercised with the index both on and off.
void ExpectIdentical(const Program& program, const Table& table,
                     ir::PlanCache* cache) {
  for (bool use_index : {true, false}) {
    ExecOptions vm;
    vm.use_vm = true;
    vm.use_index = use_index;
    vm.plan_cache = cache;
    ExecOptions walk = vm;
    walk.use_vm = false;

    auto got = program.Execute(table, vm);
    auto want = program.Execute(table, walk);
    ASSERT_EQ(got.ok(), want.ok())
        << program.text << " (use_index=" << use_index << ")\n  vm:   "
        << (got.ok() ? "ok" : got.status().ToString()) << "\n  walk: "
        << (want.ok() ? "ok" : want.status().ToString());
    if (!got.ok()) {
      EXPECT_EQ(got.status().code(), want.status().code()) << program.text;
      EXPECT_EQ(got.status().message(), want.status().message())
          << program.text;
      continue;
    }
    const ExecResult& a = got.ValueOrDie();
    const ExecResult& b = want.ValueOrDie();
    ASSERT_EQ(a.values.size(), b.values.size()) << program.text;
    for (size_t i = 0; i < a.values.size(); ++i) {
      EXPECT_EQ(a.values[i].type(), b.values[i].type()) << program.text;
      EXPECT_EQ(a.values[i].ToDisplayString(), b.values[i].ToDisplayString())
          << program.text;
      EXPECT_TRUE(a.values[i].Equals(b.values[i])) << program.text;
    }
    EXPECT_EQ(a.evidence_rows, b.evidence_rows) << program.text;
  }
}

// When the program lowers, the raw compile + ExecutePlan path (no cache,
// no Program orchestration) must also match the walker.
void ExpectDirectVmIdentical(const Program& program, const Table& table) {
  auto plan = ir::Compile(FamilyOf(program.type), program.text,
                          table.schema());
  if (!plan.ok()) return;  // Rejected = walker-only; covered elsewhere.
  ASSERT_TRUE(ir::VerifyPlan(plan.ValueOrDie()).ok()) << program.text;
  auto got = ir::ExecutePlan(plan.ValueOrDie(), table);
  ExecOptions walk;
  walk.use_vm = false;
  auto want = program.Execute(table, walk);
  ASSERT_EQ(got.ok(), want.ok()) << program.text;
  if (!got.ok()) {
    EXPECT_EQ(got.status().code(), want.status().code()) << program.text;
    EXPECT_EQ(got.status().message(), want.status().message())
        << program.text;
    return;
  }
  EXPECT_EQ(got.ValueOrDie().ToDisplayString(),
            want.ValueOrDie().ToDisplayString())
      << program.text;
  EXPECT_EQ(got.ValueOrDie().evidence_rows, want.ValueOrDie().evidence_rows)
      << program.text;
}

bool HasDerive(const ProgramTemplate& tmpl) {
  for (const Placeholder& p : tmpl.placeholders) {
    if (p.kind == Placeholder::Kind::kDerive) return true;
  }
  return false;
}

// Every built-in template, instantiated repeatedly on randomized tables,
// must execute identically down both paths. This sweeps the whole
// template library through the compiler: templates the lowering rejects
// exercise the fallback, templates it accepts exercise the VM.
class IrDifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam()};
};

TEST_P(IrDifferentialTest, AllBuiltinTemplatesMatchTreeWalk) {
  TemplateLibrary library = TemplateLibrary::Builtin();
  ir::PlanCache cache(256, 4);
  ProgramSampler sampler(&rng_);
  size_t executed = 0;
  for (int round = 0; round < 3; ++round) {
    Table table = uctr::testing::RandomTable(&rng_);
    for (const ProgramTemplate& tmpl : library.templates()) {
      Result<SampledProgram> sampled =
          HasDerive(tmpl) ? sampler.SampleClaim(tmpl, table, round % 2 == 0)
                          : sampler.Sample(tmpl, table);
      if (!sampled.ok()) continue;  // Binding failed on this table; skip.
      const Program& program = sampled.ValueOrDie().program;
      ExpectIdentical(program, table, &cache);
      ExpectDirectVmIdentical(program, table);
      ++executed;
    }
  }
  // The library must not silently stop sampling (e.g. every template
  // rejected): differential coverage requires real executions.
  EXPECT_GT(executed, 20u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrDifferentialTest,
                         ::testing::Values(1, 7, 42, 1234, 99991));

// Fixed programs covering each family's edge cases, including ones whose
// *walker* fails: the VM must reproduce the exact error Status too.
TEST(IrFixedProgramTest, SqlProgramsMatch) {
  Table t = uctr::testing::MakeNationsTable();
  ir::PlanCache cache(64, 1);
  for (const char* text : {
           "SELECT [nation] FROM w",
           "SELECT [nation] FROM w WHERE [gold] > '5'",
           "SELECT COUNT(*) FROM w WHERE [gold] > '5'",
           "SELECT MAX([total]) FROM w",
           "SELECT MIN([silver]) FROM w WHERE [bronze] < '9'",
           "SELECT SUM([gold]) FROM w",
           "SELECT AVG([total]) FROM w WHERE [gold] >= '5'",
           "SELECT [nation] FROM w ORDER BY [total] DESC LIMIT 1",
           "SELECT [nation], [gold] FROM w ORDER BY [gold] ASC",
           "SELECT COUNT(DISTINCT [gold]) FROM w",
           // No matching rows: walker returns an empty-result error.
           "SELECT [nation] FROM w WHERE [gold] > '99'",
           // Unknown column: both paths must fail identically.
           "SELECT [unobtainium] FROM w",
       }) {
    Program p{ProgramType::kSql, text};
    ExpectIdentical(p, t, &cache);
    ExpectDirectVmIdentical(p, t);
  }
}

TEST(IrFixedProgramTest, LogicProgramsMatch) {
  Table t = uctr::testing::MakeNationsTable();
  ir::PlanCache cache(64, 1);
  for (const char* text : {
           "eq { hop { filter_eq { all_rows ; nation ; china } ; gold } ; 8 }",
           "eq { count { filter_greater { all_rows ; gold ; 5 } } ; 2 }",
           "eq { hop { argmax { all_rows ; total } ; nation } ; "
           "united states }",
           "eq { hop { nth_argmin { all_rows ; gold ; 2 } ; nation } ; "
           "japan }",
           "round_eq { sum { all_rows ; gold } ; 30 }",
           "round_eq { avg { all_rows ; silver } ; 6.8 }",
           "greater { hop { filter_eq { all_rows ; nation ; china } ; gold } "
           "; hop { filter_eq { all_rows ; nation ; france } ; gold } }",
           "most_greater { all_rows ; total ; 10 }",
           "all_greater { all_rows ; total ; 10 }",
           "only { filter_eq { all_rows ; gold ; 10 } }",
           "and { eq { count { all_rows } ; 5 } ; most_eq { all_rows ; "
           "bronze ; 8 } }",
           "not { eq { count { all_rows } ; 4 } }",
           "max { all_rows ; total }",
           "filter_eq { all_rows ; nation ; japan }",
           // Empty view: hop / majority walker errors must be reproduced.
           "hop { filter_eq { all_rows ; nation ; atlantis } ; gold }",
           "most_eq { filter_eq { all_rows ; nation ; atlantis } ; gold ; "
           "1 }",
           // NaN / oversized ordinals: both paths must reject (the NaN
           // case used to read rows[-1] in the walker — found by fuzzing).
           "eq { hop { nth_argmax { all_rows ; gold ; nan } ; nation } ; "
           "china }",
           "eq { hop { nth_argmax { all_rows ; gold ; 1e300 } ; nation } ; "
           "china }",
           // diff over text cells: ToNumber failure surfaces identically.
           "eq { diff { hop { filter_eq { all_rows ; nation ; china } ; "
           "nation } ; 3 } ; 1 }",
       }) {
    Program p{ProgramType::kLogicalForm, text};
    ExpectIdentical(p, t, &cache);
    ExpectDirectVmIdentical(p, t);
  }
}

TEST(IrFixedProgramTest, ArithProgramsMatch) {
  Table t = uctr::testing::MakeFinanceTable();
  ir::PlanCache cache(64, 1);
  for (const char* text : {
           "subtract(1200.5, 1000)",
           "divide(subtract([2019 of revenue], [2018 of revenue]), "
           "[2018 of revenue])",
           "add([2019 of gross profit], [2018 of gross profit])",
           "table_max(2019)",
           "table_sum(2018)",
           "table_average(2019)",
           "greater([2019 of revenue], [2018 of revenue])",
           "exp(2, 10)",
           "divide(1, 0)",  // Division by zero: identical error.
           "[2019 of revenue]",
           // Unknown cell ref: identical error.
           "subtract([2019 of warp drive], 1)",
       }) {
    Program p{ProgramType::kArithmetic, text};
    ExpectIdentical(p, t, &cache);
    ExpectDirectVmIdentical(p, t);
  }
}

// The same plan (compiled once against the schema) must serve a table
// with identical shape but different cell contents — plans are
// value-independent.
TEST(IrPlanTest, PlanIsValueIndependent) {
  Table t1 = uctr::testing::MakeNationsTable();
  Table t2 = Table::FromCsv(
                 "nation,gold,silver,bronze,total\n"
                 "narnia,1,2,3,6\n"
                 "oz,4,5,6,15\n",
                 "medals2")
                 .ValueOrDie();
  ASSERT_EQ(ir::SchemaFingerprint(t1.schema()),
            ir::SchemaFingerprint(t2.schema()));
  auto plan = ir::Compile(ir::Family::kSql, "SELECT SUM([gold]) FROM w",
                          t1.schema());
  ASSERT_TRUE(plan.ok());
  auto r1 = ir::ExecutePlan(plan.ValueOrDie(), t1);
  auto r2 = ir::ExecutePlan(plan.ValueOrDie(), t2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.ValueOrDie().ToDisplayString(), "30");
  EXPECT_EQ(r2.ValueOrDie().ToDisplayString(), "5");
}

TEST(IrPlanTest, SchemaMismatchIsRejectedAtExecution) {
  Table nations = uctr::testing::MakeNationsTable();
  Table finance = uctr::testing::MakeFinanceTable();
  auto plan = ir::Compile(ir::Family::kSql, "SELECT COUNT(*) FROM w",
                          nations.schema());
  ASSERT_TRUE(plan.ok());
  auto r = ir::ExecutePlan(plan.ValueOrDie(), finance);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(IrPlanTest, CodecRoundTripPreservesExecution) {
  Table t = uctr::testing::MakeNationsTable();
  const struct {
    ir::Family family;
    const char* text;
  } kPrograms[] = {
      {ir::Family::kSql, "SELECT [nation] FROM w ORDER BY [total] DESC"},
      {ir::Family::kLogic,
       "eq { hop { argmax { all_rows ; gold } ; nation } ; united states }"},
      {ir::Family::kArith, "add(1, 2)"},
  };
  for (const auto& prog : kPrograms) {
    auto plan = ir::Compile(prog.family, prog.text, t.schema());
    ASSERT_TRUE(plan.ok()) << prog.text;
    std::string bytes = ir::EncodePlan(plan.ValueOrDie());
    auto decoded = ir::DecodePlan(bytes);
    ASSERT_TRUE(decoded.ok()) << prog.text << ": "
                              << decoded.status().ToString();
    const ir::Plan& a = plan.ValueOrDie();
    const ir::Plan& b = decoded.ValueOrDie();
    EXPECT_EQ(a.family, b.family);
    EXPECT_EQ(a.num_regs, b.num_regs);
    EXPECT_EQ(a.num_columns, b.num_columns);
    EXPECT_EQ(a.schema_fp, b.schema_fp);
    ASSERT_EQ(a.code.size(), b.code.size());
    EXPECT_EQ(a.aux, b.aux);
    if (prog.family == ir::Family::kArith) continue;  // Needs no table run.
    auto ra = ir::ExecutePlan(a, t);
    auto rb = ir::ExecutePlan(b, t);
    ASSERT_EQ(ra.ok(), rb.ok()) << prog.text;
    if (ra.ok()) {
      EXPECT_EQ(ra.ValueOrDie().ToDisplayString(),
                rb.ValueOrDie().ToDisplayString());
      EXPECT_EQ(ra.ValueOrDie().evidence_rows,
                rb.ValueOrDie().evidence_rows);
    }
  }
}

TEST(IrPlanTest, DecodeRejectsCorruptBytes) {
  Table t = uctr::testing::MakeNationsTable();
  auto plan = ir::Compile(ir::Family::kSql, "SELECT COUNT(*) FROM w",
                          t.schema());
  ASSERT_TRUE(plan.ok());
  std::string bytes = ir::EncodePlan(plan.ValueOrDie());

  EXPECT_FALSE(ir::DecodePlan("").ok());
  EXPECT_FALSE(ir::DecodePlan("UPLN").ok());
  // Every truncation must be rejected (checksum or bounds).
  for (size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(ir::DecodePlan(std::string_view(bytes.data(), n)).ok())
        << "truncation at " << n;
  }
  // Any single corrupted body byte breaks the checksum.
  for (size_t i = 0; i + 8 < bytes.size(); i += 3) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5A);
    EXPECT_FALSE(ir::DecodePlan(mutated).ok()) << "flip at " << i;
  }
  // Trailing garbage after a valid frame is rejected too.
  EXPECT_FALSE(ir::DecodePlan(bytes + "x").ok());
}

// Hand-built malformed plans: the verifier must reject each one (these
// can never come out of Compile, but DecodePlan accepts arbitrary bytes
// whose checksum matches, so VerifyPlan is the last line of defense).
TEST(IrVerifierTest, RejectsMalformedPlans) {
  // A minimal valid logic plan: count(all_rows) returned as a scalar.
  ir::Plan valid;
  valid.family = ir::Family::kLogic;
  valid.num_regs = 2;
  valid.num_columns = 5;
  valid.code = {
      {static_cast<uint16_t>(ir::Op::kAllRows), 0, 0, 0, 0, 0},
      {static_cast<uint16_t>(ir::Op::kCount), 1, 0, 0, 0, 0},
      {static_cast<uint16_t>(ir::Op::kReturnLogic), 0, 1, 0, 0, 0},
  };
  ASSERT_TRUE(ir::VerifyPlan(valid).ok());

  {  // Empty code.
    ir::Plan p = valid;
    p.code.clear();
    EXPECT_FALSE(ir::VerifyPlan(p).ok());
  }
  {  // Return is not the last instruction.
    ir::Plan p = valid;
    std::swap(p.code[1], p.code[2]);
    EXPECT_FALSE(ir::VerifyPlan(p).ok());
  }
  {  // Wrong-family return opcode.
    ir::Plan p = valid;
    p.code[2].op = static_cast<uint16_t>(ir::Op::kReturnSql);
    EXPECT_FALSE(ir::VerifyPlan(p).ok());
  }
  {  // Wrong-family body opcode (sql filter inside a logic plan).
    ir::Plan p = valid;
    p.code[1].op = static_cast<uint16_t>(ir::Op::kSqlFilter);
    EXPECT_FALSE(ir::VerifyPlan(p).ok());
  }
  {  // Register out of bounds.
    ir::Plan p = valid;
    p.code[1].a = 7;
    EXPECT_FALSE(ir::VerifyPlan(p).ok());
  }
  {  // Read of an uninitialized register.
    ir::Plan p = valid;
    p.code[1].a = 1;
    EXPECT_FALSE(ir::VerifyPlan(p).ok());
  }
  {  // Type confusion: counting a scalar register.
    ir::Plan p = valid;
    p.num_regs = 3;
    p.pool = {Value::Number(1)};
    p.code = {
        {static_cast<uint16_t>(ir::Op::kLoadConst), 0, 0, 0, 0, 0},
        {static_cast<uint16_t>(ir::Op::kCount), 1, 0, 0, 0, 0},
        {static_cast<uint16_t>(ir::Op::kReturnLogic), 0, 1, 0, 0, 0},
    };
    EXPECT_FALSE(ir::VerifyPlan(p).ok());
  }
  {  // Column index out of bounds.
    ir::Plan p = valid;
    p.num_regs = 3;
    p.code = {
        {static_cast<uint16_t>(ir::Op::kAllRows), 0, 0, 0, 0, 0},
        {static_cast<uint16_t>(ir::Op::kFilterAll), 1, 0, 0, 99, 0},
        {static_cast<uint16_t>(ir::Op::kCount), 2, 1, 0, 0, 0},
        {static_cast<uint16_t>(ir::Op::kReturnLogic), 0, 2, 0, 0, 0},
    };
    EXPECT_FALSE(ir::VerifyPlan(p).ok());
  }
  {  // Pool index out of bounds.
    ir::Plan p = valid;
    p.num_regs = 3;
    p.pool.clear();
    p.code = {
        {static_cast<uint16_t>(ir::Op::kLoadConst), 0, 0, 0, 3, 0},
        {static_cast<uint16_t>(ir::Op::kAllRows), 1, 0, 0, 0, 0},
        {static_cast<uint16_t>(ir::Op::kReturnLogic), 0, 1, 0, 1, 0},
    };
    EXPECT_FALSE(ir::VerifyPlan(p).ok());
  }
  {  // Packed comparison flag out of range.
    ir::Plan p = valid;
    p.num_regs = 4;
    p.pool = {Value::Number(1), Value::Number(2)};
    p.code = {
        {static_cast<uint16_t>(ir::Op::kLoadConst), 0, 0, 0, 0, 0},
        {static_cast<uint16_t>(ir::Op::kLoadConst), 1, 0, 0, 1, 0},
        {static_cast<uint16_t>(ir::Op::kBoolCmp), 2, 0, 1, 0, 9},
        {static_cast<uint16_t>(ir::Op::kReturnLogic), 0, 2, 0, 0, 0},
    };
    EXPECT_FALSE(ir::VerifyPlan(p).ok());
  }
  {  // Missing terminator entirely.
    ir::Plan p = valid;
    p.code.pop_back();
    EXPECT_FALSE(ir::VerifyPlan(p).ok());
  }
}

TEST(PlanCacheTest, HitMissAndNegativeEntries) {
  obs::MetricsRegistry metrics;
  ir::PlanCache cache(8, 2, &metrics);
  auto plan = std::make_shared<const ir::Plan>();

  EXPECT_FALSE(cache.Get(1, 2).has_value());
  cache.Put(1, 2, plan);
  auto hit = cache.Get(1, 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->get(), plan.get());

  // Negative entry: present, but null — "known unsupported".
  cache.Put(3, 4, nullptr);
  auto negative = cache.Get(3, 4);
  ASSERT_TRUE(negative.has_value());
  EXPECT_EQ(negative->get(), nullptr);
  EXPECT_EQ(cache.size(), 2u);

  EXPECT_EQ(metrics.counter("plan_cache_hits_total")->value(), 2u);
  EXPECT_EQ(metrics.counter("plan_cache_misses_total")->value(), 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  obs::MetricsRegistry metrics;
  ir::PlanCache cache(2, 1, &metrics);
  auto plan = std::make_shared<const ir::Plan>();
  cache.Put(1, 1, plan);
  cache.Put(2, 2, plan);
  ASSERT_TRUE(cache.Get(1, 1).has_value());  // 1 is now most recent.
  cache.Put(3, 3, plan);                     // Evicts 2.
  EXPECT_TRUE(cache.Get(1, 1).has_value());
  EXPECT_FALSE(cache.Get(2, 2).has_value());
  EXPECT_TRUE(cache.Get(3, 3).has_value());
  EXPECT_EQ(metrics.counter("plan_cache_evictions_total")->value(), 1u);
}

// A schema change (renamed column) must change the fingerprint and force
// a recompile; a pure cell-content change must not.
TEST(PlanCacheTest, SchemaChangeInvalidates) {
  Table t1 = uctr::testing::MakeNationsTable();
  Table renamed = Table::FromCsv(
                      "country,gold,silver,bronze,total\n"
                      "united states,10,12,8,30\n",
                      "medals")
                      .ValueOrDie();
  Table same_shape = Table::FromCsv(
                         "nation,gold,silver,bronze,total\n"
                         "narnia,1,2,3,6\n",
                         "medals")
                         .ValueOrDie();
  uint64_t fp1 = ir::SchemaFingerprint(t1.schema());
  EXPECT_NE(fp1, ir::SchemaFingerprint(renamed.schema()));
  EXPECT_EQ(fp1, ir::SchemaFingerprint(same_shape.schema()));

  obs::MetricsRegistry metrics;
  ir::PlanCache cache(16, 1, &metrics);
  Program p{ProgramType::kSql, "SELECT SUM([gold]) FROM w"};
  ExecOptions opts;
  opts.plan_cache = &cache;

  ASSERT_TRUE(p.Execute(t1, opts).ok());
  EXPECT_EQ(cache.size(), 1u);
  // Same schema, different cells: reuses the entry.
  ASSERT_TRUE(p.Execute(same_shape, opts).ok());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(metrics.counter("plan_compiles_total")->value(), 1u);
  // Renamed column: new schema fingerprint, new compile.
  ASSERT_TRUE(p.Execute(renamed, opts).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(metrics.counter("plan_compiles_total")->value(), 2u);
}

TEST(PlanCacheTest, UnsupportedProgramCachesNegativeEntry) {
  Table t = uctr::testing::MakeNationsTable();
  obs::MetricsRegistry metrics;
  ir::PlanCache cache(16, 1, &metrics);
  ExecOptions opts;
  opts.plan_cache = &cache;
  // Unknown column: the lowering rejects, the walker is authoritative.
  Program p{ProgramType::kSql, "SELECT [unobtainium] FROM w"};
  auto r1 = p.Execute(t, opts);
  auto r2 = p.Execute(t, opts);
  EXPECT_EQ(r1.ok(), r2.ok());
  // One compile attempt, then the negative entry short-circuits.
  EXPECT_EQ(metrics.counter("plan_compiles_total")->value(), 1u);
  EXPECT_EQ(metrics.counter("plan_cache_hits_total")->value(), 1u);
}

// Many threads race the first compile of the same programs through one
// shared cache. The race is benign by design (deterministic plans; the
// losing Put refreshes the entry) — this must be TSan-clean and every
// thread must observe walker-identical results.
TEST(PlanCacheTest, ConcurrentFirstCompileIsRaceFree) {
  Table table = uctr::testing::MakeNationsTable();
  const std::vector<Program> programs = {
      {ProgramType::kSql, "SELECT SUM([gold]) FROM w"},
      {ProgramType::kSql, "SELECT [nation] FROM w ORDER BY [total] DESC"},
      {ProgramType::kLogicalForm,
       "eq { hop { argmax { all_rows ; gold } ; nation } ; united states }"},
      {ProgramType::kLogicalForm, "most_greater { all_rows ; total ; 10 }"},
      {ProgramType::kArithmetic, "divide([2019 of x], 2)"},  // Fails at run.
  };
  // Walker-computed ground truth, single-threaded.
  std::vector<std::string> expected;
  for (const Program& p : programs) {
    ExecOptions walk;
    walk.use_vm = false;
    auto r = p.Execute(table, walk);
    expected.push_back(r.ok() ? r.ValueOrDie().ToDisplayString()
                              : r.status().ToString());
  }

  ir::PlanCache cache(64, 4);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      ExecOptions opts;
      opts.plan_cache = &cache;
      for (int iter = 0; iter < 50; ++iter) {
        for (size_t i = 0; i < programs.size(); ++i) {
          auto r = programs[i].Execute(table, opts);
          std::string got = r.ok() ? r.ValueOrDie().ToDisplayString()
                                   : r.status().ToString();
          if (got != expected[i]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace uctr
