// Tests of the networked serving front end: the length-prefixed frame
// codec under every fragmentation pattern, the epoll event loop, and
// loopback TCP suites pinning the transport contracts — per-connection
// response ordering under concurrency, byte-identity with stdio mode,
// watermark pause/resume, slow-reader shedding, graceful drain with
// requests in flight, and fault-spec'd accept/read failures.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "net/client.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket_util.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/server.h"

namespace uctr::net {
namespace {

// --------------------------------------------------------------- frames

TEST(FrameTest, EncodeDecodeRoundTrip) {
  auto frame = EncodeFrame("{\"op\":\"ping\"}");
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->size(), kFrameHeaderBytes + 13);

  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(*frame).ok());
  std::string payload;
  ASSERT_TRUE(decoder.Next(&payload));
  EXPECT_EQ(payload, "{\"op\":\"ping\"}");
  EXPECT_FALSE(decoder.Next(&payload));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameTest, EncodeRejectsEmptyAndOversizedPayloads) {
  EXPECT_FALSE(EncodeFrame("").ok());
  EXPECT_TRUE(EncodeFrame("x", 1).ok());
  EXPECT_FALSE(EncodeFrame("xy", 1).ok());
}

TEST(FrameTest, DecodesByteByByteDelivery) {
  // The pathological fragmentation: every byte in its own read.
  std::string frame = EncodeFrame("hello frames").ValueOrDie();
  FrameDecoder decoder;
  std::string payload;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    ASSERT_TRUE(decoder.Feed(frame.data() + i, 1).ok());
    EXPECT_FALSE(decoder.Next(&payload)) << "frame complete too early at " << i;
  }
  ASSERT_TRUE(decoder.Feed(frame.data() + frame.size() - 1, 1).ok());
  ASSERT_TRUE(decoder.Next(&payload));
  EXPECT_EQ(payload, "hello frames");
}

TEST(FrameTest, DecodesCoalescedFrames) {
  // Three frames in a single Feed pop in order.
  std::string stream = EncodeFrame("one").ValueOrDie() +
                       EncodeFrame("two").ValueOrDie() +
                       EncodeFrame("three").ValueOrDie();
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(stream).ok());
  std::string payload;
  ASSERT_TRUE(decoder.Next(&payload));
  EXPECT_EQ(payload, "one");
  ASSERT_TRUE(decoder.Next(&payload));
  EXPECT_EQ(payload, "two");
  ASSERT_TRUE(decoder.Next(&payload));
  EXPECT_EQ(payload, "three");
  EXPECT_FALSE(decoder.Next(&payload));
}

TEST(FrameTest, TornWriteAcrossHeaderBoundary) {
  // A write torn inside the 4-byte header must reassemble.
  std::string frame = EncodeFrame("torn-header").ValueOrDie();
  FrameDecoder decoder;
  std::string payload;
  ASSERT_TRUE(decoder.Feed(frame.substr(0, 2)).ok());
  EXPECT_FALSE(decoder.Next(&payload));
  ASSERT_TRUE(decoder.Feed(frame.substr(2, 5)).ok());
  EXPECT_FALSE(decoder.Next(&payload));
  ASSERT_TRUE(decoder.Feed(frame.substr(7)).ok());
  ASSERT_TRUE(decoder.Next(&payload));
  EXPECT_EQ(payload, "torn-header");
}

TEST(FrameTest, ZeroLengthFramePoisonsDecoder) {
  FrameDecoder decoder;
  const char zero_header[4] = {0, 0, 0, 0};
  Status s = decoder.Feed(zero_header, 4);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(decoder.poisoned());
  // Sticky: later feeds keep failing, Next yields nothing.
  EXPECT_FALSE(decoder.Feed("abcd", 4).ok());
  std::string payload;
  EXPECT_FALSE(decoder.Next(&payload));
}

TEST(FrameTest, OversizedFrameRejectedFromHeaderAlone) {
  // max 16 bytes; header declares 17. No payload byte is ever fed — the
  // decoder must reject hostile lengths before buffering anything.
  FrameDecoder decoder(16);
  const char header[4] = {0, 0, 0, 17};
  EXPECT_FALSE(decoder.Feed(header, 4).ok());
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_FALSE(EncodeFrame(std::string(17, 'x'), 16).ok())
      << "encoder must enforce the same limit";
}

TEST(FrameTest, PoisonBehindCompleteFramesSurfacesAfterDrain) {
  // A good frame and a poisoning zero header coalesced into one Feed: the
  // good frame still decodes, then the poison surfaces.
  std::string stream = EncodeFrame("good").ValueOrDie();
  stream.append(4, '\0');
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(stream).ok());
  std::string payload;
  ASSERT_TRUE(decoder.Next(&payload));
  EXPECT_EQ(payload, "good");
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_FALSE(decoder.Next(&payload));
}

TEST(FrameTest, LongStreamCompactsWithoutCorruption) {
  // Enough sequential frames to trigger internal buffer compaction; every
  // payload must come through intact and in order.
  FrameDecoder decoder;
  std::string payload;
  for (int i = 0; i < 500; ++i) {
    std::string body = "payload-" + std::to_string(i) + std::string(64, 'x');
    ASSERT_TRUE(decoder.Feed(EncodeFrame(body).ValueOrDie()).ok());
    ASSERT_TRUE(decoder.Next(&payload));
    EXPECT_EQ(payload, body);
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

// ----------------------------------------------------------- event loop

TEST(EventLoopTest, PostedTasksRunOnLoopThread) {
  EventLoop loop;
  ASSERT_TRUE(loop.Init().ok());
  std::thread::id loop_thread;
  std::vector<int> order;
  loop.Post([&] {
    loop_thread = std::this_thread::get_id();
    order.push_back(1);
  });
  loop.Post([&] { order.push_back(2); });
  loop.Post([&loop] { loop.Stop(); });
  std::thread runner([&loop] { loop.Run(); });
  runner.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_NE(loop_thread, std::this_thread::get_id());
}

TEST(EventLoopTest, TickObservesExternalFlagAndStops) {
  EventLoop loop;
  ASSERT_TRUE(loop.Init().ok());
  std::atomic<bool> flag{false};
  loop.set_tick([&] {
    if (flag.load()) loop.Stop();
  });
  std::thread runner([&loop] { loop.Run(); });
  flag.store(true);
  loop.Post([] {});  // wake the loop so the tick fires now
  runner.join();
  SUCCEED();
}

// ---------------------------------------------------------- socket util

TEST(SocketUtilTest, ParseHostPort) {
  auto good = ParseHostPort("127.0.0.1:8080");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->host, "127.0.0.1");
  EXPECT_EQ(good->port, 8080);
  EXPECT_EQ(ParseHostPort("localhost:0").ValueOrDie().port, 0);
  EXPECT_FALSE(ParseHostPort("no-port").ok());
  EXPECT_FALSE(ParseHostPort(":80").ok());
  EXPECT_FALSE(ParseHostPort("host:").ok());
  EXPECT_FALSE(ParseHostPort("host:99999").ok());
  EXPECT_FALSE(ParseHostPort("host:12x4").ok());
}

// ------------------------------------------------------ loopback suites

constexpr char kMedalsCsv[] =
    "nation,gold,silver,bronze,total\n"
    "united states,10,12,8,30\n"
    "china,8,6,10,24\n"
    "japan,5,9,4,18\n";

std::string JsonEscapeNewlines(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string VerifyRequest(uint64_t id, const std::string& claim) {
  return "{\"id\":" + std::to_string(id) + ",\"op\":\"verify\",\"table\":\"" +
         JsonEscapeNewlines(kMedalsCsv) + "\",\"query\":\"" + claim + "\"}";
}

const serve::InferenceEngine& SharedEngine() {
  static const serve::InferenceEngine engine = [] {
    serve::EngineConfig config;
    return serve::InferenceEngine::Create(config, "", "").ValueOrDie();
  }();
  return engine;
}

/// Starts a serve::Server + net::Server pair on an ephemeral loopback
/// port, runs the loop on a background thread, and tears both down (in
/// dependency order) with the armed fault injector cleared.
class LoopbackTest : public ::testing::Test {
 protected:
  void StartServer(serve::ServerConfig server_config = {},
                   NetServerConfig net_config = {}) {
    server_config.metrics = &metrics_;
    net_config.metrics = &metrics_;
    net_config.host = "127.0.0.1";
    net_config.port = 0;
    backend_ =
        std::make_unique<serve::Server>(&SharedEngine(), server_config);
    net_ = std::make_unique<Server>(backend_.get(), net_config);
    ASSERT_TRUE(net_->Start().ok());
    ASSERT_NE(net_->port(), 0) << "ephemeral port must be resolved";
    loop_thread_ = std::thread([this] { net_->Run(); });
  }

  void TearDown() override {
    fault::FaultInjector::Global().Disarm();
    if (net_ != nullptr) net_->Shutdown();
    if (loop_thread_.joinable()) loop_thread_.join();
    net_.reset();
    backend_.reset();
  }

  Client MustConnect() {
    auto client = Client::Connect("127.0.0.1", net_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).ValueOrDie();
  }

  uint64_t CounterValue(const std::string& name) {
    return metrics_.counter(name)->value();
  }

  obs::MetricsRegistry metrics_;
  std::unique_ptr<serve::Server> backend_;
  std::unique_ptr<Server> net_;
  std::thread loop_thread_;
};

TEST_F(LoopbackTest, SingleClientRoundTrip) {
  StartServer();
  Client client = MustConnect();
  auto response = client.Call(
      VerifyRequest(7, "The gold of the row whose nation is japan is 5."));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->find("\"id\":7"), std::string::npos) << *response;
  EXPECT_NE(response->find("\"status\":\"ok\""), std::string::npos)
      << *response;
  EXPECT_NE(response->find("\"label\":"), std::string::npos) << *response;
}

TEST_F(LoopbackTest, HealthOpAnswersLiveOverTcp) {
  StartServer();
  Client client = MustConnect();
  auto response = client.Call("{\"id\":1,\"op\":\"health\"}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(
      response->rfind("{\"id\":1,\"status\":\"ok\",\"health\":\"live\"", 0), 0u)
      << *response;
  EXPECT_NE(response->find("\"queue_depth\":"), std::string::npos)
      << *response;
}

TEST_F(LoopbackTest, PipelinedResponsesKeepRequestOrder) {
  serve::ServerConfig server_config;
  server_config.scheduler.num_workers = 4;  // real interleaving
  StartServer(server_config);
  Client client = MustConnect();
  constexpr int kCount = 64;
  for (int i = 0; i < kCount; ++i) {
    // Alternate two claims so both cache paths (miss, hit) interleave.
    ASSERT_TRUE(client
                    .Send(VerifyRequest(
                        static_cast<uint64_t>(i + 1),
                        i % 2 == 0
                            ? "The gold of the row whose nation is japan is 5."
                            : "The total of the row whose nation is china is "
                              "24."))
                    .ok());
  }
  for (int i = 0; i < kCount; ++i) {
    auto response = client.RecvTimeout(10000);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_NE(response->find("\"id\":" + std::to_string(i + 1) + ","),
              std::string::npos)
        << "response " << i << " out of order: " << *response;
  }
}

TEST_F(LoopbackTest, ThirtyTwoConcurrentConnectionsNoLossNoReorder) {
  serve::ServerConfig server_config;
  server_config.scheduler.num_workers = 4;
  // Every request must come back "ok", so the scheduler queue must hold
  // the full burst — backpressure rejections have their own tests.
  server_config.scheduler.queue_capacity = 4096;
  StartServer(server_config);
  constexpr int kClients = 32;
  constexpr int kPerClient = 20;
  std::atomic<int> ok_responses{0};
  std::atomic<int> order_violations{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", net_->port());
      if (!client.ok()) return;
      for (int i = 0; i < kPerClient; ++i) {
        uint64_t id = static_cast<uint64_t>(c * 1000 + i);
        if (!client
                 ->Send(VerifyRequest(
                     id, "The gold of the row whose nation is japan is 5."))
                 .ok()) {
          return;
        }
      }
      for (int i = 0; i < kPerClient; ++i) {
        uint64_t id = static_cast<uint64_t>(c * 1000 + i);
        auto response = client->RecvTimeout(20000);
        if (!response.ok()) return;
        if (response->find("\"id\":" + std::to_string(id) + ",") ==
            std::string::npos) {
          order_violations.fetch_add(1);
          return;
        }
        if (response->find("\"status\":\"ok\"") != std::string::npos) {
          ok_responses.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(order_violations.load(), 0);
  EXPECT_EQ(ok_responses.load(), kClients * kPerClient)
      << "every request must get exactly one in-order ok response";
  EXPECT_GE(CounterValue("net_connections_accepted_total"),
            static_cast<uint64_t>(kClients));
}

TEST_F(LoopbackTest, TcpResponsesAreByteIdenticalToStdioMode) {
  StartServer();
  // An independent serve::Server (fresh cache, own metrics) stands in for
  // stdio mode: HandleLine is exactly what the stdin loop calls.
  obs::MetricsRegistry stdio_metrics;
  serve::ServerConfig stdio_config;
  stdio_config.metrics = &stdio_metrics;
  // Health reports the instance's real worker count, so the comparison
  // instance must match the TCP server's configuration exactly.
  stdio_config.scheduler.num_workers = 4;
  serve::Server stdio(&SharedEngine(), stdio_config);

  std::vector<std::string> requests = {
      VerifyRequest(1, "The gold of the row whose nation is japan is 5."),
      VerifyRequest(2, "The total of the row whose nation is china is 99."),
      "{\"id\":3,\"op\":\"ping\"}",
      // health is deliberately absent: it now reports a live load
      // snapshot (queue depth / in-flight), which legitimately differs
      // between two instances at different moments. Its transport
      // behavior is covered by HealthOpAnswersLiveOverTcp.
      "not json at all",
      "{\"id\":5,\"op\":\"fly\"}",
      VerifyRequest(1, "The gold of the row whose nation is japan is 5."),
  };
  Client client = MustConnect();
  for (const std::string& request : requests) {
    auto tcp = client.Call(request);
    ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();
    EXPECT_EQ(*tcp, stdio.HandleLine(request))
        << "transport must not change the response for: " << request;
  }
}

TEST_F(LoopbackTest, WatermarkPausesAndResumesReading) {
  // Stall the backend so dispatched frames stay in flight, overflowing
  // the pipeline limit; reading must pause, then resume once released.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  serve::ServerConfig server_config;
  server_config.scheduler.num_workers = 2;
  server_config.pre_execute_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  NetServerConfig net_config;
  net_config.max_pipeline_depth = 4;
  StartServer(server_config, net_config);

  Client client = MustConnect();
  constexpr int kFirst = 8, kSecond = 8;
  for (int i = 0; i < kFirst; ++i) {
    ASSERT_TRUE(
        client
            .Send(VerifyRequest(
                static_cast<uint64_t>(i + 1),
                "The gold of the row whose nation is japan is " +
                    std::to_string(i) + "."))
            .ok());
  }
  // Wait until the stalled dispatches push in_flight past the limit and
  // the pause is registered.
  for (int spin = 0; spin < 500; ++spin) {
    if (CounterValue("net_read_paused_total") > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(CounterValue("net_read_paused_total"), 1u);
  // More requests land in the kernel buffer while reading is paused.
  for (int i = 0; i < kSecond; ++i) {
    ASSERT_TRUE(
        client
            .Send(VerifyRequest(
                static_cast<uint64_t>(kFirst + i + 1),
                "The gold of the row whose nation is japan is " +
                    std::to_string(kFirst + i) + "."))
            .ok());
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (int i = 0; i < kFirst + kSecond; ++i) {
    auto response = client.RecvTimeout(20000);
    ASSERT_TRUE(response.ok())
        << "response " << i << ": " << response.status().ToString();
    EXPECT_NE(response->find("\"id\":" + std::to_string(i + 1) + ","),
              std::string::npos)
        << *response;
  }
  EXPECT_GE(CounterValue("net_read_resumed_total"), 1u);
}

TEST_F(LoopbackTest, SlowReaderIsShedNotBufferedForever) {
  NetServerConfig net_config;
  net_config.so_sndbuf = 4096;
  net_config.write_high_watermark = 2048;
  net_config.write_low_watermark = 512;
  net_config.write_shed_bytes = 16384;
  StartServer({}, net_config);

  // A raw socket with a tiny receive buffer (set before connect so the
  // window is negotiated small) that sends a flood and never reads.
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 4096;
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(net_->port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)),
            0);
  std::string request =
      VerifyRequest(1, "The gold of the row whose nation is japan is 5.");
  std::string frame = EncodeFrame(request).ValueOrDie();
  bool peer_closed = false;
  for (int i = 0; i < 4000 && !peer_closed; ++i) {
    size_t off = 0;
    while (off < frame.size()) {
      ssize_t n = send(fd, frame.data() + off, frame.size() - off,
                       MSG_NOSIGNAL);
      if (n <= 0) {  // EPIPE/ECONNRESET: the server shed us
        peer_closed = true;
        break;
      }
      off += static_cast<size_t>(n);
    }
  }
  for (int spin = 0; spin < 1000; ++spin) {
    if (CounterValue("net_connections_shed_total") > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(CounterValue("net_connections_shed_total"), 1u)
      << "a client that never reads its responses must be shed";
  close(fd);

  // The server is still healthy for well-behaved clients afterwards.
  Client client = MustConnect();
  auto response = client.Call("{\"id\":2,\"op\":\"ping\"}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->find("\"status\":\"ok\""), std::string::npos);
}

TEST_F(LoopbackTest, ShutdownDrainsInFlightRequestsBeforeClosing) {
  // Stall the backend, fire Shutdown with requests in flight, then
  // release: every response must still arrive, then a clean EOF.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  serve::ServerConfig server_config;
  server_config.scheduler.num_workers = 2;
  server_config.pre_execute_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  StartServer(server_config);

  Client client = MustConnect();
  constexpr int kCount = 5;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(
        client
            .Send(VerifyRequest(
                static_cast<uint64_t>(i + 1),
                "The gold of the row whose nation is japan is " +
                    std::to_string(i) + "."))
            .ok());
  }
  // Let the loop dispatch them, then start the drain while they're stuck.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  net_->Shutdown();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (int i = 0; i < kCount; ++i) {
    auto response = client.RecvTimeout(20000);
    ASSERT_TRUE(response.ok())
        << "drain dropped response " << i << ": "
        << response.status().ToString();
    EXPECT_NE(response->find("\"id\":" + std::to_string(i + 1) + ","),
              std::string::npos)
        << *response;
  }
  auto eof = client.RecvTimeout(20000);
  EXPECT_FALSE(eof.ok()) << "connection must close after the drain";
  loop_thread_.join();  // Run() must return on its own
  EXPECT_EQ(net_->active_connections(), 0u);
}

TEST_F(LoopbackTest, ShutdownFlagTriggersDrainLikeSigterm) {
  // The CLI wires its sig_atomic_t here; flipping it must end Run().
  static volatile std::sig_atomic_t flag;
  flag = 0;
  StartServer();
  net_->set_shutdown_flag(&flag);
  Client client = MustConnect();
  ASSERT_TRUE(client.Call("{\"id\":1,\"op\":\"ping\"}").ok());
  flag = 1;
  loop_thread_.join();  // the 100 ms tick observes the flag
  SUCCEED();
}

TEST_F(LoopbackTest, HalfCloseFlushesPendingResponsesThenCloses) {
  StartServer();
  Client client = MustConnect();
  constexpr int kCount = 3;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(
        client
            .Send(VerifyRequest(
                static_cast<uint64_t>(i + 1),
                "The gold of the row whose nation is japan is 5."))
            .ok());
  }
  client.ShutdownWrite();  // EOF to the server; responses still owed
  for (int i = 0; i < kCount; ++i) {
    auto response = client.RecvTimeout(10000);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_NE(response->find("\"id\":" + std::to_string(i + 1) + ","),
              std::string::npos);
  }
  auto eof = client.RecvTimeout(10000);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable)
      << "close must land between frames, not mid-frame: "
      << eof.status().ToString();
}

TEST_F(LoopbackTest, ProtocolViolationClosesConnection) {
  StartServer();
  int fd = ConnectTcp("127.0.0.1", net_->port()).ValueOrDie();
  const char zero_header[4] = {0, 0, 0, 0};
  ASSERT_EQ(send(fd, zero_header, 4, MSG_NOSIGNAL), 4);
  char buf[16];
  EXPECT_EQ(read(fd, buf, sizeof(buf)), 0) << "server must close on poison";
  close(fd);
  EXPECT_GE(CounterValue("net_protocol_errors_total"), 1u);
}

TEST_F(LoopbackTest, OversizedFrameFromClientClosesConnection) {
  NetServerConfig net_config;
  net_config.max_frame_bytes = 1024;  // server-side limit only
  StartServer({}, net_config);
  int fd = ConnectTcp("127.0.0.1", net_->port()).ValueOrDie();
  // Encode under the client's (default, larger) limit.
  std::string frame = EncodeFrame(std::string(2048, 'x')).ValueOrDie();
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;  // server may already have closed on the header
    off += static_cast<size_t>(n);
  }
  char buf[16];
  EXPECT_EQ(read(fd, buf, sizeof(buf)), 0);
  close(fd);
  EXPECT_GE(CounterValue("net_protocol_errors_total"), 1u);
}

TEST_F(LoopbackTest, MaxConnectionsRefusesTheOverflow) {
  NetServerConfig net_config;
  net_config.max_connections = 1;
  StartServer({}, net_config);
  Client first = MustConnect();
  ASSERT_TRUE(first.Call("{\"id\":1,\"op\":\"ping\"}").ok());
  // The second connect succeeds at TCP level (the kernel completes the
  // handshake) but the server closes it without serving a frame.
  auto second = Client::Connect("127.0.0.1", net_->port());
  ASSERT_TRUE(second.ok());
  (void)second->Send("{\"id\":2,\"op\":\"ping\"}");
  EXPECT_FALSE(second->RecvTimeout(10000).ok());
  EXPECT_GE(CounterValue("net_connections_refused_total"), 1u);
  // The admitted connection is unaffected.
  EXPECT_TRUE(first.Call("{\"id\":3,\"op\":\"ping\"}").ok());
}

TEST_F(LoopbackTest, AcceptFaultRefusesConnectionsNotTheServer) {
  StartServer();
  Client before = MustConnect();
  ASSERT_TRUE(before.Call("{\"id\":1,\"op\":\"ping\"}").ok());
  ASSERT_TRUE(
      fault::FaultInjector::Global().ArmSpec("net.accept=error:p=1").ok());
  auto faulted = Client::Connect("127.0.0.1", net_->port());
  ASSERT_TRUE(faulted.ok());  // handshake done by the kernel
  (void)faulted->Send("{\"id\":2,\"op\":\"ping\"}");
  EXPECT_FALSE(faulted->RecvTimeout(10000).ok())
      << "a faulted accept must drop the connection";
  EXPECT_GE(CounterValue("net_connections_refused_total"), 1u);
  fault::FaultInjector::Global().Disarm();
  // Existing connections rode out the fault; new ones work again.
  EXPECT_TRUE(before.Call("{\"id\":3,\"op\":\"ping\"}").ok());
  Client after = MustConnect();
  EXPECT_TRUE(after.Call("{\"id\":4,\"op\":\"ping\"}").ok());
}

TEST_F(LoopbackTest, ReadFaultClosesOnlyTheStruckConnection) {
  StartServer();
  Client victim = MustConnect();
  ASSERT_TRUE(victim.Call("{\"id\":1,\"op\":\"ping\"}").ok());
  ASSERT_TRUE(
      fault::FaultInjector::Global().ArmSpec("net.read=error:n=1").ok());
  (void)victim.Send("{\"id\":2,\"op\":\"ping\"}");
  EXPECT_FALSE(victim.RecvTimeout(10000).ok())
      << "the struck connection must be closed";
  fault::FaultInjector::Global().Disarm();
  Client fresh = MustConnect();
  EXPECT_TRUE(fresh.Call("{\"id\":3,\"op\":\"ping\"}").ok());
}

// ------------------------------------------- client timeout regressions

/// A raw loopback listener that accepts connections but never writes —
/// the stall shape RecvTimeout exists for.
int MakeSilentListener(uint16_t* port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_EQ(::listen(fd, 4), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  *port = ntohs(addr.sin_port);
  return fd;
}

extern "C" void NoopSignalHandler(int) {}

TEST(ClientTimeoutTest, RecvTimeoutHoldsUnderSignalStorm) {
  // Regression: RecvTimeout recomputed its remaining budget by clamping
  // a negative `left` to 0 and polling again; once the deadline passed, a
  // stream of signals (each EINTR-ing the zero-timeout poll) could keep
  // the loop spinning forever. The deadline must bound the call no matter
  // how often signals land.
  uint16_t port = 0;
  int listener = MakeSilentListener(&port);
  auto client = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());

  struct sigaction action = {};
  struct sigaction saved = {};
  action.sa_handler = NoopSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART — poll sees EINTR
  ASSERT_EQ(sigaction(SIGUSR1, &action, &saved), 0);

  std::atomic<bool> storming{true};
  pthread_t target = pthread_self();
  std::thread storm([&] {
    while (storming.load()) {
      pthread_kill(target, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  auto started = std::chrono::steady_clock::now();
  auto response = client->RecvTimeout(150);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - started)
                     .count();
  storming.store(false);
  storm.join();
  sigaction(SIGUSR1, &saved, nullptr);
  ::close(listener);

  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
      << response.status().ToString();
  EXPECT_LT(elapsed, 2000) << "signal storm must not extend the timeout";
}

TEST(ClientTimeoutTest, RecvTimeoutNotExtendedByTrickledPartialFrame) {
  // Regression: a peer feeding one byte per wakeup kept poll() readable
  // on every iteration, and each read reset the loop without ever
  // checking the deadline — the effective timeout was "as long as bytes
  // keep arriving". Partial-frame progress must not extend the budget.
  uint16_t port = 0;
  int listener = MakeSilentListener(&port);
  auto client = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  int conn = ::accept(listener, nullptr, nullptr);
  ASSERT_GE(conn, 0);

  std::atomic<bool> trickling{true};
  std::thread trickler([&] {
    // A valid header declaring a 1 MiB payload, then payload bytes one
    // at a time, fast enough that the fd is readable on nearly every
    // poll.
    const char header[4] = {0, 0x10, 0, 0};
    (void)::send(conn, header, sizeof(header), MSG_NOSIGNAL);
    while (trickling.load()) {
      (void)::send(conn, "x", 1, MSG_NOSIGNAL);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  auto started = std::chrono::steady_clock::now();
  auto response = client->RecvTimeout(200);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - started)
                     .count();
  trickling.store(false);
  trickler.join();
  ::close(conn);
  ::close(listener);

  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
      << response.status().ToString();
  EXPECT_LT(elapsed, 1500) << "trickled bytes must not extend the timeout";
}

TEST(FrameTest, EncodeRejectsPayloadsBeyondHeaderWidth) {
  // A payload whose size cannot fit the 4-byte length header must be
  // rejected even when max_frame_bytes allows it — truncating size_t
  // into the u32 header would silently frame the first (size mod 2^32)
  // bytes. The string_view below fabricates the size without backing
  // memory; EncodeFrame must reject on size alone, before touching data.
  char byte = 'x';
  std::string_view huge(&byte, static_cast<size_t>(UINT32_MAX) + 2);
  auto frame = EncodeFrame(huge, SIZE_MAX);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().ToString().find("32-bit"), std::string::npos)
      << frame.status().ToString();
}

}  // namespace
}  // namespace uctr::net
