// Property-based tests of the full generation pipeline: invariants every
// synthetic sample must satisfy, over random corpora and seeds.

#include <gtest/gtest.h>

#include <set>

#include "common/string_util.h"

#include "datasets/corpus.h"
#include "gen/generator.h"
#include "gen/serialize.h"
#include "hybrid/text_to_table.h"
#include "model/interpreter.h"
#include "nlgen/nl_generator.h"
#include "program/library.h"
#include "program/templatizer.h"
#include "tests/test_util.h"

namespace uctr {
namespace {

class PipelinePropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam()};

  std::vector<TableWithText> RandomCorpus(size_t n) {
    datasets::CorpusConfig config;
    config.domain = static_cast<datasets::Domain>(GetParam() % 3);
    config.num_tables = n;
    datasets::CorpusGenerator corpus(config, &rng_);
    return corpus.Generate();
  }
};

TEST_P(PipelinePropertyTest, EverySampleSatisfiesCoreInvariants) {
  auto corpus = RandomCorpus(3);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = 12;
  Generator gen(config, &lib, &rng_);
  Dataset data = gen.GenerateDataset(corpus);

  std::set<std::string> sentences;
  for (const Sample& s : data.samples) {
    // Non-empty essentials.
    EXPECT_FALSE(s.sentence.empty());
    EXPECT_FALSE(s.program.text.empty());
    EXPECT_GT(s.table.num_rows(), 0u);
    // Program provenance is syntactically valid.
    EXPECT_TRUE(s.program.Validate().ok()) << s.program.text;
    // Labels are execution-consistent for samples whose evidence table is
    // the one the program ran on (table-only pipeline).
    if (s.source == EvidenceSource::kTableOnly) {
      auto r = s.program.Execute(s.table);
      ASSERT_TRUE(r.ok()) << s.program.text;
      EXPECT_EQ(s.label, r->scalar().boolean() ? Label::kSupported
                                               : Label::kRefuted);
    }
    // Evidence rows index into some table of at most corpus size.
    for (size_t row : s.evidence_rows) {
      EXPECT_LT(row, s.table.num_rows() + 2);  // +1 split row, +1 expand
    }
  }
}

TEST_P(PipelinePropertyTest, SplitSamplesRecoverableViaExpansion) {
  auto corpus = RandomCorpus(2);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kQuestionAnswering;
  config.program_types = {ProgramType::kSql};
  config.samples_per_table = 16;
  config.hybrid_fraction = 1.0;
  config.use_text_to_table = false;  // splitting only
  Generator gen(config, &lib, &rng_);
  Dataset data = gen.GenerateDataset(corpus);

  hybrid::TextToTable expand;
  size_t split_samples = 0, recovered = 0;
  for (const Sample& s : data.samples) {
    if (s.source != EvidenceSource::kTableSplit &&
        s.source != EvidenceSource::kTextOnly) {
      continue;
    }
    ++split_samples;
    ASSERT_EQ(s.paragraph.size(), 1u);
    // Folding the sentence back into the table must let the program
    // reproduce the recorded answer.
    auto merged = expand.Apply(s.table, s.paragraph);
    if (!merged.ok()) continue;
    auto r = s.program.Execute(merged.ValueOrDie());
    if (r.ok() && r->ToDisplayString() == s.answer) ++recovered;
  }
  if (split_samples > 0) {
    // The round trip works for the large majority (the describe sentence
    // may drop null cells, losing a value the program needs).
    EXPECT_GE(recovered * 10, split_samples * 7)
        << recovered << "/" << split_samples;
  }
}

TEST_P(PipelinePropertyTest, ExpandSamplesNeedTheText) {
  auto corpus = RandomCorpus(2);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kQuestionAnswering;
  config.program_types = {ProgramType::kSql};
  config.samples_per_table = 16;
  config.hybrid_fraction = 1.0;
  config.use_table_to_text = false;  // expansion only
  Generator gen(config, &lib, &rng_);
  Dataset data = gen.GenerateDataset(corpus);

  hybrid::TextToTable expand;
  for (const Sample& s : data.samples) {
    if (s.source != EvidenceSource::kTableExpand) continue;
    // The answer is reproducible on the expanded table.
    auto merged = expand.Apply(s.table, s.paragraph);
    ASSERT_TRUE(merged.ok());
    auto r = s.program.Execute(merged.ValueOrDie());
    ASSERT_TRUE(r.ok()) << s.program.text;
    EXPECT_EQ(r->ToDisplayString(), s.answer);
  }
}

TEST_P(PipelinePropertyTest, SerializationRoundTripsWholeDatasets) {
  auto corpus = RandomCorpus(2);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = GetParam() % 2 == 0 ? TaskType::kFactVerification
                                    : TaskType::kQuestionAnswering;
  config.program_types =
      config.task == TaskType::kFactVerification
          ? std::vector<ProgramType>{ProgramType::kLogicalForm}
          : std::vector<ProgramType>{ProgramType::kSql,
                                     ProgramType::kArithmetic};
  config.samples_per_table = 8;
  Generator gen(config, &lib, &rng_);
  Dataset original = gen.GenerateDataset(corpus);

  Dataset restored =
      DatasetFromJsonl(DatasetToJsonl(original)).ValueOrDie();
  ASSERT_EQ(restored.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored.samples[i].sentence, original.samples[i].sentence);
    if (original.samples[i].task == TaskType::kQuestionAnswering) {
      EXPECT_EQ(restored.samples[i].answer, original.samples[i].answer);
    } else {
      // Fact verification serializes the label; the redundant textual
      // truth value is not part of the format.
      EXPECT_EQ(restored.samples[i].label, original.samples[i].label);
    }
    EXPECT_EQ(restored.samples[i].source, original.samples[i].source);
    EXPECT_EQ(restored.samples[i].table.ToCsv(),
              original.samples[i].table.ToCsv());
  }
}

TEST_P(PipelinePropertyTest, TemplatizerRoundTripOnSampledPrograms) {
  // Abstracting a concrete sampled program must yield a template that
  // re-instantiates successfully on the same table.
  Table t = uctr::testing::RandomTable(&rng_, 8, 3);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  ProgramSampler sampler(&rng_);
  int round_trips = 0;
  for (const auto& tmpl : lib.OfType(ProgramType::kSql)) {
    auto sampled = sampler.Sample(tmpl, t);
    if (!sampled.ok()) continue;
    auto abstracted = AbstractSql(sampled->program.text, t);
    ASSERT_TRUE(abstracted.ok()) << sampled->program.text;
    bool ok = false;
    for (int trial = 0; trial < 8 && !ok; ++trial) {
      ok = sampler.Sample(abstracted.ValueOrDie(), t).ok();
    }
    if (ok) ++round_trips;
  }
  EXPECT_GE(round_trips, 8);
}

TEST_P(PipelinePropertyTest, CanonicalClaimsInterpretConsistently) {
  // With deterministic NL, the interpreter must agree with the generated
  // label on a large majority of claims (the round trip underpinning the
  // verifier's program features).
  Table t = uctr::testing::RandomTable(&rng_, 7, 3);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = 25;
  config.nl.stochastic = false;
  Generator gen(config, &lib, &rng_);
  TableWithText input;
  input.table = t;
  auto samples = gen.GenerateFromTable(input);
  if (samples.size() < 10) GTEST_SKIP() << "table too degenerate";

  model::NlInterpreter interpreter(BuiltinLogicTemplates());
  size_t interpreted = 0, agree = 0;
  for (const Sample& s : samples) {
    auto r = interpreter.Interpret(s.sentence, t,
                                   TaskType::kFactVerification);
    if (!r.ok()) continue;
    ++interpreted;
    Label predicted = r->result.scalar().boolean() ? Label::kSupported
                                                   : Label::kRefuted;
    if (predicted == s.label) ++agree;
  }
  ASSERT_GT(interpreted, samples.size() / 2);
  EXPECT_GE(agree * 10, interpreted * 7)
      << agree << "/" << interpreted;
}

TEST_P(PipelinePropertyTest, GenerationPreservesBoundValuesWithoutNoise) {
  // With drop/typo noise off, every cell value and column name bound into
  // the program must survive into the generated sentence (the NL-Generator
  // is logic-preserving; only the paraphraser's drop noise may lose
  // content).
  Table t = uctr::testing::RandomTable(&rng_, 7, 3);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  ProgramSampler sampler(&rng_);
  nlgen::NlGenerator generator;  // stochastic synonyms, no drops

  int checked = 0;
  for (const auto& tmpl : lib.OfType(ProgramType::kLogicalForm)) {
    auto sampled = sampler.SampleClaim(tmpl, t, rng_.Bernoulli(0.5));
    if (!sampled.ok()) continue;
    auto sentence = generator.Generate(sampled->program, &rng_);
    ASSERT_TRUE(sentence.ok());
    ++checked;
    for (const auto& [slot, value] : sampled->bindings) {
      if (slot.empty() || value.empty()) continue;
      if (slot[0] != 'v' && slot != "derive") continue;
      EXPECT_TRUE(ContainsIgnoreCase(*sentence, value))
          << "'" << value << "' missing from: " << *sentence;
    }
  }
  EXPECT_GE(checked, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace uctr
