#include <gtest/gtest.h>

#include "sql/executor.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace uctr::sql {
namespace {

using uctr::testing::MakeFinanceTable;
using uctr::testing::MakeNationsTable;

// ----------------------------------------------------------------- Lexer

TEST(SqlLexerTest, TokenizesKeywordsAndIdentifiers) {
  auto tokens = Lex("select nation from w").ValueOrDie();
  ASSERT_EQ(tokens.size(), 5u);  // + kEnd
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "nation");
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
}

TEST(SqlLexerTest, BracketedIdentifiersKeepSpaces) {
  auto tokens = Lex("select [cost of sales] from w").ValueOrDie();
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "cost of sales");
}

TEST(SqlLexerTest, StringsAndNumbers) {
  auto tokens = Lex("where a = 'two words' and b > -3.5").ValueOrDie();
  EXPECT_EQ(tokens[3].type, TokenType::kString);
  EXPECT_EQ(tokens[3].text, "two words");
  EXPECT_EQ(tokens.rbegin()[1].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(tokens.rbegin()[1].number, -3.5);
}

TEST(SqlLexerTest, ComparisonOperators) {
  auto tokens = Lex("<= >= != <> < >").ValueOrDie();
  EXPECT_EQ(tokens[0].type, TokenType::kLe);
  EXPECT_EQ(tokens[1].type, TokenType::kGe);
  EXPECT_EQ(tokens[2].type, TokenType::kNe);
  EXPECT_EQ(tokens[3].type, TokenType::kNe);
  EXPECT_EQ(tokens[4].type, TokenType::kLt);
  EXPECT_EQ(tokens[5].type, TokenType::kGt);
}

TEST(SqlLexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("select 'oops").ok());
}

// ---------------------------------------------------------------- Parser

TEST(SqlParserTest, ParsesSquallTemplateShape) {
  auto stmt =
      Parse("select nation from w order by gold desc limit 1").ValueOrDie();
  ASSERT_EQ(stmt.items.size(), 1u);
  EXPECT_EQ(stmt.items[0].column, "nation");
  ASSERT_TRUE(stmt.order_by.has_value());
  EXPECT_EQ(stmt.order_by->column, "gold");
  EXPECT_TRUE(stmt.order_by->descending);
  ASSERT_TRUE(stmt.limit.has_value());
  EXPECT_EQ(*stmt.limit, 1);
}

TEST(SqlParserTest, ParsesAggregatesAndWhere) {
  auto stmt =
      Parse("select count(*), sum(gold) from w where silver > 3 and "
            "nation != 'china'")
          .ValueOrDie();
  ASSERT_EQ(stmt.items.size(), 2u);
  EXPECT_TRUE(stmt.items[0].star);
  EXPECT_EQ(stmt.items[0].agg, AggFunc::kCount);
  EXPECT_EQ(stmt.items[1].agg, AggFunc::kSum);
  ASSERT_EQ(stmt.where.size(), 2u);
  EXPECT_EQ(stmt.where[0].op, CmpOp::kGt);
  EXPECT_EQ(stmt.where[1].op, CmpOp::kNe);
}

TEST(SqlParserTest, ParsesArithmeticItems) {
  auto stmt = Parse("select gold - silver from w").ValueOrDie();
  ASSERT_EQ(stmt.items.size(), 1u);
  EXPECT_EQ(stmt.items[0].arith, ArithOp::kSub);
  EXPECT_EQ(stmt.items[0].rhs_column, "silver");
}

TEST(SqlParserTest, ParsesCountDistinct) {
  auto stmt = Parse("select count(distinct nation) from w").ValueOrDie();
  EXPECT_TRUE(stmt.items[0].distinct);
}

TEST(SqlParserTest, ToStringRoundTrips) {
  const char* query =
      "SELECT nation FROM w WHERE gold > 5 ORDER BY silver DESC LIMIT 2";
  auto stmt = Parse(query).ValueOrDie();
  auto again = Parse(stmt.ToString()).ValueOrDie();
  EXPECT_EQ(stmt.ToString(), again.ToString());
}

TEST(SqlParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(Parse("select from w").ok());
  EXPECT_FALSE(Parse("nation from w").ok());
  EXPECT_FALSE(Parse("select nation").ok());
  EXPECT_FALSE(Parse("select nation from w where gold >").ok());
  EXPECT_FALSE(Parse("select nation from w limit x").ok());
  EXPECT_FALSE(Parse("select sum(*) from w").ok());
}

// -------------------------------------------------------------- Executor

TEST(SqlExecutorTest, SelectWithOrderLimit) {
  Table t = MakeNationsTable();
  auto r = ExecuteQuery("select nation from w order by total desc limit 1", t)
               .ValueOrDie();
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_EQ(r.values[0].ToDisplayString(), "united states");
  ASSERT_EQ(r.evidence_rows.size(), 1u);
  EXPECT_EQ(r.evidence_rows[0], 0u);
}

TEST(SqlExecutorTest, WhereConjunction) {
  Table t = MakeNationsTable();
  auto r = ExecuteQuery(
               "select nation from w where gold = 5 and bronze > 5", t)
               .ValueOrDie();
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_EQ(r.values[0].ToDisplayString(), "germany");
}

TEST(SqlExecutorTest, Aggregates) {
  Table t = MakeNationsTable();
  EXPECT_DOUBLE_EQ(
      ExecuteQuery("select sum(gold) from w", t)->scalar().number(), 30.0);
  EXPECT_DOUBLE_EQ(
      ExecuteQuery("select avg(gold) from w", t)->scalar().number(), 6.0);
  EXPECT_DOUBLE_EQ(
      ExecuteQuery("select count(*) from w where gold = 5", t)
          ->scalar()
          .number(),
      2.0);
  EXPECT_DOUBLE_EQ(
      ExecuteQuery("select max(total) from w", t)->scalar().number(), 30.0);
  EXPECT_DOUBLE_EQ(
      ExecuteQuery("select min(silver) from w", t)->scalar().number(), 3.0);
}

TEST(SqlExecutorTest, CountDistinct) {
  Table t = MakeNationsTable();
  EXPECT_DOUBLE_EQ(
      ExecuteQuery("select count(distinct gold) from w", t)
          ->scalar()
          .number(),
      4.0);  // 10, 8, 5, 2
}

TEST(SqlExecutorTest, ArithmeticProjection) {
  Table t = MakeNationsTable();
  auto r = ExecuteQuery(
               "select gold - silver from w where nation = 'japan'", t)
               .ValueOrDie();
  EXPECT_DOUBLE_EQ(r.scalar().number(), -4.0);
  auto r2 = ExecuteQuery(
                "select gold + silver from w where nation = 'china'", t)
                .ValueOrDie();
  EXPECT_DOUBLE_EQ(r2.scalar().number(), 14.0);
}

TEST(SqlExecutorTest, StringLiteralsWithSpacesAndCurrency) {
  Table t = MakeFinanceTable();
  auto r = ExecuteQuery(
               "select [2019] from w where item = 'cost of sales'", t)
               .ValueOrDie();
  EXPECT_DOUBLE_EQ(r.scalar().number(), 800.0);
  // Numeric comparison against a formatted money cell.
  auto r2 = ExecuteQuery("select item from w where [2019] > 1000", t)
                .ValueOrDie();
  ASSERT_EQ(r2.values.size(), 2u);  // revenue + stockholders' equity
}

TEST(SqlExecutorTest, EmptyMatchIsEmptyResult) {
  Table t = MakeNationsTable();
  auto r = ExecuteQuery("select nation from w where gold = 99", t);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kEmptyResult);
}

TEST(SqlExecutorTest, CountOverEmptyFilterIsZero) {
  Table t = MakeNationsTable();
  auto r = ExecuteQuery("select count(*) from w where gold = 99", t)
               .ValueOrDie();
  EXPECT_DOUBLE_EQ(r.scalar().number(), 0.0);
}

TEST(SqlExecutorTest, UnknownColumnFails) {
  Table t = MakeNationsTable();
  EXPECT_FALSE(ExecuteQuery("select platinum from w", t).ok());
}

TEST(SqlExecutorTest, MixedAggregateAndPlainColumnRejected) {
  Table t = MakeNationsTable();
  EXPECT_FALSE(ExecuteQuery("select nation, sum(gold) from w", t).ok());
}

TEST(SqlExecutorTest, OrderByAscendingStable) {
  Table t = MakeNationsTable();
  auto r = ExecuteQuery("select nation from w order by gold asc", t)
               .ValueOrDie();
  ASSERT_EQ(r.values.size(), 5u);
  EXPECT_EQ(r.values[0].ToDisplayString(), "france");
  // japan (5) precedes germany (5): stable sort keeps original order.
  EXPECT_EQ(r.values[1].ToDisplayString(), "japan");
  EXPECT_EQ(r.values[2].ToDisplayString(), "germany");
}

}  // namespace
}  // namespace uctr::sql
