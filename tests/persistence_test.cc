// Tests of model persistence: trained weights survive a save/load round
// trip with identical predictions.

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "model/linear_model.h"
#include "model/qa_model.h"
#include "model/verifier.h"
#include "program/library.h"
#include "tests/test_util.h"

namespace uctr::model {
namespace {

using uctr::testing::MakeFinanceTable;
using uctr::testing::MakeNationsTable;

std::vector<Example> ToyExamples(Rng* rng, int n) {
  std::vector<Example> out;
  for (int i = 0; i < n; ++i) {
    bool positive = rng->Bernoulli(0.5);
    Example ex;
    ex.features.push_back({HashFeature(positive ? "pos" : "neg"), 1.0f});
    ex.features.push_back(
        {HashFeature("noise" + std::to_string(rng->UniformInt(0, 9))),
         1.0f});
    ex.label = positive ? 1 : 0;
    out.push_back(std::move(ex));
  }
  return out;
}

TEST(PersistenceTest, LinearModelRoundTripsExactly) {
  Rng rng(3);
  auto examples = ToyExamples(&rng, 150);
  LinearModel model(2, 1u << 12);
  TrainConfig config;
  model.Train(examples, config, &rng);

  std::string saved = model.SaveToString();
  LinearModel restored = LinearModel::LoadFromString(saved).ValueOrDie();
  EXPECT_EQ(restored.num_classes(), model.num_classes());
  EXPECT_EQ(restored.dim(), model.dim());
  for (const Example& ex : examples) {
    EXPECT_EQ(restored.Predict(ex.features), model.Predict(ex.features));
    auto p1 = model.Probabilities(ex.features);
    auto p2 = restored.Probabilities(ex.features);
    for (size_t c = 0; c < p1.size(); ++c) {
      EXPECT_NEAR(p1[c], p2[c], 1e-6);
    }
  }
}

TEST(PersistenceTest, ContinuedTrainingAfterLoadWorks) {
  Rng rng(5);
  auto examples = ToyExamples(&rng, 100);
  LinearModel model(2, 1u << 10);
  TrainConfig config;
  config.epochs = 2;
  model.Train(examples, config, &rng);
  LinearModel restored =
      LinearModel::LoadFromString(model.SaveToString()).ValueOrDie();
  // AdaGrad state survived, so continued training behaves sensibly.
  double before = restored.Evaluate(examples);
  restored.Train(examples, config, &rng);
  EXPECT_GE(restored.Evaluate(examples), before - 1e-9);
}

TEST(PersistenceTest, LoadRejectsGarbage) {
  EXPECT_FALSE(LinearModel::LoadFromString("").ok());
  EXPECT_FALSE(LinearModel::LoadFromString("hello world").ok());
  EXPECT_FALSE(
      LinearModel::LoadFromString("uctr_linear_model v1\n2\n").ok());
  EXPECT_FALSE(LinearModel::LoadFromString(
                   "uctr_linear_model v1\n2 16\n1\n99 1.0\n0\n")
                   .ok());  // in range? 99 >= 2*16 -> out of range
}

// Every corruption mode of the hardened loader: the result is an error
// Status, never a crash and never a partially initialized model.
TEST(PersistenceTest, LoadRejectsCorruptAndTruncatedFiles) {
  Rng rng(13);
  LinearModel model(2, 16);
  model.Train(ToyExamples(&rng, 40), TrainConfig{}, &rng);
  std::string saved = model.SaveToString();

  // Truncation anywhere: drop the last line, or cut mid-file.
  std::string truncated = saved.substr(0, saved.rfind('\n', saved.size() - 2));
  EXPECT_FALSE(LinearModel::LoadFromString(truncated).ok());
  EXPECT_FALSE(LinearModel::LoadFromString(saved.substr(0, 40)).ok());

  // Trailing garbage / two files concatenated.
  EXPECT_FALSE(LinearModel::LoadFromString(saved + "extra\n").ok());
  EXPECT_FALSE(LinearModel::LoadFromString(saved + saved).ok());
  // Trailing blank lines are fine (editors add them).
  EXPECT_TRUE(LinearModel::LoadFromString(saved + "\n\n").ok());

  // Non-finite or malformed weight values.
  const char* kPrefix = "uctr_linear_model v1\n2 16\n";
  auto bad = [&](const std::string& body) {
    return LinearModel::LoadFromString(kPrefix + body).ok();
  };
  EXPECT_FALSE(bad("1\n3 nan\n0\n"));
  EXPECT_FALSE(bad("1\n3 inf\n0\n"));
  EXPECT_FALSE(bad("1\n3 1e999\n0\n"));
  EXPECT_FALSE(bad("1\n3 0.5x\n0\n"));
  EXPECT_FALSE(bad("1\n3.5 0.5\n0\n"));      // fractional index
  EXPECT_FALSE(bad("1\n-3 0.5\n0\n"));       // negative index
  EXPECT_FALSE(bad("2\n5 0.5\n2 0.5\n0\n")); // non-ascending indices
  EXPECT_FALSE(bad("2\n5 0.5\n5 0.5\n0\n")); // duplicate index
  EXPECT_FALSE(bad("99\n3 0.5\n0\n"));       // count exceeds matrix size
  EXPECT_FALSE(bad("1\n3 0.5\n1\n7 -0.5\n"));  // negative AdaGrad state
  EXPECT_TRUE(bad("1\n3 0.5\n1\n7 0.5\n"));    // well-formed control
  // Absurd dimensions are rejected before any allocation.
  EXPECT_FALSE(
      LinearModel::LoadFromString(
          "uctr_linear_model v1\n2 99999999999999\n0\n0\n")
          .ok());
}

TEST(PersistenceTest, FailedLoadLeavesModelUntouched) {
  Rng rng(17);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = 20;
  Generator gen(config, &lib, &rng);
  TableWithText input;
  input.table = MakeNationsTable();
  Dataset data;
  data.samples = gen.GenerateFromTable(input);

  VerifierConfig verifier_config;
  VerifierModel model(verifier_config, BuiltinLogicTemplates());
  model.Train(data, &rng);
  std::vector<Label> before;
  for (const Sample& s : data.samples) before.push_back(model.Predict(s));

  // A corrupt load fails cleanly and the trained weights still serve.
  std::string saved = model.SaveWeights();
  ASSERT_FALSE(model.LoadWeights(saved.substr(0, saved.size() / 2)).ok());
  ASSERT_FALSE(model.LoadWeights("garbage").ok());
  for (size_t i = 0; i < data.samples.size(); ++i) {
    EXPECT_EQ(model.Predict(data.samples[i]), before[i]);
  }
}

TEST(PersistenceTest, VerifierWeightsRoundTrip) {
  Rng rng(7);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = 25;
  Generator gen(config, &lib, &rng);
  TableWithText input;
  input.table = MakeNationsTable();
  Dataset data;
  data.samples = gen.GenerateFromTable(input);

  VerifierConfig verifier_config;
  VerifierModel original(verifier_config, BuiltinLogicTemplates());
  original.Train(data, &rng);

  VerifierModel restored(verifier_config, BuiltinLogicTemplates());
  ASSERT_TRUE(restored.LoadWeights(original.SaveWeights()).ok());
  for (const Sample& s : data.samples) {
    EXPECT_EQ(restored.Predict(s), original.Predict(s));
  }

  // Mismatched configuration is rejected.
  VerifierConfig three_way = verifier_config;
  three_way.num_classes = 3;
  VerifierModel wrong(three_way, BuiltinLogicTemplates());
  EXPECT_FALSE(wrong.LoadWeights(original.SaveWeights()).ok());
}

TEST(PersistenceTest, QaWeightsRoundTrip) {
  Rng rng(11);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kQuestionAnswering;
  config.program_types = {ProgramType::kSql};
  config.samples_per_table = 25;
  Generator gen(config, &lib, &rng);
  TableWithText input;
  input.table = MakeNationsTable();
  Dataset data;
  data.samples = gen.GenerateFromTable(input);

  QaConfig qa_config;
  QaModel original(qa_config, BuiltinSqlTemplates());
  original.Train(data, &rng);

  QaModel restored(qa_config, BuiltinSqlTemplates());
  ASSERT_TRUE(restored.LoadWeights(original.SaveWeights()).ok());
  Table eval_table = MakeFinanceTable();
  for (const Sample& s : data.samples) {
    EXPECT_EQ(restored.Predict(s), original.Predict(s));
  }
}

}  // namespace
}  // namespace uctr::model
