// Tests of the serving subsystem: sharded LRU result cache, scheduler
// backpressure and deadlines, metrics, the JSON wire protocol, and a
// multi-threaded smoke test pinning worker-count determinism.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace uctr::serve {
namespace {

// ------------------------------------------------------------ ResultCache

TEST(ResultCacheTest, GetReturnsWhatPutStored) {
  ResultCache cache(8, 1);
  EXPECT_FALSE(cache.Get(1, "q").has_value());
  cache.Put(1, "q", "value");
  auto hit = cache.Get(1, "q");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "value");
  // Same query over a different table is a different entry.
  EXPECT_FALSE(cache.Get(2, "q").has_value());
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(3, 1);
  ASSERT_EQ(cache.num_shards(), 1u);
  cache.Put(1, "a", "A");
  cache.Put(1, "b", "B");
  cache.Put(1, "c", "C");
  // Touch "a" so "b" becomes the least recently used entry.
  EXPECT_TRUE(cache.Get(1, "a").has_value());
  cache.Put(1, "d", "D");
  EXPECT_FALSE(cache.Get(1, "b").has_value()) << "LRU entry must be evicted";
  EXPECT_TRUE(cache.Get(1, "a").has_value());
  EXPECT_TRUE(cache.Get(1, "c").has_value());
  EXPECT_TRUE(cache.Get(1, "d").has_value());
  EXPECT_EQ(cache.size(), 3u);
}

TEST(ResultCacheTest, PutRefreshesRecencyAndValue) {
  ResultCache cache(2, 1);
  cache.Put(1, "a", "A1");
  cache.Put(1, "b", "B");
  cache.Put(1, "a", "A2");  // refresh: "b" is now LRU
  cache.Put(1, "c", "C");
  EXPECT_FALSE(cache.Get(1, "b").has_value());
  auto a = cache.Get(1, "a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, "A2");
}

TEST(ResultCacheTest, ShardsAreIndependent) {
  ResultCache cache(8, 4);
  EXPECT_EQ(cache.num_shards(), 4u);
  EXPECT_EQ(cache.shard_capacity(), 2u);

  // Find three keys landing in the same shard; overflowing that shard
  // must evict within it while other shards are untouched.
  size_t target = cache.ShardIndex(1, "other-shard-probe");
  std::vector<std::string> same_shard;
  for (int i = 0; same_shard.size() < 3 && i < 10000; ++i) {
    std::string q = "query" + std::to_string(i);
    if (cache.ShardIndex(1, q) == target) same_shard.push_back(q);
  }
  ASSERT_EQ(same_shard.size(), 3u);
  cache.Put(1, "other-shard-probe", "X");
  for (const std::string& q : same_shard) cache.Put(1, q, "v");
  // Shard capacity is 2: the first same-shard key (plus possibly the
  // probe, if it shares the shard) has been evicted, the newest survive.
  EXPECT_TRUE(cache.Get(1, same_shard[2]).has_value());
  EXPECT_TRUE(cache.Get(1, same_shard[1]).has_value());
  EXPECT_FALSE(cache.Get(1, same_shard[0]).has_value());
}

TEST(ResultCacheTest, ShardIndexIsStableAndInRange) {
  ResultCache cache(64, 8);
  for (int i = 0; i < 100; ++i) {
    std::string q = "q" + std::to_string(i);
    size_t s = cache.ShardIndex(7, q);
    EXPECT_LT(s, cache.num_shards());
    EXPECT_EQ(s, cache.ShardIndex(7, q));
  }
}

TEST(ResultCacheTest, NormalizeQueryCanonicalizes) {
  EXPECT_EQ(ResultCache::NormalizeQuery("  The Total  IS 30. "),
            "the total is 30");
  EXPECT_EQ(ResultCache::NormalizeQuery("Which item is best?"),
            "which item is best");
  EXPECT_EQ(ResultCache::NormalizeQuery("x"), "x");
  EXPECT_EQ(ResultCache::NormalizeQuery("   "), "");
}

TEST(ResultCacheTest, FingerprintTracksContent) {
  Table a = Table::FromCsv("x,y\n1,2\n", "t").ValueOrDie();
  Table b = Table::FromCsv("x,y\n1,3\n", "t").ValueOrDie();
  EXPECT_NE(ResultCache::FingerprintTable(a),
            ResultCache::FingerprintTable(b));
  EXPECT_EQ(ResultCache::FingerprintTable(a),
            ResultCache::FingerprintTable(a));
  EXPECT_NE(ResultCache::FingerprintCsv("x,y\n1,2\n"),
            ResultCache::FingerprintCsv("x,y\n1,3\n"));
}

TEST(ResultCacheTest, RecordsHitAndMissMetrics) {
  MetricsRegistry metrics;
  ResultCache cache(4, 2, &metrics);
  cache.Get(1, "q");
  cache.Put(1, "q", "v");
  cache.Get(1, "q");
  EXPECT_EQ(metrics.counter("cache_misses_total")->value(), 1u);
  EXPECT_EQ(metrics.counter("cache_hits_total")->value(), 1u);
}

// --------------------------------------------------------------- Metrics

TEST(MetricsTest, CountersAreStableAndCumulative) {
  MetricsRegistry metrics;
  Counter* c = metrics.counter("widgets_total");
  EXPECT_EQ(c, metrics.counter("widgets_total"));
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->value(), 5u);
  EXPECT_NE(metrics.ExpositionText().find("widgets_total 5"),
            std::string::npos);
}

TEST(MetricsTest, HistogramTracksCountSumQuantiles) {
  MetricsRegistry metrics;
  Histogram* h = metrics.histogram("latency_test_us");
  for (int i = 0; i < 90; ++i) h->Observe(10.0);    // bucket [8,16)us
  for (int i = 0; i < 10; ++i) h->Observe(5000.0);  // bucket [4096,8192)us
  EXPECT_EQ(h->count(), 100u);
  EXPECT_NEAR(h->sum_micros(), 90 * 10.0 + 10 * 5000.0, 1.0);
  EXPECT_LE(h->QuantileMicros(0.5), 16.0);
  EXPECT_GE(h->QuantileMicros(0.99), 4096.0);
  std::string text = metrics.ExpositionText();
  EXPECT_NE(text.find("latency_test_us{stat=\"count\"} 100"),
            std::string::npos);
}

// ------------------------------------------------------------- Scheduler

TEST(SchedulerTest, RunsEverySubmittedJob) {
  SchedulerConfig config;
  config.num_workers = 4;
  config.queue_capacity = 128;
  Scheduler scheduler(config);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(scheduler.Submit({[&done] { done++; }, nullptr}).ok());
  }
  scheduler.Drain();
  EXPECT_EQ(done.load(), 100);
}

// A job that blocks until released, to hold a worker busy.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  bool entered = false;

  void WaitUntilEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void Enter() {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [this] { return open; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
};

TEST(SchedulerTest, RejectsWithUnavailableWhenQueueFull) {
  SchedulerConfig config;
  config.num_workers = 1;
  config.queue_capacity = 1;
  MetricsRegistry metrics;
  Scheduler scheduler(config, &metrics);

  Gate gate;
  ASSERT_TRUE(scheduler.Submit({[&gate] { gate.Enter(); }, nullptr}).ok());
  gate.WaitUntilEntered();  // worker is now busy, queue is empty

  ASSERT_TRUE(scheduler.Submit({[] {}, nullptr}).ok());  // fills queue
  Status rejected = scheduler.Submit({[] {}, nullptr});
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_EQ(metrics.counter("jobs_rejected_total")->value(), 1u);

  gate.Open();
  scheduler.Drain();
  EXPECT_EQ(metrics.counter("jobs_submitted_total")->value(), 2u);
}

TEST(SchedulerTest, ExpiresJobsWhoseDeadlinePassedInQueue) {
  SchedulerConfig config;
  config.num_workers = 1;
  config.queue_capacity = 8;
  MetricsRegistry metrics;
  Scheduler scheduler(config, &metrics);

  Gate gate;
  ASSERT_TRUE(scheduler.Submit({[&gate] { gate.Enter(); }, nullptr}).ok());
  gate.WaitUntilEntered();

  // Queued behind the busy worker with an already-expired deadline.
  std::atomic<bool> ran{false};
  std::atomic<bool> expired{false};
  Scheduler::Job job;
  job.run = [&ran] { ran = true; };
  job.on_expired = [&expired] { expired = true; };
  job.deadline = Scheduler::Clock::now() - std::chrono::milliseconds(1);
  ASSERT_TRUE(scheduler.Submit(std::move(job)).ok());

  gate.Open();
  scheduler.Drain();
  EXPECT_TRUE(expired.load());
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(metrics.counter("jobs_expired_total")->value(), 1u);
}

TEST(SchedulerTest, SubmitAfterShutdownIsRejected) {
  Scheduler scheduler({1, 4});
  scheduler.Shutdown();
  EXPECT_EQ(scheduler.Submit({[] {}, nullptr}).code(),
            StatusCode::kUnavailable);
}

// -------------------------------------------------- OrderedResponseWriter

TEST(OrderedResponseWriterTest, FlushesInSequenceOrder) {
  std::vector<std::string> out;
  OrderedResponseWriter writer([&out](const std::string& s) {
    out.push_back(s);
  });
  uint64_t s0 = writer.NextSequence();
  uint64_t s1 = writer.NextSequence();
  uint64_t s2 = writer.NextSequence();
  writer.Write(s2, "two");
  EXPECT_TRUE(out.empty());
  writer.Write(s0, "zero");
  EXPECT_EQ(out, (std::vector<std::string>{"zero"}));
  writer.Write(s1, "one");
  EXPECT_EQ(out, (std::vector<std::string>{"zero", "one", "two"}));
}

// Regression test: Write used to invoke the sink while holding the
// writer's (non-recursive) mutex, so a sink that re-enters Write —
// e.g. an inline cache-hit response produced while flushing — deadlocked.
TEST(OrderedResponseWriterTest, ReentrantSinkDoesNotDeadlock) {
  std::vector<std::string> out;
  OrderedResponseWriter* writer_ptr = nullptr;
  uint64_t reentrant_seq = 0;
  bool reentered = false;
  OrderedResponseWriter writer([&](const std::string& s) {
    out.push_back(s);
    if (!reentered) {
      reentered = true;
      // Deadlocks (and the test times out) if the lock is still held.
      writer_ptr->Write(reentrant_seq, "one-from-sink");
    }
  });
  writer_ptr = &writer;
  uint64_t s0 = writer.NextSequence();
  reentrant_seq = writer.NextSequence();
  writer.Write(s0, "zero");
  EXPECT_EQ(out, (std::vector<std::string>{"zero", "one-from-sink"}));
}

// The sink contract: lines arrive exactly once and in sequence order even
// when many threads complete out of order concurrently.
TEST(OrderedResponseWriterTest, ConcurrentWritesStayOrdered) {
  constexpr int kLines = 256;
  std::vector<std::string> out;
  OrderedResponseWriter writer([&out](const std::string& s) {
    out.push_back(s);  // Serialized by the writer's flushing protocol.
  });
  std::vector<uint64_t> seqs;
  for (int i = 0; i < kLines; ++i) seqs.push_back(writer.NextSequence());
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&writer, &seqs, t] {
      for (int i = t; i < kLines; i += 8) {
        writer.Write(seqs[i], std::to_string(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(out.size(), static_cast<size_t>(kLines));
  for (int i = 0; i < kLines; ++i) {
    EXPECT_EQ(out[i], std::to_string(i));
  }
}

// ------------------------------------------------------- Engine + Server

const char* kMedalsCsv =
    "nation,gold,silver,bronze,total\n"
    "united states,10,12,8,30\n"
    "china,8,6,10,24\n"
    "japan,5,9,4,18\n";

const char* kFinanceCsv =
    "item,2019,2018\n"
    "revenue,\"$2,350.4\",\"$2,014.9\"\n"
    "net income,\"$310.5\",\"$225.1\"\n";

std::string JsonEscapeNewlines(std::string text) {
  std::string out;
  for (char c : text) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

std::string VerifyRequest(uint64_t id, const std::string& csv,
                          const std::string& claim) {
  return "{\"id\":" + std::to_string(id) + ",\"op\":\"verify\",\"table\":\"" +
         JsonEscapeNewlines(csv) + "\",\"query\":\"" + claim + "\"}";
}

std::string AnswerRequest(uint64_t id, const std::string& csv,
                          const std::string& question) {
  return "{\"id\":" + std::to_string(id) + ",\"op\":\"answer\",\"table\":\"" +
         JsonEscapeNewlines(csv) + "\",\"query\":\"" + question + "\"}";
}

const InferenceEngine& SharedEngine() {
  static const InferenceEngine engine = [] {
    EngineConfig config;
    return InferenceEngine::Create(config, "", "").ValueOrDie();
  }();
  return engine;
}

TEST(EngineTest, CreateRejectsCorruptWeights) {
  EngineConfig config;
  EXPECT_FALSE(InferenceEngine::Create(config, "garbage", "").ok());
  EXPECT_FALSE(InferenceEngine::Create(config, "", "garbage").ok());
  EXPECT_TRUE(InferenceEngine::Create(config, "", "").ok());
}

TEST(EngineTest, VerifyAndAnswerAreDeterministic) {
  const InferenceEngine& engine = SharedEngine();
  Table medals = Table::FromCsv(kMedalsCsv).ValueOrDie();
  std::string claim = "The gold of the row whose nation is japan is 5.";
  std::string v1 = engine.Verify(medals, claim, {});
  std::string v2 = engine.Verify(medals, claim, {});
  EXPECT_EQ(v1, v2);
  Table finance = Table::FromCsv(kFinanceCsv).ValueOrDie();
  std::string q = "Which item has the highest 2019?";
  EXPECT_EQ(engine.Answer(finance, q, {}), engine.Answer(finance, q, {}));
}

TEST(ServerTest, VerifyAndAnswerRoundTrip) {
  ServerConfig config;
  config.scheduler.num_workers = 2;
  Server server(&SharedEngine(), config);
  std::string verify = server.HandleLine(VerifyRequest(
      7, kMedalsCsv, "The gold of the row whose nation is japan is 5."));
  EXPECT_NE(verify.find("\"id\":7"), std::string::npos) << verify;
  EXPECT_NE(verify.find("\"status\":\"ok\""), std::string::npos) << verify;
  EXPECT_NE(verify.find("\"label\":"), std::string::npos) << verify;

  std::string answer = server.HandleLine(
      AnswerRequest(8, kFinanceCsv, "Which item has the highest 2019?"));
  EXPECT_NE(answer.find("\"id\":8"), std::string::npos) << answer;
  EXPECT_NE(answer.find("\"answer\":"), std::string::npos) << answer;
}

TEST(ServerTest, MalformedRequestsYieldErrorResponses) {
  ServerConfig config;
  config.scheduler.num_workers = 1;
  Server server(&SharedEngine(), config);
  EXPECT_NE(server.HandleLine("not json").find("\"status\":\"error\""),
            std::string::npos);
  EXPECT_NE(server.HandleLine("[1,2]").find("\"status\":\"error\""),
            std::string::npos);
  EXPECT_NE(server.HandleLine("{\"id\":1,\"op\":\"fly\"}")
                .find("\"status\":\"error\""),
            std::string::npos);
  // Missing table/query.
  EXPECT_NE(server.HandleLine("{\"id\":1,\"op\":\"verify\"}")
                .find("\"status\":\"error\""),
            std::string::npos);
  // A table that fails to parse reports an error, not a crash.
  std::string bad_table =
      server.HandleLine("{\"id\":2,\"op\":\"verify\",\"table\":\"\","
                        "\"query\":\"x is 1.\"}");
  EXPECT_NE(bad_table.find("\"status\":\"error\""), std::string::npos)
      << bad_table;
}

TEST(ServerTest, PingAndMetricsOps) {
  ServerConfig config;
  Server server(&SharedEngine(), config);
  EXPECT_NE(server.HandleLine("{\"op\":\"ping\",\"id\":3}")
                .find("\"status\":\"ok\""),
            std::string::npos);
  std::string metrics = server.HandleLine("{\"op\":\"metrics\"}");
  EXPECT_NE(metrics.find("requests_total"), std::string::npos);
}

TEST(ServerTest, HealthOpReportsLiveThenDraining) {
  ServerConfig config;
  Server server(&SharedEngine(), config);
  // Liveness must answer inline — it never queues through the scheduler,
  // so it works even when every worker is wedged.
  // The enriched health line carries a load snapshot after the phase;
  // the prefix (id, status, phase) stays the contract probers match on.
  EXPECT_EQ(server.HandleLine("{\"id\":7,\"op\":\"health\"}")
                .rfind("{\"id\":7,\"status\":\"ok\",\"health\":\"live\"", 0),
            0u);
  server.set_draining(true);
  EXPECT_TRUE(server.draining());
  EXPECT_EQ(server.HandleLine("{\"id\":8,\"op\":\"health\"}")
                .rfind("{\"id\":8,\"status\":\"ok\",\"health\":\"draining\"",
                       0),
            0u);
  server.set_draining(false);
  std::string live = server.HandleLine("{\"id\":9,\"op\":\"health\"}");
  EXPECT_EQ(live.rfind("{\"id\":9,\"status\":\"ok\",\"health\":\"live\"", 0), 0u);
  EXPECT_NE(live.find("\"queue_depth\":"), std::string::npos) << live;
  EXPECT_NE(live.find("\"in_flight\":"), std::string::npos) << live;
  EXPECT_NE(live.find("\"workers\":"), std::string::npos) << live;
}

TEST(ServerTest, StatsOpReturnsPopulatedJson) {
  MetricsRegistry metrics;
  ServerConfig config;
  config.metrics = &metrics;
  config.scheduler.num_workers = 1;
  Server server(&SharedEngine(), config);
  // One real request so the stats carry non-trivial values.
  server.HandleLine(VerifyRequest(
      1, kMedalsCsv, "The gold of the row whose nation is japan is 5."));

  std::string stats = server.HandleLine("{\"op\":\"stats\",\"id\":42}");
  EXPECT_NE(stats.find("\"id\":42"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"status\":\"ok\""), std::string::npos) << stats;
  // 2 = the verify request plus the stats request itself.
  EXPECT_NE(stats.find("\"requests_total\":2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cache_misses_total\":1"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"workers\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"execute_p50_us\":"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"queue_depth\":"), std::string::npos) << stats;
}

TEST(ServerTest, RepeatedRequestIsServedFromCache) {
  // Exact-count assertions need a registry isolated from the process-wide
  // default that other tests (and library code) share.
  MetricsRegistry metrics;
  ServerConfig config;
  config.metrics = &metrics;
  config.scheduler.num_workers = 1;
  Server server(&SharedEngine(), config);
  std::string request = VerifyRequest(
      1, kMedalsCsv, "The gold of the row whose nation is china is 8.");
  std::string first = server.HandleLine(request);
  std::string second = server.HandleLine(request);
  EXPECT_EQ(first, second);
  EXPECT_EQ(server.metrics()->counter("cache_hits_total")->value(), 1u);
  EXPECT_EQ(server.metrics()->counter("jobs_submitted_total")->value(), 1u);

  // Insignificant surface differences (case/whitespace/punctuation) hit
  // the same entry; a different id reuses the cached body.
  std::string variant = VerifyRequest(
      9, kMedalsCsv, "  the GOLD of the row whose nation is china is 8 ");
  std::string third = server.HandleLine(variant);
  EXPECT_EQ(server.metrics()->counter("cache_hits_total")->value(), 2u);
  EXPECT_NE(third.find("\"id\":9"), std::string::npos);
}

TEST(ServerTest, QueueFullRequestsAreRejected) {
  MetricsRegistry metrics;
  ServerConfig config;
  config.metrics = &metrics;
  config.scheduler.num_workers = 1;
  config.scheduler.queue_capacity = 1;
  Server server(&SharedEngine(), config);

  // Many distinct requests at once on one slow worker: some must be
  // rejected with backpressure, none may be dropped silently.
  std::mutex mu;
  std::vector<std::string> responses;
  const int kTotal = 40;
  for (int i = 0; i < kTotal; ++i) {
    std::string claim = "The gold of the row whose nation is japan is " +
                        std::to_string(i) + ".";
    server.SubmitLine(VerifyRequest(i + 1, kMedalsCsv, claim),
                      [&mu, &responses](std::string r) {
                        std::lock_guard<std::mutex> lock(mu);
                        responses.push_back(std::move(r));
                      });
  }
  server.Drain();
  ASSERT_EQ(responses.size(), static_cast<size_t>(kTotal));
  uint64_t rejected =
      server.metrics()->counter("responses_rejected_total")->value();
  uint64_t ok = server.metrics()->counter("responses_ok_total")->value();
  EXPECT_GT(rejected, 0u) << "expected backpressure on a full queue";
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(rejected + ok, static_cast<uint64_t>(kTotal));
}

TEST(ServerTest, ExpiredDeadlinesReportTimeout) {
  ServerConfig config;
  config.scheduler.num_workers = 1;
  config.scheduler.queue_capacity = 16;
  Server server(&SharedEngine(), config);

  // Saturate the single worker, then submit a request whose deadline is
  // far tighter than the backlog.
  std::mutex mu;
  std::vector<std::string> responses;
  auto collect = [&mu, &responses](std::string r) {
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(std::move(r));
  };
  for (int i = 0; i < 8; ++i) {
    std::string claim = "The total of the row whose nation is china is " +
                        std::to_string(100 + i) + ".";
    server.SubmitLine(VerifyRequest(i + 1, kMedalsCsv, claim), collect);
  }
  std::string tight =
      "{\"id\":99,\"op\":\"verify\",\"table\":\"" +
      JsonEscapeNewlines(kMedalsCsv) +
      "\",\"query\":\"The gold of the row whose nation is china is 1.\","
      "\"timeout_ms\":0.001}";
  server.SubmitLine(tight, collect);
  server.Drain();

  bool saw_timeout = false;
  for (const std::string& r : responses) {
    if (r.find("\"id\":99") != std::string::npos &&
        r.find("\"status\":\"timeout\"") != std::string::npos) {
      saw_timeout = true;
    }
  }
  EXPECT_TRUE(saw_timeout)
      << "a request with an expired deadline must report status=timeout";
}

// Regression test: a huge client-supplied timeout_ms used to overflow the
// int64 microsecond cast (UB) and could wrap to a deadline in the past,
// instantly expiring the request. Out-of-range timeouts now mean "no
// deadline" and the request completes normally.
TEST(ServerTest, HugeTimeoutRunsWithoutDeadline) {
  ServerConfig config;
  config.scheduler.num_workers = 1;
  Server server(&SharedEngine(), config);
  for (const char* timeout : {"1e18", "1e308"}) {
    std::string request =
        "{\"id\":5,\"op\":\"verify\",\"table\":\"" +
        JsonEscapeNewlines(kMedalsCsv) +
        "\",\"query\":\"The gold of the row whose nation is japan is 5.\","
        "\"timeout_ms\":" + std::string(timeout) + "}";
    std::string response = server.HandleLine(request);
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
        << "timeout_ms=" << timeout << " -> " << response;
  }
}

// The multi-threaded smoke test of the satellite checklist: the same
// request stream must produce byte-identical ordered responses at any
// worker count, and match single-threaded serial execution.
TEST(ServerTest, ConcurrentResponsesMatchSerialExecution) {
  std::vector<std::string> requests;
  uint64_t id = 0;
  for (const char* nation : {"united states", "china", "japan"}) {
    for (int gold : {5, 8, 10, 12}) {
      requests.push_back(VerifyRequest(
          ++id, kMedalsCsv,
          std::string("The gold of the row whose nation is ") + nation +
              " is " + std::to_string(gold) + "."));
    }
  }
  for (const char* q :
       {"Which item has the highest 2019?", "What is the 2018 of revenue?",
        "What is the 2019 of net income?"}) {
    requests.push_back(AnswerRequest(++id, kFinanceCsv, q));
  }

  auto run = [&requests](size_t workers) {
    ServerConfig config;
    config.scheduler.num_workers = workers;
    config.scheduler.queue_capacity = 1024;
    Server server(&SharedEngine(), config);
    std::vector<std::string> ordered;
    std::mutex mu;
    OrderedResponseWriter writer([&ordered, &mu](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu);
      ordered.push_back(line);
    });
    for (const std::string& request : requests) {
      uint64_t seq = writer.NextSequence();
      server.SubmitLine(request, [seq, &writer](std::string response) {
        writer.Write(seq, std::move(response));
      });
    }
    server.Drain();
    return ordered;
  };

  std::vector<std::string> serial = run(1);
  ASSERT_EQ(serial.size(), requests.size());
  for (size_t workers : {2u, 4u, 8u}) {
    EXPECT_EQ(run(workers), serial)
        << "responses diverged at " << workers << " workers";
  }
}

}  // namespace
}  // namespace uctr::serve
