#include <gtest/gtest.h>

#include "logic/executor.h"
#include "logic/parser.h"
#include "tests/test_util.h"

namespace uctr::logic {
namespace {

using uctr::testing::MakeFinanceTable;
using uctr::testing::MakeNationsTable;

Value Exec(const std::string& lf, const Table& t) {
  return ExecuteLogicalForm(lf, t).ValueOrDie().scalar();
}

// ---------------------------------------------------------------- Parser

TEST(LogicParserTest, ParsesNestedForm) {
  auto node = Parse(
      "eq { hop { filter_eq { all_rows ; nation ; china } ; gold } ; 8 }")
                  .ValueOrDie();
  EXPECT_EQ(node->name, "eq");
  ASSERT_EQ(node->args.size(), 2u);
  EXPECT_EQ(node->args[0]->name, "hop");
  EXPECT_TRUE(node->args[1]->is_literal);
  EXPECT_EQ(node->args[1]->name, "8");
}

TEST(LogicParserTest, LiteralsWithSpaces) {
  auto node =
      Parse("filter_eq { all_rows ; nation ; united states }").ValueOrDie();
  EXPECT_EQ(node->args[2]->name, "united states");
}

TEST(LogicParserTest, ToStringRoundTrips) {
  const char* lf =
      "eq { count { filter_greater { all_rows ; gold ; 5 } } ; 2 }";
  auto node = Parse(lf).ValueOrDie();
  auto again = Parse(node->ToString()).ValueOrDie();
  EXPECT_EQ(node->ToString(), again->ToString());
}

TEST(LogicParserTest, CloneIsDeep) {
  auto node = Parse("eq { hop { all_rows ; gold } ; 1 }").ValueOrDie();
  auto clone = node->Clone();
  clone->args[1]->name = "2";
  EXPECT_EQ(node->args[1]->name, "1");
}

TEST(LogicParserTest, RejectsMalformed) {
  EXPECT_FALSE(Parse("eq { a ; b").ok());
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("eq { a ; b } trailing").ok());
}

// -------------------------------------------------------------- Executor

TEST(LogicExecTest, FilterHopEq) {
  Table t = MakeNationsTable();
  Value v = Exec(
      "eq { hop { filter_eq { all_rows ; nation ; china } ; gold } ; 8 }", t);
  EXPECT_TRUE(v.boolean());
  Value f = Exec(
      "eq { hop { filter_eq { all_rows ; nation ; china } ; gold } ; 9 }", t);
  EXPECT_FALSE(f.boolean());
}

TEST(LogicExecTest, CountAndComparisonFilters) {
  Table t = MakeNationsTable();
  EXPECT_DOUBLE_EQ(
      Exec("count { filter_greater { all_rows ; gold ; 5 } }", t).number(),
      2.0);
  EXPECT_DOUBLE_EQ(
      Exec("count { filter_less_eq { all_rows ; gold ; 5 } }", t).number(),
      3.0);
  EXPECT_DOUBLE_EQ(
      Exec("count { filter_not_eq { all_rows ; nation ; china } }", t)
          .number(),
      4.0);
  EXPECT_DOUBLE_EQ(Exec("count { filter_all { all_rows ; gold } }", t).number(),
                   5.0);
}

TEST(LogicExecTest, SuperlativesAndOrdinals) {
  Table t = MakeNationsTable();
  EXPECT_EQ(Exec("hop { argmax { all_rows ; total } ; nation }", t)
                .ToDisplayString(),
            "united states");
  EXPECT_EQ(Exec("hop { argmin { all_rows ; total } ; nation }", t)
                .ToDisplayString(),
            "france");
  EXPECT_EQ(Exec("hop { nth_argmax { all_rows ; total ; 2 } ; nation }", t)
                .ToDisplayString(),
            "china");
  EXPECT_DOUBLE_EQ(Exec("max { all_rows ; gold }", t).number(), 10.0);
  EXPECT_DOUBLE_EQ(Exec("nth_min { all_rows ; gold ; 2 }", t).number(), 5.0);
}

TEST(LogicExecTest, AggregationsAndDiff) {
  Table t = MakeNationsTable();
  EXPECT_DOUBLE_EQ(Exec("sum { all_rows ; gold }", t).number(), 30.0);
  EXPECT_DOUBLE_EQ(Exec("avg { all_rows ; bronze }", t).number(), 7.0);
  EXPECT_DOUBLE_EQ(
      Exec("diff { hop { filter_eq { all_rows ; nation ; china } ; gold } ; "
           "hop { filter_eq { all_rows ; nation ; japan } ; gold } }",
           t)
          .number(),
      3.0);
}

TEST(LogicExecTest, MajorityOperators) {
  Table t = MakeNationsTable();
  EXPECT_TRUE(Exec("most_greater { all_rows ; total ; 13.5 }", t).boolean());
  EXPECT_FALSE(Exec("most_greater { all_rows ; total ; 20 }", t).boolean());
  EXPECT_TRUE(Exec("all_greater { all_rows ; total ; 10 }", t).boolean());
  EXPECT_FALSE(Exec("all_greater { all_rows ; total ; 14 }", t).boolean());
  EXPECT_TRUE(
      Exec("most_eq { filter_eq { all_rows ; gold ; 5 } ; gold ; 5 }", t)
          .boolean());
}

TEST(LogicExecTest, OnlyAndBooleanConnectives) {
  Table t = MakeNationsTable();
  EXPECT_TRUE(Exec("only { filter_greater { all_rows ; gold ; 8 } }", t)
                  .boolean());
  EXPECT_FALSE(Exec("only { filter_greater { all_rows ; gold ; 4 } }", t)
                   .boolean());
  EXPECT_TRUE(
      Exec("and { greater { 3 ; 2 } ; less { 2 ; 3 } }", t).boolean());
  EXPECT_FALSE(
      Exec("and { greater { 3 ; 2 } ; less { 3 ; 2 } }", t).boolean());
  EXPECT_TRUE(Exec("not { eq { 1 ; 2 } }", t).boolean());
}

TEST(LogicExecTest, RoundEqTolerance) {
  Table t = MakeNationsTable();
  EXPECT_TRUE(Exec("round_eq { avg { all_rows ; gold } ; 6 }", t).boolean());
  EXPECT_TRUE(
      Exec("round_eq { avg { all_rows ; bronze } ; 7.05 }", t).boolean());
  EXPECT_FALSE(
      Exec("round_eq { avg { all_rows ; gold } ; 8 }", t).boolean());
}

TEST(LogicExecTest, EvidenceRowsTracked) {
  Table t = MakeNationsTable();
  auto r = ExecuteLogicalForm(
               "eq { hop { filter_eq { all_rows ; nation ; japan } ; gold } "
               "; 5 }",
               t)
               .ValueOrDie();
  ASSERT_EQ(r.evidence_rows.size(), 1u);
  EXPECT_EQ(r.evidence_rows[0], 2u);
}

TEST(LogicExecTest, WorksOnFinanceTable) {
  Table t = MakeFinanceTable();
  EXPECT_TRUE(
      Exec("eq { hop { filter_eq { all_rows ; item ; revenue } ; 2019 } ; "
           "$1,200.5 }",
           t)
          .boolean());
}

TEST(LogicExecTest, ErrorsOnBadPrograms) {
  Table t = MakeNationsTable();
  EXPECT_FALSE(ExecuteLogicalForm("bogus_op { all_rows ; x }", t).ok());
  EXPECT_FALSE(ExecuteLogicalForm("hop { all_rows }", t).ok());  // arity
  EXPECT_FALSE(
      ExecuteLogicalForm("max { all_rows ; no_such_column }", t).ok());
  // Ordinal beyond view size.
  EXPECT_FALSE(
      ExecuteLogicalForm("nth_max { all_rows ; gold ; 99 }", t).ok());
  // Superlative over empty view.
  EXPECT_FALSE(
      ExecuteLogicalForm(
          "max { filter_eq { all_rows ; nation ; narnia } ; gold }", t)
          .ok());
}

TEST(LogicExecTest, KnownOperatorRegistry) {
  EXPECT_TRUE(IsKnownOperator("filter_eq"));
  EXPECT_TRUE(IsKnownOperator("nth_argmax"));
  EXPECT_TRUE(IsKnownOperator("most_less_eq"));
  EXPECT_FALSE(IsKnownOperator("bogus"));
}

}  // namespace
}  // namespace uctr::logic
