// Tests of the bench-harness utilities (they feed every experiment, so
// they get their own coverage): evidence-stripping views, subsampling,
// bucketized QA evaluation, and synthetic-data preparation.

#include <gtest/gtest.h>

#include <set>

#include "bench/harness.h"
#include "tests/test_util.h"

namespace uctr::bench {
namespace {

datasets::Benchmark TinyBench(Rng* rng) {
  datasets::BenchmarkScale scale;
  scale.unlabeled_tables = 6;
  scale.gold_train_tables = 4;
  scale.eval_tables = 4;
  scale.gold_samples_per_table = 5;
  scale.eval_samples_per_table = 5;
  return datasets::MakeTatQaSim(scale, rng);
}

TEST(HarnessTest, PctFormatting) {
  EXPECT_EQ(Pct(0.624), "62.4");
  EXPECT_EQ(Pct(0.0), "0.0");
  EXPECT_EQ(Pct(1.0), "100.0");
}

TEST(HarnessTest, EmF1CellFormatting) {
  eval::EmF1 scores;
  scores.em = 0.307;
  scores.f1 = 0.324;
  EXPECT_EQ(EmF1Cell(scores), "30.7 / 32.4");
}

TEST(HarnessTest, SubsampleSizesAndMembership) {
  Rng rng(3);
  datasets::Benchmark bench = TinyBench(&rng);
  ASSERT_GE(bench.gold_train.size(), 10u);
  Dataset sub = Subsample(bench.gold_train, 7, &rng);
  EXPECT_EQ(sub.size(), 7u);
  // Every subsampled sentence exists in the source.
  std::set<std::string> source;
  for (const Sample& s : bench.gold_train.samples) source.insert(s.sentence);
  for (const Sample& s : sub.samples) EXPECT_TRUE(source.count(s.sentence));
  // Requesting more than available returns everything.
  Dataset all = Subsample(bench.gold_train, 10000, &rng);
  EXPECT_EQ(all.size(), bench.gold_train.size());
}

TEST(HarnessTest, EvidenceViewsStripTheRightSide) {
  Rng rng(5);
  datasets::Benchmark bench = TinyBench(&rng);
  Dataset table_only = TableOnlyView(bench.gold_train);
  for (const Sample& s : table_only.samples) {
    EXPECT_TRUE(s.paragraph.empty());
    EXPECT_GT(s.table.num_rows(), 0u);
  }
  Dataset text_only = SentenceOnlyView(bench.gold_train);
  for (size_t i = 0; i < text_only.samples.size(); ++i) {
    EXPECT_EQ(text_only.samples[i].table.num_rows(), 0u);
    // Provenance (table name) survives for the retrieval stage.
    EXPECT_EQ(text_only.samples[i].table.name(),
              bench.gold_train.samples[i].table.name());
  }
}

TEST(HarnessTest, EvaluateQaBucketsPartitionTotals) {
  Rng rng(7);
  datasets::Benchmark bench = TinyBench(&rng);
  auto templates = QuestionTemplatesFor(bench.program_types);
  model::QaModel qa_model = TrainQa(bench.gold_train, templates, &rng);
  QaBucketScores scores = EvaluateQa(qa_model, bench.gold_dev);

  size_t n_table = bench.gold_dev.CountSource(EvidenceSource::kTableOnly);
  size_t n_tt = bench.gold_dev.CountSource(EvidenceSource::kTableSplit) +
                bench.gold_dev.CountSource(EvidenceSource::kTableExpand);
  size_t n_text = bench.gold_dev.CountSource(EvidenceSource::kTextOnly);
  size_t n = bench.gold_dev.size();
  ASSERT_EQ(n_table + n_tt + n_text, n);
  // Total EM is the sample-weighted mean of the bucket EMs.
  double reconstructed =
      (scores.table.em * n_table + scores.table_text.em * n_tt +
       scores.text.em * n_text) /
      static_cast<double>(n);
  EXPECT_NEAR(scores.total.em, reconstructed, 1e-9);
}

TEST(HarnessTest, GenerateUctrRespectsHybridSwitch) {
  Rng rng(9);
  datasets::Benchmark bench = TinyBench(&rng);
  Dataset hybrid = GenerateUctr(bench, true, bench.program_types, 6, &rng);
  Dataset flat = GenerateUctr(bench, false, bench.program_types, 6, &rng);
  size_t hybrid_sources =
      hybrid.CountSource(EvidenceSource::kTableSplit) +
      hybrid.CountSource(EvidenceSource::kTableExpand) +
      hybrid.CountSource(EvidenceSource::kTextOnly);
  EXPECT_GT(hybrid_sources, 0u);
  EXPECT_EQ(flat.CountSource(EvidenceSource::kTableSplit), 0u);
  EXPECT_EQ(flat.CountSource(EvidenceSource::kTableExpand), 0u);
}

TEST(HarnessTest, QuestionTemplatesForFiltersByType) {
  auto sql_only = QuestionTemplatesFor({ProgramType::kSql});
  for (const auto& t : sql_only) EXPECT_EQ(t.type, ProgramType::kSql);
  auto both =
      QuestionTemplatesFor({ProgramType::kSql, ProgramType::kArithmetic});
  EXPECT_GT(both.size(), sql_only.size());
}

}  // namespace
}  // namespace uctr::bench
