// Tests of the cross-cutting observability layer (src/obs/): lock-free
// counters/histograms + registry exposition, and the bounded-ring tracer
// with nesting RAII spans.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace uctr::obs {
namespace {

// ---------------------------------------------------------------- Metrics

TEST(ObsCounterTest, IncrementsAreCumulativeAndPointersStable) {
  MetricsRegistry registry;
  Counter* c = registry.counter("things_total");
  EXPECT_EQ(c, registry.counter("things_total"));
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(9);
  EXPECT_EQ(c->value(), 10u);
}

TEST(ObsHistogramTest, QuantileEdgeCases) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("latency_edge_us");

  // Empty histogram: every quantile is 0, not a crash or NaN.
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->QuantileMicros(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h->QuantileMicros(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h->QuantileMicros(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h->mean_micros(), 0.0);

  for (int i = 0; i < 100; ++i) h->Observe(100.0);  // bucket [64,128)us
  // q=0 clamps to the first observation's bucket; q=1 to the last.
  EXPECT_GT(h->QuantileMicros(0.0), 0.0);
  EXPECT_LE(h->QuantileMicros(0.0), 128.0);
  EXPECT_LE(h->QuantileMicros(1.0), 128.0);
  EXPECT_GE(h->QuantileMicros(1.0), h->QuantileMicros(0.0));
}

TEST(ObsHistogramTest, NegativeAndNanObservationsClampToZeroBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("latency_weird_us");
  h->Observe(-123.0);
  h->Observe(std::numeric_limits<double>::quiet_NaN());
  h->Observe(0.0);
  EXPECT_EQ(h->count(), 3u);
  // All land in the underflow bucket: the median is its upper bound.
  EXPECT_LE(h->QuantileMicros(0.5), 1.0);
}

TEST(ObsHistogramTest, OverflowObservationsLandInLastBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("latency_huge_us");
  h->Observe(1e12);  // far beyond the top bucket (~134s)
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GT(h->QuantileMicros(0.5), 1e6);
}

TEST(ObsRegistryTest, ExpositionCoversCountersAndHistogramStats) {
  MetricsRegistry registry;
  registry.counter("requests_total")->Increment(7);
  registry.histogram("latency_x_us")->Observe(100.0);
  std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("requests_total 7"), std::string::npos) << text;
  EXPECT_NE(text.find("latency_x_us{stat=\"count\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_x_us{stat=\"p50\"}"), std::string::npos)
      << text;
}

TEST(ObsRegistryTest, DefaultRegistryIsProcessWideSingleton) {
  EXPECT_EQ(&DefaultRegistry(), &DefaultRegistry());
}

TEST(ObsCounterTest, ConcurrentIncrementsAreNotLost) {
  MetricsRegistry registry;
  Counter* c = registry.counter("contended_total");
  Histogram* h = registry.histogram("latency_contended_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c, h] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(static_cast<double>(i % 512));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// ----------------------------------------------------------------- Tracer

TEST(TracerTest, DisabledTracerYieldsInactiveSpans) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  Span span = tracer.StartSpan("noop");
  EXPECT_FALSE(span.active());
  span.AddAttr("k", "v");  // no-ops, no crash
  span.End();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(TracerTest, SpansNestViaThreadLocalParent) {
  Tracer tracer;
  tracer.set_enabled(true);
  uint64_t outer_id = 0;
  {
    Span outer = tracer.StartSpan("outer");
    ASSERT_TRUE(outer.active());
    outer_id = outer.span_id();
    {
      Span inner = tracer.StartSpan("inner");
      inner.AddAttr("depth", "2");
    }
    // A sibling started after `inner` ended still parents to `outer`.
    Span sibling = tracer.StartSpan("sibling");
    EXPECT_TRUE(sibling.active());
  }
  // After all spans ended, a new span is a root again.
  Span root = tracer.StartSpan("root2");
  root.End();

  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Recorded in END order: inner, sibling, outer, root2.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].parent_id, outer_id);
  ASSERT_EQ(events[0].attrs.size(), 1u);
  EXPECT_EQ(events[0].attrs[0].first, "depth");
  EXPECT_EQ(events[1].name, "sibling");
  EXPECT_EQ(events[1].parent_id, outer_id);
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[2].parent_id, 0u) << "outer must be a root span";
  EXPECT_EQ(events[3].name, "root2");
  EXPECT_EQ(events[3].parent_id, 0u)
      << "parent must be restored once the stack unwinds";
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.duration_us, 0);
    EXPECT_GE(e.start_us, 0);
  }
}

TEST(TracerTest, RingBufferBoundsMemory) {
  Tracer tracer(/*capacity=*/16);
  tracer.set_enabled(true);
  for (int i = 0; i < 100; ++i) {
    Span span = tracer.StartSpan("s" + std::to_string(i));
  }
  EXPECT_EQ(tracer.size(), 16u);
  EXPECT_EQ(tracer.capacity(), 16u);
  EXPECT_EQ(tracer.total_recorded(), 100u);
  // Oldest events were overwritten: the snapshot is the newest 16,
  // oldest first.
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(events.front().name, "s84");
  EXPECT_EQ(events.back().name, "s99");

  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_recorded(), 100u);
}

TEST(TracerTest, ToLdjsonEmitsOneObjectPerSpan) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span span = tracer.StartSpan("serve.execute");
    span.AddAttr("op", "verify");
  }
  std::string ldjson = tracer.ToLdjson();
  EXPECT_NE(ldjson.find("\"name\":\"serve.execute\""), std::string::npos)
      << ldjson;
  EXPECT_NE(ldjson.find("\"op\":\"verify\""), std::string::npos) << ldjson;
  EXPECT_NE(ldjson.find("\"dur_us\":"), std::string::npos) << ldjson;
  EXPECT_EQ(ldjson.back(), '\n');
}

TEST(TracerTest, MovedFromSpanDoesNotDoubleRecord) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span a = tracer.StartSpan("moved");
    Span b = std::move(a);
    a.End();  // moved-from: no-op
    EXPECT_FALSE(a.active());
    EXPECT_TRUE(b.active());
  }
  EXPECT_EQ(tracer.total_recorded(), 1u);
}

TEST(TracerTest, ConcurrentSpansRecordWithoutCorruption) {
  Tracer tracer(/*capacity=*/64);
  tracer.set_enabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < 100; ++i) {
        Span outer = tracer.StartSpan("outer" + std::to_string(t));
        Span inner = tracer.StartSpan("inner" + std::to_string(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracer.total_recorded(), 4u * 100u * 2u);
  EXPECT_EQ(tracer.size(), 64u);
}

}  // namespace
}  // namespace uctr::obs
