#include <gtest/gtest.h>

#include "arith/executor.h"
#include "arith/parser.h"
#include "tests/test_util.h"

namespace uctr::arith {
namespace {

using uctr::testing::MakeFinanceTable;

Value Exec(const std::string& program, const Table& t) {
  return ExecuteExpression(program, t).ValueOrDie().scalar();
}

// ---------------------------------------------------------------- Parser

TEST(ArithParserTest, ParsesStepChain) {
  auto expr = Parse("subtract(2019 of revenue, 2018 of revenue), "
                    "divide(#0, 2018 of revenue)")
                  .ValueOrDie();
  ASSERT_EQ(expr.steps.size(), 2u);
  EXPECT_EQ(expr.steps[0].op, "subtract");
  ASSERT_EQ(expr.steps[1].args.size(), 2u);
  EXPECT_EQ(expr.steps[1].args[0].kind, Operand::Kind::kStepRef);
  EXPECT_EQ(expr.steps[1].args[0].step_ref, 0u);
}

TEST(ArithParserTest, ParsesCellRefs) {
  auto expr = Parse("add(2019 of gross profit, 5)").ValueOrDie();
  const Operand& op = expr.steps[0].args[0];
  EXPECT_EQ(op.kind, Operand::Kind::kCellRef);
  EXPECT_EQ(op.column, "2019");
  EXPECT_EQ(op.row, "gross profit");
  EXPECT_EQ(expr.steps[0].args[1].kind, Operand::Kind::kConst);
}

TEST(ArithParserTest, CellRefSplitsOnLastOf) {
  auto expr = Parse("add(share of revenue of 2019, 1)").ValueOrDie();
  const Operand& op = expr.steps[0].args[0];
  EXPECT_EQ(op.kind, Operand::Kind::kCellRef);
  EXPECT_EQ(op.column, "share of revenue");
  EXPECT_EQ(op.row, "2019");
}

TEST(ArithParserTest, ParsesFinqaConstants) {
  auto expr = Parse("add(const_100, const_3)").ValueOrDie();
  EXPECT_DOUBLE_EQ(expr.steps[0].args[0].constant, 100.0);
  EXPECT_DOUBLE_EQ(expr.steps[0].args[1].constant, 3.0);
}

TEST(ArithParserTest, RejectsForwardReferences) {
  EXPECT_FALSE(Parse("divide(#1, 2), add(1, 2)").ok());
  // #0 inside the first step points at itself: also rejected.
  EXPECT_FALSE(Parse("multiply(#0, 2)").ok());
}

TEST(ArithParserTest, RejectsUnknownOps) {
  EXPECT_FALSE(Parse("frobnicate(1, 2)").ok());
  EXPECT_FALSE(Parse("add(1, 2").ok());
  EXPECT_FALSE(Parse("").ok());
}

TEST(ArithParserTest, ToStringRoundTrips) {
  const char* p = "subtract(2019 of revenue, 2018 of revenue), "
                  "divide(#0, const_100)";
  auto expr = Parse(p).ValueOrDie();
  auto again = Parse(expr.ToString()).ValueOrDie();
  EXPECT_EQ(expr.ToString(), again.ToString());
}

// -------------------------------------------------------------- Executor

TEST(ArithExecTest, PercentageChangeIdiom) {
  Table t = MakeFinanceTable();
  // (1200.5 - 1000) / 1000 = 0.2005
  Value v = Exec(
      "subtract(2019 of revenue, 2018 of revenue), "
      "divide(#0, 2018 of revenue)",
      t);
  EXPECT_NEAR(v.number(), 0.2005, 1e-9);
}

TEST(ArithExecTest, BasicOps) {
  Table t = MakeFinanceTable();
  EXPECT_DOUBLE_EQ(Exec("add(2, 3)", t).number(), 5.0);
  EXPECT_DOUBLE_EQ(Exec("subtract(2, 3)", t).number(), -1.0);
  EXPECT_DOUBLE_EQ(Exec("multiply(2, 3)", t).number(), 6.0);
  EXPECT_DOUBLE_EQ(Exec("divide(7, 2)", t).number(), 3.5);
  EXPECT_DOUBLE_EQ(Exec("exp(2, 10)", t).number(), 1024.0);
}

TEST(ArithExecTest, GreaterYieldsBool) {
  Table t = MakeFinanceTable();
  Value v = Exec("greater(2019 of revenue, 2018 of revenue)", t);
  EXPECT_TRUE(v.is_bool());
  EXPECT_TRUE(v.boolean());
  EXPECT_FALSE(Exec("greater(1, 2)", t).boolean());
}

TEST(ArithExecTest, TableAggregationsOverRow) {
  Table t = MakeFinanceTable();
  // Row "revenue" numeric cells: 1200.5 and 1000.0.
  EXPECT_DOUBLE_EQ(Exec("table_max(revenue)", t).number(), 1200.5);
  EXPECT_DOUBLE_EQ(Exec("table_min(revenue)", t).number(), 1000.0);
  EXPECT_DOUBLE_EQ(Exec("table_sum(revenue)", t).number(), 2200.5);
  EXPECT_DOUBLE_EQ(Exec("table_average(revenue)", t).number(), 1100.25);
}

TEST(ArithExecTest, TableAggregationFallsBackToColumn) {
  Table t = MakeFinanceTable();
  // No row named "2019"; the column with that header is used instead.
  EXPECT_DOUBLE_EQ(Exec("table_sum(2019)", t).number(),
                   1200.5 + 800 + 400.5 + 2500);
}

TEST(ArithExecTest, ChainedReferences) {
  Table t = MakeFinanceTable();
  Value v = Exec("add(1, 2), add(#0, 10), multiply(#1, #0)", t);
  EXPECT_DOUBLE_EQ(v.number(), 39.0);  // (1+2)=3, 3+10=13, 13*3
}

TEST(ArithExecTest, EvidenceRowsFromCellRefs) {
  Table t = MakeFinanceTable();
  auto r = ExecuteExpression(
               "subtract(2019 of stockholders' equity, "
               "2018 of stockholders' equity)",
               t)
               .ValueOrDie();
  ASSERT_EQ(r.evidence_rows.size(), 1u);
  EXPECT_EQ(r.evidence_rows[0], 3u);
  EXPECT_DOUBLE_EQ(r.scalar().number(), 500.0);
}

TEST(ArithExecTest, ErrorPaths) {
  Table t = MakeFinanceTable();
  EXPECT_FALSE(ExecuteExpression("divide(1, 0)", t).ok());
  EXPECT_FALSE(ExecuteExpression("add(2019 of dividends, 1)", t).ok());
  EXPECT_FALSE(ExecuteExpression("table_sum(item)", t).ok());  // text column
  EXPECT_FALSE(ExecuteExpression("add(hello, 1)", t).ok());
  EXPECT_FALSE(ExecuteExpression("exp(10, 10000)", t).ok());  // overflow
}

}  // namespace
}  // namespace uctr::arith
