// Differential tests for the lazily built per-table index (table/index.h).
//
// The TableIndex contract is bit-identical execution: for every program the
// indexed path (ExecOptions::use_index = true, the default) must produce
// exactly the same outcome as the reference scan path — same status code
// and message on errors, same values (type and display text), the same
// evidence rows, and the same tie-breaking row order. These tests execute
// fixture query suites and randomized tables through both paths and compare
// the outcomes field by field, including after mutations invalidate the
// cached index and under concurrent first-touch builds.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "logic/executor.h"
#include "sql/executor.h"
#include "table/index.h"
#include "table/table.h"

namespace uctr {
namespace {

// The medal fixture used across the executor test suites: text rows with
// duplicate values (tie-breaking), a numeric tie in `total`, and a null.
Table MedalTable() {
  return Table::FromCsv(
             "nation,gold,silver,bronze,total\n"
             "Norway,16,8,13,37\n"
             "Germany,12,10,5,27\n"
             "Canada,4,8,14,26\n"
             "USA,8,10,9,27\n"
             "Sweden,8,5,5,18\n"
             "Austria,4,8,5,17\n"
             "Italy,2,7,,9\n")
      .ValueOrDie();
}

// Currency/percent formatting plus nulls: ToNumber parses "$1,234" and
// "12%", so the numeric cache must agree with per-cell parsing exactly.
Table FinanceTable() {
  return Table::FromCsv(
             "item,fy2019,fy2020,growth\n"
             "revenue,\"$1,234\",\"$2,468\",100%\n"
             "cost,\"$800\",\"$900\",12.5%\n"
             "margin,\"$434\",\"$1,568\",-\n"
             "headcount,25,31,24%\n")
      .ValueOrDie();
}

std::string DescribeOutcome(const Result<ExecResult>& r) {
  if (!r.ok()) {
    return "status{" + r.status().ToString() + "}";
  }
  std::string out = "ok{values=[";
  for (size_t i = 0; i < r->values.size(); ++i) {
    if (i > 0) out += "|";
    const Value& v = r->values[i];
    out += std::string(ValueTypeToString(v.type())) + ":" +
           v.ToDisplayString();
  }
  out += "] evidence=[";
  for (size_t i = 0; i < r->evidence_rows.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(r->evidence_rows[i]);
  }
  return out + "]}";
}

// Executes `query` through the indexed and the scan path and requires the
// outcomes to match field for field. Each call uses a fresh copy of the
// table for the scan so the indexed run can never warm state the scan
// reads (copies deliberately do not share the cached index).
void ExpectSqlIdentical(const Table& table, const std::string& query) {
  Table scan_copy = table;
  auto indexed = sql::ExecuteQuery(query, table, {.use_index = true});
  auto scanned = sql::ExecuteQuery(query, scan_copy, {.use_index = false});
  EXPECT_EQ(DescribeOutcome(indexed), DescribeOutcome(scanned))
      << "sql query diverged: " << query;
}

void ExpectLogicIdentical(const Table& table, const std::string& form) {
  Table scan_copy = table;
  auto indexed =
      logic::ExecuteLogicalForm(form, table, {.use_index = true});
  auto scanned =
      logic::ExecuteLogicalForm(form, scan_copy, {.use_index = false});
  EXPECT_EQ(DescribeOutcome(indexed), DescribeOutcome(scanned))
      << "logical form diverged: " << form;
}

const std::vector<std::string>& SqlQuerySuite() {
  static const std::vector<std::string> kQueries = {
      // Equality predicates: hash-index path (text) and numeric path.
      "SELECT total FROM w WHERE nation = 'Germany'",
      "SELECT nation FROM w WHERE gold = 8",
      "SELECT nation FROM w WHERE total = 27",
      "SELECT nation FROM w WHERE nation = 'Atlantis'",
      "SELECT nation FROM w WHERE nation != 'USA'",
      // Range predicates over the numeric cache.
      "SELECT nation FROM w WHERE gold > 5",
      "SELECT nation FROM w WHERE gold >= 8",
      "SELECT nation FROM w WHERE silver < 8",
      "SELECT nation FROM w WHERE bronze <= 5",
      // Conjunctions, including an empty intermediate row set.
      "SELECT nation FROM w WHERE gold > 5 AND silver = 10",
      "SELECT nation FROM w WHERE gold > 100 AND silver = 10",
      // Ordering (both directions; `total` ties 27-27 check stability)
      // and limits.
      "SELECT nation FROM w ORDER BY total DESC",
      "SELECT nation FROM w ORDER BY total ASC",
      "SELECT nation, total FROM w ORDER BY total DESC LIMIT 3",
      "SELECT nation FROM w WHERE gold >= 4 ORDER BY nation ASC LIMIT 4",
      // Aggregates, with and without predicates; bronze has a null.
      "SELECT COUNT(nation) FROM w",
      "SELECT COUNT(bronze) FROM w",
      "SELECT COUNT(DISTINCT silver) FROM w",
      "SELECT COUNT(DISTINCT nation) FROM w WHERE gold >= 4",
      "SELECT SUM(total) FROM w",
      "SELECT SUM(bronze) FROM w WHERE gold < 10",
      "SELECT AVG(silver) FROM w",
      "SELECT MIN(total) FROM w",
      "SELECT MAX(total) FROM w",
      "SELECT MAX(total) FROM w WHERE gold < 10",
      "SELECT MIN(nation) FROM w",
      // Error parity: unknown columns in every clause position.
      "SELECT ghost FROM w",
      "SELECT nation FROM w WHERE ghost = 1",
      "SELECT nation FROM w ORDER BY ghost",
      "SELECT SUM(ghost) FROM w",
      // Type-error parity: aggregating a text column.
      "SELECT SUM(nation) FROM w",
      "SELECT AVG(nation) FROM w WHERE gold > 5",
  };
  return kQueries;
}

const std::vector<std::string>& LogicFormSuite() {
  static const std::vector<std::string> kForms = {
      // Row selection.
      "hop { filter_eq { all_rows ; nation ; Germany } ; total }",
      "count { filter_eq { all_rows ; silver ; 8 } }",
      "count { filter_not_eq { all_rows ; nation ; USA } }",
      "count { filter_greater { all_rows ; gold ; 5 } }",
      "count { filter_less_eq { all_rows ; bronze ; 5 } }",
      "count { filter_all { all_rows ; bronze } }",
      // Superlatives and ordinals (27-27 tie in total).
      "hop { argmax { all_rows ; total } ; nation }",
      "hop { argmin { all_rows ; total } ; nation }",
      "hop { nth_argmax { all_rows ; total ; 2 } ; nation }",
      "hop { nth_argmax { all_rows ; total ; 3 } ; nation }",
      "hop { nth_argmin { all_rows ; silver ; 2 } ; nation }",
      "max { all_rows ; gold }",
      "min { all_rows ; bronze }",
      "nth_max { all_rows ; total ; 2 }",
      "nth_min { all_rows ; total ; 3 }",
      // Aggregates over views (bronze includes a null).
      "sum { all_rows ; total }",
      "avg { all_rows ; silver }",
      "sum { filter_greater { all_rows ; gold ; 5 } ; total }",
      "avg { filter_eq { all_rows ; silver ; 8 } ; gold }",
      // Majority / comparison wrappers.
      "most_greater { all_rows ; gold ; 3 }",
      "most_eq { all_rows ; silver ; 8 }",
      "all_greater { all_rows ; total ; 5 }",
      "eq { count { filter_greater { all_rows ; gold ; 5 } } ; 3 }",
      "diff { max { all_rows ; total } ; min { all_rows ; total } }",
      "greater { hop { filter_eq { all_rows ; nation ; Norway } ; gold } ; "
      "hop { filter_eq { all_rows ; nation ; Sweden } ; gold } }",
      // Superlative on a filtered (subset) view.
      "hop { argmax { filter_greater { all_rows ; silver ; 7 } ; total } ; "
      "nation }",
      // Error parity: missing column / missing row value.
      "max { all_rows ; ghost }",
      "hop { filter_eq { all_rows ; nation ; Atlantis } ; gold }",
      "sum { all_rows ; nation }",
  };
  return kForms;
}

TEST(IndexDifferentialTest, SqlFixtureSuiteMatchesScan) {
  Table medals = MedalTable();
  for (const std::string& query : SqlQuerySuite()) {
    ExpectSqlIdentical(medals, query);
  }
}

TEST(IndexDifferentialTest, SqlFinanceSuiteMatchesScan) {
  Table finance = FinanceTable();
  for (const std::string& query : {
           "SELECT fy2020 FROM w WHERE item = 'revenue'",
           "SELECT item FROM w WHERE fy2019 = 1234",
           "SELECT item FROM w WHERE fy2019 > 500 ORDER BY fy2020 DESC",
           "SELECT SUM(fy2020) FROM w",
           "SELECT COUNT(growth) FROM w",
           "SELECT COUNT(DISTINCT growth) FROM w",
           "SELECT MAX(growth) FROM w",
           "SELECT AVG(growth) FROM w",
       }) {
    ExpectSqlIdentical(finance, query);
  }
}

TEST(IndexDifferentialTest, LogicFixtureSuiteMatchesScan) {
  Table medals = MedalTable();
  for (const std::string& form : LogicFormSuite()) {
    ExpectLogicIdentical(medals, form);
  }
}

TEST(IndexDifferentialTest, EmptyAndDegenerateTables) {
  Table empty = Table::FromCsv("a,b\n").ValueOrDie();
  ExpectSqlIdentical(empty, "SELECT a FROM w WHERE b = 1");
  ExpectSqlIdentical(empty, "SELECT MAX(a) FROM w");
  // Scan parity on zero rows: a bad column in the second condition is
  // never resolved because no row survives the first.
  ExpectSqlIdentical(empty, "SELECT a FROM w WHERE a = 1 AND ghost = 2");
  ExpectLogicIdentical(empty, "count { all_rows }");
  ExpectLogicIdentical(empty, "max { all_rows ; a }");

  Table nulls = Table::FromCsv("x,y\n,\n,\n").ValueOrDie();
  ExpectSqlIdentical(nulls, "SELECT COUNT(x) FROM w");
  ExpectSqlIdentical(nulls, "SELECT x FROM w WHERE y = 0");
  ExpectLogicIdentical(nulls, "count { filter_all { all_rows ; x } }");
}

// Randomized tables: mixed-type columns (numeric text like "7", currency,
// plain words, nulls) with heavy duplication so equality and tie-breaking
// paths all fire. Every query from a fixed suite must agree between the
// two execution modes on every sampled table.
TEST(IndexDifferentialTest, RandomizedTablesMatchScan) {
  Rng rng(20240817);
  const std::vector<std::string> words = {"alpha", "beta",  "gamma",
                                          "delta", "Alpha", "BETA"};
  for (int trial = 0; trial < 25; ++trial) {
    size_t rows = 1 + rng.Index(14);
    std::vector<std::vector<std::string>> cells;
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row(4);
      row[0] = words[rng.Index(words.size())];
      row[1] = rng.Bernoulli(0.15)
                   ? ""
                   : std::to_string(static_cast<int>(rng.Index(6)));
      row[2] = rng.Bernoulli(0.2)
                   ? words[rng.Index(words.size())]
                   : "$" + std::to_string(100 * (1 + rng.Index(5)));
      row[3] = std::to_string(static_cast<int>(rng.Index(4))) + "." +
               std::to_string(static_cast<int>(rng.Index(10)));
      cells.push_back(std::move(row));
    }
    Table t =
        Table::FromStrings({"name", "score", "amount", "ratio"}, cells)
            .ValueOrDie();
    for (const std::string& query : {
             "SELECT score FROM w WHERE name = 'alpha'",
             "SELECT name FROM w WHERE score = 3",
             "SELECT name FROM w WHERE amount = 300",
             "SELECT name FROM w WHERE ratio > 1.5 ORDER BY score DESC",
             "SELECT name FROM w ORDER BY amount ASC",
             "SELECT name FROM w ORDER BY name DESC LIMIT 3",
             "SELECT COUNT(DISTINCT name) FROM w",
             "SELECT SUM(score) FROM w",
             "SELECT SUM(amount) FROM w",
             "SELECT MIN(amount) FROM w",
             "SELECT MAX(name) FROM w",
             "SELECT AVG(ratio) FROM w WHERE score >= 2",
         }) {
      ExpectSqlIdentical(t, query);
    }
    for (const std::string& form : {
             "count { filter_eq { all_rows ; name ; alpha } }",
             "hop { argmax { all_rows ; ratio } ; name }",
             "hop { nth_argmin { all_rows ; ratio ; 2 } ; name }",
             "sum { all_rows ; score }",
             "most_eq { all_rows ; name ; beta }",
         }) {
      ExpectLogicIdentical(t, form);
    }
  }
}

// Mutations must invalidate the cached index: results computed after a
// mutable_cell / AppendRow / AppendColumn must reflect the new data and
// still match the scan path exactly.
TEST(IndexInvalidationTest, MutationInvalidatesAndStaysIdentical) {
  Table t = MedalTable();

  auto before = sql::ExecuteQuery(
      "SELECT total FROM w WHERE nation = 'Germany'", t);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->ToDisplayString(), "27");

  // Rename Germany; the stale hash index would still find it.
  *t.mutable_cell(1, 0) = Value::String("Wakanda");
  auto renamed = sql::ExecuteQuery(
      "SELECT total FROM w WHERE nation = 'Germany'", t);
  // A stale hash index would still answer 27; the executor's no-match
  // policy is an EmptyResult status.
  ASSERT_FALSE(renamed.ok());
  EXPECT_EQ(renamed.status().code(), StatusCode::kEmptyResult);
  ExpectSqlIdentical(t, "SELECT total FROM w WHERE nation = 'Wakanda'");

  // Bump a number past the max; the stale sorted order would miss it.
  *t.mutable_cell(4, 4) = Value::Number(99);
  auto max_after = logic::ExecuteLogicalForm(
      "hop { argmax { all_rows ; total } ; nation }", t);
  ASSERT_TRUE(max_after.ok());
  EXPECT_EQ(max_after->ToDisplayString(), "Sweden");
  ExpectLogicIdentical(t, "hop { argmax { all_rows ; total } ; nation }");

  // AppendRow extends every per-column cache.
  ASSERT_TRUE(t.AppendRow({Value::String("Norway"), Value::Number(1),
                           Value::Number(2), Value::Number(3),
                           Value::Number(6)})
                  .ok());
  ExpectSqlIdentical(t, "SELECT total FROM w WHERE nation = 'Norway'");
  ExpectSqlIdentical(t, "SELECT COUNT(DISTINCT nation) FROM w");

  // AppendColumn changes the column count the index was sized for.
  ASSERT_TRUE(t.AppendColumn("rank", Value::Number(1)).ok());
  ExpectSqlIdentical(t, "SELECT nation FROM w WHERE rank = 1");
  ExpectLogicIdentical(t, "sum { all_rows ; rank }");
}

TEST(IndexInvalidationTest, CopiesRebuildMovesCarry) {
  Table t = MedalTable();
  t.WarmIndex();
  const TableIndex* warmed = &t.index();

  // A copy never shares the original's index.
  Table copy = t;
  EXPECT_NE(&copy.index(), warmed);
  ExpectSqlIdentical(copy, "SELECT total FROM w WHERE nation = 'Canada'");

  // A move carries the warmed index along (serving moves tables into
  // Samples after warming them once at load).
  Table moved = std::move(t);
  EXPECT_EQ(&moved.index(), warmed);
  ExpectSqlIdentical(moved, "SELECT total FROM w WHERE nation = 'Canada'");
}

// Concurrent first-touch: many threads execute indexed programs against
// one shared const Table whose index has NOT been warmed, so the lazy
// per-column std::call_once builds race. Run under
// `UCTR_SANITIZE=thread scripts/check.sh index_test` to let TSan check
// the synchronization; in any build mode the results must match the scan.
TEST(IndexConcurrencyTest, SharedConstTableAcrossThreads) {
  Table t = MedalTable();
  const std::string query =
      "SELECT nation FROM w WHERE gold >= 4 ORDER BY total DESC";
  auto expected = sql::ExecuteQuery(query, t, {.use_index = false});
  ASSERT_TRUE(expected.ok());
  const std::string want = DescribeOutcome(expected);

  constexpr int kThreads = 8;
  std::vector<std::string> got(kThreads);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      workers.emplace_back([&t, &query, &got, i] {
        auto r = sql::ExecuteQuery(query, t, {.use_index = true});
        got[i] = DescribeOutcome(r);
      });
    }
    for (std::thread& w : workers) w.join();
  }
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(got[i], want) << "thread " << i;
  }
}

// The span accessor must agree with the copying ColumnValues everywhere.
TEST(ColumnSpanTest, MatchesColumnValues) {
  Table t = FinanceTable();
  for (size_t c = 0; c < t.num_columns(); ++c) {
    std::vector<Value> copies = t.ColumnValues(c);
    ColumnSpan span = t.Column(c);
    ASSERT_EQ(span.size(), copies.size());
    for (size_t r = 0; r < copies.size(); ++r) {
      EXPECT_EQ(span[r].type(), copies[r].type());
      EXPECT_EQ(span[r].ToDisplayString(), copies[r].ToDisplayString());
    }
  }
}

// RowIndexByName now reads the cached first column; exact, substring, and
// error behavior must be unchanged.
TEST(RowIndexByNameTest, IndexedLookupKeepsSemantics) {
  Table t = MedalTable();
  EXPECT_EQ(t.RowIndexByName("germany").ValueOrDie(), 1u);
  EXPECT_EQ(t.RowIndexByName("  USA  ").ValueOrDie(), 3u);
  EXPECT_EQ(t.RowIndexByName("swed").ValueOrDie(), 4u);  // substring
  EXPECT_FALSE(t.RowIndexByName("Atlantis").ok());
  // Mutation is visible through the name lookup too.
  *t.mutable_cell(1, 0) = Value::String("Prussia");
  EXPECT_EQ(t.RowIndexByName("Prussia").ValueOrDie(), 1u);
  EXPECT_FALSE(t.RowIndexByName("Germany").ok());
}

}  // namespace
}  // namespace uctr
