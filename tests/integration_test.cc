// End-to-end integration tests: miniature versions of the paper's
// experiments asserting the qualitative findings (orderings), exercising
// every module together — corpus simulation, synthetic generation,
// baseline generation, model training, and evaluation.

#include <gtest/gtest.h>

#include "baselines/mqa_qg.h"
#include "baselines/random_baseline.h"
#include "datasets/benchmark.h"
#include "eval/metrics.h"
#include "model/qa_model.h"
#include "model/verifier.h"
#include "program/library.h"

namespace uctr {
namespace {

datasets::BenchmarkScale TinyScale() {
  datasets::BenchmarkScale scale;
  scale.unlabeled_tables = 12;
  scale.gold_train_tables = 10;
  scale.eval_tables = 10;
  scale.gold_samples_per_table = 6;
  scale.eval_samples_per_table = 6;
  return scale;
}

Dataset UctrSynthetic(const datasets::Benchmark& bench, Rng* rng) {
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = bench.task;
  config.program_types = bench.program_types;
  config.samples_per_table = 10;
  config.use_table_to_text = bench.hybrid;
  config.use_text_to_table = bench.hybrid;
  config.hybrid_fraction = bench.hybrid ? 0.45 : 0.0;
  config.unknown_fraction = bench.num_classes >= 3 ? 0.1 : 0.0;
  config.nl = datasets::SyntheticNlProfile();
  Generator generator(config, &library, rng);
  return generator.GenerateDataset(bench.unlabeled);
}

TEST(IntegrationTest, UnsupervisedVerificationBeatsRandomAndMqaQg) {
  Rng rng(101);
  datasets::Benchmark bench = datasets::MakeFeverousSim(TinyScale(), &rng);
  ASSERT_GT(bench.gold_dev.size(), 20u);

  // UCTR.
  Dataset uctr = UctrSynthetic(bench, &rng);
  model::VerifierConfig config;
  model::VerifierModel uctr_model(config, BuiltinLogicTemplates());
  uctr_model.Train(uctr, &rng);
  double uctr_acc = uctr_model.Accuracy(bench.gold_dev);

  // MQA-QG.
  baselines::MqaQgConfig mqaqg_config;
  mqaqg_config.task = TaskType::kFactVerification;
  baselines::MqaQg mqaqg_gen(mqaqg_config, &rng);
  Dataset mqaqg = mqaqg_gen.GenerateDataset(bench.unlabeled);
  model::VerifierModel mqaqg_model(config, BuiltinLogicTemplates());
  mqaqg_model.Train(mqaqg, &rng);
  double mqaqg_acc = mqaqg_model.Accuracy(bench.gold_dev);

  // Random.
  baselines::RandomBaseline random(2, &rng);
  std::vector<Label> gold;
  for (const Sample& s : bench.gold_dev.samples) gold.push_back(s.label);
  double random_acc =
      eval::LabelAccuracy(random.PredictAll(gold.size()), gold);

  // Paper ordering (Table IV): UCTR > MQA-QG-ish > random.
  EXPECT_GT(uctr_acc, random_acc + 0.1);
  EXPECT_GT(uctr_acc, mqaqg_acc - 0.03);  // >= within noise
}

TEST(IntegrationTest, SyntheticPretrainingHelpsFewShot) {
  Rng rng(202);
  datasets::Benchmark bench = datasets::MakeWikiSqlSim(TinyScale(), &rng);
  auto templates = BuiltinSqlTemplates();
  Dataset uctr = UctrSynthetic(bench, &rng);

  // Few-shot only.
  Dataset fewshot;
  for (size_t i = 0; i < std::min<size_t>(20, bench.gold_train.size());
       ++i) {
    fewshot.samples.push_back(bench.gold_train.samples[i]);
  }
  model::QaConfig config;
  model::QaModel fewshot_model(config, templates);
  fewshot_model.Train(fewshot, &rng);

  // Synthetic pre-training + few-shot.
  model::QaModel pretrained(config, templates);
  pretrained.Train(uctr, &rng);
  pretrained.Train(fewshot, &rng);

  size_t fewshot_correct = 0, pretrained_correct = 0;
  for (const Sample& s : bench.gold_dev.samples) {
    if (fewshot_model.PredictCorrect(s)) ++fewshot_correct;
    if (pretrained.PredictCorrect(s)) ++pretrained_correct;
  }
  // Paper Figure 5 / few-shot rows: pre-training never hurts materially.
  EXPECT_GE(pretrained_correct + 2, fewshot_correct);
}

TEST(IntegrationTest, ThreeWayVerificationLearnsUnknown) {
  Rng rng(303);
  datasets::Benchmark bench =
      datasets::MakeSemTabFactsSim(TinyScale(), &rng);
  Dataset uctr = UctrSynthetic(bench, &rng);
  ASSERT_GT(uctr.CountLabel(Label::kUnknown), 0u);

  model::VerifierConfig config;
  config.num_classes = 3;
  model::VerifierModel verifier(config, BuiltinLogicTemplates());
  verifier.Train(uctr, &rng);

  // The model actually uses the third class on the dev set's unknowns.
  size_t predicted_unknown = 0, gold_unknown = 0, unknown_hits = 0;
  for (const Sample& s : bench.gold_dev.samples) {
    Label predicted = verifier.Predict(s);
    if (predicted == Label::kUnknown) ++predicted_unknown;
    if (s.label == Label::kUnknown) {
      ++gold_unknown;
      if (predicted == Label::kUnknown) ++unknown_hits;
    }
  }
  if (gold_unknown >= 3) {
    EXPECT_GT(predicted_unknown, 0u);
    EXPECT_GT(unknown_hits * 2, gold_unknown)
        << unknown_hits << "/" << gold_unknown;
  }
}

TEST(IntegrationTest, HybridOpsImproveHybridBuckets) {
  Rng rng(404);
  datasets::Benchmark bench = datasets::MakeTatQaSim(TinyScale(), &rng);
  static const TemplateLibrary& library = TemplateLibrary::Builtin();

  auto make_synthetic = [&](bool hybrid_ops) {
    GenerationConfig config;
    config.task = bench.task;
    config.program_types = bench.program_types;
    config.samples_per_table = 10;
    config.use_table_to_text = hybrid_ops;
    config.use_text_to_table = hybrid_ops;
    config.hybrid_fraction = hybrid_ops ? 0.5 : 0.0;
    Generator generator(config, &library, &rng);
    return generator.GenerateDataset(bench.unlabeled);
  };
  Dataset with_ops = make_synthetic(true);
  Dataset without_ops = make_synthetic(false);

  // The Table-To-Text / Text-To-Table operators produce the joint
  // table-text samples; without them none exist (ablation A5 vs A6).
  size_t hybrid_with = with_ops.CountSource(EvidenceSource::kTableSplit) +
                       with_ops.CountSource(EvidenceSource::kTableExpand) +
                       with_ops.CountSource(EvidenceSource::kTextOnly);
  size_t hybrid_without =
      without_ops.CountSource(EvidenceSource::kTableSplit) +
      without_ops.CountSource(EvidenceSource::kTableExpand) +
      without_ops.CountSource(EvidenceSource::kTextOnly);
  EXPECT_GT(hybrid_with, 10u);
  EXPECT_EQ(hybrid_without, 0u);
}

}  // namespace
}  // namespace uctr
