// Property-based tests of the arithmetic executor: algebraic identities
// over randomly chosen table cells.

#include <gtest/gtest.h>

#include "common/numeric.h"
#include "arith/executor.h"
#include "tests/test_util.h"

namespace uctr::arith {
namespace {

class ArithPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam()};

  double Exec(const std::string& program, const Table& t) {
    auto r = ExecuteExpression(program, t);
    EXPECT_TRUE(r.ok()) << program << " -> " << r.status();
    return r.ok() ? r->scalar().number() : 0.0;
  }

  /// A random "col of row" reference into `t`.
  std::string CellRef(const Table& t) {
    size_t col = 1 + rng_.Index(t.num_columns() - 1);
    size_t row = rng_.Index(t.num_rows());
    return t.schema().column(col).name + " of " +
           t.cell(row, 0).ToDisplayString();
  }
};

TEST_P(ArithPropertyTest, AddCommutes) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string a = CellRef(t), b = CellRef(t);
  EXPECT_DOUBLE_EQ(Exec("add(" + a + ", " + b + ")", t),
                   Exec("add(" + b + ", " + a + ")", t));
}

TEST_P(ArithPropertyTest, SubtractAntisymmetric) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string a = CellRef(t), b = CellRef(t);
  EXPECT_DOUBLE_EQ(Exec("subtract(" + a + ", " + b + ")", t),
                   -Exec("subtract(" + b + ", " + a + ")", t));
}

TEST_P(ArithPropertyTest, MultiplyDivideInverse) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string a = CellRef(t);
  // Divide by a strictly positive constant to avoid zero cells.
  double k = static_cast<double>(rng_.UniformInt(1, 9));
  double v = Exec("multiply(" + a + ", " + FormatNumber(k) + "), divide(#0, " +
                      FormatNumber(k) + ")",
                  t);
  EXPECT_TRUE(NearlyEqual(v, Exec("add(" + a + ", 0)", t)));
}

TEST_P(ArithPropertyTest, PercentageChangeIdentity) {
  Table t = uctr::testing::RandomTable(&rng_);
  // Ensure a non-zero denominator by adding 1 via constants is awkward;
  // regenerate refs until the base cell is non-zero.
  for (int attempt = 0; attempt < 20; ++attempt) {
    std::string a = CellRef(t), b = CellRef(t);
    auto base = ExecuteExpression("add(" + b + ", 0)", t);
    if (!base.ok() || base->scalar().number() == 0.0) continue;
    double lhs =
        Exec("subtract(" + a + ", " + b + "), divide(#0, " + b + ")", t);
    double rhs = Exec("divide(" + a + ", " + b + "), subtract(#0, 1)", t);
    EXPECT_TRUE(NearlyEqual(lhs, rhs)) << lhs << " vs " << rhs;
    return;
  }
  GTEST_SKIP() << "no non-zero base cell found";
}

TEST_P(ArithPropertyTest, TableAggregationOrdering) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string row = t.cell(rng_.Index(t.num_rows()), 0).ToDisplayString();
  double lo = Exec("table_min(" + row + ")", t);
  double avg = Exec("table_average(" + row + ")", t);
  double hi = Exec("table_max(" + row + ")", t);
  EXPECT_LE(lo, avg + 1e-9);
  EXPECT_LE(avg, hi + 1e-9);
  double sum = Exec("table_sum(" + row + ")", t);
  EXPECT_TRUE(NearlyEqual(sum, avg * (t.num_columns() - 1)))
      << sum << " vs " << avg * (t.num_columns() - 1);
}

TEST_P(ArithPropertyTest, GreaterConsistentWithSubtract) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string a = CellRef(t), b = CellRef(t);
  bool greater = ExecuteExpression("greater(" + a + ", " + b + ")", t)
                     ->scalar()
                     .boolean();
  double diff = Exec("subtract(" + a + ", " + b + ")", t);
  EXPECT_EQ(greater, diff > 0.0);
}

TEST_P(ArithPropertyTest, ExpIdentities) {
  Table t = uctr::testing::RandomTable(&rng_);
  std::string a = CellRef(t);
  EXPECT_TRUE(NearlyEqual(Exec("exp(" + a + ", 1)", t),
                          Exec("add(" + a + ", 0)", t)));
  EXPECT_DOUBLE_EQ(Exec("exp(" + a + ", 0)", t), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArithPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace uctr::arith
