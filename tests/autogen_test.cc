#include <gtest/gtest.h>

#include <set>

#include "program/auto_generator.h"
#include "program/sampler.h"
#include "tests/test_util.h"

namespace uctr {
namespace {

using testing::MakeFinanceTable;
using testing::MakeNationsTable;

TEST(AutoGenTest, ProposalsAreWellFormedClaims) {
  Rng rng(3);
  AutoGenConfig config;
  AutoTemplateGenerator gen(config, &rng);
  for (int i = 0; i < 50; ++i) {
    ProgramTemplate tmpl = gen.Propose();
    EXPECT_EQ(tmpl.type, ProgramType::kLogicalForm);
    EXPECT_EQ(tmpl.reasoning_type, "auto");
    EXPECT_FALSE(tmpl.placeholders.empty()) << tmpl.pattern;
  }
}

TEST(AutoGenTest, ProposalsAreWellFormedSql) {
  Rng rng(5);
  AutoGenConfig config;
  config.claims = false;
  AutoTemplateGenerator gen(config, &rng);
  for (int i = 0; i < 50; ++i) {
    ProgramTemplate tmpl = gen.Propose();
    EXPECT_EQ(tmpl.type, ProgramType::kSql);
    // The pattern itself must be syntactically coherent once filled:
    // validated implicitly by the sampler below; here check slots parse.
    EXPECT_FALSE(tmpl.pattern.empty());
  }
}

TEST(AutoGenTest, GeneratedTemplatesExecuteOnCorpus) {
  Rng rng(7);
  AutoGenConfig config;
  config.num_candidates = 60;
  AutoTemplateGenerator gen(config, &rng);
  std::vector<Table> corpus = {MakeNationsTable(), MakeFinanceTable()};
  auto templates = gen.Generate(corpus);
  ASSERT_GT(templates.size(), 5u);

  // Every surviving template instantiates on a fresh table most of the
  // time (that is what the filter guarantees).
  ProgramSampler sampler(&rng);
  size_t working = 0;
  for (const auto& tmpl : templates) {
    for (int trial = 0; trial < 6; ++trial) {
      auto r = tmpl.HasDerive() || tmpl.type == ProgramType::kLogicalForm
                   ? sampler.SampleClaim(tmpl, corpus[0], trial % 2 == 0)
                   : sampler.Sample(tmpl, corpus[0]);
      if (r.ok()) {
        ++working;
        break;
      }
    }
  }
  EXPECT_GE(working * 10, templates.size() * 8);  // >= 80% usable
}

TEST(AutoGenTest, FilterRejectsAtLeastSomeCandidates) {
  Rng rng(11);
  AutoGenConfig strict;
  strict.num_candidates = 40;
  strict.min_success_rate = 0.99;  // near-perfect execution demanded
  AutoTemplateGenerator strict_gen(strict, &rng);
  AutoGenConfig loose = strict;
  loose.min_success_rate = 0.0;
  Rng rng2(11);
  AutoTemplateGenerator loose_gen(loose, &rng2);

  std::vector<Table> corpus = {MakeNationsTable()};
  auto strict_set = strict_gen.Generate(corpus);
  auto loose_set = loose_gen.Generate(corpus);
  EXPECT_LT(strict_set.size(), loose_set.size());
}

TEST(AutoGenTest, SuccessRateBounds) {
  Rng rng(13);
  AutoGenConfig config;
  AutoTemplateGenerator gen(config, &rng);
  auto tmpl = ProgramTemplate::Make(
                  ProgramType::kLogicalForm,
                  "eq { count { filter_eq { all_rows ; {c1} ; {v1@c1} } } ; "
                  "{derive} }",
                  "count")
                  .ValueOrDie();
  std::vector<Table> corpus = {MakeNationsTable()};
  double rate = gen.SuccessRate(tmpl, corpus);
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
  EXPECT_GT(rate, 0.5);  // this template nearly always works
  EXPECT_DOUBLE_EQ(gen.SuccessRate(tmpl, {}), 0.0);
}

TEST(AutoGenTest, GeneratedSetIsDiverse) {
  Rng rng(17);
  AutoGenConfig config;
  config.num_candidates = 120;
  AutoTemplateGenerator gen(config, &rng);
  std::vector<Table> corpus = {MakeNationsTable(), MakeFinanceTable()};
  auto templates = gen.Generate(corpus);
  std::set<std::string> roots;
  for (const auto& tmpl : templates) {
    roots.insert(tmpl.pattern.substr(0, tmpl.pattern.find(' ')));
  }
  EXPECT_GE(roots.size(), 4u);  // eq/round_eq/greater/only/most_/all_...
}

}  // namespace
}  // namespace uctr
