// Failure-injection tests for the generation pipeline and models on
// degenerate tables: single column, single row, all-text, all-null
// columns, duplicate headers-adjacent names. The contract is graceful
// degradation — fewer or zero samples, never a crash or a wrong label.

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "model/qa_model.h"
#include "model/verifier.h"
#include "program/library.h"
#include "tests/test_util.h"

namespace uctr {
namespace {

Generator MakeGenerator(TaskType task, Rng* rng) {
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = task;
  config.program_types =
      task == TaskType::kFactVerification
          ? std::vector<ProgramType>{ProgramType::kLogicalForm}
          : std::vector<ProgramType>{ProgramType::kSql,
                                     ProgramType::kArithmetic};
  config.samples_per_table = 8;
  return Generator(config, &library, rng);
}

void CheckGracefulOn(const std::string& csv) {
  Rng rng(13);
  TableWithText input;
  auto table = Table::FromCsv(csv);
  ASSERT_TRUE(table.ok()) << csv;
  input.table = std::move(table).ValueOrDie();

  for (TaskType task :
       {TaskType::kFactVerification, TaskType::kQuestionAnswering}) {
    Generator gen = MakeGenerator(task, &rng);
    std::vector<Sample> samples = gen.GenerateFromTable(input);
    // Whatever was produced must be internally consistent.
    for (const Sample& s : samples) {
      EXPECT_FALSE(s.sentence.empty());
      auto r = s.program.Execute(s.table);
      if (s.source == EvidenceSource::kTableOnly && r.ok() &&
          task == TaskType::kFactVerification) {
        EXPECT_EQ(s.label, r->scalar().boolean() ? Label::kSupported
                                                 : Label::kRefuted);
      }
    }
  }
}

TEST(DegenerateTest, SingleColumnTable) {
  CheckGracefulOn("only_column\na\nb\nc\n");
}

TEST(DegenerateTest, SingleRowTable) {
  CheckGracefulOn("name,v1,v2\nalpha,1,2\n");
}

TEST(DegenerateTest, AllTextTable) {
  CheckGracefulOn("name,color,shape\na,red,round\nb,blue,square\n");
}

TEST(DegenerateTest, AllNullColumn) {
  CheckGracefulOn("name,empty,v\na,,1\nb,,2\nc,,3\n");
}

TEST(DegenerateTest, NumericFirstColumn) {
  // Row names are numbers — row lookup by name must still work.
  CheckGracefulOn("id,score\n1,10\n2,20\n3,30\n");
}

TEST(DegenerateTest, HeaderOnlyTableProducesNothing) {
  Rng rng(17);
  TableWithText input;
  input.table = Table::FromCsv("a,b,c\n").ValueOrDie();
  Generator gen = MakeGenerator(TaskType::kFactVerification, &rng);
  EXPECT_TRUE(gen.GenerateFromTable(input).empty());
}

TEST(DegenerateTest, ModelsHandleEmptyEvidence) {
  // Predicting on a sample with no table and no paragraph must not crash
  // and must return *some* label / an empty answer.
  model::VerifierConfig vconfig;
  model::VerifierModel verifier(vconfig, BuiltinLogicTemplates());
  Sample s;
  s.task = TaskType::kFactVerification;
  s.sentence = "The gold of china is 8.";
  Label label = verifier.Predict(s);
  EXPECT_TRUE(label == Label::kSupported || label == Label::kRefuted);

  model::QaConfig qconfig;
  model::QaModel qa(qconfig, BuiltinSqlTemplates());
  Sample q;
  q.task = TaskType::kQuestionAnswering;
  q.sentence = "Which nation has the highest gold?";
  EXPECT_EQ(qa.Predict(q), "");
}

TEST(DegenerateTest, WideTableStillSamples) {
  std::string csv = "name";
  for (int c = 0; c < 40; ++c) csv += ",m" + std::to_string(c);
  csv += "\n";
  for (int r = 0; r < 4; ++r) {
    csv += "row" + std::to_string(r);
    for (int c = 0; c < 40; ++c) csv += "," + std::to_string(r * 40 + c);
    csv += "\n";
  }
  Rng rng(19);
  TableWithText input;
  input.table = Table::FromCsv(csv).ValueOrDie();
  Generator gen = MakeGenerator(TaskType::kQuestionAnswering, &rng);
  EXPECT_GT(gen.GenerateFromTable(input).size(), 3u);
}

}  // namespace
}  // namespace uctr
