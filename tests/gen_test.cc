#include <gtest/gtest.h>

#include <set>

#include "gen/generator.h"
#include "gen/sample.h"
#include "program/library.h"
#include "tests/test_util.h"

namespace uctr {
namespace {

using testing::MakeFinanceTable;
using testing::MakeNationsTable;

TableWithText NationsInput() {
  TableWithText input;
  input.table = MakeNationsTable();
  input.paragraph = {
      "For the nation italy, the gold was 3, the silver was 4, the bronze "
      "was 5 and the total was 12.",
      "The games were held in the summer.",
  };
  return input;
}

TEST(GeneratorTest, QaSamplesHaveConsistentAnswers) {
  Rng rng(42);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kQuestionAnswering;
  config.program_types = {ProgramType::kSql};
  config.samples_per_table = 12;
  config.use_table_to_text = false;
  config.use_text_to_table = false;
  Generator gen(config, &lib, &rng);

  TableWithText input;
  input.table = MakeNationsTable();
  auto samples = gen.GenerateFromTable(input);
  ASSERT_GE(samples.size(), 8u);
  for (const Sample& s : samples) {
    EXPECT_EQ(s.task, TaskType::kQuestionAnswering);
    EXPECT_FALSE(s.sentence.empty());
    EXPECT_FALSE(s.answer.empty());
    EXPECT_EQ(s.source, EvidenceSource::kTableOnly);
    // The recorded answer re-derives from the program on the sample table.
    auto r = s.program.Execute(s.table);
    ASSERT_TRUE(r.ok()) << s.program.text;
    EXPECT_EQ(r->ToDisplayString(), s.answer);
  }
}

TEST(GeneratorTest, FactVerificationLabelsAreBalancedAndCorrect) {
  Rng rng(7);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = 40;
  config.use_table_to_text = false;
  config.use_text_to_table = false;
  Generator gen(config, &lib, &rng);

  TableWithText input;
  input.table = MakeNationsTable();
  auto samples = gen.GenerateFromTable(input);
  ASSERT_GE(samples.size(), 25u);
  size_t supported = 0;
  for (const Sample& s : samples) {
    // Label must equal the program's execution on the evidence table.
    auto r = s.program.Execute(s.table);
    ASSERT_TRUE(r.ok()) << s.program.text;
    Label expected =
        r->scalar().boolean() ? Label::kSupported : Label::kRefuted;
    EXPECT_EQ(s.label, expected) << s.sentence;
    if (s.label == Label::kSupported) ++supported;
  }
  // Both labels occur in reasonable proportion.
  EXPECT_GT(supported, samples.size() / 5);
  EXPECT_LT(supported, samples.size() * 4 / 5);
}

TEST(GeneratorTest, TableSplittingMovesEvidenceIntoText) {
  Rng rng(11);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kQuestionAnswering;
  config.program_types = {ProgramType::kSql};
  config.samples_per_table = 30;
  config.use_table_to_text = true;
  config.use_text_to_table = false;
  config.hybrid_fraction = 1.0;
  Generator gen(config, &lib, &rng);

  TableWithText input;
  input.table = MakeNationsTable();
  auto samples = gen.GenerateFromTable(input);
  size_t split = 0;
  for (const Sample& s : samples) {
    // A split sample lands in kTableSplit, or kTextOnly when its entire
    // evidence moved into the generated sentence.
    if (s.source != EvidenceSource::kTableSplit &&
        s.source != EvidenceSource::kTextOnly) {
      continue;
    }
    ++split;
    // The sub-table lost a row and the paragraph describes it.
    EXPECT_EQ(s.table.num_rows(), input.table.num_rows() - 1);
    ASSERT_EQ(s.paragraph.size(), 1u);
    EXPECT_FALSE(s.paragraph[0].empty());
    // The question is generally NOT answerable from the sub-table alone
    // with the same result; the program was executed on the full table.
    auto full = s.program.Execute(input.table);
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(full->ToDisplayString(), s.answer);
  }
  EXPECT_GT(split, 5u);
}

TEST(GeneratorTest, TableExpansionUsesTextEvidence) {
  Rng rng(13);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kQuestionAnswering;
  config.program_types = {ProgramType::kSql};
  config.samples_per_table = 40;
  config.max_attempts = 30;
  config.use_table_to_text = false;
  config.use_text_to_table = true;
  config.hybrid_fraction = 1.0;
  Generator gen(config, &lib, &rng);

  auto samples = gen.GenerateFromTable(NationsInput());
  size_t expanded = 0;
  for (const Sample& s : samples) {
    if (s.source != EvidenceSource::kTableExpand) continue;
    ++expanded;
    // Evidence is the ORIGINAL table + paragraph; the program needs the
    // row that only exists in the expanded table.
    EXPECT_EQ(s.table.num_rows(), 5u);
    EXPECT_EQ(s.paragraph.size(), 2u);
  }
  EXPECT_GT(expanded, 3u);
}

TEST(GeneratorTest, UnknownSamplesComeFromEvidenceSwap) {
  Rng rng(17);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = 10;
  config.unknown_fraction = 0.3;
  config.use_table_to_text = false;
  config.use_text_to_table = false;
  Generator gen(config, &lib, &rng);

  TableWithText a;
  a.table = MakeNationsTable();
  a.table.set_name("nations");
  TableWithText b;
  b.table = MakeFinanceTable();
  b.table.set_name("finance");
  Dataset dataset = gen.GenerateDataset({a, b});
  EXPECT_GT(dataset.CountLabel(Label::kUnknown), 0u);
  EXPECT_GT(dataset.CountLabel(Label::kSupported), 0u);
  EXPECT_GT(dataset.CountLabel(Label::kRefuted), 0u);
}

TEST(GeneratorTest, SentencesAreUniquePerTable) {
  Rng rng(19);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kQuestionAnswering;
  config.program_types = {ProgramType::kSql, ProgramType::kArithmetic};
  config.samples_per_table = 20;
  Generator gen(config, &lib, &rng);

  TableWithText input;
  input.table = MakeFinanceTable();
  auto samples = gen.GenerateFromTable(input);
  std::set<std::string> sentences;
  for (const Sample& s : samples) sentences.insert(s.sentence);
  EXPECT_EQ(sentences.size(), samples.size());
}

TEST(GeneratorTest, ReasoningTypeDiversity) {
  Rng rng(23);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = 60;
  config.max_attempts = 20;
  Generator gen(config, &lib, &rng);

  TableWithText input;
  input.table = MakeNationsTable();
  auto samples = gen.GenerateFromTable(input);
  std::set<std::string> kinds;
  for (const Sample& s : samples) kinds.insert(s.reasoning_type);
  // Complex generation spans many reasoning types (the paper's key claim
  // vs. MQA-QG's single-row questions).
  EXPECT_GE(kinds.size(), 5u);
}

TEST(DatasetTest, SummaryCountsAreConsistent) {
  Rng rng(29);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = 10;
  Generator gen(config, &lib, &rng);

  TableWithText input;
  input.table = MakeNationsTable();
  Dataset d = gen.GenerateDataset({input});
  EXPECT_EQ(d.CountLabel(Label::kSupported) + d.CountLabel(Label::kRefuted) +
                d.CountLabel(Label::kUnknown),
            d.size());
  std::string summary = d.Summary();
  EXPECT_NE(summary.find("samples:"), std::string::npos);
  EXPECT_NE(summary.find("by label:"), std::string::npos);
}

TEST(GeneratorTest, MismatchedTaskAndProgramTypeYieldsNothing) {
  Rng rng(31);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kSql};  // wrong family
  config.samples_per_table = 5;
  Generator gen(config, &lib, &rng);
  TableWithText input;
  input.table = MakeNationsTable();
  EXPECT_TRUE(gen.GenerateFromTable(input).empty());
}

}  // namespace
}  // namespace uctr
