#include <gtest/gtest.h>

#include <set>

#include "common/string_util.h"
#include "nlgen/lexicon.h"
#include "nlgen/nl_generator.h"
#include "nlgen/paraphraser.h"
#include "nlgen/realize_util.h"
#include "tests/test_util.h"

namespace uctr::nlgen {
namespace {

NlGenerator DeterministicGenerator() {
  NlGeneratorConfig config;
  config.stochastic = false;
  return NlGenerator(config);
}

std::string Canonical(ProgramType type, const std::string& text) {
  Program p{type, text};
  return DeterministicGenerator().GenerateCanonical(p).ValueOrDie();
}

// --------------------------------------------------------------- Lexicon

TEST(LexiconTest, CanonicalAndVariants) {
  const Lexicon& lex = Lexicon::Default();
  EXPECT_EQ(lex.Canonical("highest"), "highest");
  EXPECT_GE(lex.Variants("highest").size(), 4u);
  EXPECT_EQ(lex.Canonical("no_such_key"), "no_such_key");
}

TEST(LexiconTest, PickIsAVariant) {
  const Lexicon& lex = Lexicon::Default();
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    std::string v = lex.Pick("lowest", &rng);
    const auto& variants = lex.Variants("lowest");
    EXPECT_NE(std::find(variants.begin(), variants.end(), v), variants.end());
  }
}

TEST(LexiconTest, SynonymGroupsLinkSingleWords) {
  const Lexicon& lex = Lexicon::Default();
  const auto& group = lex.SynonymGroup("highest");
  EXPECT_FALSE(group.empty());
  EXPECT_NE(std::find(group.begin(), group.end(), "largest"), group.end());
  EXPECT_TRUE(lex.SynonymGroup("zanzibar").empty());
}

// ----------------------------------------------------------- RealizeUtil

TEST(RealizeUtilTest, OrdinalWords) {
  EXPECT_EQ(OrdinalWord(1), "1st");
  EXPECT_EQ(OrdinalWord(2), "2nd");
  EXPECT_EQ(OrdinalWord(3), "3rd");
  EXPECT_EQ(OrdinalWord(4), "4th");
  EXPECT_EQ(OrdinalWord(11), "11th");
}

TEST(RealizeUtilTest, FinishSentence) {
  EXPECT_EQ(FinishSentence("hello world", '?'), "Hello world?");
  EXPECT_EQ(FinishSentence("Already done.", '?'), "Already done.");
  EXPECT_EQ(FinishSentence("  spaced  ", '.'), "Spaced.");
}

// ------------------------------------------------------------------- SQL

TEST(SqlRealizerTest, SuperlativeQuestion) {
  std::string q = Canonical(
      ProgramType::kSql,
      "SELECT nation FROM w ORDER BY gold DESC LIMIT 1");
  EXPECT_EQ(q, "Which nation has the highest gold?");
}

TEST(SqlRealizerTest, SpanQuestion) {
  std::string q = Canonical(
      ProgramType::kSql, "SELECT gold FROM w WHERE nation = 'china'");
  EXPECT_EQ(q, "What is the gold of the row whose nation is china?");
}

TEST(SqlRealizerTest, CountQuestion) {
  std::string q = Canonical(
      ProgramType::kSql, "SELECT COUNT(*) FROM w WHERE gold > '5'");
  EXPECT_NE(q.find("How many"), std::string::npos);
  EXPECT_NE(q.find("greater than 5"), std::string::npos);
}

TEST(SqlRealizerTest, AggregateQuestions) {
  EXPECT_EQ(Canonical(ProgramType::kSql, "SELECT SUM(gold) FROM w"),
            "What is the total gold?");
  EXPECT_EQ(Canonical(ProgramType::kSql, "SELECT AVG(gold) FROM w"),
            "What is the average gold?");
  EXPECT_EQ(Canonical(ProgramType::kSql, "SELECT MAX(gold) FROM w"),
            "What is the highest gold?");
  EXPECT_EQ(Canonical(ProgramType::kSql, "SELECT MIN(gold) FROM w"),
            "What is the lowest gold?");
}

TEST(SqlRealizerTest, DiffQuestionMentionsBothColumns) {
  std::string q = Canonical(
      ProgramType::kSql,
      "SELECT gold - silver FROM w WHERE nation = 'japan'");
  EXPECT_NE(q.find("difference"), std::string::npos);
  EXPECT_NE(q.find("gold"), std::string::npos);
  EXPECT_NE(q.find("silver"), std::string::npos);
  EXPECT_NE(q.find("japan"), std::string::npos);
}

TEST(SqlRealizerTest, CountDistinct) {
  std::string q = Canonical(ProgramType::kSql,
                            "SELECT COUNT(DISTINCT nation) FROM w");
  EXPECT_NE(q.find("different nation"), std::string::npos);
}

TEST(SqlRealizerTest, BoundsConditionsRealize) {
  std::string le = Canonical(
      ProgramType::kSql, "SELECT nation FROM w WHERE gold <= '5'");
  EXPECT_NE(le.find("at most 5"), std::string::npos);
  std::string ge = Canonical(
      ProgramType::kSql, "SELECT nation FROM w WHERE gold >= '5'");
  EXPECT_NE(ge.find("at least 5"), std::string::npos);
  std::string ne = Canonical(
      ProgramType::kSql, "SELECT nation FROM w WHERE gold != '5'");
  EXPECT_NE(ne.find("not 5"), std::string::npos);
}

TEST(SqlRealizerTest, MultiItemSelect) {
  std::string q = Canonical(ProgramType::kSql,
                            "SELECT gold, silver FROM w WHERE nation = "
                            "'china'");
  EXPECT_NE(q.find("gold"), std::string::npos);
  EXPECT_NE(q.find("silver"), std::string::npos);
}

TEST(SqlRealizerTest, AggregateWithWhereMentionsCondition) {
  std::string q = Canonical(
      ProgramType::kSql,
      "SELECT SUM(gold) FROM w WHERE continent = 'europe'");
  EXPECT_NE(q.find("total gold"), std::string::npos);
  EXPECT_NE(q.find("europe"), std::string::npos);
}

TEST(SqlRealizerTest, SuperlativeAscendingUsesLowest) {
  std::string q = Canonical(
      ProgramType::kSql, "SELECT nation FROM w ORDER BY gold ASC LIMIT 1");
  EXPECT_NE(q.find("lowest gold"), std::string::npos);
}

TEST(SqlRealizerTest, OrderWithoutLimitFallsBack) {
  std::string q = Canonical(ProgramType::kSql,
                            "SELECT nation FROM w ORDER BY gold DESC");
  EXPECT_NE(q.find("ordered by gold"), std::string::npos);
}

// ----------------------------------------------------------------- Logic

TEST(LogicRealizerTest, LookupClaim) {
  std::string c = Canonical(
      ProgramType::kLogicalForm,
      "eq { hop { filter_eq { all_rows ; nation ; china } ; gold } ; 8 }");
  EXPECT_EQ(c, "The gold of the row whose nation is china is 8.");
}

TEST(LogicRealizerTest, CountClaim) {
  std::string c = Canonical(
      ProgramType::kLogicalForm,
      "eq { count { filter_greater { all_rows ; gold ; 5 } } ; 2 }");
  EXPECT_EQ(c,
            "The number of rows whose gold is greater than 5 is 2.");
}

TEST(LogicRealizerTest, SuperlativeClaim) {
  std::string c = Canonical(
      ProgramType::kLogicalForm,
      "eq { hop { argmax { all_rows ; total } ; nation } ; united states }");
  EXPECT_EQ(c,
            "The nation of the row with the highest total is united states.");
}

TEST(LogicRealizerTest, OrdinalClaim) {
  std::string c = Canonical(
      ProgramType::kLogicalForm,
      "eq { hop { nth_argmax { all_rows ; total ; 2 } ; nation } ; china }");
  EXPECT_NE(c.find("2nd highest"), std::string::npos);
}

TEST(LogicRealizerTest, MajorityClaims) {
  std::string c = Canonical(ProgramType::kLogicalForm,
                            "most_eq { all_rows ; gold ; 5 }");
  EXPECT_EQ(c, "Most of the rows have a gold of 5.");
  std::string c2 = Canonical(ProgramType::kLogicalForm,
                             "all_greater { all_rows ; total ; 10 }");
  EXPECT_EQ(c2, "All of the rows have a total greater than 10.");
}

TEST(LogicRealizerTest, OnlyClaim) {
  std::string c = Canonical(
      ProgramType::kLogicalForm,
      "only { filter_greater { all_rows ; gold ; 8 } }");
  EXPECT_EQ(c, "There is only one row whose gold is greater than 8.");
}

TEST(LogicRealizerTest, AggregationClaim) {
  std::string c = Canonical(ProgramType::kLogicalForm,
                            "round_eq { avg { all_rows ; gold } ; 6 }");
  EXPECT_EQ(c, "The average gold is about 6.");
}

TEST(LogicRealizerTest, ComparativeClaim) {
  std::string c = Canonical(
      ProgramType::kLogicalForm,
      "greater { hop { filter_eq { all_rows ; nation ; china } ; gold } ; "
      "hop { filter_eq { all_rows ; nation ; japan } ; gold } }");
  EXPECT_EQ(c,
            "The gold of the row whose nation is china is greater than the "
            "gold of the row whose nation is japan.");
}

TEST(LogicRealizerTest, ConjunctionClaim) {
  std::string c = Canonical(
      ProgramType::kLogicalForm,
      "and { eq { max { all_rows ; gold } ; 10 } ; eq { min { all_rows ; "
      "gold } ; 2 } }");
  EXPECT_NE(c.find(", and "), std::string::npos);
}

TEST(LogicRealizerTest, RejectsNonClaimRoot) {
  Program p{ProgramType::kLogicalForm,
            "filter_eq { all_rows ; nation ; china }"};
  EXPECT_FALSE(DeterministicGenerator().GenerateCanonical(p).ok());
}

TEST(LogicRealizerTest, FilterVariantsRealize) {
  std::string c = Canonical(
      ProgramType::kLogicalForm,
      "eq { count { filter_less_eq { all_rows ; gold ; 5 } } ; 3 }");
  EXPECT_NE(c.find("at most 5"), std::string::npos);
  std::string c2 = Canonical(
      ProgramType::kLogicalForm,
      "eq { count { filter_greater_eq { all_rows ; gold ; 5 } } ; 3 }");
  EXPECT_NE(c2.find("at least 5"), std::string::npos);
  std::string c3 = Canonical(
      ProgramType::kLogicalForm,
      "eq { count { filter_not_eq { all_rows ; nation ; china } } ; 4 }");
  EXPECT_NE(c3.find("is not china"), std::string::npos);
  std::string c4 = Canonical(
      ProgramType::kLogicalForm,
      "eq { count { filter_all { all_rows ; gold } } ; 5 }");
  EXPECT_NE(c4.find("known gold"), std::string::npos);
}

TEST(LogicRealizerTest, NestedFilterChainsCompose) {
  std::string c = Canonical(
      ProgramType::kLogicalForm,
      "eq { count { filter_greater { filter_eq { all_rows ; continent ; "
      "europe } ; gold ; 5 } } ; 2 }");
  EXPECT_NE(c.find("europe"), std::string::npos);
  EXPECT_NE(c.find("greater than 5"), std::string::npos);
}

TEST(LogicRealizerTest, NotClaim) {
  std::string c = Canonical(ProgramType::kLogicalForm,
                            "not { eq { max { all_rows ; gold } ; 9 } }");
  EXPECT_NE(c.find("not the case"), std::string::npos);
}

TEST(LogicRealizerTest, DiffClaim) {
  std::string c = Canonical(
      ProgramType::kLogicalForm,
      "round_eq { diff { max { all_rows ; gold } ; min { all_rows ; gold } "
      "} ; 8 }");
  EXPECT_NE(c.find("difference between"), std::string::npos);
}

// ------------------------------------------------------------ Arithmetic

TEST(ArithRealizerTest, PercentageChangeIdiom) {
  std::string q = Canonical(
      ProgramType::kArithmetic,
      "subtract(2019 of revenue, 2018 of revenue), "
      "divide(#0, 2018 of revenue)");
  EXPECT_NE(q.find("percentage change"), std::string::npos);
  EXPECT_NE(q.find("revenue"), std::string::npos);
  EXPECT_NE(q.find("from 2018 to 2019"), std::string::npos);
}

TEST(ArithRealizerTest, ChangeIdiom) {
  std::string q = Canonical(ProgramType::kArithmetic,
                            "subtract(2019 of revenue, 2018 of revenue)");
  EXPECT_EQ(q, "What is the difference in the revenue from 2018 to 2019?");
}

TEST(ArithRealizerTest, AverageIdiom) {
  std::string q = Canonical(
      ProgramType::kArithmetic,
      "add(2019 of revenue, 2018 of revenue), divide(#0, const_2)");
  EXPECT_NE(q.find("average"), std::string::npos);
}

TEST(ArithRealizerTest, RatioAndComparison) {
  EXPECT_NE(Canonical(ProgramType::kArithmetic,
                      "divide(2019 of revenue, 2019 of cost of sales)")
                .find("ratio"),
            std::string::npos);
  std::string q = Canonical(ProgramType::kArithmetic,
                            "greater(2019 of revenue, 2018 of revenue)");
  EXPECT_NE(q.find("Was"), std::string::npos);
  EXPECT_NE(q.find("greater than"), std::string::npos);
}

TEST(ArithRealizerTest, TableAggregations) {
  EXPECT_NE(Canonical(ProgramType::kArithmetic, "table_sum(revenue)")
                .find("total revenue"),
            std::string::npos);
  EXPECT_NE(Canonical(ProgramType::kArithmetic, "table_max(revenue)")
                .find("highest value"),
            std::string::npos);
}

TEST(ArithRealizerTest, FallbackNarration) {
  std::string q = Canonical(ProgramType::kArithmetic,
                            "add(1, 2), multiply(#0, 3), exp(#1, 2)");
  EXPECT_NE(q.find("result of"), std::string::npos);
}

// ------------------------------------------------------------ Stochastic

TEST(NlGeneratorTest, StochasticGenerationIsDiverse) {
  NlGenerator gen;  // stochastic defaults
  Program p{ProgramType::kSql,
            "SELECT nation FROM w ORDER BY gold DESC LIMIT 1"};
  Rng rng(99);
  std::set<std::string> outputs;
  for (int i = 0; i < 60; ++i) {
    outputs.insert(gen.Generate(p, &rng).ValueOrDie());
  }
  EXPECT_GE(outputs.size(), 5u);  // multiple surface forms
}

TEST(NlGeneratorTest, StochasticPreservesKeyContent) {
  NlGenerator gen;
  Program p{ProgramType::kLogicalForm,
            "eq { hop { filter_eq { all_rows ; nation ; china } ; gold } ; "
            "8 }"};
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    std::string s = gen.Generate(p, &rng).ValueOrDie();
    EXPECT_NE(s.find("china"), std::string::npos) << s;
    EXPECT_NE(s.find("8"), std::string::npos) << s;
  }
}

TEST(NlGeneratorTest, DeterministicIsStable) {
  NlGenerator gen = DeterministicGenerator();
  Program p{ProgramType::kSql, "SELECT SUM(gold) FROM w"};
  Rng rng(1);
  EXPECT_EQ(gen.Generate(p, &rng).ValueOrDie(),
            gen.Generate(p, &rng).ValueOrDie());
}

// ----------------------------------------------------------- Paraphraser

TEST(ParaphraserTest, ZeroNoiseIsIdentity) {
  ParaphraseConfig config;
  config.synonym_prob = 0.0;
  Paraphraser para(config, &Lexicon::Default());
  Rng rng(5);
  std::string s = "Which nation has the highest gold?";
  EXPECT_EQ(para.Apply(s, &rng), s);
}

TEST(ParaphraserTest, SynonymsPreserveStructure) {
  ParaphraseConfig config;
  config.synonym_prob = 1.0;
  Paraphraser para(config, &Lexicon::Default());
  Rng rng(5);
  std::string s = "Which nation has the highest gold?";
  std::string out = para.Apply(s, &rng);
  EXPECT_EQ(out.back(), '?');
  EXPECT_NE(out.find("nation"), std::string::npos);  // not in any group
  EXPECT_NE(out.find("gold"), std::string::npos);
}

TEST(ParaphraserTest, DropNoiseRemovesAtMostOneWord) {
  ParaphraseConfig config;
  config.synonym_prob = 0.0;
  config.drop_prob = 1.0;
  Paraphraser para(config, &Lexicon::Default());
  Rng rng(5);
  std::string s = "The gold of the row whose nation is china is 8.";
  std::string out = para.Apply(s, &rng);
  size_t words_in = SplitWhitespace(s).size();
  size_t words_out = SplitWhitespace(out).size();
  EXPECT_EQ(words_out, words_in - 1);
}

TEST(ParaphraserTest, CapitalizationPreserved) {
  ParaphraseConfig config;
  config.synonym_prob = 1.0;
  Paraphraser para(config, &Lexicon::Default());
  Rng rng(11);
  // "Most" starts the sentence and belongs to the highest/most group.
  for (int i = 0; i < 20; ++i) {
    std::string out = para.Apply("Most of the rows have a gold of 5.", &rng);
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(out[0]))) << out;
  }
}

}  // namespace
}  // namespace uctr::nlgen
