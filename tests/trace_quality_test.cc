#include <gtest/gtest.h>

#include "arith/executor.h"
#include "arith/parser.h"
#include "arith/trace.h"
#include "baselines/mqa_qg.h"
#include "gen/generator.h"
#include "gen/quality.h"
#include "logic/parser.h"
#include "logic/trace.h"
#include "program/library.h"
#include "tests/test_util.h"

namespace uctr {
namespace {

using testing::MakeNationsTable;

// ----------------------------------------------------------------- Trace

TEST(TraceTest, RecordsPostOrderSteps) {
  Table t = MakeNationsTable();
  auto node = logic::Parse(
                  "eq { hop { filter_eq { all_rows ; nation ; china } ; "
                  "gold } ; 8 }")
                  .ValueOrDie();
  auto trace = logic::ExecuteWithTrace(*node, t).ValueOrDie();
  EXPECT_TRUE(trace.result.scalar().boolean());
  ASSERT_EQ(trace.steps.size(), 3u);  // filter_eq, hop, eq
  EXPECT_EQ(trace.steps[0].op, "filter_eq");
  EXPECT_EQ(trace.steps[0].output, "1 row(s)");
  EXPECT_EQ(trace.steps[1].op, "hop");
  EXPECT_EQ(trace.steps[1].output, "8");
  EXPECT_EQ(trace.steps[2].op, "eq");
  EXPECT_EQ(trace.steps[2].output, "true");
  // Depths decrease toward the root.
  EXPECT_GT(trace.steps[0].depth, trace.steps[1].depth);
  EXPECT_GT(trace.steps[1].depth, trace.steps[2].depth);
}

TEST(TraceTest, EmptyIntermediateViewIsLegitimate) {
  Table t = MakeNationsTable();
  auto node = logic::Parse(
                  "eq { count { filter_eq { all_rows ; nation ; narnia } } "
                  "; 0 }")
                  .ValueOrDie();
  auto trace = logic::ExecuteWithTrace(*node, t).ValueOrDie();
  EXPECT_TRUE(trace.result.scalar().boolean());
  EXPECT_EQ(trace.steps[0].output, "0 row(s)");
  EXPECT_EQ(trace.steps[1].output, "0");
}

TEST(TraceTest, ToStringRendersIndentedSteps) {
  Table t = MakeNationsTable();
  auto node =
      logic::Parse("eq { max { all_rows ; gold } ; 10 }").ValueOrDie();
  auto trace = logic::ExecuteWithTrace(*node, t).ValueOrDie();
  std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find("=>  10"), std::string::npos);
  EXPECT_NE(rendered.find("=>  true"), std::string::npos);
}

TEST(TraceTest, PropagatesRealErrors) {
  Table t = MakeNationsTable();
  auto node =
      logic::Parse("eq { max { all_rows ; no_such_col } ; 1 }").ValueOrDie();
  EXPECT_FALSE(logic::ExecuteWithTrace(*node, t).ok());
}

// ----------------------------------------------------------- Arith trace

TEST(ArithTraceTest, StepChainIsVisible) {
  Table t = testing::MakeFinanceTable();
  auto expr = arith::Parse(
                  "subtract(2019 of revenue, 2018 of revenue), "
                  "divide(#0, 2018 of revenue)")
                  .ValueOrDie();
  auto trace = arith::ExecuteWithTrace(expr, t).ValueOrDie();
  ASSERT_EQ(trace.steps.size(), 2u);
  EXPECT_EQ(trace.steps[0].index, 0u);
  EXPECT_EQ(trace.steps[0].output, "200.5");
  EXPECT_NEAR(trace.result.scalar().number(), 0.2005, 1e-9);
  std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find("#0: subtract"), std::string::npos);
  EXPECT_NE(rendered.find("#1: divide"), std::string::npos);
}

TEST(ArithTraceTest, PropagatesErrors) {
  Table t = testing::MakeFinanceTable();
  auto expr = arith::Parse("divide(1, 0)").ValueOrDie();
  EXPECT_FALSE(arith::ExecuteWithTrace(expr, t).ok());
}

TEST(ArithTraceTest, MatchesPlainExecution) {
  Table t = testing::MakeFinanceTable();
  auto expr = arith::Parse(
                  "add(2019 of revenue, 2018 of revenue), "
                  "divide(#0, const_2), multiply(#1, const_100)")
                  .ValueOrDie();
  auto plain = arith::Execute(expr, t).ValueOrDie();
  auto traced = arith::ExecuteWithTrace(expr, t).ValueOrDie();
  EXPECT_TRUE(plain.scalar().Equals(traced.result.scalar()));
  EXPECT_EQ(traced.steps.size(), 3u);
}

// --------------------------------------------------------------- Quality

Dataset UctrData(size_t n, uint64_t seed) {
  Rng rng(seed);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = n;
  Generator gen(config, &lib, &rng);
  TableWithText input;
  input.table = MakeNationsTable();
  return gen.GenerateDataset({input});
}

TEST(QualityTest, EmptyDatasetIsZeroed) {
  QualityReport report = AnalyzeDataset(Dataset{});
  EXPECT_EQ(report.samples, 0u);
  EXPECT_DOUBLE_EQ(report.reasoning_entropy, 0.0);
}

TEST(QualityTest, UctrDataIsDiverseAndBalanced) {
  QualityReport report = AnalyzeDataset(UctrData(50, 3));
  EXPECT_GT(report.samples, 25u);
  EXPECT_DOUBLE_EQ(report.distinct_sentence_ratio, 1.0);  // deduped
  EXPECT_GT(report.mean_sentence_tokens, 5.0);
  EXPECT_GT(report.reasoning_entropy, 1.5);  // many reasoning types
  EXPECT_GT(report.label_balance, 0.4);
  std::string rendered = report.ToString();
  EXPECT_NE(rendered.find("reasoning entropy"), std::string::npos);
}

TEST(QualityTest, MqaQgDataHasZeroReasoningEntropy) {
  Rng rng(5);
  baselines::MqaQgConfig config;
  config.task = TaskType::kFactVerification;
  config.samples_per_table = 20;
  baselines::MqaQg gen(config, &rng);
  TableWithText input;
  input.table = MakeNationsTable();
  Dataset data = gen.GenerateDataset({input});
  QualityReport report = AnalyzeDataset(data);
  // Every MQA-QG sample is the single "simple" reasoning type — exactly
  // the deficiency the paper highlights in Figure 2.
  EXPECT_DOUBLE_EQ(report.reasoning_entropy, 0.0);
  EXPECT_EQ(report.reasoning_counts.size(), 1u);

  // UCTR's entropy strictly dominates.
  QualityReport uctr = AnalyzeDataset(UctrData(20, 5));
  EXPECT_GT(uctr.reasoning_entropy, report.reasoning_entropy);
}

}  // namespace
}  // namespace uctr
