#include <gtest/gtest.h>

#include "hybrid/table_to_text.h"
#include "hybrid/text_to_table.h"
#include "tests/test_util.h"

namespace uctr::hybrid {
namespace {

using uctr::testing::MakeFinanceTable;
using uctr::testing::MakeNationsTable;

// ----------------------------------------------------------- TableToText

TEST(TableToTextTest, DescribesRowWithAllCells) {
  Table t = MakeNationsTable();
  TableToText op;
  std::string s = op.DescribeRow(t, 1, nullptr).ValueOrDie();
  EXPECT_NE(s.find("china"), std::string::npos);
  EXPECT_NE(s.find("gold"), std::string::npos);
  EXPECT_NE(s.find("8"), std::string::npos);
  EXPECT_NE(s.find("24"), std::string::npos);
  EXPECT_EQ(s.back(), '.');
}

TEST(TableToTextTest, ApplySplitsTable) {
  Table t = MakeNationsTable();
  TableToText op;
  auto r = op.Apply(t, 0, nullptr).ValueOrDie();
  EXPECT_EQ(r.sub_table.num_rows(), 4u);
  EXPECT_EQ(r.source_row, 0u);
  EXPECT_NE(r.sentence.find("united states"), std::string::npos);
  // The removed row is no longer in the sub-table.
  EXPECT_FALSE(r.sub_table.RowIndexByName("united states").ok());
}

TEST(TableToTextTest, SentenceCoversRowFilter) {
  Table t = MakeNationsTable();
  EXPECT_TRUE(SentenceCoversRow(
      t, 1, "For the nation china, gold 8, silver 6, bronze 10, total 24."));
  EXPECT_FALSE(SentenceCoversRow(t, 1, "China won 8 gold medals."));
}

TEST(TableToTextTest, ApplyToEvidencePrefersValidRows) {
  Table t = MakeNationsTable();
  TableToText op;
  Rng rng(3);
  auto r = op.ApplyToEvidence(t, {2, 4}, &rng).ValueOrDie();
  EXPECT_TRUE(r.source_row == 2 || r.source_row == 4);
}

TEST(TableToTextTest, ErrorsOnDegenerateInputs) {
  Table t = MakeNationsTable();
  TableToText op;
  EXPECT_FALSE(op.Apply(t, 99, nullptr).ok());
  EXPECT_FALSE(op.ApplyToEvidence(t, {}, nullptr).ok());
  auto tiny = Table::FromCsv("a,b\nx,1\n").ValueOrDie();
  EXPECT_FALSE(op.ApplyToEvidence(tiny, {0}, nullptr).ok());
}

TEST(TableToTextTest, FinanceRowKeepsMoneyFormatting) {
  Table t = MakeFinanceTable();
  TableToText op;
  std::string s = op.DescribeRow(t, 0, nullptr).ValueOrDie();
  EXPECT_NE(s.find("$1,200.5"), std::string::npos);
}

// ----------------------------------------------------------- TextToTable

TEST(TextToTableTest, FilterFindsHeaderMentions) {
  Table t = MakeFinanceTable();
  TextToTable op;
  std::vector<std::string> sentences = {
      "The company performed well.",
      "In 2019, results improved again.",
      "Nothing to see here.",
  };
  auto relevant = op.FilterRelevantSentences(t, sentences);
  ASSERT_EQ(relevant.size(), 1u);
  EXPECT_EQ(relevant[0], 1u);
}

TEST(TextToTableTest, ExtractsRecordFromDescribeEntShape) {
  Table t = MakeNationsTable();
  TextToTable op;
  std::vector<std::string> sentences = {
      "For the nation italy, the gold was 3, the silver was 4 and the "
      "total was 12.",
  };
  auto record = op.ExtractRecord(t, sentences).ValueOrDie();
  EXPECT_EQ(record.row_name, "italy");
  EXPECT_EQ(record.fields.at("gold"), "3");
  EXPECT_EQ(record.fields.at("silver"), "4");
  EXPECT_EQ(record.fields.at("total"), "12");
}

TEST(TextToTableTest, ExtractsFromSubjectVerbShape) {
  Table t = MakeFinanceTable();
  TextToTable op;
  std::vector<std::string> sentences = {
      "In the prior period, operating expenses was 120 in 2019 and 100 in "
      "2018.",
  };
  // Headers "2019" and "2018" appear; values follow "in <year>"? No —
  // this shape puts the value BEFORE the header, so extraction finds the
  // value after the header mention instead. Use the canonical generated
  // shape to verify end-to-end behaviour:
  sentences = {"operating expenses recorded 2019 of 120 and 2018 of 100."};
  auto record = op.ExtractRecord(t, sentences).ValueOrDie();
  EXPECT_EQ(record.row_name, "operating expenses");
  EXPECT_EQ(record.fields.at("2019"), "120");
  EXPECT_EQ(record.fields.at("2018"), "100");
}

TEST(TextToTableTest, NumericColumnRejectsTextValues) {
  Table t = MakeNationsTable();
  TextToTable op;
  std::vector<std::string> sentences = {
      "For the nation spain, the gold was unknown and the total was 9.",
  };
  auto record = op.ExtractRecord(t, sentences).ValueOrDie();
  EXPECT_EQ(record.fields.count("gold"), 0u);
  EXPECT_EQ(record.fields.at("total"), "9");
}

TEST(TextToTableTest, ExpandAppendsNewRow) {
  Table t = MakeNationsTable();
  TextToTable op;
  ExtractedRecord record;
  record.row_name = "italy";
  record.fields = {{"gold", "3"}, {"total", "12"}};
  Table expanded = op.Expand(t, record).ValueOrDie();
  ASSERT_EQ(expanded.num_rows(), 6u);
  size_t r = expanded.RowIndexByName("italy").ValueOrDie();
  EXPECT_DOUBLE_EQ(expanded.cell(r, 1).number(), 3.0);
  EXPECT_TRUE(expanded.cell(r, 2).is_null());  // silver not extracted
  EXPECT_DOUBLE_EQ(expanded.cell(r, 4).number(), 12.0);
}

TEST(TextToTableTest, ExpandMergesIntoExistingRow) {
  auto t = Table::FromCsv(
      "item,2019,2018\nrevenue,100,\ncost,80,70\n").ValueOrDie();
  TextToTable op;
  ExtractedRecord record;
  record.row_name = "revenue";
  record.fields = {{"2018", "90"}, {"2019", "999"}};
  Table expanded = op.Expand(t, record).ValueOrDie();
  EXPECT_EQ(expanded.num_rows(), 2u);
  size_t r = expanded.RowIndexByName("revenue").ValueOrDie();
  // Null 2018 filled; existing 2019 kept.
  EXPECT_DOUBLE_EQ(expanded.cell(r, 2).number(), 90.0);
  EXPECT_DOUBLE_EQ(expanded.cell(r, 1).number(), 100.0);
}

TEST(TextToTableTest, ExpandRejectsUselessRecords) {
  Table t = MakeNationsTable();
  TextToTable op;
  ExtractedRecord empty;
  empty.row_name = "x";
  EXPECT_FALSE(op.Expand(t, empty).ok());

  ExtractedRecord unknown_col;
  unknown_col.row_name = "x";
  unknown_col.fields = {{"platinum", "1"}};
  EXPECT_FALSE(op.Expand(t, unknown_col).ok());

  ExtractedRecord no_new_info;
  no_new_info.row_name = "china";
  no_new_info.fields = {{"gold", "9"}};  // cell already populated
  EXPECT_FALSE(op.Expand(t, no_new_info).ok());
}

TEST(TextToTableTest, SharedRowNameIntegratesNewColumns) {
  // Paper Section III-B: integration works through a shared row name OR
  // shared column names. A record about an existing row may carry columns
  // the table lacks; they become new schema columns.
  auto t = Table::FromCsv(
      "item,2019\nrevenue,100\ncost,80\n").ValueOrDie();
  TextToTable op;
  ExtractedRecord record;
  record.row_name = "revenue";
  record.fields = {{"2018", "90"}};  // column not in the table
  Table expanded = op.Expand(t, record).ValueOrDie();
  ASSERT_EQ(expanded.num_columns(), 3u);
  size_t c = expanded.ColumnIndex("2018").ValueOrDie();
  size_t r = expanded.RowIndexByName("revenue").ValueOrDie();
  EXPECT_DOUBLE_EQ(expanded.cell(r, c).number(), 90.0);
  // Other rows get nulls in the new column.
  size_t cost = expanded.RowIndexByName("cost").ValueOrDie();
  EXPECT_TRUE(expanded.cell(cost, c).is_null());

  // Without a shared row name, unknown columns cannot integrate.
  ExtractedRecord orphan;
  orphan.row_name = "dividends";
  orphan.fields = {{"2017", "5"}};
  EXPECT_FALSE(op.Expand(t, orphan).ok());
}

TEST(TableTest2, AppendColumnBasics) {
  auto t = Table::FromCsv("a,b\nx,1\ny,2\n").ValueOrDie();
  ASSERT_TRUE(t.AppendColumn("c").ok());
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_TRUE(t.cell(0, 2).is_null());
  EXPECT_FALSE(t.AppendColumn("B").ok());  // duplicate, case-insensitive
  EXPECT_FALSE(t.AppendColumn("  ").ok());
  ASSERT_TRUE(t.AppendColumn("d", Value::Number(7)).ok());
  EXPECT_DOUBLE_EQ(t.cell(1, 3).number(), 7.0);
  EXPECT_EQ(t.schema().column(3).type, ColumnType::kNumber);
}

TEST(TextToTableTest, RoundTripWithTableToText) {
  // Table-To-Text then Text-To-Table recovers the removed row.
  Table t = MakeNationsTable();
  TableToText describe;
  auto split = describe.Apply(t, 2, nullptr).ValueOrDie();  // japan
  TextToTable op;
  Table expanded = op.Apply(split.sub_table, {split.sentence}).ValueOrDie();
  ASSERT_EQ(expanded.num_rows(), 5u);
  size_t r = expanded.RowIndexByName("japan").ValueOrDie();
  EXPECT_DOUBLE_EQ(expanded.cell(r, 1).number(), 5.0);   // gold
  EXPECT_DOUBLE_EQ(expanded.cell(r, 4).number(), 18.0);  // total
}

TEST(TextToTableTest, ApplyFailsWhenNothingExtractable) {
  Table t = MakeNationsTable();
  TextToTable op;
  EXPECT_FALSE(op.Apply(t, {"Completely unrelated text."}).ok());
}

}  // namespace
}  // namespace uctr::hybrid
