// Tests of the typed columnar table store: per-column encoding decisions,
// exact round-trip fidelity, the versioned binary codec's corruption
// handling, content fingerprint stability, the content-addressed registry
// (dedup, LRU byte-budget eviction, borrow lifetimes, counters), and the
// put_table / table_ref wire protocol end to end through serve::Server.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/server.h"
#include "store/codec.h"
#include "store/columnar.h"
#include "store/registry.h"
#include "tests/test_util.h"

namespace uctr::store {
namespace {

using serve::EngineConfig;
using serve::InferenceEngine;
using serve::Server;
using serve::ServerConfig;
using testing::MakeFinanceTable;
using testing::MakeNationsTable;
using testing::RandomTable;

// Cell-exact equality: type, numeric value, surface text, schema, and the
// rendered CSV all have to match for serving to be byte-identical.
void ExpectTablesIdentical(const Table& a, const Table& b) {
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.schema().column(c).name, b.schema().column(c).name);
    EXPECT_EQ(a.schema().column(c).type, b.schema().column(c).type);
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      const Value& va = a.cell(r, c);
      const Value& vb = b.cell(r, c);
      ASSERT_EQ(va.type(), vb.type()) << "cell (" << r << "," << c << ")";
      EXPECT_EQ(va.text(), vb.text()) << "cell (" << r << "," << c << ")";
      if (va.is_number()) {
        EXPECT_EQ(va.number(), vb.number())
            << "cell (" << r << "," << c << ")";
      }
      if (va.is_bool()) {
        EXPECT_EQ(va.boolean(), vb.boolean())
            << "cell (" << r << "," << c << ")";
      }
    }
  }
  EXPECT_EQ(a.ToCsv(), b.ToCsv());
}

// ---------------------------------------------------------- ColumnarTable

TEST(ColumnarTest, PicksInt64ForIntegralNumericColumns) {
  ColumnarTable ct = ColumnarTable::FromTable(MakeNationsTable());
  ASSERT_EQ(ct.num_columns(), 5u);
  EXPECT_EQ(ct.column(0).encoding, ColumnEncoding::kString);  // nation
  for (size_t c = 1; c < 5; ++c) {
    EXPECT_EQ(ct.column(c).encoding, ColumnEncoding::kInt64)
        << ct.column(c).name;
  }
  // CSV-parsed numbers keep their surface text ("10") so ToCsv is exact.
  ASSERT_FALSE(ct.column(1).text_ids.empty());
  EXPECT_EQ(ct.pool().at(ct.column(1).text_ids[0]), "10");
  EXPECT_EQ(ct.column(1).ints[0], int64_t{10});
}

TEST(ColumnarTest, KeepsNumericSurfaceText) {
  // "$1,200.5" parses to 1200.5 but must render back as "$1,200.5".
  ColumnarTable ct = ColumnarTable::FromTable(MakeFinanceTable());
  const Column& y2019 = ct.column(1);
  EXPECT_EQ(y2019.encoding, ColumnEncoding::kDouble);  // 400.5 not integral
  ASSERT_FALSE(y2019.text_ids.empty());
  EXPECT_EQ(ct.pool().at(y2019.text_ids[0]), "$1,200.5");
  // 2018 holds 1000.0 / 700 / 300 / 2000 — integral, but with text.
  const Column& y2018 = ct.column(2);
  EXPECT_EQ(y2018.encoding, ColumnEncoding::kInt64);
  ASSERT_FALSE(y2018.text_ids.empty());
  EXPECT_EQ(ct.pool().at(y2018.text_ids[0]), "$1,000.0");
}

TEST(ColumnarTest, PicksBoolAndMixedAndHandlesNulls) {
  Table t = Table::FromCsv(
                "flag,grade,note\n"
                "true,5,-\n"
                "no,ok,n/a\n"
                "yes,-,-\n",
                "odd")
                .ValueOrDie();
  ColumnarTable ct = ColumnarTable::FromTable(t);
  EXPECT_EQ(ct.column(0).encoding, ColumnEncoding::kBool);
  EXPECT_EQ(ct.column(1).encoding, ColumnEncoding::kMixed);  // 5 vs "ok"
  // All-null column: nothing contradicts string.
  EXPECT_EQ(ct.column(2).encoding, ColumnEncoding::kString);
  EXPECT_TRUE(ct.column(1).is_null(2));
  EXPECT_TRUE(ct.column(2).is_null(0));
  EXPECT_EQ(ct.CellValue(0, 0).boolean(), true);
  EXPECT_EQ(ct.CellValue(1, 0).boolean(), false);
  EXPECT_TRUE(ct.CellValue(0, 2).is_null());
}

TEST(ColumnarTest, RoundTripIsCellExact) {
  for (const Table& t : {MakeNationsTable(), MakeFinanceTable()}) {
    ColumnarTable ct = ColumnarTable::FromTable(t);
    Result<Table> back = ct.ToTable();
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ExpectTablesIdentical(t, *back);
  }
}

TEST(ColumnarTest, RoundTripsRandomTables) {
  Rng rng(0xC01u);
  for (int i = 0; i < 20; ++i) {
    Table t = RandomTable(&rng);
    Result<Table> back = ColumnarTable::FromTable(t).ToTable();
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ExpectTablesIdentical(t, *back);
  }
}

TEST(ColumnarTest, RoundTripsEmptyAndHeaderOnlyTables) {
  Table t = Table::FromCsv("a,b\n", "empty").ValueOrDie();
  Result<Table> back = ColumnarTable::FromTable(t).ToTable();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_EQ(back->num_columns(), 2u);
  ExpectTablesIdentical(t, *back);
}

TEST(ColumnarTest, ApproxBytesGrowsWithData) {
  Rng rng(7u);
  size_t small = ColumnarTable::FromTable(RandomTable(&rng, 4, 2))
                     .ApproxBytes();
  size_t large = ColumnarTable::FromTable(RandomTable(&rng, 400, 4))
                     .ApproxBytes();
  EXPECT_GT(small, 0u);
  EXPECT_GT(large, small * 10);
}

// ------------------------------------------------------------------ Codec

TEST(CodecTest, EncodeDecodeRoundTrips) {
  for (const Table& t : {MakeNationsTable(), MakeFinanceTable()}) {
    ColumnarTable ct = ColumnarTable::FromTable(t);
    std::string bytes = Codec::Encode(ct);
    Result<ColumnarTable> decoded = Codec::Decode(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    Result<Table> back = decoded->ToTable();
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ExpectTablesIdentical(t, *back);
  }
}

TEST(CodecTest, EncodingIsCanonical) {
  // Re-encoding a round-tripped table reproduces the exact bytes — the
  // property that makes content fingerprints stable across put/get/put.
  ColumnarTable ct = ColumnarTable::FromTable(MakeFinanceTable());
  std::string bytes = Codec::Encode(ct);
  Table back = Codec::Decode(bytes).ValueOrDie().ToTable().ValueOrDie();
  std::string again = Codec::Encode(ColumnarTable::FromTable(back));
  EXPECT_EQ(bytes, again);
  EXPECT_EQ(Codec::Fingerprint(bytes), Codec::Fingerprint(again));
}

TEST(CodecTest, FingerprintIsContentAddressed) {
  std::string a = Codec::Encode(ColumnarTable::FromTable(MakeNationsTable()));
  std::string b = Codec::Encode(ColumnarTable::FromTable(MakeFinanceTable()));
  EXPECT_EQ(Codec::Fingerprint(a).size(), 16u);
  EXPECT_NE(Codec::Fingerprint(a), Codec::Fingerprint(b));
  EXPECT_EQ(Codec::Fingerprint(a), Codec::Fingerprint(a));
}

TEST(CodecTest, EveryTruncationFailsCleanly) {
  std::string bytes = Codec::Encode(ColumnarTable::FromTable(
      MakeFinanceTable()));
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<ColumnarTable> decoded =
        Codec::Decode(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "truncation to " << len << " bytes";
  }
}

TEST(CodecTest, EverySingleBitFlipFailsCleanly) {
  // The header fields are individually validated and the payload is
  // checksummed with FNV-1a (each step is injective), so any single-bit
  // corruption must yield an error Status, never a bogus table.
  std::string bytes = Codec::Encode(ColumnarTable::FromTable(
      MakeNationsTable()));
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << (i % 8)));
    Result<ColumnarTable> decoded = Codec::Decode(corrupt);
    EXPECT_FALSE(decoded.ok()) << "bit flip at byte " << i;
  }
}

TEST(CodecTest, TrailingGarbageIsRejected) {
  std::string bytes = Codec::Encode(ColumnarTable::FromTable(
      MakeNationsTable()));
  EXPECT_FALSE(Codec::Decode(bytes + "x").ok());
  EXPECT_FALSE(Codec::Decode(bytes + std::string(64, '\0')).ok());
}

TEST(CodecTest, VersionSkewIsReportedAsSuch) {
  std::string bytes = Codec::Encode(ColumnarTable::FromTable(
      MakeNationsTable()));
  bytes[4] = 2;  // u32 version little-endian low byte
  Result<ColumnarTable> decoded = Codec::Decode(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("version skew"),
            std::string::npos)
      << decoded.status().ToString();
}

TEST(CodecTest, GarbageInputsNeverCrash) {
  Rng rng(0xBADu);
  for (int i = 0; i < 200; ++i) {
    size_t len = static_cast<size_t>(rng.UniformInt(0, 256));
    std::string garbage;
    garbage.reserve(len);
    for (size_t j = 0; j < len; ++j) {
      garbage.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    Result<ColumnarTable> decoded = Codec::Decode(garbage);
    if (decoded.ok()) {
      // Astronomically unlikely, but if it parses it must be usable.
      EXPECT_TRUE(decoded->ToTable().ok());
    }
  }
}

// --------------------------------------------------------- TableRegistry

TEST(RegistryTest, PutThenGetReturnsWarmTable) {
  obs::MetricsRegistry metrics;
  TableRegistry registry(RegistryConfig{}, &metrics);
  Result<PutResult> put = registry.Put(MakeNationsTable());
  ASSERT_TRUE(put.ok());
  EXPECT_TRUE(put->inserted);
  EXPECT_EQ(put->fingerprint.size(), 16u);
  EXPECT_GT(put->bytes, 0u);

  std::shared_ptr<const Table> table = registry.Get(put->fingerprint);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->name(), "medals");
  EXPECT_EQ(table->num_rows(), 5u);
  EXPECT_EQ(registry.hits(), 1u);
  EXPECT_EQ(registry.table_count(), 1u);
  EXPECT_GE(registry.bytes(), put->bytes);
}

TEST(RegistryTest, IdenticalContentDedups) {
  obs::MetricsRegistry metrics;
  TableRegistry registry(RegistryConfig{}, &metrics);
  Result<PutResult> first = registry.Put(MakeNationsTable());
  Result<PutResult> second = registry.Put(MakeNationsTable());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->fingerprint, second->fingerprint);
  EXPECT_TRUE(first->inserted);
  EXPECT_FALSE(second->inserted);
  EXPECT_EQ(registry.table_count(), 1u);
  EXPECT_EQ(registry.puts(), 2u);
}

TEST(RegistryTest, MissesAreCountedAndReturnNull) {
  obs::MetricsRegistry metrics;
  TableRegistry registry(RegistryConfig{}, &metrics);
  EXPECT_EQ(registry.Get("0123456789abcdef"), nullptr);
  EXPECT_EQ(registry.Get("not-even-hex"), nullptr);
  EXPECT_EQ(registry.misses(), 2u);
}

TEST(RegistryTest, ByteBudgetEvictsColdEntries) {
  Rng rng(0x11u);
  Table first = RandomTable(&rng, 40, 3);
  size_t one_table =
      ColumnarTable::FromTable(first).ApproxBytes();
  RegistryConfig config;
  config.num_shards = 1;
  config.capacity_bytes = one_table * 3;
  obs::MetricsRegistry metrics;
  TableRegistry registry(config, &metrics);

  std::string first_fp = registry.Put(std::move(first))->fingerprint;
  std::vector<std::string> fps;
  for (int i = 0; i < 8; ++i) {
    fps.push_back(registry.Put(RandomTable(&rng, 40, 3))->fingerprint);
  }
  EXPECT_GT(registry.evictions(), 0u);
  EXPECT_LE(registry.bytes(), config.capacity_bytes + one_table);
  EXPECT_EQ(registry.Get(first_fp), nullptr) << "cold entry must be gone";
  EXPECT_NE(registry.Get(fps.back()), nullptr) << "hot entry must survive";
}

TEST(RegistryTest, OversizedTableIsAdmittedAlone) {
  RegistryConfig config;
  config.num_shards = 1;
  config.capacity_bytes = 1;  // smaller than any table
  TableRegistry registry(config);
  Result<PutResult> put = registry.Put(MakeNationsTable());
  ASSERT_TRUE(put.ok());
  EXPECT_TRUE(put->inserted);
  EXPECT_NE(registry.Get(put->fingerprint), nullptr)
      << "the newest entry is never evicted by its own insertion";
}

TEST(RegistryTest, BorrowedTableSurvivesEviction) {
  Rng rng(0x22u);
  RegistryConfig config;
  config.num_shards = 1;
  config.capacity_bytes =
      ColumnarTable::FromTable(MakeNationsTable()).ApproxBytes() + 1;
  TableRegistry registry(config);
  std::string fp = registry.Put(MakeNationsTable())->fingerprint;
  std::shared_ptr<const Table> borrowed = registry.Get(fp);
  ASSERT_NE(borrowed, nullptr);

  for (int i = 0; i < 4; ++i) registry.Put(RandomTable(&rng, 60, 3));
  EXPECT_EQ(registry.Get(fp), nullptr) << "entry evicted from the registry";
  // The in-flight borrow still reads the full table safely.
  EXPECT_EQ(borrowed->num_rows(), 5u);
  EXPECT_EQ(borrowed->cell(0, 0).text(), "united states");
}

TEST(RegistryTest, ConcurrentPutGetIsCoherent) {
  obs::MetricsRegistry metrics;
  TableRegistry registry(RegistryConfig{}, &metrics);
  std::string nations_fp =
      Codec::Fingerprint(Codec::Encode(ColumnarTable::FromTable(
          MakeNationsTable())));
  std::vector<std::thread> threads;
  std::atomic<int> null_hits{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, &null_hits, nations_fp, t] {
      for (int i = 0; i < 25; ++i) {
        if ((i + t) % 2 == 0) {
          ASSERT_TRUE(registry.Put(MakeNationsTable()).ok());
        } else if (auto table = registry.Get(nations_fp)) {
          ASSERT_EQ(table->num_rows(), 5u);
        } else {
          null_hits.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.table_count(), 1u);
  EXPECT_EQ(registry.puts(), 50u);
  EXPECT_NE(registry.Get(nations_fp), nullptr);
}

// ------------------------------------------------- Serving wire protocol

const char* kMedalsCsv =
    "nation,gold,silver,bronze,total\n"
    "united states,10,12,8,30\n"
    "china,8,6,10,24\n"
    "japan,5,9,4,18\n";

const char* kFinanceCsv =
    "item,2019,2018\n"
    "revenue,\"$2,350.4\",\"$2,014.9\"\n"
    "net income,\"$310.5\",\"$225.1\"\n";

std::string JsonEscapeNewlines(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PutTableRequest(uint64_t id, const std::string& csv) {
  return "{\"id\":" + std::to_string(id) +
         ",\"op\":\"put_table\",\"table\":\"" + JsonEscapeNewlines(csv) +
         "\"}";
}

std::string RefRequest(uint64_t id, const std::string& op,
                       const std::string& ref, const std::string& query) {
  return "{\"id\":" + std::to_string(id) + ",\"op\":\"" + op +
         "\",\"table_ref\":\"" + ref + "\",\"query\":\"" + query + "\"}";
}

std::string InlineRequest(uint64_t id, const std::string& op,
                          const std::string& csv, const std::string& query) {
  return "{\"id\":" + std::to_string(id) + ",\"op\":\"" + op +
         "\",\"table\":\"" + JsonEscapeNewlines(csv) + "\",\"query\":\"" +
         query + "\"}";
}

std::string ExtractFingerprint(const std::string& response) {
  size_t pos = response.find("\"fingerprint\":\"");
  if (pos == std::string::npos) return "";
  pos += 15;
  return response.substr(pos, 16);
}

const InferenceEngine& SharedEngine() {
  static const InferenceEngine engine = [] {
    EngineConfig config;
    return InferenceEngine::Create(config, "", "").ValueOrDie();
  }();
  return engine;
}

TEST(ServerStoreTest, PutTableReturnsContentFingerprint) {
  ServerConfig config;
  config.scheduler.num_workers = 1;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  Server server(&SharedEngine(), config);
  std::string response = server.HandleLine(PutTableRequest(1, kMedalsCsv));
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
      << response;
  std::string fp = ExtractFingerprint(response);
  ASSERT_EQ(fp.size(), 16u) << response;
  // Content-addressed: the same table registers to the same fingerprint.
  EXPECT_EQ(ExtractFingerprint(
                server.HandleLine(PutTableRequest(2, kMedalsCsv))),
            fp);
  EXPECT_EQ(server.registry()->table_count(), 1u);
}

TEST(ServerStoreTest, TableRefServesByteIdenticalAnswers) {
  ServerConfig config;
  config.scheduler.num_workers = 2;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  Server server(&SharedEngine(), config);

  std::string medals_fp =
      ExtractFingerprint(server.HandleLine(PutTableRequest(1, kMedalsCsv)));
  std::string finance_fp =
      ExtractFingerprint(server.HandleLine(PutTableRequest(2, kFinanceCsv)));
  ASSERT_EQ(medals_fp.size(), 16u);
  ASSERT_EQ(finance_fp.size(), 16u);

  const std::string claim =
      "The gold of the row whose nation is japan is 5.";
  const std::string question = "Which item has the highest 2019?";

  // Same id on both paths: the responses must be byte-identical.
  std::string ref_verify =
      server.HandleLine(RefRequest(7, "verify", medals_fp, claim));
  std::string inline_verify =
      server.HandleLine(InlineRequest(7, "verify", kMedalsCsv, claim));
  EXPECT_EQ(ref_verify, inline_verify);
  EXPECT_NE(ref_verify.find("\"label\":"), std::string::npos) << ref_verify;
  EXPECT_EQ(ref_verify.find("degraded"), std::string::npos)
      << "a registry hit is the healthy path, not a fallback";

  std::string ref_answer =
      server.HandleLine(RefRequest(8, "answer", finance_fp, question));
  std::string inline_answer =
      server.HandleLine(InlineRequest(8, "answer", kFinanceCsv, question));
  EXPECT_EQ(ref_answer, inline_answer);

  EXPECT_EQ(metrics.counter("store_hits_total")->value(), 2u);
}

TEST(ServerStoreTest, RegistryMissFallsBackToInlineDegraded) {
  ServerConfig config;
  config.scheduler.num_workers = 1;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  Server server(&SharedEngine(), config);
  const std::string claim =
      "The gold of the row whose nation is japan is 5.";

  // Unregistered ref + inline table: inline path answers, marked degraded.
  std::string fallback = server.HandleLine(
      "{\"id\":3,\"op\":\"verify\",\"table_ref\":\"ffffffffffffffff\","
      "\"table\":\"" +
      JsonEscapeNewlines(kMedalsCsv) + "\",\"query\":\"" + claim + "\"}");
  EXPECT_NE(fallback.find("\"status\":\"ok\""), std::string::npos)
      << fallback;
  EXPECT_NE(fallback.find("\"degraded\":true"), std::string::npos)
      << fallback;
  std::string healthy =
      server.HandleLine(InlineRequest(3, "verify", kMedalsCsv, claim));
  // Identical answer bytes modulo the degraded marker.
  EXPECT_EQ(fallback.find("\"label\":\"Supported\"") != std::string::npos,
            healthy.find("\"label\":\"Supported\"") != std::string::npos);
  EXPECT_EQ(metrics.counter("degraded_store_fallback_total")->value(), 1u);

  // Unregistered ref without an inline table: a NotFound-style error.
  std::string miss = server.HandleLine(
      RefRequest(4, "verify", "ffffffffffffffff", claim));
  EXPECT_NE(miss.find("\"status\":\"error\""), std::string::npos) << miss;
  EXPECT_NE(miss.find("not registered"), std::string::npos) << miss;
}

TEST(ServerStoreTest, StatsExposeRegistryCounters) {
  ServerConfig config;
  config.scheduler.num_workers = 1;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  Server server(&SharedEngine(), config);
  std::string fp =
      ExtractFingerprint(server.HandleLine(PutTableRequest(1, kMedalsCsv)));
  server.HandleLine(RefRequest(
      2, "verify", fp, "The gold of the row whose nation is japan is 5."));
  server.HandleLine(RefRequest(3, "verify", "0000000000000000", "x"));

  std::string stats = server.HandleLine("{\"id\":9,\"op\":\"stats\"}");
  EXPECT_NE(stats.find("\"store_puts_total\":1"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"store_hits_total\":1"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"store_misses_total\":1"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"store_evictions_total\":0"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"store_tables\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"store_bytes\":"), std::string::npos) << stats;
}

TEST(ServerStoreTest, StoreGetFaultDegradesToInlineFallback) {
  ServerConfig config;
  config.scheduler.num_workers = 1;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  Server server(&SharedEngine(), config);
  const std::string claim =
      "The gold of the row whose nation is japan is 5.";
  std::string fp =
      ExtractFingerprint(server.HandleLine(PutTableRequest(1, kMedalsCsv)));

  ASSERT_TRUE(
      fault::FaultInjector::Global().ArmSpec("serve.store_get=error").ok());
  std::string response = server.HandleLine(
      "{\"id\":2,\"op\":\"verify\",\"table_ref\":\"" + fp +
      "\",\"table\":\"" + JsonEscapeNewlines(kMedalsCsv) +
      "\",\"query\":\"" + claim + "\"}");
  fault::FaultInjector::Global().Disarm();
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"degraded\":true"), std::string::npos)
      << response;
}

TEST(ServerStoreTest, StorePutFaultFailsTheRegistration) {
  ServerConfig config;
  config.scheduler.num_workers = 1;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  Server server(&SharedEngine(), config);
  ASSERT_TRUE(
      fault::FaultInjector::Global().ArmSpec("serve.store_put=error").ok());
  std::string response = server.HandleLine(PutTableRequest(1, kMedalsCsv));
  fault::FaultInjector::Global().Disarm();
  EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("store:"), std::string::npos) << response;
  EXPECT_EQ(server.registry()->table_count(), 0u);
}

TEST(ServerStoreTest, PutTableRejectsMissingOrBadTables) {
  ServerConfig config;
  config.scheduler.num_workers = 1;
  Server server(&SharedEngine(), config);
  EXPECT_NE(server.HandleLine("{\"id\":1,\"op\":\"put_table\"}")
                .find("\"status\":\"error\""),
            std::string::npos);
  EXPECT_NE(server
                .HandleLine("{\"id\":2,\"op\":\"put_table\","
                            "\"table\":\"a,b\\n1\\n\"}")
                .find("\"status\":\"error\""),
            std::string::npos)
      << "ragged CSV must fail registration";
}

// ------------------------------------------------ Engine borrow semantics

TEST(EngineBorrowTest, BorrowedAndMovedTablesAgree) {
  const InferenceEngine& engine = SharedEngine();
  const std::string claim =
      "The gold of the row whose nation is japan is 5.";
  Table medals = MakeNationsTable();
  medals.WarmIndex();
  std::string borrowed = engine.Verify(medals, claim, {});  // lvalue borrow
  Table moved = MakeNationsTable();
  moved.WarmIndex();
  std::string via_move = engine.Verify(std::move(moved), claim, {});
  EXPECT_EQ(borrowed, via_move);

  Table finance = MakeFinanceTable();
  const std::string question = "Which item has the highest 2019?";
  EXPECT_EQ(engine.Answer(finance, question, {}),
            engine.Answer(MakeFinanceTable(), question, {}));
}

TEST(EngineBorrowTest, ConcurrentBorrowsOfOneTableAreConsistent) {
  const InferenceEngine& engine = SharedEngine();
  Table medals = MakeNationsTable();
  medals.WarmIndex();
  const std::string claim =
      "The gold of the row whose nation is japan is 5.";
  std::string expected = engine.Verify(medals, claim, {});
  std::vector<std::thread> threads;
  std::vector<std::string> results(8);
  for (size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back([&engine, &medals, &claim, &results, t] {
      results[t] = engine.Verify(medals, claim, {});
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& r : results) EXPECT_EQ(r, expected);
}

}  // namespace
}  // namespace uctr::store
