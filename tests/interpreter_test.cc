// Focused unit tests of NlInterpreter slot binding: type constraints,
// distinct-column assignment, value coverage thresholds, ordinals, and
// ranking behaviour.

#include <gtest/gtest.h>

#include "model/interpreter.h"
#include "program/library.h"
#include "program/template.h"
#include "tests/test_util.h"

namespace uctr::model {
namespace {

using uctr::testing::MakeFinanceTable;
using uctr::testing::MakeNationsTable;

NlInterpreter SingleTemplate(const char* pattern, const char* reasoning = "",
                             ProgramType type = ProgramType::kLogicalForm) {
  auto tmpl = ProgramTemplate::Make(type, pattern, reasoning).ValueOrDie();
  return NlInterpreter({tmpl});
}

TEST(InterpreterBindingTest, TypeConstraintExcludesTextColumns) {
  Table t = MakeNationsTable();
  NlInterpreter interp = SingleTemplate(
      "eq { max { all_rows ; {c1:num} } ; {derive} }");
  // "nation" is mentioned but is a text column; "gold" must win.
  auto r = interp.Interpret("The highest gold in any nation is 10.", t,
                            TaskType::kFactVerification);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->bindings.at("c1"), "gold");
  EXPECT_TRUE(r->result.scalar().boolean());
}

TEST(InterpreterBindingTest, DistinctColumnsForDistinctSlots) {
  Table t = MakeNationsTable();
  NlInterpreter interp = SingleTemplate(
      "eq { hop { filter_eq { all_rows ; {c1} ; {v1@c1} } ; {c2} } ; "
      "{derive} }");
  auto r = interp.Interpret(
      "The silver of the row whose nation is china is 6.", t,
      TaskType::kFactVerification);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->bindings.at("c1"), "nation");
  EXPECT_EQ(r->bindings.at("c2"), "silver");
  EXPECT_NE(r->bindings.at("c1"), r->bindings.at("c2"));
}

TEST(InterpreterBindingTest, ValueMustBeMentioned) {
  Table t = MakeNationsTable();
  NlInterpreter interp = SingleTemplate(
      "eq { count { filter_eq { all_rows ; {c1} ; {v1@c1} } } ; {derive} }");
  // No cell value of any column appears in this sentence.
  auto r = interp.Interpret("The number of rows is 5.", t,
                            TaskType::kFactVerification);
  EXPECT_FALSE(r.ok());
}

TEST(InterpreterBindingTest, MultiTokenValueBinds) {
  Table t = MakeNationsTable();
  NlInterpreter interp = SingleTemplate(
      "eq { hop { filter_eq { all_rows ; {c1:text} ; {v1@c1} } ; {c2} } ; "
      "{derive} }");
  auto r = interp.Interpret(
      "The total of the row whose nation is united states is 30.", t,
      TaskType::kFactVerification);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->bindings.at("v1"), "united states");
  EXPECT_TRUE(r->result.scalar().boolean());
}

TEST(InterpreterBindingTest, OrdinalWordsBind) {
  Table t = MakeNationsTable();
  NlInterpreter interp = SingleTemplate(
      "eq { hop { nth_argmax { all_rows ; {c1:num} ; {ord1} } ; {c2} } ; "
      "{derive} }");
  auto r = interp.Interpret(
      "The nation with the 3rd highest total is japan.", t,
      TaskType::kFactVerification);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->bindings.at("ord1"), "3");
  EXPECT_TRUE(r->result.scalar().boolean());

  auto spelled = interp.Interpret(
      "The nation with the second highest total is china.", t,
      TaskType::kFactVerification);
  ASSERT_TRUE(spelled.ok());
  EXPECT_EQ(spelled->bindings.at("ord1"), "2");
}

TEST(InterpreterBindingTest, NoOrdinalMentionFailsOrdinalSlot) {
  Table t = MakeNationsTable();
  NlInterpreter interp = SingleTemplate(
      "eq { nth_max { all_rows ; {c1:num} ; {ord1} } ; {derive} }");
  EXPECT_FALSE(interp.Interpret("The highest gold is 10.", t,
                                TaskType::kFactVerification)
                   .ok());
}

TEST(InterpreterBindingTest, ClaimTemplatesIgnoreQuestions) {
  Table t = MakeNationsTable();
  NlInterpreter claims(BuiltinLogicTemplates());
  EXPECT_TRUE(claims
                  .RankAll("Which nation has the highest gold?", t,
                           TaskType::kQuestionAnswering)
                  .empty());
  NlInterpreter questions(BuiltinSqlTemplates());
  EXPECT_TRUE(questions
                  .RankAll("The gold of china is 8.", t,
                           TaskType::kFactVerification)
                  .empty());
}

TEST(InterpreterBindingTest, RankingPrefersBetterCoverage) {
  Table t = MakeNationsTable();
  NlInterpreter interp(BuiltinLogicTemplates());
  auto ranked = interp.RankAll(
      "The number of rows whose gold is greater than 5 is 2.", t,
      TaskType::kFactVerification);
  ASSERT_GE(ranked.size(), 2u);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  }
  // The top reading is the count-greater template.
  EXPECT_NE(ranked[0].program.text.find("count"), std::string::npos);
  EXPECT_NE(ranked[0].program.text.find("filter_greater"),
            std::string::npos);
}

TEST(InterpreterBindingTest, MoneyValuesBindOnFinanceTables) {
  Table t = MakeFinanceTable();
  NlInterpreter interp = SingleTemplate(
      "eq { hop { filter_eq { all_rows ; {c1:text} ; {v1@c1} } ; {c2} } ; "
      "{derive} }");
  auto r = interp.Interpret(
      "The 2019 of the row whose item is gross profit is 400.5.", t,
      TaskType::kFactVerification);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->result.scalar().boolean());
}

TEST(InterpreterBindingTest, ClaimedValueHandlesHedgesAndNegation) {
  EXPECT_EQ(NlInterpreter::ClaimedValue("The total is about 30."), "30");
  EXPECT_EQ(NlInterpreter::ClaimedValue("The total is roughly 30."), "30");
  EXPECT_EQ(NlInterpreter::ClaimedValue("The total is not 30."), "30");
  EXPECT_EQ(NlInterpreter::ClaimedValue("The counts were 1 and it is 2!"),
            "2");
}

TEST(InterpreterBindingTest, EmptyTableYieldsNoInterpretations) {
  Table empty;
  NlInterpreter interp(BuiltinLogicTemplates());
  EXPECT_TRUE(interp
                  .RankAll("The gold of china is 8.", empty,
                           TaskType::kFactVerification)
                  .empty());
}

}  // namespace
}  // namespace uctr::model
