#include <gtest/gtest.h>

#include "gen/generator.h"
#include "model/features.h"
#include "model/interpreter.h"
#include "model/linear_model.h"
#include "model/qa_model.h"
#include "model/verifier.h"
#include "program/library.h"
#include "tests/test_util.h"

namespace uctr::model {
namespace {

using uctr::testing::MakeFinanceTable;
using uctr::testing::MakeNationsTable;

// ------------------------------------------------------------ LinearModel

TEST(LinearModelTest, LearnsSeparableProblem) {
  // Class = which of two indicator features is on.
  Rng rng(5);
  std::vector<Example> train;
  for (int i = 0; i < 200; ++i) {
    bool positive = rng.Bernoulli(0.5);
    Example ex;
    ex.features.push_back({HashFeature(positive ? "a" : "b"), 1.0f});
    ex.features.push_back({HashFeature("noise" + std::to_string(
                               rng.UniformInt(0, 20))), 1.0f});
    ex.label = positive ? 1 : 0;
    train.push_back(std::move(ex));
  }
  LinearModel model(2, 1u << 12);
  TrainConfig config;
  model.Train(train, config, &rng);
  EXPECT_GT(model.Evaluate(train), 0.95);
}

TEST(LinearModelTest, MulticlassProbabilitiesSumToOne) {
  LinearModel model(4, 1u << 10);
  FeatureVector f = {{1, 1.0f}, {2, 0.5f}};
  auto probs = model.Probabilities(f);
  double total = 0;
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(probs.size(), 4u);
}

TEST(LinearModelTest, ContinuedTrainingImproves) {
  Rng rng(7);
  std::vector<Example> train;
  for (int i = 0; i < 100; ++i) {
    bool positive = i % 2 == 0;
    Example ex;
    ex.features.push_back({HashFeature(positive ? "x" : "y"), 1.0f});
    ex.label = positive ? 1 : 0;
    train.push_back(std::move(ex));
  }
  LinearModel model(2, 1u << 10);
  TrainConfig config;
  config.epochs = 1;
  model.Train(train, config, &rng);
  double acc1 = model.Evaluate(train);
  model.Train(train, config, &rng);  // continue
  EXPECT_GE(model.Evaluate(train), acc1);
}

// ------------------------------------------------------------ Interpreter

NlInterpreter ClaimInterpreter() {
  return NlInterpreter(BuiltinLogicTemplates());
}

NlInterpreter QuestionInterpreter() {
  auto templates = BuiltinSqlTemplates();
  for (auto& t : BuiltinArithTemplates()) templates.push_back(std::move(t));
  return NlInterpreter(std::move(templates));
}

TEST(InterpreterTest, ClaimedValueExtraction) {
  EXPECT_EQ(NlInterpreter::ClaimedValue("The gold of china is 8."), "8");
  EXPECT_EQ(NlInterpreter::ClaimedValue("The average gold is about 6."),
            "6");
  EXPECT_EQ(NlInterpreter::ClaimedValue(
                "The nation with the highest total is united states."),
            "united states");
  EXPECT_EQ(NlInterpreter::ClaimedValue("No copula here"), "");
}

TEST(InterpreterTest, InterpretsTrueClaimAsTrue) {
  Table t = MakeNationsTable();
  NlInterpreter interp = ClaimInterpreter();
  auto r = interp.Interpret(
      "The gold of the row whose nation is china is 8.", t,
      TaskType::kFactVerification);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->result.scalar().boolean());
  EXPECT_GT(r->score, 0.7);
}

TEST(InterpreterTest, InterpretsFalseClaimAsFalse) {
  Table t = MakeNationsTable();
  NlInterpreter interp = ClaimInterpreter();
  auto r = interp.Interpret(
      "The gold of the row whose nation is china is 11.", t,
      TaskType::kFactVerification);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->result.scalar().boolean());
}

TEST(InterpreterTest, InterpretsCountClaim) {
  Table t = MakeNationsTable();
  NlInterpreter interp = ClaimInterpreter();
  auto r = interp.Interpret(
      "The number of rows whose gold is greater than 5 is 2.", t,
      TaskType::kFactVerification);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->result.scalar().boolean());
}

TEST(InterpreterTest, AnswersSuperlativeQuestion) {
  Table t = MakeNationsTable();
  NlInterpreter interp = QuestionInterpreter();
  auto r = interp.Interpret("Which nation has the highest total?", t,
                            TaskType::kQuestionAnswering);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.ToDisplayString(), "united states");
}

TEST(InterpreterTest, AnswersLookupQuestion) {
  Table t = MakeNationsTable();
  NlInterpreter interp = QuestionInterpreter();
  auto r = interp.Interpret(
      "What is the silver of the row whose nation is japan?", t,
      TaskType::kQuestionAnswering);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.ToDisplayString(), "9");
}

TEST(InterpreterTest, AnswersArithmeticQuestion) {
  Table t = MakeFinanceTable();
  NlInterpreter interp = QuestionInterpreter();
  auto r = interp.Interpret(
      "By what percentage change did the revenue move from 2018 to 2019?",
      t, TaskType::kQuestionAnswering);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->result.scalar().number(), 0.2005, 1e-6);
}

TEST(InterpreterTest, FailsOnUnrelatedSentence) {
  Table t = MakeNationsTable();
  NlInterpreter interp = ClaimInterpreter();
  auto r = interp.Interpret("The weather in berlin is pleasant today.", t,
                            TaskType::kFactVerification);
  EXPECT_FALSE(r.ok());
}

TEST(InterpreterTest, GeneratedClaimsRoundTrip) {
  // Claims produced by the generator should be re-interpreted with the
  // label the generator assigned (canonical NL, no noise).
  Rng rng(3);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = 30;
  config.use_table_to_text = false;
  config.use_text_to_table = false;
  config.nl.stochastic = false;
  Generator gen(config, &lib, &rng);
  TableWithText input;
  input.table = MakeNationsTable();
  auto samples = gen.GenerateFromTable(input);
  ASSERT_GE(samples.size(), 15u);

  NlInterpreter interp = ClaimInterpreter();
  size_t agree = 0, interpreted = 0;
  for (const auto& s : samples) {
    auto r = interp.Interpret(s.sentence, s.table,
                              TaskType::kFactVerification);
    if (!r.ok()) continue;
    ++interpreted;
    Label predicted = r->result.scalar().boolean() ? Label::kSupported
                                                   : Label::kRefuted;
    if (predicted == s.label) ++agree;
  }
  ASSERT_GT(interpreted, samples.size() / 2);
  EXPECT_GT(static_cast<double>(agree) / interpreted, 0.8);
}

// --------------------------------------------------------------- Features

TEST(FeatureTest, HashIsStable) {
  EXPECT_EQ(HashFeature("abc"), HashFeature("abc"));
  EXPECT_NE(HashFeature("abc"), HashFeature("abd"));
}

TEST(FeatureTest, ExtractsLexicalAndAlignment) {
  FeatureConfig config;
  config.interpreter = false;
  FeatureExtractor extractor(config, nullptr);
  Sample s;
  s.task = TaskType::kFactVerification;
  s.table = MakeNationsTable();
  s.sentence = "The gold of china is 8.";
  FeatureVector f = extractor.Extract(s);
  EXPECT_GT(f.size(), 8u);  // bias + unigrams + bigrams + alignment
}

TEST(FeatureTest, NumericMismatchSignal) {
  FeatureConfig config;
  config.interpreter = false;
  config.lexical = false;
  FeatureExtractor extractor(config, nullptr);
  Sample good;
  good.task = TaskType::kFactVerification;
  good.table = MakeNationsTable();
  good.sentence = "china won 8 gold";  // 8 matches a cell
  Sample bad = good;
  bad.sentence = "china won 77 gold";  // 77 matches nothing

  auto has_miss = [&](const Sample& s) {
    FeatureVector f = extractor.Extract(s);
    uint32_t idx = HashFeature("align:has_num_miss") % config.dim;
    for (const Feature& feat : f) {
      if (feat.index == idx) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_miss(good));
  EXPECT_TRUE(has_miss(bad));
}

// ----------------------------------------------------- Verifier end-to-end

Dataset MakeClaimDataset(const Table& table, size_t n, uint64_t seed,
                         bool stochastic_nl) {
  Rng rng(seed);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = n;
  config.use_table_to_text = false;
  config.use_text_to_table = false;
  config.nl.stochastic = stochastic_nl;
  Generator gen(config, &lib, &rng);
  TableWithText input;
  input.table = table;
  Dataset d;
  d.samples = gen.GenerateFromTable(input);
  return d;
}

TEST(VerifierModelTest, TrainedModelBeatsChanceOnHeldOutTable) {
  Dataset train = MakeClaimDataset(MakeNationsTable(), 60, 1, true);
  Dataset test = MakeClaimDataset(MakeFinanceTable(), 40, 2, true);
  ASSERT_GE(train.size(), 30u);
  ASSERT_GE(test.size(), 15u);

  VerifierConfig config;
  config.train.epochs = 6;
  VerifierModel model(config, BuiltinLogicTemplates());
  Rng rng(9);
  model.Train(train, &rng);
  double acc = model.Accuracy(test);
  EXPECT_GT(acc, 0.6) << "accuracy " << acc;
}

TEST(VerifierModelTest, UntrainedModelIsChance) {
  Dataset test = MakeClaimDataset(MakeNationsTable(), 30, 3, true);
  VerifierConfig config;
  VerifierModel model(config, BuiltinLogicTemplates());
  double acc = model.Accuracy(test);
  EXPECT_LT(acc, 0.8);  // untrained weights: no better than guessing
}

// ----------------------------------------------------------- QA end-to-end

Dataset MakeQaDataset(const Table& table, size_t n, uint64_t seed) {
  Rng rng(seed);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  GenerationConfig config;
  config.task = TaskType::kQuestionAnswering;
  config.program_types = {ProgramType::kSql};
  config.samples_per_table = n;
  config.use_table_to_text = false;
  config.use_text_to_table = false;
  Generator gen(config, &lib, &rng);
  TableWithText input;
  input.table = table;
  Dataset d;
  d.samples = gen.GenerateFromTable(input);
  return d;
}

TEST(QaModelTest, AnswersHeldOutQuestions) {
  Dataset train = MakeQaDataset(MakeNationsTable(), 40, 4);
  Dataset test = MakeQaDataset(MakeFinanceTable(), 25, 5);
  ASSERT_GE(test.size(), 10u);

  QaConfig config;
  QaModel model(config, BuiltinSqlTemplates());
  Rng rng(11);
  model.Train(train, &rng);
  size_t correct = 0;
  for (const Sample& s : test.samples) {
    if (model.PredictCorrect(s)) ++correct;
  }
  double acc = static_cast<double>(correct) / test.size();
  EXPECT_GE(acc, 0.35) << "denotation accuracy " << acc;
}

TEST(QaModelTest, TextOnlyBaselineIsWeaker) {
  Dataset test = MakeQaDataset(MakeNationsTable(), 25, 6);
  QaConfig table_config;
  QaModel table_model(table_config, BuiltinSqlTemplates());
  QaConfig text_config;
  text_config.use_table = false;
  QaModel text_model(text_config, BuiltinSqlTemplates());

  size_t table_correct = 0, text_correct = 0;
  for (const Sample& s : test.samples) {
    if (table_model.PredictCorrect(s)) ++table_correct;
    if (text_model.PredictCorrect(s)) ++text_correct;
  }
  EXPECT_GT(table_correct, text_correct);
}

TEST(QaModelTest, AnswersMatchNumericTolerance) {
  EXPECT_TRUE(AnswersMatch("8", "8"));
  EXPECT_TRUE(AnswersMatch("$1,200.5", "1200.5"));
  EXPECT_TRUE(AnswersMatch("0.2005", "20.05"));  // percent scale
  EXPECT_TRUE(AnswersMatch("China", "china"));
  EXPECT_FALSE(AnswersMatch("8", "9"));
  EXPECT_FALSE(AnswersMatch("", "8"));
  EXPECT_TRUE(AnswersMatch("", ""));
}

}  // namespace
}  // namespace uctr::model
