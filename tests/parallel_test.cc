#include <gtest/gtest.h>

#include "datasets/corpus.h"
#include "gen/parallel.h"
#include "program/library.h"

namespace uctr {
namespace {

std::vector<TableWithText> MakeCorpus(uint64_t seed, size_t n) {
  Rng rng(seed);
  datasets::CorpusConfig config;
  config.num_tables = n;
  datasets::CorpusGenerator gen(config, &rng);
  return gen.Generate();
}

GenerationConfig FvConfig() {
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = 8;
  config.unknown_fraction = 0.1;
  return config;
}

std::string Fingerprint(const Dataset& data) {
  std::string out;
  for (const Sample& s : data.samples) {
    out += s.sentence + "|" + LabelToString(s.label) + "|" +
           s.program.text + "\n";
  }
  return out;
}

TEST(ParallelGenerationTest, OutputIndependentOfThreadCount) {
  auto corpus = MakeCorpus(5, 8);
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config = FvConfig();

  Dataset one = GenerateDatasetParallel(config, &library, corpus, 99, 1);
  Dataset four = GenerateDatasetParallel(config, &library, corpus, 99, 4);
  Dataset many = GenerateDatasetParallel(config, &library, corpus, 99, 16);
  ASSERT_GT(one.size(), 30u);
  EXPECT_EQ(Fingerprint(one), Fingerprint(four));
  EXPECT_EQ(Fingerprint(one), Fingerprint(many));
}

TEST(ParallelGenerationTest, DifferentSeedsDiffer) {
  auto corpus = MakeCorpus(5, 4);
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config = FvConfig();
  Dataset a = GenerateDatasetParallel(config, &library, corpus, 1, 4);
  Dataset b = GenerateDatasetParallel(config, &library, corpus, 2, 4);
  EXPECT_NE(Fingerprint(a), Fingerprint(b));
}

TEST(ParallelGenerationTest, UnknownPostPassApplied) {
  auto corpus = MakeCorpus(7, 6);
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config = FvConfig();
  Dataset data = GenerateDatasetParallel(config, &library, corpus, 3, 4);
  EXPECT_GT(data.CountLabel(Label::kUnknown), 0u);
}

TEST(ParallelGenerationTest, HandlesDegenerateInputs) {
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config = FvConfig();
  Dataset empty =
      GenerateDatasetParallel(config, &library, {}, 1, 4);
  EXPECT_TRUE(empty.empty());

  auto corpus = MakeCorpus(9, 2);
  Dataset zero_threads =
      GenerateDatasetParallel(config, &library, corpus, 1, 0);
  EXPECT_GT(zero_threads.size(), 0u);  // clamped to one thread
}

}  // namespace
}  // namespace uctr
