#include <gtest/gtest.h>

#include <set>

#include "baselines/mqa_qg.h"
#include "baselines/random_baseline.h"
#include "tests/test_util.h"

namespace uctr::baselines {
namespace {

using uctr::testing::MakeNationsTable;

TEST(MqaQgTest, GeneratesSimpleQuestionsOnly) {
  Rng rng(3);
  MqaQgConfig config;
  config.task = TaskType::kQuestionAnswering;
  config.samples_per_table = 12;
  MqaQg gen(config, &rng);
  TableWithText input;
  input.table = MakeNationsTable();
  auto samples = gen.GenerateFromTable(input);
  ASSERT_GE(samples.size(), 8u);
  for (const Sample& s : samples) {
    EXPECT_EQ(s.reasoning_type, "simple");
    EXPECT_EQ(s.evidence_rows.size(), 1u);  // single-row evidence, always
    // Answer re-derives from the provenance program.
    auto full = s.program.Execute(input.table);
    ASSERT_TRUE(full.ok()) << s.program.text;
    EXPECT_EQ(full->ToDisplayString(), s.answer);
  }
}

TEST(MqaQgTest, ClaimsAreExecutionConsistent) {
  Rng rng(5);
  MqaQgConfig config;
  config.task = TaskType::kFactVerification;
  config.samples_per_table = 20;
  MqaQg gen(config, &rng);
  TableWithText input;
  input.table = MakeNationsTable();
  auto samples = gen.GenerateFromTable(input);
  ASSERT_GE(samples.size(), 10u);
  size_t supported = 0;
  for (const Sample& s : samples) {
    auto r = s.program.Execute(input.table);
    ASSERT_TRUE(r.ok()) << s.program.text;
    Label expected =
        r->scalar().boolean() ? Label::kSupported : Label::kRefuted;
    EXPECT_EQ(s.label, expected) << s.sentence;
    if (s.label == Label::kSupported) ++supported;
  }
  EXPECT_GT(supported, 0u);
  EXPECT_LT(supported, samples.size());
}

TEST(MqaQgTest, BridgeModeMovesRowToText) {
  Rng rng(7);
  MqaQgConfig config;
  config.bridge_fraction = 1.0;
  config.samples_per_table = 10;
  MqaQg gen(config, &rng);
  TableWithText input;
  input.table = MakeNationsTable();
  auto samples = gen.GenerateFromTable(input);
  size_t bridged = 0;
  for (const Sample& s : samples) {
    if (s.source == EvidenceSource::kTextOnly) {
      ++bridged;
      EXPECT_EQ(s.table.num_rows(), input.table.num_rows() - 1);
      ASSERT_EQ(s.paragraph.size(), 1u);
    }
  }
  EXPECT_GT(bridged, 5u);
}

TEST(RandomBaselineTest, CoversAllClasses) {
  Rng rng(9);
  RandomBaseline two(2, &rng);
  std::set<Label> seen2;
  for (Label l : two.PredictAll(200)) seen2.insert(l);
  EXPECT_EQ(seen2.size(), 2u);
  EXPECT_FALSE(seen2.count(Label::kUnknown));

  RandomBaseline three(3, &rng);
  std::set<Label> seen3;
  for (Label l : three.PredictAll(300)) seen3.insert(l);
  EXPECT_EQ(seen3.size(), 3u);
}

}  // namespace
}  // namespace uctr::baselines
