// Tests of the shard router (src/net/router.h): consistent-ring
// placement, byte-identity of routed responses, per-connection ordering
// through the full TCP front end, put_table fingerprint affinity,
// health-probe-driven membership (a backend killed mid-load fails its
// keys over to the ring sibling, rejoins after restart, and no request
// is lost or answered twice), and hedged replica fan-out with duplicate
// suppression.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/server.h"

namespace uctr::net {
namespace {

constexpr char kMedalsCsv[] =
    "nation,gold,silver,bronze,total\n"
    "united states,10,12,8,30\n"
    "china,8,6,10,24\n"
    "japan,5,9,4,18\n";

std::string JsonEscapeNewlines(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string VerifyRequest(uint64_t id, const std::string& claim,
                          size_t variant = 0) {
  std::string csv = kMedalsCsv;
  if (variant != 0) csv += "germany," + std::to_string(variant) + ",1,1,9\n";
  return "{\"id\":" + std::to_string(id) + ",\"op\":\"verify\",\"table\":\"" +
         JsonEscapeNewlines(csv) + "\",\"query\":\"" + claim + "\"}";
}

const serve::InferenceEngine& SharedEngine() {
  static const serve::InferenceEngine engine = [] {
    serve::EngineConfig config;
    return serve::InferenceEngine::Create(config, "", "").ValueOrDie();
  }();
  return engine;
}

/// Collects a SubmitLine response synchronously.
std::string CallRouter(Router* router, const std::string& line) {
  std::mutex mu;
  std::condition_variable cv;
  bool got = false;
  std::string response;
  router->SubmitLine(line, [&](std::string r) {
    std::lock_guard<std::mutex> lock(mu);
    response = std::move(r);
    got = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return got; });
  return response;
}

// ------------------------------------------------------- ConsistentRing

TEST(ConsistentRingTest, PreferenceIsDeterministicAndDistinct) {
  ConsistentRing ring({"a:1", "b:2", "c:3", "d:4"}, 64);
  for (int k = 0; k < 50; ++k) {
    std::string key = "key-" + std::to_string(k);
    auto first = ring.Preference(key);
    auto second = ring.Preference(key);
    EXPECT_EQ(first, second) << "preference must be deterministic";
    ASSERT_EQ(first.size(), 4u);
    std::set<uint32_t> distinct(first.begin(), first.end());
    EXPECT_EQ(distinct.size(), 4u) << "every backend appears exactly once";
  }
}

TEST(ConsistentRingTest, KeysSpreadAcrossAllBackends) {
  ConsistentRing ring({"a:1", "b:2", "c:3", "d:4"}, 64);
  std::vector<int> owned(4, 0);
  const int kKeys = 2000;
  for (int k = 0; k < kKeys; ++k) {
    ++owned[ring.Preference("table-" + std::to_string(k))[0]];
  }
  for (int b = 0; b < 4; ++b) {
    // With 64 vnodes the split is within a small factor of fair share;
    // the bound here only guards against a degenerate ring (one backend
    // owning everything).
    EXPECT_GT(owned[b], kKeys / 20) << "backend " << b << " owns too little";
    EXPECT_LT(owned[b], kKeys / 2) << "backend " << b << " owns too much";
  }
}

TEST(ConsistentRingTest, SuccessorTakeoverLeavesOtherKeysInPlace) {
  // Consistent hashing's defining property: dropping one backend moves
  // only the keys it owned — everyone else's owner is unchanged. The
  // router relies on this for failover affinity (the sibling that takes
  // over is the next entry in the preference list).
  ConsistentRing ring({"a:1", "b:2", "c:3"}, 64);
  for (int k = 0; k < 200; ++k) {
    auto prefer = ring.Preference("key-" + std::to_string(k));
    // Simulate backend 0 out of the ring: the walk skips it.
    uint32_t owner_without_0 = prefer[0] != 0 ? prefer[0] : prefer[1];
    if (prefer[0] != 0) {
      EXPECT_EQ(owner_without_0, prefer[0])
          << "keys not owned by the removed backend must not move";
    }
  }
}

// --------------------------------------------------- router test fixture

/// One in-process backend: serve::Server + net::Server on an ephemeral
/// loopback port with its own event-loop thread — the same pair
/// `uctr_serve --listen` runs, so probes, drains, and kills behave like
/// the real process.
struct BackendProcess {
  obs::MetricsRegistry metrics;
  std::unique_ptr<serve::Server> serve;
  std::unique_ptr<Server> net;
  std::thread loop;

  explicit BackendProcess(uint16_t port = 0) {
    serve::ServerConfig serve_config;
    serve_config.metrics = &metrics;
    serve = std::make_unique<serve::Server>(&SharedEngine(), serve_config);
    NetServerConfig net_config;
    net_config.metrics = &metrics;
    net_config.host = "127.0.0.1";
    net_config.port = port;
    net_config.drain_timeout_ms = 2000;
    net = std::make_unique<Server>(serve.get(), net_config);
    EXPECT_TRUE(net->Start().ok());
    loop = std::thread([this] { net->Run(); });
  }

  ~BackendProcess() { Stop(); }

  uint16_t port() const { return net->port(); }

  void Stop() {
    if (net != nullptr) net->Shutdown();
    if (loop.joinable()) loop.join();
    net.reset();
    serve.reset();
  }

  uint64_t FramesIn() {
    return metrics.counter("net_frames_in_total")->value();
  }
};

class RouterTest : public ::testing::Test {
 protected:
  void StartBackends(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      backends_.push_back(std::make_unique<BackendProcess>());
    }
  }

  RouterConfig BaseConfig() {
    RouterConfig config;
    for (auto& b : backends_) {
      config.backends.push_back(HostPort{"127.0.0.1", b->port()});
    }
    config.metrics = &router_metrics_;
    config.workers = 8;
    config.probe_failures_out = 1;  // tests drive probes explicitly
    // No backoff sleeps in unit tests; failover moves to the sibling on
    // the immediately-next attempt.
    config.retry.initial_backoff_ms = 0.0;
    config.retry.max_backoff_ms = 0.0;
    return config;
  }

  void StartRouter(RouterConfig config) {
    router_ = std::make_unique<Router>(std::move(config));
    ASSERT_TRUE(router_->Start().ok());
  }

  void TearDown() override {
    fault::FaultInjector::Global().Disarm();
    if (router_ != nullptr) router_->Shutdown();
    router_.reset();
    backends_.clear();
  }

  uint64_t RouterCounter(const std::string& name) {
    return router_metrics_.counter(name)->value();
  }

  obs::MetricsRegistry router_metrics_;
  std::vector<std::unique_ptr<BackendProcess>> backends_;
  std::unique_ptr<Router> router_;
};

// ------------------------------------------------------------- behavior

TEST_F(RouterTest, RoutedResponsesAreByteIdenticalToDirectOnes) {
  StartBackends(2);
  StartRouter(BaseConfig());
  // An independent serve::Server stands in for a direct (unrouted)
  // backend; both instances share the deterministic engine, so any byte
  // the router added or changed would show up in the comparison.
  serve::ServerConfig direct_config;
  obs::MetricsRegistry direct_metrics;
  direct_config.metrics = &direct_metrics;
  serve::Server direct(&SharedEngine(), direct_config);

  std::vector<std::string> requests = {
      VerifyRequest(1, "The gold of the row whose nation is japan is 5."),
      VerifyRequest(2, "The total of the row whose nation is china is 99."),
      "{\"id\":3,\"op\":\"fly\"}",
      "not json at all",
  };
  for (const std::string& request : requests) {
    EXPECT_EQ(CallRouter(router_.get(), request), direct.HandleLine(request))
        << "router must not change response bytes for: " << request;
  }
}

TEST_F(RouterTest, HealthReportsRingStateInline) {
  StartBackends(2);
  StartRouter(BaseConfig());
  std::string health = CallRouter(router_.get(), "{\"id\":5,\"op\":\"health\"}");
  EXPECT_EQ(health.rfind("{\"id\":5,\"status\":\"ok\",\"health\":\"live\"", 0),
            0u)
      << health;
  EXPECT_NE(health.find("\"role\":\"router\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"in_ring\":2"), std::string::npos) << health;
}

TEST_F(RouterTest, OrderingHoldsThroughFullWireStack) {
  // net::Server -> Router -> N x (net::Server -> serve::Server): the
  // complete deployment shape. Per-connection response order must hold
  // even though the router fans requests out to different shards that
  // complete in arbitrary order.
  StartBackends(2);
  StartRouter(BaseConfig());
  NetServerConfig front_config;
  front_config.host = "127.0.0.1";
  front_config.port = 0;
  Server front(router_.get(), front_config);
  ASSERT_TRUE(front.Start().ok());
  std::thread front_loop([&] { front.Run(); });

  constexpr int kClients = 4;
  constexpr uint64_t kPerClient = 40;
  std::atomic<int> order_violations{0};
  std::atomic<uint64_t> responses{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", front.port());
      ASSERT_TRUE(client.ok());
      // Pipeline everything, then collect: distinct variants per client
      // so requests hash to different shards.
      for (uint64_t id = 1; id <= kPerClient; ++id) {
        ASSERT_TRUE(client
                        ->Send(VerifyRequest(
                            id, "The gold of the row whose nation is japan is 5.",
                            c * 1000 + id % 7))
                        .ok());
      }
      for (uint64_t id = 1; id <= kPerClient; ++id) {
        auto response = client->RecvTimeout(30000);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        responses.fetch_add(1);
        if (response->find("\"id\":" + std::to_string(id) + ",") ==
            std::string::npos) {
          order_violations.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(order_violations.load(), 0);
  EXPECT_EQ(responses.load(), kClients * kPerClient);
  // Both shards actually served traffic (the variants spread the keys).
  EXPECT_GT(backends_[0]->FramesIn(), 0u);
  EXPECT_GT(backends_[1]->FramesIn(), 0u);

  front.Shutdown();
  front_loop.join();
}

TEST_F(RouterTest, PutTableRoutesByContentFingerprintForRefAffinity) {
  StartBackends(2);
  StartRouter(BaseConfig());
  std::string put = CallRouter(
      router_.get(), "{\"id\":1,\"op\":\"put_table\",\"table\":\"" +
                         JsonEscapeNewlines(kMedalsCsv) + "\"}");
  ASSERT_NE(put.find("\"status\":\"ok\""), std::string::npos) << put;
  auto fp_pos = put.find("\"fingerprint\":\"");
  ASSERT_NE(fp_pos, std::string::npos) << put;
  std::string fingerprint = put.substr(fp_pos + 15, 16);

  // The routed ref request resolves: the router hashed the put by the
  // same content fingerprint the registry answered with, so the ref
  // hashes to the shard that holds the table.
  std::string ref_request =
      "{\"id\":2,\"op\":\"verify\",\"table_ref\":\"" + fingerprint +
      "\",\"query\":\"The gold of the row whose nation is japan is 5.\"}";
  std::string routed = CallRouter(router_.get(), ref_request);
  EXPECT_NE(routed.find("\"status\":\"ok\""), std::string::npos) << routed;

  // Exactly one shard holds the registration (no accidental broadcast),
  // and it is the ring owner of the fingerprint.
  int holders = 0;
  for (auto& b : backends_) {
    auto direct = Client::Connect("127.0.0.1", b->port());
    ASSERT_TRUE(direct.ok());
    auto answer = direct->Call(ref_request);
    ASSERT_TRUE(answer.ok());
    if (answer->find("\"status\":\"ok\"") != std::string::npos) ++holders;
  }
  EXPECT_EQ(holders, 1);
}

TEST_F(RouterTest, RefMissFailsOverToSiblingThatHoldsTheTable) {
  StartBackends(2);
  StartRouter(BaseConfig());
  // Register directly on both shards so the table exists everywhere,
  // then wipe it from nowhere — instead, register on ONE shard only by
  // talking to it directly. If the ring owner of the fingerprint is the
  // *other* shard, the routed ref request first hits a shard that does
  // not hold the table; the ref-miss failover must find the holder.
  auto direct = Client::Connect("127.0.0.1", backends_[0]->port());
  ASSERT_TRUE(direct.ok());
  auto put = direct->Call("{\"id\":1,\"op\":\"put_table\",\"table\":\"" +
                          JsonEscapeNewlines(kMedalsCsv) + "\"}");
  ASSERT_TRUE(put.ok());
  auto fp_pos = put->find("\"fingerprint\":\"");
  ASSERT_NE(fp_pos, std::string::npos) << *put;
  std::string fingerprint = put->substr(fp_pos + 15, 16);

  std::string response = CallRouter(
      router_.get(),
      "{\"id\":2,\"op\":\"verify\",\"table_ref\":\"" + fingerprint +
          "\",\"query\":\"The gold of the row whose nation is japan is "
          "5.\"}");
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
      << response;
}

TEST_F(RouterTest, ReplicatedPutLandsOnEveryRingSuccessor) {
  StartBackends(2);
  RouterConfig config = BaseConfig();
  config.put_replicas = 2;
  StartRouter(config);
  std::string put = CallRouter(
      router_.get(), "{\"id\":1,\"op\":\"put_table\",\"table\":\"" +
                         JsonEscapeNewlines(kMedalsCsv) + "\"}");
  ASSERT_NE(put.find("\"status\":\"ok\""), std::string::npos) << put;
  auto fp_pos = put.find("\"fingerprint\":\"");
  ASSERT_NE(fp_pos, std::string::npos) << put;
  std::string fingerprint = put.substr(fp_pos + 15, 16);
  std::string ref_request =
      "{\"id\":2,\"op\":\"verify\",\"table_ref\":\"" + fingerprint +
      "\",\"query\":\"The gold of the row whose nation is japan is 5.\"}";

  // The ack rode on the owner's response alone; the replica copy lands
  // asynchronously on the forwarding worker. Poll until BOTH shards
  // serve the ref directly and non-degraded (a non-holder answers a
  // NotFound error: there is no inline table to fall back to).
  auto holds = [&](size_t i) {
    auto direct = Client::Connect("127.0.0.1", backends_[i]->port());
    if (!direct.ok()) return false;
    auto answer = direct->Call(ref_request);
    return answer.ok() &&
           answer->find("\"status\":\"ok\"") != std::string::npos &&
           answer->find("\"degraded\"") == std::string::npos;
  };
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((!holds(0) || !holds(1)) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(holds(0)) << "shard 0 must hold the replicated table";
  EXPECT_TRUE(holds(1)) << "shard 1 must hold the replicated table";
  EXPECT_GE(RouterCounter("router_put_replica_total"), 1u);
  EXPECT_EQ(RouterCounter("router_put_replica_failures_total"), 0u);
}

TEST_F(RouterTest, ReadRepairRestoresRestartedOwnerToFullService) {
  StartBackends(2);
  RouterConfig config = BaseConfig();
  config.put_replicas = 2;
  config.call_timeout_ms = 5000;
  StartRouter(config);
  std::string put = CallRouter(
      router_.get(), "{\"id\":1,\"op\":\"put_table\",\"table\":\"" +
                         JsonEscapeNewlines(kMedalsCsv) + "\"}");
  ASSERT_NE(put.find("\"status\":\"ok\""), std::string::npos) << put;
  std::string fingerprint =
      put.substr(put.find("\"fingerprint\":\"") + 15, 16);
  std::string ref_request =
      "{\"id\":2,\"op\":\"verify\",\"table_ref\":\"" + fingerprint +
      "\",\"query\":\"The gold of the row whose nation is japan is 5.\"}";
  auto holds = [&](size_t i) {
    auto direct = Client::Connect("127.0.0.1", backends_[i]->port());
    if (!direct.ok()) return false;
    auto answer = direct->Call(ref_request);
    return answer.ok() &&
           answer->find("\"status\":\"ok\"") != std::string::npos &&
           answer->find("\"degraded\"") == std::string::npos;
  };
  auto wait_for = [&](const std::function<bool()>& pred) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!pred() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  };
  ASSERT_TRUE(wait_for([&] { return holds(0) && holds(1); }))
      << "replication must land on both shards before the kill";

  // Find the ring owner of the fingerprint (the router's ring is
  // deterministic: same labels, same vnodes).
  std::vector<std::string> labels;
  for (auto& b : backends_) {
    labels.push_back("127.0.0.1:" + std::to_string(b->port()));
  }
  ConsistentRing ring(labels, config.vnodes);
  size_t owner = ring.Preference(fingerprint)[0];
  size_t sibling = 1 - owner;

  // Kill the owner (crash, not drain). The replica on the sibling keeps
  // the ref servable with zero lost replies.
  uint16_t owner_port = backends_[owner]->port();
  backends_[owner]->Stop();
  router_->ProbeNow();
  EXPECT_EQ(router_->backends_in_ring(), 1u);
  std::string during = CallRouter(router_.get(), ref_request);
  EXPECT_NE(during.find("\"status\":\"ok\""), std::string::npos) << during;

  // Restart the owner on the same port with an EMPTY registry (a real
  // crashed process loses its memory-only tables) and let it rejoin.
  backends_[owner] = std::make_unique<BackendProcess>(owner_port);
  ASSERT_EQ(backends_[owner]->port(), owner_port);
  router_->ProbeNow();
  EXPECT_EQ(router_->backends_in_ring(), 2u);
  ASSERT_FALSE(holds(owner)) << "the restarted owner starts empty";

  // The routed ref now lands on the recovered-but-empty owner, ref-misses,
  // fails over to the sibling (the reply is still ok — nothing lost), and
  // triggers read-repair in the background.
  std::string routed = CallRouter(router_.get(), ref_request);
  EXPECT_NE(routed.find("\"status\":\"ok\""), std::string::npos) << routed;

  // Convergence: the owner ends up holding the table again and serves the
  // ref directly, non-degraded — full ownership restored.
  EXPECT_TRUE(wait_for([&] { return holds(owner); }))
      << "read-repair must restore the owner's copy";
  EXPECT_GE(RouterCounter("router_read_repair_total"), 1u);
  EXPECT_EQ(RouterCounter("router_read_repair_failures_total"), 0u);
  std::string after = CallRouter(router_.get(), ref_request);
  EXPECT_NE(after.find("\"status\":\"ok\""), std::string::npos) << after;
  EXPECT_EQ(after.find("\"degraded\""), std::string::npos) << after;
  (void)sibling;
}

TEST_F(RouterTest, DrainingBackendStopsReceivingNewKeys) {
  StartBackends(2);
  StartRouter(BaseConfig());
  ASSERT_EQ(router_->backends_in_ring(), 2u);
  backends_[1]->serve->set_draining(true);
  router_->ProbeNow();
  EXPECT_EQ(router_->backends_in_ring(), 1u);
  uint64_t before = backends_[1]->FramesIn();
  for (uint64_t id = 1; id <= 20; ++id) {
    std::string response = CallRouter(
        router_.get(),
        VerifyRequest(id, "The gold of the row whose nation is japan is 5.",
                      id));
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
  }
  // Only probe traffic may have touched the draining backend (probes use
  // their own connections and always answer inline).
  EXPECT_LE(backends_[1]->FramesIn(), before + 2);
  backends_[1]->serve->set_draining(false);
  router_->ProbeNow();
  EXPECT_EQ(router_->backends_in_ring(), 2u);
}

TEST_F(RouterTest, KilledBackendFailsOverThenRejoinsAfterRestart) {
  StartBackends(2);
  RouterConfig config = BaseConfig();
  config.call_timeout_ms = 5000;
  StartRouter(config);

  // Phase 1: both shards serving.
  std::atomic<uint64_t> ok_count{0};
  std::mutex seen_mu;
  std::map<uint64_t, int> seen;  // id -> responses (must end at exactly 1)
  auto fire = [&](uint64_t id) {
    std::string response = CallRouter(
        router_.get(),
        VerifyRequest(id, "The gold of the row whose nation is japan is 5.",
                      id));
    {
      std::lock_guard<std::mutex> lock(seen_mu);
      ++seen[id];
    }
    if (response.find("\"status\":\"ok\"") != std::string::npos) {
      ok_count.fetch_add(1);
    }
  };
  for (uint64_t id = 1; id <= 30; ++id) fire(id);
  ASSERT_EQ(ok_count.load(), 30u);

  // Phase 2: kill shard 1 (force-close, like a crashed process) while
  // requests keep coming. Every request must still be answered ok — the
  // dead shard's keys retry over to the sibling — and exactly once.
  uint16_t killed_port = backends_[1]->port();
  backends_[1]->Stop();
  router_->ProbeNow();
  EXPECT_EQ(router_->backends_in_ring(), 1u);
  EXPECT_GE(RouterCounter("router_backend_removed_total"), 1u);
  std::vector<std::thread> wave;
  for (uint64_t id = 31; id <= 60; ++id) {
    wave.emplace_back([&fire, id] { fire(id); });
  }
  for (auto& t : wave) t.join();
  EXPECT_EQ(ok_count.load(), 60u) << "no request may be lost to the kill";

  // Phase 3: restart on the same port; the probe puts it back in the
  // ring and its keys come home.
  backends_[1] = std::make_unique<BackendProcess>(killed_port);
  ASSERT_EQ(backends_[1]->port(), killed_port);
  router_->ProbeNow();
  EXPECT_EQ(router_->backends_in_ring(), 2u);
  EXPECT_GE(RouterCounter("router_backend_rejoined_total"), 1u);
  uint64_t frames_before = backends_[1]->FramesIn();
  for (uint64_t id = 61; id <= 120; ++id) fire(id);
  EXPECT_EQ(ok_count.load(), 120u);
  EXPECT_GT(backends_[1]->FramesIn(), frames_before)
      << "the rejoined backend must serve data traffic again";

  // Exactly-once: every id has exactly one response.
  std::lock_guard<std::mutex> lock(seen_mu);
  EXPECT_EQ(seen.size(), 120u);
  for (const auto& [id, count] : seen) {
    EXPECT_EQ(count, 1) << "id " << id << " answered " << count << " times";
  }
}

TEST_F(RouterTest, HotKeysHedgeAcrossReplicasWithoutDuplicates) {
  StartBackends(2);
  RouterConfig config = BaseConfig();
  config.replicas = 2;
  config.hot_threshold = 3;  // 4th repeat of a key inside the window hedges
  config.hot_window_ms = 60000;
  StartRouter(config);

  // The same inline-table request over and over: after the threshold the
  // router fans it out to both shards. Inline tables execute anywhere, so
  // both legs produce the same bytes and the dedup is observable as
  // "every call returns exactly one response".
  const std::string request =
      VerifyRequest(9, "The gold of the row whose nation is japan is 5.");
  const std::string expected = CallRouter(router_.get(), request);
  ASSERT_NE(expected.find("\"status\":\"ok\""), std::string::npos);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(CallRouter(router_.get(), request), expected);
  }
  EXPECT_GE(RouterCounter("router_hedged_total"), 1u)
      << "repeats past the threshold must fan out";
  // Both shards saw the hot key.
  EXPECT_GT(backends_[0]->FramesIn(), 0u);
  EXPECT_GT(backends_[1]->FramesIn(), 0u);
}

TEST_F(RouterTest, ChaosFaultsOnRouterSitesStayClean) {
  // Transient injected faults on the router's own connect/send/recv
  // sites must be absorbed by retry-with-failover: every request still
  // gets exactly one ok response.
  StartBackends(2);
  ASSERT_TRUE(fault::FaultInjector::Global()
                  .ArmSpec("router.send=error(unavailable):p=0.2;"
                           "router.recv=error(unavailable):p=0.2")
                  .ok());
  RouterConfig config = BaseConfig();
  // Breakers off for this test (threshold unreachably high): with both
  // sites at p=0.2, legitimate opens would turn injected-fault absorption
  // into a breaker test and make the clean-run assertion probabilistic.
  config.breaker.failure_threshold = 1 << 20;
  StartRouter(config);
  for (uint64_t id = 1; id <= 50; ++id) {
    std::string response = CallRouter(
        router_.get(),
        VerifyRequest(id, "The gold of the row whose nation is japan is 5.",
                      id));
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
        << response;
  }
  fault::FaultInjector::Global().Disarm();
}

}  // namespace
}  // namespace uctr::net
