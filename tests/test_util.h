#ifndef UCTR_TESTS_TEST_UTIL_H_
#define UCTR_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "table/table.h"

namespace uctr::testing {

/// A small Wikipedia-style relational table used across the test suite.
inline Table MakeNationsTable() {
  const std::string csv =
      "nation,gold,silver,bronze,total\n"
      "united states,10,12,8,30\n"
      "china,8,6,10,24\n"
      "japan,5,9,4,18\n"
      "germany,5,3,6,14\n"
      "france,2,4,7,13\n";
  return Table::FromCsv(csv, "medals").ValueOrDie();
}

/// A TAT-QA-style financial table: first column is the row name.
inline Table MakeFinanceTable() {
  const std::string csv =
      "item,2019,2018\n"
      "revenue,\"$1,200.5\",\"$1,000.0\"\n"
      "cost of sales,800,700\n"
      "gross profit,400.5,300\n"
      "stockholders' equity,\"2,500\",\"2,000\"\n";
  return Table::FromCsv(csv, "financials").ValueOrDie();
}

/// A random relational table for property tests: a text entity column
/// plus `numeric_cols` integer columns, no nulls, distinct entity names.
inline Table RandomTable(Rng* rng, size_t rows = 0, size_t numeric_cols = 0) {
  if (rows == 0) rows = static_cast<size_t>(rng->UniformInt(3, 10));
  if (numeric_cols == 0) {
    numeric_cols = static_cast<size_t>(rng->UniformInt(2, 4));
  }
  std::vector<std::string> header = {"name"};
  for (size_t c = 0; c < numeric_cols; ++c) {
    header.push_back("metric" + std::to_string(c + 1));
  }
  std::vector<std::vector<std::string>> data;
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row = {"entity" + std::to_string(r)};
    for (size_t c = 0; c < numeric_cols; ++c) {
      row.push_back(std::to_string(rng->UniformInt(0, 50)));
    }
    data.push_back(std::move(row));
  }
  return Table::FromStrings(header, data, "random").ValueOrDie();
}

}  // namespace uctr::testing

#endif  // UCTR_TESTS_TEST_UTIL_H_
