// Chaos suite for the fault-injection + resilience subsystem (src/fault/):
// spec parsing, deterministic injection, retry/backoff, circuit breaking,
// deadline-aware admission, scheduler shutdown races, degraded serving
// (answer-equivalence with the healthy path), and checkpointed generation
// (kill/resume byte-identity, poison-shard quarantine).
//
// Everything here runs under the ASan/TSan jobs; the randomized chaos
// schedules are seeded, so a failure reproduces from the test name alone.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "datasets/corpus.h"
#include "fault/fault.h"
#include "fault/policy.h"
#include "gen/generator.h"
#include "gen/parallel.h"
#include "obs/metrics.h"
#include "program/library.h"
#include "serve/engine.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace uctr {
namespace {

using fault::CircuitBreaker;
using fault::CircuitBreakerOptions;
using fault::FaultInjector;
using fault::FaultRule;
using fault::RetryOptions;
using fault::RetryPolicy;
using obs::MetricsRegistry;

/// Scopes the process-global injector: disarms + reseeds on entry, disarms
/// and restores the default metrics sink on exit, so no test leaks armed
/// rules into the next one (the suite also runs as one binary).
class FaultGuard {
 public:
  explicit FaultGuard(const std::string& spec = "",
                      uint64_t seed = 0xFA17ULL) {
    FaultInjector::Global().Disarm();
    FaultInjector::Global().Seed(seed);
    if (!spec.empty()) {
      Status s = FaultInjector::Global().ArmSpec(spec);
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
  }
  ~FaultGuard() {
    FaultInjector::Global().Disarm();
    FaultInjector::Global().set_metrics(nullptr);
  }
};

// ----------------------------------------------------- Status::IsTransient

TEST(StatusTransientTest, OnlyUnavailableAndDeadlineAreTransient) {
  EXPECT_TRUE(Status::Unavailable("x").IsTransient());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsTransient());
  EXPECT_FALSE(Status::OK().IsTransient());
  EXPECT_FALSE(Status::ParseError("x").IsTransient());
  EXPECT_FALSE(Status::InvalidArgument("x").IsTransient());
  EXPECT_FALSE(Status::Internal("x").IsTransient());
  EXPECT_TRUE(IsTransient(Status::Unavailable("free function")));
}

// ----------------------------------------------------------- Spec parsing

TEST(FaultSpecTest, ParsesFullGrammar) {
  std::vector<FaultRule> rules;
  ASSERT_TRUE(FaultInjector::ParseSpec(
                  "serve.index_warm=error(internal):p=0.25;"
                  "sched.dequeue = latency(5) : n=3 : after=2;"
                  "gen.*=alloc",
                  &rules)
                  .ok());
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].site, "serve.index_warm");
  EXPECT_EQ(rules[0].kind, fault::FaultKind::kError);
  EXPECT_EQ(rules[0].code, StatusCode::kInternal);
  EXPECT_DOUBLE_EQ(rules[0].probability, 0.25);
  EXPECT_EQ(rules[1].site, "sched.dequeue");
  EXPECT_EQ(rules[1].kind, fault::FaultKind::kLatency);
  EXPECT_EQ(rules[1].latency_ms, 5);
  EXPECT_EQ(rules[1].max_triggers, 3);
  EXPECT_EQ(rules[1].skip_first, 2);
  EXPECT_EQ(rules[2].site, "gen.*");
  EXPECT_EQ(rules[2].code, StatusCode::kUnavailable);
  EXPECT_NE(rules[2].message.find("allocation"), std::string::npos);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  std::vector<FaultRule> rules;
  // No '=' between site and action.
  EXPECT_FALSE(FaultInjector::ParseSpec("serve.execute", &rules).ok());
  // Unknown action and unknown status code.
  EXPECT_FALSE(FaultInjector::ParseSpec("a=explode", &rules).ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("a=error(nope)", &rules).ok());
  // latency requires a positive millis argument.
  EXPECT_FALSE(FaultInjector::ParseSpec("a=latency", &rules).ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("a=latency(0)", &rules).ok());
  // Options must be known key=value with sane ranges.
  EXPECT_FALSE(FaultInjector::ParseSpec("a=error:p=1.5", &rules).ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("a=error:bogus", &rules).ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("a=error:x=1", &rules).ok());
}

// -------------------------------------------------------------- Injection

TEST(FaultInjectorTest, DisarmedIsOkAndCheap) {
  FaultGuard guard;
  EXPECT_FALSE(FaultInjector::Global().armed());
  EXPECT_TRUE(UCTR_FAULT_POINT("anything.at_all").ok());
}

TEST(FaultInjectorTest, ExactSiteMatchInjectsTaggedStatus) {
  FaultGuard guard("serve.execute=error(execution_error)");
  Status hit = UCTR_FAULT_POINT("serve.execute");
  EXPECT_EQ(hit.code(), StatusCode::kExecutionError);
  EXPECT_NE(hit.message().find("serve.execute"), std::string::npos);
  EXPECT_TRUE(UCTR_FAULT_POINT("serve.cache_get").ok())
      << "non-matching site must pass through";
}

TEST(FaultInjectorTest, WildcardMatchesPrefix) {
  FaultGuard guard("serve.*=error");
  EXPECT_FALSE(UCTR_FAULT_POINT("serve.execute").ok());
  EXPECT_FALSE(UCTR_FAULT_POINT("serve.cache_put").ok());
  EXPECT_TRUE(UCTR_FAULT_POINT("sched.dequeue").ok());
}

TEST(FaultInjectorTest, TriggerCapAndSkipFirstBoundTheBlastRadius) {
  FaultGuard guard("a=error:n=2:after=1");
  EXPECT_TRUE(UCTR_FAULT_POINT("a").ok());   // skipped (after=1)
  EXPECT_FALSE(UCTR_FAULT_POINT("a").ok());  // trigger 1
  EXPECT_FALSE(UCTR_FAULT_POINT("a").ok());  // trigger 2
  EXPECT_TRUE(UCTR_FAULT_POINT("a").ok());   // cap reached
  EXPECT_EQ(FaultInjector::Global().injected_total(), 2u);
}

TEST(FaultInjectorTest, ProbabilityStreamIsSeedDeterministic) {
  auto run = [] {
    FaultGuard guard("p.site=error:p=0.5", /*seed=*/42);
    std::string fired;
    for (int i = 0; i < 64; ++i) {
      fired += UCTR_FAULT_POINT("p.site").ok() ? '.' : 'X';
    }
    return fired;
  };
  std::string first = run();
  EXPECT_EQ(first, run()) << "same (spec, seed) must replay the schedule";
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
}

TEST(FaultInjectorTest, LatencyRuleSleepsThenPasses) {
  FaultGuard guard("slow.site=latency(20):n=1");
  auto started = std::chrono::steady_clock::now();
  EXPECT_TRUE(UCTR_FAULT_POINT("slow.site").ok());
  auto elapsed = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - started)
                     .count();
  EXPECT_GE(elapsed, 15.0);
}

TEST(FaultInjectorTest, InjectionsAreCountedPerSite) {
  FaultGuard guard;
  MetricsRegistry metrics;
  FaultInjector::Global().set_metrics(&metrics);
  ASSERT_TRUE(FaultInjector::Global().ArmSpec("m.site=error:n=3").ok());
  for (int i = 0; i < 5; ++i) (void)UCTR_FAULT_POINT("m.site");
  EXPECT_EQ(
      metrics.counter("faults_injected_total{site=\"m.site\"}")->value(),
      3u);
}

// ------------------------------------------------------------ RetryPolicy

TEST(RetryPolicyTest, RetriesTransientFailuresUntilSuccess) {
  MetricsRegistry metrics;
  RetryOptions options;
  options.max_attempts = 5;
  RetryPolicy policy(options, /*seed=*/1, &metrics);
  std::vector<double> sleeps;
  policy.set_sleep_fn([&sleeps](double ms) { sleeps.push_back(ms); });

  int calls = 0;
  Status s = policy.Run("op", [&calls] {
    return ++calls < 3 ? Status::Unavailable("flaky") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(metrics.counter("retry_attempts_total")->value(), 3u);
  EXPECT_EQ(metrics.counter("retry_backoffs_total")->value(), 2u);
  EXPECT_EQ(metrics.counter("retry_exhausted_total")->value(), 0u);
}

TEST(RetryPolicyTest, PermanentFailuresAreNeverRetried) {
  RetryPolicy policy;
  policy.set_sleep_fn([](double) { FAIL() << "must not back off"; });
  int calls = 0;
  Status s = policy.Run("op", [&calls] {
    ++calls;
    return Status::ParseError("malformed table");
  });
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(calls, 1) << "retrying cannot fix a parse error";
}

TEST(RetryPolicyTest, ExhaustsAfterMaxAttempts) {
  MetricsRegistry metrics;
  RetryOptions options;
  options.max_attempts = 3;
  RetryPolicy policy(options, 1, &metrics);
  policy.set_sleep_fn([](double) {});
  int calls = 0;
  Status s = policy.Run("op", [&calls] {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(metrics.counter("retry_exhausted_total")->value(), 1u);
}

TEST(RetryPolicyTest, BackoffIsExponentialAndCapped) {
  RetryOptions options;
  options.max_attempts = 6;
  options.initial_backoff_ms = 1.0;
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 4.0;
  options.jitter_fraction = 0.0;  // deterministic shape
  options.backoff_budget_ms = 0.0;
  RetryPolicy policy(options);
  std::vector<double> sleeps;
  policy.set_sleep_fn([&sleeps](double ms) { sleeps.push_back(ms); });
  (void)policy.Run("op", [] { return Status::Unavailable("down"); });
  ASSERT_EQ(sleeps.size(), 5u);
  EXPECT_DOUBLE_EQ(sleeps[0], 1.0);
  EXPECT_DOUBLE_EQ(sleeps[1], 2.0);
  EXPECT_DOUBLE_EQ(sleeps[2], 4.0);
  EXPECT_DOUBLE_EQ(sleeps[3], 4.0);  // per-sleep cap
  EXPECT_DOUBLE_EQ(sleeps[4], 4.0);
}

TEST(RetryPolicyTest, JitterStaysInsideTheConfiguredBand) {
  RetryOptions options;
  options.max_attempts = 20;
  options.initial_backoff_ms = 10.0;
  options.backoff_multiplier = 1.0;
  options.max_backoff_ms = 10.0;
  options.jitter_fraction = 0.5;
  options.backoff_budget_ms = 0.0;
  RetryPolicy policy(options, /*seed=*/7);
  std::vector<double> sleeps;
  policy.set_sleep_fn([&sleeps](double ms) { sleeps.push_back(ms); });
  (void)policy.Run("op", [] { return Status::Unavailable("down"); });
  ASSERT_EQ(sleeps.size(), 19u);
  for (double ms : sleeps) {
    EXPECT_GE(ms, 5.0);
    EXPECT_LT(ms, 15.0);
  }
}

TEST(RetryPolicyTest, BackoffBudgetStopsRetryingEarly) {
  RetryOptions options;
  options.max_attempts = 10;
  options.initial_backoff_ms = 10.0;
  options.backoff_multiplier = 1.0;
  options.max_backoff_ms = 10.0;
  options.jitter_fraction = 0.0;
  options.backoff_budget_ms = 25.0;  // room for two 10ms sleeps only
  RetryPolicy policy(options);
  policy.set_sleep_fn([](double) {});
  int calls = 0;
  Status s = policy.Run("op", [&calls] {
    ++calls;
    return Status::Unavailable("down");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(calls, 3) << "attempts bounded by the sleep budget, not "
                         "max_attempts";
}

// ---------------------------------------------------------- CircuitBreaker

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndRejects) {
  MetricsRegistry metrics;
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_duration_ms = 100.0;
  CircuitBreaker breaker("dep", options, &metrics);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow()) << "open circuit must shed calls";
  EXPECT_EQ(metrics.counter("circuit_open_total{breaker=\"dep\"}")->value(),
            1u);
  EXPECT_GE(
      metrics.counter("circuit_rejected_total{breaker=\"dep\"}")->value(),
      1u);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccessReopensOnFailure) {
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  options.open_duration_ms = 100.0;
  CircuitBreaker breaker("dep", options);
  auto t = CircuitBreaker::Clock::now();
  breaker.set_clock_fn([&t] { return t; });

  auto trip = [&] {
    for (int i = 0; i < 2; ++i) {
      if (breaker.Allow()) breaker.RecordFailure();
    }
    ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  };
  trip();
  EXPECT_FALSE(breaker.Allow()) << "cooldown not elapsed yet";

  // After the cooldown exactly one probe is let through at a time.
  t += std::chrono::milliseconds(150);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow()) << "second caller must wait for the probe";
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordSuccess();

  // A failed probe re-opens immediately.
  trip();
  t += std::chrono::milliseconds(150);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, RunWrapsAllowAndRecord) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_duration_ms = 10000.0;
  CircuitBreaker breaker("model", options);
  EXPECT_FALSE(
      breaker.Run([] { return Status::Internal("dependency blew up"); })
          .ok());
  Status rejected = breaker.Run([] { return Status::OK(); });
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.message().find("circuit"), std::string::npos);
}

// ------------------------------------------------- Scheduler resilience

// A job that blocks until released, to hold a worker busy.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  bool entered = false;

  void WaitUntilEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void Enter() {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [this] { return open; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
};

TEST(SchedulerResilienceTest, ShutdownRejectionIsDistinctFromBackpressure) {
  serve::SchedulerConfig config;
  config.num_workers = 1;
  config.queue_capacity = 4;
  MetricsRegistry metrics;
  serve::Scheduler scheduler(config, &metrics);
  scheduler.Shutdown();

  Status rejected = scheduler.Submit({[] {}, nullptr});
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.message().find("shut down"), std::string::npos);
  EXPECT_EQ(metrics.counter("jobs_rejected_shutdown_total")->value(), 1u);
  EXPECT_EQ(metrics.counter("jobs_rejected_total")->value(), 0u)
      << "teardown must not inflate the backpressure counter";
}

TEST(SchedulerResilienceTest, ShedsJobsWhoseDeadlineCannotBeMet) {
  serve::SchedulerConfig config;
  config.num_workers = 1;
  config.queue_capacity = 16;
  config.deadline_admission = true;
  MetricsRegistry metrics;
  serve::Scheduler scheduler(config, &metrics);

  // Prime the duration EMA with a deliberately slow job.
  ASSERT_TRUE(scheduler
                  .Submit({[] {
                             std::this_thread::sleep_for(
                                 std::chrono::milliseconds(30));
                           },
                           nullptr})
                  .ok());
  scheduler.Drain();
  ASSERT_GT(scheduler.EstimatedJobMicros(), 10000.0);

  // Occupy the worker and put one job in the queue; the projected wait
  // for anything behind it is now ~one EMA (≈30ms).
  Gate gate;
  ASSERT_TRUE(scheduler.Submit({[&gate] { gate.Enter(); }, nullptr}).ok());
  gate.WaitUntilEntered();
  ASSERT_TRUE(scheduler.Submit({[] {}, nullptr}).ok());

  serve::Scheduler::Job doomed;
  std::atomic<bool> ran{false};
  doomed.run = [&ran] { ran = true; };
  doomed.deadline =
      serve::Scheduler::Clock::now() + std::chrono::milliseconds(1);
  Status shed = scheduler.Submit(std::move(doomed));
  EXPECT_EQ(shed.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(shed.message().find("shed"), std::string::npos);
  EXPECT_EQ(metrics.counter("jobs_shed_deadline_total")->value(), 1u);

  // A generous deadline with the identical queue state is admitted.
  serve::Scheduler::Job fine;
  fine.run = [] {};
  fine.deadline =
      serve::Scheduler::Clock::now() + std::chrono::seconds(10);
  EXPECT_TRUE(scheduler.Submit(std::move(fine)).ok());

  gate.Open();
  scheduler.Drain();
  EXPECT_FALSE(ran.load()) << "shed job must never run";
}

// Satellite: concurrent Submit/Shutdown/Drain under injected dequeue
// latency (widens the race windows; meant for the TSan job). The invariant
// is exactly-once disposition: every accepted job either ran or expired.
TEST(SchedulerRaceTest, ConcurrentSubmitShutdownDrainUnderLatencyFaults) {
  FaultGuard guard("sched.dequeue=latency(1):p=0.3", /*seed=*/0xACE);
  for (int round = 0; round < 4; ++round) {
    serve::SchedulerConfig config;
    config.num_workers = 4;
    config.queue_capacity = 16;
    serve::Scheduler scheduler(config);

    std::atomic<int> accepted{0};
    std::atomic<int> ran{0};
    std::atomic<int> expired{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&scheduler, &accepted, &ran, &expired, t] {
        for (int i = 0; i < 40; ++i) {
          serve::Scheduler::Job job;
          job.run = [&ran] { ran.fetch_add(1); };
          job.on_expired = [&expired] { expired.fetch_add(1); };
          if ((t + i) % 5 == 0) {
            // Some jobs carry deadlines tight enough that the injected
            // dequeue latency can expire them in the queue.
            job.deadline = serve::Scheduler::Clock::now() +
                           std::chrono::microseconds(500);
          }
          if (scheduler.Submit(std::move(job)).ok()) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    std::thread drainer([&scheduler] { scheduler.Drain(); });
    std::thread shutter([&scheduler] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      scheduler.Shutdown();
    });
    for (std::thread& t : submitters) t.join();
    drainer.join();
    shutter.join();
    EXPECT_EQ(ran.load() + expired.load(), accepted.load())
        << "round " << round
        << ": every accepted job must run or expire exactly once";
  }
}

// ------------------------------------------------------ Degraded serving

const char* kMedalsCsv =
    "nation,gold,silver,bronze,total\n"
    "united states,10,12,8,30\n"
    "china,8,6,10,24\n"
    "japan,5,9,4,18\n";

const char* kFinanceCsv =
    "item,2019,2018\n"
    "revenue,\"$2,350.4\",\"$2,014.9\"\n"
    "net income,\"$310.5\",\"$225.1\"\n";

std::string JsonEscapeNewlines(std::string text) {
  std::string out;
  for (char c : text) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

std::string VerifyRequest(uint64_t id, const std::string& csv,
                          const std::string& claim) {
  return "{\"id\":" + std::to_string(id) + ",\"op\":\"verify\",\"table\":\"" +
         JsonEscapeNewlines(csv) + "\",\"query\":\"" + claim + "\"}";
}

std::string AnswerRequest(uint64_t id, const std::string& csv,
                          const std::string& question) {
  return "{\"id\":" + std::to_string(id) + ",\"op\":\"answer\",\"table\":\"" +
         JsonEscapeNewlines(csv) + "\",\"query\":\"" + question + "\"}";
}

const serve::InferenceEngine& SharedEngine() {
  static const serve::InferenceEngine engine = [] {
    serve::EngineConfig config;
    return serve::InferenceEngine::Create(config, "", "").ValueOrDie();
  }();
  return engine;
}

/// A degraded response must be the healthy response plus the marker and
/// nothing else — strip it and compare bytes.
std::string StripDegradedMarker(std::string response) {
  const std::string marker = ",\"degraded\":true";
  size_t pos = response.find(marker);
  if (pos != std::string::npos) response.erase(pos, marker.size());
  return response;
}

TEST(ServerDegradedTest, IndexWarmFaultFallsBackToAnswerIdenticalScan) {
  std::string request = VerifyRequest(
      1, kMedalsCsv, "The gold of the row whose nation is japan is 5.");
  std::string healthy;
  {
    FaultGuard clean;
    serve::ServerConfig config;
    config.scheduler.num_workers = 1;
    serve::Server server(&SharedEngine(), config);
    healthy = server.HandleLine(request);
  }
  ASSERT_NE(healthy.find("\"status\":\"ok\""), std::string::npos) << healthy;
  ASSERT_EQ(healthy.find("degraded"), std::string::npos) << healthy;

  FaultGuard guard("serve.index_warm=error");
  MetricsRegistry metrics;
  serve::ServerConfig config;
  config.metrics = &metrics;
  config.scheduler.num_workers = 1;
  serve::Server server(&SharedEngine(), config);
  std::string degraded = server.HandleLine(request);
  EXPECT_NE(degraded.find("\"degraded\":true"), std::string::npos)
      << degraded;
  EXPECT_EQ(StripDegradedMarker(degraded), healthy)
      << "scan fallback must be answer-identical to the indexed path";
  EXPECT_GE(metrics.counter("degraded_index_fallback_total")->value(), 1u);
  EXPECT_GE(metrics.counter("responses_degraded_total")->value(), 1u);
}

TEST(ServerDegradedTest, CacheFaultsDegradeToBypassNotFailure) {
  FaultGuard guard("serve.cache_get=error;serve.cache_put=error");
  MetricsRegistry metrics;
  serve::ServerConfig config;
  config.metrics = &metrics;
  config.scheduler.num_workers = 1;
  serve::Server server(&SharedEngine(), config);
  std::string request = AnswerRequest(
      2, kFinanceCsv, "Which item has the highest 2019?");
  std::string first = server.HandleLine(request);
  std::string second = server.HandleLine(request);
  EXPECT_NE(first.find("\"status\":\"ok\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"degraded\":true"), std::string::npos) << first;
  EXPECT_EQ(first, second) << "cache bypass must recompute the same bytes";
  EXPECT_GE(metrics.counter("degraded_cache_bypass_total")->value(), 2u);
  EXPECT_EQ(metrics.counter("cache_hits_total")->value(), 0u)
      << "faulted cache must not serve hits";
}

TEST(ServerDegradedTest, TransientParseFaultIsRetriedToSuccess) {
  // Two transient faults, then the real parse: the default 3-attempt
  // retry absorbs them and the response is healthy (not even degraded).
  FaultGuard guard("serve.table_parse=error(unavailable):n=2");
  MetricsRegistry metrics;
  serve::ServerConfig config;
  config.metrics = &metrics;
  config.scheduler.num_workers = 1;
  serve::Server server(&SharedEngine(), config);
  std::string response = server.HandleLine(VerifyRequest(
      3, kMedalsCsv, "The gold of the row whose nation is china is 8."));
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
      << response;
  EXPECT_EQ(response.find("degraded"), std::string::npos) << response;
  EXPECT_EQ(metrics.counter("retry_backoffs_total")->value(), 2u);
  EXPECT_EQ(metrics.counter("responses_error_total")->value(), 0u);
}

TEST(ServerDegradedTest, PermanentExecuteFaultFailsAfterRetryBudget) {
  FaultGuard guard("serve.execute=error(internal)");
  MetricsRegistry metrics;
  serve::ServerConfig config;
  config.metrics = &metrics;
  config.scheduler.num_workers = 1;
  serve::Server server(&SharedEngine(), config);
  std::string response = server.HandleLine(VerifyRequest(
      4, kMedalsCsv, "The gold of the row whose nation is china is 8."));
  EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("execute"), std::string::npos) << response;
  EXPECT_EQ(metrics.counter("retry_backoffs_total")->value(), 0u)
      << "kInternal is permanent; it must not be retried";
}

TEST(ServerDegradedTest, AdmissionFaultRejectsLikeBackpressure) {
  FaultGuard guard("serve.submit=error");
  serve::ServerConfig config;
  config.scheduler.num_workers = 1;
  serve::Server server(&SharedEngine(), config);
  std::string response = server.HandleLine(VerifyRequest(
      5, kMedalsCsv, "The gold of the row whose nation is china is 8."));
  EXPECT_NE(response.find("\"status\":\"rejected\""), std::string::npos)
      << response;
}

// ------------------------------------------------------------ Chaos suite

/// The named injection sites the chaos schedules draw from. Keep this in
/// sync with the UCTR_FAULT_POINT sites listed in DESIGN.md; the suite
/// asserts the count so new sites get chaos coverage.
const std::vector<std::string>& ChaosSites() {
  static const std::vector<std::string> sites = {
      "serve.submit",       "serve.cache_get",  "serve.cache_put",
      "serve.table_parse",  "serve.execute",    "serve.index_warm",
      "sched.dequeue",      "table.from_csv",   "gen.attempt",
      "gen.shard",          "gen.checkpoint_write",
  };
  return sites;
}

TEST(ChaosTest, CoversAtLeastTenInjectionSites) {
  EXPECT_GE(ChaosSites().size(), 10u);
}

/// Builds a randomized (but seeded) fault spec arming a subset of sites
/// with mixed error codes, probabilities, trigger caps, and small latency
/// spikes.
std::string RandomFaultSpec(Rng* rng) {
  static const char* kCodes[] = {"unavailable", "deadline_exceeded",
                                 "internal", "parse_error"};
  std::string spec;
  for (const std::string& site : ChaosSites()) {
    if (!rng->Bernoulli(0.6)) continue;
    if (!spec.empty()) spec += ";";
    if (rng->Bernoulli(0.25)) {
      spec += site + "=latency(" +
              std::to_string(rng->UniformInt(1, 3)) + ")";
    } else {
      spec += site + "=error(" +
              std::string(kCodes[rng->UniformInt(0, 3)]) + ")";
    }
    spec += ":p=0." + std::to_string(rng->UniformInt(2, 6));
    if (rng->Bernoulli(0.5)) {
      spec += ":n=" + std::to_string(rng->UniformInt(1, 8));
    }
  }
  return spec;
}

// Randomized fault schedules through the full serve pipeline: every
// request gets exactly one well-formed response, nothing hangs, and every
// OK response — degraded or not — is answer-identical to the healthy run.
TEST(ChaosTest, RandomSchedulesNeverHangAndStayAnswerIdentical) {
  std::vector<std::string> requests;
  for (uint64_t i = 0; i < 6; ++i) {
    requests.push_back(VerifyRequest(
        100 + i, kMedalsCsv,
        i % 2 == 0 ? "The gold of the row whose nation is japan is 5."
                   : "The total of the row whose nation is china is 24."));
    requests.push_back(AnswerRequest(
        200 + i, kFinanceCsv,
        i % 2 == 0 ? "Which item has the highest 2019?"
                   : "What is the 2018 of net income?"));
  }

  // Healthy baseline, keyed by the request id embedded in the response.
  std::map<std::string, std::string> healthy;
  {
    FaultGuard clean;
    serve::ServerConfig config;
    config.scheduler.num_workers = 2;
    serve::Server server(&SharedEngine(), config);
    for (const std::string& request : requests) {
      std::string response = server.HandleLine(request);
      ASSERT_NE(response.find("\"status\":\"ok\""), std::string::npos)
          << response;
      std::string id =
          response.substr(0, response.find(','));  // {"id":N
      healthy[id] = response;
    }
  }

  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng schedule_rng(seed * 7919);
    std::string spec = RandomFaultSpec(&schedule_rng);
    FaultGuard guard(spec, /*seed=*/seed);

    serve::ServerConfig config;
    config.scheduler.num_workers = 3;
    serve::Server server(&SharedEngine(), config);

    std::mutex mu;
    std::vector<std::string> responses;
    for (const std::string& request : requests) {
      server.SubmitLine(request, [&mu, &responses](std::string response) {
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(std::move(response));
      });
    }
    server.Drain();

    ASSERT_EQ(responses.size(), requests.size())
        << "seed " << seed << " spec '" << spec
        << "': exactly one response per request";
    for (const std::string& response : responses) {
      bool ok = response.find("\"status\":\"ok\"") != std::string::npos;
      bool error =
          response.find("\"status\":\"error\"") != std::string::npos;
      bool rejected =
          response.find("\"status\":\"rejected\"") != std::string::npos;
      ASSERT_TRUE(ok || error || rejected)
          << "seed " << seed << ": malformed response " << response;
      if (ok) {
        std::string id = response.substr(0, response.find(','));
        ASSERT_TRUE(healthy.count(id)) << response;
        EXPECT_EQ(StripDegradedMarker(response), healthy[id])
            << "seed " << seed << " spec '" << spec
            << "': degraded response diverged from the healthy answer";
      }
    }
  }
}

// -------------------------------------------------- Checkpointed generation

std::vector<TableWithText> MakeCorpus(uint64_t seed, size_t n) {
  Rng rng(seed);
  datasets::CorpusConfig config;
  config.num_tables = n;
  datasets::CorpusGenerator gen(config, &rng);
  return gen.Generate();
}

GenerationConfig FvConfig() {
  GenerationConfig config;
  config.task = TaskType::kFactVerification;
  config.program_types = {ProgramType::kLogicalForm};
  config.samples_per_table = 6;
  config.unknown_fraction = 0.1;
  return config;
}

std::string Fingerprint(const Dataset& data) {
  std::string out;
  for (const Sample& s : data.samples) {
    out += s.sentence + "|" + LabelToString(s.label) + "|" +
           s.program.text + "\n";
  }
  return out;
}

/// Fresh per-test scratch directory under the system temp dir.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("uctr_fault_test_" + tag + "_" +
              std::to_string(static_cast<unsigned long>(::getpid()))))
                .string();
    std::filesystem::remove_all(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(CheckpointTest, UninterruptedRunMatchesParallelByteForByte) {
  FaultGuard clean;
  ScratchDir dir("full");
  auto corpus = MakeCorpus(11, 6);
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config = FvConfig();

  Dataset baseline = GenerateDatasetParallel(config, &library, corpus, 5, 4);
  CheckpointOptions checkpoint;
  checkpoint.directory = dir.path();
  CheckpointReport report;
  auto data = GenerateDatasetCheckpointed(config, &library, corpus, 5, 4,
                                          checkpoint, &report);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.generated, corpus.size());
  EXPECT_EQ(report.resumed, 0u);
  EXPECT_EQ(Fingerprint(*data), Fingerprint(baseline));
}

TEST(CheckpointTest, SlicedRunsResumeToByteIdenticalDataset) {
  FaultGuard clean;
  ScratchDir dir("sliced");
  auto corpus = MakeCorpus(13, 7);
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config = FvConfig();
  Dataset baseline = GenerateDatasetParallel(config, &library, corpus, 9, 2);

  CheckpointOptions checkpoint;
  checkpoint.directory = dir.path();
  checkpoint.max_shards_this_run = 2;  // each "run" dies after two shards
  CheckpointReport report;
  Result<Dataset> data = Status::Internal("never ran");
  size_t runs = 0;
  do {
    data = GenerateDatasetCheckpointed(config, &library, corpus, 9,
                                       /*num_threads=*/2, checkpoint,
                                       &report);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    ASSERT_LT(++runs, 10u) << "checkpointed runs failed to converge";
  } while (!report.complete);
  EXPECT_EQ(runs, 4u);  // ceil(7 / 2)
  EXPECT_GT(report.resumed, 0u) << "the final run must load prior shards";
  EXPECT_EQ(Fingerprint(*data), Fingerprint(baseline));
}

TEST(CheckpointTest, WriteFaultsFailShardsThatResumeRegenerates) {
  ScratchDir dir("faulted");
  auto corpus = MakeCorpus(17, 5);
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config = FvConfig();
  Dataset baseline = GenerateDatasetParallel(config, &library, corpus, 3, 1);

  CheckpointOptions checkpoint;
  checkpoint.directory = dir.path();
  CheckpointReport report;
  {
    // Run 1: every checkpoint write faults — the "kill" leaves nothing
    // but the manifest and attempts log behind.
    FaultGuard guard("gen.checkpoint_write=error(internal)");
    auto crashed = GenerateDatasetCheckpointed(config, &library, corpus, 3,
                                               1, checkpoint, &report);
    ASSERT_TRUE(crashed.ok()) << crashed.status().ToString();
    EXPECT_EQ(report.failed, corpus.size());
    EXPECT_FALSE(report.complete);
    EXPECT_TRUE(crashed->empty());
  }
  {
    // Run 2, faults cleared: resumes and completes byte-identically.
    FaultGuard clean;
    auto resumed = GenerateDatasetCheckpointed(config, &library, corpus, 3,
                                               1, checkpoint, &report);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.generated, corpus.size());
    EXPECT_EQ(Fingerprint(*resumed), Fingerprint(baseline));
  }
}

TEST(CheckpointTest, TransientShardFaultsAreRetriedInRun) {
  FaultGuard guard("gen.shard=error(unavailable):n=2");
  ScratchDir dir("transient");
  auto corpus = MakeCorpus(19, 4);
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config = FvConfig();
  Dataset baseline = GenerateDatasetParallel(config, &library, corpus, 7, 1);

  CheckpointOptions checkpoint;
  checkpoint.directory = dir.path();
  CheckpointReport report;
  auto data = GenerateDatasetCheckpointed(config, &library, corpus, 7, 1,
                                          checkpoint, &report);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_TRUE(report.complete)
      << "two transient faults must be absorbed by the shard retry policy";
  EXPECT_EQ(Fingerprint(*data), Fingerprint(baseline));
}

TEST(CheckpointTest, RejectsCheckpointFromDifferentRun) {
  FaultGuard clean;
  ScratchDir dir("mismatch");
  auto corpus = MakeCorpus(23, 3);
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config = FvConfig();
  CheckpointOptions checkpoint;
  checkpoint.directory = dir.path();
  ASSERT_TRUE(GenerateDatasetCheckpointed(config, &library, corpus, 1, 1,
                                          checkpoint)
                  .ok());
  // Same directory, different seed: refused, not silently mixed.
  auto mixed =
      GenerateDatasetCheckpointed(config, &library, corpus, 2, 1, checkpoint);
  EXPECT_EQ(mixed.status().code(), StatusCode::kInvalidArgument);
  // Different corpus under the original seed: also refused.
  auto other_corpus = MakeCorpus(29, 3);
  auto swapped = GenerateDatasetCheckpointed(config, &library, other_corpus,
                                             1, 1, checkpoint);
  EXPECT_EQ(swapped.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, QuarantinesShardThatKeepsCrashing) {
  FaultGuard clean;
  ScratchDir dir("poison");
  auto corpus = MakeCorpus(31, 4);
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config = FvConfig();

  // Simulate three prior runs that each died inside shard 2: three `begin`
  // markers with no completion.
  std::filesystem::create_directories(dir.path());
  {
    std::ofstream attempts(dir.path() + "/attempts.log");
    attempts << "begin 2\nbegin 2\nbegin 2\n";
  }
  CheckpointOptions checkpoint;
  checkpoint.directory = dir.path();
  checkpoint.quarantine_after = 3;
  CheckpointReport report;
  auto data = GenerateDatasetCheckpointed(config, &library, corpus, 37, 2,
                                          checkpoint, &report);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(report.poisoned, 1u);
  EXPECT_FALSE(report.complete) << "a poisoned shard is not 'done'";
  EXPECT_EQ(report.generated, corpus.size() - 1);
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/shard-2.jsonl"))
      << "the poisoned shard must not be attempted again";

  // The quarantine is persistent: a fresh resume still skips shard 2 and
  // generates nothing new.
  auto again = GenerateDatasetCheckpointed(config, &library, corpus, 37, 2,
                                           checkpoint, &report);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(report.poisoned, 1u);
  EXPECT_EQ(report.generated, 0u);
  EXPECT_EQ(report.resumed, corpus.size() - 1);
}

TEST(CheckpointTest, CorruptShardFileIsReportedNotSilentlyDropped) {
  FaultGuard clean;
  ScratchDir dir("corrupt");
  auto corpus = MakeCorpus(41, 3);
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config = FvConfig();
  CheckpointOptions checkpoint;
  checkpoint.directory = dir.path();
  ASSERT_TRUE(GenerateDatasetCheckpointed(config, &library, corpus, 1, 1,
                                          checkpoint)
                  .ok());
  {
    std::ofstream shard(dir.path() + "/shard-1.jsonl",
                        std::ios::binary | std::ios::trunc);
    shard << "{ this is not a sample";
  }
  auto resumed =
      GenerateDatasetCheckpointed(config, &library, corpus, 1, 1, checkpoint);
  EXPECT_EQ(resumed.status().code(), StatusCode::kInternal);
  EXPECT_NE(resumed.status().message().find("shard"), std::string::npos);
}

// ------------------------------------------------ Generator quarantine

TEST(GeneratorQuarantineTest, PoisonTemplatesStopEatingTheAttemptBudget) {
  FaultGuard guard("gen.attempt=error(execution_error)");
  auto corpus = MakeCorpus(43, 1);
  static const TemplateLibrary& library = TemplateLibrary::Builtin();
  GenerationConfig config = FvConfig();
  config.quarantine_after = 2;

  obs::Counter* quarantined =
      obs::DefaultRegistry().counter("gen_templates_quarantined_total");
  uint64_t before = quarantined->value();
  Rng rng(1);
  Generator generator(config, &library, &rng);
  std::vector<Sample> samples = generator.GenerateFromTable(corpus[0]);
  EXPECT_TRUE(samples.empty()) << "every attempt faults";
  EXPECT_GT(quarantined->value(), before)
      << "templates that fail repeatedly must be quarantined";
}

TEST(GeneratorQuarantineTest, QuarantineKnobDoesNotPerturbHealthyRuns) {
  FaultGuard clean;
  auto corpus = MakeCorpus(47, 2);
  static const TemplateLibrary& library = TemplateLibrary::Builtin();

  GenerationConfig without = FvConfig();  // quarantine_after = 0
  GenerationConfig with = FvConfig();
  // Above the per-table attempt ceiling (samples_per_table * max_attempts),
  // so quarantine can never fire organically and any fingerprint
  // divergence is the knob itself perturbing the rng sequence.
  with.quarantine_after = 1000;

  Rng rng_a(9);
  Generator gen_a(without, &library, &rng_a);
  Rng rng_b(9);
  Generator gen_b(with, &library, &rng_b);
  Dataset a;
  Dataset b;
  for (const TableWithText& entry : corpus) {
    for (Sample& s : gen_a.GenerateFromTable(entry)) {
      a.samples.push_back(std::move(s));
    }
    for (Sample& s : gen_b.GenerateFromTable(entry)) {
      b.samples.push_back(std::move(s));
    }
  }
  EXPECT_EQ(Fingerprint(a), Fingerprint(b))
      << "with no failures the quarantine path must not consume rng";
}

}  // namespace
}  // namespace uctr
