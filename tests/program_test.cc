#include <gtest/gtest.h>

#include <set>

#include "program/library.h"
#include "program/program.h"
#include "program/sampler.h"
#include "program/template.h"
#include "program/templatizer.h"
#include "tests/test_util.h"

namespace uctr {
namespace {

using testing::MakeFinanceTable;
using testing::MakeNationsTable;

// --------------------------------------------------------------- Program

TEST(ProgramTest, DispatchesByType) {
  Table t = MakeNationsTable();
  Program sql{ProgramType::kSql, "SELECT nation FROM w WHERE gold = 10"};
  EXPECT_EQ(sql.Execute(t)->scalar().ToDisplayString(), "united states");

  Program lf{ProgramType::kLogicalForm,
             "eq { max { all_rows ; gold } ; 10 }"};
  EXPECT_TRUE(lf.Execute(t)->scalar().boolean());

  Program ar{ProgramType::kArithmetic, "add(1, 2)"};
  EXPECT_DOUBLE_EQ(ar.Execute(t)->scalar().number(), 3.0);
}

TEST(ProgramTest, ValidateChecksSyntaxOnly) {
  Program good{ProgramType::kSql, "SELECT no_such_col FROM w"};
  EXPECT_TRUE(good.Validate().ok());  // parses; execution would fail
  Program bad{ProgramType::kSql, "SELEC nation FROM w"};
  EXPECT_FALSE(bad.Validate().ok());
}

// -------------------------------------------------------------- Template

TEST(TemplateTest, ParsesPlaceholders) {
  auto t = ProgramTemplate::Make(
               ProgramType::kSql,
               "SELECT [{c1}] FROM w WHERE [{c2:num}] > '{v1@c2}'", "span")
               .ValueOrDie();
  ASSERT_EQ(t.placeholders.size(), 3u);
  EXPECT_EQ(t.placeholders[0].kind, Placeholder::Kind::kColumn);
  EXPECT_FALSE(t.placeholders[0].has_type_constraint);
  EXPECT_TRUE(t.placeholders[1].has_type_constraint);
  EXPECT_EQ(t.placeholders[1].column_type, ColumnType::kNumber);
  EXPECT_EQ(t.placeholders[2].kind, Placeholder::Kind::kValue);
  EXPECT_EQ(t.placeholders[2].column_id, "c2");
}

TEST(TemplateTest, LogicBracesAreNotPlaceholders) {
  auto t = ProgramTemplate::Make(
               ProgramType::kLogicalForm,
               "eq { hop { filter_eq { all_rows ; {c1} ; {v1@c1} } ; {c2} } "
               "; {derive} }",
               "unique", "c2")
               .ValueOrDie();
  // Exactly c1, v1, c2, derive.
  ASSERT_EQ(t.placeholders.size(), 4u);
  EXPECT_TRUE(t.HasDerive());
}

TEST(TemplateTest, FillSubstitutesEverySlot) {
  auto t = ProgramTemplate::Make(ProgramType::kSql,
                                 "SELECT [{c1}] FROM w WHERE [{c2}] = "
                                 "'{v1@c2}'")
               .ValueOrDie();
  auto filled = t.Fill({{"c1", "nation"}, {"c2", "gold"}, {"v1", "10"}})
                    .ValueOrDie();
  EXPECT_EQ(filled, "SELECT [nation] FROM w WHERE [gold] = '10'");
  EXPECT_FALSE(t.Fill({{"c1", "nation"}}).ok());  // missing bindings
}

TEST(TemplateTest, RejectsUnknownValueColumn) {
  EXPECT_FALSE(ProgramTemplate::Make(ProgramType::kSql,
                                     "SELECT [{c1}] FROM w WHERE x = "
                                     "'{v1@c9}'")
                   .ok());
}

TEST(TemplateTest, DeduplicateDropsRepeats) {
  auto a = ProgramTemplate::Make(ProgramType::kSql, "SELECT [{c1}] FROM w")
               .ValueOrDie();
  auto dedup = DeduplicateTemplates({a, a, a});
  EXPECT_EQ(dedup.size(), 1u);
}

// --------------------------------------------------------------- Library

TEST(LibraryTest, BuiltinTemplatesAreWellFormed) {
  TemplateLibrary lib = TemplateLibrary::Builtin();
  EXPECT_GE(lib.size(), 50u);
  EXPECT_GE(lib.OfType(ProgramType::kSql).size(), 15u);
  EXPECT_GE(lib.OfType(ProgramType::kLogicalForm).size(), 20u);
  EXPECT_GE(lib.OfType(ProgramType::kArithmetic).size(), 12u);
}

TEST(LibraryTest, CoversPaperReasoningTypes) {
  TemplateLibrary lib = TemplateLibrary::Builtin();
  for (const char* tag :
       {"count", "superlative", "comparative", "aggregation", "majority",
        "unique", "ordinal", "arithmetic", "span", "conjunction"}) {
    EXPECT_FALSE(lib.OfReasoningType(tag).empty()) << tag;
  }
}

// --------------------------------------------------------------- Sampler

TEST(SamplerTest, SqlSamplingProducesExecutablePrograms) {
  Table t = MakeNationsTable();
  Rng rng(42);
  ProgramSampler sampler(&rng);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  int successes = 0;
  for (const auto& tmpl : lib.OfType(ProgramType::kSql)) {
    for (int trial = 0; trial < 10; ++trial) {
      auto s = sampler.Sample(tmpl, t);
      if (s.ok()) {
        ++successes;
        EXPECT_FALSE(s->result.values.empty());
        EXPECT_TRUE(s->program.Validate().ok()) << s->program.text;
      }
    }
  }
  EXPECT_GT(successes, 50);  // most random fills execute
}

TEST(SamplerTest, ArithSamplingOnFinanceTable) {
  Table t = MakeFinanceTable();
  Rng rng(7);
  ProgramSampler sampler(&rng);
  TemplateLibrary lib = TemplateLibrary::Builtin();
  int successes = 0;
  for (const auto& tmpl : lib.OfType(ProgramType::kArithmetic)) {
    for (int trial = 0; trial < 10; ++trial) {
      if (auto s = sampler.Sample(tmpl, t); s.ok()) {
        ++successes;
        EXPECT_TRUE(s->result.scalar().is_number() ||
                    s->result.scalar().is_bool());
      }
    }
  }
  EXPECT_GT(successes, 40);
}

TEST(SamplerTest, ClaimSamplingDerivesTrueClaims) {
  Table t = MakeNationsTable();
  Rng rng(11);
  ProgramSampler sampler(&rng);
  auto tmpl = ProgramTemplate::Make(
                  ProgramType::kLogicalForm,
                  "eq { hop { filter_eq { all_rows ; {c1:text} ; {v1@c1} } ; "
                  "{c2} } ; {derive} }",
                  "unique", "c2")
                  .ValueOrDie();
  int trues = 0, total = 0;
  for (int i = 0; i < 30; ++i) {
    auto s = sampler.SampleClaim(tmpl, t, /*target_true=*/true);
    if (!s.ok()) continue;
    ++total;
    if (s->result.scalar().boolean()) ++trues;
  }
  ASSERT_GT(total, 20);
  EXPECT_EQ(trues, total);  // derived claims are always supported
}

TEST(SamplerTest, ClaimSamplingCorruptsToFalse) {
  Table t = MakeNationsTable();
  Rng rng(13);
  ProgramSampler sampler(&rng);
  auto tmpl = ProgramTemplate::Make(
                  ProgramType::kLogicalForm,
                  "eq { count { filter_eq { all_rows ; {c1} ; {v1@c1} } } ; "
                  "{derive} }",
                  "count")
                  .ValueOrDie();
  int falses = 0, total = 0;
  for (int i = 0; i < 30; ++i) {
    auto s = sampler.SampleClaim(tmpl, t, /*target_true=*/false);
    if (!s.ok()) continue;
    ++total;
    if (!s->result.scalar().boolean()) ++falses;
  }
  ASSERT_GT(total, 20);
  EXPECT_EQ(falses, total);  // numeric corruption always flips counts
}

TEST(SamplerTest, StringDeriveCorruptionUsesDistractors) {
  Table t = MakeNationsTable();
  Rng rng(17);
  ProgramSampler sampler(&rng);
  auto tmpl = ProgramTemplate::Make(
                  ProgramType::kLogicalForm,
                  "eq { hop { argmax { all_rows ; {c1:num} } ; {c2:text} } ; "
                  "{derive} }",
                  "superlative", "c2")
                  .ValueOrDie();
  int falses = 0, total = 0;
  for (int i = 0; i < 30; ++i) {
    auto s = sampler.SampleClaim(tmpl, t, /*target_true=*/false);
    if (!s.ok()) continue;
    ++total;
    if (!s->result.scalar().boolean()) ++falses;
  }
  ASSERT_GT(total, 20);
  EXPECT_EQ(falses, total);
}

TEST(SamplerTest, RespectsTypeConstraints) {
  Table t = MakeNationsTable();
  Rng rng(19);
  ProgramSampler sampler(&rng);
  auto tmpl = ProgramTemplate::Make(ProgramType::kSql,
                                    "SELECT SUM([{c1:num}]) FROM w")
                  .ValueOrDie();
  for (int i = 0; i < 20; ++i) {
    auto s = sampler.Sample(tmpl, t);
    ASSERT_TRUE(s.ok());
    // Bound column must be one of the numeric ones.
    std::string col = s->bindings.at("c1");
    EXPECT_NE(col, "nation");
  }
}

TEST(SamplerTest, FailsOnEmptyTable) {
  auto empty = Table::FromCsv("a,b\n").ValueOrDie();
  Rng rng(1);
  ProgramSampler sampler(&rng);
  auto tmpl = ProgramTemplate::Make(ProgramType::kSql,
                                    "SELECT [{c1}] FROM w")
                  .ValueOrDie();
  EXPECT_FALSE(sampler.Sample(tmpl, empty).ok());
}

// ----------------------------------------------------------- Templatizer

TEST(TemplatizerTest, AbstractsSqlToTemplate) {
  Table t = MakeNationsTable();
  auto tmpl = AbstractSql(
                  "SELECT nation FROM w WHERE gold = '10' ORDER BY silver "
                  "DESC LIMIT 1",
                  t)
                  .ValueOrDie();
  EXPECT_EQ(tmpl.type, ProgramType::kSql);
  EXPECT_NE(tmpl.pattern.find("{c1"), std::string::npos);
  EXPECT_NE(tmpl.pattern.find("{v1@"), std::string::npos);
  EXPECT_EQ(tmpl.reasoning_type, "superlative");
  // The abstracted template re-instantiates on the same table.
  Rng rng(3);
  ProgramSampler sampler(&rng);
  bool any = false;
  for (int i = 0; i < 20 && !any; ++i) any = sampler.Sample(tmpl, t).ok();
  EXPECT_TRUE(any);
}

TEST(TemplatizerTest, AbstractsLogicalFormWithDerive) {
  Table t = MakeNationsTable();
  auto tmpl = AbstractLogicalForm(
                  "eq { count { filter_eq { all_rows ; nation ; china } } ; "
                  "1 }",
                  t)
                  .ValueOrDie();
  EXPECT_TRUE(tmpl.HasDerive());
  EXPECT_EQ(tmpl.reasoning_type, "count");
  EXPECT_NE(tmpl.pattern.find("{v1@c1}"), std::string::npos);
}

TEST(TemplatizerTest, AbstractsArithmetic) {
  Table t = MakeFinanceTable();
  auto tmpl = AbstractArithmetic(
                  "subtract(2019 of revenue, 2018 of revenue), "
                  "divide(#0, 2018 of revenue)",
                  t)
                  .ValueOrDie();
  EXPECT_EQ(tmpl.type, ProgramType::kArithmetic);
  EXPECT_NE(tmpl.pattern.find("{c1:num} of {r1}"), std::string::npos);
  EXPECT_NE(tmpl.pattern.find("#0"), std::string::npos);
}

TEST(TemplatizerTest, CollectDeduplicates) {
  Table t = MakeNationsTable();
  Program p1{ProgramType::kSql, "SELECT nation FROM w WHERE gold = '10'"};
  Program p2{ProgramType::kSql, "SELECT nation FROM w WHERE silver = '3'"};
  auto templates = CollectTemplates({{p1, &t}, {p2, &t}});
  // Both abstract to the same pattern.
  EXPECT_EQ(templates.size(), 1u);
}

TEST(TemplatizerTest, SampledPlaceholdersTypeTagged) {
  Table t = MakeNationsTable();
  auto tmpl =
      AbstractSql("SELECT SUM(gold) FROM w", t).ValueOrDie();
  ASSERT_EQ(tmpl.placeholders.size(), 1u);
  EXPECT_TRUE(tmpl.placeholders[0].has_type_constraint);
  EXPECT_EQ(tmpl.placeholders[0].column_type, ColumnType::kNumber);
}

}  // namespace
}  // namespace uctr
