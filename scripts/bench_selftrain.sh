#!/usr/bin/env bash
# Self-training loop benchmark -> BENCH_selftrain.json
#
# Runs uctr_selftrain (Release build) over a fresh state directory and a
# resumed one, and records:
#
#   cold_wall_s        full --rounds run on an empty state dir
#   resume_wall_s      re-invocation over the finished dir (pure resume:
#                      0 phases executed — the price of a no-op restart)
#   phase_ms           per-phase wall times of the cold run, keyed
#                      "round-<r>/<phase>" (from --report-json)
#   rounds[]           per-round generated/kept/dropped/kept_ratio and
#                      held-out accuracy
#   pass               accuracy gate: final round >= round 0 (the ISSUE's
#                      self-training acceptance bar)
#
# Recorded, not gated on time: absolute wall time is hardware. The only
# gate is the accuracy delta, which is deterministic for a fixed seed.
#
# Usage:
#   scripts/bench_selftrain.sh            # fv task, 3 rounds, seed 42
#   ROUNDS=5 SEED=7 scripts/bench_selftrain.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"
ROUNDS="${ROUNDS:-3}"
SEED="${SEED:-42}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target uctr_selftrain_bin >/dev/null

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
state_dir="$TMP/state"
report="$TMP/report.json"

now_ms() { date +%s%3N; }

start=$(now_ms)
./"$BUILD_DIR"/src/selftrain/uctr_selftrain --state-dir "$state_dir" \
  --rounds "$ROUNDS" --seed "$SEED" --report-json "$report" >/dev/null
cold_ms=$(( $(now_ms) - start ))

start=$(now_ms)
./"$BUILD_DIR"/src/selftrain/uctr_selftrain --state-dir "$state_dir" \
  --rounds "$ROUNDS" --seed "$SEED" >/dev/null
resume_ms=$(( $(now_ms) - start ))

rounds_json=$(sed -n 's/.*"rounds":\(\[.*\]\),"phase_ms".*/\1/p' "$report")
phase_json=$(sed -n 's/.*"phase_ms":\({.*}\)}$/\1/p' "$report")
first_acc=$(echo "$rounds_json" | grep -o '"accuracy":[0-9.]*' | head -n1 |
  cut -d: -f2)
last_acc=$(echo "$rounds_json" | grep -o '"accuracy":[0-9.]*' | tail -n1 |
  cut -d: -f2)
pass=$(awk -v a="$first_acc" -v b="$last_acc" \
  'BEGIN { print (b >= a) ? "true" : "false" }')

cat > BENCH_selftrain.json <<EOF
{
  "bench": "selftrain",
  "rounds_configured": $ROUNDS,
  "seed": $SEED,
  "cold_wall_s": $(awk -v ms="$cold_ms" 'BEGIN { printf "%.3f", ms / 1000 }'),
  "resume_wall_s": $(awk -v ms="$resume_ms" 'BEGIN { printf "%.3f", ms / 1000 }'),
  "round0_accuracy": $first_acc,
  "final_accuracy": $last_acc,
  "rounds": $rounds_json,
  "phase_ms": $phase_json,
  "pass": $pass
}
EOF
cat BENCH_selftrain.json
if [[ "$pass" != true ]]; then
  echo "bench_selftrain: final accuracy $last_acc fell below round 0" \
    "accuracy $first_acc" >&2
  exit 1
fi
