#!/usr/bin/env bash
# Router horizontal-scaling benchmark -> BENCH_router.json
#
# Measures uctr_load saturation throughput through uctr_router against 1,
# 2, and 4 uctr_serve backends, then a failover drill that hard-kills one
# of two backends mid-run.
#
# Per-request work is emulated with `serve.execute=latency(20)` on every
# backend: each request occupies a backend worker for 20 ms, so a backend
# with 4 workers saturates at ~200 resp/s. That makes the scaling signal
# measurable on small CI hosts, where the real execute path is so cheap
# that the single-core client/router CPU saturates (at ~1700 resp/s of
# parse+route work) before the backends do and would hide the scaling
# being benchmarked. uctr_load runs with --distinct-tables so every
# request misses the result cache and actually reaches the (emulated)
# execute path. EXECUTE_MS / REQUESTS env vars override for beefier hosts.
#
# Gates (from the router design goals):
#   - every run clean: zero lost, zero reordered responses
#   - 2 backends >= 1.7x the 1-backend throughput
#   - 4 backends >= 3.0x the 1-backend throughput
#   - kill-one-backend drill: degraded throughput, zero lost responses
#
# Usage: scripts/bench_router.sh   (writes BENCH_router.json in repo root)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"
EXECUTE_MS="${EXECUTE_MS:-20}"
WORKERS_PER_BACKEND=4
REQUESTS="${REQUESTS:-2000}"
CONNECTIONS=32
PIPELINE=4

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target uctr_serve_bin uctr_router uctr_load >/dev/null

TMP=$(mktemp -d)
declare -a PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

scrape_port() {  # scrape_port ERRLOG NAME
  local errlog="$1" name="$2" port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$errlog" | head -n1)
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "bench_router: $name never announced its port" >&2
    cat "$errlog" >&2
    exit 1
  fi
  echo "$port"
}

json_field() {  # json_field FILE KEY -> numeric value
  sed -n "s/.*\"$2\": \([0-9.]*\).*/\1/p" "$1" | head -n1
}

# start_stack N: sets ROUTER_PORT, ROUTER_PID, BACKEND_PIDS. Must NOT be
# called via $(...) — the background servers would inherit the command
# substitution's pipe and the parent would block on it forever, and the
# pid globals would die with the subshell.
declare -a BACKEND_PIDS=()
ROUTER_PID=""
ROUTER_PORT=""
start_stack() {
  local n="$1" backends="" log port
  BACKEND_PIDS=()
  for i in $(seq 1 "$n"); do
    log="$TMP/backend_$i.err"
    ./"$BUILD_DIR"/src/serve/uctr_serve serve \
      --workers "$WORKERS_PER_BACKEND" --listen 127.0.0.1:0 \
      --fault-spec "serve.execute=latency($EXECUTE_MS)" \
      >/dev/null 2>"$log" &
    BACKEND_PIDS+=($!)
    PIDS+=($!)
  done
  for i in $(seq 1 "$n"); do
    port=$(scrape_port "$TMP/backend_$i.err" "backend $i")
    backends="${backends:+$backends,}127.0.0.1:$port"
  done
  log="$TMP/router.err"
  ./"$BUILD_DIR"/src/net/uctr_router --listen 127.0.0.1:0 \
    --backends "$backends" --workers $((CONNECTIONS * PIPELINE + 32)) \
    >/dev/null 2>"$log" &
  ROUTER_PID=$!
  PIDS+=($!)
  ROUTER_PORT=$(scrape_port "$log" router)
}

stop_stack() {
  kill -TERM "$ROUTER_PID" 2>/dev/null || true
  wait "$ROUTER_PID" 2>/dev/null || true
  for pid in "${BACKEND_PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
}

# --- Scaling runs: 1, 2, 4 backends -------------------------------------
declare -A RPS CLEAN
for n in 1 2 4; do
  echo "bench_router: measuring $n backend(s)..." >&2
  start_stack "$n"
  report="$TMP/scale_$n.json"
  if ./"$BUILD_DIR"/src/net/uctr_load --router "127.0.0.1:$ROUTER_PORT" \
      --connections "$CONNECTIONS" --requests "$REQUESTS" \
      --pipeline "$PIPELINE" --op verify --distinct-tables \
      --report-json "$report" >/dev/null; then
    CLEAN[$n]=true
  else
    CLEAN[$n]=false
  fi
  RPS[$n]=$(json_field "$report" achieved_rps)
  stop_stack
  echo "bench_router: $n backend(s): ${RPS[$n]} resp/s (clean=${CLEAN[$n]})" >&2
done

SCALE2=$(awk "BEGIN{printf \"%.2f\", ${RPS[2]} / ${RPS[1]}}")
SCALE4=$(awk "BEGIN{printf \"%.2f\", ${RPS[4]} / ${RPS[1]}}")

# --- Failover drill: hard-kill one of two backends mid-run --------------
echo "bench_router: failover drill (kill 1 of 2 backends mid-run)..." >&2
start_stack 2
drill_report="$TMP/drill.json"
DRILL_REQUESTS=$((REQUESTS * 2))
./"$BUILD_DIR"/src/net/uctr_load --router "127.0.0.1:$ROUTER_PORT" \
  --connections "$CONNECTIONS" --requests "$DRILL_REQUESTS" \
  --pipeline "$PIPELINE" --op verify --distinct-tables \
  --report-json "$drill_report" >/dev/null &
LOAD_PID=$!
sleep 1
kill -KILL "${BACKEND_PIDS[1]}" 2>/dev/null || true
DRILL_CLEAN=false
if wait "$LOAD_PID"; then DRILL_CLEAN=true; fi
DRILL_RPS=$(json_field "$drill_report" achieved_rps)
DRILL_LOST=$(json_field "$drill_report" lost)
DRILL_ERRORS=$(json_field "$drill_report" error)
stop_stack
echo "bench_router: drill: $DRILL_RPS resp/s, lost=$DRILL_LOST," \
  "errors=$DRILL_ERRORS (clean=$DRILL_CLEAN)" >&2

PASS=$(awk "BEGIN{print (${SCALE2} >= 1.7 && ${SCALE4} >= 3.0) ? \"true\" : \"false\"}")
for n in 1 2 4; do
  [[ "${CLEAN[$n]}" == true ]] || PASS=false
done
[[ "$DRILL_CLEAN" == true ]] || PASS=false

cat > BENCH_router.json <<EOF
{
  "emulated_execute_ms": $EXECUTE_MS,
  "workers_per_backend": $WORKERS_PER_BACKEND,
  "requests_per_run": $REQUESTS,
  "connections": $CONNECTIONS,
  "pipeline": $PIPELINE,
  "backends_1": {"rps": ${RPS[1]}, "clean": ${CLEAN[1]}},
  "backends_2": {"rps": ${RPS[2]}, "clean": ${CLEAN[2]}},
  "backends_4": {"rps": ${RPS[4]}, "clean": ${CLEAN[4]}},
  "scaling_2x": $SCALE2,
  "scaling_4x": $SCALE4,
  "kill_one_drill": {"requests": $DRILL_REQUESTS, "rps": $DRILL_RPS, "lost": $DRILL_LOST, "errors": $DRILL_ERRORS, "clean": $DRILL_CLEAN},
  "gates": {"scaling_2x_min": 1.7, "scaling_4x_min": 3.0},
  "pass": $PASS
}
EOF
cat BENCH_router.json
[[ "$PASS" == true ]]
