#!/usr/bin/env bash
# Sanitizer check: configure, build, and run the test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (the UCTR_SANITIZE CMake
# option). Catches memory errors and UB that the normal Release build
# hides — run it before merging changes to the concurrent serving path.
#
# Usage:
#   scripts/check.sh                 # full suite
#   scripts/check.sh serve_test      # one test binary (ctest -R pattern
#                                    # matches gtest-discovered names)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-asan}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . -DUCTR_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

cd "$BUILD_DIR"
if [[ $# -gt 0 ]]; then
  # Run the named test binaries directly (faster than ctest discovery
  # when iterating on one suite).
  for name in "$@"; do
    "./tests/$name"
  done
else
  ctest --output-on-failure -j "$JOBS"
fi
echo "sanitizer check passed"
