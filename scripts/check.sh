#!/usr/bin/env bash
# Sanitizer check: configure, build, and run the test suite under a
# sanitizer (the UCTR_SANITIZE CMake option). Catches memory errors, UB,
# and data races that the normal Release build hides — run it before
# merging changes to the concurrent serving path or the lazily built
# table index.
#
# Usage:
#   scripts/check.sh                        # ASan+UBSan, full suite
#   scripts/check.sh serve_test             # one test binary (ctest -R
#                                           # matches gtest names)
#   scripts/check.sh faults                 # chaos mode: fault_test +
#                                           # fuzz_test + a uctr_serve
#                                           # --fault-spec drill
#   scripts/check.sh net                    # net_test + a loopback TCP
#                                           # soak (uctr_load against
#                                           # uctr_serve --listen, clean
#                                           # and chaos variants, SIGTERM
#                                           # drain)
#   scripts/check.sh store                  # store_test + a put_table/
#                                           # table_ref loopback soak
#                                           # (uctr_load --put-table)
#   scripts/check.sh durability             # durable_test + a crash drill
#                                           # (kill -9 uctr_serve mid-load,
#                                           # restart on the same
#                                           # --store-dir, acked tables
#                                           # must serve again) + a router
#                                           # kill/rejoin drill with
#                                           # --put-replicas 2
#   scripts/check.sh router                 # router_test + a sharded soak
#                                           # (uctr_load through uctr_router
#                                           # over 2 uctr_serve backends,
#                                           # clean and chaos variants,
#                                           # SIGTERM drain of the whole
#                                           # stack)
#   scripts/check.sh selftrain              # selftrain_test + a kill -9
#                                           # drill of uctr_selftrain
#                                           # (resume must be byte-
#                                           # identical to an
#                                           # uninterrupted run)
#   scripts/check.sh plan                   # ir_test (IR/VM/plan-cache
#                                           # differential suite) + a
#                                           # uctr_serve drill with the
#                                           # plan compiler fault-spec'd
#                                           # (must degrade to tree-walk,
#                                           # never drop a response)
#   UCTR_SANITIZE=thread scripts/check.sh   # TSan, full suite
#   UCTR_SANITIZE=thread scripts/check.sh index_test serve_test
set -euo pipefail

cd "$(dirname "$0")/.."

# address (default) -> ASan+UBSan in build-asan; thread -> TSan in
# build-tsan. The two modes use separate build trees so switching between
# them never triggers a full recompile.
SANITIZE="${UCTR_SANITIZE:-address}"
case "$SANITIZE" in
  address|ON|on)
    SANITIZE=address
    DEFAULT_BUILD_DIR=build-asan
    ;;
  thread)
    DEFAULT_BUILD_DIR=build-tsan
    ;;
  *)
    echo "unknown UCTR_SANITIZE mode '$SANITIZE' (address|thread)" >&2
    exit 2
    ;;
esac
BUILD_DIR="${BUILD_DIR:-$DEFAULT_BUILD_DIR}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . -DUCTR_SANITIZE="$SANITIZE" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS"

if [[ "$SANITIZE" == thread ]]; then
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
else
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
fi

cd "$BUILD_DIR"
if [[ "${1:-}" == faults ]]; then
  # Chaos mode: the fault-injection/resilience suite and the input fuzzer
  # under the configured sanitizer, then a bounded chaos drill of the real
  # uctr_serve binary with a mixed fault schedule armed (errors, latency
  # spikes, transient faults). The drill must exit 0 — degraded, never
  # dead — and every request must get a response line.
  ./tests/fault_test
  ./tests/fuzz_test
  REQUESTS=$(for i in $(seq 1 20); do
    printf '{"id":%d,"op":"verify","table":"a,b\\n1,2\\n3,4\\n","query":"The a of the row whose b is 2 is 1."}\n' "$i"
  done)
  RESPONSES=$(printf '%s\n' "$REQUESTS" | ./src/serve/uctr_serve serve \
    --workers 4 --fault-spec \
    'serve.index_warm=error:p=0.5;serve.cache_get=error:p=0.3;serve.table_parse=error(unavailable):n=5;sched.dequeue=latency(2):p=0.3' \
    --fault-seed 7)
  GOT=$(printf '%s\n' "$RESPONSES" | grep -c '"id"')
  if [[ "$GOT" -ne 20 ]]; then
    echo "chaos drill: expected 20 responses, got $GOT" >&2
    exit 1
  fi
  echo "fault/chaos ($SANITIZE) check passed"
  exit 0
fi
if [[ "${1:-}" == net ]]; then
  # Networking mode: the loopback unit/integration suite under the
  # sanitizer, then a soak of the real binaries: uctr_serve --listen on an
  # ephemeral port vs uctr_load with 32 concurrent connections. Run clean,
  # then again with a serving-layer fault schedule armed (every response
  # must still arrive — degraded, never lost), then SIGTERM the server and
  # require a graceful exit 0.
  ./tests/net_test

  run_soak() {  # run_soak NAME [extra uctr_serve flags...]
    local name="$1"; shift
    local errlog port
    errlog=$(mktemp)
    ./src/serve/uctr_serve serve --workers 4 --listen 127.0.0.1:0 "$@" \
      2>"$errlog" &
    local serve_pid=$!
    port=""
    for _ in $(seq 1 100); do
      port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
        "$errlog" | head -n1)
      [[ -n "$port" ]] && break
      sleep 0.1
    done
    if [[ -z "$port" ]]; then
      echo "net soak ($name): server never announced its port" >&2
      cat "$errlog" >&2
      exit 1
    fi
    if ! ./src/net/uctr_load --connect "127.0.0.1:$port" \
        --connections 32 --requests 1280 --pipeline 8; then
      echo "net soak ($name): uctr_load reported lost/reordered responses" >&2
      kill "$serve_pid" 2>/dev/null || true
      exit 1
    fi
    kill -TERM "$serve_pid"
    local serve_rc=0
    wait "$serve_pid" || serve_rc=$?
    if [[ "$serve_rc" -ne 0 ]]; then
      echo "net soak ($name): uctr_serve exited $serve_rc after SIGTERM" >&2
      cat "$errlog" >&2
      exit 1
    fi
    rm -f "$errlog"
    echo "net soak ($name) passed"
  }

  run_soak clean
  run_soak chaos --fault-spec \
    'serve.index_warm=error:p=0.5;serve.cache_get=error:p=0.3;sched.dequeue=latency(2):p=0.3' \
    --fault-seed 7
  echo "net ($SANITIZE) check passed"
  exit 0
fi
if [[ "${1:-}" == store ]]; then
  # Table-store mode: the store unit/integration suite under the
  # sanitizer, then a put_table/table_ref loopback soak — every connection
  # registers its fixtures once and drives fingerprint traffic, so the
  # registry's concurrent Put/Get/evict paths run under the sanitizer with
  # real sockets in front.
  ./tests/store_test

  errlog=$(mktemp)
  ./src/serve/uctr_serve serve --workers 4 --listen 127.0.0.1:0 \
    2>"$errlog" &
  serve_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$errlog" | head -n1)
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "store soak: server never announced its port" >&2
    cat "$errlog" >&2
    exit 1
  fi
  if ! ./src/net/uctr_load --connect "127.0.0.1:$port" \
      --connections 16 --requests 1280 --pipeline 8 --tables 8 --put-table; then
    echo "store soak: uctr_load --put-table reported failures" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
  kill -TERM "$serve_pid"
  serve_rc=0
  wait "$serve_pid" || serve_rc=$?
  if [[ "$serve_rc" -ne 0 ]]; then
    echo "store soak: uctr_serve exited $serve_rc after SIGTERM" >&2
    cat "$errlog" >&2
    exit 1
  fi
  rm -f "$errlog"
  echo "store ($SANITIZE) check passed"
  exit 0
fi
if [[ "${1:-}" == durability ]]; then
  # Durability mode: the WAL/recovery suite under the sanitizer, then two
  # drills of the real binaries.
  #
  # Drill 1 — crash recovery: uctr_serve --store-dir, a completed
  # put_table round (those acks are the pin), then kill -9 mid-load. The
  # restart on the same directory must announce the recovered tables, and
  # a fresh --put-table run must be failure-free: re-registration dedups
  # against the recovered store (content-addressed, so the fingerprints
  # prove byte-identity) and every table_ref resolves without degrading.
  #
  # Drill 2 — replicated serving: two durable backends behind uctr_router
  # --put-replicas 2. Kill -9 one backend mid-traffic (the load must stay
  # clean: zero lost, zero reordered), restart it on the same port (it
  # recovers from its own store), let the probe rejoin it, and load again.
  # The router must drain to exit 0 with its replication counters
  # exported. (Read-repair convergence itself is pinned deterministically
  # in router_test — this drill exercises the same path against real
  # processes and sockets.)
  ./tests/durable_test

  scrape_port() {  # scrape_port ERRLOG NAME
    local errlog="$1" name="$2" port=""
    for _ in $(seq 1 100); do
      port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
        "$errlog" | head -n1)
      [[ -n "$port" ]] && break
      sleep 0.1
    done
    if [[ -z "$port" ]]; then
      echo "durability: $name never announced its port" >&2
      cat "$errlog" >&2
      exit 1
    fi
    echo "$port"
  }

  # ----------------------------------------------- drill 1: kill -9
  store_dir=$(mktemp -d)
  errlog=$(mktemp)
  ./src/serve/uctr_serve serve --workers 4 --listen 127.0.0.1:0 \
    --store-dir "$store_dir" --store-fsync interval 2>"$errlog" &
  serve_pid=$!
  port=$(scrape_port "$errlog" uctr_serve)
  # Phase 1: a registration round that completes — these acks must
  # survive the crash.
  if ! ./src/net/uctr_load --connect "127.0.0.1:$port" \
      --connections 4 --requests 160 --pipeline 4 --tables 8 --put-table; then
    echo "durability: pre-crash put_table load failed" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
  # Phase 2: kill -9 mid-load. The load is expected to fail — the point
  # is that the server dies without any chance to flush or say goodbye.
  ./src/net/uctr_load --connect "127.0.0.1:$port" \
    --connections 4 --requests 4000 --pipeline 4 --tables 8 --put-table \
    >/dev/null 2>&1 &
  load_pid=$!
  sleep 0.3
  kill -KILL "$serve_pid"
  wait "$serve_pid" 2>/dev/null || true
  wait "$load_pid" 2>/dev/null || true
  # Phase 3: restart on the same directory; recovery must be announced.
  errlog2=$(mktemp)
  ./src/serve/uctr_serve serve --workers 4 --listen 127.0.0.1:0 \
    --store-dir "$store_dir" --store-fsync interval 2>"$errlog2" &
  serve_pid=$!
  port=$(scrape_port "$errlog2" "restarted uctr_serve")
  recovered=$(sed -n 's/.*recovered \([0-9]*\) table(s).*/\1/p' \
    "$errlog2" | head -n1)
  if [[ -z "$recovered" || "$recovered" -lt 8 ]]; then
    echo "durability: restart recovered '${recovered:-nothing}'," \
      "expected >= 8 tables" >&2
    cat "$errlog2" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
  # Phase 4: every acked table serves again. The re-registration returns
  # the same content fingerprints (dedup against the recovered store) and
  # the ref traffic must be loss-free.
  if ! ./src/net/uctr_load --connect "127.0.0.1:$port" \
      --connections 4 --requests 320 --pipeline 4 --tables 8 --put-table; then
    echo "durability: post-recovery table_ref load failed" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
  fi
  kill -TERM "$serve_pid"
  serve_rc=0
  wait "$serve_pid" || serve_rc=$?
  if [[ "$serve_rc" -ne 0 ]]; then
    echo "durability: recovered uctr_serve exited $serve_rc after SIGTERM" >&2
    cat "$errlog2" >&2
    exit 1
  fi
  rm -rf "$store_dir" "$errlog" "$errlog2"
  echo "durability drill 1 (kill -9 + recovery) passed"

  # ------------------------------------- drill 2: router kill/rejoin
  d1=$(mktemp -d); d2=$(mktemp -d)
  b1_log=$(mktemp); b2_log=$(mktemp); r_log=$(mktemp)
  ./src/serve/uctr_serve serve --workers 4 --listen 127.0.0.1:0 \
    --store-dir "$d1" --store-fsync interval 2>"$b1_log" &
  b1_pid=$!
  ./src/serve/uctr_serve serve --workers 4 --listen 127.0.0.1:0 \
    --store-dir "$d2" --store-fsync interval 2>"$b2_log" &
  b2_pid=$!
  b1_port=$(scrape_port "$b1_log" "backend 1")
  b2_port=$(scrape_port "$b2_log" "backend 2")
  ./src/net/uctr_router --listen 127.0.0.1:0 \
    --backends "127.0.0.1:$b1_port,127.0.0.1:$b2_port" \
    --workers 16 --put-replicas 2 --probe-interval-ms 100 --metrics \
    2>"$r_log" &
  r_pid=$!
  r_port=$(scrape_port "$r_log" router)
  load() {
    ./src/net/uctr_load --router "127.0.0.1:$r_port" \
      --connections 8 --requests 480 --pipeline 4 --tables 8 --put-table
  }
  if ! load; then
    echo "durability: router baseline load failed" >&2
    kill "$r_pid" "$b1_pid" "$b2_pid" 2>/dev/null || true
    exit 1
  fi
  kill -KILL "$b1_pid"
  wait "$b1_pid" 2>/dev/null || true
  sleep 0.5  # probes notice the corpse
  if ! load; then
    echo "durability: load lost responses while a backend was down" >&2
    kill "$r_pid" "$b2_pid" 2>/dev/null || true
    exit 1
  fi
  # Restart the killed backend on the SAME port and store dir: it must
  # recover its replicated tables itself and rejoin the ring.
  b1_log2=$(mktemp)
  ./src/serve/uctr_serve serve --workers 4 --listen "127.0.0.1:$b1_port" \
    --store-dir "$d1" --store-fsync interval 2>"$b1_log2" &
  b1_pid=$!
  scrape_port "$b1_log2" "restarted backend 1" >/dev/null
  if ! grep -q 'recovered [1-9][0-9]* table' "$b1_log2"; then
    echo "durability: restarted backend recovered no tables" >&2
    cat "$b1_log2" >&2
    kill "$r_pid" "$b1_pid" "$b2_pid" 2>/dev/null || true
    exit 1
  fi
  sleep 0.5  # probes readmit it
  if ! load; then
    echo "durability: load failed after the backend rejoined" >&2
    kill "$r_pid" "$b1_pid" "$b2_pid" 2>/dev/null || true
    exit 1
  fi
  kill -TERM "$r_pid"
  r_rc=0
  wait "$r_pid" || r_rc=$?
  if [[ "$r_rc" -ne 0 ]]; then
    echo "durability: uctr_router exited $r_rc after SIGTERM" >&2
    cat "$r_log" >&2
    exit 1
  fi
  replicas=$(sed -n 's/^router_put_replica_total \([0-9]*\)$/\1/p' \
    "$r_log" | head -n1)
  if [[ -z "$replicas" || "$replicas" -lt 1 ]]; then
    echo "durability: router exported no replicated puts" \
      "(router_put_replica_total='${replicas:-missing}')" >&2
    cat "$r_log" >&2
    kill "$b1_pid" "$b2_pid" 2>/dev/null || true
    exit 1
  fi
  if ! grep -q '^router_read_repair_total ' "$r_log"; then
    echo "durability: router metrics missing router_read_repair_total" >&2
    kill "$b1_pid" "$b2_pid" 2>/dev/null || true
    exit 1
  fi
  kill -TERM "$b1_pid" "$b2_pid"
  wait "$b1_pid" "$b2_pid" || {
    echo "durability: a backend exited nonzero after SIGTERM" >&2
    exit 1
  }
  rm -rf "$d1" "$d2" "$b1_log" "$b2_log" "$b1_log2" "$r_log"
  echo "durability drill 2 (router kill/rejoin) passed"
  echo "durability ($SANITIZE) check passed"
  exit 0
fi
if [[ "${1:-}" == router ]]; then
  # Router mode: the ring/routing/failover suite under the sanitizer, then
  # a soak of the real stack — two uctr_serve backends behind uctr_router,
  # driven by uctr_load through the router endpoint. Run clean, then with
  # router-site faults armed (transient connect/send/recv errors must be
  # retried or failed over — every response still arrives), then SIGTERM
  # the router and require a graceful drain with exit 0.
  ./tests/router_test

  start_serve() {  # start_serve ERRLOG -> echoes port, backend pid in $!
    local errlog="$1"
    ./src/serve/uctr_serve serve --workers 4 --listen 127.0.0.1:0 \
      2>"$errlog" &
  }
  scrape_port() {  # scrape_port ERRLOG NAME
    local errlog="$1" name="$2" port=""
    for _ in $(seq 1 100); do
      port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
        "$errlog" | head -n1)
      [[ -n "$port" ]] && break
      sleep 0.1
    done
    if [[ -z "$port" ]]; then
      echo "router soak: $name never announced its port" >&2
      cat "$errlog" >&2
      exit 1
    fi
    echo "$port"
  }

  run_router_soak() {  # run_router_soak NAME [extra uctr_router flags...]
    local name="$1"; shift
    local b1_log b2_log r_log b1_port b2_port r_port
    b1_log=$(mktemp); b2_log=$(mktemp); r_log=$(mktemp)
    start_serve "$b1_log"; local b1_pid=$!
    start_serve "$b2_log"; local b2_pid=$!
    b1_port=$(scrape_port "$b1_log" "backend 1")
    b2_port=$(scrape_port "$b2_log" "backend 2")
    ./src/net/uctr_router --listen 127.0.0.1:0 \
      --backends "127.0.0.1:$b1_port,127.0.0.1:$b2_port" \
      --workers 16 "$@" 2>"$r_log" &
    local r_pid=$!
    r_port=$(scrape_port "$r_log" "router")
    if ! ./src/net/uctr_load --router "127.0.0.1:$r_port" \
        --connections 16 --requests 960 --pipeline 8 --tables 8; then
      echo "router soak ($name): uctr_load reported lost/reordered responses" >&2
      kill "$r_pid" "$b1_pid" "$b2_pid" 2>/dev/null || true
      exit 1
    fi
    kill -TERM "$r_pid"
    local r_rc=0
    wait "$r_pid" || r_rc=$?
    if [[ "$r_rc" -ne 0 ]]; then
      echo "router soak ($name): uctr_router exited $r_rc after SIGTERM" >&2
      cat "$r_log" >&2
      exit 1
    fi
    kill -TERM "$b1_pid" "$b2_pid"
    wait "$b1_pid" "$b2_pid" || {
      echo "router soak ($name): a backend exited nonzero after SIGTERM" >&2
      exit 1
    }
    rm -f "$b1_log" "$b2_log" "$r_log"
    echo "router soak ($name) passed"
  }

  run_router_soak clean
  run_router_soak chaos --fault-spec \
    'router.send=error(unavailable):p=0.05;router.recv=error(unavailable):p=0.05' \
    --fault-seed 7
  echo "router ($SANITIZE) check passed"
  exit 0
fi
if [[ "${1:-}" == plan ]]; then
  # Compiled-plan mode: the IR/VM differential suite (every program shape
  # checked walker-vs-VM, plan cache concurrency, codec round-trips, the
  # bytecode verifier fuzz corpus) under the sanitizer, then a drill of
  # the real uctr_serve binary with the plan compiler itself failing half
  # the time. A failed compile must degrade to the tree-walk reference —
  # every request still gets a byte-identical answer, never an error.
  ./tests/ir_test

  REQUESTS=$(for i in $(seq 1 20); do
    printf '{"id":%d,"op":"verify","table":"a,b\\n1,2\\n3,4\\n","query":"The a of the row whose b is 2 is 1."}\n' "$i"
  done)
  RESPONSES=$(printf '%s\n' "$REQUESTS" | ./src/serve/uctr_serve serve \
    --workers 4 --fault-spec 'serve.plan_compile=error:p=0.5' \
    --fault-seed 7)
  GOT=$(printf '%s\n' "$RESPONSES" | grep -c '"id"')
  if [[ "$GOT" -ne 20 ]]; then
    echo "plan drill: expected 20 responses, got $GOT" >&2
    exit 1
  fi
  if printf '%s\n' "$RESPONSES" | grep -q '"error"'; then
    echo "plan drill: compile faults must fall back, not error" >&2
    exit 1
  fi
  echo "plan ($SANITIZE) check passed"
  exit 0
fi
if [[ "${1:-}" == selftrain ]]; then
  # Self-training mode: the orchestrator suite under the sanitizer (kill-
  # at-every-phase-boundary resume, confidence edge cases, fault retry),
  # then a crash drill of the real uctr_selftrain binary: start a 2-round
  # run slowed down with latency faults so kill -9 reliably lands
  # mid-loop, kill it, resume with the same flags, and require the final
  # state directory to be byte-identical to an uninterrupted run.
  # attempts.log is excluded from the diff: it is an append-only
  # operational journal whose line order races across generator threads
  # even between two uninterrupted runs (the MANIFEST, filter, weights,
  # losses, and RESULT artifacts are the determinism contract).
  ./tests/selftrain_test

  st_args=(--rounds 2 --seed 11 --tables 6 --samples-per-table 6
           --eval-tables 6 --threads 2)
  ref_dir=$(mktemp -d); crash_dir=$(mktemp -d)
  if ! ./src/selftrain/uctr_selftrain --state-dir "$ref_dir" \
      "${st_args[@]}" >/dev/null; then
    echo "selftrain drill: reference run failed" >&2
    exit 1
  fi
  ./src/selftrain/uctr_selftrain --state-dir "$crash_dir" "${st_args[@]}" \
    --fault-spec 'selftrain.generate=latency(300):p=1;selftrain.train=latency(300):p=1' \
    >/dev/null 2>&1 &
  st_pid=$!
  sleep 0.7
  kill -KILL "$st_pid" 2>/dev/null || true
  wait "$st_pid" 2>/dev/null || true
  if ! ./src/selftrain/uctr_selftrain --state-dir "$crash_dir" \
      "${st_args[@]}" >/dev/null; then
    echo "selftrain drill: resume after kill -9 failed" >&2
    exit 1
  fi
  if ! diff -r --exclude=attempts.log "$ref_dir" "$crash_dir"; then
    echo "selftrain drill: resumed state dir diverged from uninterrupted run" >&2
    exit 1
  fi
  # A mismatched run key must be rejected, not silently mixed in.
  if ./src/selftrain/uctr_selftrain --state-dir "$crash_dir" \
      "${st_args[@]}" --seed 12 >/dev/null 2>&1; then
    echo "selftrain drill: mismatched --seed was not rejected" >&2
    exit 1
  fi
  rm -rf "$ref_dir" "$crash_dir"
  echo "selftrain drill (kill -9 + byte-identical resume) passed"
  echo "selftrain ($SANITIZE) check passed"
  exit 0
fi
if [[ $# -gt 0 ]]; then
  # Run the named test binaries directly (faster than ctest discovery
  # when iterating on one suite).
  for name in "$@"; do
    "./tests/$name"
  done
else
  ctest --output-on-failure -j "$JOBS"
fi
echo "sanitizer ($SANITIZE) check passed"
