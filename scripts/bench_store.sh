#!/usr/bin/env bash
# Table-store benchmark -> BENCH_store.json
#
# Default: the zero-parse serving comparison (bench_serving --store): on a
# 1,000-row fixture, inline-CSV requests pay table parse + index warm per
# request while table_ref requests resolve from the content-addressed
# registry; the speedup gate (>= 10x evidence-cost reduction,
# byte-identical responses) is enforced by the bench binary itself.
#
# --durable: additionally measures the cost of the durability ack
# contract — put_table round-trip latency (registry histogram p50/p99)
# through uctr_serve --store-dir under each fsync mode:
#
#   always    fsync per append: the ack survives power loss. Pays one
#             device flush per put; the upper bound.
#   interval  fsync at most once per 50 ms: the ack survives kill -9,
#             up to one interval is exposed to power loss. The default.
#   never     no hot-path fsync: same kill -9 guarantee, everything
#             since boot exposed to power loss. The floor (WAL append
#             into page cache only).
#
# The three runs land in a "durable" section appended to BENCH_store.json
# so the fsync tax is tracked next to the zero-parse numbers it guards.
# Recorded, not gated: absolute fsync cost is hardware, not regression.
#
# Usage:
#   scripts/bench_store.sh             # zero-parse bench only
#   scripts/bench_store.sh --durable   # + fsync mode matrix
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"
# Puts measured per mode = CONNECTIONS * TABLES (each connection registers
# every fixture variant once, synchronously, one round-trip each).
CONNECTIONS=2
TABLES=64
REQUESTS=64

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target bench_serving uctr_serve_bin uctr_load >/dev/null

./"$BUILD_DIR"/bench/bench_serving --store

if [[ "${1:-}" != --durable ]]; then
  cat BENCH_store.json
  exit 0
fi

TMP=$(mktemp -d)
declare -a PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

scrape_port() {  # scrape_port ERRLOG
  local errlog="$1" port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$errlog" | head -n1)
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "bench_store: uctr_serve never announced its port" >&2
    cat "$errlog" >&2
    exit 1
  fi
  echo "$port"
}

declare -A P50 P99 COUNT
for mode in always interval never; do
  echo "bench_store: measuring put_table under --store-fsync $mode..." >&2
  store_dir="$TMP/store_$mode"
  errlog="$TMP/serve_$mode.err"
  ./"$BUILD_DIR"/src/serve/uctr_serve serve --workers 4 \
    --listen 127.0.0.1:0 --store-dir "$store_dir" \
    --store-fsync "$mode" 2>"$errlog" &
  serve_pid=$!
  PIDS+=("$serve_pid")
  port=$(scrape_port "$errlog")
  report="$TMP/load_$mode.json"
  ./"$BUILD_DIR"/src/net/uctr_load --connect "127.0.0.1:$port" \
    --connections "$CONNECTIONS" --requests "$REQUESTS" --pipeline 2 \
    --tables "$TABLES" --put-table --report-json "$report" >/dev/null
  kill -TERM "$serve_pid"
  wait "$serve_pid"
  line=$(grep '"registry_us"' "$report")
  COUNT[$mode]=$(echo "$line" | sed -n 's/.*"count": \([0-9]*\).*/\1/p')
  P50[$mode]=$(echo "$line" | sed -n 's/.*"p50": \([0-9.]*\).*/\1/p')
  P99[$mode]=$(echo "$line" | sed -n 's/.*"p99": \([0-9.]*\).*/\1/p')
  echo "bench_store: $mode: ${COUNT[$mode]} puts," \
    "p50 ${P50[$mode]} us, p99 ${P99[$mode]} us" >&2
done

# Append the durable section to the bench JSON (keep every existing
# field; "pass" stays the zero-parse gate's verdict).
{
  head -n -1 BENCH_store.json | sed '$ s/$/,/'
  cat <<EOF
  "durable": {
    "puts_per_mode": ${COUNT[interval]},
    "fsync_always": {"put_p50_us": ${P50[always]}, "put_p99_us": ${P99[always]}},
    "fsync_interval": {"put_p50_us": ${P50[interval]}, "put_p99_us": ${P99[interval]}},
    "fsync_never": {"put_p50_us": ${P50[never]}, "put_p99_us": ${P99[never]}}
  }
}
EOF
} > "$TMP/bench_store_merged.json"
mv "$TMP/bench_store_merged.json" BENCH_store.json
cat BENCH_store.json
