file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_generated_text.dir/bench_table9_generated_text.cc.o"
  "CMakeFiles/bench_table9_generated_text.dir/bench_table9_generated_text.cc.o.d"
  "bench_table9_generated_text"
  "bench_table9_generated_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_generated_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
