# Empty compiler generated dependencies file for bench_table9_generated_text.
# This may be replaced when dependencies are built.
