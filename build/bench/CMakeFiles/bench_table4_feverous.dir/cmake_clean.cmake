file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_feverous.dir/bench_table4_feverous.cc.o"
  "CMakeFiles/bench_table4_feverous.dir/bench_table4_feverous.cc.o.d"
  "bench_table4_feverous"
  "bench_table4_feverous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_feverous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
