# Empty dependencies file for bench_table4_feverous.
# This may be replaced when dependencies are built.
