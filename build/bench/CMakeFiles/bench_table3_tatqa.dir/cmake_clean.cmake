file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_tatqa.dir/bench_table3_tatqa.cc.o"
  "CMakeFiles/bench_table3_tatqa.dir/bench_table3_tatqa.cc.o.d"
  "bench_table3_tatqa"
  "bench_table3_tatqa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_tatqa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
