# Empty compiler generated dependencies file for bench_table3_tatqa.
# This may be replaced when dependencies are built.
