file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_synth_vs_labeled.dir/bench_fig5_synth_vs_labeled.cc.o"
  "CMakeFiles/bench_fig5_synth_vs_labeled.dir/bench_fig5_synth_vs_labeled.cc.o.d"
  "bench_fig5_synth_vs_labeled"
  "bench_fig5_synth_vs_labeled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_synth_vs_labeled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
