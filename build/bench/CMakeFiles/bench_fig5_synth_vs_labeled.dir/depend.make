# Empty dependencies file for bench_fig5_synth_vs_labeled.
# This may be replaced when dependencies are built.
