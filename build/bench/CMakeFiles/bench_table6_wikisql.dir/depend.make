# Empty dependencies file for bench_table6_wikisql.
# This may be replaced when dependencies are built.
