file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_wikisql.dir/bench_table6_wikisql.cc.o"
  "CMakeFiles/bench_table6_wikisql.dir/bench_table6_wikisql.cc.o.d"
  "bench_table6_wikisql"
  "bench_table6_wikisql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_wikisql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
