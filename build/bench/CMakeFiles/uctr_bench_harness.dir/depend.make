# Empty dependencies file for uctr_bench_harness.
# This may be replaced when dependencies are built.
