file(REMOVE_RECURSE
  "libuctr_bench_harness.a"
)
