file(REMOVE_RECURSE
  "CMakeFiles/uctr_bench_harness.dir/harness.cc.o"
  "CMakeFiles/uctr_bench_harness.dir/harness.cc.o.d"
  "libuctr_bench_harness.a"
  "libuctr_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uctr_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
