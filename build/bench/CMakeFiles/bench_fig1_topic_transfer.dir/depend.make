# Empty dependencies file for bench_fig1_topic_transfer.
# This may be replaced when dependencies are built.
