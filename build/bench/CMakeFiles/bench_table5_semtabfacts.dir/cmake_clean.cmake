file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_semtabfacts.dir/bench_table5_semtabfacts.cc.o"
  "CMakeFiles/bench_table5_semtabfacts.dir/bench_table5_semtabfacts.cc.o.d"
  "bench_table5_semtabfacts"
  "bench_table5_semtabfacts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_semtabfacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
