# Empty dependencies file for bench_table5_semtabfacts.
# This may be replaced when dependencies are built.
