# Empty dependencies file for bench_table7_augmentation.
# This may be replaced when dependencies are built.
