file(REMOVE_RECURSE
  "libuctr_arith.a"
)
