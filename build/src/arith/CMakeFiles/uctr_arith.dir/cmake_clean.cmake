file(REMOVE_RECURSE
  "CMakeFiles/uctr_arith.dir/ast.cc.o"
  "CMakeFiles/uctr_arith.dir/ast.cc.o.d"
  "CMakeFiles/uctr_arith.dir/executor.cc.o"
  "CMakeFiles/uctr_arith.dir/executor.cc.o.d"
  "CMakeFiles/uctr_arith.dir/parser.cc.o"
  "CMakeFiles/uctr_arith.dir/parser.cc.o.d"
  "CMakeFiles/uctr_arith.dir/trace.cc.o"
  "CMakeFiles/uctr_arith.dir/trace.cc.o.d"
  "libuctr_arith.a"
  "libuctr_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uctr_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
