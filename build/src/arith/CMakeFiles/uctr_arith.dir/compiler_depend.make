# Empty compiler generated dependencies file for uctr_arith.
# This may be replaced when dependencies are built.
