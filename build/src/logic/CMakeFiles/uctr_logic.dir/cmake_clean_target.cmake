file(REMOVE_RECURSE
  "libuctr_logic.a"
)
