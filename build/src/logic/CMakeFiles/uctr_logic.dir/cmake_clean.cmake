file(REMOVE_RECURSE
  "CMakeFiles/uctr_logic.dir/ast.cc.o"
  "CMakeFiles/uctr_logic.dir/ast.cc.o.d"
  "CMakeFiles/uctr_logic.dir/executor.cc.o"
  "CMakeFiles/uctr_logic.dir/executor.cc.o.d"
  "CMakeFiles/uctr_logic.dir/parser.cc.o"
  "CMakeFiles/uctr_logic.dir/parser.cc.o.d"
  "CMakeFiles/uctr_logic.dir/trace.cc.o"
  "CMakeFiles/uctr_logic.dir/trace.cc.o.d"
  "libuctr_logic.a"
  "libuctr_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uctr_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
