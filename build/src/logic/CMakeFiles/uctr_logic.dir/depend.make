# Empty dependencies file for uctr_logic.
# This may be replaced when dependencies are built.
