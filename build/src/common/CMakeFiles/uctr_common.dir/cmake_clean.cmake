file(REMOVE_RECURSE
  "CMakeFiles/uctr_common.dir/numeric.cc.o"
  "CMakeFiles/uctr_common.dir/numeric.cc.o.d"
  "CMakeFiles/uctr_common.dir/rng.cc.o"
  "CMakeFiles/uctr_common.dir/rng.cc.o.d"
  "CMakeFiles/uctr_common.dir/status.cc.o"
  "CMakeFiles/uctr_common.dir/status.cc.o.d"
  "CMakeFiles/uctr_common.dir/string_util.cc.o"
  "CMakeFiles/uctr_common.dir/string_util.cc.o.d"
  "libuctr_common.a"
  "libuctr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uctr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
