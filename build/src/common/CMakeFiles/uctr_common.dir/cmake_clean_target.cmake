file(REMOVE_RECURSE
  "libuctr_common.a"
)
