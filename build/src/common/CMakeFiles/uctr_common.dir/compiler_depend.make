# Empty compiler generated dependencies file for uctr_common.
# This may be replaced when dependencies are built.
