file(REMOVE_RECURSE
  "libuctr_gen.a"
)
