file(REMOVE_RECURSE
  "CMakeFiles/uctr_gen.dir/generator.cc.o"
  "CMakeFiles/uctr_gen.dir/generator.cc.o.d"
  "CMakeFiles/uctr_gen.dir/parallel.cc.o"
  "CMakeFiles/uctr_gen.dir/parallel.cc.o.d"
  "CMakeFiles/uctr_gen.dir/quality.cc.o"
  "CMakeFiles/uctr_gen.dir/quality.cc.o.d"
  "CMakeFiles/uctr_gen.dir/sample.cc.o"
  "CMakeFiles/uctr_gen.dir/sample.cc.o.d"
  "CMakeFiles/uctr_gen.dir/serialize.cc.o"
  "CMakeFiles/uctr_gen.dir/serialize.cc.o.d"
  "libuctr_gen.a"
  "libuctr_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uctr_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
