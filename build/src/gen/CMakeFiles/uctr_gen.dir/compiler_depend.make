# Empty compiler generated dependencies file for uctr_gen.
# This may be replaced when dependencies are built.
