file(REMOVE_RECURSE
  "CMakeFiles/uctr_model.dir/features.cc.o"
  "CMakeFiles/uctr_model.dir/features.cc.o.d"
  "CMakeFiles/uctr_model.dir/interpreter.cc.o"
  "CMakeFiles/uctr_model.dir/interpreter.cc.o.d"
  "CMakeFiles/uctr_model.dir/linear_model.cc.o"
  "CMakeFiles/uctr_model.dir/linear_model.cc.o.d"
  "CMakeFiles/uctr_model.dir/qa_model.cc.o"
  "CMakeFiles/uctr_model.dir/qa_model.cc.o.d"
  "CMakeFiles/uctr_model.dir/verifier.cc.o"
  "CMakeFiles/uctr_model.dir/verifier.cc.o.d"
  "libuctr_model.a"
  "libuctr_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uctr_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
