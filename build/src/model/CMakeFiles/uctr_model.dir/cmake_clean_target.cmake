file(REMOVE_RECURSE
  "libuctr_model.a"
)
