# Empty dependencies file for uctr_model.
# This may be replaced when dependencies are built.
