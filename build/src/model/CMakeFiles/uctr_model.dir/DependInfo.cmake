
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/features.cc" "src/model/CMakeFiles/uctr_model.dir/features.cc.o" "gcc" "src/model/CMakeFiles/uctr_model.dir/features.cc.o.d"
  "/root/repo/src/model/interpreter.cc" "src/model/CMakeFiles/uctr_model.dir/interpreter.cc.o" "gcc" "src/model/CMakeFiles/uctr_model.dir/interpreter.cc.o.d"
  "/root/repo/src/model/linear_model.cc" "src/model/CMakeFiles/uctr_model.dir/linear_model.cc.o" "gcc" "src/model/CMakeFiles/uctr_model.dir/linear_model.cc.o.d"
  "/root/repo/src/model/qa_model.cc" "src/model/CMakeFiles/uctr_model.dir/qa_model.cc.o" "gcc" "src/model/CMakeFiles/uctr_model.dir/qa_model.cc.o.d"
  "/root/repo/src/model/verifier.cc" "src/model/CMakeFiles/uctr_model.dir/verifier.cc.o" "gcc" "src/model/CMakeFiles/uctr_model.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/uctr_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/hybrid/CMakeFiles/uctr_hybrid.dir/DependInfo.cmake"
  "/root/repo/build/src/nlgen/CMakeFiles/uctr_nlgen.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/uctr_program.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/uctr_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uctr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/uctr_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/uctr_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/uctr_arith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
