file(REMOVE_RECURSE
  "libuctr_program.a"
)
