# Empty compiler generated dependencies file for uctr_program.
# This may be replaced when dependencies are built.
