file(REMOVE_RECURSE
  "CMakeFiles/uctr_program.dir/auto_generator.cc.o"
  "CMakeFiles/uctr_program.dir/auto_generator.cc.o.d"
  "CMakeFiles/uctr_program.dir/library.cc.o"
  "CMakeFiles/uctr_program.dir/library.cc.o.d"
  "CMakeFiles/uctr_program.dir/program.cc.o"
  "CMakeFiles/uctr_program.dir/program.cc.o.d"
  "CMakeFiles/uctr_program.dir/sampler.cc.o"
  "CMakeFiles/uctr_program.dir/sampler.cc.o.d"
  "CMakeFiles/uctr_program.dir/template.cc.o"
  "CMakeFiles/uctr_program.dir/template.cc.o.d"
  "CMakeFiles/uctr_program.dir/templatizer.cc.o"
  "CMakeFiles/uctr_program.dir/templatizer.cc.o.d"
  "libuctr_program.a"
  "libuctr_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uctr_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
