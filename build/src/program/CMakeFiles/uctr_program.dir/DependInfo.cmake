
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/program/auto_generator.cc" "src/program/CMakeFiles/uctr_program.dir/auto_generator.cc.o" "gcc" "src/program/CMakeFiles/uctr_program.dir/auto_generator.cc.o.d"
  "/root/repo/src/program/library.cc" "src/program/CMakeFiles/uctr_program.dir/library.cc.o" "gcc" "src/program/CMakeFiles/uctr_program.dir/library.cc.o.d"
  "/root/repo/src/program/program.cc" "src/program/CMakeFiles/uctr_program.dir/program.cc.o" "gcc" "src/program/CMakeFiles/uctr_program.dir/program.cc.o.d"
  "/root/repo/src/program/sampler.cc" "src/program/CMakeFiles/uctr_program.dir/sampler.cc.o" "gcc" "src/program/CMakeFiles/uctr_program.dir/sampler.cc.o.d"
  "/root/repo/src/program/template.cc" "src/program/CMakeFiles/uctr_program.dir/template.cc.o" "gcc" "src/program/CMakeFiles/uctr_program.dir/template.cc.o.d"
  "/root/repo/src/program/templatizer.cc" "src/program/CMakeFiles/uctr_program.dir/templatizer.cc.o" "gcc" "src/program/CMakeFiles/uctr_program.dir/templatizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/uctr_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/uctr_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/uctr_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/uctr_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uctr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
