file(REMOVE_RECURSE
  "CMakeFiles/uctr_datasets.dir/benchmark.cc.o"
  "CMakeFiles/uctr_datasets.dir/benchmark.cc.o.d"
  "CMakeFiles/uctr_datasets.dir/corpus.cc.o"
  "CMakeFiles/uctr_datasets.dir/corpus.cc.o.d"
  "CMakeFiles/uctr_datasets.dir/retrieval.cc.o"
  "CMakeFiles/uctr_datasets.dir/retrieval.cc.o.d"
  "CMakeFiles/uctr_datasets.dir/vocab.cc.o"
  "CMakeFiles/uctr_datasets.dir/vocab.cc.o.d"
  "libuctr_datasets.a"
  "libuctr_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uctr_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
