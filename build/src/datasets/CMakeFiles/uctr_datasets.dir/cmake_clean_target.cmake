file(REMOVE_RECURSE
  "libuctr_datasets.a"
)
