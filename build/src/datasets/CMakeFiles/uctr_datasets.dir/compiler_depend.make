# Empty compiler generated dependencies file for uctr_datasets.
# This may be replaced when dependencies are built.
