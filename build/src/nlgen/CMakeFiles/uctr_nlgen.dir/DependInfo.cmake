
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlgen/arith_realizer.cc" "src/nlgen/CMakeFiles/uctr_nlgen.dir/arith_realizer.cc.o" "gcc" "src/nlgen/CMakeFiles/uctr_nlgen.dir/arith_realizer.cc.o.d"
  "/root/repo/src/nlgen/lexicon.cc" "src/nlgen/CMakeFiles/uctr_nlgen.dir/lexicon.cc.o" "gcc" "src/nlgen/CMakeFiles/uctr_nlgen.dir/lexicon.cc.o.d"
  "/root/repo/src/nlgen/logic_realizer.cc" "src/nlgen/CMakeFiles/uctr_nlgen.dir/logic_realizer.cc.o" "gcc" "src/nlgen/CMakeFiles/uctr_nlgen.dir/logic_realizer.cc.o.d"
  "/root/repo/src/nlgen/nl_generator.cc" "src/nlgen/CMakeFiles/uctr_nlgen.dir/nl_generator.cc.o" "gcc" "src/nlgen/CMakeFiles/uctr_nlgen.dir/nl_generator.cc.o.d"
  "/root/repo/src/nlgen/paraphraser.cc" "src/nlgen/CMakeFiles/uctr_nlgen.dir/paraphraser.cc.o" "gcc" "src/nlgen/CMakeFiles/uctr_nlgen.dir/paraphraser.cc.o.d"
  "/root/repo/src/nlgen/realize_util.cc" "src/nlgen/CMakeFiles/uctr_nlgen.dir/realize_util.cc.o" "gcc" "src/nlgen/CMakeFiles/uctr_nlgen.dir/realize_util.cc.o.d"
  "/root/repo/src/nlgen/sql_realizer.cc" "src/nlgen/CMakeFiles/uctr_nlgen.dir/sql_realizer.cc.o" "gcc" "src/nlgen/CMakeFiles/uctr_nlgen.dir/sql_realizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/program/CMakeFiles/uctr_program.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/uctr_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/uctr_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/uctr_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uctr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/uctr_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
