# Empty compiler generated dependencies file for uctr_nlgen.
# This may be replaced when dependencies are built.
