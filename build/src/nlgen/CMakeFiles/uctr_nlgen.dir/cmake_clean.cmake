file(REMOVE_RECURSE
  "CMakeFiles/uctr_nlgen.dir/arith_realizer.cc.o"
  "CMakeFiles/uctr_nlgen.dir/arith_realizer.cc.o.d"
  "CMakeFiles/uctr_nlgen.dir/lexicon.cc.o"
  "CMakeFiles/uctr_nlgen.dir/lexicon.cc.o.d"
  "CMakeFiles/uctr_nlgen.dir/logic_realizer.cc.o"
  "CMakeFiles/uctr_nlgen.dir/logic_realizer.cc.o.d"
  "CMakeFiles/uctr_nlgen.dir/nl_generator.cc.o"
  "CMakeFiles/uctr_nlgen.dir/nl_generator.cc.o.d"
  "CMakeFiles/uctr_nlgen.dir/paraphraser.cc.o"
  "CMakeFiles/uctr_nlgen.dir/paraphraser.cc.o.d"
  "CMakeFiles/uctr_nlgen.dir/realize_util.cc.o"
  "CMakeFiles/uctr_nlgen.dir/realize_util.cc.o.d"
  "CMakeFiles/uctr_nlgen.dir/sql_realizer.cc.o"
  "CMakeFiles/uctr_nlgen.dir/sql_realizer.cc.o.d"
  "libuctr_nlgen.a"
  "libuctr_nlgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uctr_nlgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
