file(REMOVE_RECURSE
  "libuctr_nlgen.a"
)
