# Empty compiler generated dependencies file for uctr_baselines.
# This may be replaced when dependencies are built.
