file(REMOVE_RECURSE
  "libuctr_baselines.a"
)
