file(REMOVE_RECURSE
  "CMakeFiles/uctr_baselines.dir/mqa_qg.cc.o"
  "CMakeFiles/uctr_baselines.dir/mqa_qg.cc.o.d"
  "libuctr_baselines.a"
  "libuctr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uctr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
