# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("table")
subdirs("sql")
subdirs("logic")
subdirs("arith")
subdirs("program")
subdirs("nlgen")
subdirs("hybrid")
subdirs("gen")
subdirs("model")
subdirs("datasets")
subdirs("eval")
subdirs("baselines")
