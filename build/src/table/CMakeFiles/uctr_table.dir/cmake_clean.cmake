file(REMOVE_RECURSE
  "CMakeFiles/uctr_table.dir/table.cc.o"
  "CMakeFiles/uctr_table.dir/table.cc.o.d"
  "CMakeFiles/uctr_table.dir/value.cc.o"
  "CMakeFiles/uctr_table.dir/value.cc.o.d"
  "libuctr_table.a"
  "libuctr_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uctr_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
