# Empty dependencies file for uctr_table.
# This may be replaced when dependencies are built.
