file(REMOVE_RECURSE
  "libuctr_table.a"
)
