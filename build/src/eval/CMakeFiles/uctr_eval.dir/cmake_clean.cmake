file(REMOVE_RECURSE
  "CMakeFiles/uctr_eval.dir/metrics.cc.o"
  "CMakeFiles/uctr_eval.dir/metrics.cc.o.d"
  "libuctr_eval.a"
  "libuctr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uctr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
