file(REMOVE_RECURSE
  "libuctr_eval.a"
)
