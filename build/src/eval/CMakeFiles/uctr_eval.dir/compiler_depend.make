# Empty compiler generated dependencies file for uctr_eval.
# This may be replaced when dependencies are built.
