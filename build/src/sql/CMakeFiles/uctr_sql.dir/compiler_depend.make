# Empty compiler generated dependencies file for uctr_sql.
# This may be replaced when dependencies are built.
