file(REMOVE_RECURSE
  "CMakeFiles/uctr_sql.dir/ast.cc.o"
  "CMakeFiles/uctr_sql.dir/ast.cc.o.d"
  "CMakeFiles/uctr_sql.dir/executor.cc.o"
  "CMakeFiles/uctr_sql.dir/executor.cc.o.d"
  "CMakeFiles/uctr_sql.dir/lexer.cc.o"
  "CMakeFiles/uctr_sql.dir/lexer.cc.o.d"
  "CMakeFiles/uctr_sql.dir/parser.cc.o"
  "CMakeFiles/uctr_sql.dir/parser.cc.o.d"
  "libuctr_sql.a"
  "libuctr_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uctr_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
