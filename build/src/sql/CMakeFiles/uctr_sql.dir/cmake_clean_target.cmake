file(REMOVE_RECURSE
  "libuctr_sql.a"
)
