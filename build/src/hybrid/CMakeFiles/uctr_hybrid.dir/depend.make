# Empty dependencies file for uctr_hybrid.
# This may be replaced when dependencies are built.
