file(REMOVE_RECURSE
  "libuctr_hybrid.a"
)
