file(REMOVE_RECURSE
  "CMakeFiles/uctr_hybrid.dir/table_to_text.cc.o"
  "CMakeFiles/uctr_hybrid.dir/table_to_text.cc.o.d"
  "CMakeFiles/uctr_hybrid.dir/text_to_table.cc.o"
  "CMakeFiles/uctr_hybrid.dir/text_to_table.cc.o.d"
  "libuctr_hybrid.a"
  "libuctr_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uctr_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
