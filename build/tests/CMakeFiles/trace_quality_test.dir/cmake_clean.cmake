file(REMOVE_RECURSE
  "CMakeFiles/trace_quality_test.dir/trace_quality_test.cc.o"
  "CMakeFiles/trace_quality_test.dir/trace_quality_test.cc.o.d"
  "trace_quality_test"
  "trace_quality_test.pdb"
  "trace_quality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
