# Empty compiler generated dependencies file for trace_quality_test.
# This may be replaced when dependencies are built.
