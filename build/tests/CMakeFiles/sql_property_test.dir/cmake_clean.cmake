file(REMOVE_RECURSE
  "CMakeFiles/sql_property_test.dir/sql_property_test.cc.o"
  "CMakeFiles/sql_property_test.dir/sql_property_test.cc.o.d"
  "sql_property_test"
  "sql_property_test.pdb"
  "sql_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
