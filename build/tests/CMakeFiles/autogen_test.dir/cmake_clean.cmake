file(REMOVE_RECURSE
  "CMakeFiles/autogen_test.dir/autogen_test.cc.o"
  "CMakeFiles/autogen_test.dir/autogen_test.cc.o.d"
  "autogen_test"
  "autogen_test.pdb"
  "autogen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autogen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
