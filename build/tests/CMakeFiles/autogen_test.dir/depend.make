# Empty dependencies file for autogen_test.
# This may be replaced when dependencies are built.
