file(REMOVE_RECURSE
  "CMakeFiles/arith_test.dir/arith_test.cc.o"
  "CMakeFiles/arith_test.dir/arith_test.cc.o.d"
  "arith_test"
  "arith_test.pdb"
  "arith_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arith_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
