# Empty dependencies file for nlgen_test.
# This may be replaced when dependencies are built.
