file(REMOVE_RECURSE
  "CMakeFiles/nlgen_test.dir/nlgen_test.cc.o"
  "CMakeFiles/nlgen_test.dir/nlgen_test.cc.o.d"
  "nlgen_test"
  "nlgen_test.pdb"
  "nlgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
