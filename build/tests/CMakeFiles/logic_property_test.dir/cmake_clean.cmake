file(REMOVE_RECURSE
  "CMakeFiles/logic_property_test.dir/logic_property_test.cc.o"
  "CMakeFiles/logic_property_test.dir/logic_property_test.cc.o.d"
  "logic_property_test"
  "logic_property_test.pdb"
  "logic_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
