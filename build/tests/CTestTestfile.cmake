# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/logic_test[1]_include.cmake")
include("/root/repo/build/tests/arith_test[1]_include.cmake")
include("/root/repo/build/tests/program_test[1]_include.cmake")
include("/root/repo/build/tests/nlgen_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/datasets_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/autogen_test[1]_include.cmake")
include("/root/repo/build/tests/sql_property_test[1]_include.cmake")
include("/root/repo/build/tests/logic_property_test[1]_include.cmake")
include("/root/repo/build/tests/arith_property_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/retrieval_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/trace_quality_test[1]_include.cmake")
include("/root/repo/build/tests/degenerate_test[1]_include.cmake")
