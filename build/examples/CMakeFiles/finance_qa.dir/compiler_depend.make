# Empty compiler generated dependencies file for finance_qa.
# This may be replaced when dependencies are built.
