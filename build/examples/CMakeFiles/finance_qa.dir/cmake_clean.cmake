file(REMOVE_RECURSE
  "CMakeFiles/finance_qa.dir/finance_qa.cpp.o"
  "CMakeFiles/finance_qa.dir/finance_qa.cpp.o.d"
  "finance_qa"
  "finance_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finance_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
