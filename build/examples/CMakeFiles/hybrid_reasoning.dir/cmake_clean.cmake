file(REMOVE_RECURSE
  "CMakeFiles/hybrid_reasoning.dir/hybrid_reasoning.cpp.o"
  "CMakeFiles/hybrid_reasoning.dir/hybrid_reasoning.cpp.o.d"
  "hybrid_reasoning"
  "hybrid_reasoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_reasoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
