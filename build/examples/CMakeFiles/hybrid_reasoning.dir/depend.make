# Empty dependencies file for hybrid_reasoning.
# This may be replaced when dependencies are built.
