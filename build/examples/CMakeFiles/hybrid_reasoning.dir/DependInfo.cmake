
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hybrid_reasoning.cpp" "examples/CMakeFiles/hybrid_reasoning.dir/hybrid_reasoning.cpp.o" "gcc" "examples/CMakeFiles/hybrid_reasoning.dir/hybrid_reasoning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/uctr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/uctr_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/uctr_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/hybrid/CMakeFiles/uctr_hybrid.dir/DependInfo.cmake"
  "/root/repo/build/src/nlgen/CMakeFiles/uctr_nlgen.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/uctr_program.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/uctr_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uctr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/uctr_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/uctr_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/uctr_arith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
