file(REMOVE_RECURSE
  "CMakeFiles/fact_verification.dir/fact_verification.cpp.o"
  "CMakeFiles/fact_verification.dir/fact_verification.cpp.o.d"
  "fact_verification"
  "fact_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
