# Empty dependencies file for fact_verification.
# This may be replaced when dependencies are built.
