#ifndef UCTR_OBS_METRICS_H_
#define UCTR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace uctr::obs {

/// \brief A monotonically increasing counter. Increment is lock-free;
/// reads are racy-but-atomic (fine for monitoring).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief A latency histogram over exponential microsecond buckets:
/// bucket i holds observations in [2^i, 2^(i+1)) microseconds, with an
/// underflow bucket for < 1us and an overflow bucket above ~134s.
/// Observe is lock-free (one relaxed add per observation).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 28;  // 2^27 us ≈ 134 s

  void Observe(double micros);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// \brief Sum of all observations in microseconds.
  double sum_micros() const {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) /
           1000.0;
  }
  double mean_micros() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : sum_micros() / static_cast<double>(n);
  }
  /// \brief Bucket-upper-bound estimate of the q-quantile (q in [0,1]).
  double QuantileMicros(double q) const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
};

/// \brief Named counters and histograms shared by every pipeline stage,
/// with a plain-text exposition dump (Prometheus-flavored `name value`
/// lines).
///
/// counter()/histogram() return stable pointers: instruments live as long
/// as the registry, so hot paths look them up once and then update
/// lock-free. Lookup itself takes a mutex (cold path only).
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// \brief All instruments, sorted by name:
  ///   requests_total 42
  ///   latency_execute_us{stat="count"} 40
  ///   latency_execute_us{stat="mean"} 1320.5
  ///   latency_execute_us{stat="p50"} 1024
  ///   latency_execute_us{stat="p99"} 8192
  std::string ExpositionText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// \brief The process-wide registry. Library code (executors, the
/// generator, the corpus loader, serving) records here by default, so one
/// dump covers every stage; callers that need isolated counts (tests,
/// embedded servers) pass their own registry where an API accepts one.
MetricsRegistry& DefaultRegistry();

}  // namespace uctr::obs

#endif  // UCTR_OBS_METRICS_H_
