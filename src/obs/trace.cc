#include "obs/trace.h"

#include "common/json.h"

namespace uctr::obs {

namespace {

/// Innermost active span of this thread; 0 when no span is open. Spans
/// restore the previous value when they end, so the chain behaves like a
/// per-thread stack without allocating one.
thread_local uint64_t tls_current_span = 0;

}  // namespace

Span::Span(Tracer* tracer, std::string_view name, uint64_t span_id,
           uint64_t parent_id, std::chrono::steady_clock::time_point start)
    : tracer_(tracer), start_(start), restore_parent_(parent_id) {
  event_.span_id = span_id;
  event_.parent_id = parent_id;
  event_.name.assign(name.data(), name.size());
  tls_current_span = span_id;
}

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      event_(std::move(other.event_)),
      start_(other.start_),
      restore_parent_(other.restore_parent_) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    event_ = std::move(other.event_);
    start_ = other.start_;
    restore_parent_ = other.restore_parent_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::AddAttr(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  event_.attrs.emplace_back(std::move(key), std::move(value));
}

void Span::End() {
  if (tracer_ == nullptr) return;
  auto now = std::chrono::steady_clock::now();
  event_.start_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        start_ - tracer_->epoch_)
                        .count();
  event_.duration_us =
      std::chrono::duration_cast<std::chrono::microseconds>(now - start_)
          .count();
  // Pop this span off the thread's nesting chain. A span ended on a
  // different thread than it started on (rare; discouraged) leaves that
  // thread's chain alone.
  if (tls_current_span == event_.span_id) {
    tls_current_span = restore_parent_;
  }
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->Record(std::move(event_));
}

Tracer::Tracer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

Span Tracer::StartSpan(std::string_view name) {
  if (!enabled()) return Span();
  uint64_t id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  return Span(this, name, id, tls_current_span,
              std::chrono::steady_clock::now());
}

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_slot_] = std::move(event);
  }
  next_slot_ = (next_slot_ + 1) % capacity_;
  size_ = ring_.size();
  ++total_recorded_;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_recorded_;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // When the ring has wrapped, next_slot_ points at the oldest event.
  size_t start = ring_.size() < capacity_ ? 0 : next_slot_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string Tracer::ToLdjson() const {
  std::string out;
  for (const TraceEvent& ev : Snapshot()) {
    out += "{\"name\":" + json::Quote(ev.name) +
           ",\"span\":" + std::to_string(ev.span_id) +
           ",\"parent\":" + std::to_string(ev.parent_id) +
           ",\"start_us\":" + std::to_string(ev.start_us) +
           ",\"dur_us\":" + std::to_string(ev.duration_us);
    if (!ev.attrs.empty()) {
      out += ",\"attrs\":{";
      for (size_t i = 0; i < ev.attrs.size(); ++i) {
        if (i > 0) out += ",";
        out += json::Quote(ev.attrs[i].first) + ":" +
               json::Quote(ev.attrs[i].second);
      }
      out += "}";
    }
    out += "}\n";
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_slot_ = 0;
  size_ = 0;
}

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace uctr::obs
