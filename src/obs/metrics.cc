#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace uctr::obs {

namespace {

size_t BucketFor(double micros) {
  if (!(micros >= 1.0)) return 0;  // underflow (and NaN) land in bucket 0
  size_t b = static_cast<size_t>(std::log2(micros)) + 1;
  return std::min(b, Histogram::kNumBuckets - 1);
}

std::string FormatValue(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<uint64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

void Histogram::Observe(double micros) {
  if (micros < 0.0 || std::isnan(micros)) micros = 0.0;
  buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(micros * 1000.0),
                       std::memory_order_relaxed);
}

double Histogram::QuantileMicros(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  // Rank is 1-based: the ceil(q * total)-th smallest observation.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * total));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // Upper bound of bucket i: 2^i microseconds (bucket 0 = sub-1us).
      return std::ldexp(1.0, static_cast<int>(i));
    }
  }
  return std::ldexp(1.0, static_cast<int>(kNumBuckets - 1));
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::ExpositionText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name + " " + FormatValue(static_cast<double>(c->value())) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + "{stat=\"count\"} " +
           FormatValue(static_cast<double>(h->count())) + "\n";
    out += name + "{stat=\"sum\"} " + FormatValue(h->sum_micros()) + "\n";
    out += name + "{stat=\"mean\"} " + FormatValue(h->mean_micros()) + "\n";
    out += name + "{stat=\"p50\"} " + FormatValue(h->QuantileMicros(0.5)) +
           "\n";
    out += name + "{stat=\"p90\"} " + FormatValue(h->QuantileMicros(0.9)) +
           "\n";
    out += name + "{stat=\"p99\"} " + FormatValue(h->QuantileMicros(0.99)) +
           "\n";
  }
  return out;
}

MetricsRegistry& DefaultRegistry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace uctr::obs
