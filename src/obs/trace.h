#ifndef UCTR_OBS_TRACE_H_
#define UCTR_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace uctr::obs {

/// \brief One finished span: a named wall-time interval with a parent
/// link and free-form key/value attributes.
struct TraceEvent {
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root span.
  std::string name;
  int64_t start_us = 0;  ///< Microseconds since the tracer's epoch.
  int64_t duration_us = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer;

/// \brief RAII span handle returned by Tracer::StartSpan. Records a
/// TraceEvent into the tracer's ring buffer when destroyed (or ended
/// explicitly). Move-only; a default-constructed or moved-from span is
/// inactive and every operation on it is a no-op — which is also what
/// StartSpan returns while the tracer is disabled, so instrumentation
/// sites pay one relaxed atomic load when tracing is off.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  void AddAttr(std::string key, std::string value);
  /// \brief Records the span now instead of at destruction. Idempotent.
  void End();

  bool active() const { return tracer_ != nullptr; }
  uint64_t span_id() const { return event_.span_id; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string_view name, uint64_t span_id,
       uint64_t parent_id, std::chrono::steady_clock::time_point start);

  Tracer* tracer_ = nullptr;
  TraceEvent event_;
  std::chrono::steady_clock::time_point start_{};
  uint64_t restore_parent_ = 0;  ///< Thread-local parent to restore on End.
};

/// \brief A lightweight in-process tracer: spans nest via a thread-local
/// current-span id, finished spans land in a bounded ring buffer (oldest
/// events are overwritten — memory use is fixed at `capacity` events),
/// and the buffer dumps as ldjson (one JSON object per line).
///
/// Tracing is off by default: StartSpan is a single relaxed atomic load
/// until set_enabled(true), so instrumented hot paths keep their lock-free
/// contract. When enabled, recording a finished span takes a mutex —
/// tracing is an opt-in diagnostic mode, not part of the steady-state
/// hot path.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 8192;

  explicit Tracer(size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// \brief Starts a span whose parent is the calling thread's innermost
  /// active span (spans nest lexically per thread). Inactive no-op span
  /// when the tracer is disabled.
  Span StartSpan(std::string_view name);

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  size_t capacity() const { return capacity_; }
  /// \brief Finished spans currently buffered (<= capacity()).
  size_t size() const;
  /// \brief Total spans recorded since construction, including those the
  /// ring has since overwritten.
  uint64_t total_recorded() const;

  /// \brief Buffered events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// \brief One JSON object per buffered event, oldest first:
  ///   {"name":"serve.execute","span":7,"parent":5,"start_us":120,
  ///    "dur_us":3142,"attrs":{"op":"verify"}}
  std::string ToLdjson() const;

  /// \brief Discards all buffered events (total_recorded keeps counting).
  void Clear();

  /// \brief The process-wide tracer that instrumented library code
  /// records into; disabled until a front end opts in (e.g. uctr_serve
  /// --trace-out).
  static Tracer& Default();

 private:
  friend class Span;
  void Record(TraceEvent event);

  const size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_span_id_{1};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t next_slot_ = 0;
  size_t size_ = 0;
  uint64_t total_recorded_ = 0;
};

}  // namespace uctr::obs

#endif  // UCTR_OBS_TRACE_H_
