#include "net/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "net/socket_util.h"

namespace uctr::net {

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      decoder_(std::move(other.decoder_)),
      max_frame_bytes_(other.max_frame_bytes_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    decoder_ = std::move(other.decoder_);
    max_frame_bytes_ = other.max_frame_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               size_t max_frame_bytes) {
  int fd = 0;
  UCTR_ASSIGN_OR_RETURN(fd, ConnectTcp(host, port));
  Client client;
  client.fd_ = fd;
  client.max_frame_bytes_ = max_frame_bytes;
  client.decoder_ = FrameDecoder(max_frame_bytes);
  return client;
}

Status Client::Send(const std::string& payload) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  std::string frame;
  UCTR_ASSIGN_OR_RETURN(frame, EncodeFrame(payload, max_frame_bytes_));
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return ErrnoStatus("send");
  }
  return Status::OK();
}

Result<std::string> Client::Recv() {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  std::string payload;
  char buf[65536];
  while (true) {
    if (decoder_.Next(&payload)) return payload;
    UCTR_RETURN_NOT_OK(decoder_.error());
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      UCTR_RETURN_NOT_OK(decoder_.Feed(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return ErrnoStatus("read");
    // EOF. A clean close lands exactly between frames.
    if (decoder_.buffered_bytes() == 0) {
      return Status::Unavailable("connection closed");
    }
    return Status::ParseError("connection closed mid-frame (" +
                              std::to_string(decoder_.buffered_bytes()) +
                              " bytes buffered)");
  }
}

Result<std::string> Client::RecvTimeout(int timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  std::string payload;
  if (decoder_.Next(&payload)) return payload;
  UCTR_RETURN_NOT_OK(decoder_.error());
  char buf[65536];
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  // `left` is recomputed from the absolute deadline after EVERY wakeup —
  // poll returns, EINTR, partial reads — so neither a signal storm nor a
  // peer trickling one byte per wakeup can extend the effective timeout:
  // each iteration either makes frame progress or burns real deadline.
  bool first_poll = true;
  while (true) {
    auto now = std::chrono::steady_clock::now();
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - now)
                    .count();
    if (left <= 0) {
      // Deadline spent. One zero-timeout poll is still allowed on entry
      // (RecvTimeout(0) means "drain what is already readable"), but a
      // loop that re-enters here — e.g. poll kept failing with EINTR
      // under repeated signals — must give up rather than spin.
      if (!first_poll) {
        return Status::DeadlineExceeded("no response frame within " +
                                        std::to_string(timeout_ms) + " ms");
      }
      left = 0;
    }
    first_poll = false;
    struct pollfd pfd = {fd_, POLLIN, 0};
    int ready = poll(&pfd, 1, static_cast<int>(left));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (ready == 0) {
      return Status::DeadlineExceeded("no response frame within " +
                                      std::to_string(timeout_ms) + " ms");
    }
    // Non-blocking read even though the fd is blocking: poll readability
    // is only a hint (a spurious wakeup, or bytes consumed by the kernel
    // after checksum failure, leaves nothing to read), and a blocking
    // read here would hang past the deadline. MSG_DONTWAIT makes the
    // EAGAIN branch below real instead of dead code.
    ssize_t n = recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      UCTR_RETURN_NOT_OK(decoder_.Feed(buf, static_cast<size_t>(n)));
      if (decoder_.Next(&payload)) return payload;
      UCTR_RETURN_NOT_OK(decoder_.error());
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (n < 0) return ErrnoStatus("read");
    if (decoder_.buffered_bytes() == 0) {
      return Status::Unavailable("connection closed");
    }
    return Status::ParseError("connection closed mid-frame");
  }
}

Result<std::string> Client::Call(const std::string& payload) {
  UCTR_RETURN_NOT_OK(Send(payload));
  return Recv();
}

void Client::ShutdownWrite() {
  if (fd_ >= 0) shutdown(fd_, SHUT_WR);
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

}  // namespace uctr::net
