#include "net/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "net/socket_util.h"

namespace uctr::net {

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      decoder_(std::move(other.decoder_)),
      max_frame_bytes_(other.max_frame_bytes_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    decoder_ = std::move(other.decoder_);
    max_frame_bytes_ = other.max_frame_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               size_t max_frame_bytes) {
  int fd = 0;
  UCTR_ASSIGN_OR_RETURN(fd, ConnectTcp(host, port));
  Client client;
  client.fd_ = fd;
  client.max_frame_bytes_ = max_frame_bytes;
  client.decoder_ = FrameDecoder(max_frame_bytes);
  return client;
}

Status Client::Send(const std::string& payload) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  std::string frame;
  UCTR_ASSIGN_OR_RETURN(frame, EncodeFrame(payload, max_frame_bytes_));
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return ErrnoStatus("send");
  }
  return Status::OK();
}

Result<std::string> Client::Recv() {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  std::string payload;
  char buf[65536];
  while (true) {
    if (decoder_.Next(&payload)) return payload;
    UCTR_RETURN_NOT_OK(decoder_.error());
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      UCTR_RETURN_NOT_OK(decoder_.Feed(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return ErrnoStatus("read");
    // EOF. A clean close lands exactly between frames.
    if (decoder_.buffered_bytes() == 0) {
      return Status::Unavailable("connection closed");
    }
    return Status::ParseError("connection closed mid-frame (" +
                              std::to_string(decoder_.buffered_bytes()) +
                              " bytes buffered)");
  }
}

Result<std::string> Client::RecvTimeout(int timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  std::string payload;
  if (decoder_.Next(&payload)) return payload;
  UCTR_RETURN_NOT_OK(decoder_.error());
  char buf[65536];
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (true) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
    if (left < 0) left = 0;
    struct pollfd pfd = {fd_, POLLIN, 0};
    int ready = poll(&pfd, 1, static_cast<int>(left));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (ready == 0) {
      return Status::DeadlineExceeded("no response frame within " +
                                      std::to_string(timeout_ms) + " ms");
    }
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      UCTR_RETURN_NOT_OK(decoder_.Feed(buf, static_cast<size_t>(n)));
      if (decoder_.Next(&payload)) return payload;
      UCTR_RETURN_NOT_OK(decoder_.error());
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (n < 0) return ErrnoStatus("read");
    if (decoder_.buffered_bytes() == 0) {
      return Status::Unavailable("connection closed");
    }
    return Status::ParseError("connection closed mid-frame");
  }
}

Result<std::string> Client::Call(const std::string& payload) {
  UCTR_RETURN_NOT_OK(Send(payload));
  return Recv();
}

void Client::ShutdownWrite() {
  if (fd_ >= 0) shutdown(fd_, SHUT_WR);
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

}  // namespace uctr::net
