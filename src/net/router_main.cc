// uctr_router — consistent-hash shard router over a pool of
// `uctr_serve --listen` backends.
//
//   uctr_router --listen HOST:PORT --backends HOST:PORT[,HOST:PORT...]
//               [--workers N] [--queue N] [--replicas N]
//               [--put-replicas N]
//               [--hot-threshold N] [--hot-window-ms N]
//               [--probe-interval-ms N] [--probe-timeout-ms N]
//               [--timeout-ms N] [--vnodes N]
//               [--metrics] [--trace-out FILE]
//               [--fault-spec SPEC] [--fault-seed N]
//
// Speaks the exact uctr_serve wire protocol (length-prefixed JSON lines,
// per-connection ordered responses), so clients — including uctr_load —
// cannot tell a router from a single backend. Requests route by table
// fingerprint over a consistent-hash ring (see src/net/router.h for the
// routing, failover, hedging, and membership rules).
//
// Port 0 binds an ephemeral port; the resolved address is announced on
// stderr as "uctr_router: listening on HOST:PORT" (same contract as
// uctr_serve, so scripts/check.sh reuses its port-scraping). SIGINT /
// SIGTERM drain gracefully: stop accepting, finish every in-flight
// request against the backends, flush every response, then exit. Exit 0
// guarantees every requested byte made it out.
//
// --fault-spec arms the injector for the router's own sites
// (router.connect / router.send / router.recv / router.probe) plus the
// shared transport sites (net.accept / net.read / net.write).

#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "net/router.h"
#include "net/server.h"
#include "net/socket_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace uctr;

int Fail(const std::string& message) {
  std::cerr << "uctr_router: " << message << "\n";
  return 1;
}

volatile std::sig_atomic_t g_shutdown_requested = 0;

extern "C" void HandleShutdownSignal(int) { g_shutdown_requested = 1; }

void InstallShutdownHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: the loop tick observes the flag
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string key = arg.substr(2);
    std::string value = "1";
    if (auto eq = key.find('='); eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    flags[key] = value;
  }
  return flags;
}

size_t FlagSize(const std::map<std::string, std::string>& flags,
                const std::string& key, size_t fallback) {
  auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  return static_cast<size_t>(std::stoul(it->second));
}

Status MaybeArmFaults(const std::map<std::string, std::string>& flags) {
  auto it = flags.find("fault-spec");
  if (it == flags.end()) return Status::OK();
  if (auto seed = flags.find("fault-seed"); seed != flags.end()) {
    fault::FaultInjector::Global().Seed(std::stoull(seed->second));
  }
  return fault::FaultInjector::Global().ArmSpec(it->second);
}

std::string MaybeEnableTracing(
    const std::map<std::string, std::string>& flags) {
  auto it = flags.find("trace-out");
  if (it == flags.end()) return "";
  obs::Tracer::Default().set_enabled(true);
  return it->second;
}

int DumpTrace(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (out) out << obs::Tracer::Default().ToLdjson();
  out.close();
  if (!out) return Fail("cannot write trace to " + path);
  std::cerr << "wrote " << obs::Tracer::Default().size() << " spans to "
            << path << "\n";
  return 0;
}

Result<std::vector<net::HostPort>> ParseBackends(const std::string& list) {
  std::vector<net::HostPort> backends;
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    std::string piece = list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!piece.empty()) {
      auto hp = net::ParseHostPort(piece);
      if (!hp.ok()) return hp.status();
      if (hp->port == 0) {
        return Status::InvalidArgument("backend '" + piece +
                                       "' needs an explicit port");
      }
      backends.push_back(*hp);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (backends.empty()) {
    return Status::InvalidArgument(
        "--backends needs at least one HOST:PORT");
  }
  return backends;
}

int Run(const std::map<std::string, std::string>& flags) {
  auto listen_it = flags.find("listen");
  if (listen_it == flags.end()) {
    return Fail("--listen HOST:PORT is required");
  }
  auto backends_it = flags.find("backends");
  if (backends_it == flags.end()) {
    return Fail("--backends HOST:PORT[,HOST:PORT...] is required");
  }
  auto listen = net::ParseHostPort(listen_it->second);
  if (!listen.ok()) return Fail(listen.status().ToString());
  auto backends = ParseBackends(backends_it->second);
  if (!backends.ok()) return Fail(backends.status().ToString());

  std::string trace_path = MaybeEnableTracing(flags);

  net::RouterConfig router_config;
  router_config.backends = std::move(*backends);
  router_config.workers = FlagSize(flags, "workers", 64);
  router_config.queue_capacity = FlagSize(flags, "queue", 8192);
  router_config.vnodes = FlagSize(flags, "vnodes", 64);
  router_config.replicas = FlagSize(flags, "replicas", 1);
  // Durability fan-out: each acked put_table also lands on N-1 ring
  // successors (see router.h; replica failures are counted, not fatal).
  router_config.put_replicas = FlagSize(flags, "put-replicas", 1);
  router_config.hot_threshold = FlagSize(flags, "hot-threshold", 64);
  router_config.hot_window_ms =
      static_cast<int>(FlagSize(flags, "hot-window-ms", 1000));
  router_config.probe_interval_ms =
      static_cast<int>(FlagSize(flags, "probe-interval-ms", 100));
  router_config.probe_timeout_ms =
      static_cast<int>(FlagSize(flags, "probe-timeout-ms", 500));
  router_config.call_timeout_ms =
      static_cast<int>(FlagSize(flags, "timeout-ms", 30000));
  net::Router router(router_config);
  if (Status s = router.Start(); !s.ok()) return Fail(s.ToString());
  std::cerr << "uctr_router: ring of " << router.backend_count()
            << " backends, " << router.backends_in_ring()
            << " reachable\n";

  InstallShutdownHandlers();

  net::NetServerConfig net_config;
  net_config.host = listen->host;
  net_config.port = listen->port;
  net::Server net_server(&router, net_config);
  if (Status s = net_server.Start(); !s.ok()) {
    return Fail(s.ToString());  // bind/listen failure: nonzero exit
  }
  net_server.set_shutdown_flag(&g_shutdown_requested);
  // Announced on stderr so scripts can recover an ephemeral port (same
  // format as uctr_serve).
  std::cerr << "uctr_router: listening on " << listen->host << ":"
            << net_server.port() << "\n";
  net_server.Run();
  router.Drain();
  router.Shutdown();
  std::cerr << "uctr_router: drained, shutting down\n";

  if (flags.count("metrics") != 0) {
    std::cerr << obs::DefaultRegistry().ExpositionText();
    std::cerr.flush();
    if (!std::cerr) return 1;
  }
  if (!trace_path.empty()) return DumpTrace(trace_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = ParseFlags(argc, argv, 1);
  if (Status s = MaybeArmFaults(flags); !s.ok()) return Fail(s.ToString());
  return Run(flags);
}
