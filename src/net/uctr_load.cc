// uctr_load — multi-connection load generator for `uctr_serve --listen`
// and `uctr_router`.
//
//   uctr_load --connect HOST:PORT [--connections N] [--requests N]
//             [--qps Q] [--pipeline D] [--tables T] [--put-table]
//             [--put-retries N] [--distinct-tables]
//             [--op verify|answer|mixed]
//             [--timeout-ms N] [--report-json FILE]
//   uctr_load --router HOST:PORT[,HOST:PORT...] [same flags]
//
// --router is the horizontal-scaling mode: connections are spread
// round-robin across the listed endpoints (typically one uctr_router, or
// several for router redundancy). The protocol and every check below are
// identical — a router is indistinguishable from a single backend on the
// wire, so the ordering check doubles as the router's correctness gate.
//
// --distinct-tables makes every request carry a unique table variant
// (inline-CSV modes only): each request then misses the result cache, so
// the measured throughput is the execute path, not cache hits. This is
// what the router scaling benchmark uses — cache hits are answered at the
// backend's front door and would hide the per-shard work being scaled.
//
// Drives the TCP serving front end with N concurrent connections:
//
//   closed loop (default)  — each connection keeps up to --pipeline D
//                            requests outstanding and sends the next as
//                            soon as a response frees a slot; measures
//                            the server's capacity.
//   open loop (--qps Q)    — requests are sent on a fixed schedule
//                            (Q/N per connection) regardless of response
//                            arrival; measures latency at a target rate,
//                            the way real user traffic does.
//
// Every connection checks the per-connection ordering guarantee: request
// ids are sequential, so response ids must come back in exactly the sent
// order — any hole or swap counts as lost/reordered and fails the run.
// Latency percentiles come from a shared lock-free obs::Histogram.
//
// --put-table switches to table_ref traffic: each connection first
// registers its --tables fixture variants via `put_table` (synchronously —
// a fingerprint is only knowable from the put response, so refs are never
// sent before the registration round-trips) and then drives the same
// request stream with `table_ref` instead of inline CSV. Registration
// round-trips are reported as a separate "registry" latency histogram so
// the steady-state transport percentiles are not polluted by the one-time
// warm-up cost. Transient registration failures (dropped connection,
// "rejected"/"timeout" backpressure) retry up to --put-retries attempts
// with jittered backoff before the run counts a put failure — chaos
// drills should measure serving, not one unlucky registration.
//
// --report-json FILE writes the same numbers the console report prints as
// a single machine-readable JSON object, so soak scripts and CI can gate
// on throughput or tail latency without scraping stdout.
//
// Exit status: 0 iff every request got an in-order response and no
// connection failed.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "fault/policy.h"
#include "net/client.h"
#include "net/socket_util.h"
#include "obs/metrics.h"

namespace {

using namespace uctr;
using Clock = std::chrono::steady_clock;

struct Options {
  /// Connections are dealt round-robin across these (one entry for
  /// --connect; one or more for --router).
  std::vector<net::HostPort> endpoints;
  size_t connections = 8;
  size_t requests = 1000;  // total, split round-robin across connections
  double qps = 0.0;        // 0 = closed loop
  size_t pipeline = 1;
  size_t tables = 16;
  bool put_table = false;  // register fixtures once, then table_ref traffic
  bool distinct_tables = false;  // unique table per request (cache busting)
  std::string op = "mixed";
  std::string report_json;  // empty = console report only
  int timeout_ms = 30000;
  int connect_retries = 50;  // the soak starts server + load concurrently
  /// Attempts per put_table registration (1 = no retries). Transient
  /// failures — a dropped connection, a "rejected"/"timeout" response —
  /// are retried with jittered backoff (fault::RetryPolicy) instead of
  /// aborting the whole run, so chaos drills measure serving rather than
  /// registration flakes. Permanent errors still abort immediately.
  int put_retries = 5;
};

/// Shared tallies; workers add with relaxed atomics, main prints once.
struct Tally {
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> received{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> error{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> timeout{0};
  std::atomic<uint64_t> other_status{0};
  std::atomic<uint64_t> lost{0};
  std::atomic<uint64_t> reordered{0};
  std::atomic<uint64_t> connect_failures{0};
  std::atomic<uint64_t> put_failures{0};
  obs::Histogram latency_us;
  obs::Histogram registry_us;  ///< put_table round-trips (--put-table only)
};

std::string EscapeForJson(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

/// Medal-style tables (the demo schema the serving examples use): same
/// shape, different numbers per variant, so the stream exercises distinct
/// cache keys with comparable per-request work.
std::string MakeCsv(size_t variant) {
  auto cell = [&](int base) { return std::to_string(base + (int)variant); };
  return "nation,gold,silver,bronze,total\n"
         "united states," + cell(10) + "," + cell(12) + "," + cell(8) + "," +
         cell(30) + "\nchina," + cell(8) + "," + cell(6) + "," + cell(10) +
         "," + cell(24) + "\njapan," + cell(5) + "," + cell(9) + "," +
         cell(4) + "," + cell(18) + "\ngermany," + cell(5) + "," + cell(3) +
         "," + cell(6) + "," + cell(14) + "\n";
}

std::string BuildRequest(uint64_t id, size_t variant, bool verify) {
  std::string csv = EscapeForJson(MakeCsv(variant));
  if (verify) {
    return "{\"id\":" + std::to_string(id) +
           ",\"op\":\"verify\",\"table\":\"" + csv +
           "\",\"query\":\"The gold of the row whose nation is china is " +
           std::to_string(8 + variant) + ".\"}";
  }
  return "{\"id\":" + std::to_string(id) +
         ",\"op\":\"answer\",\"table\":\"" + csv +
         "\",\"query\":\"What was the gold of the row whose nation is "
         "united states?\"}";
}

/// The --put-table request stream: same ids, ops, and queries as
/// BuildRequest, but the evidence travels as a registry fingerprint.
std::string BuildRefRequest(uint64_t id, size_t variant,
                            const std::string& fingerprint, bool verify) {
  if (verify) {
    return "{\"id\":" + std::to_string(id) +
           ",\"op\":\"verify\",\"table_ref\":\"" + fingerprint +
           "\",\"query\":\"The gold of the row whose nation is china is " +
           std::to_string(8 + variant) + ".\"}";
  }
  return "{\"id\":" + std::to_string(id) +
         ",\"op\":\"answer\",\"table_ref\":\"" + fingerprint +
         "\",\"query\":\"What was the gold of the row whose nation is "
         "united states?\"}";
}

Result<net::Client> ConnectWithRetry(const Options& options,
                                     const net::HostPort& endpoint) {
  Status last = Status::Unavailable("no attempt");
  for (int attempt = 0; attempt <= options.connect_retries; ++attempt) {
    auto client = net::Client::Connect(endpoint.host, endpoint.port);
    if (client.ok()) return client;
    last = client.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return last;
}

/// Registers every table variant over `client`, one synchronous
/// `put_table` round-trip each (ids 1..tables), recording each round-trip
/// in the registry histogram. Returns the fingerprints by variant, or an
/// empty vector on any failure — after reporting WHAT failed on stderr:
/// a put that silently dies here used to surface only as "put failures 1"
/// with the server's actual error response discarded.
///
/// Transient failures retry up to --put-retries attempts with jittered
/// backoff (fault::RetryPolicy): a dead connection is re-dialed in place
/// (put_table is content-addressed, so re-sending after an ambiguous
/// failure is idempotent), and "rejected"/"timeout" responses — pure
/// backpressure — are re-sent. Responses that prove a real bug
/// (unparseable, wrong id, "error") abort immediately.
std::vector<std::string> RegisterTables(net::Client* client,
                                        const Options& options,
                                        const net::HostPort& endpoint,
                                        Tally* tally) {
  fault::RetryOptions retry_options;
  retry_options.max_attempts = options.put_retries < 1 ? 1
                                                       : options.put_retries;
  retry_options.initial_backoff_ms = 50.0;
  retry_options.max_backoff_ms = 1000.0;
  retry_options.backoff_budget_ms = 5000.0;
  // Seed folds in the endpoint port so concurrent connections decorrelate.
  fault::RetryPolicy retry(retry_options,
                           0x10ADull ^ (uint64_t{endpoint.port} << 16),
                           nullptr);

  // Transport failure mid-put leaves the connection in an unknown state;
  // replace it before the retry (the old ids may still drain server-side,
  // which is fine: responses are matched by id, not by count).
  auto redial = [&]() {
    auto fresh = ConnectWithRetry(options, endpoint);
    if (fresh.ok()) *client = std::move(fresh).ValueOrDie();
  };

  std::vector<std::string> fingerprints;
  fingerprints.reserve(options.tables);
  for (size_t variant = 0; variant < options.tables; ++variant) {
    const uint64_t id = static_cast<uint64_t>(variant) + 1;
    std::string request = "{\"id\":" + std::to_string(id) +
                          ",\"op\":\"put_table\",\"table\":\"" +
                          EscapeForJson(MakeCsv(variant)) + "\"}";
    std::string fingerprint;
    Status put = retry.Run("load.put_table", [&]() -> Status {
      Clock::time_point sent_at = Clock::now();
      if (Status sent = client->Send(request); !sent.ok()) {
        redial();
        return Status::Unavailable("send failed: " + sent.ToString());
      }
      auto line = client->RecvTimeout(options.timeout_ms);
      if (!line.ok()) {
        redial();
        return Status::Unavailable("recv failed: " +
                                   line.status().ToString());
      }
      tally->registry_us.Observe(
          std::chrono::duration<double, std::micro>(Clock::now() - sent_at)
              .count());
      auto parsed = json::Parse(*line);
      if (!parsed.ok() || !parsed->is_object()) {
        return Status::Internal("unparseable response: " + *line);
      }
      const json::Value::Object& obj = parsed->as_object();
      uint64_t got_id =
          static_cast<uint64_t>(json::GetNumberOr(obj, "id", 0));
      std::string status = json::GetStringOr(obj, "status", "");
      if (status == "rejected" || status == "timeout") {
        // Backpressure / queue shedding: transient by contract.
        return Status::Unavailable("response: " + *line);
      }
      if (got_id != id || status != "ok") {
        // The response carries the server's own error ("error", a parse
        // failure, ...) — the actionable part; not retryable.
        return Status::Internal("response: " + *line);
      }
      fingerprint = json::GetStringOr(obj, "fingerprint", "");
      if (fingerprint.empty()) {
        return Status::Internal("ok response without fingerprint: " + *line);
      }
      return Status::OK();
    });
    if (!put.ok()) {
      std::cerr << "uctr_load: put_table id " << id << " failed after "
                << retry_options.max_attempts
                << " attempt(s): " << put.ToString() << "\n";
      return {};
    }
    fingerprints.push_back(std::move(fingerprint));
  }
  return fingerprints;
}

/// Parses a response line and scores it against the expected id. The id
/// check IS the ordering check: ids are sent sequentially per connection
/// and the server promises per-connection FIFO responses.
void ScoreResponse(const std::string& line, uint64_t expected_id,
                   Tally* tally) {
  tally->received.fetch_add(1, std::memory_order_relaxed);
  auto parsed = json::Parse(line);
  if (!parsed.ok() || !parsed->is_object()) {
    tally->other_status.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const json::Value::Object& obj = parsed->as_object();
  uint64_t id = static_cast<uint64_t>(json::GetNumberOr(obj, "id", 0));
  if (id != expected_id) {
    tally->reordered.fetch_add(1, std::memory_order_relaxed);
  }
  std::string status = json::GetStringOr(obj, "status", "");
  if (status == "ok") {
    tally->ok.fetch_add(1, std::memory_order_relaxed);
  } else if (status == "error") {
    tally->error.fetch_add(1, std::memory_order_relaxed);
  } else if (status == "rejected") {
    tally->rejected.fetch_add(1, std::memory_order_relaxed);
  } else if (status == "timeout") {
    tally->timeout.fetch_add(1, std::memory_order_relaxed);
  } else {
    tally->other_status.fetch_add(1, std::memory_order_relaxed);
  }
}

bool WantVerify(const Options& options, uint64_t id) {
  if (options.op == "verify") return true;
  if (options.op == "answer") return false;
  return id % 2 == 1;  // mixed
}

void RunConnection(const Options& options, size_t conn_index,
                   size_t my_requests, Tally* tally) {
  const net::HostPort& endpoint =
      options.endpoints[conn_index % options.endpoints.size()];
  auto client = ConnectWithRetry(options, endpoint);
  if (!client.ok()) {
    tally->connect_failures.fetch_add(1, std::memory_order_relaxed);
    tally->lost.fetch_add(my_requests, std::memory_order_relaxed);
    return;
  }

  std::vector<std::string> fingerprints;
  if (options.put_table) {
    fingerprints =
        RegisterTables(&client.ValueOrDie(), options, endpoint, tally);
    if (fingerprints.size() != options.tables) {
      tally->put_failures.fetch_add(1, std::memory_order_relaxed);
      tally->lost.fetch_add(my_requests, std::memory_order_relaxed);
      return;
    }
  }
  // Ids stay sequential across the put phase and the traffic phase so the
  // per-connection ordering check keeps working.
  const uint64_t id0 = options.put_table ? options.tables : 0;

  std::deque<Clock::time_point> send_times;
  uint64_t next_recv_id = id0 + 1;
  auto build = [&](uint64_t id) {
    size_t variant = (conn_index + id) % options.tables;
    if (options.distinct_tables && !options.put_table) {
      // Globally unique variant: no two requests in the whole run share a
      // table, so every one is a result-cache miss.
      variant = conn_index * my_requests + static_cast<size_t>(id - id0);
    }
    bool verify = WantVerify(options, id);
    return options.put_table
               ? BuildRefRequest(id, variant, fingerprints[variant], verify)
               : BuildRequest(id, variant, verify);
  };
  auto reap_one = [&](int timeout_ms) -> bool {
    auto line = client->RecvTimeout(timeout_ms);
    if (!line.ok()) return false;
    tally->latency_us.Observe(
        std::chrono::duration<double, std::micro>(Clock::now() -
                                                  send_times.front())
            .count());
    send_times.pop_front();
    ScoreResponse(*line, next_recv_id++, tally);
    return true;
  };

  if (options.qps <= 0.0) {
    // Closed loop: a bounded window of outstanding requests.
    for (uint64_t id = id0 + 1; id <= id0 + my_requests; ++id) {
      while (send_times.size() >= options.pipeline) {
        if (!reap_one(options.timeout_ms)) goto drain;
      }
      std::string request = build(id);
      send_times.push_back(Clock::now());
      if (!client->Send(request).ok()) break;
      tally->sent.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // Open loop: fixed send schedule, responses reaped opportunistically.
    double per_conn_qps =
        options.qps / static_cast<double>(options.connections);
    auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / per_conn_qps));
    Clock::time_point next_send = Clock::now();
    for (uint64_t id = id0 + 1; id <= id0 + my_requests; ++id) {
      while (Clock::now() < next_send) {
        if (!send_times.empty()) {
          reap_one(0);  // poll; never delays the schedule
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      std::string request = build(id);
      send_times.push_back(Clock::now());
      if (!client->Send(request).ok()) break;
      tally->sent.fetch_add(1, std::memory_order_relaxed);
      next_send += interval;
    }
  }

drain:
  while (!send_times.empty()) {
    if (!reap_one(options.timeout_ms)) break;
  }
  tally->lost.fetch_add(send_times.size(), std::memory_order_relaxed);
}

int Fail(const std::string& message) {
  std::cerr << "uctr_load: " << message << "\n";
  return 2;
}

std::string Fixed(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return Fail("unexpected argument " + arg);
    std::string key = arg.substr(2), value = "1";
    if (auto eq = key.find('='); eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];  // bare flags (--put-table) stay "1"
    }
    flags[key] = value;
  }
  auto connect_it = flags.find("connect");
  auto router_it = flags.find("router");
  if ((connect_it == flags.end()) == (router_it == flags.end())) {
    return Fail(
        "usage: uctr_load --connect HOST:PORT | "
        "--router HOST:PORT[,HOST:PORT...] [--connections N] "
        "[--requests N] [--qps Q] [--pipeline D] [--tables T] "
        "[--put-table] [--put-retries N] [--distinct-tables] "
        "[--op verify|answer|mixed] "
        "[--timeout-ms N] [--report-json FILE]");
  }
  std::string endpoint_list = connect_it != flags.end() ? connect_it->second
                                                        : router_it->second;
  for (size_t pos = 0; pos <= endpoint_list.size();) {
    size_t comma = endpoint_list.find(',', pos);
    std::string piece = endpoint_list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!piece.empty()) {
      auto host_port = net::ParseHostPort(piece);
      if (!host_port.ok()) return Fail(host_port.status().ToString());
      options.endpoints.push_back(*host_port);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (options.endpoints.empty()) {
    return Fail("no endpoint in '" + endpoint_list + "'");
  }
  if (flags.count("connections")) {
    options.connections = std::stoul(flags["connections"]);
  }
  if (flags.count("requests")) options.requests = std::stoul(flags["requests"]);
  if (flags.count("qps")) options.qps = std::stod(flags["qps"]);
  if (flags.count("pipeline")) options.pipeline = std::stoul(flags["pipeline"]);
  if (flags.count("tables")) options.tables = std::stoul(flags["tables"]);
  if (flags.count("put-table")) options.put_table = flags["put-table"] != "0";
  if (flags.count("distinct-tables")) {
    options.distinct_tables = flags["distinct-tables"] != "0";
  }
  if (flags.count("op")) options.op = flags["op"];
  if (flags.count("report-json")) options.report_json = flags["report-json"];
  if (flags.count("timeout-ms")) options.timeout_ms = std::stoi(flags["timeout-ms"]);
  if (flags.count("put-retries")) {
    options.put_retries = std::stoi(flags["put-retries"]);
    if (options.put_retries < 1) return Fail("--put-retries must be >= 1");
  }
  if (options.connections == 0 || options.pipeline == 0 ||
      options.tables == 0) {
    return Fail("--connections, --pipeline, and --tables must be positive");
  }
  if (options.op != "verify" && options.op != "answer" &&
      options.op != "mixed") {
    return Fail("--op must be verify, answer, or mixed");
  }

  Tally tally;
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  Clock::time_point start = Clock::now();
  for (size_t c = 0; c < options.connections; ++c) {
    size_t base = options.requests / options.connections;
    size_t extra = c < options.requests % options.connections ? 1 : 0;
    workers.emplace_back(RunConnection, options, c, base + extra, &tally);
  }
  for (auto& worker : workers) worker.join();
  double wall_s = std::chrono::duration<double>(Clock::now() - start).count();

  uint64_t sent = tally.sent.load();
  uint64_t received = tally.received.load();
  uint64_t lost = tally.lost.load() + (sent - received);
  std::cout << "uctr_load: " << options.connections << " connections over "
            << options.endpoints.size() << " endpoint"
            << (options.endpoints.size() == 1 ? "" : "s") << ", "
            << options.requests << " requests, "
            << (options.qps > 0.0
                    ? "open loop @ " + Fixed(options.qps, 0) + " qps"
                    : "closed loop (pipeline " +
                          std::to_string(options.pipeline) + ")")
            << ", op " << options.op
            << (options.put_table ? ", table_ref (put-table)" : "") << "\n";
  std::cout << "  sent " << sent << ", responses " << received << " (ok "
            << tally.ok.load() << ", error " << tally.error.load()
            << ", rejected " << tally.rejected.load() << ", timeout "
            << tally.timeout.load() << ", other "
            << tally.other_status.load() << ")\n";
  std::cout << "  lost " << lost << ", reordered " << tally.reordered.load()
            << ", connect failures " << tally.connect_failures.load();
  if (options.put_table) {
    std::cout << ", put failures " << tally.put_failures.load();
  }
  std::cout << "\n";
  std::cout << "  wall " << Fixed(wall_s, 2) << " s, achieved "
            << Fixed(received / (wall_s > 0 ? wall_s : 1.0), 0)
            << " resp/s\n";
  const obs::Histogram& h = tally.latency_us;
  std::cout << "  transport latency us: mean " << Fixed(h.mean_micros(), 0)
            << "  p50 " << Fixed(h.QuantileMicros(0.50), 0) << "  p90 "
            << Fixed(h.QuantileMicros(0.90), 0) << "  p99 "
            << Fixed(h.QuantileMicros(0.99), 0) << "  p99.9 "
            << Fixed(h.QuantileMicros(0.999), 0) << "\n";
  if (options.put_table) {
    const obs::Histogram& r = tally.registry_us;
    std::cout << "  registry latency us (" << r.count()
              << " put_table round-trips): mean " << Fixed(r.mean_micros(), 0)
              << "  p50 " << Fixed(r.QuantileMicros(0.50), 0) << "  p90 "
              << Fixed(r.QuantileMicros(0.90), 0) << "  p99 "
              << Fixed(r.QuantileMicros(0.99), 0) << "\n";
  }

  bool clean = lost == 0 && tally.reordered.load() == 0 &&
               tally.connect_failures.load() == 0 &&
               tally.put_failures.load() == 0 &&
               received == options.requests;
  std::cout << (clean ? "RESULT: clean" : "RESULT: FAILED") << "\n";

  if (!options.report_json.empty()) {
    std::ofstream out(options.report_json, std::ios::trunc);
    if (!out) return Fail("cannot write " + options.report_json);
    out << "{\n"
        << "  \"endpoints\": " << options.endpoints.size() << ",\n"
        << "  \"connections\": " << options.connections << ",\n"
        << "  \"requests\": " << options.requests << ",\n"
        << "  \"qps\": " << Fixed(options.qps, 1) << ",\n"
        << "  \"pipeline\": " << options.pipeline << ",\n"
        << "  \"op\": \"" << options.op << "\",\n"
        << "  \"put_table\": " << (options.put_table ? "true" : "false")
        << ",\n"
        << "  \"sent\": " << sent << ",\n"
        << "  \"responses\": " << received << ",\n"
        << "  \"ok\": " << tally.ok.load() << ",\n"
        << "  \"error\": " << tally.error.load() << ",\n"
        << "  \"rejected\": " << tally.rejected.load() << ",\n"
        << "  \"timeout\": " << tally.timeout.load() << ",\n"
        << "  \"other_status\": " << tally.other_status.load() << ",\n"
        << "  \"lost\": " << lost << ",\n"
        << "  \"reordered\": " << tally.reordered.load() << ",\n"
        << "  \"connect_failures\": " << tally.connect_failures.load()
        << ",\n"
        << "  \"put_failures\": " << tally.put_failures.load() << ",\n"
        << "  \"wall_s\": " << Fixed(wall_s, 3) << ",\n"
        << "  \"achieved_rps\": "
        << Fixed(received / (wall_s > 0 ? wall_s : 1.0), 1) << ",\n"
        << "  \"latency_us\": {\"mean\": " << Fixed(h.mean_micros(), 1)
        << ", \"p50\": " << Fixed(h.QuantileMicros(0.50), 1)
        << ", \"p90\": " << Fixed(h.QuantileMicros(0.90), 1)
        << ", \"p99\": " << Fixed(h.QuantileMicros(0.99), 1)
        << ", \"p999\": " << Fixed(h.QuantileMicros(0.999), 1) << "},\n";
    const obs::Histogram& r = tally.registry_us;
    out << "  \"registry_us\": {\"count\": " << r.count()
        << ", \"mean\": " << Fixed(r.mean_micros(), 1)
        << ", \"p50\": " << Fixed(r.QuantileMicros(0.50), 1)
        << ", \"p99\": " << Fixed(r.QuantileMicros(0.99), 1) << "},\n"
        << "  \"clean\": " << (clean ? "true" : "false") << "\n"
        << "}\n";
  }
  return clean ? 0 : 1;
}
