#include "net/frame.h"

#include <cstring>

namespace uctr::net {

namespace {

uint32_t DecodeHeader(const char* bytes) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(bytes[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(bytes[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(bytes[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[3]));
}

}  // namespace

Result<std::string> EncodeFrame(std::string_view payload,
                                size_t max_frame_bytes) {
  if (payload.empty()) {
    return Status::InvalidArgument("cannot encode a zero-length frame");
  }
  // Two distinct rejections: the configurable frame limit, and the hard
  // 4-byte header width. The latter must hold even if a caller raises
  // max_frame_bytes past 4 GiB — truncating a 64-bit size_t into the u32
  // header would frame the first (size % 2^32) bytes as a valid-looking
  // message and desynchronize the stream from then on.
  if (payload.size() > UINT32_MAX) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes cannot be represented in the 32-bit frame header");
  }
  if (payload.size() > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte frame limit");
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  uint32_t len = static_cast<uint32_t>(payload.size());
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>(len & 0xFF));
  out.append(payload);
  return out;
}

Status FrameDecoder::Feed(const char* data, size_t n) {
  if (!error_.ok()) return error_;
  if (n == 0) return Status::OK();
  // Compact before appending once the dead prefix dominates the live
  // tail, so long-lived connections do not grow the buffer without bound
  // while still amortizing the memmove.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
  // Validate any header that just became complete: oversized/zero frames
  // must be rejected from the 4 header bytes alone, before their payload
  // is buffered or even sent.
  while (pending_len_ == SIZE_MAX &&
         buffer_.size() - consumed_ >= kFrameHeaderBytes) {
    uint32_t len = DecodeHeader(buffer_.data() + consumed_);
    if (len == 0) {
      error_ = Status::ParseError("zero-length frame");
      return error_;
    }
    if (len > max_frame_bytes_) {
      error_ = Status::ParseError(
          "frame of " + std::to_string(len) + " bytes exceeds the " +
          std::to_string(max_frame_bytes_) + "-byte frame limit");
      return error_;
    }
    if (buffer_.size() - consumed_ < kFrameHeaderBytes + len) {
      pending_len_ = len;  // header valid, payload incomplete
      break;
    }
    // A complete frame is buffered; leave it for Next. Skip past it so
    // the loop validates any further coalesced header in this Feed.
    pending_len_ = len;
    break;
  }
  return Status::OK();
}

bool FrameDecoder::Next(std::string* payload) {
  while (true) {
    if (buffer_.size() - consumed_ < kFrameHeaderBytes) return false;
    uint32_t len = DecodeHeader(buffer_.data() + consumed_);
    if (len == 0 || len > max_frame_bytes_) return false;  // poisoned
    if (buffer_.size() - consumed_ < kFrameHeaderBytes + len) return false;
    payload->assign(buffer_, consumed_ + kFrameHeaderBytes, len);
    consumed_ += kFrameHeaderBytes + len;
    pending_len_ = SIZE_MAX;
    // Revalidate the next header so a poisoning header that arrived
    // coalesced behind complete frames still surfaces via error() once
    // the good frames are drained.
    if (error_.ok() && buffer_.size() - consumed_ >= kFrameHeaderBytes) {
      uint32_t next_len = DecodeHeader(buffer_.data() + consumed_);
      if (next_len == 0) {
        error_ = Status::ParseError("zero-length frame");
      } else if (next_len > max_frame_bytes_) {
        error_ = Status::ParseError(
            "frame of " + std::to_string(next_len) + " bytes exceeds the " +
            std::to_string(max_frame_bytes_) + "-byte frame limit");
      }
    }
    return true;
  }
}

size_t FrameDecoder::buffered_bytes() const {
  return buffer_.size() - consumed_;
}

}  // namespace uctr::net
