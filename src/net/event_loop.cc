#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace uctr::net {

namespace {

/// Wait granularity: also bounds how stale the external stop flag can be
/// when the SIGTERM is delivered to a thread that is not parked in this
/// epoll_wait (signals without handler masks may land anywhere).
constexpr int kWaitMillis = 100;

uint64_t PackTag(int fd, uint64_t generation) {
  return (generation << 32) | static_cast<uint32_t>(fd);
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    init_ = Status::Internal(std::string("epoll_create1: ") +
                             std::strerror(errno));
    return;
  }
  wakeup_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup_fd_ < 0) {
    init_ = Status::Internal(std::string("eventfd: ") + std::strerror(errno));
    return;
  }
  struct epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.u64 = PackTag(wakeup_fd_, 0);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) != 0) {
    init_ = Status::Internal(std::string("epoll_ctl(wakeup): ") +
                             std::strerror(errno));
  }
}

EventLoop::~EventLoop() {
  if (wakeup_fd_ >= 0) close(wakeup_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events,
                      std::function<void(uint32_t)> on_event) {
  UCTR_RETURN_NOT_OK(init_);
  uint64_t generation = next_generation_++;
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.u64 = PackTag(fd, generation);
  int op = handlers_.count(fd) != 0 ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (epoll_ctl(epoll_fd_, op, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(add): ") +
                            std::strerror(errno));
  }
  handlers_[fd] = Handler{std::move(on_event), generation};
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  UCTR_RETURN_NOT_OK(init_);
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) {
    return Status::NotFound("Modify on unregistered fd " + std::to_string(fd));
  }
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.u64 = PackTag(fd, it->second.generation);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(mod): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  if (handlers_.erase(fd) != 0) {
    // Removing the registration invalidates the generation any queued
    // batch events carry, so they are dropped even if the fd number is
    // immediately reused by a new accept.
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(task));
  }
  uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  ssize_t ignored = write(wakeup_fd_, &one, sizeof(one));
  (void)ignored;
}

void EventLoop::DrainWakeup() {
  uint64_t value = 0;
  while (read(wakeup_fd_, &value, sizeof(value)) > 0) {
  }
}

void EventLoop::RunPostedTasks() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& task : batch) task();
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epoll_fd_, events, kMaxEvents, kWaitMillis);
    if (n < 0) {
      if (errno != EINTR) break;
      // A signal interrupted the wait (the CLI installs handlers without
      // SA_RESTART for exactly this): fall through so the tick observes
      // the shutdown flag immediately instead of one wait later.
      n = 0;
    }
    for (int i = 0; i < n; ++i) {
      int fd = static_cast<int>(events[i].data.u64 & 0xFFFFFFFFu);
      uint64_t generation = events[i].data.u64 >> 32;
      if (fd == wakeup_fd_) {
        DrainWakeup();
        continue;
      }
      // Look the handler up fresh per event: an earlier handler in this
      // batch may have removed this fd (and a new registration may have
      // reused its number — the generation tag tells them apart).
      auto it = handlers_.find(fd);
      if (it == handlers_.end() || it->second.generation != generation) {
        continue;
      }
      // Invoke through a copy: the handler may Remove (and thus destroy)
      // its own map entry mid-call.
      auto on_event = it->second.on_event;
      on_event(events[i].events);
    }
    RunPostedTasks();
    if (tick_) tick_();
  }
  // Final drain so a Post that raced Stop still runs before Run returns.
  RunPostedTasks();
  stop_.store(false, std::memory_order_release);
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  uint64_t one = 1;
  ssize_t ignored = write(wakeup_fd_, &one, sizeof(one));
  (void)ignored;
}

}  // namespace uctr::net
