#ifndef UCTR_NET_CLIENT_H_
#define UCTR_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "net/frame.h"

namespace uctr::net {

/// \brief A blocking client for the UCTR wire protocol (net/frame.h):
/// connect, send framed request payloads, receive framed responses.
///
/// Send and Recv are independent, so callers may pipeline: send many
/// requests, then collect responses — the server guarantees responses
/// come back in per-connection request order. Call() is the ping-pong
/// convenience for one request at a time.
///
/// Thread safety: none. One Client per thread, or one sender thread plus
/// one receiver thread (Send touches only the fd; Recv touches the fd
/// and the decoder) — that split is what the load generator's open-loop
/// mode uses.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// \brief Opens a blocking TCP connection (IPv4; `host` may be a name
  /// or dotted quad).
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                size_t max_frame_bytes =
                                    kDefaultMaxFrameBytes);

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// \brief Frames and writes one request payload, looping over partial
  /// writes until the whole frame is on the wire.
  Status Send(const std::string& payload);

  /// \brief Blocks until the next complete response frame (or EOF /
  /// error). EOF with no partial frame buffered is kUnavailable
  /// "connection closed"; EOF mid-frame is a ParseError.
  Result<std::string> Recv();

  /// \brief Recv with a poll() timeout; kDeadlineExceeded when no frame
  /// completes in time (already-buffered frames return immediately).
  Result<std::string> RecvTimeout(int timeout_ms);

  /// \brief Send + Recv. Only valid with no other responses in flight.
  Result<std::string> Call(const std::string& payload);

  /// \brief Half-closes the write side (shutdown(SHUT_WR)): tells the
  /// server no more requests are coming while still collecting the
  /// responses it owes.
  void ShutdownWrite();

  void Close();

 private:
  int fd_ = -1;
  FrameDecoder decoder_{kDefaultMaxFrameBytes};
  size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace uctr::net

#endif  // UCTR_NET_CLIENT_H_
