#ifndef UCTR_NET_ROUTER_H_
#define UCTR_NET_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "fault/policy.h"
#include "net/client.h"
#include "net/socket_util.h"
#include "obs/metrics.h"
#include "serve/backend.h"

namespace uctr::net {

/// \brief A consistent-hash ring over a fixed set of backends.
///
/// Each backend owns `vnodes` points on a 64-bit ring, placed by hashing
/// "host:port#k" — so a backend's ring position depends only on its
/// endpoint, not on its position in the configuration list, and adding or
/// removing one backend remaps only the keys it owned (1/N of the space)
/// instead of reshuffling everything the way `hash % N` would.
///
/// Membership changes do not rebuild the ring: Preference() returns the
/// full succession order and the caller skips ineligible backends, which
/// is also what gives failover its shape — the sibling that takes over a
/// downed shard's keys is exactly the next backend in ring order, the
/// same one a re-put of those tables would land on.
class ConsistentRing {
 public:
  ConsistentRing(const std::vector<std::string>& backend_labels,
                 size_t vnodes);

  /// \brief Distinct backend indices in ring-successor order starting at
  /// `key`'s hash. The first entry is the key's owner; the rest are its
  /// failover siblings (and hedged-replica targets), in order.
  std::vector<uint32_t> Preference(std::string_view key) const;

  /// \brief 64-bit FNV-1a (the repo's standard content hash family).
  static uint64_t Hash(std::string_view text);

  size_t backend_count() const { return backend_count_; }

 private:
  std::vector<std::pair<uint64_t, uint32_t>> ring_;  // sorted by hash
  size_t backend_count_;
};

/// \brief Retry shape tuned for routing: more, faster attempts than the
/// serving default, because each failure usually means "try the next
/// shard", not "wait for this one to heal".
inline fault::RetryOptions DefaultRouterRetry() {
  fault::RetryOptions retry;
  retry.max_attempts = 6;
  retry.initial_backoff_ms = 5.0;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff_ms = 100.0;
  retry.backoff_budget_ms = 2000.0;
  return retry;
}

/// \brief Shard-router knobs.
struct RouterConfig {
  /// The backend pool (uctr_serve --listen endpoints). Fixed for the
  /// router's lifetime; the health probe toggles members in and out of
  /// the ring, it does not add or remove them.
  std::vector<HostPort> backends;

  /// Forwarding threads. Each in-flight routed request occupies one
  /// worker for its backend round-trip, so this bounds the router's
  /// outstanding concurrency — size it at least at the pool's total
  /// worker count times the queueing you want per backend.
  size_t workers = 64;
  /// Requests queued for a forwarding worker; above this SubmitLine
  /// answers "rejected" (backpressure, like the serving scheduler).
  size_t queue_capacity = 8192;

  size_t vnodes = 64;           ///< Ring points per backend.
  int call_timeout_ms = 30000;  ///< Per-attempt send+recv budget.

  /// Hedged replica fan-out width for hot keys: a key seen more than
  /// `hot_threshold` times inside `hot_window_ms` is sent to this many
  /// ring-successive backends at once, first complete response wins, the
  /// duplicate is suppressed. 1 disables hedging.
  size_t replicas = 1;
  uint64_t hot_threshold = 64;
  int hot_window_ms = 1000;

  /// Durability fan-out for `put_table`: after the ring owner acks, the
  /// same registration is forwarded to this many minus one ring
  /// successors, so a table survives its owner's crash without waiting
  /// for read-repair. The client ack rides on the owner's response alone;
  /// replica failures are counted (`router_put_replica_failures_total`),
  /// never fatal. 1 disables replication.
  size_t put_replicas = 1;

  /// Membership probe: every `probe_interval_ms` each backend gets an
  /// in-band `{"op":"health"}` on a fresh connection. This many
  /// consecutive failed probes take it out of the ring; one "live"
  /// answer puts it back. A "draining" answer steers new keys away
  /// immediately (without counting as a failure) so a shard that began
  /// graceful shutdown finishes its in-flight work while its keys
  /// migrate to the ring successor.
  int probe_interval_ms = 100;
  int probe_timeout_ms = 500;
  int probe_failures_out = 2;

  /// Idle pooled connections kept per backend; excess check-ins close.
  size_t pool_size = 32;

  /// Transient retry-with-failover shape (src/fault/): each retry
  /// advances to the next eligible backend in ring order.
  fault::RetryOptions retry = DefaultRouterRetry();
  /// Per-backend circuit-breaker shape (breaker name "backend:<label>").
  fault::CircuitBreakerOptions breaker;

  /// Metrics sink; null = the process-wide obs::DefaultRegistry().
  obs::MetricsRegistry* metrics = nullptr;
};

/// \brief The shard router: a serve::LineBackend whose "inference" is
/// forwarding each request to the right member of a replicated
/// `uctr_serve --listen` pool.
///
/// Put net::Server in front of it and the router speaks the exact wire
/// protocol a single backend does — same frames, same per-connection
/// ordered responses, same drain barrier — while fanning the work out:
///
///   - requests route by table fingerprint: `table_ref` hashes the
///     fingerprint itself; inline-CSV requests hash the raw table text;
///     `put_table` hashes the store-codec content fingerprint (computed
///     the same way the backend's registry will), so the registration
///     lands on the shard that later `table_ref` traffic hashes to.
///     Result-cache, table-registry, and plan-cache affinity all follow,
///     because all three key off the same evidence;
///   - keyless requests (no table) round-robin across the ring;
///   - each backend sits behind its own circuit breaker; transient
///     failures retry with jittered backoff (RouterConfig::retry),
///     advancing to the next ring successor on every attempt — a dead
///     shard's keys fail over to exactly the sibling consistent hashing
///     assigns them to;
///   - a `table_ref`-only request answered "not registered" by its shard
///     (it restarted and lost its registry) fails over to the siblings
///     before giving up, and returns the shard's own error bytes if none
///     of them holds the table;
///   - hot keys (RouterConfig::replicas > 1) are hedged: sent to R ring
///     successors at once, first complete response wins, the loser's
///     duplicate is drained or its connection dropped — never forwarded;
///   - the health probe loop drives ring membership (see RouterConfig).
///
/// Responses are forwarded byte-for-byte: the router adds nothing to a
/// backend answer, so routed responses are identical to direct ones.
/// `health` / `metrics` / `stats` / `ping` are answered by the router
/// itself (the router is the unit being probed or scraped).
///
/// Thread model: SubmitLine parses the request for its routing key on
/// the caller's thread (the transport's event loop) and enqueues; a pool
/// of forwarding workers does the blocking backend round-trips over
/// per-backend pooled clients; `done` fires on the worker (or inline for
/// router-answered ops and rejections). Exactly once, always.
class Router : public serve::LineBackend {
 public:
  explicit Router(RouterConfig config);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// \brief Runs one synchronous probe round (so startup knows which
  /// backends are reachable), then spawns the forwarding workers and the
  /// probe loop. Fails only on an empty backend list.
  Status Start();

  /// \brief Stops the workers and the probe loop after completing every
  /// queued request. Idempotent; the destructor calls it.
  void Shutdown();

  // serve::LineBackend
  void SubmitLine(const std::string& line,
                  std::function<void(std::string)> done) override;
  void Drain() override;
  void set_draining(bool draining) override {
    draining_.store(draining, std::memory_order_relaxed);
  }
  bool draining() const override {
    return draining_.load(std::memory_order_relaxed);
  }

  size_t backend_count() const { return backends_.size(); }
  /// \brief Backends currently eligible for new keys (in ring, not
  /// peer-draining). Loop-free and approximate — probe-driven.
  size_t backends_in_ring() const;

  /// \brief Test hook: run one probe round synchronously right now.
  void ProbeNow();

 private:
  struct BackendState;

  /// What SubmitLine learns about a request (routing key + enough to
  /// answer inline ops and synthesize a last-resort error response).
  struct RouteInfo {
    uint64_t id = 0;
    std::string op;
    std::string key;       ///< Routing key; empty = round-robin.
    bool key_is_put_csv = false;  ///< key holds CSV; fingerprint it in
                                  ///< the worker (puts are rare, the
                                  ///< event loop stays thin).
    bool key_is_put_hex = false;  ///< key holds hex codec bytes; same
                                  ///< deferred fingerprinting.
    bool ref_only = false;  ///< table_ref with no inline fallback.
  };

  struct Job {
    std::string line;
    RouteInfo info;
    std::function<void(std::string)> done;
  };

  RouteInfo AnalyzeRequest(const std::string& line) const;
  void WorkerLoop();
  void HandleJob(Job job);
  /// Forwards an acked put to the next put_replicas-1 ring successors
  /// after `served_by` (best-effort; failures counted, not propagated).
  void ReplicatePut(const std::string& line, BackendState* served_by,
                    const std::vector<uint32_t>& prefer);
  /// Re-plants `key` at the backends that answered "not registered" for
  /// it: fetches the canonical codec bytes (`get_table`) from the sibling
  /// that served the request, then `put_table` `table_hex` to each missed
  /// backend. Runs on the forwarding worker after the client's response
  /// is already delivered; in-flight repairs dedup by fingerprint.
  void ReadRepair(const std::string& key, BackendState* source,
                  const std::vector<BackendState*>& targets);
  /// One forwarding attempt against one backend (breaker-gated).
  Status CallOne(BackendState* backend, const std::string& line,
                 std::string* response);
  /// Hedged attempt: both legs sent, first complete frame wins.
  Status CallHedged(BackendState* primary, BackendState* hedge,
                    const std::string& line, std::string* response);
  Result<Client> CheckOut(BackendState* backend);
  void CheckIn(BackendState* backend, Client client);
  bool NoteKeyIsHot(const std::string& key);
  void ProbeLoop();
  void ProbeBackend(BackendState* backend);
  std::vector<uint32_t> KeylessOrder();
  std::string StatsJson() const;

  RouterConfig config_;
  obs::MetricsRegistry* metrics_;
  std::vector<std::unique_ptr<BackendState>> backends_;
  ConsistentRing ring_;
  fault::RetryPolicy retry_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> round_robin_{0};

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<Job> queue_;
  size_t in_flight_ = 0;  ///< Submitted (queued or running) jobs.
  std::vector<std::thread> workers_;

  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  std::thread prober_;

  /// Sliding-window key popularity for hedging (hashes, not strings).
  std::mutex hot_mu_;
  std::unordered_map<uint64_t, uint64_t> hot_counts_;
  std::chrono::steady_clock::time_point hot_window_end_{};

  /// Fingerprints with a read-repair already in flight (dedup: a storm of
  /// ref-misses on one hot table must not fan out N repair round-trips).
  std::mutex repair_mu_;
  std::unordered_set<std::string> repairing_;

  obs::Counter* requests_total_;
  obs::Counter* forwarded_total_;
  obs::Counter* rejected_total_;
  obs::Counter* unrouted_total_;
  obs::Counter* failover_attempts_total_;
  obs::Counter* hedged_total_;
  obs::Counter* hedge_wins_total_;
  obs::Counter* ref_miss_failover_total_;
  obs::Counter* put_replica_total_;
  obs::Counter* put_replica_failures_total_;
  obs::Counter* read_repair_total_;
  obs::Counter* read_repair_failures_total_;
  obs::Counter* backend_removed_total_;
  obs::Counter* backend_rejoined_total_;
  obs::Counter* conns_created_total_;
  obs::Histogram* forward_us_;
};

}  // namespace uctr::net

#endif  // UCTR_NET_ROUTER_H_
