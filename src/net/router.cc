#include "net/router.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "common/json.h"
#include "fault/fault.h"
#include "store/codec.h"
#include "store/columnar.h"
#include "table/table.h"

namespace uctr::net {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

std::string ErrorLine(uint64_t id, const std::string& status,
                      const std::string& message) {
  return "{\"id\":" + std::to_string(id) +
         ",\"status\":" + json::Quote(status) +
         ",\"error\":" + json::Quote(message) + "}";
}

/// The registry answers a ref-only request it cannot resolve with
/// serve::ResponseLine(id, "error", ..., "table_ref '<ref>' is not
/// registered and the request has no inline table"). That error is
/// shard-local state, not a property of the request: a sibling may hold
/// the table (membership changed between the put and this get), so the
/// router treats it as an invitation to fail over rather than a final
/// answer.
bool IsRefMissResponse(const std::string& response) {
  return response.find("\"status\":\"error\"") != std::string::npos &&
         response.find("' is not registered") != std::string::npos;
}

}  // namespace

// ---------------------------------------------------------------------------
// ConsistentRing

uint64_t ConsistentRing::Hash(std::string_view text) {
  uint64_t h = kFnvOffset;
  for (unsigned char c : text) {
    h ^= c;
    h *= kFnvPrime;
  }
  // Raw FNV-1a clusters for near-identical inputs (vnode labels differ only
  // in a short numeric suffix), which skews ring ownership badly at 64
  // vnodes. A final avalanche mix (splitmix64 finalizer) spreads those
  // neighboring hashes across the whole ring.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

ConsistentRing::ConsistentRing(const std::vector<std::string>& backend_labels,
                               size_t vnodes)
    : backend_count_(backend_labels.size()) {
  vnodes = std::max<size_t>(vnodes, 1);
  ring_.reserve(backend_labels.size() * vnodes);
  for (uint32_t b = 0; b < backend_labels.size(); ++b) {
    for (size_t v = 0; v < vnodes; ++v) {
      ring_.emplace_back(
          Hash(backend_labels[b] + "#" + std::to_string(v)), b);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::vector<uint32_t> ConsistentRing::Preference(std::string_view key) const {
  std::vector<uint32_t> order;
  order.reserve(backend_count_);
  if (ring_.empty()) return order;
  uint64_t h = Hash(key);
  size_t start = std::lower_bound(ring_.begin(), ring_.end(),
                                  std::make_pair(h, uint32_t{0})) -
                 ring_.begin();
  std::vector<bool> seen(backend_count_, false);
  for (size_t i = 0; i < ring_.size() && order.size() < backend_count_; ++i) {
    uint32_t b = ring_[(start + i) % ring_.size()].second;
    if (!seen[b]) {
      seen[b] = true;
      order.push_back(b);
    }
  }
  return order;
}

// ---------------------------------------------------------------------------
// Router

struct Router::BackendState {
  HostPort endpoint;
  std::string label;  // "host:port"
  fault::CircuitBreaker breaker;
  std::atomic<bool> in_ring{true};
  std::atomic<bool> peer_draining{false};
  std::atomic<int> probe_failures{0};
  std::mutex pool_mu;
  std::vector<Client> pool;  // idle connections, zero frames pending

  BackendState(HostPort ep, fault::CircuitBreakerOptions breaker_options,
               obs::MetricsRegistry* metrics)
      : endpoint(ep),
        label(ep.host + ":" + std::to_string(ep.port)),
        breaker("backend:" + ep.host + ":" + std::to_string(ep.port),
                breaker_options, metrics) {}
};

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics != nullptr ? config_.metrics
                                          : &obs::DefaultRegistry()),
      ring_(
          [&] {
            std::vector<std::string> labels;
            labels.reserve(config_.backends.size());
            for (const HostPort& ep : config_.backends) {
              labels.push_back(ep.host + ":" + std::to_string(ep.port));
            }
            return labels;
          }(),
          config_.vnodes),
      retry_(config_.retry, 0x5EEDULL, metrics_) {
  config_.workers = std::max<size_t>(config_.workers, 1);
  config_.queue_capacity = std::max<size_t>(config_.queue_capacity, 1);
  config_.replicas = std::max<size_t>(config_.replicas, 1);
  config_.put_replicas = std::max<size_t>(config_.put_replicas, 1);
  for (const HostPort& ep : config_.backends) {
    backends_.push_back(
        std::make_unique<BackendState>(ep, config_.breaker, metrics_));
  }
  requests_total_ = metrics_->counter("router_requests_total");
  forwarded_total_ = metrics_->counter("router_forwarded_total");
  rejected_total_ = metrics_->counter("router_rejected_total");
  unrouted_total_ = metrics_->counter("router_unrouted_total");
  failover_attempts_total_ =
      metrics_->counter("router_failover_attempts_total");
  hedged_total_ = metrics_->counter("router_hedged_total");
  hedge_wins_total_ = metrics_->counter("router_hedge_wins_total");
  ref_miss_failover_total_ =
      metrics_->counter("router_ref_miss_failover_total");
  put_replica_total_ = metrics_->counter("router_put_replica_total");
  put_replica_failures_total_ =
      metrics_->counter("router_put_replica_failures_total");
  read_repair_total_ = metrics_->counter("router_read_repair_total");
  read_repair_failures_total_ =
      metrics_->counter("router_read_repair_failures_total");
  backend_removed_total_ = metrics_->counter("router_backend_removed_total");
  backend_rejoined_total_ =
      metrics_->counter("router_backend_rejoined_total");
  conns_created_total_ = metrics_->counter("router_conns_created_total");
  forward_us_ = metrics_->histogram("router_forward_us");
}

Router::~Router() { Shutdown(); }

Status Router::Start() {
  if (backends_.empty()) {
    return Status::InvalidArgument("router needs at least one backend");
  }
  // Synchronous first round: requests arriving right after Start() route
  // around backends that are already down instead of burning retry budget
  // discovering it.
  ProbeNow();
  workers_.reserve(config_.workers);
  for (size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  prober_ = std::thread([this] { ProbeLoop(); });
  return Status::OK();
}

void Router::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_.exchange(true)) return;
  }
  queue_cv_.notify_all();
  probe_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (prober_.joinable()) prober_.join();
  for (auto& b : backends_) {
    std::lock_guard<std::mutex> lock(b->pool_mu);
    b->pool.clear();
  }
}

size_t Router::backends_in_ring() const {
  size_t n = 0;
  for (const auto& b : backends_) {
    if (b->in_ring.load(std::memory_order_relaxed) &&
        !b->peer_draining.load(std::memory_order_relaxed)) {
      ++n;
    }
  }
  return n;
}

Router::RouteInfo Router::AnalyzeRequest(const std::string& line) const {
  RouteInfo info;
  auto parsed = json::Parse(line);
  if (!parsed.ok() || !parsed->is_object()) {
    // Malformed requests forward round-robin: the shard produces the
    // canonical error bytes, keeping routed responses byte-identical to
    // direct ones even for garbage input.
    return info;
  }
  const json::Value::Object& obj = parsed->as_object();
  double id = json::GetNumberOr(obj, "id", 0);
  if (id > 0) info.id = static_cast<uint64_t>(id);
  info.op = json::GetStringOr(obj, "op", "");
  std::string ref = json::GetStringOr(obj, "table_ref", "");
  auto csv = json::GetString(obj, "table");
  if (!ref.empty()) {
    // The ref string IS the content fingerprint; hash it directly.
    info.key = std::move(ref);
    info.ref_only = !csv.ok();
  } else if (csv.ok()) {
    if (info.op == "put_table") {
      // Needs the store-codec fingerprint (so the registration lands
      // where table_ref traffic will look for it); computed on a worker.
      info.key = std::move(*csv);
      info.key_is_put_csv = true;
    } else {
      // Inline table: affinity only needs consistency, so the raw CSV
      // text is key enough — same text, same shard, warm caches.
      info.key = std::move(*csv);
    }
  } else if (info.op == "put_table") {
    // Codec-bytes registration (the read-repair delivery format): route
    // by the bytes' content fingerprint, derived on a worker.
    std::string hex = json::GetStringOr(obj, "table_hex", "");
    if (!hex.empty()) {
      info.key = std::move(hex);
      info.key_is_put_hex = true;
    }
  }
  return info;
}

void Router::SubmitLine(const std::string& line,
                        std::function<void(std::string)> done) {
  requests_total_->Increment();
  RouteInfo info = AnalyzeRequest(line);

  // Ops that interrogate *this* process are answered here: a prober or
  // scraper pointed at the router wants the router's state, not some
  // shard's.
  if (info.op == "health") {
    done("{\"id\":" + std::to_string(info.id) + ",\"status\":\"ok\"" +
         ",\"health\":" + (draining() ? "\"draining\"" : "\"live\"") +
         ",\"role\":\"router\"" +
         ",\"backends\":" + std::to_string(backends_.size()) +
         ",\"in_ring\":" + std::to_string(backends_in_ring()) + "}");
    return;
  }
  if (info.op == "ping") {
    done("{\"id\":" + std::to_string(info.id) + ",\"status\":\"ok\"}");
    return;
  }
  if (info.op == "metrics") {
    done("{\"id\":" + std::to_string(info.id) +
         ",\"status\":\"ok\",\"metrics\":" +
         json::Quote(metrics_->ExpositionText()) + "}");
    return;
  }
  if (info.op == "stats") {
    done("{\"id\":" + std::to_string(info.id) +
         ",\"status\":\"ok\",\"stats\":" + StatsJson() + "}");
    return;
  }

  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      lock.unlock();
      rejected_total_->Increment();
      done(ErrorLine(info.id, "rejected", "router shut down"));
      return;
    }
    if (queue_.size() >= config_.queue_capacity) {
      lock.unlock();
      rejected_total_->Increment();
      done(ErrorLine(info.id, "rejected",
                     "router queue full (" +
                         std::to_string(config_.queue_capacity) +
                         " pending)"));
      return;
    }
    ++in_flight_;
    // The wrapper keeps the drain barrier exact: in_flight_ covers a job
    // from submission until its done callback has fully run.
    auto wrapped = [this, done = std::move(done)](std::string response) {
      done(std::move(response));
      std::lock_guard<std::mutex> inner(queue_mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    };
    queue_.push_back(Job{line, std::move(info), std::move(wrapped)});
  }
  queue_cv_.notify_one();
}

void Router::Drain() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void Router::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      // Even when stopping, queued jobs are completed (their done must
      // fire exactly once); workers exit only on an empty queue.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    HandleJob(std::move(job));
  }
}

std::vector<uint32_t> Router::KeylessOrder() {
  uint64_t start = round_robin_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint32_t> order(backends_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>((start + i) % backends_.size());
  }
  return order;
}

bool Router::NoteKeyIsHot(const std::string& key) {
  uint64_t h = ConsistentRing::Hash(key);
  auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(hot_mu_);
  if (now >= hot_window_end_) {
    hot_counts_.clear();
    hot_window_end_ =
        now + std::chrono::milliseconds(config_.hot_window_ms);
  }
  // Defensive bound: a hostile key stream must not grow this map without
  // limit inside one window.
  if (hot_counts_.size() > 65536) hot_counts_.clear();
  return ++hot_counts_[h] > config_.hot_threshold;
}

void Router::HandleJob(Job job) {
  auto started = std::chrono::steady_clock::now();
  RouteInfo& info = job.info;
  if (info.key_is_put_csv) {
    // Mirror the backend registry's content-fingerprint derivation
    // (store/registry.cc: FromCsv -> FromTable -> Encode -> Fingerprint)
    // so this put lands on the shard later table_ref traffic hashes to.
    auto table = Table::FromCsv(info.key);
    if (table.ok()) {
      info.key = store::Codec::Fingerprint(
          store::Codec::Encode(store::ColumnarTable::FromTable(*table)));
    }
    // Unparseable CSV keeps the raw text as key; the shard will produce
    // the canonical parse error.
  }
  if (info.key_is_put_hex) {
    // table_hex already wraps canonical codec bytes; their fingerprint
    // is the registration's content address.
    auto bytes = store::Codec::FromHex(info.key);
    if (bytes.ok()) info.key = store::Codec::Fingerprint(*bytes);
    // Undecodable hex keeps the raw text as key; the shard answers.
  }

  bool hot = !info.key.empty() && config_.replicas > 1 &&
             NoteKeyIsHot(info.key);
  std::vector<uint32_t> prefer =
      info.key.empty() ? KeylessOrder() : ring_.Preference(info.key);

  size_t attempt = 0;
  std::string response;
  std::string ref_miss_response;
  BackendState* served_by = nullptr;
  std::vector<BackendState*> ref_missed;
  Status final_status = retry_.Run("router.forward", [&]() -> Status {
    // Eligibility is evaluated per attempt, not once per request: the
    // probe may flip membership while we back off, and that is the
    // point — the next attempt should see it.
    std::vector<BackendState*> eligible;
    for (uint32_t idx : prefer) {
      BackendState* b = backends_[idx].get();
      if (b->in_ring.load(std::memory_order_relaxed) &&
          !b->peer_draining.load(std::memory_order_relaxed)) {
        eligible.push_back(b);
      }
    }
    if (eligible.empty()) {
      // Nothing looks healthy. Probe state can be stale (a backend that
      // just restarted is "out" until its next probe), so try everyone
      // in preference order rather than failing without an attempt.
      for (uint32_t idx : prefer) eligible.push_back(backends_[idx].get());
    }
    if (attempt > 0) failover_attempts_total_->Increment();
    BackendState* primary = eligible[attempt % eligible.size()];
    BackendState* hedge = nullptr;
    if (hot && attempt == 0 && eligible.size() > 1) hedge = eligible[1];
    ++attempt;

    Status s = hedge != nullptr
                   ? CallHedged(primary, hedge, job.line, &response)
                   : CallOne(primary, job.line, &response);
    if (!s.ok()) return s;
    if (info.ref_only && IsRefMissResponse(response)) {
      ref_miss_failover_total_->Increment();
      // Remember who missed: if a sibling ends up serving this ref, the
      // missed backend lost its registry (restart) and gets the table
      // re-planted by read-repair below.
      if (std::find(ref_missed.begin(), ref_missed.end(), primary) ==
          ref_missed.end()) {
        ref_missed.push_back(primary);
      }
      // Keep the shard's own bytes as the answer of last resort: when no
      // sibling holds the table either, the client sees exactly what a
      // direct backend would have said.
      ref_miss_response = std::move(response);
      response.clear();
      return Status::Unavailable("table_ref not registered at " +
                                 primary->label);
    }
    served_by = primary;
    return Status::OK();
  });

  forward_us_->Observe(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - started)
                           .count());
  if (final_status.ok()) {
    forwarded_total_->Increment();
    const bool acked_put =
        info.op == "put_table" &&
        response.find("\"status\":\"ok\"") != std::string::npos;
    job.done(std::move(response));
    // Durability work happens after the client's ack is delivered — it
    // adds round-trips the caller never waits on.
    if (acked_put && config_.put_replicas > 1 && !info.key.empty()) {
      ReplicatePut(job.line, served_by, prefer);
    }
    if (info.ref_only && !ref_missed.empty() && served_by != nullptr) {
      // A sibling served a ref its ring owner missed: the owner (and any
      // other missed sibling) restarted without this table. Re-plant it.
      ReadRepair(info.key, served_by, ref_missed);
    }
    return;
  }
  if (!ref_miss_response.empty()) {
    forwarded_total_->Increment();
    job.done(std::move(ref_miss_response));
    return;
  }
  unrouted_total_->Increment();
  const char* status_word =
      final_status.code() == StatusCode::kDeadlineExceeded ? "timeout"
                                                           : "unavailable";
  job.done(ErrorLine(info.id, status_word,
                     "router: all backends failed: " +
                         final_status.ToString()));
}

void Router::ReplicatePut(const std::string& line, BackendState* served_by,
                          const std::vector<uint32_t>& prefer) {
  size_t sent = 0;
  for (uint32_t idx : prefer) {
    if (sent + 1 >= config_.put_replicas) break;
    BackendState* replica = backends_[idx].get();
    if (replica == served_by) continue;
    if (!replica->in_ring.load(std::memory_order_relaxed) ||
        replica->peer_draining.load(std::memory_order_relaxed)) {
      continue;
    }
    ++sent;
    std::string response;
    Status s = CallOne(replica, line, &response);
    if (s.ok() &&
        response.find("\"status\":\"ok\"") != std::string::npos) {
      put_replica_total_->Increment();
    } else {
      // Best-effort by design: the owner's WAL already holds the table
      // and the client is already acked; a dead replica just means this
      // copy waits for read-repair instead.
      put_replica_failures_total_->Increment();
    }
  }
}

void Router::ReadRepair(const std::string& key, BackendState* source,
                        const std::vector<BackendState*>& targets) {
  {
    std::lock_guard<std::mutex> lock(repair_mu_);
    if (!repairing_.insert(key).second) return;  // repair already running
  }
  std::string hex;
  {
    std::string response;
    Status s = CallOne(
        source, "{\"op\":\"get_table\",\"table_ref\":" + json::Quote(key) +
                    "}",
        &response);
    if (s.ok()) {
      auto parsed = json::Parse(response);
      if (parsed.ok() && parsed->is_object()) {
        hex = json::GetStringOr(parsed->as_object(), "table_hex", "");
      }
    }
  }
  if (hex.empty()) {
    read_repair_failures_total_->Increment();
  } else {
    const std::string put_line =
        "{\"op\":\"put_table\",\"table_hex\":" + json::Quote(hex) + "}";
    for (BackendState* target : targets) {
      std::string response;
      Status s = CallOne(target, put_line, &response);
      if (s.ok() &&
          response.find("\"status\":\"ok\"") != std::string::npos) {
        read_repair_total_->Increment();
      } else {
        read_repair_failures_total_->Increment();
      }
    }
  }
  // A failed repair unblocks the key so the next ref-miss retries it.
  std::lock_guard<std::mutex> lock(repair_mu_);
  repairing_.erase(key);
}

Result<Client> Router::CheckOut(BackendState* backend) {
  {
    std::lock_guard<std::mutex> lock(backend->pool_mu);
    if (!backend->pool.empty()) {
      Client client = std::move(backend->pool.back());
      backend->pool.pop_back();
      return client;
    }
  }
  Status fault = UCTR_FAULT_POINT("router.connect");
  if (!fault.ok()) return fault;
  auto client = Client::Connect(backend->endpoint.host,
                                backend->endpoint.port);
  if (client.ok()) conns_created_total_->Increment();
  return client;
}

void Router::CheckIn(BackendState* backend, Client client) {
  std::lock_guard<std::mutex> lock(backend->pool_mu);
  if (backend->pool.size() < config_.pool_size) {
    backend->pool.push_back(std::move(client));
  }
  // else: dropped; the Client destructor closes the fd.
}

Status Router::CallOne(BackendState* backend, const std::string& line,
                       std::string* response) {
  if (!backend->breaker.Allow()) {
    return Status::Unavailable("circuit '" + backend->breaker.name() +
                               "' open");
  }
  // From here on the breaker granted the call (possibly the half-open
  // probe token): every path below must Record exactly once.
  auto conn = CheckOut(backend);
  if (!conn.ok()) {
    backend->breaker.RecordFailure();
    return conn.status();
  }
  Client client = std::move(*conn);
  Status s = UCTR_FAULT_POINT("router.send");
  if (s.ok()) s = client.Send(line);
  Result<std::string> got = Status::Unavailable("recv never ran");
  if (s.ok()) {
    s = UCTR_FAULT_POINT("router.recv");
    if (s.ok()) {
      got = client.RecvTimeout(config_.call_timeout_ms);
      s = got.status();
    }
  }
  if (!s.ok()) {
    // A failed exchange may leave a response in flight we will never
    // read; the connection cannot be pooled. Client's destructor closes
    // it.
    backend->breaker.RecordFailure();
    return s;
  }
  backend->breaker.RecordSuccess();
  *response = std::move(*got);
  CheckIn(backend, std::move(client));
  return Status::OK();
}

Status Router::CallHedged(BackendState* primary, BackendState* hedge,
                          const std::string& line, std::string* response) {
  // The hedge leg is opportunistic: any problem setting it up falls back
  // to a plain call on the primary rather than failing the request.
  if (!hedge->breaker.Allow()) return CallOne(primary, line, response);
  auto hedge_conn = CheckOut(hedge);
  if (!hedge_conn.ok()) {
    hedge->breaker.RecordFailure();
    return CallOne(primary, line, response);
  }
  if (!primary->breaker.Allow()) {
    // Pool the untouched hedge connection back; its breaker saw a
    // successful checkout.
    hedge->breaker.RecordSuccess();
    CheckIn(hedge, std::move(*hedge_conn));
    return Status::Unavailable("circuit '" + primary->breaker.name() +
                               "' open");
  }
  auto primary_conn = CheckOut(primary);
  if (!primary_conn.ok()) {
    primary->breaker.RecordFailure();
    hedge->breaker.RecordSuccess();
    CheckIn(hedge, std::move(*hedge_conn));
    return primary_conn.status();
  }

  hedged_total_->Increment();
  struct Leg {
    BackendState* backend;
    Client client;
    bool alive = true;
  };
  Leg legs[2] = {{primary, std::move(*primary_conn)},
                 {hedge, std::move(*hedge_conn)}};
  for (Leg& leg : legs) {
    Status sent = UCTR_FAULT_POINT("router.send");
    if (sent.ok()) sent = leg.client.Send(line);
    if (!sent.ok()) {
      leg.backend->breaker.RecordFailure();
      leg.alive = false;  // client closed when the Leg goes out of scope
    }
  }
  if (!legs[0].alive && !legs[1].alive) {
    return Status::Unavailable("hedged send failed on both replicas");
  }

  // First complete frame wins. Poll both fds against one shared deadline;
  // RecvTimeout(0) on a readable fd makes progress without blocking
  // (kDeadlineExceeded there just means "frame still incomplete").
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(config_.call_timeout_ms);
  int winner = -1;
  Result<std::string> got = Status::Unavailable("hedged recv never ran");
  while (winner < 0) {
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    int left_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count() +
        1);
    struct pollfd pfds[2];
    int map[2] = {-1, -1};
    nfds_t n = 0;
    for (int i = 0; i < 2; ++i) {
      if (!legs[i].alive) continue;
      pfds[n].fd = legs[i].client.fd();
      pfds[n].events = POLLIN;
      pfds[n].revents = 0;
      map[n] = i;
      ++n;
    }
    if (n == 0) break;
    int ready = ::poll(pfds, n, left_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) break;  // deadline
    for (nfds_t p = 0; p < n && winner < 0; ++p) {
      if (pfds[p].revents == 0) continue;
      int i = map[p];
      auto r = legs[i].client.RecvTimeout(0);
      if (r.ok()) {
        winner = i;
        got = std::move(r);
      } else if (r.status().code() != StatusCode::kDeadlineExceeded) {
        legs[i].backend->breaker.RecordFailure();
        legs[i].alive = false;
      }
    }
    if (!legs[0].alive && !legs[1].alive) break;
  }

  if (winner < 0) {
    for (Leg& leg : legs) {
      if (leg.alive) leg.backend->breaker.RecordFailure();
    }
    return Status::DeadlineExceeded("hedged call timed out on " +
                                    primary->label + " and " + hedge->label);
  }

  hedge_wins_total_->Increment();
  legs[winner].backend->breaker.RecordSuccess();
  CheckIn(legs[winner].backend, std::move(legs[winner].client));
  int loser = 1 - winner;
  if (legs[loser].alive) {
    // Suppress the duplicate: if the loser's response already arrived,
    // drain it and pool the connection; otherwise drop the connection —
    // a client with an unread frame in flight must never be pooled.
    auto dup = legs[loser].client.RecvTimeout(0);
    legs[loser].backend->breaker.RecordSuccess();
    if (dup.ok()) CheckIn(legs[loser].backend, std::move(legs[loser].client));
  }
  *response = std::move(*got);
  return Status::OK();
}

void Router::ProbeLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(probe_mu_);
      probe_cv_.wait_for(
          lock, std::chrono::milliseconds(config_.probe_interval_ms),
          [this] { return stopping_.load(std::memory_order_relaxed); });
    }
    if (stopping_.load(std::memory_order_relaxed)) return;
    ProbeNow();
  }
}

void Router::ProbeNow() {
  for (auto& b : backends_) ProbeBackend(b.get());
}

void Router::ProbeBackend(BackendState* backend) {
  // Fresh connection per probe: verifies the whole accept path is alive
  // (a pooled connection can look healthy on a backend that stopped
  // accepting) and keeps probe traffic independent of the data-path pool.
  Result<std::string> resp = Status::Unavailable("probe never ran");
  Status fault = UCTR_FAULT_POINT("router.probe");
  if (!fault.ok()) {
    resp = fault;
  } else {
    auto client =
        Client::Connect(backend->endpoint.host, backend->endpoint.port);
    if (client.ok()) {
      Status sent = client->Send("{\"op\":\"health\"}");
      if (sent.ok()) {
        resp = client->RecvTimeout(config_.probe_timeout_ms);
      } else {
        resp = sent;
      }
    } else {
      resp = client.status();
    }
  }

  bool live = false;
  bool peer_draining = false;
  if (resp.ok()) {
    auto parsed = json::Parse(*resp);
    if (parsed.ok() && parsed->is_object()) {
      std::string phase =
          json::GetStringOr(parsed->as_object(), "health", "");
      live = phase == "live";
      peer_draining = phase == "draining";
    }
  }
  backend->peer_draining.store(peer_draining, std::memory_order_relaxed);
  if (live) {
    backend->probe_failures.store(0, std::memory_order_relaxed);
    if (!backend->in_ring.exchange(true, std::memory_order_relaxed)) {
      backend_rejoined_total_->Increment();
    }
  } else if (peer_draining) {
    // Draining is cooperative, not a failure: the shard is finishing its
    // in-flight work. peer_draining already steers new keys away; when
    // the process exits, probes start failing and take it out for real.
    backend->probe_failures.store(0, std::memory_order_relaxed);
  } else {
    int fails =
        backend->probe_failures.fetch_add(1, std::memory_order_relaxed) + 1;
    if (fails >= config_.probe_failures_out &&
        backend->in_ring.exchange(false, std::memory_order_relaxed)) {
      backend_removed_total_->Increment();
      // The pool may hold connections into the dead process; drop them
      // so a rejoin starts from fresh sockets.
      std::lock_guard<std::mutex> lock(backend->pool_mu);
      backend->pool.clear();
    }
  }
}

std::string Router::StatsJson() const {
  std::string out = "{\"backends\":[";
  for (size_t i = 0; i < backends_.size(); ++i) {
    const BackendState& b = *backends_[i];
    if (i > 0) out += ",";
    out += "{\"endpoint\":" + json::Quote(b.label) +
           ",\"in_ring\":" + std::to_string(
               b.in_ring.load(std::memory_order_relaxed) ? 1 : 0) +
           ",\"draining\":" + std::to_string(
               b.peer_draining.load(std::memory_order_relaxed) ? 1 : 0) +
           "}";
  }
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = queue_.size();
  }
  out += "],\"queue_depth\":" + std::to_string(depth) +
         ",\"workers\":" + std::to_string(config_.workers) +
         ",\"put_replicas\":" + std::to_string(config_.put_replicas) +
         ",\"put_replica_total\":" +
         std::to_string(put_replica_total_->value()) +
         ",\"put_replica_failures_total\":" +
         std::to_string(put_replica_failures_total_->value()) +
         ",\"read_repair_total\":" +
         std::to_string(read_repair_total_->value()) +
         ",\"read_repair_failures_total\":" +
         std::to_string(read_repair_failures_total_->value()) + "}";
  return out;
}

}  // namespace uctr::net
