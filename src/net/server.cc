#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "net/socket_util.h"

namespace uctr::net {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

/// \brief Per-connection state. Owned by the loop thread exclusively:
/// worker completions re-enter through EventLoop::Post, so no field here
/// needs a lock.
struct Server::Connection {
  Connection(int fd_in, uint64_t id_in, size_t max_frame_bytes)
      : fd(fd_in), id(id_in), decoder(max_frame_bytes) {}

  int fd;
  uint64_t id;
  FrameDecoder decoder;

  /// Response ordering: frames get dense per-connection sequence numbers
  /// at dispatch; completions park in `completed` until the contiguous
  /// prefix can be framed into the write queue — so responses leave in
  /// request order no matter how workers interleave.
  uint64_t next_assign = 0;
  uint64_t next_flush = 0;
  std::map<uint64_t, std::string> completed;
  size_t in_flight = 0;

  /// Coalesced write queue: [write_off, write_buf.size()) is unsent.
  std::string write_buf;
  size_t write_off = 0;

  uint32_t interest = 0;   ///< Current epoll mask.
  bool paused = false;     ///< Reading suspended (watermark / pipeline).
  bool peer_eof = false;   ///< Half-closed: no more requests will arrive.
  bool draining = false;   ///< Server drain: stop reading, finish, close.
  bool closed = false;

  size_t write_bytes() const { return write_buf.size() - write_off; }
  bool idle() const {
    return in_flight == 0 && completed.empty() && write_bytes() == 0;
  }
};

Server::Server(serve::LineBackend* backend, NetServerConfig config)
    : backend_(backend),
      config_(config),
      metrics_(config.metrics != nullptr ? config.metrics
                                         : &obs::DefaultRegistry()),
      tracer_(config.tracer != nullptr ? config.tracer
                                       : &obs::Tracer::Default()),
      accepted_total_(metrics_->counter("net_connections_accepted_total")),
      closed_total_(metrics_->counter("net_connections_closed_total")),
      refused_total_(metrics_->counter("net_connections_refused_total")),
      shed_total_(metrics_->counter("net_connections_shed_total")),
      frames_in_total_(metrics_->counter("net_frames_in_total")),
      frames_out_total_(metrics_->counter("net_frames_out_total")),
      bytes_in_total_(metrics_->counter("net_bytes_in_total")),
      bytes_out_total_(metrics_->counter("net_bytes_out_total")),
      protocol_errors_total_(metrics_->counter("net_protocol_errors_total")),
      read_paused_total_(metrics_->counter("net_read_paused_total")),
      read_resumed_total_(metrics_->counter("net_read_resumed_total")),
      frame_us_(metrics_->histogram("latency_net_frame_us")) {
  loop_.set_tick([this] { Tick(); });
}

Server::~Server() {
  // Outstanding backend jobs hold completion closures that Post into this
  // object; drain them before any member dies. (A graceful Run() exit has
  // already done this — the drain barrier waits for every dispatched
  // request — so this only blocks after an abnormal stop.)
  backend_->Drain();
  for (auto& [id, conn] : connections_) {
    if (!conn->closed) close(conn->fd);
  }
  connections_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
}

Status Server::Start() {
  UCTR_RETURN_NOT_OK(loop_.Init());
  std::string ip;
  UCTR_ASSIGN_OR_RETURN(ip, ResolveIPv4(config_.host));
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  inet_pton(AF_INET, ip.c_str(), &addr.sin_addr);
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    Status s = ErrnoStatus("bind " + ip + ":" + std::to_string(config_.port));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, config_.backlog) != 0) {
    Status s = ErrnoStatus("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &len) == 0) {
    bound_port_ = ntohs(addr.sin_port);
  }
  return loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { OnAcceptReady(); });
}

void Server::Run() { loop_.Run(); }

void Server::Shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  // Wake the loop so the tick observes the request now, not a wait later.
  loop_.Post([] {});
}

void Server::Tick() {
  if (shutdown_flag_ != nullptr && *shutdown_flag_ != 0) {
    shutdown_requested_.store(true, std::memory_order_release);
  }
  if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
    BeginDrain();
  }
  if (draining_ && Clock::now() >= drain_deadline_) {
    // Clients that never read their responses (or a wedged backend) must
    // not hold the drain hostage: force-close what remains and stop. The
    // destructor's backend drain still waits out any running jobs.
    std::vector<std::shared_ptr<Connection>> remaining;
    remaining.reserve(connections_.size());
    for (auto& [id, conn] : connections_) remaining.push_back(conn);
    for (auto& conn : remaining) CloseConnection(conn, "drain_timeout");
    loop_.Stop();
  }
}

void Server::BeginDrain() {
  draining_ = true;
  backend_->set_draining(true);
  drain_deadline_ =
      Clock::now() + std::chrono::milliseconds(config_.drain_timeout_ms);
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::shared_ptr<Connection>> conns;
  conns.reserve(connections_.size());
  for (auto& [id, conn] : connections_) conns.push_back(conn);
  for (auto& conn : conns) {
    conn->draining = true;
    if (conn->idle()) {
      CloseConnection(conn, "drain");
    } else {
      UpdateReadInterest(conn);  // stops reading; writes keep flowing
    }
  }
  CheckDrainComplete();
}

void Server::CheckDrainComplete() {
  if (draining_ && connections_.empty() && in_flight_total_ == 0) {
    loop_.Stop();
  }
}

void Server::OnAcceptReady() {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a transient accept error: wait for epoll
    }
    obs::Span span = tracer_->StartSpan("net.accept");
    Status fault = UCTR_FAULT_POINT("net.accept");
    if (!fault.ok() || draining_ ||
        connections_.size() >= config_.max_connections) {
      // A faulted front door behaves like an overloaded one: the
      // connection is dropped before any frame is read.
      span.AddAttr("refused", fault.ok() ? "capacity" : "fault");
      refused_total_->Increment();
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.so_sndbuf > 0) {
      setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.so_sndbuf,
                 sizeof(config_.so_sndbuf));
    }
    auto conn = std::make_shared<Connection>(fd, next_conn_id_++,
                                             config_.max_frame_bytes);
    conn->interest = EPOLLIN;
    Status added = loop_.Add(fd, EPOLLIN, [this, conn](uint32_t events) {
      OnConnectionEvent(conn, events);
    });
    if (!added.ok()) {
      refused_total_->Increment();
      close(fd);
      continue;
    }
    connections_[conn->id] = conn;
    accepted_total_->Increment();
  }
}

void Server::OnConnectionEvent(const std::shared_ptr<Connection>& conn,
                               uint32_t events) {
  if (conn->closed) return;
  if ((events & EPOLLERR) != 0) {
    CloseConnection(conn, "socket_error");
    return;
  }
  if ((events & EPOLLIN) != 0) {
    ReadFromConnection(conn);
    if (conn->closed) return;
  } else if ((events & EPOLLHUP) != 0) {
    // HUP without readable data: the peer is gone for good.
    CloseConnection(conn, "hangup");
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    TryWrite(conn);
    if (conn->closed) return;
    UpdateReadInterest(conn);
  }
}

void Server::ReadFromConnection(const std::shared_ptr<Connection>& conn) {
  Status fault = UCTR_FAULT_POINT("net.read");
  if (!fault.ok()) {
    CloseConnection(conn, "read_fault");
    return;
  }
  obs::Span span = tracer_->StartSpan("net.decode");
  // Per-batch read budget: a firehose client yields the loop back to its
  // peers every 256 KiB instead of starving them (level-triggered epoll
  // re-arms immediately).
  constexpr size_t kReadBudget = 256u << 10;
  char buf[65536];
  size_t batch_bytes = 0;
  while (batch_bytes < kReadBudget) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      batch_bytes += static_cast<size_t>(n);
      bytes_in_total_->Increment(static_cast<uint64_t>(n));
      Status fed = conn->decoder.Feed(buf, static_cast<size_t>(n));
      if (!fed.ok()) break;  // poisoned; frames already buffered still serve
      continue;
    }
    if (n == 0) {
      conn->peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn, "read_error");
    return;
  }
  size_t frames = 0;
  std::string payload;
  while (!conn->closed && conn->decoder.Next(&payload)) {
    ++frames;
    frames_in_total_->Increment();
    DispatchFrame(conn, std::move(payload));
  }
  if (conn->closed) return;
  span.AddAttr("frames", std::to_string(frames));
  if (conn->decoder.poisoned()) {
    // Oversized or zero-length header: the stream cannot be resynced.
    protocol_errors_total_->Increment();
    CloseConnection(conn, "protocol_error");
    return;
  }
  if (conn->peer_eof && conn->idle()) {
    CloseConnection(conn, "eof");
    return;
  }
  UpdateReadInterest(conn);
}

void Server::DispatchFrame(const std::shared_ptr<Connection>& conn,
                           std::string payload) {
  obs::Span span = tracer_->StartSpan("net.dispatch");
  uint64_t sequence = conn->next_assign++;
  ++conn->in_flight;
  ++in_flight_total_;
  auto started = Clock::now();
  std::weak_ptr<Connection> weak = conn;
  // The done callback runs on a worker thread (or inline on this thread
  // for cache hits and errors); either way the response crosses back to
  // the loop thread via Post, and a weak_ptr keeps a dead connection from
  // pinning its buffers — the response is simply dropped, the drain
  // accounting is not.
  backend_->SubmitLine(
      payload, [this, weak, sequence, started](std::string line) {
        loop_.Post([this, weak, sequence, started,
                    line = std::move(line)]() mutable {
          frame_us_->Observe(MicrosSince(started));
          OnResponse(weak.lock(), sequence, std::move(line));
        });
      });
}

void Server::OnResponse(const std::shared_ptr<Connection>& conn,
                        uint64_t sequence, std::string response_line) {
  --in_flight_total_;
  if (conn != nullptr && !conn->closed) {
    --conn->in_flight;
    conn->completed.emplace(sequence, std::move(response_line));
    FlushCompleted(conn);
    if (!conn->closed) TryWrite(conn);
    if (!conn->closed) {
      if ((conn->peer_eof || conn->draining) && conn->idle()) {
        CloseConnection(conn, conn->draining ? "drain" : "eof");
      } else {
        UpdateReadInterest(conn);
      }
    }
  }
  CheckDrainComplete();
}

void Server::FlushCompleted(const std::shared_ptr<Connection>& conn) {
  while (!conn->completed.empty() &&
         conn->completed.begin()->first == conn->next_flush) {
    auto frame =
        EncodeFrame(conn->completed.begin()->second, config_.max_frame_bytes);
    if (!frame.ok()) {
      // A response too large to frame (e.g. a metrics dump past the frame
      // limit) cannot be skipped either — the per-connection ordering
      // contract is one response per request — so the connection dies.
      protocol_errors_total_->Increment();
      CloseConnection(conn, "response_overflow");
      return;
    }
    conn->write_buf += *frame;
    frames_out_total_->Increment();
    conn->completed.erase(conn->completed.begin());
    ++conn->next_flush;
  }
  if (conn->write_bytes() > config_.write_shed_bytes) {
    // The slow-reader backstop: pausing reads already capped new work,
    // but responses for frames in flight can still pile up. A client
    // this far behind is shed, not buffered for.
    shed_total_->Increment();
    CloseConnection(conn, "shed_slow_reader");
  }
}

void Server::TryWrite(const std::shared_ptr<Connection>& conn) {
  if (conn->write_bytes() == 0) return;
  Status fault = UCTR_FAULT_POINT("net.write");
  if (!fault.ok()) {
    CloseConnection(conn, "write_fault");
    return;
  }
  obs::Span span = tracer_->StartSpan("net.write");
  size_t wrote = 0;
  while (conn->write_bytes() > 0) {
    ssize_t n = write(conn->fd, conn->write_buf.data() + conn->write_off,
                      conn->write_bytes());
    if (n > 0) {
      conn->write_off += static_cast<size_t>(n);
      wrote += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    bytes_out_total_->Increment(wrote);
    CloseConnection(conn, "write_error");
    return;
  }
  bytes_out_total_->Increment(wrote);
  span.AddAttr("bytes", std::to_string(wrote));
  if (conn->write_off == conn->write_buf.size()) {
    conn->write_buf.clear();
    conn->write_off = 0;
  }
  if ((conn->peer_eof || conn->draining) && conn->idle()) {
    CloseConnection(conn, conn->draining ? "drain" : "eof");
  }
}

void Server::UpdateReadInterest(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  // Watermark state machine: pause above the high mark (or a full
  // pipeline), resume only below the low mark (hysteresis, so a client
  // hovering at the boundary does not flap interest registration).
  bool over_high = conn->write_bytes() >= config_.write_high_watermark ||
                   conn->in_flight >= config_.max_pipeline_depth;
  bool under_low = conn->write_bytes() <= config_.write_low_watermark &&
                   conn->in_flight <= config_.max_pipeline_depth / 2;
  if (!conn->paused && over_high) {
    conn->paused = true;
    read_paused_total_->Increment();
  } else if (conn->paused && under_low) {
    conn->paused = false;
    read_resumed_total_->Increment();
  }
  bool reading = !conn->paused && !conn->peer_eof && !conn->draining;
  uint32_t want = (reading ? EPOLLIN : 0u) |
                  (conn->write_bytes() > 0 ? EPOLLOUT : 0u);
  if (want != conn->interest) {
    conn->interest = want;
    loop_.Modify(conn->fd, want);
  }
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn,
                             const char* reason) {
  if (conn->closed) return;
  conn->closed = true;
  obs::Span span = tracer_->StartSpan("net.close");
  span.AddAttr("reason", reason);
  loop_.Remove(conn->fd);
  close(conn->fd);
  closed_total_->Increment();
  connections_.erase(conn->id);
  CheckDrainComplete();
}

}  // namespace uctr::net
