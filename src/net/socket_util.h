#ifndef UCTR_NET_SOCKET_UTIL_H_
#define UCTR_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace uctr::net {

/// \brief A parsed `HOST:PORT` endpoint.
struct HostPort {
  std::string host;
  uint16_t port = 0;
};

/// \brief Parses "HOST:PORT" (e.g. "127.0.0.1:8080", "localhost:0").
/// The port may be 0 (bind-time ephemeral); the host may not be empty.
Result<HostPort> ParseHostPort(const std::string& spec);

/// \brief Resolves `host` to an IPv4 dotted-quad string via getaddrinfo
/// (accepts dotted quads and names like "localhost").
Result<std::string> ResolveIPv4(const std::string& host);

/// \brief Opens a blocking TCP connection (IPv4) with TCP_NODELAY set.
/// Returns the connected fd.
Result<int> ConnectTcp(const std::string& host, uint16_t port);

/// \brief Sets O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd);

/// \brief errno as a "prefix: strerror" Status.
Status ErrnoStatus(const std::string& prefix);

}  // namespace uctr::net

#endif  // UCTR_NET_SOCKET_UTIL_H_
