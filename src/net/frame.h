#ifndef UCTR_NET_FRAME_H_
#define UCTR_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace uctr::net {

/// \brief The UCTR wire protocol frame codec.
///
/// A frame is a 4-byte big-endian unsigned payload length followed by
/// exactly that many payload bytes. The payload is one JSON object — the
/// same request/response schema the stdio mode of `uctr_serve` speaks,
/// without the trailing newline (framing replaces line-delimiting so
/// payloads may embed newlines freely). Both directions use the same
/// framing.
///
/// Protocol limits (violations poison the decoder — the connection must
/// be torn down, there is no way to resynchronize a byte stream after a
/// corrupt header):
///   - zero-length frames are invalid (an empty payload can never be a
///     JSON object; a zero header is far more likely a desynced stream);
///   - frames larger than `max_frame_bytes` are rejected *from the
///     header alone*, before any payload buffering, so a hostile or
///     corrupt length prefix cannot make the server allocate it.
constexpr size_t kFrameHeaderBytes = 4;
constexpr size_t kDefaultMaxFrameBytes = 8u << 20;  // 8 MiB

/// \brief Frames `payload` for the wire: header + bytes, as one string.
/// Payloads above `max_frame_bytes` return InvalidArgument (the peer
/// would reject them anyway; failing at the sender keeps the connection
/// alive).
Result<std::string> EncodeFrame(std::string_view payload,
                                size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// \brief Incremental frame decoder tolerant of arbitrary byte-stream
/// fragmentation: partial headers, partial payloads, and many frames
/// coalesced into one read all decode identically.
///
/// Usage:
///   decoder.Feed(buf, n);            // returns non-OK on protocol error
///   while (decoder.Next(&payload)) { ... }
///
/// Once Feed returns an error the decoder is poisoned: further Feeds
/// return the same error and Next yields nothing beyond frames that were
/// already complete before the violation.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// \brief Appends `n` bytes of stream data. Returns the first protocol
  /// violation (oversized or zero-length header), sticky across calls.
  Status Feed(const char* data, size_t n);
  Status Feed(std::string_view data) { return Feed(data.data(), data.size()); }

  /// \brief Pops the next complete frame payload; false when no complete
  /// frame is buffered.
  bool Next(std::string* payload);

  /// \brief Bytes buffered but not yet returned by Next (header bytes,
  /// partial payloads, and decoded-but-unpopped frames).
  size_t buffered_bytes() const;

  bool poisoned() const { return !error_.ok(); }
  const Status& error() const { return error_; }

 private:
  size_t max_frame_bytes_;  ///< Non-const so decoders stay movable.
  Status error_;
  /// Undecoded stream bytes. `consumed_` is the read offset into it;
  /// compacted when the consumed prefix dominates, so steady-state
  /// decoding does not repeatedly memmove the tail.
  std::string buffer_;
  size_t consumed_ = 0;
  /// Declared length of the frame being decoded; SIZE_MAX = between
  /// frames (waiting for a header).
  size_t pending_len_ = SIZE_MAX;
};

}  // namespace uctr::net

#endif  // UCTR_NET_FRAME_H_
