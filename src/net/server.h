#ifndef UCTR_NET_SERVER_H_
#define UCTR_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/event_loop.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/backend.h"

namespace uctr::net {

/// \brief Transport knobs for the TCP front end.
struct NetServerConfig {
  /// Bind address. Port 0 binds an ephemeral port; Start() resolves it
  /// (see Server::port()).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int backlog = 128;
  size_t max_connections = 1024;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Per-connection write-queue watermarks. Above `high` the connection
  /// stops being read (EPOLLIN off — responses for frames already
  /// dispatched keep flowing, new requests wait in the kernel buffer);
  /// below `low` reading resumes. Above `shed` the connection is closed
  /// outright: a client that stops reading its responses is shed rather
  /// than allowed to pin response memory — serving workers are never
  /// blocked by a slow client either way (writes are queued, workers
  /// hand off and return).
  size_t write_high_watermark = 1u << 20;   // 1 MiB
  size_t write_low_watermark = 256u << 10;  // 256 KiB
  size_t write_shed_bytes = 8u << 20;       // 8 MiB

  /// Frames dispatched but not yet answered, per connection; reading
  /// pauses above this (resumes at half), bounding per-connection memory
  /// even when responses are small but slow.
  size_t max_pipeline_depth = 256;

  /// Graceful drain gives in-flight requests and unflushed responses
  /// this long before force-closing the remaining connections.
  int drain_timeout_ms = 10000;

  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Tests
  /// shrink this so watermark/shed behavior triggers deterministically
  /// without megabytes of traffic.
  int so_sndbuf = 0;

  /// Metrics sink; null = the process-wide obs::DefaultRegistry().
  obs::MetricsRegistry* metrics = nullptr;
  /// Trace sink; null = obs::Tracer::Default().
  obs::Tracer* tracer = nullptr;
};

/// \brief The epoll TCP front end: accepts connections, decodes
/// length-prefixed frames (see net/frame.h), dispatches each payload to a
/// serve::LineBackend — the local worker pool (serve::Server) or the
/// shard router (net::Router) — and writes framed responses back — per
/// connection, in the order the requests arrived on that connection,
/// regardless of how workers interleave.
///
/// Threading model: all connection state lives on the thread inside
/// Run(). Worker completion callbacks cross back via EventLoop::Post, so
/// connection state machines need no locks and a worker never blocks on
/// a client socket. Shutdown() is safe from any thread.
///
/// Connection state machine (per connection):
///
///   reading --high watermark / pipeline full--> paused
///   paused  --low watermark & pipeline drains--> reading
///   reading/paused --peer EOF--> half-closed (finish responses, close)
///   any     --write queue > shed limit--> shed (closed immediately)
///   any     --protocol error / read-write error / fault--> closed
///   any     --drain--> draining (no new reads; close when idle)
///
/// Fault points: `net.accept`, `net.read`, `net.write` (an injected
/// error closes that connection; latency stalls the loop tick) — armed
/// via --fault-spec like every other site.
class Server {
 public:
  /// \param backend not owned; must outlive the net::Server. The
  /// destructor drains it so no completion callback can outlive this
  /// transport.
  Server(serve::LineBackend* backend, NetServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Creates, binds, and registers the listener. On success
  /// port() returns the actual bound port (resolves port 0).
  Status Start();

  uint16_t port() const { return bound_port_; }

  /// \brief Serves on the calling thread until a graceful drain
  /// completes (Shutdown(), the shutdown flag, or drain timeout).
  void Run();

  /// \brief Initiates graceful drain from any thread: stop accepting,
  /// mark the backend draining (health probes answer "draining"), finish
  /// in-flight requests, flush every write queue, then Run() returns.
  /// Idempotent.
  void Shutdown();

  /// \brief Polled once per loop tick; when set, triggers Shutdown().
  /// Wire this to the CLI's sig_atomic_t so SIGTERM starts the drain.
  void set_shutdown_flag(const volatile std::sig_atomic_t* flag) {
    shutdown_flag_ = flag;
  }

  /// \brief Live connections (loop thread, or after Run() returns).
  size_t active_connections() const { return connections_.size(); }

  EventLoop* loop() { return &loop_; }

 private:
  struct Connection;

  void OnAcceptReady();
  void OnConnectionEvent(const std::shared_ptr<Connection>& conn,
                         uint32_t events);
  void ReadFromConnection(const std::shared_ptr<Connection>& conn);
  void DispatchFrame(const std::shared_ptr<Connection>& conn,
                     std::string payload);
  void OnResponse(const std::shared_ptr<Connection>& conn, uint64_t sequence,
                  std::string response_line);
  /// Moves the contiguous completed-response prefix into the write queue
  /// as frames, then updates watermark state.
  void FlushCompleted(const std::shared_ptr<Connection>& conn);
  void TryWrite(const std::shared_ptr<Connection>& conn);
  void UpdateReadInterest(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn,
                       const char* reason);
  void BeginDrain();
  void Tick();
  void CheckDrainComplete();

  serve::LineBackend* backend_;
  NetServerConfig config_;
  obs::MetricsRegistry* metrics_;
  obs::Tracer* tracer_;
  EventLoop loop_;
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> connections_;
  /// Requests dispatched to the backend and not yet answered, across all
  /// connections — counts completions whose connection died too, so the
  /// drain barrier is exact.
  size_t in_flight_total_ = 0;
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};
  std::atomic<bool> shutdown_requested_{false};
  const volatile std::sig_atomic_t* shutdown_flag_ = nullptr;

  obs::Counter* accepted_total_;
  obs::Counter* closed_total_;
  obs::Counter* refused_total_;
  obs::Counter* shed_total_;
  obs::Counter* frames_in_total_;
  obs::Counter* frames_out_total_;
  obs::Counter* bytes_in_total_;
  obs::Counter* bytes_out_total_;
  obs::Counter* protocol_errors_total_;
  obs::Counter* read_paused_total_;
  obs::Counter* read_resumed_total_;
  obs::Histogram* frame_us_;
};

}  // namespace uctr::net

#endif  // UCTR_NET_SERVER_H_
