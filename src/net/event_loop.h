#ifndef UCTR_NET_EVENT_LOOP_H_
#define UCTR_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace uctr::net {

/// \brief A single-threaded non-blocking epoll event loop.
///
/// All fd callbacks run on the thread inside Run(); that thread owns
/// every connection's state, which is what keeps the connection state
/// machines lock-free. The only cross-thread entry points are Post() and
/// Stop(): both take a small mutex, enqueue, and wake the loop via an
/// eventfd — this is how serving workers hand completed responses back
/// to the connection that owns them.
///
/// Events are level-triggered (EPOLLIN/EPOLLOUT as registered): a
/// handler that does not drain its fd is simply called again, which
/// makes partial reads/writes the normal case rather than a special one.
class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// \brief True when the epoll and wakeup fds were created successfully;
  /// a failed loop returns errors from every registration.
  Status Init() const { return init_; }

  /// \brief Registers `fd` with the given EPOLL* interest mask. The
  /// callback receives the ready-event mask. One callback per fd;
  /// re-adding an fd replaces it.
  Status Add(int fd, uint32_t events, std::function<void(uint32_t)> on_event);

  /// \brief Changes the interest mask of a registered fd.
  Status Modify(int fd, uint32_t events);

  /// \brief Deregisters `fd` (does not close it). Pending ready-events
  /// for it in the current epoll batch are discarded, so a handler may
  /// safely Remove+close any fd — including its own — mid-batch.
  void Remove(int fd);

  /// \brief Queues `task` to run on the loop thread and wakes the loop.
  /// Thread-safe; callable from the loop thread itself (the task runs in
  /// a later iteration, never recursively).
  void Post(std::function<void()> task);

  /// \brief Runs the loop on the calling thread until Stop(). Dispatches
  /// fd events and posted tasks; returns after draining the posted-task
  /// queue one final time.
  void Run();

  /// \brief Makes Run() return. Thread-safe.
  void Stop();

  /// \brief Optional callback run once per loop iteration (after events
  /// and posted tasks, and on every wait timeout). The wait granularity
  /// (100 ms) bounds its staleness, which makes it the place to poll
  /// signal flags and drain deadlines.
  void set_tick(std::function<void()> tick) { tick_ = std::move(tick); }

  size_t registered_fds() const { return handlers_.size(); }

 private:
  /// Registered handler. `generation` guards against fd-number reuse
  /// inside one epoll batch: events carry (fd, generation) and are
  /// dropped unless both match the live registration.
  struct Handler {
    std::function<void(uint32_t)> on_event;
    uint64_t generation = 0;
  };

  void DrainWakeup();
  void RunPostedTasks();

  Status init_;
  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
  uint64_t next_generation_ = 1;
  std::unordered_map<int, Handler> handlers_;  // loop thread only
  std::function<void()> tick_;

  std::atomic<bool> stop_{false};
  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace uctr::net

#endif  // UCTR_NET_EVENT_LOOP_H_
