#include "net/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace uctr::net {

Status ErrnoStatus(const std::string& prefix) {
  return Status::Unavailable(prefix + ": " + std::strerror(errno));
}

Result<HostPort> ParseHostPort(const std::string& spec) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return Status::InvalidArgument("expected HOST:PORT, got '" + spec + "'");
  }
  HostPort out;
  out.host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  long port = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port '" + port_text + "' in '" +
                                     spec + "'");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in '" + spec + "'");
    }
  }
  out.port = static_cast<uint16_t>(port);
  return out;
}

Result<std::string> ResolveIPv4(const std::string& host) {
  struct in_addr direct = {};
  if (inet_pton(AF_INET, host.c_str(), &direct) == 1) return host;
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* info = nullptr;
  int rc = getaddrinfo(host.c_str(), nullptr, &hints, &info);
  if (rc != 0 || info == nullptr) {
    return Status::NotFound("cannot resolve host '" + host +
                            "': " + gai_strerror(rc));
  }
  char text[INET_ADDRSTRLEN] = {};
  auto* addr = reinterpret_cast<struct sockaddr_in*>(info->ai_addr);
  inet_ntop(AF_INET, &addr->sin_addr, text, sizeof(text));
  freeaddrinfo(info);
  return std::string(text);
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  std::string ip;
  UCTR_ASSIGN_OR_RETURN(ip, ResolveIPv4(host));
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, ip.c_str(), &addr.sin_addr);
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    Status s = ErrnoStatus("connect " + ip + ":" + std::to_string(port));
    close(fd);
    return s;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace uctr::net
