#ifndef UCTR_ARITH_EXECUTOR_H_
#define UCTR_ARITH_EXECUTOR_H_

#include <string_view>

#include "common/result.h"
#include "arith/ast.h"
#include "table/exec_result.h"
#include "table/table.h"

namespace uctr::arith {

/// \brief Executes a FinQA arithmetic program against a table (the paper's
/// Program-Executor for arithmetic expressions [6]).
///
/// Cell references `col of row` resolve against the table (row matched in
/// the first column). `table_max/min/sum/average(name)` aggregate the
/// numeric cells of the row named `name`, falling back to the column with
/// that header. `greater(a,b)` yields a Bool; everything else a Number.
/// The answer is the value of the final step; evidence_rows lists the rows
/// whose cells were read.
Result<ExecResult> Execute(const Expression& expr, const Table& table);

/// \brief Parses then executes.
Result<ExecResult> ExecuteExpression(std::string_view text,
                                     const Table& table);

}  // namespace uctr::arith

#endif  // UCTR_ARITH_EXECUTOR_H_
