#include "arith/parser.h"

#include <cctype>

#include "common/numeric.h"
#include "common/string_util.h"

namespace uctr::arith {

namespace {

const char* kOps[] = {"add",       "subtract",  "multiply",
                      "divide",    "greater",   "exp",
                      "table_max", "table_min", "table_sum",
                      "table_average"};

Result<Operand> ParseOperand(std::string_view raw) {
  std::string text = Trim(raw);
  if (text.empty()) return Status::ParseError("empty operand");
  Operand op;
  op.text = text;
  if (text[0] == '#') {
    auto n = ParseNumber(std::string_view(text).substr(1));
    if (!n || *n < 0) {
      return Status::ParseError("bad step reference '" + text + "'");
    }
    op.kind = Operand::Kind::kStepRef;
    op.step_ref = static_cast<size_t>(*n);
    return op;
  }
  if (StartsWith(ToLower(text), "const_")) {
    auto n = ParseNumber(std::string_view(text).substr(6));
    if (!n) return Status::ParseError("bad constant '" + text + "'");
    op.kind = Operand::Kind::kConst;
    op.constant = *n;
    return op;
  }
  if (auto n = ParseNumber(text)) {
    op.kind = Operand::Kind::kConst;
    op.constant = *n;
    return op;
  }
  // "col of row": split on the *last* " of " so column names containing
  // "of" still work ("share of revenue of 2019" -> col "share of revenue").
  size_t pos = ToLower(text).rfind(" of ");
  if (pos != std::string::npos && pos > 0) {
    op.kind = Operand::Kind::kCellRef;
    op.column = Trim(std::string_view(text).substr(0, pos));
    op.row = Trim(std::string_view(text).substr(pos + 4));
    if (!op.column.empty() && !op.row.empty()) return op;
  }
  op.kind = Operand::Kind::kText;
  return op;
}

}  // namespace

bool IsKnownOperation(std::string_view op) {
  for (const char* k : kOps) {
    if (EqualsIgnoreCase(op, k)) return true;
  }
  return false;
}

Result<Expression> Parse(std::string_view text) {
  Expression expr;
  size_t i = 0;
  auto skip_space = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  skip_space();
  while (i < text.size()) {
    // Operation name up to '('.
    size_t start = i;
    while (i < text.size() && text[i] != '(') ++i;
    if (i >= text.size()) {
      return Status::ParseError("expected '(' in arithmetic step");
    }
    Step step;
    step.op = ToLower(Trim(text.substr(start, i - start)));
    if (!IsKnownOperation(step.op)) {
      return Status::ParseError("unknown operation '" + step.op + "'");
    }
    ++i;  // consume '('
    // Arguments up to matching ')', split on top-level commas.
    std::string current;
    bool closed = false;
    while (i < text.size()) {
      char c = text[i];
      if (c == ')') {
        ++i;
        closed = true;
        break;
      }
      if (c == ',') {
        UCTR_ASSIGN_OR_RETURN(Operand operand, ParseOperand(current));
        step.args.push_back(std::move(operand));
        current.clear();
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
    }
    if (!closed) return Status::ParseError("unterminated '(' in step");
    if (!Trim(current).empty() || step.args.empty()) {
      UCTR_ASSIGN_OR_RETURN(Operand operand, ParseOperand(current));
      step.args.push_back(std::move(operand));
    }
    expr.steps.push_back(std::move(step));
    skip_space();
    if (i < text.size()) {
      if (text[i] != ',') {
        return Status::ParseError("expected ',' between steps at offset " +
                                  std::to_string(i));
      }
      ++i;
      skip_space();
    }
  }
  if (expr.steps.empty()) {
    return Status::ParseError("empty arithmetic expression");
  }
  // Validate step references point backwards.
  for (size_t s = 0; s < expr.steps.size(); ++s) {
    for (const Operand& op : expr.steps[s].args) {
      if (op.kind == Operand::Kind::kStepRef && op.step_ref >= s) {
        return Status::ParseError("step reference #" +
                                  std::to_string(op.step_ref) +
                                  " must point to an earlier step");
      }
    }
  }
  return expr;
}

}  // namespace uctr::arith
