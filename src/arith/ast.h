#ifndef UCTR_ARITH_AST_H_
#define UCTR_ARITH_AST_H_

#include <string>
#include <vector>

namespace uctr::arith {

/// \brief One argument of an arithmetic step.
struct Operand {
  enum class Kind {
    kStepRef,  ///< `#n` — result of an earlier step.
    kConst,    ///< a numeric literal, incl. FinQA's `const_100` spellings.
    kCellRef,  ///< `col_name of row_name` — a table lookup (paper IV-B).
    kText,     ///< unresolved text, resolved against the table at execution.
  };

  Kind kind = Kind::kText;
  size_t step_ref = 0;   // for kStepRef
  double constant = 0;   // for kConst
  std::string column;    // for kCellRef
  std::string row;       // for kCellRef
  std::string text;      // for kText (and original spelling otherwise)

  std::string ToString() const;
};

/// \brief One step: `op(arg1, arg2)` (unary for table aggregations).
struct Step {
  std::string op;
  std::vector<Operand> args;

  std::string ToString() const;
};

/// \brief A FinQA-style program: a comma-separated sequence of steps whose
/// value is the result of the last step. Example:
///   `subtract(revenue of 2019, revenue of 2018), divide(#0, revenue of 2018)`
struct Expression {
  std::vector<Step> steps;

  std::string ToString() const;
};

}  // namespace uctr::arith

#endif  // UCTR_ARITH_AST_H_
