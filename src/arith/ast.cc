#include "arith/ast.h"

#include "common/numeric.h"

namespace uctr::arith {

std::string Operand::ToString() const {
  switch (kind) {
    case Kind::kStepRef:
      return "#" + std::to_string(step_ref);
    case Kind::kConst:
      return text.empty() ? FormatNumber(constant) : text;
    case Kind::kCellRef:
      return column + " of " + row;
    case Kind::kText:
      return text;
  }
  return text;
}

std::string Step::ToString() const {
  std::string out = op + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

std::string Expression::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += ", ";
    out += steps[i].ToString();
  }
  return out;
}

}  // namespace uctr::arith
