#ifndef UCTR_ARITH_PARSER_H_
#define UCTR_ARITH_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "arith/ast.h"

namespace uctr::arith {

/// \brief Parses a FinQA arithmetic program:
///   step (, step)*    with step = op(arg1[, arg2])
/// Supported ops: add, subtract, multiply, divide, greater, exp,
/// table_max, table_min, table_sum, table_average.
/// Arguments may be `#n` step references, numeric constants (`5`,
/// `const_100`), `col of row` cell references, or free text resolved
/// against the table at execution time.
Result<Expression> Parse(std::string_view text);

/// \brief True if `op` names a supported operation.
bool IsKnownOperation(std::string_view op);

}  // namespace uctr::arith

#endif  // UCTR_ARITH_PARSER_H_
