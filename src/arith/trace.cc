#include "arith/trace.h"

#include "arith/executor.h"

namespace uctr::arith {

std::string ArithTrace::ToString() const {
  std::string out;
  for (const ArithTraceStep& step : steps) {
    out += "  #" + std::to_string(step.index) + ": " + step.expression +
           "  =>  " + step.output + "\n";
  }
  return out;
}

Result<ArithTrace> ExecuteWithTrace(const Expression& expr,
                                    const Table& table) {
  ArithTrace trace;
  // Execute growing prefixes: prefix i's final value is step i's result.
  // Tables are small, so the quadratic re-execution is negligible and
  // keeps this file independent of the executor's internals.
  for (size_t i = 0; i < expr.steps.size(); ++i) {
    Expression prefix;
    prefix.steps.assign(expr.steps.begin(), expr.steps.begin() + i + 1);
    UCTR_ASSIGN_OR_RETURN(ExecResult result, Execute(prefix, table));
    ArithTraceStep step;
    step.index = i;
    step.expression = expr.steps[i].ToString();
    step.output = result.scalar().ToDisplayString();
    trace.steps.push_back(std::move(step));
    if (i + 1 == expr.steps.size()) trace.result = std::move(result);
  }
  if (trace.steps.empty()) {
    return Status::InvalidArgument("empty arithmetic expression");
  }
  return trace;
}

}  // namespace uctr::arith
