#include "arith/executor.h"

#include <cmath>
#include <set>

#include "arith/exec_internal.h"
#include "arith/parser.h"
#include "common/numeric.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace uctr::arith {

namespace internal {

namespace {

Result<double> TryCellLookup(const Table& table, const std::string& column,
                             const std::string& row_name,
                             std::set<size_t>* evidence) {
  UCTR_ASSIGN_OR_RETURN(size_t r, table.RowIndexByName(row_name));
  UCTR_ASSIGN_OR_RETURN(size_t c, table.ColumnIndex(column));
  UCTR_ASSIGN_OR_RETURN(double v, table.cell(r, c).ToNumber());
  evidence->insert(r);
  return v;
}

}  // namespace

Result<double> ResolveCellRef(const Table& table, const std::string& column,
                              const std::string& row, const std::string& text,
                              std::set<size_t>* evidence) {
  // The parser's "col of row" split is a guess: both halves may
  // themselves contain " of " ("cost of sales"). Try the parsed
  // split first, then every other split point of the original text.
  if (auto v = TryCellLookup(table, column, row, evidence); v.ok()) return v;
  std::string lowered = ToLower(text);
  size_t pos = lowered.find(" of ");
  while (pos != std::string::npos) {
    std::string col = Trim(std::string_view(text).substr(0, pos));
    std::string row_name = Trim(std::string_view(text).substr(pos + 4));
    if (auto v = TryCellLookup(table, col, row_name, evidence); v.ok()) {
      return v;
    }
    pos = lowered.find(" of ", pos + 1);
  }
  return Status::NotFound("cannot resolve cell reference '" + text + "'");
}

Result<std::vector<double>> ResolveSeries(const Table& table,
                                          const std::string& name,
                                          std::set<size_t>* evidence) {
  std::vector<double> out;
  if (auto r = table.RowIndexByName(name); r.ok()) {
    size_t row = r.ValueOrDie();
    evidence->insert(row);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Value& v = table.cell(row, c);
      if (v.is_number()) out.push_back(v.number());
    }
    if (!out.empty()) return out;
  }
  if (auto c = table.ColumnIndex(name); c.ok()) {
    size_t col = c.ValueOrDie();
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const Value& v = table.cell(r, col);
      if (v.is_number()) {
        out.push_back(v.number());
        evidence->insert(r);
      }
    }
    if (!out.empty()) return out;
  }
  return Status::ExecutionError("no numeric series named '" + name + "'");
}

}  // namespace internal

namespace {

class Evaluator {
 public:
  explicit Evaluator(const Table& table) : table_(table) {}

  Result<Value> Run(const Expression& expr) {
    results_.clear();
    for (const Step& step : expr.steps) {
      UCTR_ASSIGN_OR_RETURN(Value v, EvalStep(step));
      results_.push_back(std::move(v));
    }
    return results_.back();
  }

  const std::set<size_t>& evidence() const { return evidence_; }

 private:
  Result<double> ResolveNumeric(const Operand& op) {
    switch (op.kind) {
      case Operand::Kind::kStepRef:
        if (op.step_ref >= results_.size()) {
          return Status::OutOfRange("forward step reference #" +
                                    std::to_string(op.step_ref));
        }
        return results_[op.step_ref].ToNumber();
      case Operand::Kind::kConst:
        return op.constant;
      case Operand::Kind::kCellRef:
        return internal::ResolveCellRef(table_, op.column, op.row, op.text,
                                        &evidence_);
      case Operand::Kind::kText: {
        // Free text might still be a cell value; try a unique table scan.
        Value wanted = Value::FromText(op.text);
        if (wanted.is_number()) return wanted.ToNumber();
        return Status::ExecutionError("cannot resolve operand '" + op.text +
                                      "' to a number");
      }
    }
    return Status::Internal("unreachable");
  }

  Result<Value> EvalStep(const Step& step) {
    if (StartsWith(step.op, "table_")) {
      if (step.args.size() != 1) {
        return Status::InvalidArgument(step.op + " expects 1 argument");
      }
      const Operand& arg = step.args[0];
      std::string name = arg.kind == Operand::Kind::kCellRef
                             ? arg.column + " of " + arg.row
                             : arg.text;
      UCTR_ASSIGN_OR_RETURN(
          std::vector<double> series,
          internal::ResolveSeries(table_, name, &evidence_));
      double acc = series[0];
      double sum = 0;
      for (double x : series) sum += x;
      if (step.op == "table_max") {
        for (double x : series) acc = std::max(acc, x);
        return Value::Number(acc);
      }
      if (step.op == "table_min") {
        for (double x : series) acc = std::min(acc, x);
        return Value::Number(acc);
      }
      if (step.op == "table_sum") return Value::Number(sum);
      if (step.op == "table_average") {
        return Value::Number(sum / static_cast<double>(series.size()));
      }
      return Status::InvalidArgument("unknown table op '" + step.op + "'");
    }

    if (step.args.size() != 2) {
      return Status::InvalidArgument(step.op + " expects 2 arguments");
    }
    UCTR_ASSIGN_OR_RETURN(double a, ResolveNumeric(step.args[0]));
    UCTR_ASSIGN_OR_RETURN(double b, ResolveNumeric(step.args[1]));
    if (step.op == "add") return Value::Number(a + b);
    if (step.op == "subtract") return Value::Number(a - b);
    if (step.op == "multiply") return Value::Number(a * b);
    if (step.op == "divide") {
      if (b == 0) return Status::ExecutionError("division by zero");
      return Value::Number(a / b);
    }
    if (step.op == "greater") return Value::Bool(a > b);
    if (step.op == "exp") {
      double v = std::pow(a, b);
      if (!std::isfinite(v)) {
        return Status::ExecutionError("exp overflow");
      }
      return Value::Number(v);
    }
    return Status::InvalidArgument("unknown operation '" + step.op + "'");
  }

  const Table& table_;
  std::vector<Value> results_;
  std::set<size_t> evidence_;
};

}  // namespace

Result<ExecResult> Execute(const Expression& expr, const Table& table) {
  static obs::Counter* exec_total =
      obs::DefaultRegistry().counter("arith_exec_total");
  static obs::Counter* steps_total =
      obs::DefaultRegistry().counter("arith_steps_total");
  exec_total->Increment();
  steps_total->Increment(expr.steps.size());
  Evaluator eval(table);
  UCTR_ASSIGN_OR_RETURN(Value answer, eval.Run(expr));
  ExecResult result;
  result.values.push_back(std::move(answer));
  result.evidence_rows.assign(eval.evidence().begin(), eval.evidence().end());
  return result;
}

Result<ExecResult> ExecuteExpression(std::string_view text,
                                     const Table& table) {
  UCTR_ASSIGN_OR_RETURN(Expression expr, Parse(text));
  return Execute(expr, table);
}

}  // namespace uctr::arith
