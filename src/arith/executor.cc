#include "arith/executor.h"

#include <cmath>
#include <set>

#include "arith/parser.h"
#include "common/numeric.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace uctr::arith {

namespace {

class Evaluator {
 public:
  explicit Evaluator(const Table& table) : table_(table) {}

  Result<Value> Run(const Expression& expr) {
    results_.clear();
    for (const Step& step : expr.steps) {
      UCTR_ASSIGN_OR_RETURN(Value v, EvalStep(step));
      results_.push_back(std::move(v));
    }
    return results_.back();
  }

  const std::set<size_t>& evidence() const { return evidence_; }

 private:
  Result<double> TryCellLookup(const std::string& column,
                               const std::string& row_name) {
    UCTR_ASSIGN_OR_RETURN(size_t r, table_.RowIndexByName(row_name));
    UCTR_ASSIGN_OR_RETURN(size_t c, table_.ColumnIndex(column));
    UCTR_ASSIGN_OR_RETURN(double v, table_.cell(r, c).ToNumber());
    evidence_.insert(r);
    return v;
  }

  Result<double> ResolveNumeric(const Operand& op) {
    switch (op.kind) {
      case Operand::Kind::kStepRef:
        if (op.step_ref >= results_.size()) {
          return Status::OutOfRange("forward step reference #" +
                                    std::to_string(op.step_ref));
        }
        return results_[op.step_ref].ToNumber();
      case Operand::Kind::kConst:
        return op.constant;
      case Operand::Kind::kCellRef: {
        // The parser's "col of row" split is a guess: both halves may
        // themselves contain " of " ("cost of sales"). Try the parsed
        // split first, then every other split point of the original text.
        if (auto v = TryCellLookup(op.column, op.row); v.ok()) return v;
        std::string lowered = ToLower(op.text);
        size_t pos = lowered.find(" of ");
        while (pos != std::string::npos) {
          std::string col = Trim(std::string_view(op.text).substr(0, pos));
          std::string row = Trim(std::string_view(op.text).substr(pos + 4));
          if (auto v = TryCellLookup(col, row); v.ok()) return v;
          pos = lowered.find(" of ", pos + 1);
        }
        return Status::NotFound("cannot resolve cell reference '" + op.text +
                                "'");
      }
      case Operand::Kind::kText: {
        // Free text might still be a cell value; try a unique table scan.
        Value wanted = Value::FromText(op.text);
        if (wanted.is_number()) return wanted.ToNumber();
        return Status::ExecutionError("cannot resolve operand '" + op.text +
                                      "' to a number");
      }
    }
    return Status::Internal("unreachable");
  }

  /// Numeric cells of the row named `name`, or of the column headed `name`.
  Result<std::vector<double>> ResolveSeries(const Operand& op) {
    std::string name = op.kind == Operand::Kind::kCellRef
                           ? op.column + " of " + op.row
                           : op.text;
    std::vector<double> out;
    if (auto r = table_.RowIndexByName(name); r.ok()) {
      size_t row = r.ValueOrDie();
      evidence_.insert(row);
      for (size_t c = 0; c < table_.num_columns(); ++c) {
        const Value& v = table_.cell(row, c);
        if (v.is_number()) out.push_back(v.number());
      }
      if (!out.empty()) return out;
    }
    if (auto c = table_.ColumnIndex(name); c.ok()) {
      size_t col = c.ValueOrDie();
      for (size_t r = 0; r < table_.num_rows(); ++r) {
        const Value& v = table_.cell(r, col);
        if (v.is_number()) {
          out.push_back(v.number());
          evidence_.insert(r);
        }
      }
      if (!out.empty()) return out;
    }
    return Status::ExecutionError("no numeric series named '" + name + "'");
  }

  Result<Value> EvalStep(const Step& step) {
    if (StartsWith(step.op, "table_")) {
      if (step.args.size() != 1) {
        return Status::InvalidArgument(step.op + " expects 1 argument");
      }
      UCTR_ASSIGN_OR_RETURN(std::vector<double> series,
                            ResolveSeries(step.args[0]));
      double acc = series[0];
      double sum = 0;
      for (double x : series) sum += x;
      if (step.op == "table_max") {
        for (double x : series) acc = std::max(acc, x);
        return Value::Number(acc);
      }
      if (step.op == "table_min") {
        for (double x : series) acc = std::min(acc, x);
        return Value::Number(acc);
      }
      if (step.op == "table_sum") return Value::Number(sum);
      if (step.op == "table_average") {
        return Value::Number(sum / static_cast<double>(series.size()));
      }
      return Status::InvalidArgument("unknown table op '" + step.op + "'");
    }

    if (step.args.size() != 2) {
      return Status::InvalidArgument(step.op + " expects 2 arguments");
    }
    UCTR_ASSIGN_OR_RETURN(double a, ResolveNumeric(step.args[0]));
    UCTR_ASSIGN_OR_RETURN(double b, ResolveNumeric(step.args[1]));
    if (step.op == "add") return Value::Number(a + b);
    if (step.op == "subtract") return Value::Number(a - b);
    if (step.op == "multiply") return Value::Number(a * b);
    if (step.op == "divide") {
      if (b == 0) return Status::ExecutionError("division by zero");
      return Value::Number(a / b);
    }
    if (step.op == "greater") return Value::Bool(a > b);
    if (step.op == "exp") {
      double v = std::pow(a, b);
      if (!std::isfinite(v)) {
        return Status::ExecutionError("exp overflow");
      }
      return Value::Number(v);
    }
    return Status::InvalidArgument("unknown operation '" + step.op + "'");
  }

  const Table& table_;
  std::vector<Value> results_;
  std::set<size_t> evidence_;
};

}  // namespace

Result<ExecResult> Execute(const Expression& expr, const Table& table) {
  static obs::Counter* exec_total =
      obs::DefaultRegistry().counter("arith_exec_total");
  static obs::Counter* steps_total =
      obs::DefaultRegistry().counter("arith_steps_total");
  exec_total->Increment();
  steps_total->Increment(expr.steps.size());
  Evaluator eval(table);
  UCTR_ASSIGN_OR_RETURN(Value answer, eval.Run(expr));
  ExecResult result;
  result.values.push_back(std::move(answer));
  result.evidence_rows.assign(eval.evidence().begin(), eval.evidence().end());
  return result;
}

Result<ExecResult> ExecuteExpression(std::string_view text,
                                     const Table& table) {
  UCTR_ASSIGN_OR_RETURN(Expression expr, Parse(text));
  return Execute(expr, table);
}

}  // namespace uctr::arith
