#ifndef UCTR_ARITH_EXEC_INTERNAL_H_
#define UCTR_ARITH_EXEC_INTERNAL_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

/// Shared arithmetic-program execution primitives. Both the step evaluator
/// (arith/executor.cc) and the bytecode VM (ir/vm.cc) call these, so the
/// two paths resolve table references with literally the same code — the
/// byte-identity contract between them holds by construction.
namespace uctr::arith::internal {

/// Resolves a `col of row` cell reference to a number. Tries the parsed
/// (column, row) split first, then every other " of " split point of the
/// original text — both halves may themselves contain " of " ("cost of
/// sales"). Rows read are added to `*evidence`. NotFound when no split
/// resolves.
Result<double> ResolveCellRef(const Table& table, const std::string& column,
                              const std::string& row, const std::string& text,
                              std::set<size_t>* evidence);

/// Numeric cells of the row named `name`, or of the column headed `name`.
/// Rows read are added to `*evidence`.
Result<std::vector<double>> ResolveSeries(const Table& table,
                                          const std::string& name,
                                          std::set<size_t>* evidence);

}  // namespace uctr::arith::internal

#endif  // UCTR_ARITH_EXEC_INTERNAL_H_
