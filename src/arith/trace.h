#ifndef UCTR_ARITH_TRACE_H_
#define UCTR_ARITH_TRACE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "arith/ast.h"
#include "table/exec_result.h"
#include "table/table.h"

namespace uctr::arith {

/// \brief One evaluated step of an arithmetic program: the rendered step
/// and its numeric (or boolean) result.
struct ArithTraceStep {
  size_t index = 0;        ///< step number (what `#index` refers to)
  std::string expression;  ///< "subtract(2019 of revenue, 2018 of revenue)"
  std::string output;      ///< "200.5"
};

/// \brief Full program trace plus the final result.
struct ArithTrace {
  ExecResult result;
  std::vector<ArithTraceStep> steps;

  /// \brief "  #0: subtract(...) => 200.5" per line.
  std::string ToString() const;
};

/// \brief Executes `expr` step by step, recording every intermediate
/// value (the FinQA `#n` chain made visible). Semantics are identical to
/// arith::Execute.
Result<ArithTrace> ExecuteWithTrace(const Expression& expr,
                                    const Table& table);

}  // namespace uctr::arith

#endif  // UCTR_ARITH_TRACE_H_
