#include "fault/fault.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/result.h"

namespace uctr::fault {

namespace {

bool SiteMatches(const std::string& pattern, std::string_view site) {
  if (!pattern.empty() && pattern.back() == '*') {
    return site.substr(0, pattern.size() - 1) ==
           std::string_view(pattern).substr(0, pattern.size() - 1);
  }
  return pattern == site;
}

Result<StatusCode> CodeFromName(std::string_view name) {
  struct Entry {
    std::string_view name;
    StatusCode code;
  };
  static constexpr Entry kCodes[] = {
      {"invalid_argument", StatusCode::kInvalidArgument},
      {"parse_error", StatusCode::kParseError},
      {"type_error", StatusCode::kTypeError},
      {"not_found", StatusCode::kNotFound},
      {"out_of_range", StatusCode::kOutOfRange},
      {"execution_error", StatusCode::kExecutionError},
      {"empty_result", StatusCode::kEmptyResult},
      {"internal", StatusCode::kInternal},
      {"unavailable", StatusCode::kUnavailable},
      {"deadline_exceeded", StatusCode::kDeadlineExceeded},
  };
  for (const Entry& e : kCodes) {
    if (e.name == name) return e.code;
  }
  return Status::InvalidArgument("unknown status code '" + std::string(name) +
                                 "' in fault spec");
}

std::vector<std::string_view> SplitOn(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string_view::npos) end = text.size();
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
    if (end == text.size()) break;
  }
  return parts;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

Status ParseRule(std::string_view text, FaultRule* rule) {
  size_t eq = text.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument("fault rule '" + std::string(text) +
                                   "' must be site=action[:opt...]");
  }
  rule->site = std::string(Trim(text.substr(0, eq)));
  std::vector<std::string_view> parts = SplitOn(text.substr(eq + 1), ':');
  if (parts.empty() || Trim(parts[0]).empty()) {
    return Status::InvalidArgument("fault rule for site '" + rule->site +
                                   "' has no action");
  }

  std::string_view action = Trim(parts[0]);
  std::string_view arg;
  if (size_t open = action.find('('); open != std::string_view::npos) {
    if (action.back() != ')') {
      return Status::InvalidArgument("unbalanced '(' in fault action '" +
                                     std::string(action) + "'");
    }
    arg = action.substr(open + 1, action.size() - open - 2);
    action = action.substr(0, open);
  }
  if (action == "error") {
    rule->kind = FaultKind::kError;
    rule->code = StatusCode::kUnavailable;
    if (!arg.empty()) {
      UCTR_ASSIGN_OR_RETURN(rule->code, CodeFromName(arg));
    }
  } else if (action == "latency") {
    rule->kind = FaultKind::kLatency;
    if (arg.empty()) {
      return Status::InvalidArgument(
          "latency fault requires latency(<millis>)");
    }
    rule->latency_ms = std::atoi(std::string(arg).c_str());
    if (rule->latency_ms <= 0) {
      return Status::InvalidArgument("latency millis must be positive in '" +
                                     std::string(arg) + "'");
    }
  } else if (action == "alloc") {
    // Allocation failure shorthand: resource exhaustion (transient, like a
    // real allocator under memory pressure) with a recognizable message.
    rule->kind = FaultKind::kError;
    rule->code = StatusCode::kUnavailable;
    rule->message = "injected allocation failure";
  } else {
    return Status::InvalidArgument("unknown fault action '" +
                                   std::string(action) +
                                   "' (error|latency|alloc)");
  }

  for (size_t i = 1; i < parts.size(); ++i) {
    std::string_view opt = Trim(parts[i]);
    size_t kv = opt.find('=');
    if (kv == std::string_view::npos) {
      return Status::InvalidArgument("fault option '" + std::string(opt) +
                                     "' must be key=value");
    }
    std::string_view key = opt.substr(0, kv);
    std::string value(opt.substr(kv + 1));
    if (key == "p") {
      char* end = nullptr;
      rule->probability = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || rule->probability < 0.0 ||
          rule->probability > 1.0) {
        return Status::InvalidArgument("fault probability '" + value +
                                       "' must be in [0,1]");
      }
    } else if (key == "n") {
      rule->max_triggers = std::atoi(value.c_str());
      if (rule->max_triggers < 0) {
        return Status::InvalidArgument("fault trigger cap '" + value +
                                       "' must be >= 0");
      }
    } else if (key == "after") {
      rule->skip_first = std::atoi(value.c_str());
      if (rule->skip_first < 0) {
        return Status::InvalidArgument("fault 'after' count '" + value +
                                       "' must be >= 0");
      }
    } else {
      return Status::InvalidArgument("unknown fault option '" +
                                     std::string(key) + "' (p|n|after)");
    }
  }
  return Status::OK();
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rule.evaluated = 0;
  rule.triggered = 0;
  rules_.push_back(std::move(rule));
  armed_.store(true, std::memory_order_relaxed);
}

Status FaultInjector::ParseSpec(std::string_view spec,
                                std::vector<FaultRule>* rules) {
  for (std::string_view part : SplitOn(spec, ';')) {
    part = Trim(part);
    if (part.empty()) continue;
    FaultRule rule;
    UCTR_RETURN_NOT_OK(ParseRule(part, &rule));
    rules->push_back(std::move(rule));
  }
  return Status::OK();
}

Status FaultInjector::ArmSpec(std::string_view spec) {
  std::vector<FaultRule> rules;
  UCTR_RETURN_NOT_OK(ParseSpec(spec, &rules));
  for (FaultRule& rule : rules) Arm(std::move(rule));
  return Status::OK();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  armed_.store(false, std::memory_order_relaxed);
  injected_total_.store(0, std::memory_order_relaxed);
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.Seed(seed);
}

void FaultInjector::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
}

Status FaultInjector::Check(const char* site) {
  int sleep_ms = 0;
  Status injected = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    obs::MetricsRegistry* registry =
        metrics_ != nullptr ? metrics_ : &obs::DefaultRegistry();
    for (FaultRule& rule : rules_) {
      if (!SiteMatches(rule.site, site)) continue;
      ++rule.evaluated;
      if (rule.evaluated <= rule.skip_first) continue;
      if (rule.max_triggers >= 0 && rule.triggered >= rule.max_triggers) {
        continue;
      }
      if (rule.probability < 1.0 && !rng_.Bernoulli(rule.probability)) {
        continue;
      }
      ++rule.triggered;
      injected_total_.fetch_add(1, std::memory_order_relaxed);
      registry
          ->counter("faults_injected_total{site=\"" + std::string(site) +
                    "\"}")
          ->Increment();
      if (rule.kind == FaultKind::kLatency) {
        sleep_ms = std::max(sleep_ms, rule.latency_ms);
      } else if (injected.ok()) {
        std::string message = rule.message.empty()
                                  ? "injected fault"
                                  : rule.message;
        injected = Status(rule.code, message + " at " + site);
      }
    }
  }
  // Latency spikes sleep with the injector lock released so concurrent
  // fault points (and Arm/Disarm) are never serialized behind a sleeper.
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return injected;
}

}  // namespace uctr::fault
