#ifndef UCTR_FAULT_FAULT_H_
#define UCTR_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace uctr::fault {

/// \brief What an armed fault rule does when it fires.
enum class FaultKind {
  kError,    ///< The fault point returns an injected error Status.
  kLatency,  ///< The fault point sleeps, then returns OK (a latency spike).
};

/// \brief One armed injection rule, targeting a named site.
///
/// Sites are dotted strings compiled into the code via UCTR_FAULT_POINT
/// ("serve.index_warm", "gen.shard", ...). A rule matches its site exactly,
/// or by prefix when the rule's site ends in '*' ("serve.*").
struct FaultRule {
  std::string site;
  FaultKind kind = FaultKind::kError;
  /// For kError: the injected Status code. Transient codes (see
  /// IsTransient) exercise retry paths; permanent ones exercise
  /// fail/degrade paths.
  StatusCode code = StatusCode::kUnavailable;
  /// Human tag carried in the injected Status message (defaulted when
  /// empty).
  std::string message;
  /// For kLatency: how long the fault point sleeps when it fires.
  int latency_ms = 0;
  /// Fires with this probability per evaluation (seeded; deterministic).
  double probability = 1.0;
  /// Fire at most this many times; -1 = unlimited.
  int max_triggers = -1;
  /// Pass through the first N evaluations before becoming eligible.
  int skip_first = 0;

  // Runtime state (owned by the injector).
  int evaluated = 0;
  int triggered = 0;
};

/// \brief Deterministic, site-tagged fault-injection registry.
///
/// Code under test declares named fault points with UCTR_FAULT_POINT;
/// tests and the `--fault-spec` CLI flag arm rules against those sites.
/// When nothing is armed, a fault point is a single relaxed atomic load.
/// Evaluation order, probabilities, and trigger caps are driven by a
/// seeded Rng, so a (spec, seed) pair replays the same schedule.
///
/// Thread safety: Arm/Disarm/Check may be called from any thread. Latency
/// sleeps happen outside the injector lock.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// \brief The process-wide injector every UCTR_FAULT_POINT consults.
  static FaultInjector& Global();

  /// \brief Adds one rule and arms the injector.
  void Arm(FaultRule rule);

  /// \brief Parses a `--fault-spec` string and arms every rule in it.
  ///
  /// Grammar (';'-separated rules):
  ///   rule   := site '=' action (':' opt)*
  ///   action := 'error' [ '(' code ')' ]   // default code: unavailable
  ///           | 'latency' '(' millis ')'
  ///           | 'alloc'                    // allocation failure shorthand
  ///   opt    := 'p=' float                 // probability, default 1
  ///           | 'n=' int                   // max triggers, default unlimited
  ///           | 'after=' int               // skip the first N evaluations
  ///
  /// Codes are lower_snake StatusCode names: unavailable,
  /// deadline_exceeded, internal, execution_error, parse_error, not_found,
  /// invalid_argument, type_error, out_of_range, empty_result.
  ///
  /// Example:
  ///   serve.index_warm=error(unavailable):p=0.5;sched.dequeue=latency(5)
  Status ArmSpec(std::string_view spec);

  /// \brief Parses without arming (exposed for tests and validation).
  static Status ParseSpec(std::string_view spec,
                          std::vector<FaultRule>* rules);

  /// \brief Clears every rule and disarms the injector.
  void Disarm();

  /// \brief Reseeds the probability stream (default seed: 0xFA17).
  void Seed(uint64_t seed);

  /// \brief True when at least one rule is armed (the fast-path gate).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// \brief Evaluates the armed rules against `site`: sleeps for matching
  /// latency rules, then returns the first matching error rule's Status
  /// (or OK). Injections are counted per site in the metrics registry as
  /// `faults_injected_total{site="..."}`.
  Status Check(const char* site);

  /// \brief Total injections (errors + latency spikes) since last Disarm.
  uint64_t injected_total() const {
    return injected_total_.load(std::memory_order_relaxed);
  }

  /// \brief Overrides the metrics sink (null = obs::DefaultRegistry()).
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> injected_total_{0};
  mutable std::mutex mu_;
  std::vector<FaultRule> rules_;
  Rng rng_{0xFA17ULL};
  obs::MetricsRegistry* metrics_ = nullptr;  // null = DefaultRegistry()
};

}  // namespace uctr::fault

/// \brief Declares a named injection site. Evaluates to a Status: OK in
/// normal operation (and always OK when compiled out with
/// -DUCTR_DISABLE_FAULT_INJECTION), or the injected error while a matching
/// rule is armed. Disarmed cost: one relaxed atomic load.
#ifdef UCTR_DISABLE_FAULT_INJECTION
#define UCTR_FAULT_POINT(site) ::uctr::Status::OK()
#else
#define UCTR_FAULT_POINT(site)                                \
  (::uctr::fault::FaultInjector::Global().armed()             \
       ? ::uctr::fault::FaultInjector::Global().Check(site)   \
       : ::uctr::Status::OK())
#endif

#endif  // UCTR_FAULT_FAULT_H_
