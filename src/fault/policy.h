#ifndef UCTR_FAULT_POLICY_H_
#define UCTR_FAULT_POLICY_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace uctr::fault {

/// \brief Backoff shape for RetryPolicy: jittered exponential, capped both
/// per sleep and in total per Run call.
struct RetryOptions {
  /// Total tries, including the first (1 = no retries).
  int max_attempts = 3;
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  /// Per-sleep ceiling.
  double max_backoff_ms = 50.0;
  /// Each sleep is scaled by a uniform factor in [1-j, 1+j) (decorrelates
  /// retry storms across workers).
  double jitter_fraction = 0.5;
  /// Hard cap on cumulative sleep per Run call; once spent, the next
  /// failure is returned instead of retried. 0 = no budget (attempts
  /// alone bound the loop).
  double backoff_budget_ms = 250.0;
};

/// \brief Retries an operation on *transient* failure (IsTransient:
/// kUnavailable / kDeadlineExceeded) with jittered exponential backoff.
/// Permanent errors — parse errors, type errors, invariant violations —
/// return immediately: retrying can't fix a malformed table.
///
/// Thread-safe: one policy instance may serve every worker thread.
/// Metrics (when a registry is given): `retry_attempts_total`,
/// `retry_backoffs_total`, `retry_exhausted_total`.
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryOptions options = {}, uint64_t seed = 0x5EEDULL,
                       obs::MetricsRegistry* metrics = nullptr);

  /// \brief Runs `op` until it succeeds, fails permanently, or the retry
  /// budget is exhausted; returns the final Status. `op_name` tags log /
  /// trace context only.
  Status Run(const char* op_name, const std::function<Status()>& op);

  /// \brief Test hook: replaces the real sleep with a recorder. Called
  /// with the jittered backoff in milliseconds.
  void set_sleep_fn(std::function<void(double)> fn);

  const RetryOptions& options() const { return options_; }

 private:
  double NextBackoffMs(int completed_attempts);

  RetryOptions options_;
  std::mutex mu_;  // guards rng_
  Rng rng_;
  std::function<void(double)> sleep_fn_;
  obs::Counter* attempts_ = nullptr;
  obs::Counter* backoffs_ = nullptr;
  obs::Counter* exhausted_ = nullptr;
};

/// \brief Circuit-breaker knobs.
struct CircuitBreakerOptions {
  /// Consecutive failures (while closed) that open the circuit.
  int failure_threshold = 5;
  /// Cooldown before an open circuit lets a half-open probe through.
  double open_duration_ms = 250.0;
  /// Consecutive half-open probe successes required to close again.
  int half_open_successes = 1;
};

/// \brief Per-dependency circuit breaker: closed (normal) -> open (reject
/// everything for a cooldown after repeated failures) -> half-open (one
/// probe at a time; success closes, failure re-opens).
///
/// Use Allow()/RecordSuccess()/RecordFailure() around a dependency call,
/// or the Run() convenience wrapper. A rejected call costs one mutex
/// acquisition and no dependency work — that is the point: a dependency
/// that is down stops being hammered and gets its cooldown.
///
/// Metrics (per breaker `name`): `circuit_open_total{breaker="..."}` on
/// each close->open / half-open->open transition and
/// `circuit_rejected_total{breaker="..."}` per rejected call.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(std::string name, CircuitBreakerOptions options = {},
                          obs::MetricsRegistry* metrics = nullptr);

  /// \brief True when a call may proceed now. In half-open state at most
  /// one caller at a time is granted a probe; it must report back via
  /// RecordSuccess/RecordFailure.
  bool Allow();
  void RecordSuccess();
  void RecordFailure();

  /// \brief Allow -> op -> Record in one call. When the circuit is open,
  /// returns kUnavailable tagged "circuit '<name>' open" without invoking
  /// `op`.
  Status Run(const std::function<Status()>& op);

  State state() const;
  const std::string& name() const { return name_; }

  /// \brief Test hook: replaces the wall clock.
  void set_clock_fn(std::function<Clock::time_point()> fn);

 private:
  Clock::time_point Now() const;

  std::string name_;
  CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  Clock::time_point reopen_at_{};
  std::function<Clock::time_point()> clock_fn_;
  obs::Counter* opened_ = nullptr;
  obs::Counter* rejected_ = nullptr;
};

}  // namespace uctr::fault

#endif  // UCTR_FAULT_POLICY_H_
