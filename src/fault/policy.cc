#include "fault/policy.h"

#include <algorithm>
#include <thread>

namespace uctr::fault {

// ------------------------------------------------------------ RetryPolicy

RetryPolicy::RetryPolicy(RetryOptions options, uint64_t seed,
                         obs::MetricsRegistry* metrics)
    : options_(options), rng_(seed) {
  options_.max_attempts = std::max(options_.max_attempts, 1);
  if (metrics != nullptr) {
    attempts_ = metrics->counter("retry_attempts_total");
    backoffs_ = metrics->counter("retry_backoffs_total");
    exhausted_ = metrics->counter("retry_exhausted_total");
  }
}

void RetryPolicy::set_sleep_fn(std::function<void(double)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  sleep_fn_ = std::move(fn);
}

double RetryPolicy::NextBackoffMs(int completed_attempts) {
  double base = options_.initial_backoff_ms;
  for (int i = 1; i < completed_attempts; ++i) {
    base *= options_.backoff_multiplier;
  }
  base = std::min(base, options_.max_backoff_ms);
  double jitter = std::clamp(options_.jitter_fraction, 0.0, 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  return base * rng_.UniformDouble(1.0 - jitter, 1.0 + jitter);
}

Status RetryPolicy::Run(const char* op_name,
                        const std::function<Status()>& op) {
  (void)op_name;  // tag for callers/debuggers; policy behavior is uniform
  double slept_ms = 0.0;
  for (int attempt = 1;; ++attempt) {
    if (attempts_ != nullptr) attempts_->Increment();
    Status status = op();
    if (status.ok() || !IsTransient(status)) return status;
    if (attempt >= options_.max_attempts) {
      if (exhausted_ != nullptr) exhausted_->Increment();
      return status;
    }
    double backoff_ms = NextBackoffMs(attempt);
    if (options_.backoff_budget_ms > 0 &&
        slept_ms + backoff_ms > options_.backoff_budget_ms) {
      if (exhausted_ != nullptr) exhausted_->Increment();
      return status;
    }
    slept_ms += backoff_ms;
    if (backoffs_ != nullptr) backoffs_->Increment();
    std::function<void(double)> sleeper;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sleeper = sleep_fn_;
    }
    if (sleeper) {
      sleeper(backoff_ms);
    } else {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }
  }
}

// ---------------------------------------------------------- CircuitBreaker

CircuitBreaker::CircuitBreaker(std::string name,
                               CircuitBreakerOptions options,
                               obs::MetricsRegistry* metrics)
    : name_(std::move(name)), options_(options) {
  options_.failure_threshold = std::max(options_.failure_threshold, 1);
  options_.half_open_successes = std::max(options_.half_open_successes, 1);
  if (metrics != nullptr) {
    opened_ =
        metrics->counter("circuit_open_total{breaker=\"" + name_ + "\"}");
    rejected_ =
        metrics->counter("circuit_rejected_total{breaker=\"" + name_ + "\"}");
  }
}

void CircuitBreaker::set_clock_fn(std::function<Clock::time_point()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_fn_ = std::move(fn);
}

CircuitBreaker::Clock::time_point CircuitBreaker::Now() const {
  return clock_fn_ ? clock_fn_() : Clock::now();
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Now() < reopen_at_) {
        if (rejected_ != nullptr) rejected_->Increment();
        return false;
      }
      state_ = State::kHalfOpen;
      half_open_successes_ = 0;
      probe_in_flight_ = true;  // this caller is the probe
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) {
        if (rejected_ != nullptr) rejected_->Increment();
        return false;
      }
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen) {
    if (++half_open_successes_ >= options_.half_open_successes) {
      state_ = State::kClosed;
      consecutive_failures_ = 0;
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen ||
      (state_ == State::kClosed &&
       ++consecutive_failures_ >= options_.failure_threshold)) {
    state_ = State::kOpen;
    reopen_at_ = Now() + std::chrono::microseconds(static_cast<int64_t>(
                             options_.open_duration_ms * 1000.0));
    consecutive_failures_ = 0;
    if (opened_ != nullptr) opened_->Increment();
  }
}

Status CircuitBreaker::Run(const std::function<Status()>& op) {
  if (!Allow()) {
    return Status::Unavailable("circuit '" + name_ +
                               "' open (dependency cooling down)");
  }
  Status status = op();
  if (status.ok()) {
    RecordSuccess();
  } else {
    RecordFailure();
  }
  return status;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

}  // namespace uctr::fault
