#include "hybrid/table_to_text.h"

#include "common/string_util.h"
#include "nlgen/realize_util.h"
#include "table/index.h"

namespace uctr::hybrid {

bool SentenceCoversRow(const Table& table, size_t row,
                       const std::string& sentence) {
  // Cached display strings: ApplyToEvidence probes many candidate rows of
  // the same table, so cells render once instead of once per probe.
  const TableIndex& index = table.index();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const TableIndex::Column& cache = index.column(c);
    if (cache.is_null[row]) continue;
    if (!ContainsIgnoreCase(sentence, cache.display[row])) return false;
  }
  return true;
}

Result<std::string> TableToText::DescribeRow(const Table& table, size_t row,
                                             Rng* rng) const {
  if (row >= table.num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range");
  }
  if (table.num_columns() < 2) {
    return Status::InvalidArgument("table too narrow to describe a row");
  }
  nlgen::RealizeContext ctx(lexicon_, rng);

  const std::string subject = table.cell(row, 0).ToDisplayString();
  const std::string& subject_header = table.schema().column(0).name;
  if (subject.empty()) {
    return Status::EmptyResult("row has no name in the first column");
  }

  // "For the <header> <name>, the <col> was <val>, the <col> was <val> and
  // the <col> was <val>."
  std::string sentence =
      "for the " + subject_header + " " + subject + ", ";
  std::vector<std::string> clauses;
  for (size_t c = 1; c < table.num_columns(); ++c) {
    const Value& v = table.cell(row, c);
    if (v.is_null()) continue;
    clauses.push_back("the " + table.schema().column(c).name + " " +
                      ctx.Pick("is") + " " + v.ToDisplayString());
  }
  if (clauses.empty()) {
    return Status::EmptyResult("row has no populated cells to describe");
  }
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) {
      sentence += (i + 1 == clauses.size()) ? " and " : ", ";
    }
    sentence += clauses[i];
  }
  return nlgen::FinishSentence(std::move(sentence), '.');
}

Result<TableToTextResult> TableToText::Apply(const Table& table, size_t row,
                                             Rng* rng) const {
  UCTR_ASSIGN_OR_RETURN(std::string sentence, DescribeRow(table, row, rng));
  // The paper's filter: discard conversions that lose table information.
  if (!SentenceCoversRow(table, row, sentence)) {
    return Status::EmptyResult(
        "generated sentence lost information from the row");
  }
  TableToTextResult result;
  result.sentence = std::move(sentence);
  result.sub_table = table.WithoutRow(row);
  result.source_row = row;
  return result;
}

Result<TableToTextResult> TableToText::ApplyToEvidence(
    const Table& table, const std::vector<size_t>& candidate_rows,
    Rng* rng) const {
  if (candidate_rows.empty()) {
    return Status::InvalidArgument("no candidate rows to describe");
  }
  // Keep at least one row in the sub-table: never split a 1-row table.
  if (table.num_rows() < 2) {
    return Status::InvalidArgument("table too small to split");
  }
  std::vector<size_t> shuffled = candidate_rows;
  if (rng != nullptr) rng->Shuffle(&shuffled);
  Status last = Status::EmptyResult("no describable candidate row");
  for (size_t row : shuffled) {
    if (row >= table.num_rows()) continue;
    auto r = Apply(table, row, rng);
    if (r.ok()) return r;
    last = r.status();
  }
  return last;
}

}  // namespace uctr::hybrid
