#include "hybrid/text_to_table.h"

#include <algorithm>

#include "common/string_util.h"

namespace uctr::hybrid {

namespace {

/// Case-insensitive find; npos when absent.
size_t FindCi(const std::string& haystack, const std::string& needle) {
  std::string h = ToLower(haystack);
  std::string n = ToLower(needle);
  return h.find(n);
}

/// Extracts the value phrase that follows a column-header mention:
/// skips connectives ("was", "is", "of", ...) and reads up to the next
/// clause boundary (",", " and ", end of sentence).
std::string ValueAfter(const std::string& sentence, size_t pos) {
  std::string tail = sentence.substr(pos);
  // Skip leading connective words.
  static const char* kConnectives[] = {"is",    "was",   "were", "are",
                                       "of",    "at",    "about",
                                       "approximately", "a", "an", "the"};
  while (true) {
    tail = Trim(tail);
    bool skipped = false;
    for (const char* w : kConnectives) {
      std::string word(w);
      if (EqualsIgnoreCase(tail.substr(0, word.size()), word) &&
          (tail.size() == word.size() || tail[word.size()] == ' ')) {
        tail = tail.substr(word.size());
        skipped = true;
        break;
      }
    }
    if (!skipped) break;
  }
  // Read up to a clause boundary.
  size_t end = tail.size();
  for (std::string_view boundary : {", ", " and ", ". ", "; "}) {
    size_t p = tail.find(boundary);
    if (p != std::string::npos) end = std::min(end, p);
  }
  std::string value = Trim(tail.substr(0, end));
  // Drop a trailing period.
  while (!value.empty() && (value.back() == '.' || value.back() == ',')) {
    value.pop_back();
  }
  return Trim(value);
}

/// Heuristic subject recovery: handles the sentence shapes produced by the
/// corpus generators and the Table-To-Text operator.
std::string ExtractSubject(const std::string& sentence,
                           const std::string& first_header) {
  std::string s = Trim(sentence);
  // "For the <header> <name>, ..." (DescribeEnt shape).
  if (EqualsIgnoreCase(s.substr(0, std::min<size_t>(8, s.size())),
                       "for the ")) {
    std::string rest = s.substr(8);
    if (EqualsIgnoreCase(rest.substr(0, std::min(first_header.size(),
                                                 rest.size())),
                         first_header)) {
      rest = Trim(rest.substr(first_header.size()));
    }
    size_t comma = rest.find(',');
    if (comma != std::string::npos) return Trim(rest.substr(0, comma));
  }
  // "<name> was/is/had/recorded/reported ..." — subject up to the verb.
  std::string lowered = ToLower(s);
  size_t cut = std::string::npos;
  for (std::string_view verb :
       {" was ", " is ", " were ", " are ", " had ", " recorded ",
        " reported ", " stood "}) {
    size_t p = lowered.find(verb);
    if (p != std::string::npos) cut = std::min(cut, p);
  }
  if (cut == std::string::npos) return "";
  std::string subject = Trim(s.substr(0, cut));
  // Strip leading determiners and frame phrases ("In 2019, the ...").
  size_t comma = subject.rfind(", ");
  if (comma != std::string::npos) subject = Trim(subject.substr(comma + 2));
  for (std::string_view det : {"the ", "The ", "a ", "A "}) {
    if (subject.size() > det.size() &&
        subject.substr(0, det.size()) == det) {
      subject = Trim(subject.substr(det.size()));
      break;
    }
  }
  return subject;
}

}  // namespace

std::vector<size_t> TextToTable::FilterRelevantSentences(
    const Table& table, const std::vector<std::string>& sentences,
    size_t min_headers) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < sentences.size(); ++i) {
    size_t hits = 0;
    for (size_t c = 1; c < table.num_columns(); ++c) {
      if (FindCi(sentences[i], table.schema().column(c).name) !=
          std::string::npos) {
        ++hits;
      }
    }
    if (hits >= min_headers) out.push_back(i);
  }
  return out;
}

Result<ExtractedRecord> TextToTable::ExtractRecord(
    const Table& table, const std::vector<std::string>& sentences) const {
  if (table.num_columns() < 2) {
    return Status::InvalidArgument("table too narrow for extraction");
  }
  ExtractedRecord best;
  size_t best_hits = 0;

  for (size_t i = 0; i < sentences.size(); ++i) {
    const std::string& sentence = sentences[i];
    ExtractedRecord record;
    record.source_sentence = i;
    record.row_name =
        ExtractSubject(sentence, table.schema().column(0).name);
    if (record.row_name.empty()) continue;

    for (size_t c = 1; c < table.num_columns(); ++c) {
      const std::string& header = table.schema().column(c).name;
      size_t pos = FindCi(sentence, header);
      if (pos == std::string::npos) continue;
      std::string value = ValueAfter(sentence, pos + header.size());
      if (value.empty()) continue;
      // Numeric columns only accept numeric values; this rejects header
      // mentions that are not assignments.
      if (table.schema().column(c).type == ColumnType::kNumber &&
          !Value::FromText(value).is_number()) {
        continue;
      }
      record.fields[header] = value;
    }
    if (record.fields.size() > best_hits) {
      best_hits = record.fields.size();
      best = std::move(record);
    }
  }
  if (best_hits == 0) {
    return Status::NotFound("no sentence yields an extractable record");
  }
  return best;
}

Result<Table> TextToTable::Expand(const Table& table,
                                  const ExtractedRecord& record) const {
  if (record.fields.empty()) {
    return Status::InvalidArgument("record has no fields");
  }
  Table out = table;

  // Section III-B: integration needs a shared row name OR shared column
  // names. Schema-guided extraction always shares columns; externally
  // built records may instead share only the row name, in which case
  // their new columns are appended to the schema.
  bool row_shared = table.RowIndexByName(record.row_name).ok();
  for (const auto& [column, value] : record.fields) {
    if (out.schema().HasColumn(column)) continue;
    if (!row_shared) {
      return Status::NotFound("record column '" + column +
                              "' not in the table schema and no shared "
                              "row name to integrate through");
    }
    UCTR_RETURN_NOT_OK(out.AppendColumn(column));
  }
  if (auto existing = table.RowIndexByName(record.row_name); existing.ok()) {
    // Shared row name: merge, filling only missing cells.
    size_t r = existing.ValueOrDie();
    size_t filled = 0;
    for (const auto& [column, value] : record.fields) {
      size_t c = out.ColumnIndex(column).ValueOrDie();
      if (out.cell(r, c).is_null()) {
        *out.mutable_cell(r, c) = Value::FromText(value);
        ++filled;
      }
    }
    if (filled == 0) {
      return Status::EmptyResult(
          "record adds no new information to the table");
    }
  } else {
    // New row name: append a record row.
    Table::Row row(table.num_columns());
    row[0] = Value::String(record.row_name);
    for (const auto& [column, value] : record.fields) {
      size_t c = out.ColumnIndex(column).ValueOrDie();
      row[c] = Value::FromText(value);
    }
    UCTR_RETURN_NOT_OK(out.AppendRow(std::move(row)));
  }
  out.InferColumnTypes();
  return out;
}

Result<Table> TextToTable::Apply(
    const Table& table, const std::vector<std::string>& sentences) const {
  UCTR_ASSIGN_OR_RETURN(ExtractedRecord record,
                        ExtractRecord(table, sentences));
  return Expand(table, record);
}

}  // namespace uctr::hybrid
