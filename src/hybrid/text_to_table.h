#ifndef UCTR_HYBRID_TEXT_TO_TABLE_H_
#define UCTR_HYBRID_TEXT_TO_TABLE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace uctr::hybrid {

/// \brief One record extracted from text: a row name plus column -> value
/// assignments aligned with an existing table's schema.
struct ExtractedRecord {
  std::string row_name;
  std::map<std::string, std::string> fields;  // column header -> raw value
  size_t source_sentence = 0;
};

/// \brief The paper's Text-To-Table operator (Equation 6):
/// f(T, P) -> T_expand. Replaces the seq2seq model of Wu et al. [52] with a
/// schema-guided pattern extractor (see DESIGN.md, "Substitutions").
///
/// Following Section IV-A, the operator (1) filters candidate sentences —
/// a sentence is useful when it mentions the table's column headers — then
/// (2) extracts a one-record table and (3) integrates the record into the
/// original table when the schemas align (shared column names).
class TextToTable {
 public:
  TextToTable() = default;

  /// \brief Indices of sentences that mention at least `min_headers` of the
  /// table's column headers (the row-name/header filter of the paper).
  std::vector<size_t> FilterRelevantSentences(
      const Table& table, const std::vector<std::string>& sentences,
      size_t min_headers = 1) const;

  /// \brief Extracts the best-supported record from the sentences:
  /// the sentence matching the most column headers wins; its subject
  /// becomes the row name and each mentioned header is paired with the
  /// value following it.
  Result<ExtractedRecord> ExtractRecord(
      const Table& table, const std::vector<std::string>& sentences) const;

  /// \brief Appends `record` to `table` as a new row (nulls where the
  /// record has no value). Fails when the record shares no column with the
  /// table or duplicates an existing row name.
  Result<Table> Expand(const Table& table,
                       const ExtractedRecord& record) const;

  /// \brief ExtractRecord + Expand.
  Result<Table> Apply(const Table& table,
                      const std::vector<std::string>& sentences) const;
};

}  // namespace uctr::hybrid

#endif  // UCTR_HYBRID_TEXT_TO_TABLE_H_
