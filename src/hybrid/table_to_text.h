#ifndef UCTR_HYBRID_TABLE_TO_TEXT_H_
#define UCTR_HYBRID_TABLE_TO_TEXT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "nlgen/lexicon.h"
#include "table/table.h"

namespace uctr::hybrid {

/// \brief Output of the Table-To-Text operator (Equation 5):
/// f(T) -> (T_sub, S). The selected row is removed from the table and its
/// content re-expressed as one sentence.
struct TableToTextResult {
  Table sub_table;
  std::string sentence;
  size_t source_row = 0;
};

/// \brief The paper's Table-To-Text operator, following MQA-QG's
/// DescribeEnt: renders one table row as a natural-language sentence and
/// returns the remaining rows as a sub-table.
///
/// Includes the paper's filtering step: if any non-null cell of the row is
/// missing from the generated sentence (information loss), the conversion
/// is rejected with kEmptyResult so the pipeline can discard the sample.
class TableToText {
 public:
  explicit TableToText(
      const nlgen::Lexicon* lexicon = &nlgen::Lexicon::Default())
      : lexicon_(lexicon) {}

  /// \brief Converts row `row` of `table`. `rng` may be null for canonical
  /// phrasing.
  Result<TableToTextResult> Apply(const Table& table, size_t row,
                                  Rng* rng) const;

  /// \brief Picks one row out of `candidate_rows` (the program's evidence
  /// rows — the paper selects a highlighted cell) and converts it.
  Result<TableToTextResult> ApplyToEvidence(
      const Table& table, const std::vector<size_t>& candidate_rows,
      Rng* rng) const;

  /// \brief The sentence for a row, without splitting the table.
  Result<std::string> DescribeRow(const Table& table, size_t row,
                                  Rng* rng) const;

 private:
  const nlgen::Lexicon* lexicon_;
};

/// \brief The information-preservation filter on its own: true when every
/// non-null cell of `table` row `row` appears verbatim in `sentence`
/// (case-insensitive).
bool SentenceCoversRow(const Table& table, size_t row,
                       const std::string& sentence);

}  // namespace uctr::hybrid

#endif  // UCTR_HYBRID_TABLE_TO_TEXT_H_
