#include "eval/metrics.h"

#include "common/numeric.h"
#include "common/string_util.h"
#include "table/value.h"

namespace uctr::eval {

double LabelAccuracy(const std::vector<Label>& predictions,
                     const std::vector<Label>& gold) {
  if (gold.empty() || predictions.size() != gold.size()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < gold.size(); ++i) {
    if (predictions[i] == gold[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(gold.size());
}

bool ExactMatch(const std::string& predicted, const std::string& gold) {
  if (predicted.empty() || gold.empty()) {
    return predicted.empty() && gold.empty();
  }
  Value a = Value::FromText(predicted);
  Value b = Value::FromText(gold);
  if (a.Equals(b)) return true;
  auto na = a.ToNumber();
  auto nb = b.ToNumber();
  if (na.ok() && nb.ok()) {
    double x = na.ValueOrDie();
    double y = nb.ValueOrDie();
    return NearlyEqual(x * 100.0, y, 1e-6, 1e-6) ||
           NearlyEqual(x, y * 100.0, 1e-6, 1e-6);
  }
  return EqualsIgnoreCase(Trim(predicted), Trim(gold));
}

double NumeracyF1(const std::string& predicted, const std::string& gold) {
  Value a = Value::FromText(predicted);
  Value b = Value::FromText(gold);
  // Any numeric side makes the comparison all-or-nothing.
  if (a.is_number() || b.is_number()) {
    return ExactMatch(predicted, gold) ? 1.0 : 0.0;
  }
  if (ExactMatch(predicted, gold)) return 1.0;
  return TokenF1(predicted, gold);
}

EmF1 AnswerEmF1(const std::vector<std::string>& predictions,
                const std::vector<std::string>& gold) {
  EmF1 out;
  if (gold.empty() || predictions.size() != gold.size()) return out;
  for (size_t i = 0; i < gold.size(); ++i) {
    out.em += ExactMatch(predictions[i], gold[i]) ? 1.0 : 0.0;
    out.f1 += NumeracyF1(predictions[i], gold[i]);
  }
  out.em /= static_cast<double>(gold.size());
  out.f1 /= static_cast<double>(gold.size());
  return out;
}

double DenotationAccuracy(const std::vector<std::string>& predictions,
                          const std::vector<std::string>& gold) {
  if (gold.empty() || predictions.size() != gold.size()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < gold.size(); ++i) {
    if (ExactMatch(predictions[i], gold[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(gold.size());
}

double ThreeWayMicroF1(const std::vector<Label>& predictions,
                       const std::vector<Label>& gold) {
  // Micro-F1 over single-label predictions: TP summed over classes equals
  // the number of correct predictions, and FP == FN, so micro-P == micro-R
  // == accuracy.
  return LabelAccuracy(predictions, gold);
}

double FeverousScore(const std::vector<bool>& label_correct,
                     double retriever_recall, Rng* rng) {
  if (label_correct.empty()) return 0.0;
  size_t right = 0;
  for (bool correct : label_correct) {
    if (correct) ++right;
  }
  double accuracy = static_cast<double>(right) /
                    static_cast<double>(label_correct.size());
  if (rng == nullptr) return retriever_recall * accuracy;
  size_t scored = 0;
  for (bool correct : label_correct) {
    bool evidence_found = rng->Bernoulli(retriever_recall);
    if (correct && evidence_found) ++scored;
  }
  return static_cast<double>(scored) /
         static_cast<double>(label_correct.size());
}

}  // namespace uctr::eval
