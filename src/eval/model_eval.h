#ifndef UCTR_EVAL_MODEL_EVAL_H_
#define UCTR_EVAL_MODEL_EVAL_H_

#include "gen/sample.h"
#include "model/qa_model.h"
#include "model/verifier.h"

namespace uctr::eval {

/// \brief Denotation accuracy of a QA model over the QA samples of
/// `data` (WiKiSQL protocol). Library-side twin of the bench harness
/// evaluator so non-bench subsystems (self-training) can score rounds.
double QaDenotationAccuracy(const model::QaModel& qa_model,
                            const Dataset& data);

/// \brief Label accuracy of a verifier over the verification samples of
/// `data` (FEVEROUS protocol, reasoning stage).
double VerifierLabelAccuracy(const model::VerifierModel& verifier,
                             const Dataset& data);

}  // namespace uctr::eval

#endif  // UCTR_EVAL_MODEL_EVAL_H_
