#include "eval/model_eval.h"

#include "eval/metrics.h"

namespace uctr::eval {

double QaDenotationAccuracy(const model::QaModel& qa_model,
                            const Dataset& data) {
  std::vector<std::string> pred, gold;
  for (const Sample& s : data.samples) {
    if (s.task != TaskType::kQuestionAnswering) continue;
    pred.push_back(qa_model.Predict(s));
    gold.push_back(s.answer);
  }
  return DenotationAccuracy(pred, gold);
}

double VerifierLabelAccuracy(const model::VerifierModel& verifier,
                             const Dataset& data) {
  return verifier.Accuracy(data);
}

}  // namespace uctr::eval
