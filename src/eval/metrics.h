#ifndef UCTR_EVAL_METRICS_H_
#define UCTR_EVAL_METRICS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/sample.h"

namespace uctr::eval {

/// \brief Exact-match / F1 pair (TAT-QA protocol).
struct EmF1 {
  double em = 0.0;
  double f1 = 0.0;
};

/// \brief Label accuracy (FEVEROUS protocol, reasoning stage).
double LabelAccuracy(const std::vector<Label>& predictions,
                     const std::vector<Label>& gold);

/// \brief Numeric-tolerant exact match of one answer: numbers compare
/// numerically (with the TAT-QA percent-scale 100x allowance), strings
/// case-insensitively.
bool ExactMatch(const std::string& predicted, const std::string& gold);

/// \brief Numeracy-focused F1 of one answer [30]: numeric answers score
/// all-or-nothing (a wrong number gets no partial credit); textual answers
/// score bag-of-tokens F1.
double NumeracyF1(const std::string& predicted, const std::string& gold);

/// \brief Corpus-level EM / numeracy-F1 averages (TAT-QA protocol).
EmF1 AnswerEmF1(const std::vector<std::string>& predictions,
                const std::vector<std::string>& gold);

/// \brief Denotation accuracy (WiKiSQL protocol): ExactMatch rate.
double DenotationAccuracy(const std::vector<std::string>& predictions,
                          const std::vector<std::string>& gold);

/// \brief Micro-averaged F1 over single-label 3-way predictions
/// (SEM-TAB-FACTS protocol). For single-label classification this equals
/// accuracy; kept under its paper name for the harness output.
double ThreeWayMicroF1(const std::vector<Label>& predictions,
                       const std::vector<Label>& gold);

/// \brief FEVEROUS score: a prediction counts only when the retrieved
/// evidence set is correct AND the label is correct. The retrieval stage
/// (out of the paper's scope too — they reuse the baseline retriever) is
/// simulated as a Bernoulli(recall) success per sample; passing a null
/// `rng` returns the expectation (recall x label accuracy) instead of a
/// sampled score.
double FeverousScore(const std::vector<bool>& label_correct,
                     double retriever_recall, Rng* rng);

}  // namespace uctr::eval

#endif  // UCTR_EVAL_METRICS_H_
