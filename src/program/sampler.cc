#include "program/sampler.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/numeric.h"
#include "common/string_util.h"
#include "logic/ast.h"
#include "logic/executor.h"
#include "logic/parser.h"
#include "table/index.h"

namespace uctr {

namespace {

constexpr char kDeriveSentinel[] = "__uctr_derive__";

/// Strips characters that would break re-parsing when a cell value is
/// substituted into a program as raw text.
std::string SanitizeForProgram(ProgramType type, const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (type == ProgramType::kLogicalForm &&
        (c == '{' || c == '}' || c == ';')) {
      continue;
    }
    if (type == ProgramType::kArithmetic && (c == '(' || c == ')' || c == ',')) {
      continue;
    }
    if (type == ProgramType::kSql && (c == '[' || c == ']')) {
      continue;  // would close/open a bracketed identifier early
    }
    if (type == ProgramType::kSql && c == '\'') {
      out += "''";
      continue;
    }
    out.push_back(c);
  }
  return Trim(out);
}

/// Finds the parent of the literal node named `sentinel`; returns the
/// parent and the argument index, or nullptr when absent.
logic::Node* FindDeriveParent(logic::Node* node, size_t* arg_index) {
  for (size_t i = 0; i < node->args.size(); ++i) {
    logic::Node* child = node->args[i].get();
    if (child->is_literal && child->name == kDeriveSentinel) {
      *arg_index = i;
      return node;
    }
    if (logic::Node* found = FindDeriveParent(child, arg_index)) return found;
  }
  return nullptr;
}

}  // namespace

Result<std::map<std::string, std::string>> ProgramSampler::BindPlaceholders(
    const ProgramTemplate& tmpl, const Table& table) {
  std::map<std::string, std::string> bindings;
  std::map<std::string, size_t> column_of;  // placeholder id -> column index
  std::set<size_t> used_columns;

  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot sample from an empty table");
  }

  // Pass 1: columns (values depend on them).
  for (const Placeholder& p : tmpl.placeholders) {
    if (p.kind != Placeholder::Kind::kColumn) continue;
    std::vector<size_t> candidates;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (p.has_type_constraint && table.schema().column(c).type != p.column_type) {
        continue;
      }
      if (used_columns.count(c)) continue;
      candidates.push_back(c);
    }
    if (candidates.empty()) {
      // Permit reuse when distinct choices ran out (narrow tables).
      for (size_t c = 0; c < table.num_columns(); ++c) {
        if (!p.has_type_constraint ||
            table.schema().column(c).type == p.column_type) {
          candidates.push_back(c);
        }
      }
    }
    if (candidates.empty()) {
      return Status::NotFound("no column matches placeholder '" + p.id + "'");
    }
    size_t chosen = candidates[rng_->Index(candidates.size())];
    used_columns.insert(chosen);
    column_of[p.id] = chosen;
    bindings[p.id] =
        SanitizeForProgram(tmpl.type, table.schema().column(chosen).name);
  }

  // Pass 2: rows, values, ordinals.
  for (const Placeholder& p : tmpl.placeholders) {
    switch (p.kind) {
      case Placeholder::Kind::kColumn:
        break;
      case Placeholder::Kind::kRow: {
        // Cached display strings: only the one chosen name is copied,
        // instead of materializing every row name per sample.
        const TableIndex::Column& names = table.index().column(0);
        std::vector<size_t> candidates;
        for (size_t r = 0; r < table.num_rows(); ++r) {
          if (!names.display[r].empty()) candidates.push_back(r);
        }
        if (candidates.empty()) {
          return Status::NotFound("table has no usable row names");
        }
        bindings[p.id] = SanitizeForProgram(
            tmpl.type,
            names.display[candidates[rng_->Index(candidates.size())]]);
        break;
      }
      case Placeholder::Kind::kValue: {
        auto it = column_of.find(p.column_id);
        if (it == column_of.end()) {
          return Status::Internal("unbound column id '" + p.column_id + "'");
        }
        const TableIndex::Column& cache = table.index().column(it->second);
        std::vector<size_t> candidates;
        for (size_t r = 0; r < table.num_rows(); ++r) {
          if (!cache.is_null[r]) candidates.push_back(r);
        }
        if (candidates.empty()) {
          return Status::NotFound("column has no non-null values for '" +
                                  p.id + "'");
        }
        bindings[p.id] = SanitizeForProgram(
            tmpl.type,
            cache.display[candidates[rng_->Index(candidates.size())]]);
        break;
      }
      case Placeholder::Kind::kOrdinal: {
        size_t hi = std::min<size_t>(5, std::max<size_t>(1, table.num_rows()));
        bindings[p.id] = std::to_string(rng_->UniformInt(1, hi));
        break;
      }
      case Placeholder::Kind::kDerive:
        bindings[p.id] = kDeriveSentinel;
        break;
    }
  }
  return bindings;
}

Result<SampledProgram> ProgramSampler::Sample(const ProgramTemplate& tmpl,
                                              const Table& table) {
  if (tmpl.HasDerive()) {
    return Status::InvalidArgument(
        "template has {derive}; use SampleClaim for verification templates");
  }
  UCTR_ASSIGN_OR_RETURN(auto bindings, BindPlaceholders(tmpl, table));
  SampledProgram out;
  out.program.type = tmpl.type;
  UCTR_ASSIGN_OR_RETURN(out.program.text, tmpl.Fill(bindings));
  UCTR_ASSIGN_OR_RETURN(out.result, out.program.Execute(table));
  out.bindings = std::move(bindings);
  out.reasoning_type = tmpl.reasoning_type;
  return out;
}

Result<SampledProgram> ProgramSampler::SampleClaim(const ProgramTemplate& tmpl,
                                                   const Table& table,
                                                   bool target_true) {
  if (tmpl.type != ProgramType::kLogicalForm) {
    return Status::InvalidArgument(
        "claim sampling only applies to logical forms");
  }
  UCTR_ASSIGN_OR_RETURN(auto bindings, BindPlaceholders(tmpl, table));
  UCTR_ASSIGN_OR_RETURN(std::string filled, tmpl.Fill(bindings));

  if (!tmpl.HasDerive()) {
    // No derived slot: the truth value is whatever the form evaluates to.
    SampledProgram out;
    out.program.type = tmpl.type;
    out.program.text = std::move(filled);
    UCTR_ASSIGN_OR_RETURN(out.result, out.program.Execute(table));
    out.bindings = std::move(bindings);
    out.reasoning_type = tmpl.reasoning_type;
    return out;
  }

  UCTR_ASSIGN_OR_RETURN(auto node, logic::Parse(filled));
  size_t arg_index = 0;
  logic::Node* parent = FindDeriveParent(node.get(), &arg_index);
  if (parent == nullptr) {
    return Status::Internal("derive sentinel vanished from parsed form");
  }
  if (parent->args.size() != 2) {
    return Status::InvalidArgument(
        "{derive} must sit in a binary comparison operator");
  }
  // Execute the sibling sub-expression to learn the true value.
  const logic::Node& sibling = *parent->args[1 - arg_index];
  UCTR_ASSIGN_OR_RETURN(ExecResult inner, logic::Execute(sibling, table));
  Value truth = inner.scalar();
  if (truth.is_null()) {
    return Status::EmptyResult("derived value is null");
  }

  std::string derived_text = truth.ToDisplayString();
  if (!target_true) {
    if (auto num = truth.ToNumber(); num.ok()) {
      double v = num.ValueOrDie();
      double magnitude = std::max(1.0, std::abs(v) *
                                           rng_->UniformDouble(0.1, 0.5));
      double corrupted = v + (rng_->Bernoulli(0.5) ? magnitude : -magnitude);
      // Keep counts and ordinals integral so corrupted claims stay fluent.
      if (std::abs(v - std::round(v)) < 1e-9) {
        corrupted = std::round(corrupted);
        if (NearlyEqual(corrupted, v)) corrupted = v + 1;
      }
      derived_text = FormatNumber(corrupted);
    } else {
      // Distractor string from the derive column.
      std::string distractor;
      if (!tmpl.derive_column_id.empty()) {
        auto col_binding = bindings.find(tmpl.derive_column_id);
        if (col_binding != bindings.end()) {
          auto c = table.ColumnIndex(col_binding->second);
          if (c.ok()) {
            const TableIndex::Column& cache =
                table.index().column(c.ValueOrDie());
            TableIndex::LiteralKey truth_key(truth);
            std::vector<size_t> options;
            for (size_t r = 0; r < table.num_rows(); ++r) {
              if (!cache.is_null[r] &&
                  !TableIndex::CellEquals(cache, r, truth_key)) {
                options.push_back(r);
              }
            }
            if (!options.empty()) {
              distractor = cache.display[options[rng_->Index(options.size())]];
            }
          }
        }
      }
      if (distractor.empty()) {
        return Status::NotFound(
            "no distractor available to build a refuted claim");
      }
      derived_text = std::move(distractor);
    }
  }

  parent->args[arg_index] = logic::Node::Literal(
      SanitizeForProgram(ProgramType::kLogicalForm, derived_text));
  bindings["derive"] = derived_text;

  SampledProgram out;
  out.program.type = ProgramType::kLogicalForm;
  out.program.text = node->ToString();
  UCTR_ASSIGN_OR_RETURN(out.result, out.program.Execute(table));
  out.bindings = std::move(bindings);
  out.reasoning_type = tmpl.reasoning_type;
  return out;
}

}  // namespace uctr
