#ifndef UCTR_PROGRAM_LIBRARY_H_
#define UCTR_PROGRAM_LIBRARY_H_

#include <string>
#include <vector>

#include "program/template.h"

namespace uctr {

/// \brief SQUALL-style SQL query templates (question answering): span
/// lookup, superlatives, counting, aggregation, conjunction, sum/diff.
std::vector<ProgramTemplate> BuiltinSqlTemplates();

/// \brief LOGIC2TEXT logical-form templates (fact verification): lookup,
/// count, superlative, ordinal, aggregation, comparative, majority, unique,
/// and conjunction reasoning types.
std::vector<ProgramTemplate> BuiltinLogicTemplates();

/// \brief FinQA arithmetic-expression templates (numerical QA): change,
/// percentage change, ratio, sum/average of items, table aggregations,
/// numeric comparison.
std::vector<ProgramTemplate> BuiltinArithTemplates();

/// \brief The full template collection with per-type and per-reasoning-type
/// access — the repo's stand-in for the paper's template collection step
/// over SQUALL / LOGIC2TEXT / FinQA.
class TemplateLibrary {
 public:
  /// \brief Library preloaded with all built-in templates (deduplicated).
  static TemplateLibrary Builtin();

  /// \brief Empty library to be populated via Add (e.g. by the templatizer).
  TemplateLibrary() = default;

  void Add(ProgramTemplate tmpl);

  const std::vector<ProgramTemplate>& templates() const { return templates_; }

  /// \brief Templates of one program family.
  std::vector<ProgramTemplate> OfType(ProgramType type) const;

  /// \brief Templates whose reasoning_type matches.
  std::vector<ProgramTemplate> OfReasoningType(const std::string& tag) const;

  size_t size() const { return templates_.size(); }

 private:
  std::vector<ProgramTemplate> templates_;
};

}  // namespace uctr

#endif  // UCTR_PROGRAM_LIBRARY_H_
