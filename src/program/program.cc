#include "program/program.h"

#include "arith/executor.h"
#include "arith/parser.h"
#include "logic/executor.h"
#include "logic/parser.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace uctr {

const char* ProgramTypeToString(ProgramType type) {
  switch (type) {
    case ProgramType::kSql:
      return "sql";
    case ProgramType::kLogicalForm:
      return "logical_form";
    case ProgramType::kArithmetic:
      return "arithmetic";
  }
  return "unknown";
}

Result<ExecResult> Program::Execute(const Table& table) const {
  switch (type) {
    case ProgramType::kSql:
      return sql::ExecuteQuery(text, table);
    case ProgramType::kLogicalForm:
      return logic::ExecuteLogicalForm(text, table);
    case ProgramType::kArithmetic:
      return arith::ExecuteExpression(text, table);
  }
  return Status::Internal("unknown program type");
}

Status Program::Validate() const {
  switch (type) {
    case ProgramType::kSql:
      return sql::Parse(text).status();
    case ProgramType::kLogicalForm:
      return logic::Parse(text).status();
    case ProgramType::kArithmetic:
      return arith::Parse(text).status();
  }
  return Status::Internal("unknown program type");
}

}  // namespace uctr
