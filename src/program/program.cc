#include "program/program.h"

#include <memory>
#include <utility>

#include "arith/executor.h"
#include "arith/parser.h"
#include "ir/ir.h"
#include "ir/plan_cache.h"
#include "logic/executor.h"
#include "logic/parser.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "table/index.h"

namespace uctr {

namespace {

ir::Family FamilyOf(ProgramType type) {
  switch (type) {
    case ProgramType::kSql:
      return ir::Family::kSql;
    case ProgramType::kLogicalForm:
      return ir::Family::kLogic;
    case ProgramType::kArithmetic:
      return ir::Family::kArith;
  }
  return ir::Family::kSql;
}

Result<ExecResult> ExecuteWalk(const Program& program, const Table& table,
                               bool use_index) {
  switch (program.type) {
    case ProgramType::kSql: {
      sql::ExecOptions opts;
      opts.use_index = use_index;
      return sql::ExecuteQuery(program.text, table, opts);
    }
    case ProgramType::kLogicalForm: {
      logic::ExecOptions opts;
      opts.use_index = use_index;
      return logic::ExecuteLogicalForm(program.text, table, opts);
    }
    case ProgramType::kArithmetic:
      return arith::ExecuteExpression(program.text, table);
  }
  return Status::Internal("unknown program type");
}

}  // namespace

const char* ProgramTypeToString(ProgramType type) {
  switch (type) {
    case ProgramType::kSql:
      return "sql";
    case ProgramType::kLogicalForm:
      return "logical_form";
    case ProgramType::kArithmetic:
      return "arithmetic";
  }
  return "unknown";
}

Result<ExecResult> Program::Execute(const Table& table) const {
  return Execute(table, ExecOptions());
}

Result<ExecResult> Program::Execute(const Table& table,
                                    const ExecOptions& opts) const {
  if (!opts.use_vm) return ExecuteWalk(*this, table, opts.use_index);

  ir::Family family = FamilyOf(type);
  uint64_t program_fp = ir::ProgramFingerprint(family, text);
  uint64_t schema_fp = table.index_enabled()
                           ? table.index().schema_fingerprint()
                           : ir::SchemaFingerprint(table.schema());
  ir::PlanCache& cache =
      opts.plan_cache != nullptr ? *opts.plan_cache : ir::PlanCache::Default();

  std::shared_ptr<const ir::Plan> plan;
  if (auto cached = cache.Get(program_fp, schema_fp); cached.has_value()) {
    plan = std::move(*cached);
  } else {
    cache.NoteCompile();
    Result<ir::Plan> compiled = ir::Compile(family, text, table.schema());
    if (compiled.ok()) {
      plan = std::make_shared<const ir::Plan>(
          std::move(compiled).ValueOrDie());
    }
    // A reject caches as nullptr: "known-unsupported, take the walker" —
    // hot unsupported templates skip re-lowering on every request.
    cache.Put(program_fp, schema_fp, plan);
  }

  if (plan == nullptr) return ExecuteWalk(*this, table, opts.use_index);
  ir::VmOptions vm_opts;
  vm_opts.use_index = opts.use_index;
  return ir::ExecutePlan(*plan, table, vm_opts);
}

Status Program::Validate() const {
  switch (type) {
    case ProgramType::kSql:
      return sql::Parse(text).status();
    case ProgramType::kLogicalForm:
      return logic::Parse(text).status();
    case ProgramType::kArithmetic:
      return arith::Parse(text).status();
  }
  return Status::Internal("unknown program type");
}

}  // namespace uctr
