#ifndef UCTR_PROGRAM_TEMPLATIZER_H_
#define UCTR_PROGRAM_TEMPLATIZER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "program/template.h"
#include "table/table.h"

namespace uctr {

/// \brief Abstracts a concrete program into a reusable template, replacing
/// column names with typed column placeholders ({c1}, {c2:num}), cell
/// values with value placeholders ({v1@c1}), row names with {r1}, and — for
/// logical forms — the compared-against literal with {derive}.
///
/// This is the paper's template *collection* step (Section IV-B): given
/// gold programs over their source tables (SQUALL / LOGIC2TEXT / FinQA),
/// produce placeholdered templates that migrate to new tables. `table` is
/// the program's original context, used to type columns and recognize
/// which literals are cell values.
Result<ProgramTemplate> AbstractSql(std::string_view query,
                                    const Table& table);
Result<ProgramTemplate> AbstractLogicalForm(std::string_view form,
                                            const Table& table);
Result<ProgramTemplate> AbstractArithmetic(std::string_view expr,
                                           const Table& table);

/// \brief Abstracts a batch of (program, context) pairs and drops
/// duplicate patterns — the paper's redundancy filtration.
std::vector<ProgramTemplate> CollectTemplates(
    const std::vector<std::pair<Program, const Table*>>& programs);

}  // namespace uctr

#endif  // UCTR_PROGRAM_TEMPLATIZER_H_
