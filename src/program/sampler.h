#ifndef UCTR_PROGRAM_SAMPLER_H_
#define UCTR_PROGRAM_SAMPLER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "program/program.h"
#include "program/template.h"
#include "table/table.h"

namespace uctr {

/// \brief A template successfully instantiated and executed on a table.
struct SampledProgram {
  Program program;
  ExecResult result;  ///< Execution output (the answer / truth value).
  std::map<std::string, std::string> bindings;
  std::string reasoning_type;
};

/// \brief Implements the paper's random sampling strategy (Section IV-C):
/// fills column placeholders from the table schema (respecting data types),
/// value placeholders from the bound column's cells, then executes the
/// program and discards it when execution fails or is empty.
class ProgramSampler {
 public:
  /// \param rng not owned; must outlive the sampler.
  explicit ProgramSampler(Rng* rng) : rng_(rng) {}

  /// \brief Random instantiation of `tmpl` on `table` (templates without
  /// {derive}). For question-answering programs the answer is
  /// `result.values`; for bool-producing forms it is the truth value.
  Result<SampledProgram> Sample(const ProgramTemplate& tmpl,
                                const Table& table);

  /// \brief Instantiation of a fact-verification template carrying a
  /// {derive} slot. Implements the paper's strategy of executing the inner
  /// sub-template first and deriving the final argument from its result:
  /// with `target_true` the derived value is inserted verbatim (a supported
  /// claim); otherwise it is corrupted (numeric perturbation, or a
  /// distractor value from `derive_column_id`) to yield a refuted claim.
  /// The returned result holds the *actual* truth value after corruption,
  /// so labels are always execution-consistent.
  Result<SampledProgram> SampleClaim(const ProgramTemplate& tmpl,
                                     const Table& table, bool target_true);

 private:
  Result<std::map<std::string, std::string>> BindPlaceholders(
      const ProgramTemplate& tmpl, const Table& table);

  Rng* rng_;
};

}  // namespace uctr

#endif  // UCTR_PROGRAM_SAMPLER_H_
