#ifndef UCTR_PROGRAM_TEMPLATE_H_
#define UCTR_PROGRAM_TEMPLATE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "program/program.h"
#include "table/table.h"

namespace uctr {

/// \brief One placeholder slot inside a program template pattern.
///
/// Pattern syntax (Section IV-B/IV-C of the paper, generalized):
///   {c1}        column placeholder, any type
///   {c1:num}    column placeholder restricted to numeric columns
///   {c1:text}   column placeholder restricted to text columns
///   {v1@c1}     value placeholder sampled from the column bound to c1
///   {r1}        row placeholder: a row name (first-column value), used by
///               arithmetic cell references `col of row`
///   {ord1}      small ordinal (1..min(#rows,5)), for nth_max etc.
///   {derive}    the final argument of a verification form, computed by
///               executing the rest of the program (true-claim derivation)
struct Placeholder {
  enum class Kind {
    kColumn,
    kValue,
    kRow,
    kOrdinal,
    kDerive,
  };

  Kind kind = Kind::kColumn;
  std::string id;             // "c1", "v1", "ord1"
  ColumnType column_type = ColumnType::kText;
  bool has_type_constraint = false;
  std::string column_id;      // for kValue: the column placeholder it draws from

  /// \brief The `{...}` source spelling.
  std::string spelling;
};

/// \brief A program template: a pattern with typed placeholders, the unit
/// the paper collects from SQUALL / LOGIC2TEXT / FinQA and re-instantiates
/// on new tables by random sampling.
struct ProgramTemplate {
  ProgramType type = ProgramType::kSql;
  std::string pattern;
  std::vector<Placeholder> placeholders;
  /// Reasoning-type tag (count, superlative, comparative, aggregation,
  /// majority, unique, ordinal, arithmetic, span, ...), used by the
  /// ablation harness and for diversity accounting.
  std::string reasoning_type;
  /// For kDerive templates: the column placeholder id the derived value is
  /// drawn from; the claim corrupter samples distractors from that column.
  std::string derive_column_id;

  /// \brief Parses `pattern`, populating `placeholders`. Fails on malformed
  /// `{...}` slots or a {v@c} referencing an unknown column id.
  static Result<ProgramTemplate> Make(ProgramType type, std::string pattern,
                                      std::string reasoning_type = "",
                                      std::string derive_column_id = "");

  /// \brief Substitutes `bindings` (id -> surface text) into the pattern.
  /// Every placeholder must be bound.
  Result<std::string> Fill(
      const std::map<std::string, std::string>& bindings) const;

  /// \brief Distinct column placeholder ids, in first-appearance order.
  std::vector<std::string> ColumnIds() const;

  bool HasDerive() const;
};

/// \brief Drops templates whose pattern duplicates an earlier one
/// (the paper's redundancy filtration of collected templates).
std::vector<ProgramTemplate> DeduplicateTemplates(
    std::vector<ProgramTemplate> templates);

}  // namespace uctr

#endif  // UCTR_PROGRAM_TEMPLATE_H_
