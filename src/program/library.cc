#include "program/library.h"

#include <cstdio>
#include <cstdlib>

namespace uctr {

namespace {

ProgramTemplate MustMake(ProgramType type, const char* pattern,
                         const char* reasoning, const char* derive_col = "") {
  auto r = ProgramTemplate::Make(type, pattern, reasoning, derive_col);
  if (!r.ok()) {
    std::fprintf(stderr, "builtin template invalid: %s (%s)\n", pattern,
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).ValueOrDie();
}

}  // namespace

std::vector<ProgramTemplate> BuiltinSqlTemplates() {
  const ProgramType t = ProgramType::kSql;
  std::vector<ProgramTemplate> out;
  // Span lookup (equivalence).
  out.push_back(MustMake(
      t, "SELECT [{c1}] FROM w WHERE [{c2}] = '{v1@c2}'", "span"));
  // Conjunction of two conditions.
  out.push_back(MustMake(
      t, "SELECT [{c1}] FROM w WHERE [{c2}] = '{v1@c2}' AND [{c3}] = '{v2@c3}'",
      "conjunction"));
  // Superlatives via ORDER BY ... LIMIT 1 (the SQUALL idiom).
  out.push_back(MustMake(
      t, "SELECT [{c1}] FROM w ORDER BY [{c2:num}] DESC LIMIT 1", "superlative"));
  out.push_back(MustMake(
      t, "SELECT [{c1}] FROM w ORDER BY [{c2:num}] ASC LIMIT 1", "superlative"));
  // Counting.
  out.push_back(MustMake(
      t, "SELECT COUNT(*) FROM w WHERE [{c1}] = '{v1@c1}'", "count"));
  out.push_back(MustMake(
      t, "SELECT COUNT(*) FROM w WHERE [{c1:num}] > '{v1@c1}'", "count"));
  out.push_back(MustMake(
      t, "SELECT COUNT(*) FROM w WHERE [{c1:num}] < '{v1@c1}'", "count"));
  out.push_back(MustMake(
      t, "SELECT COUNT(DISTINCT [{c1}]) FROM w", "count"));
  // Aggregation.
  out.push_back(MustMake(t, "SELECT SUM([{c1:num}]) FROM w", "aggregation"));
  out.push_back(MustMake(t, "SELECT AVG([{c1:num}]) FROM w", "aggregation"));
  out.push_back(MustMake(t, "SELECT MAX([{c1:num}]) FROM w", "aggregation"));
  out.push_back(MustMake(t, "SELECT MIN([{c1:num}]) FROM w", "aggregation"));
  out.push_back(MustMake(
      t, "SELECT SUM([{c1:num}]) FROM w WHERE [{c2}] = '{v1@c2}'",
      "aggregation"));
  out.push_back(MustMake(
      t, "SELECT MAX([{c1:num}]) FROM w WHERE [{c2}] = '{v1@c2}'",
      "aggregation"));
  out.push_back(MustMake(
      t, "SELECT AVG([{c1:num}]) FROM w WHERE [{c2:num}] > '{v1@c2}'",
      "aggregation"));
  // Comparison spans.
  out.push_back(MustMake(
      t, "SELECT [{c1}] FROM w WHERE [{c2:num}] > '{v1@c2}'", "comparison"));
  out.push_back(MustMake(
      t, "SELECT [{c1}] FROM w WHERE [{c2:num}] < '{v1@c2}'", "comparison"));
  // Row-local sum / diff projections.
  out.push_back(MustMake(
      t, "SELECT [{c1:num}] - [{c2:num}] FROM w WHERE [{c3}] = '{v1@c3}'", "diff"));
  out.push_back(MustMake(
      t, "SELECT [{c1:num}] + [{c2:num}] FROM w WHERE [{c3}] = '{v1@c3}'", "sum"));
  return out;
}

std::vector<ProgramTemplate> BuiltinLogicTemplates() {
  const ProgramType t = ProgramType::kLogicalForm;
  std::vector<ProgramTemplate> out;
  // Unique-lookup claims ("the c2 of the row whose c1 is v1 is X").
  out.push_back(MustMake(
      t,
      "eq { hop { filter_eq { all_rows ; {c1} ; {v1@c1} } ; {c2} } ; "
      "{derive} }",
      "unique", "c2"));
  // Count claims.
  out.push_back(MustMake(
      t, "eq { count { filter_eq { all_rows ; {c1} ; {v1@c1} } } ; {derive} }",
      "count"));
  out.push_back(MustMake(
      t,
      "eq { count { filter_greater { all_rows ; {c1:num} ; {v1@c1} } } ; "
      "{derive} }",
      "count"));
  out.push_back(MustMake(
      t,
      "eq { count { filter_less { all_rows ; {c1:num} ; {v1@c1} } } ; "
      "{derive} }",
      "count"));
  // Superlative claims.
  out.push_back(MustMake(
      t, "eq { hop { argmax { all_rows ; {c1:num} } ; {c2} } ; {derive} }",
      "superlative", "c2"));
  out.push_back(MustMake(
      t, "eq { hop { argmin { all_rows ; {c1:num} } ; {c2} } ; {derive} }",
      "superlative", "c2"));
  out.push_back(MustMake(
      t, "eq { max { all_rows ; {c1:num} } ; {derive} }", "superlative"));
  out.push_back(MustMake(
      t, "eq { min { all_rows ; {c1:num} } ; {derive} }", "superlative"));
  // Ordinal claims.
  out.push_back(MustMake(
      t,
      "eq { hop { nth_argmax { all_rows ; {c1:num} ; {ord1} } ; {c2} } ; "
      "{derive} }",
      "ordinal", "c2"));
  out.push_back(MustMake(
      t,
      "eq { hop { nth_argmin { all_rows ; {c1:num} ; {ord1} } ; {c2} } ; "
      "{derive} }",
      "ordinal", "c2"));
  out.push_back(MustMake(
      t, "eq { nth_max { all_rows ; {c1:num} ; {ord1} } ; {derive} }",
      "ordinal"));
  // Aggregation claims (tolerant equality, as in LOGIC2TEXT).
  out.push_back(MustMake(
      t, "round_eq { sum { all_rows ; {c1:num} } ; {derive} }",
      "aggregation"));
  out.push_back(MustMake(
      t, "round_eq { avg { all_rows ; {c1:num} } ; {derive} }",
      "aggregation"));
  // Comparative claims between two rows (truth from execution).
  out.push_back(MustMake(
      t,
      "greater { hop { filter_eq { all_rows ; {c1} ; {v1@c1} } ; {c2:num} } "
      "; hop { filter_eq { all_rows ; {c1} ; {v2@c1} } ; {c2:num} } }",
      "comparative"));
  out.push_back(MustMake(
      t,
      "less { hop { filter_eq { all_rows ; {c1} ; {v1@c1} } ; {c2:num} } ; "
      "hop { filter_eq { all_rows ; {c1} ; {v2@c1} } ; {c2:num} } }",
      "comparative"));
  // Difference claims.
  out.push_back(MustMake(
      t,
      "round_eq { diff { hop { filter_eq { all_rows ; {c1} ; {v1@c1} } ; "
      "{c2:num} } ; hop { filter_eq { all_rows ; {c1} ; {v2@c1} } ; "
      "{c2:num} } } ; {derive} }",
      "comparative"));
  // Majority claims.
  out.push_back(MustMake(
      t, "most_eq { all_rows ; {c1} ; {v1@c1} }", "majority"));
  out.push_back(MustMake(
      t, "all_eq { all_rows ; {c1} ; {v1@c1} }", "majority"));
  out.push_back(MustMake(
      t, "most_greater { all_rows ; {c1:num} ; {v1@c1} }", "majority"));
  out.push_back(MustMake(
      t, "all_greater { all_rows ; {c1:num} ; {v1@c1} }", "majority"));
  out.push_back(MustMake(
      t, "all_less { all_rows ; {c1:num} ; {v1@c1} }", "majority"));
  out.push_back(MustMake(
      t, "most_greater_eq { all_rows ; {c1:num} ; {v1@c1} }", "majority"));
  // Uniqueness claims.
  out.push_back(MustMake(
      t, "only { filter_eq { all_rows ; {c1} ; {v1@c1} } }", "unique"));
  out.push_back(MustMake(
      t, "only { filter_greater { all_rows ; {c1:num} ; {v1@c1} } }",
      "unique"));
  // Conjunction.
  out.push_back(MustMake(
      t,
      "and { eq { count { filter_greater { all_rows ; {c1:num} ; {v1@c1} } } "
      "; {derive} } ; greater { max { all_rows ; {c1:num} } ; {v1@c1} } }",
      "conjunction"));
  return out;
}

std::vector<ProgramTemplate> BuiltinArithTemplates() {
  const ProgramType t = ProgramType::kArithmetic;
  std::vector<ProgramTemplate> out;
  // Change and percentage change between two periods (the FinQA staple).
  out.push_back(MustMake(
      t, "subtract({c1:num} of {r1}, {c2:num} of {r1})", "arithmetic"));
  out.push_back(MustMake(
      t,
      "subtract({c1:num} of {r1}, {c2:num} of {r1}), "
      "divide(#0, {c2:num} of {r1})",
      "arithmetic"));
  // Differences / ratios between two line items.
  out.push_back(MustMake(
      t, "subtract({c1:num} of {r1}, {c1:num} of {r2})", "arithmetic"));
  out.push_back(MustMake(
      t, "divide({c1:num} of {r1}, {c1:num} of {r2})", "arithmetic"));
  out.push_back(MustMake(
      t, "divide({c1:num} of {r1}, {c2:num} of {r1})", "arithmetic"));
  // Sums and two-point averages.
  out.push_back(MustMake(
      t, "add({c1:num} of {r1}, {c1:num} of {r2})", "arithmetic"));
  out.push_back(MustMake(
      t, "add({c1:num} of {r1}, {c1:num} of {r2}), divide(#0, const_2)",
      "arithmetic"));
  out.push_back(MustMake(
      t, "add({c1:num} of {r1}, {c2:num} of {r1}), divide(#0, const_2)",
      "arithmetic"));
  // Proportions scaled to percent.
  out.push_back(MustMake(
      t, "divide({c1:num} of {r1}, {c1:num} of {r2}), multiply(#0, const_100)",
      "arithmetic"));
  // Row/column aggregations.
  out.push_back(MustMake(t, "table_sum({r1})", "aggregation"));
  out.push_back(MustMake(t, "table_average({r1})", "aggregation"));
  out.push_back(MustMake(t, "table_max({r1})", "aggregation"));
  out.push_back(MustMake(t, "table_min({r1})", "aggregation"));
  // Comparisons.
  out.push_back(MustMake(
      t, "greater({c1:num} of {r1}, {c1:num} of {r2})", "comparison"));
  out.push_back(MustMake(
      t, "greater({c1:num} of {r1}, {c2:num} of {r1})", "comparison"));
  return out;
}

TemplateLibrary TemplateLibrary::Builtin() {
  TemplateLibrary lib;
  for (auto& t : BuiltinSqlTemplates()) lib.Add(std::move(t));
  for (auto& t : BuiltinLogicTemplates()) lib.Add(std::move(t));
  for (auto& t : BuiltinArithTemplates()) lib.Add(std::move(t));
  lib.templates_ = DeduplicateTemplates(std::move(lib.templates_));
  return lib;
}

void TemplateLibrary::Add(ProgramTemplate tmpl) {
  templates_.push_back(std::move(tmpl));
}

std::vector<ProgramTemplate> TemplateLibrary::OfType(ProgramType type) const {
  std::vector<ProgramTemplate> out;
  for (const auto& t : templates_) {
    if (t.type == type) out.push_back(t);
  }
  return out;
}

std::vector<ProgramTemplate> TemplateLibrary::OfReasoningType(
    const std::string& tag) const {
  std::vector<ProgramTemplate> out;
  for (const auto& t : templates_) {
    if (t.reasoning_type == tag) out.push_back(t);
  }
  return out;
}

}  // namespace uctr
