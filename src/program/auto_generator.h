#ifndef UCTR_PROGRAM_AUTO_GENERATOR_H_
#define UCTR_PROGRAM_AUTO_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "program/template.h"
#include "table/table.h"

namespace uctr {

/// \brief Configuration of the automatic template generator.
struct AutoGenConfig {
  /// Random candidate templates proposed per Generate call.
  size_t num_candidates = 150;
  /// Maximum nesting depth of generated view expressions.
  size_t max_depth = 2;
  /// Instantiation trials per corpus table when validating a candidate.
  size_t trials_per_table = 3;
  /// Minimum fraction of trials that must execute successfully for a
  /// candidate to be kept (the data-distribution filter).
  double min_success_rate = 0.34;
  /// Propose claim (logical form) templates; otherwise SQL question
  /// templates.
  bool claims = true;
};

/// \brief The paper's future-work extension (Section VII): "explore an
/// auto program-generation method based on the existing data
/// distributions to make the framework more flexible."
///
/// Instead of collecting templates from SQUALL / LOGIC2TEXT / FinQA, this
/// generator composes random templates directly from the operator grammar
/// (depth-limited, type-correct by construction), then keeps only the
/// candidates that instantiate and execute successfully on a reference
/// corpus at a configurable rate — grounding the template inventory in
/// the actual data distribution.
class AutoTemplateGenerator {
 public:
  /// \param rng not owned.
  AutoTemplateGenerator(AutoGenConfig config, Rng* rng)
      : config_(config), rng_(rng) {}

  /// \brief One random candidate template (unvalidated). Claim templates
  /// are logical forms rooted at a boolean operator; question templates
  /// are SQL SELECTs.
  ProgramTemplate Propose();

  /// \brief Proposes `num_candidates` templates, validates each against
  /// `corpus`, deduplicates, and returns the survivors.
  std::vector<ProgramTemplate> Generate(const std::vector<Table>& corpus);

  /// \brief Fraction of sampling trials on `corpus` that execute
  /// successfully (exposed for tests and ablations).
  double SuccessRate(const ProgramTemplate& tmpl,
                     const std::vector<Table>& corpus);

 private:
  /// Fresh placeholder ids per proposal.
  struct SlotCounter {
    int columns = 0;
    int values = 0;
    int ordinals = 0;
  };

  std::string NewColumn(SlotCounter* slots, bool numeric, bool text = false);
  std::string NewValue(SlotCounter* slots, const std::string& column_slot);

  /// Random view expression of at most `depth` nested operators.
  std::string RandomView(SlotCounter* slots, size_t depth);
  /// Random scalar expression (hop/count/aggregate/superlative).
  std::string RandomScalar(SlotCounter* slots, size_t depth,
                           bool* numeric_out);

  std::string ProposeClaimPattern(SlotCounter* slots);
  std::string ProposeSqlPattern(SlotCounter* slots);

  AutoGenConfig config_;
  Rng* rng_;
};

}  // namespace uctr

#endif  // UCTR_PROGRAM_AUTO_GENERATOR_H_
