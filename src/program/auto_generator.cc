#include "program/auto_generator.h"

#include <algorithm>
#include <string>

#include "program/sampler.h"

namespace uctr {

namespace {

/// "{c3:num}" -> "c3".
std::string SlotId(const std::string& spelling) {
  std::string body = spelling.substr(1, spelling.size() - 2);
  size_t colon = body.find(':');
  return colon == std::string::npos ? body : body.substr(0, colon);
}

}  // namespace

std::string AutoTemplateGenerator::NewColumn(SlotCounter* slots, bool numeric,
                                             bool text) {
  std::string id = "c" + std::to_string(++slots->columns);
  if (numeric) return "{" + id + ":num}";
  if (text) return "{" + id + ":text}";
  return "{" + id + "}";
}

std::string AutoTemplateGenerator::NewValue(SlotCounter* slots,
                                            const std::string& column_slot) {
  std::string id = "v" + std::to_string(++slots->values);
  return "{" + id + "@" + SlotId(column_slot) + "}";
}

std::string AutoTemplateGenerator::RandomView(SlotCounter* slots,
                                              size_t depth) {
  if (depth == 0 || rng_->Bernoulli(0.45)) return "all_rows";
  std::string inner = RandomView(slots, depth - 1);
  switch (rng_->UniformInt(0, 3)) {
    case 0: {
      std::string col = NewColumn(slots, /*numeric=*/false);
      return "filter_eq { " + inner + " ; " + col + " ; " +
             NewValue(slots, col) + " }";
    }
    case 1: {
      std::string col = NewColumn(slots, /*numeric=*/true);
      return "filter_greater { " + inner + " ; " + col + " ; " +
             NewValue(slots, col) + " }";
    }
    case 2: {
      std::string col = NewColumn(slots, /*numeric=*/true);
      return "filter_less { " + inner + " ; " + col + " ; " +
             NewValue(slots, col) + " }";
    }
    default: {
      std::string col = NewColumn(slots, /*numeric=*/false);
      return "filter_not_eq { " + inner + " ; " + col + " ; " +
             NewValue(slots, col) + " }";
    }
  }
}

std::string AutoTemplateGenerator::RandomScalar(SlotCounter* slots,
                                                size_t depth,
                                                bool* numeric_out) {
  switch (rng_->UniformInt(0, 4)) {
    case 0: {  // hop over a filtered view
      std::string view = RandomView(slots, std::max<size_t>(1, depth));
      if (view == "all_rows") {
        // A bare hop on all_rows reads an arbitrary first row; prefer a
        // deterministic superlative row instead.
        std::string num_col = NewColumn(slots, /*numeric=*/true);
        view = std::string(rng_->Bernoulli(0.5) ? "argmax" : "argmin") +
               " { all_rows ; " + num_col + " }";
      }
      *numeric_out = false;
      return "hop { " + view + " ; " + NewColumn(slots, false) + " }";
    }
    case 1: {  // count
      *numeric_out = true;
      return "count { " + RandomView(slots, depth) + " }";
    }
    case 2: {  // extremum value
      *numeric_out = true;
      return std::string(rng_->Bernoulli(0.5) ? "max" : "min") + " { " +
             RandomView(slots, depth) + " ; " +
             NewColumn(slots, /*numeric=*/true) + " }";
    }
    case 3: {  // aggregate
      *numeric_out = true;
      return std::string(rng_->Bernoulli(0.5) ? "sum" : "avg") + " { " +
             RandomView(slots, depth) + " ; " +
             NewColumn(slots, /*numeric=*/true) + " }";
    }
    default: {  // ordinal extremum
      *numeric_out = true;
      std::string ord = "{ord" + std::to_string(++slots->ordinals) + "}";
      return std::string(rng_->Bernoulli(0.5) ? "nth_max" : "nth_min") +
             " { " + RandomView(slots, depth) + " ; " +
             NewColumn(slots, /*numeric=*/true) + " ; " + ord + " }";
    }
  }
}

std::string AutoTemplateGenerator::ProposeClaimPattern(SlotCounter* slots) {
  switch (rng_->UniformInt(0, 4)) {
    case 0: {  // eq / round_eq with derived comparison value
      bool numeric = false;
      std::string scalar = RandomScalar(slots, config_.max_depth, &numeric);
      const char* root = numeric && rng_->Bernoulli(0.5) ? "round_eq" : "eq";
      return std::string(root) + " { " + scalar + " ; {derive} }";
    }
    case 1: {  // comparative between two numeric scalars
      bool numeric = false;
      std::string lhs, rhs;
      do {
        lhs = RandomScalar(slots, config_.max_depth, &numeric);
      } while (!numeric);
      do {
        rhs = RandomScalar(slots, config_.max_depth, &numeric);
      } while (!numeric);
      return std::string(rng_->Bernoulli(0.5) ? "greater" : "less") + " { " +
             lhs + " ; " + rhs + " }";
    }
    case 2: {  // uniqueness
      std::string view;
      do {
        view = RandomView(slots, config_.max_depth);
      } while (view == "all_rows");
      return "only { " + view + " }";
    }
    case 3: {  // majority over a text column
      std::string col = NewColumn(slots, /*numeric=*/false, /*text=*/true);
      const char* root = rng_->Bernoulli(0.5) ? "most_eq" : "all_eq";
      return std::string(root) + " { all_rows ; " + col + " ; " +
             NewValue(slots, col) + " }";
    }
    default: {  // majority over a numeric column
      std::string col = NewColumn(slots, /*numeric=*/true);
      static const char* kRoots[] = {"most_greater", "most_less",
                                     "all_greater", "all_less"};
      return std::string(kRoots[rng_->Index(4)]) + " { all_rows ; " + col +
             " ; " + NewValue(slots, col) + " }";
    }
  }
}

std::string AutoTemplateGenerator::ProposeSqlPattern(SlotCounter* slots) {
  // SELECT item.
  std::string select;
  bool aggregate = rng_->Bernoulli(0.5);
  if (aggregate) {
    switch (rng_->UniformInt(0, 4)) {
      case 0:
        select = "COUNT(*)";
        break;
      case 1:
        select = "SUM([" + NewColumn(slots, true) + "])";
        break;
      case 2:
        select = "AVG([" + NewColumn(slots, true) + "])";
        break;
      case 3:
        select = "MAX([" + NewColumn(slots, true) + "])";
        break;
      default:
        select = "MIN([" + NewColumn(slots, true) + "])";
        break;
    }
  } else {
    select = "[" + NewColumn(slots, false) + "]";
  }
  std::string query = "SELECT " + select + " FROM w";

  // WHERE conjunction (0-2 conditions; COUNT(*) always gets one).
  int64_t conds = rng_->UniformInt(select == "COUNT(*)" ? 1 : 0, 2);
  for (int64_t i = 0; i < conds; ++i) {
    query += (i == 0) ? " WHERE " : " AND ";
    switch (rng_->UniformInt(0, 2)) {
      case 0: {
        std::string col = NewColumn(slots, false);
        query += "[" + col + "] = '" + NewValue(slots, col) + "'";
        break;
      }
      case 1: {
        std::string col = NewColumn(slots, true);
        query += "[" + col + "] > '" + NewValue(slots, col) + "'";
        break;
      }
      default: {
        std::string col = NewColumn(slots, true);
        query += "[" + col + "] < '" + NewValue(slots, col) + "'";
        break;
      }
    }
  }

  // Superlative tail for plain selections.
  if (!aggregate && conds == 0) {
    query += " ORDER BY [" + NewColumn(slots, true) + "] " +
             (rng_->Bernoulli(0.5) ? "DESC" : "ASC") + " LIMIT 1";
  }
  return query;
}

ProgramTemplate AutoTemplateGenerator::Propose() {
  while (true) {
    SlotCounter slots;
    std::string pattern;
    ProgramType type;
    if (config_.claims) {
      pattern = ProposeClaimPattern(&slots);
      type = ProgramType::kLogicalForm;
    } else {
      pattern = ProposeSqlPattern(&slots);
      type = ProgramType::kSql;
    }
    auto tmpl = ProgramTemplate::Make(type, pattern, "auto");
    if (tmpl.ok()) return std::move(tmpl).ValueOrDie();
    // Malformed proposals are discarded and re-drawn (should not happen
    // for grammar-generated patterns, but the loop keeps Propose total).
  }
}

double AutoTemplateGenerator::SuccessRate(const ProgramTemplate& tmpl,
                                          const std::vector<Table>& corpus) {
  if (corpus.empty()) return 0.0;
  ProgramSampler sampler(rng_);
  size_t attempts = 0, successes = 0;
  bool target = true;
  for (const Table& table : corpus) {
    for (size_t trial = 0; trial < config_.trials_per_table; ++trial) {
      ++attempts;
      Result<SampledProgram> r =
          tmpl.type == ProgramType::kLogicalForm
              ? sampler.SampleClaim(tmpl, table, target)
              : sampler.Sample(tmpl, table);
      target = !target;  // validate both supported and refuted derivation
      if (r.ok()) ++successes;
    }
  }
  return static_cast<double>(successes) / static_cast<double>(attempts);
}

std::vector<ProgramTemplate> AutoTemplateGenerator::Generate(
    const std::vector<Table>& corpus) {
  std::vector<ProgramTemplate> survivors;
  for (size_t i = 0; i < config_.num_candidates; ++i) {
    ProgramTemplate candidate = Propose();
    if (SuccessRate(candidate, corpus) >= config_.min_success_rate) {
      survivors.push_back(std::move(candidate));
    }
  }
  return DeduplicateTemplates(std::move(survivors));
}

}  // namespace uctr
