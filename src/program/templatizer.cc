#include "program/templatizer.h"

#include <map>
#include <string>

#include "arith/ast.h"
#include "arith/parser.h"
#include "common/string_util.h"
#include "logic/ast.h"
#include "logic/executor.h"
#include "logic/parser.h"
#include "sql/ast.h"
#include "sql/parser.h"

namespace uctr {

namespace {

/// Shared bookkeeping: assigns stable placeholder ids to column names,
/// values, and row names as they are encountered.
class SlotMap {
 public:
  explicit SlotMap(const Table& table) : table_(table) {}

  /// Placeholder spelling for a column, e.g. "{c1:num}".
  std::string ColumnSlot(const std::string& name) {
    auto it = columns_.find(ToLower(name));
    if (it != columns_.end()) return it->second;
    std::string id = "c" + std::to_string(columns_.size() + 1);
    std::string constraint;
    if (auto c = table_.ColumnIndex(name); c.ok()) {
      ColumnType type = table_.schema().column(c.ValueOrDie()).type;
      if (type == ColumnType::kNumber) constraint = ":num";
      if (type == ColumnType::kText) constraint = ":text";
    }
    std::string slot = "{" + id + constraint + "}";
    columns_[ToLower(name)] = slot;
    column_ids_[ToLower(name)] = id;
    return slot;
  }

  /// Placeholder spelling for a value from `column`, e.g. "{v1@c2}".
  std::string ValueSlot(const std::string& column) {
    std::string col_id = column_ids_.count(ToLower(column))
                             ? column_ids_[ToLower(column)]
                             : "c1";
    std::string id = "v" + std::to_string(++value_count_);
    return "{" + id + "@" + col_id + "}";
  }

  std::string RowSlot(const std::string& name) {
    auto it = rows_.find(ToLower(name));
    if (it != rows_.end()) return it->second;
    std::string slot = "{r" + std::to_string(rows_.size() + 1) + "}";
    rows_[ToLower(name)] = slot;
    return slot;
  }

 private:
  const Table& table_;
  std::map<std::string, std::string> columns_;
  std::map<std::string, std::string> column_ids_;
  std::map<std::string, std::string> rows_;
  size_t value_count_ = 0;
};

std::string GuessSqlReasoningType(const sql::SelectStatement& stmt) {
  for (const auto& item : stmt.items) {
    if (item.agg == sql::AggFunc::kCount) return "count";
    if (item.agg != sql::AggFunc::kNone) return "aggregation";
    if (item.arith == sql::ArithOp::kSub) return "diff";
    if (item.arith == sql::ArithOp::kAdd) return "sum";
  }
  if (stmt.order_by && stmt.limit) return "superlative";
  if (stmt.where.size() > 1) return "conjunction";
  for (const auto& cond : stmt.where) {
    if (cond.op != sql::CmpOp::kEq) return "comparison";
  }
  return "span";
}

/// Operators whose arguments are (view, column[, value|ordinal]).
bool TakesColumnAtArg1(const std::string& op) {
  return StartsWith(op, "filter_") || StartsWith(op, "most_") ||
         StartsWith(op, "all_") || op == "hop" || op == "num_hop" ||
         op == "str_hop" || op == "max" || op == "min" || op == "sum" ||
         op == "avg" || op == "average" || op == "argmax" || op == "argmin" ||
         op == "nth_argmax" || op == "nth_argmin" || op == "nth_max" ||
         op == "nth_min";
}

bool TakesValueAtArg2(const std::string& op) {
  return (StartsWith(op, "filter_") && op != "filter_all") ||
         StartsWith(op, "most_") || StartsWith(op, "all_");
}

bool TakesOrdinalAtArg2(const std::string& op) {
  return op == "nth_argmax" || op == "nth_argmin" || op == "nth_max" ||
         op == "nth_min";
}

std::string GuessLogicReasoningType(const logic::Node& root) {
  std::string found = "unique";
  std::vector<const logic::Node*> stack = {&root};
  while (!stack.empty()) {
    const logic::Node* n = stack.back();
    stack.pop_back();
    if (!n->is_literal) {
      const std::string& op = n->name;
      if (op == "count") return "count";
      if (StartsWith(op, "most_") || StartsWith(op, "all_")) {
        return "majority";
      }
      if (StartsWith(op, "nth_")) return "ordinal";
      if (op == "argmax" || op == "argmin" || op == "max" || op == "min") {
        found = "superlative";
      }
      if (op == "sum" || op == "avg" || op == "average") {
        return "aggregation";
      }
      if (op == "greater" || op == "less" || op == "diff") {
        found = "comparative";
      }
      if (op == "only") found = "unique";
      if (op == "and" || op == "or") return "conjunction";
    }
    for (const auto& a : n->args) stack.push_back(a.get());
  }
  return found;
}

/// Rewrites a logic AST in place, replacing column/value/ordinal literals
/// with placeholder spellings. `last_column` tracks the column governing
/// sibling value slots.
void AbstractLogicNode(logic::Node* node, SlotMap* slots) {
  if (node->is_literal) return;
  const std::string& op = node->name;
  std::string column_name;
  for (size_t i = 0; i < node->args.size(); ++i) {
    logic::Node* arg = node->args[i].get();
    if (!arg->is_literal) {
      AbstractLogicNode(arg, slots);
      continue;
    }
    if (EqualsIgnoreCase(arg->name, "all_rows")) continue;
    if (i == 1 && TakesColumnAtArg1(op)) {
      column_name = arg->name;
      arg->name = slots->ColumnSlot(column_name);
    } else if (i == 2 && TakesOrdinalAtArg2(op)) {
      arg->name = "{ord1}";
    } else if (i == 2 && TakesValueAtArg2(op)) {
      arg->name = slots->ValueSlot(column_name);
    }
  }
}

/// After structural abstraction, the remaining literal argument of the
/// root comparison (eq/round_eq/greater/less/not_eq) is the compared-to
/// value: turn it into {derive}.
void MarkDerive(logic::Node* root) {
  const std::string& op = root->name;
  if ((op == "eq" || op == "round_eq" || op == "not_eq") &&
      root->args.size() == 2) {
    for (size_t i = 0; i < 2; ++i) {
      logic::Node* arg = root->args[i].get();
      if (arg->is_literal && arg->name.find('{') == std::string::npos &&
          !root->args[1 - i]->is_literal) {
        arg->name = "{derive}";
        return;
      }
    }
  }
  if (op == "and" || op == "or") {
    for (auto& arg : root->args) {
      if (!arg->is_literal) MarkDerive(arg.get());
    }
  }
}

}  // namespace

Result<ProgramTemplate> AbstractSql(std::string_view query,
                                    const Table& table) {
  UCTR_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::Parse(query));
  SlotMap slots(table);
  std::string reasoning = GuessSqlReasoningType(stmt);

  for (auto& item : stmt.items) {
    if (!item.column.empty()) item.column = slots.ColumnSlot(item.column);
    if (!item.rhs_column.empty()) {
      item.rhs_column = slots.ColumnSlot(item.rhs_column);
    }
  }
  if (stmt.order_by) {
    stmt.order_by->column = slots.ColumnSlot(stmt.order_by->column);
  }
  for (auto& cond : stmt.where) {
    std::string original = cond.column;
    cond.column = slots.ColumnSlot(original);
    cond.literal = Value::String(slots.ValueSlot(original));
  }
  return ProgramTemplate::Make(ProgramType::kSql, stmt.ToString(), reasoning);
}

Result<ProgramTemplate> AbstractLogicalForm(std::string_view form,
                                            const Table& table) {
  UCTR_ASSIGN_OR_RETURN(auto node, logic::Parse(form));
  SlotMap slots(table);
  std::string reasoning = GuessLogicReasoningType(*node);
  AbstractLogicNode(node.get(), &slots);
  MarkDerive(node.get());
  std::string pattern = node->ToString();
  // Recover the derive column: the {cK} inside the hop/aggregate sibling is
  // a better distractor source than nothing, but identifying it reliably
  // requires the original binding; leave empty (numeric corruption covers
  // most derived values).
  return ProgramTemplate::Make(ProgramType::kLogicalForm, pattern, reasoning);
}

Result<ProgramTemplate> AbstractArithmetic(std::string_view text,
                                           const Table& table) {
  UCTR_ASSIGN_OR_RETURN(arith::Expression expr, arith::Parse(text));
  SlotMap slots(table);
  std::string reasoning = "arithmetic";
  for (auto& step : expr.steps) {
    if (StartsWith(step.op, "table_")) reasoning = "aggregation";
    if (step.op == "greater") reasoning = "comparison";
    for (auto& arg : step.args) {
      if (arg.kind == arith::Operand::Kind::kCellRef) {
        arg.column = slots.ColumnSlot(arg.column);
        arg.row = slots.RowSlot(arg.row);
      } else if (arg.kind == arith::Operand::Kind::kText) {
        // Bare names in table_* ops are row names.
        if (StartsWith(step.op, "table_")) {
          arg.text = slots.RowSlot(arg.text);
        }
      }
    }
  }
  return ProgramTemplate::Make(ProgramType::kArithmetic, expr.ToString(),
                               reasoning);
}

std::vector<ProgramTemplate> CollectTemplates(
    const std::vector<std::pair<Program, const Table*>>& programs) {
  std::vector<ProgramTemplate> out;
  for (const auto& [program, table] : programs) {
    Result<ProgramTemplate> r = Status::Internal("unset");
    switch (program.type) {
      case ProgramType::kSql:
        r = AbstractSql(program.text, *table);
        break;
      case ProgramType::kLogicalForm:
        r = AbstractLogicalForm(program.text, *table);
        break;
      case ProgramType::kArithmetic:
        r = AbstractArithmetic(program.text, *table);
        break;
    }
    if (r.ok()) out.push_back(std::move(r).ValueOrDie());
  }
  return DeduplicateTemplates(std::move(out));
}

}  // namespace uctr
