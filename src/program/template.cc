#include "program/template.h"

#include <set>

#include "common/string_util.h"

namespace uctr {

namespace {

Result<Placeholder> ParseSlot(const std::string& body) {
  // Placeholder bodies are compact identifiers; anything with spaces,
  // braces, or separators is program syntax, not a slot.
  if (body.find_first_of(" \t{};,()'") != std::string::npos) {
    return Status::ParseError("not a placeholder body");
  }
  Placeholder p;
  p.spelling = "{" + body + "}";
  if (body == "derive") {
    p.kind = Placeholder::Kind::kDerive;
    p.id = "derive";
    return p;
  }
  if (StartsWith(body, "ord")) {
    p.kind = Placeholder::Kind::kOrdinal;
    p.id = body;
    return p;
  }
  if (StartsWith(body, "r")) {
    p.kind = Placeholder::Kind::kRow;
    p.id = body;
    return p;
  }
  if (StartsWith(body, "v")) {
    size_t at = body.find('@');
    if (at == std::string::npos) {
      return Status::ParseError("value placeholder '" + body +
                                "' missing '@column'");
    }
    p.kind = Placeholder::Kind::kValue;
    p.id = body.substr(0, at);
    p.column_id = body.substr(at + 1);
    if (p.id.empty() || p.column_id.empty()) {
      return Status::ParseError("malformed value placeholder '" + body + "'");
    }
    return p;
  }
  if (StartsWith(body, "c")) {
    p.kind = Placeholder::Kind::kColumn;
    size_t colon = body.find(':');
    if (colon == std::string::npos) {
      p.id = body;
      return p;
    }
    p.id = body.substr(0, colon);
    std::string constraint = body.substr(colon + 1);
    p.has_type_constraint = true;
    if (constraint == "num" || constraint == "number") {
      p.column_type = ColumnType::kNumber;
    } else if (constraint == "text" || constraint == "string") {
      p.column_type = ColumnType::kText;
    } else {
      return Status::ParseError("unknown type constraint '" + constraint +
                                "'");
    }
    return p;
  }
  return Status::ParseError("unknown placeholder '" + body + "'");
}

}  // namespace

Result<ProgramTemplate> ProgramTemplate::Make(ProgramType type,
                                              std::string pattern,
                                              std::string reasoning_type,
                                              std::string derive_column_id) {
  ProgramTemplate t;
  t.type = type;
  t.pattern = std::move(pattern);
  t.reasoning_type = std::move(reasoning_type);
  t.derive_column_id = std::move(derive_column_id);

  // Logical-form patterns use literal `{`/`}` as program syntax, so a brace
  // pair only counts as a placeholder when its body parses as one
  // ("{c1}", "{v1@c1}", ...); all other braces pass through verbatim.
  std::set<std::string> seen;
  size_t i = 0;
  while (i < t.pattern.size()) {
    if (t.pattern[i] != '{') {
      ++i;
      continue;
    }
    size_t close = t.pattern.find('}', i);
    if (close == std::string::npos) break;
    std::string body = t.pattern.substr(i + 1, close - i - 1);
    Result<Placeholder> slot = ParseSlot(body);
    if (!slot.ok()) {
      ++i;  // literal brace
      continue;
    }
    Placeholder p = std::move(slot).ValueOrDie();
    if (!seen.count(p.spelling)) {
      seen.insert(p.spelling);
      t.placeholders.push_back(std::move(p));
    }
    i = close + 1;
  }
  // Validate that every value placeholder references a declared column.
  std::set<std::string> column_ids;
  for (const Placeholder& p : t.placeholders) {
    if (p.kind == Placeholder::Kind::kColumn) column_ids.insert(p.id);
  }
  for (const Placeholder& p : t.placeholders) {
    if (p.kind == Placeholder::Kind::kValue && !column_ids.count(p.column_id)) {
      return Status::ParseError("value placeholder '" + p.id +
                                "' references unknown column '" +
                                p.column_id + "'");
    }
  }
  if (!t.derive_column_id.empty() && !column_ids.count(t.derive_column_id)) {
    return Status::ParseError("derive_column_id '" + t.derive_column_id +
                              "' is not a column placeholder");
  }
  return t;
}

Result<std::string> ProgramTemplate::Fill(
    const std::map<std::string, std::string>& bindings) const {
  std::string out = pattern;
  for (const Placeholder& p : placeholders) {
    auto it = bindings.find(p.id);
    if (it == bindings.end()) {
      return Status::InvalidArgument("missing binding for placeholder '" +
                                     p.id + "'");
    }
    out = ReplaceAll(out, p.spelling, it->second);
  }
  return out;
}

std::vector<std::string> ProgramTemplate::ColumnIds() const {
  std::vector<std::string> out;
  for (const Placeholder& p : placeholders) {
    if (p.kind == Placeholder::Kind::kColumn) out.push_back(p.id);
  }
  return out;
}

bool ProgramTemplate::HasDerive() const {
  for (const Placeholder& p : placeholders) {
    if (p.kind == Placeholder::Kind::kDerive) return true;
  }
  return false;
}

std::vector<ProgramTemplate> DeduplicateTemplates(
    std::vector<ProgramTemplate> templates) {
  std::set<std::string> seen;
  std::vector<ProgramTemplate> out;
  for (auto& t : templates) {
    std::string key = std::string(ProgramTypeToString(t.type)) + "|" +
                      t.pattern;
    if (seen.insert(key).second) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace uctr
