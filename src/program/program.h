#ifndef UCTR_PROGRAM_PROGRAM_H_
#define UCTR_PROGRAM_PROGRAM_H_

#include <string>

#include "common/result.h"
#include "table/exec_result.h"
#include "table/table.h"

namespace uctr {

/// \brief The three program families of the paper (Section II-C).
enum class ProgramType {
  kSql = 0,        ///< SQUALL-style SQL queries (question answering).
  kLogicalForm,    ///< LOGIC2TEXT logical forms (fact verification).
  kArithmetic,     ///< FinQA arithmetic expressions (numerical QA).
};

const char* ProgramTypeToString(ProgramType type);

/// \brief A concrete executable program: a type tag plus its canonical text.
///
/// The unified Program-Executor (Equation 4) dispatches on the type to the
/// per-family executors in uctr::sql / uctr::logic / uctr::arith.
struct Program {
  ProgramType type = ProgramType::kSql;
  std::string text;

  /// \brief Executes this program on `table`; kEmptyResult and parse /
  /// execution failures surface as error Statuses so the generation
  /// pipeline can discard the sample (Algorithm 1, line 14).
  Result<ExecResult> Execute(const Table& table) const;

  /// \brief Syntax check without execution.
  Status Validate() const;
};

}  // namespace uctr

#endif  // UCTR_PROGRAM_PROGRAM_H_
