#ifndef UCTR_PROGRAM_PROGRAM_H_
#define UCTR_PROGRAM_PROGRAM_H_

#include <string>

#include "common/result.h"
#include "table/exec_result.h"
#include "table/table.h"

namespace uctr {

namespace ir {
class PlanCache;
}

/// \brief The three program families of the paper (Section II-C).
enum class ProgramType {
  kSql = 0,        ///< SQUALL-style SQL queries (question answering).
  kLogicalForm,    ///< LOGIC2TEXT logical forms (fact verification).
  kArithmetic,     ///< FinQA arithmetic expressions (numerical QA).
};

const char* ProgramTypeToString(ProgramType type);

/// \brief How a Program executes. The default is the compiled path: lower
/// to register bytecode (through the plan cache) and run the VM; programs
/// the lowering rejects fall back to the family tree-walk executor. The
/// two paths are byte-identical on the accepted subset (tests/ir_test.cc),
/// so `use_vm` only changes cost, never answers — which also keeps the
/// generation pipeline's RNG sequence unchanged.
struct ExecOptions {
  /// false = always tree-walk (the differential reference).
  bool use_vm = true;
  /// Forwarded to both paths' TableIndex usage.
  bool use_index = true;
  /// Compiled-plan cache; nullptr selects ir::PlanCache::Default().
  ir::PlanCache* plan_cache = nullptr;
};

/// \brief A concrete executable program: a type tag plus its canonical text.
///
/// The unified Program-Executor (Equation 4) dispatches on the type to the
/// per-family executors in uctr::sql / uctr::logic / uctr::arith.
struct Program {
  ProgramType type = ProgramType::kSql;
  std::string text;

  /// \brief Executes this program on `table`; kEmptyResult and parse /
  /// execution failures surface as error Statuses so the generation
  /// pipeline can discard the sample (Algorithm 1, line 14).
  Result<ExecResult> Execute(const Table& table) const;

  /// \brief Execute with explicit path selection (VM vs tree-walk).
  Result<ExecResult> Execute(const Table& table, const ExecOptions& opts) const;

  /// \brief Syntax check without execution.
  Status Validate() const;
};

}  // namespace uctr

#endif  // UCTR_PROGRAM_PROGRAM_H_
