#ifndef UCTR_BASELINES_MQA_QG_H_
#define UCTR_BASELINES_MQA_QG_H_

#include <vector>

#include "common/rng.h"
#include "gen/generator.h"
#include "gen/sample.h"

namespace uctr::baselines {

/// \brief Configuration of the MQA-QG baseline generator.
struct MqaQgConfig {
  TaskType task = TaskType::kQuestionAnswering;
  size_t samples_per_table = 8;
  /// Fraction of samples using the DescribeEnt bridge (sentence + table).
  double bridge_fraction = 0.4;
  /// Fact verification: fraction of supported claims.
  double supported_fraction = 0.5;
};

/// \brief Reimplementation of the MQA-QG baseline [38] adapted to the
/// paper's benchmarks (Section V-C): finds a bridge entity, describes its
/// row with the DescribeEnt operator, and composes a question or claim
/// about a single cell.
///
/// Its defining limitation — faithfully reproduced — is that every sample
/// involves exactly one row and no complex logic: no counting,
/// superlatives, aggregation, or arithmetic. Models trained on this data
/// miss most reasoning types of the gold distribution (Figure 2).
class MqaQg {
 public:
  /// \param rng not owned.
  MqaQg(MqaQgConfig config, Rng* rng);

  std::vector<Sample> GenerateFromTable(const TableWithText& input);
  Dataset GenerateDataset(const std::vector<TableWithText>& corpus);

 private:
  Result<Sample> TryGenerate(const TableWithText& input);

  MqaQgConfig config_;
  Rng* rng_;
};

}  // namespace uctr::baselines

#endif  // UCTR_BASELINES_MQA_QG_H_
