#include "baselines/mqa_qg.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/numeric.h"
#include "common/string_util.h"
#include "hybrid/table_to_text.h"

namespace uctr::baselines {

MqaQg::MqaQg(MqaQgConfig config, Rng* rng) : config_(config), rng_(rng) {}

Result<Sample> MqaQg::TryGenerate(const TableWithText& input) {
  const Table& table = input.table;
  if (table.num_rows() == 0 || table.num_columns() < 2) {
    return Status::InvalidArgument("table too small for MQA-QG");
  }
  // Bridge entity: a row; target: one of its non-entity cells.
  size_t row = rng_->Index(table.num_rows());
  size_t col = 1 + rng_->Index(table.num_columns() - 1);
  const Value& entity = table.cell(row, 0);
  const Value& target = table.cell(row, col);
  if (entity.is_null() || target.is_null()) {
    return Status::EmptyResult("bridge entity or target cell missing");
  }
  std::string entity_text = entity.ToDisplayString();
  std::string column_name = table.schema().column(col).name;
  std::string target_text = target.ToDisplayString();

  Sample sample;
  sample.task = config_.task;
  sample.reasoning_type = "simple";
  sample.evidence_rows = {row};
  // Single-cell program (kept for provenance / answer re-derivation).
  sample.program.type = ProgramType::kSql;
  sample.program.text = "SELECT [" + column_name + "] FROM w WHERE [" +
                        table.schema().column(0).name + "] = '" +
                        ReplaceAll(entity_text, "'", "''") + "'";

  if (config_.task == TaskType::kQuestionAnswering) {
    sample.sentence =
        "What is the " + column_name + " of " + entity_text + "?";
    sample.answer = target_text;
    sample.answer_values = {target};
  } else {
    bool supported = rng_->Bernoulli(config_.supported_fraction);
    std::string claimed = target_text;
    if (!supported) {
      if (auto n = target.ToNumber(); n.ok()) {
        double v = n.ValueOrDie();
        double delta = std::max(1.0, std::abs(v) * 0.25);
        claimed = FormatNumber(v + (rng_->Bernoulli(0.5) ? delta : -delta));
      } else {
        // Distractor from the same column.
        std::string distractor;
        for (size_t r = 0; r < table.num_rows(); ++r) {
          const Value& v = table.cell(r, col);
          if (!v.is_null() && !v.Equals(target)) {
            distractor = v.ToDisplayString();
            break;
          }
        }
        if (distractor.empty()) {
          return Status::NotFound("no distractor for refuted claim");
        }
        claimed = distractor;
      }
    }
    sample.sentence =
        "The " + column_name + " of " + entity_text + " is " + claimed + ".";
    sample.label = supported ? Label::kSupported : Label::kRefuted;
    // Keep a logical-form rendering so labels stay execution-consistent.
    sample.program.type = ProgramType::kLogicalForm;
    sample.program.text = "eq { hop { filter_eq { all_rows ; " +
                          table.schema().column(0).name + " ; " +
                          entity_text + " } ; " + column_name + " } ; " +
                          claimed + " }";
  }

  // Bridge mode: describe the row as text and hand out the sub-table.
  if (rng_->Bernoulli(config_.bridge_fraction) && table.num_rows() >= 2) {
    hybrid::TableToText describe;
    auto split = describe.Apply(table, row, rng_);
    if (split.ok()) {
      sample.table = split->sub_table;
      sample.paragraph = {split->sentence};
      sample.source = EvidenceSource::kTextOnly;  // one-row evidence
      return sample;
    }
  }
  sample.table = table;
  sample.paragraph = input.paragraph;
  sample.source = EvidenceSource::kTableOnly;
  return sample;
}

std::vector<Sample> MqaQg::GenerateFromTable(const TableWithText& input) {
  std::vector<Sample> out;
  std::set<std::string> seen;
  for (size_t i = 0; i < config_.samples_per_table; ++i) {
    for (int attempt = 0; attempt < 10; ++attempt) {
      auto r = TryGenerate(input);
      if (!r.ok()) continue;
      if (!seen.insert(r->sentence).second) continue;
      out.push_back(std::move(r).ValueOrDie());
      break;
    }
  }
  return out;
}

Dataset MqaQg::GenerateDataset(const std::vector<TableWithText>& corpus) {
  Dataset dataset;
  for (const TableWithText& input : corpus) {
    for (Sample& s : GenerateFromTable(input)) {
      dataset.samples.push_back(std::move(s));
    }
  }
  return dataset;
}

}  // namespace uctr::baselines
