#ifndef UCTR_BASELINES_RANDOM_BASELINE_H_
#define UCTR_BASELINES_RANDOM_BASELINE_H_

#include <vector>

#include "common/rng.h"
#include "gen/sample.h"

namespace uctr::baselines {

/// \brief The Random baseline of Tables IV/V: uniform label guessing over
/// the task's label set (2-way for FEVEROUS, 3-way for SEM-TAB-FACTS).
class RandomBaseline {
 public:
  /// \param rng not owned.
  RandomBaseline(int num_classes, Rng* rng)
      : num_classes_(num_classes), rng_(rng) {}

  Label Predict() {
    int c = static_cast<int>(rng_->UniformInt(0, num_classes_ - 1));
    if (c == 0) return Label::kSupported;
    if (c == 1) return Label::kRefuted;
    return Label::kUnknown;
  }

  std::vector<Label> PredictAll(size_t n) {
    std::vector<Label> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(Predict());
    return out;
  }

 private:
  int num_classes_;
  Rng* rng_;
};

}  // namespace uctr::baselines

#endif  // UCTR_BASELINES_RANDOM_BASELINE_H_
