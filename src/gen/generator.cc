#include "gen/generator.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace uctr {

Generator::Generator(GenerationConfig config, const TemplateLibrary* library,
                     Rng* rng)
    : config_(std::move(config)),
      library_(library),
      rng_(rng),
      sampler_(rng),
      nl_generator_(config_.nl, config_.lexicon != nullptr
                                    ? config_.lexicon
                                    : &nlgen::Lexicon::Default()) {
  for (ProgramType type : config_.program_types) {
    for (auto& tmpl : library_->OfType(type)) {
      auto it = config_.reasoning_weights.find(tmpl.reasoning_type);
      template_weights_.push_back(
          it == config_.reasoning_weights.end() ? 1.0 : it->second);
      active_templates_.push_back(std::move(tmpl));
    }
  }
}

Result<SampledProgram> Generator::SampleProgram(const Table& table,
                                                const ProgramTemplate& tmpl) {
  if (config_.task == TaskType::kFactVerification) {
    if (tmpl.type != ProgramType::kLogicalForm) {
      return Status::InvalidArgument(
          "fact verification requires logical-form templates");
    }
    bool target_true = rng_->Bernoulli(config_.supported_fraction);
    return sampler_.SampleClaim(tmpl, table, target_true);
  }
  if (tmpl.type == ProgramType::kLogicalForm) {
    return Status::InvalidArgument(
        "question answering uses SQL / arithmetic programs");
  }
  return sampler_.Sample(tmpl, table);
}

Result<Sample> Generator::TryGenerate(const TableWithText& input) {
  if (active_templates_.empty()) {
    return Status::InvalidArgument("no templates for configured task");
  }
  const ProgramTemplate& tmpl =
      active_templates_[rng_->WeightedIndex(template_weights_)];

  // Choose the pipeline for this sample up front (Figure 3): plain
  // table-only generation, table splitting, or table expansion.
  bool want_hybrid = rng_->Bernoulli(config_.hybrid_fraction);
  bool can_expand =
      config_.use_text_to_table && !input.paragraph.empty();
  bool can_split =
      config_.use_table_to_text && input.table.num_rows() >= 2;

  // --- Table expansion: integrate text into the table, then program it.
  if (want_hybrid && can_expand && (rng_->Bernoulli(0.5) || !can_split)) {
    UCTR_ASSIGN_OR_RETURN(
        hybrid::ExtractedRecord record,
        text_to_table_.ExtractRecord(input.table, input.paragraph));
    bool merged = input.table.RowIndexByName(record.row_name).ok();
    UCTR_ASSIGN_OR_RETURN(Table expanded,
                          text_to_table_.Expand(input.table, record));
    size_t new_row = merged
                         ? expanded.RowIndexByName(record.row_name)
                               .ValueOr(expanded.num_rows() - 1)
                         : expanded.num_rows() - 1;
    UCTR_ASSIGN_OR_RETURN(SampledProgram sp, SampleProgram(expanded, tmpl));
    // The sample must actually need the textual evidence.
    if (std::find(sp.result.evidence_rows.begin(),
                  sp.result.evidence_rows.end(),
                  new_row) == sp.result.evidence_rows.end()) {
      return Status::EmptyResult(
          "expanded row not involved in the reasoning");
    }
    UCTR_ASSIGN_OR_RETURN(std::string sentence,
                          nl_generator_.Generate(sp.program, rng_));
    Sample sample;
    sample.task = config_.task;
    sample.table = input.table;       // original table...
    sample.paragraph = input.paragraph;  // ...plus original text (Alg. 1)
    sample.sentence = std::move(sentence);
    sample.program = sp.program;
    sample.reasoning_type = sp.reasoning_type;
    sample.source = EvidenceSource::kTableExpand;
    sample.evidence_rows = sp.result.evidence_rows;
    sample.answer_values = sp.result.values;
    sample.answer = sp.result.ToDisplayString();
    if (config_.task == TaskType::kFactVerification) {
      sample.label = sp.result.scalar().boolean() ? Label::kSupported
                                                  : Label::kRefuted;
    }
    return sample;
  }

  // --- Program over the full table (shared by table-only and splitting).
  UCTR_ASSIGN_OR_RETURN(SampledProgram sp, SampleProgram(input.table, tmpl));
  UCTR_ASSIGN_OR_RETURN(std::string sentence,
                        nl_generator_.Generate(sp.program, rng_));

  Sample sample;
  sample.task = config_.task;
  sample.sentence = std::move(sentence);
  sample.program = sp.program;
  sample.reasoning_type = sp.reasoning_type;
  sample.evidence_rows = sp.result.evidence_rows;
  sample.answer_values = sp.result.values;
  sample.answer = sp.result.ToDisplayString();
  if (config_.task == TaskType::kFactVerification) {
    sample.label = sp.result.scalar().boolean() ? Label::kSupported
                                                : Label::kRefuted;
  }

  // --- Table splitting: move one evidence row into a generated sentence.
  if (want_hybrid && can_split && !sp.result.evidence_rows.empty() &&
      sp.result.evidence_rows.size() < input.table.num_rows()) {
    auto split = table_to_text_.ApplyToEvidence(
        input.table, sp.result.evidence_rows, rng_);
    if (split.ok()) {
      sample.table = split->sub_table;
      sample.paragraph = {split->sentence};
      // If the program's entire evidence was the split row, the sample is
      // answerable from the text alone ("Text" bucket of Table III);
      // otherwise it genuinely needs both modalities.
      bool all_evidence_in_text = sp.result.evidence_rows.size() == 1 &&
                                  sp.result.evidence_rows[0] ==
                                      split->source_row;
      sample.source = all_evidence_in_text ? EvidenceSource::kTextOnly
                                           : EvidenceSource::kTableSplit;
      return sample;
    }
  }

  sample.table = input.table;
  sample.paragraph = input.paragraph;
  sample.source = EvidenceSource::kTableOnly;
  return sample;
}

std::vector<Sample> Generator::GenerateFromTable(const TableWithText& input) {
  std::vector<Sample> out;
  std::set<std::string> seen_sentences;
  for (size_t i = 0; i < config_.samples_per_table; ++i) {
    for (size_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
      Result<Sample> r = TryGenerate(input);
      if (!r.ok()) continue;
      if (!seen_sentences.insert(r->sentence).second) continue;  // dup
      out.push_back(std::move(r).ValueOrDie());
      break;
    }
  }
  return out;
}

void AppendUnknownSamples(const std::vector<TableWithText>& corpus,
                          double fraction, Rng* rng, Dataset* dataset) {
  if (fraction <= 0 || corpus.size() < 2 || dataset->samples.empty()) {
    return;
  }
  size_t base = dataset->samples.size();
  size_t want = static_cast<size_t>(static_cast<double>(base) * fraction);
  for (size_t i = 0; i < want; ++i) {
    const Sample& donor = dataset->samples[rng->Index(base)];
    if (donor.task != TaskType::kFactVerification) continue;
    const TableWithText& other = corpus[rng->Index(corpus.size())];
    // The swapped-in table must come from a different schema family:
    // a same-topic table would often make the claim merely false
    // (Refuted) rather than unverifiable (Unknown).
    if (other.table.name() == donor.table.name()) continue;
    if (donor.table.num_columns() > 0 && other.table.num_columns() > 0 &&
        EqualsIgnoreCase(other.table.schema().column(0).name,
                         donor.table.schema().column(0).name)) {
      continue;
    }
    Sample unknown = donor;
    unknown.table = other.table;
    unknown.paragraph = other.paragraph;
    unknown.label = Label::kUnknown;
    unknown.source = EvidenceSource::kTableOnly;
    unknown.evidence_rows.clear();
    dataset->samples.push_back(std::move(unknown));
  }
}

Dataset Generator::GenerateDataset(const std::vector<TableWithText>& corpus) {
  Dataset dataset;
  for (const TableWithText& input : corpus) {
    std::vector<Sample> generated = GenerateFromTable(input);
    for (Sample& s : generated) dataset.samples.push_back(std::move(s));
  }
  // Unknown / NEI samples: pair a claim with an unrelated table so the
  // evidence is insufficient (fact verification only).
  if (config_.task == TaskType::kFactVerification) {
    AppendUnknownSamples(corpus, config_.unknown_fraction, rng_, &dataset);
  }
  return dataset;
}

}  // namespace uctr
