#include "gen/generator.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/string_util.h"
#include "fault/fault.h"

namespace uctr {

namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Generator::Generator(GenerationConfig config, const TemplateLibrary* library,
                     Rng* rng)
    : config_(std::move(config)),
      library_(library),
      rng_(rng),
      sampler_(rng),
      nl_generator_(config_.nl, config_.lexicon != nullptr
                                    ? config_.lexicon
                                    : &nlgen::Lexicon::Default()),
      tracer_(&obs::Tracer::Default()) {
  for (ProgramType type : config_.program_types) {
    for (auto& tmpl : library_->OfType(type)) {
      auto it = config_.reasoning_weights.find(tmpl.reasoning_type);
      template_weights_.push_back(
          it == config_.reasoning_weights.end() ? 1.0 : it->second);
      active_templates_.push_back(std::move(tmpl));
    }
  }

  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  inst_.attempts = registry.counter("gen_attempts_total");
  inst_.emitted = registry.counter("gen_samples_total");
  inst_.duplicates =
      registry.counter("gen_discards_total{reason=\"Duplicate\"}");
  inst_.exhausted = registry.counter("gen_slots_exhausted_total");
  inst_.quarantined = registry.counter("gen_templates_quarantined_total");
  inst_.sample_us = registry.histogram("latency_gen_sample_us");
  inst_.table_us = registry.histogram("latency_gen_table_us");
  inst_.template_attempts.reserve(active_templates_.size());
  for (const ProgramTemplate& tmpl : active_templates_) {
    inst_.template_attempts.push_back(registry.counter(
        "gen_template_attempts_total{reasoning_type=\"" +
        tmpl.reasoning_type + "\"}"));
  }
  // One discard counter per Status code; indexed by the code's numeric
  // value so a failed attempt is a single array lookup + relaxed add.
  constexpr int kNumCodes =
      static_cast<int>(StatusCode::kDeadlineExceeded) + 1;
  inst_.discards_by_code.reserve(kNumCodes);
  for (int code = 0; code < kNumCodes; ++code) {
    inst_.discards_by_code.push_back(registry.counter(
        std::string("gen_discards_total{reason=\"") +
        StatusCodeToString(static_cast<StatusCode>(code)) + "\"}"));
  }
}

Result<SampledProgram> Generator::SampleProgram(const Table& table,
                                                const ProgramTemplate& tmpl) {
  obs::Span span = tracer_->StartSpan("gen.program");
  if (config_.task == TaskType::kFactVerification) {
    if (tmpl.type != ProgramType::kLogicalForm) {
      return Status::InvalidArgument(
          "fact verification requires logical-form templates");
    }
    bool target_true = rng_->Bernoulli(config_.supported_fraction);
    return sampler_.SampleClaim(tmpl, table, target_true);
  }
  if (tmpl.type == ProgramType::kLogicalForm) {
    return Status::InvalidArgument(
        "question answering uses SQL / arithmetic programs");
  }
  return sampler_.Sample(tmpl, table);
}

Result<std::string> Generator::RealizeSentence(const Program& program) {
  obs::Span span = tracer_->StartSpan("gen.nl");
  return nl_generator_.Generate(program, rng_);
}

Result<Sample> Generator::TryGenerate(const TableWithText& input,
                                      const std::vector<char>& quarantined,
                                      size_t* used_template) {
  if (active_templates_.empty()) {
    return Status::InvalidArgument("no templates for configured task");
  }
  size_t tmpl_index;
  bool any_quarantined =
      std::find(quarantined.begin(), quarantined.end(),
                static_cast<char>(1)) != quarantined.end();
  if (!any_quarantined) {
    tmpl_index = rng_->WeightedIndex(template_weights_);
  } else {
    // Mask poisoned templates out of the draw. Only taken once something
    // is actually quarantined, so the healthy path consumes the exact
    // same rng sequence as builds without quarantine.
    std::vector<double> masked = template_weights_;
    for (size_t t = 0; t < masked.size(); ++t) {
      if (quarantined[t]) masked[t] = 0.0;
    }
    tmpl_index = rng_->WeightedIndex(masked);
  }
  if (used_template != nullptr) *used_template = tmpl_index;
  const ProgramTemplate& tmpl = active_templates_[tmpl_index];
  inst_.attempts->Increment();
  inst_.template_attempts[tmpl_index]->Increment();
  obs::Span attempt_span = tracer_->StartSpan("gen.attempt");
  attempt_span.AddAttr("reasoning_type", tmpl.reasoning_type);
  // Chaos hook: an injected fault here stands in for a crashing template
  // executor; it is discarded (and quarantine-counted) like any organic
  // failure of this template.
  UCTR_RETURN_NOT_OK(UCTR_FAULT_POINT("gen.attempt"));

  // Choose the pipeline for this sample up front (Figure 3): plain
  // table-only generation, table splitting, or table expansion.
  bool want_hybrid = rng_->Bernoulli(config_.hybrid_fraction);
  bool can_expand =
      config_.use_text_to_table && !input.paragraph.empty();
  bool can_split =
      config_.use_table_to_text && input.table.num_rows() >= 2;

  // --- Table expansion: integrate text into the table, then program it.
  if (want_hybrid && can_expand && (rng_->Bernoulli(0.5) || !can_split)) {
    obs::Span expand_span = tracer_->StartSpan("gen.table_expand");
    UCTR_ASSIGN_OR_RETURN(
        hybrid::ExtractedRecord record,
        text_to_table_.ExtractRecord(input.table, input.paragraph));
    bool merged = input.table.RowIndexByName(record.row_name).ok();
    UCTR_ASSIGN_OR_RETURN(Table expanded,
                          text_to_table_.Expand(input.table, record));
    size_t new_row = merged
                         ? expanded.RowIndexByName(record.row_name)
                               .ValueOr(expanded.num_rows() - 1)
                         : expanded.num_rows() - 1;
    UCTR_ASSIGN_OR_RETURN(SampledProgram sp, SampleProgram(expanded, tmpl));
    // The sample must actually need the textual evidence.
    if (std::find(sp.result.evidence_rows.begin(),
                  sp.result.evidence_rows.end(),
                  new_row) == sp.result.evidence_rows.end()) {
      return Status::EmptyResult(
          "expanded row not involved in the reasoning");
    }
    UCTR_ASSIGN_OR_RETURN(std::string sentence, RealizeSentence(sp.program));
    Sample sample;
    sample.task = config_.task;
    sample.table = input.table;       // original table...
    sample.paragraph = input.paragraph;  // ...plus original text (Alg. 1)
    sample.sentence = std::move(sentence);
    sample.program = sp.program;
    sample.reasoning_type = sp.reasoning_type;
    sample.source = EvidenceSource::kTableExpand;
    sample.evidence_rows = sp.result.evidence_rows;
    sample.answer_values = sp.result.values;
    sample.answer = sp.result.ToDisplayString();
    if (config_.task == TaskType::kFactVerification) {
      sample.label = sp.result.scalar().boolean() ? Label::kSupported
                                                  : Label::kRefuted;
    }
    return sample;
  }

  // --- Program over the full table (shared by table-only and splitting).
  UCTR_ASSIGN_OR_RETURN(SampledProgram sp, SampleProgram(input.table, tmpl));
  UCTR_ASSIGN_OR_RETURN(std::string sentence, RealizeSentence(sp.program));

  Sample sample;
  sample.task = config_.task;
  sample.sentence = std::move(sentence);
  sample.program = sp.program;
  sample.reasoning_type = sp.reasoning_type;
  sample.evidence_rows = sp.result.evidence_rows;
  sample.answer_values = sp.result.values;
  sample.answer = sp.result.ToDisplayString();
  if (config_.task == TaskType::kFactVerification) {
    sample.label = sp.result.scalar().boolean() ? Label::kSupported
                                                : Label::kRefuted;
  }

  // --- Table splitting: move one evidence row into a generated sentence.
  if (want_hybrid && can_split && !sp.result.evidence_rows.empty() &&
      sp.result.evidence_rows.size() < input.table.num_rows()) {
    obs::Span split_span = tracer_->StartSpan("gen.table_split");
    auto split = table_to_text_.ApplyToEvidence(
        input.table, sp.result.evidence_rows, rng_);
    if (split.ok()) {
      sample.table = split->sub_table;
      sample.paragraph = {split->sentence};
      // If the program's entire evidence was the split row, the sample is
      // answerable from the text alone ("Text" bucket of Table III);
      // otherwise it genuinely needs both modalities.
      bool all_evidence_in_text = sp.result.evidence_rows.size() == 1 &&
                                  sp.result.evidence_rows[0] ==
                                      split->source_row;
      sample.source = all_evidence_in_text ? EvidenceSource::kTextOnly
                                           : EvidenceSource::kTableSplit;
      return sample;
    }
  }

  sample.table = input.table;
  sample.paragraph = input.paragraph;
  sample.source = EvidenceSource::kTableOnly;
  return sample;
}

std::vector<Sample> Generator::GenerateFromTable(const TableWithText& input) {
  obs::Span table_span = tracer_->StartSpan("gen.table");
  auto table_started = std::chrono::steady_clock::now();
  std::vector<Sample> out;
  std::set<std::string> seen_sentences;
  // Poison-template quarantine bookkeeping (see
  // GenerationConfig::quarantine_after). Empty vectors when disabled.
  std::vector<char> quarantined(
      config_.quarantine_after > 0 ? active_templates_.size() : 0, 0);
  std::vector<size_t> consecutive_failures(quarantined.size(), 0);
  size_t num_quarantined = 0;
  for (size_t i = 0; i < config_.samples_per_table; ++i) {
    auto slot_started = std::chrono::steady_clock::now();
    bool emitted = false;
    for (size_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
      if (!quarantined.empty() && num_quarantined == quarantined.size()) {
        break;  // every template is poisoned for this table
      }
      size_t used_template = 0;
      Result<Sample> r = TryGenerate(input, quarantined, &used_template);
      if (!r.ok()) {
        size_t code = static_cast<size_t>(r.status().code());
        if (code < inst_.discards_by_code.size()) {
          inst_.discards_by_code[code]->Increment();
        }
        if (!quarantined.empty() && !quarantined[used_template] &&
            ++consecutive_failures[used_template] >=
                config_.quarantine_after) {
          quarantined[used_template] = 1;
          ++num_quarantined;
          inst_.quarantined->Increment();
        }
        continue;
      }
      // A successful attempt clears the template's failure streak — even
      // if the sentence turns out to be a duplicate (duplication is a
      // diversity problem, not a poison signal).
      if (!quarantined.empty()) consecutive_failures[used_template] = 0;
      if (!seen_sentences.insert(r->sentence).second) {  // dup
        inst_.duplicates->Increment();
        continue;
      }
      out.push_back(std::move(r).ValueOrDie());
      inst_.emitted->Increment();
      inst_.sample_us->Observe(MicrosSince(slot_started));
      emitted = true;
      break;
    }
    if (!emitted) inst_.exhausted->Increment();
  }
  inst_.table_us->Observe(MicrosSince(table_started));
  table_span.AddAttr("samples", std::to_string(out.size()));
  return out;
}

void AppendUnknownSamples(const std::vector<TableWithText>& corpus,
                          double fraction, Rng* rng, Dataset* dataset) {
  if (fraction <= 0 || corpus.size() < 2 || dataset->samples.empty()) {
    return;
  }
  size_t base = dataset->samples.size();
  size_t want = static_cast<size_t>(static_cast<double>(base) * fraction);
  for (size_t i = 0; i < want; ++i) {
    const Sample& donor = dataset->samples[rng->Index(base)];
    if (donor.task != TaskType::kFactVerification) continue;
    const TableWithText& other = corpus[rng->Index(corpus.size())];
    // The swapped-in table must come from a different schema family:
    // a same-topic table would often make the claim merely false
    // (Refuted) rather than unverifiable (Unknown).
    if (other.table.name() == donor.table.name()) continue;
    if (donor.table.num_columns() > 0 && other.table.num_columns() > 0 &&
        EqualsIgnoreCase(other.table.schema().column(0).name,
                         donor.table.schema().column(0).name)) {
      continue;
    }
    Sample unknown = donor;
    unknown.table = other.table;
    unknown.paragraph = other.paragraph;
    unknown.label = Label::kUnknown;
    unknown.source = EvidenceSource::kTableOnly;
    unknown.evidence_rows.clear();
    dataset->samples.push_back(std::move(unknown));
  }
}

Dataset Generator::GenerateDataset(const std::vector<TableWithText>& corpus) {
  Dataset dataset;
  for (const TableWithText& input : corpus) {
    std::vector<Sample> generated = GenerateFromTable(input);
    for (Sample& s : generated) dataset.samples.push_back(std::move(s));
  }
  // Unknown / NEI samples: pair a claim with an unrelated table so the
  // evidence is insufficient (fact verification only).
  if (config_.task == TaskType::kFactVerification) {
    AppendUnknownSamples(corpus, config_.unknown_fraction, rng_, &dataset);
  }
  return dataset;
}

}  // namespace uctr
