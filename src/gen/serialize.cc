#include "gen/serialize.h"

#include <cstdio>
#include <map>
#include <variant>
#include <vector>

#include "common/json.h"
#include "common/string_util.h"

namespace uctr {

std::string JsonQuote(std::string_view text) { return json::Quote(text); }

std::string SampleToJson(const Sample& sample) {
  std::string out = "{";
  out += "\"task\":" + JsonQuote(TaskTypeToString(sample.task));
  out += ",\"sentence\":" + JsonQuote(sample.sentence);
  if (sample.task == TaskType::kFactVerification) {
    out += ",\"label\":" + JsonQuote(LabelToString(sample.label));
  } else {
    out += ",\"answer\":" + JsonQuote(sample.answer);
  }
  out += ",\"table\":" + JsonQuote(sample.table.ToCsv());
  out += ",\"table_name\":" + JsonQuote(sample.table.name());
  out += ",\"paragraph\":[";
  for (size_t i = 0; i < sample.paragraph.size(); ++i) {
    if (i > 0) out += ',';
    out += JsonQuote(sample.paragraph[i]);
  }
  out += "]";
  out += ",\"program\":{\"type\":" +
         JsonQuote(ProgramTypeToString(sample.program.type)) +
         ",\"text\":" + JsonQuote(sample.program.text) + "}";
  out += ",\"reasoning_type\":" + JsonQuote(sample.reasoning_type);
  out += ",\"source\":" + JsonQuote(EvidenceSourceToString(sample.source));
  out += ",\"evidence_rows\":[";
  for (size_t i = 0; i < sample.evidence_rows.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(sample.evidence_rows[i]);
  }
  out += "]";
  // Emitted only when set, so pre-weight datasets (and every generator
  // output, which always uses 1.0) round-trip byte-identically.
  if (sample.weight != 1.0) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), ",\"weight\":%.17g", sample.weight);
    out += buf;
  }
  out += "}";
  return out;
}

std::string DatasetToJsonl(const Dataset& dataset) {
  std::string out;
  for (const Sample& s : dataset.samples) {
    out += SampleToJson(s);
    out += '\n';
  }
  return out;
}

Result<Sample> SampleFromJson(std::string_view json_text) {
  UCTR_ASSIGN_OR_RETURN(json::Value root, json::Parse(json_text));
  if (!root.is_object()) return Status::ParseError("expected JSON object");
  const auto& obj = std::get<json::Value::Object>(root.repr);

  // Reject unknown fields: this is a fixed data format.
  for (const auto& [key, value] : obj) {
    if (key != "task" && key != "sentence" && key != "label" &&
        key != "answer" && key != "table" && key != "table_name" &&
        key != "paragraph" && key != "program" && key != "reasoning_type" &&
        key != "source" && key != "evidence_rows" && key != "weight") {
      return Status::ParseError("unknown field '" + key + "'");
    }
  }

  Sample sample;
  UCTR_ASSIGN_OR_RETURN(std::string task, json::GetString(obj, "task"));
  if (task == "fact_verification") {
    sample.task = TaskType::kFactVerification;
    UCTR_ASSIGN_OR_RETURN(std::string label, json::GetString(obj, "label"));
    if (label == "Supported") sample.label = Label::kSupported;
    else if (label == "Refuted") sample.label = Label::kRefuted;
    else if (label == "Unknown") sample.label = Label::kUnknown;
    else return Status::ParseError("bad label '" + label + "'");
  } else if (task == "question_answering") {
    sample.task = TaskType::kQuestionAnswering;
    UCTR_ASSIGN_OR_RETURN(sample.answer, json::GetString(obj, "answer"));
  } else {
    return Status::ParseError("bad task '" + task + "'");
  }

  UCTR_ASSIGN_OR_RETURN(sample.sentence, json::GetString(obj, "sentence"));
  UCTR_ASSIGN_OR_RETURN(std::string csv, json::GetString(obj, "table"));
  std::string name = "table";
  if (auto n = json::GetString(obj, "table_name"); n.ok()) {
    name = n.ValueOrDie();
  }
  UCTR_ASSIGN_OR_RETURN(sample.table, Table::FromCsv(csv, name));

  if (auto it = obj.find("paragraph");
      it != obj.end() && it->second.is_array()) {
    for (const auto& entry : std::get<json::Value::Array>(it->second.repr)) {
      if (!entry.is_string()) {
        return Status::ParseError("paragraph entries must be strings");
      }
      sample.paragraph.push_back(std::get<std::string>(entry.repr));
    }
  }

  if (auto it = obj.find("program");
      it != obj.end() && it->second.is_object()) {
    const auto& prog = std::get<json::Value::Object>(it->second.repr);
    UCTR_ASSIGN_OR_RETURN(std::string type, json::GetString(prog, "type"));
    if (type == "sql") sample.program.type = ProgramType::kSql;
    else if (type == "logical_form") {
      sample.program.type = ProgramType::kLogicalForm;
    } else if (type == "arithmetic") {
      sample.program.type = ProgramType::kArithmetic;
    } else {
      return Status::ParseError("bad program type '" + type + "'");
    }
    UCTR_ASSIGN_OR_RETURN(sample.program.text, json::GetString(prog, "text"));
  }

  if (auto r = json::GetString(obj, "reasoning_type"); r.ok()) {
    sample.reasoning_type = r.ValueOrDie();
  }
  if (auto s = json::GetString(obj, "source"); s.ok()) {
    const std::string& source = s.ValueOrDie();
    if (source == "table_only") sample.source = EvidenceSource::kTableOnly;
    else if (source == "table_split") {
      sample.source = EvidenceSource::kTableSplit;
    } else if (source == "table_expand") {
      sample.source = EvidenceSource::kTableExpand;
    } else if (source == "text_only") {
      sample.source = EvidenceSource::kTextOnly;
    } else {
      return Status::ParseError("bad source '" + source + "'");
    }
  }
  if (auto it = obj.find("evidence_rows");
      it != obj.end() && it->second.is_array()) {
    for (const auto& entry : std::get<json::Value::Array>(it->second.repr)) {
      if (!entry.is_number()) {
        return Status::ParseError("evidence rows must be numbers");
      }
      sample.evidence_rows.push_back(
          static_cast<size_t>(std::get<double>(entry.repr)));
    }
  }
  if (auto it = obj.find("weight"); it != obj.end()) {
    if (!it->second.is_number()) {
      return Status::ParseError("weight must be a number");
    }
    sample.weight = std::get<double>(it->second.repr);
  }
  return sample;
}

Result<Dataset> DatasetFromJsonl(std::string_view jsonl) {
  Dataset dataset;
  for (const std::string& line : Split(jsonl, '\n')) {
    if (Trim(line).empty()) continue;
    UCTR_ASSIGN_OR_RETURN(Sample sample, SampleFromJson(line));
    dataset.samples.push_back(std::move(sample));
  }
  return dataset;
}

}  // namespace uctr
