#include "gen/serialize.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <variant>
#include <vector>

#include "common/numeric.h"
#include "common/string_util.h"

namespace uctr {

std::string JsonQuote(std::string_view text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string SampleToJson(const Sample& sample) {
  std::string out = "{";
  out += "\"task\":" + JsonQuote(TaskTypeToString(sample.task));
  out += ",\"sentence\":" + JsonQuote(sample.sentence);
  if (sample.task == TaskType::kFactVerification) {
    out += ",\"label\":" + JsonQuote(LabelToString(sample.label));
  } else {
    out += ",\"answer\":" + JsonQuote(sample.answer);
  }
  out += ",\"table\":" + JsonQuote(sample.table.ToCsv());
  out += ",\"table_name\":" + JsonQuote(sample.table.name());
  out += ",\"paragraph\":[";
  for (size_t i = 0; i < sample.paragraph.size(); ++i) {
    if (i > 0) out += ',';
    out += JsonQuote(sample.paragraph[i]);
  }
  out += "]";
  out += ",\"program\":{\"type\":" +
         JsonQuote(ProgramTypeToString(sample.program.type)) +
         ",\"text\":" + JsonQuote(sample.program.text) + "}";
  out += ",\"reasoning_type\":" + JsonQuote(sample.reasoning_type);
  out += ",\"source\":" + JsonQuote(EvidenceSourceToString(sample.source));
  out += ",\"evidence_rows\":[";
  for (size_t i = 0; i < sample.evidence_rows.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(sample.evidence_rows[i]);
  }
  out += "]}";
  return out;
}

std::string DatasetToJsonl(const Dataset& dataset) {
  std::string out;
  for (const Sample& s : dataset.samples) {
    out += SampleToJson(s);
    out += '\n';
  }
  return out;
}

namespace {

/// Minimal JSON reader for the subset this library writes: objects,
/// arrays, strings, and non-negative integers.
class JsonReader {
 public:
  struct Value;
  using Object = std::map<std::string, Value>;
  using Array = std::vector<Value>;
  struct Value {
    std::variant<std::string, double, Object, Array> repr;

    bool is_string() const {
      return std::holds_alternative<std::string>(repr);
    }
    bool is_number() const { return std::holds_alternative<double>(repr); }
    bool is_object() const { return std::holds_alternative<Object>(repr); }
    bool is_array() const { return std::holds_alternative<Array>(repr); }
  };

  explicit JsonReader(std::string_view text) : text_(text) {}

  Result<Value> Parse() {
    UCTR_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing JSON content");
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<Value> ParseValue() {
    // Depth guard against adversarial nesting (the format itself nests at
    // most two levels).
    if (depth_ > 32) return Status::ParseError("JSON nested too deeply");
    SkipSpace();
    if (pos_ >= text_.size()) return Status::ParseError("unexpected end");
    char c = text_[pos_];
    if (c == '{') {
      ++depth_;
      auto r = ParseObject();
      --depth_;
      return r;
    }
    if (c == '[') {
      ++depth_;
      auto r = ParseArray();
      --depth_;
      return r;
    }
    if (c == '"') {
      UCTR_ASSIGN_OR_RETURN(std::string s, ParseString());
      Value v;
      v.repr = std::move(s);
      return v;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E' || text_[pos_] == '+' ||
              text_[pos_] == '-')) {
        ++pos_;
      }
      auto number = ParseNumber(text_.substr(start, pos_ - start));
      if (!number) {
        return Status::ParseError("malformed JSON number");
      }
      Value v;
      v.repr = *number;
      return v;
    }
    return Status::ParseError("unsupported JSON token at offset " +
                              std::to_string(pos_));
  }

  Result<std::string> ParseString() {
    if (text_[pos_] != '"') return Status::ParseError("expected string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) {
              return Status::ParseError("bad \\u escape");
            }
            int code = 0;
            for (size_t k = 1; k <= 4; ++k) {
              char h = text_[pos_ + k];
              int digit;
              if (h >= '0' && h <= '9') digit = h - '0';
              else if (h >= 'a' && h <= 'f') digit = h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') digit = h - 'A' + 10;
              else return Status::ParseError("bad \\u escape digit");
              code = code * 16 + digit;
            }
            out += static_cast<char>(code);  // control chars only
            pos_ += 4;
            break;
          }
          default:
            return Status::ParseError("unknown escape");
        }
        ++pos_;
      } else {
        out += c;
        ++pos_;
      }
    }
    return Status::ParseError("unterminated string");
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Object obj;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      Value v;
      v.repr = std::move(obj);
      return v;
    }
    while (true) {
      SkipSpace();
      UCTR_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Status::ParseError("expected ':'");
      }
      ++pos_;
      UCTR_ASSIGN_OR_RETURN(Value value, ParseValue());
      obj.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Status::ParseError("unterminated {");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        Value v;
        v.repr = std::move(obj);
        return v;
      }
      return Status::ParseError("expected ',' or '}'");
    }
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Array arr;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      Value v;
      v.repr = std::move(arr);
      return v;
    }
    while (true) {
      UCTR_ASSIGN_OR_RETURN(Value value, ParseValue());
      arr.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Status::ParseError("unterminated [");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        Value v;
        v.repr = std::move(arr);
        return v;
      }
      return Status::ParseError("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

Result<std::string> GetString(const JsonReader::Object& obj,
                              const std::string& key) {
  auto it = obj.find(key);
  if (it == obj.end() || !it->second.is_string()) {
    return Status::ParseError("missing string field '" + key + "'");
  }
  return std::get<std::string>(it->second.repr);
}

}  // namespace

Result<Sample> SampleFromJson(std::string_view json) {
  JsonReader reader(json);
  UCTR_ASSIGN_OR_RETURN(JsonReader::Value root, reader.Parse());
  if (!root.is_object()) return Status::ParseError("expected JSON object");
  const auto& obj = std::get<JsonReader::Object>(root.repr);

  // Reject unknown fields: this is a fixed data format.
  for (const auto& [key, value] : obj) {
    if (key != "task" && key != "sentence" && key != "label" &&
        key != "answer" && key != "table" && key != "table_name" &&
        key != "paragraph" && key != "program" && key != "reasoning_type" &&
        key != "source" && key != "evidence_rows") {
      return Status::ParseError("unknown field '" + key + "'");
    }
  }

  Sample sample;
  UCTR_ASSIGN_OR_RETURN(std::string task, GetString(obj, "task"));
  if (task == "fact_verification") {
    sample.task = TaskType::kFactVerification;
    UCTR_ASSIGN_OR_RETURN(std::string label, GetString(obj, "label"));
    if (label == "Supported") sample.label = Label::kSupported;
    else if (label == "Refuted") sample.label = Label::kRefuted;
    else if (label == "Unknown") sample.label = Label::kUnknown;
    else return Status::ParseError("bad label '" + label + "'");
  } else if (task == "question_answering") {
    sample.task = TaskType::kQuestionAnswering;
    UCTR_ASSIGN_OR_RETURN(sample.answer, GetString(obj, "answer"));
  } else {
    return Status::ParseError("bad task '" + task + "'");
  }

  UCTR_ASSIGN_OR_RETURN(sample.sentence, GetString(obj, "sentence"));
  UCTR_ASSIGN_OR_RETURN(std::string csv, GetString(obj, "table"));
  std::string name = "table";
  if (auto n = GetString(obj, "table_name"); n.ok()) {
    name = n.ValueOrDie();
  }
  UCTR_ASSIGN_OR_RETURN(sample.table, Table::FromCsv(csv, name));

  if (auto it = obj.find("paragraph");
      it != obj.end() && it->second.is_array()) {
    for (const auto& entry : std::get<JsonReader::Array>(it->second.repr)) {
      if (!entry.is_string()) {
        return Status::ParseError("paragraph entries must be strings");
      }
      sample.paragraph.push_back(std::get<std::string>(entry.repr));
    }
  }

  if (auto it = obj.find("program");
      it != obj.end() && it->second.is_object()) {
    const auto& prog = std::get<JsonReader::Object>(it->second.repr);
    UCTR_ASSIGN_OR_RETURN(std::string type, GetString(prog, "type"));
    if (type == "sql") sample.program.type = ProgramType::kSql;
    else if (type == "logical_form") {
      sample.program.type = ProgramType::kLogicalForm;
    } else if (type == "arithmetic") {
      sample.program.type = ProgramType::kArithmetic;
    } else {
      return Status::ParseError("bad program type '" + type + "'");
    }
    UCTR_ASSIGN_OR_RETURN(sample.program.text, GetString(prog, "text"));
  }

  if (auto r = GetString(obj, "reasoning_type"); r.ok()) {
    sample.reasoning_type = r.ValueOrDie();
  }
  if (auto s = GetString(obj, "source"); s.ok()) {
    const std::string& source = s.ValueOrDie();
    if (source == "table_only") sample.source = EvidenceSource::kTableOnly;
    else if (source == "table_split") {
      sample.source = EvidenceSource::kTableSplit;
    } else if (source == "table_expand") {
      sample.source = EvidenceSource::kTableExpand;
    } else if (source == "text_only") {
      sample.source = EvidenceSource::kTextOnly;
    } else {
      return Status::ParseError("bad source '" + source + "'");
    }
  }
  if (auto it = obj.find("evidence_rows");
      it != obj.end() && it->second.is_array()) {
    for (const auto& entry : std::get<JsonReader::Array>(it->second.repr)) {
      if (!entry.is_number()) {
        return Status::ParseError("evidence rows must be numbers");
      }
      sample.evidence_rows.push_back(
          static_cast<size_t>(std::get<double>(entry.repr)));
    }
  }
  return sample;
}

Result<Dataset> DatasetFromJsonl(std::string_view jsonl) {
  Dataset dataset;
  for (const std::string& line : Split(jsonl, '\n')) {
    if (Trim(line).empty()) continue;
    UCTR_ASSIGN_OR_RETURN(Sample sample, SampleFromJson(line));
    dataset.samples.push_back(std::move(sample));
  }
  return dataset;
}

}  // namespace uctr
