#include "gen/sample.h"

#include <map>

namespace uctr {

const char* TaskTypeToString(TaskType task) {
  switch (task) {
    case TaskType::kFactVerification:
      return "fact_verification";
    case TaskType::kQuestionAnswering:
      return "question_answering";
  }
  return "unknown";
}

const char* LabelToString(Label label) {
  switch (label) {
    case Label::kSupported:
      return "Supported";
    case Label::kRefuted:
      return "Refuted";
    case Label::kUnknown:
      return "Unknown";
  }
  return "?";
}

const char* EvidenceSourceToString(EvidenceSource source) {
  switch (source) {
    case EvidenceSource::kTableOnly:
      return "table_only";
    case EvidenceSource::kTableSplit:
      return "table_split";
    case EvidenceSource::kTableExpand:
      return "table_expand";
    case EvidenceSource::kTextOnly:
      return "text_only";
  }
  return "?";
}

size_t Dataset::CountLabel(Label label) const {
  size_t n = 0;
  for (const Sample& s : samples) {
    if (s.task == TaskType::kFactVerification && s.label == label) ++n;
  }
  return n;
}

size_t Dataset::CountSource(EvidenceSource source) const {
  size_t n = 0;
  for (const Sample& s : samples) {
    if (s.source == source) ++n;
  }
  return n;
}

size_t Dataset::CountReasoningType(const std::string& tag) const {
  size_t n = 0;
  for (const Sample& s : samples) {
    if (s.reasoning_type == tag) ++n;
  }
  return n;
}

std::string Dataset::Summary() const {
  std::string out = "samples: " + std::to_string(samples.size()) + "\n";
  std::map<std::string, size_t> by_source, by_reasoning, by_label;
  for (const Sample& s : samples) {
    by_source[EvidenceSourceToString(s.source)]++;
    if (!s.reasoning_type.empty()) by_reasoning[s.reasoning_type]++;
    if (s.task == TaskType::kFactVerification) {
      by_label[LabelToString(s.label)]++;
    }
  }
  out += "by evidence source:\n";
  for (const auto& [k, v] : by_source) {
    out += "  " + k + ": " + std::to_string(v) + "\n";
  }
  if (!by_label.empty()) {
    out += "by label:\n";
    for (const auto& [k, v] : by_label) {
      out += "  " + k + ": " + std::to_string(v) + "\n";
    }
  }
  out += "by reasoning type:\n";
  for (const auto& [k, v] : by_reasoning) {
    out += "  " + k + ": " + std::to_string(v) + "\n";
  }
  return out;
}

}  // namespace uctr
