#ifndef UCTR_GEN_QUALITY_H_
#define UCTR_GEN_QUALITY_H_

#include <map>
#include <string>

#include "gen/sample.h"

namespace uctr {

/// \brief Diversity and balance statistics of a (synthetic) dataset — the
/// quantities behind the paper's claim of "sufficient and diverse
/// synthetic data with complex logic".
struct QualityReport {
  size_t samples = 0;

  /// Distinct sentences / samples (1.0 = no duplicates).
  double distinct_sentence_ratio = 0.0;
  /// Mean sentence length in word tokens.
  double mean_sentence_tokens = 0.0;
  /// Distinct word types / total tokens across all sentences
  /// (lexical diversity; higher = more varied surface forms).
  double type_token_ratio = 0.0;
  /// Shannon entropy (bits) of the reasoning-type distribution
  /// (0 = a single reasoning type, as in MQA-QG data).
  double reasoning_entropy = 0.0;
  /// Fact verification: min(P(Supported), P(Refuted)) / 0.5 in [0,1]
  /// (1 = perfectly balanced labels). 1.0 for QA datasets.
  double label_balance = 1.0;
  /// Share of samples whose evidence involves text (split/expand/text).
  double hybrid_fraction = 0.0;

  std::map<std::string, size_t> reasoning_counts;

  /// \brief Multi-line human-readable rendering.
  std::string ToString() const;
};

/// \brief Computes the report over `dataset`.
QualityReport AnalyzeDataset(const Dataset& dataset);

}  // namespace uctr

#endif  // UCTR_GEN_QUALITY_H_
