#ifndef UCTR_GEN_SERIALIZE_H_
#define UCTR_GEN_SERIALIZE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "gen/sample.h"

namespace uctr {

/// \brief Escapes and quotes a string as a JSON string literal.
std::string JsonQuote(std::string_view text);

/// \brief Serializes one sample as a single-line JSON object with fields
///   task, sentence, label/answer, table (CSV text), paragraph (array),
///   program {type, text}, reasoning_type, source, evidence_rows.
std::string SampleToJson(const Sample& sample);

/// \brief Serializes a dataset as JSON Lines (one sample per line) — the
/// interchange format for feeding the synthetic data to external trainers.
std::string DatasetToJsonl(const Dataset& dataset);

/// \brief Parses a sample back from SampleToJson output. Only the fields
/// this library emits are supported (it is a data format, not a general
/// JSON parser); unknown fields are rejected.
Result<Sample> SampleFromJson(std::string_view json);

/// \brief Parses JSON Lines produced by DatasetToJsonl.
Result<Dataset> DatasetFromJsonl(std::string_view jsonl);

}  // namespace uctr

#endif  // UCTR_GEN_SERIALIZE_H_
