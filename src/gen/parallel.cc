#include "gen/parallel.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace uctr {

Dataset GenerateDatasetParallel(const GenerationConfig& config,
                                const TemplateLibrary* library,
                                const std::vector<TableWithText>& corpus,
                                uint64_t base_seed, size_t num_threads) {
  obs::Span dataset_span = obs::Tracer::Default().StartSpan("gen.dataset");
  auto dataset_started = std::chrono::steady_clock::now();
  std::vector<std::vector<Sample>> per_entry(corpus.size());
  if (num_threads == 0) num_threads = 1;
  num_threads = std::min(num_threads, std::max<size_t>(1, corpus.size()));

  std::atomic<size_t> next_entry{0};
  auto worker = [&] {
    Rng rng;
    while (true) {
      size_t i = next_entry.fetch_add(1);
      if (i >= corpus.size()) return;
      // Per-entry seeding makes the output independent of the thread
      // count and the order entries are claimed.
      rng.Seed(base_seed + i);
      Generator generator(config, library, &rng);
      per_entry[i] = generator.GenerateFromTable(corpus[i]);
    }
  };

  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  Dataset dataset;
  for (std::vector<Sample>& generated : per_entry) {
    for (Sample& s : generated) dataset.samples.push_back(std::move(s));
  }
  if (config.task == TaskType::kFactVerification) {
    Rng post_rng(base_seed ^ 0x9E37ULL);
    AppendUnknownSamples(corpus, config.unknown_fraction, &post_rng,
                         &dataset);
  }
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  registry.counter("gen_datasets_total")->Increment();
  registry.histogram("latency_gen_dataset_us")
      ->Observe(std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - dataset_started)
                    .count());
  dataset_span.AddAttr("tables", std::to_string(corpus.size()));
  dataset_span.AddAttr("samples", std::to_string(dataset.samples.size()));
  dataset_span.AddAttr("threads", std::to_string(num_threads));
  return dataset;
}

}  // namespace uctr
