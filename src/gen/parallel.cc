#include "gen/parallel.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "common/file_util.h"
#include "fault/fault.h"
#include "fault/policy.h"
#include "gen/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uctr {

Dataset GenerateDatasetParallel(const GenerationConfig& config,
                                const TemplateLibrary* library,
                                const std::vector<TableWithText>& corpus,
                                uint64_t base_seed, size_t num_threads) {
  obs::Span dataset_span = obs::Tracer::Default().StartSpan("gen.dataset");
  auto dataset_started = std::chrono::steady_clock::now();
  std::vector<std::vector<Sample>> per_entry(corpus.size());
  if (num_threads == 0) num_threads = 1;
  num_threads = std::min(num_threads, std::max<size_t>(1, corpus.size()));

  std::atomic<size_t> next_entry{0};
  auto worker = [&] {
    Rng rng;
    while (true) {
      size_t i = next_entry.fetch_add(1);
      if (i >= corpus.size()) return;
      // Per-entry seeding makes the output independent of the thread
      // count and the order entries are claimed.
      rng.Seed(base_seed + i);
      Generator generator(config, library, &rng);
      per_entry[i] = generator.GenerateFromTable(corpus[i]);
    }
  };

  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  Dataset dataset;
  for (std::vector<Sample>& generated : per_entry) {
    for (Sample& s : generated) dataset.samples.push_back(std::move(s));
  }
  if (config.task == TaskType::kFactVerification) {
    Rng post_rng(base_seed ^ 0x9E37ULL);
    AppendUnknownSamples(corpus, config.unknown_fraction, &post_rng,
                         &dataset);
  }
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  registry.counter("gen_datasets_total")->Increment();
  registry.histogram("latency_gen_dataset_us")
      ->Observe(std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - dataset_started)
                    .count());
  dataset_span.AddAttr("tables", std::to_string(corpus.size()));
  dataset_span.AddAttr("samples", std::to_string(dataset.samples.size()));
  dataset_span.AddAttr("threads", std::to_string(num_threads));
  return dataset;
}

namespace {

uint64_t Fnv1a(std::string_view text,
               uint64_t hash = 14695981039346656037ull) {
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Fingerprints the corpus content so a checkpoint directory can detect it
/// is being resumed against different inputs.
uint64_t CorpusFingerprint(const std::vector<TableWithText>& corpus) {
  uint64_t hash = Fnv1a("uctr-corpus-v1");
  for (const TableWithText& entry : corpus) {
    hash = Fnv1a(entry.table.name(), hash);
    hash = Fnv1a(entry.table.ToCsv(), hash);
    for (const std::string& sentence : entry.paragraph) {
      hash = Fnv1a(sentence, hash);
    }
  }
  return hash;
}

/// The checkpoint MANIFEST: which shards are durably finished or
/// quarantined, and which (seed, corpus, config, size) the checkpoint
/// belongs to. v2 added the GenerationConfig fingerprint; v1 manifests
/// (no config key) parse but never validate, so pre-config checkpoint
/// directories are refused instead of silently resumed under a possibly
/// different config.
struct Manifest {
  uint64_t seed = 0;
  uint64_t corpus_fingerprint = 0;
  uint64_t config_fingerprint = 0;
  size_t shards = 0;
  std::set<size_t> done;
  std::set<size_t> poisoned;

  std::string Serialize() const {
    std::string out = "uctr-checkpoint v2\n";
    out += "seed " + std::to_string(seed) + "\n";
    out += "corpus " + std::to_string(corpus_fingerprint) + "\n";
    out += "config " + std::to_string(config_fingerprint) + "\n";
    out += "shards " + std::to_string(shards) + "\n";
    for (size_t i : done) out += "done " + std::to_string(i) + "\n";
    for (size_t i : poisoned) out += "poison " + std::to_string(i) + "\n";
    return out;
  }

  static Result<Manifest> Parse(const std::string& text) {
    std::istringstream in(text);
    std::string header;
    if (!std::getline(in, header) ||
        (header != "uctr-checkpoint v1" && header != "uctr-checkpoint v2")) {
      return Status::InvalidArgument("not a uctr checkpoint manifest");
    }
    Manifest m;
    std::string key;
    while (in >> key) {
      uint64_t value = 0;
      if (!(in >> value)) {
        return Status::InvalidArgument("manifest: bad value for '" + key +
                                       "'");
      }
      if (key == "seed") {
        m.seed = value;
      } else if (key == "corpus") {
        m.corpus_fingerprint = value;
      } else if (key == "config") {
        m.config_fingerprint = value;
      } else if (key == "shards") {
        m.shards = static_cast<size_t>(value);
      } else if (key == "done") {
        m.done.insert(static_cast<size_t>(value));
      } else if (key == "poison") {
        m.poisoned.insert(static_cast<size_t>(value));
      } else {
        return Status::InvalidArgument("manifest: unknown key '" + key +
                                       "'");
      }
    }
    return m;
  }
};

}  // namespace

uint64_t GenerationConfigFingerprint(const GenerationConfig& config) {
  // Canonical text rendering of every dataset-shaping knob, hashed. Field
  // names are spelled out so reordering or adding knobs changes the
  // fingerprint only when the serialization here changes with them.
  std::ostringstream canon;
  canon << "uctr-genconfig-v1";
  canon << ";task=" << static_cast<int>(config.task);
  canon << ";programs=";
  for (ProgramType type : config.program_types) {
    canon << static_cast<int>(type) << ",";
  }
  char buf[64];
  auto put_double = [&](const char* name, double value) {
    std::snprintf(buf, sizeof(buf), ";%s=%.17g", name, value);
    canon << buf;
  };
  canon << ";samples_per_table=" << config.samples_per_table;
  canon << ";max_attempts=" << config.max_attempts;
  canon << ";t2t=" << (config.use_table_to_text ? 1 : 0);
  canon << ";tt2=" << (config.use_text_to_table ? 1 : 0);
  put_double("hybrid_fraction", config.hybrid_fraction);
  put_double("supported_fraction", config.supported_fraction);
  put_double("unknown_fraction", config.unknown_fraction);
  canon << ";nl_stochastic=" << (config.nl.stochastic ? 1 : 0);
  put_double("nl_synonym", config.nl.paraphrase.synonym_prob);
  put_double("nl_drop", config.nl.paraphrase.drop_prob);
  put_double("nl_typo", config.nl.paraphrase.typo_prob);
  // The lexicon is a borrowed pointer whose content is opaque here: fold
  // in only whether an override is present (see the header caveat).
  canon << ";lexicon=" << (config.lexicon != nullptr ? 1 : 0);
  canon << ";weights=";
  for (const auto& [tag, weight] : config.reasoning_weights) {
    canon << tag << "=";
    std::snprintf(buf, sizeof(buf), "%.17g,", weight);
    canon << buf;
  }
  canon << ";quarantine_after=" << config.quarantine_after;
  return Fnv1a(canon.str());
}

Result<Dataset> GenerateDatasetCheckpointed(
    const GenerationConfig& config, const TemplateLibrary* library,
    const std::vector<TableWithText>& corpus, uint64_t base_seed,
    size_t num_threads, const CheckpointOptions& checkpoint,
    CheckpointReport* report) {
  namespace fs = std::filesystem;
  obs::Span run_span =
      obs::Tracer::Default().StartSpan("gen.dataset_checkpointed");
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  registry.counter("gen_checkpoint_runs_total")->Increment();

  CheckpointReport local_report;
  CheckpointReport& rep = report != nullptr ? *report : local_report;
  rep = CheckpointReport{};
  rep.total = corpus.size();

  if (checkpoint.directory.empty()) {
    return Status::InvalidArgument("checkpoint directory must be set");
  }
  std::error_code ec;
  fs::create_directories(checkpoint.directory, ec);
  if (ec) {
    return Status::Internal("cannot create checkpoint directory " +
                            checkpoint.directory + ": " + ec.message());
  }
  const std::string manifest_path = checkpoint.directory + "/MANIFEST";
  const std::string attempts_path = checkpoint.directory + "/attempts.log";
  auto shard_path = [&](size_t i) {
    return checkpoint.directory + "/shard-" + std::to_string(i) + ".jsonl";
  };

  // --- Resume: load (and validate) the manifest left by a prior run.
  Manifest manifest;
  manifest.seed = base_seed;
  manifest.corpus_fingerprint = CorpusFingerprint(corpus);
  manifest.config_fingerprint = GenerationConfigFingerprint(config);
  manifest.shards = corpus.size();
  if (fs::exists(manifest_path)) {
    auto text = ReadFileText(manifest_path);
    if (!text.ok()) return text.status();
    auto loaded = Manifest::Parse(*text);
    if (!loaded.ok()) return loaded.status();
    if (loaded->seed != manifest.seed ||
        loaded->corpus_fingerprint != manifest.corpus_fingerprint ||
        loaded->config_fingerprint != manifest.config_fingerprint ||
        loaded->shards != manifest.shards) {
      return Status::InvalidArgument(
          "checkpoint directory " + checkpoint.directory +
          " belongs to a different run "
          "(seed/corpus/config/shard-count mismatch); refusing to mix "
          "datasets");
    }
    manifest = std::move(loaded).ValueOrDie();
  }

  // --- Poison-shard quarantine: count `begin` markers per shard in the
  // append-only attempts log. A marker is written before a shard is
  // attempted, so a shard that keeps crashing the process accumulates
  // begins without ever reaching `done` — after quarantine_after of those
  // it is quarantined instead of being attempted again.
  if (checkpoint.quarantine_after > 0 && fs::exists(attempts_path)) {
    if (auto text = ReadFileText(attempts_path); text.ok()) {
      std::map<size_t, size_t> begins;
      std::istringstream in(*text);
      std::string key;
      uint64_t value = 0;
      while (in >> key >> value) {
        if (key == "begin") begins[static_cast<size_t>(value)]++;
      }
      for (const auto& [shard, count] : begins) {
        if (count >= checkpoint.quarantine_after &&
            manifest.done.count(shard) == 0 &&
            manifest.poisoned.insert(shard).second) {
          registry.counter("gen_checkpoint_shards_poisoned_total")
              ->Increment();
        }
      }
    }
  }

  std::mutex state_mu;  // guards manifest, the attempts log, and rep
  std::ofstream attempts_log(attempts_path,
                             std::ios::binary | std::ios::app);
  if (!attempts_log) {
    return Status::Internal("cannot open " + attempts_path);
  }

  // Persist newly detected poisonings (and create the manifest on first
  // run) before any generation starts.
  UCTR_RETURN_NOT_OK(WriteFileAtomic(manifest_path, manifest.Serialize()));

  // --- Generate the missing shards, mirroring GenerateDatasetParallel's
  // per-entry seeding exactly so the union of all runs is byte-identical
  // to one uninterrupted run.
  std::vector<std::vector<Sample>> per_entry(corpus.size());
  std::vector<char> fresh(corpus.size(), 0);
  std::vector<size_t> todo;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (manifest.done.count(i) == 0 && manifest.poisoned.count(i) == 0) {
      todo.push_back(i);
    }
  }
  size_t budget = checkpoint.max_shards_this_run > 0
                      ? checkpoint.max_shards_this_run
                      : todo.size();
  if (budget < todo.size()) {
    rep.skipped = todo.size() - budget;
    todo.resize(budget);
  }

  fault::RetryPolicy shard_retry(fault::RetryOptions{},
                                 /*seed=*/base_seed ^ 0xC0FFEEULL,
                                 &registry);
  obs::Counter* shards_written =
      registry.counter("gen_checkpoint_shards_written_total");
  obs::Counter* write_failures =
      registry.counter("gen_checkpoint_write_failures_total");

  if (num_threads == 0) num_threads = 1;
  num_threads = std::min(num_threads, std::max<size_t>(1, todo.size()));
  std::atomic<size_t> next_todo{0};
  auto worker = [&] {
    Rng rng;
    while (true) {
      size_t t = next_todo.fetch_add(1);
      if (t >= todo.size()) return;
      size_t i = todo[t];
      {
        // Crash marker first: if the process dies inside this shard, the
        // begin without a matching done is what quarantine counts.
        std::lock_guard<std::mutex> lock(state_mu);
        attempts_log << "begin " << i << "\n";
        attempts_log.flush();
      }
      // Transient shard-level dependency faults (gen.shard) are retried;
      // a persistent fault fails the shard for THIS run only — it stays
      // un-done in the manifest and is retried by the next resume.
      Status shard_fault = shard_retry.Run(
          "gen.shard", [] { return UCTR_FAULT_POINT("gen.shard"); });
      if (!shard_fault.ok()) {
        std::lock_guard<std::mutex> lock(state_mu);
        ++rep.failed;
        continue;
      }
      rng.Seed(base_seed + i);
      Generator generator(config, library, &rng);
      std::vector<Sample> samples = generator.GenerateFromTable(corpus[i]);
      Dataset shard;
      shard.samples = samples;  // copy: per_entry keeps the originals
      Status write_status = UCTR_FAULT_POINT("gen.checkpoint_write");
      if (write_status.ok()) {
        write_status = WriteFileAtomic(shard_path(i), DatasetToJsonl(shard));
      }
      std::lock_guard<std::mutex> lock(state_mu);
      if (!write_status.ok()) {
        // Degrade, don't abort: the shard's samples are discarded (they
        // are deterministically regenerable) and the run carries on with
        // the remaining shards.
        write_failures->Increment();
        ++rep.failed;
        continue;
      }
      manifest.done.insert(i);
      Status manifest_status =
          WriteFileAtomic(manifest_path, manifest.Serialize());
      if (!manifest_status.ok()) {
        // The shard file exists but is not recorded: the next run simply
        // regenerates it (same bytes). Keep this run's copy in memory.
        manifest.done.erase(i);
        write_failures->Increment();
        ++rep.failed;
        continue;
      }
      per_entry[i] = std::move(samples);
      fresh[i] = 1;
      ++rep.generated;
      shards_written->Increment();
    }
  };
  if (num_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  // --- Assemble, loading shards persisted by earlier runs from disk.
  Dataset dataset;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (fresh[i]) {
      for (Sample& s : per_entry[i]) dataset.samples.push_back(std::move(s));
      continue;
    }
    if (manifest.done.count(i) == 0) continue;
    auto text = ReadFileText(shard_path(i));
    if (!text.ok()) {
      return Status::Internal("checkpoint shard " + shard_path(i) +
                              " is recorded done but unreadable: " +
                              text.status().ToString());
    }
    auto shard = DatasetFromJsonl(*text);
    if (!shard.ok()) {
      return Status::Internal("checkpoint shard " + shard_path(i) +
                              " is corrupt: " + shard.status().ToString());
    }
    for (Sample& s : shard->samples) {
      dataset.samples.push_back(std::move(s));
    }
    ++rep.resumed;
    registry.counter("gen_checkpoint_shards_resumed_total")->Increment();
  }

  rep.poisoned = manifest.poisoned.size();
  rep.complete = manifest.done.size() == corpus.size();
  // The Unknown post-pass draws across the whole dataset, so it must only
  // run on the complete one — and then it matches GenerateDatasetParallel
  // exactly (same `base_seed ^ 0x9E37` post-seed).
  if (rep.complete && config.task == TaskType::kFactVerification) {
    Rng post_rng(base_seed ^ 0x9E37ULL);
    AppendUnknownSamples(corpus, config.unknown_fraction, &post_rng,
                         &dataset);
  }
  run_span.AddAttr("generated", std::to_string(rep.generated));
  run_span.AddAttr("resumed", std::to_string(rep.resumed));
  run_span.AddAttr("complete", rep.complete ? "true" : "false");
  return dataset;
}

}  // namespace uctr
