#include "gen/quality.h"

#include <cmath>
#include <set>

#include "common/numeric.h"
#include "common/string_util.h"

namespace uctr {

QualityReport AnalyzeDataset(const Dataset& dataset) {
  QualityReport report;
  report.samples = dataset.size();
  if (dataset.empty()) return report;

  std::set<std::string> distinct_sentences;
  std::set<std::string> word_types;
  size_t total_tokens = 0;
  size_t supported = 0, refuted = 0, fv = 0;
  size_t hybrid = 0;

  for (const Sample& s : dataset.samples) {
    distinct_sentences.insert(s.sentence);
    std::vector<std::string> tokens = WordTokens(s.sentence);
    total_tokens += tokens.size();
    for (std::string& t : tokens) word_types.insert(std::move(t));
    if (!s.reasoning_type.empty()) {
      report.reasoning_counts[s.reasoning_type]++;
    }
    if (s.task == TaskType::kFactVerification) {
      ++fv;
      if (s.label == Label::kSupported) ++supported;
      if (s.label == Label::kRefuted) ++refuted;
    }
    if (s.source != EvidenceSource::kTableOnly) ++hybrid;
  }

  double n = static_cast<double>(dataset.size());
  report.distinct_sentence_ratio = distinct_sentences.size() / n;
  report.mean_sentence_tokens = static_cast<double>(total_tokens) / n;
  report.type_token_ratio =
      total_tokens == 0
          ? 0.0
          : static_cast<double>(word_types.size()) / total_tokens;
  report.hybrid_fraction = hybrid / n;

  size_t tagged = 0;
  for (const auto& [tag, count] : report.reasoning_counts) tagged += count;
  double entropy = 0.0;
  for (const auto& [tag, count] : report.reasoning_counts) {
    double p = static_cast<double>(count) / static_cast<double>(tagged);
    entropy -= p * std::log2(p);
  }
  report.reasoning_entropy = entropy;

  if (fv > 0) {
    double ps = supported / static_cast<double>(fv);
    double pr = refuted / static_cast<double>(fv);
    report.label_balance = std::min(ps, pr) / 0.5;
  }
  return report;
}

std::string QualityReport::ToString() const {
  std::string out;
  out += "samples:                 " + std::to_string(samples) + "\n";
  out += "distinct sentence ratio: " +
         FormatNumber(distinct_sentence_ratio, 3) + "\n";
  out += "mean sentence tokens:    " +
         FormatNumber(mean_sentence_tokens, 1) + "\n";
  out += "type/token ratio:        " + FormatNumber(type_token_ratio, 3) +
         "\n";
  out += "reasoning entropy:       " + FormatNumber(reasoning_entropy, 2) +
         " bits over " + std::to_string(reasoning_counts.size()) +
         " types\n";
  out += "label balance:           " + FormatNumber(label_balance, 2) + "\n";
  out += "hybrid evidence share:   " + FormatNumber(hybrid_fraction, 2) +
         "\n";
  return out;
}

}  // namespace uctr
