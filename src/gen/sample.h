#ifndef UCTR_GEN_SAMPLE_H_
#define UCTR_GEN_SAMPLE_H_

#include <string>
#include <vector>

#include "program/program.h"
#include "table/table.h"

namespace uctr {

/// \brief The two tabular reasoning tasks of the paper (Section II-A).
enum class TaskType {
  kFactVerification = 0,
  kQuestionAnswering,
};

const char* TaskTypeToString(TaskType task);

/// \brief Gold label of a fact-verification sample.
enum class Label {
  kSupported = 0,
  kRefuted,
  kUnknown,
};

const char* LabelToString(Label label);

/// \brief Provenance of a synthetic sample: which generation pipeline
/// produced it (Figure 3).
enum class EvidenceSource {
  kTableOnly = 0,   ///< Homogeneous: table evidence only.
  kTableSplit,      ///< Table splitting: sub-table + generated sentence.
  kTableExpand,     ///< Table expansion: original table + original text.
  kTextOnly,        ///< Degenerate: evidence entirely in text.
};

const char* EvidenceSourceToString(EvidenceSource source);

/// \brief One reasoning instance (t, p, l) -> o: a table, its related
/// text, a natural-language question or claim, and the gold output.
/// Synthetic samples additionally carry the generating program and its
/// evidence rows ("highlighted cells") for inspection and filtering.
struct Sample {
  TaskType task = TaskType::kQuestionAnswering;
  Table table;
  /// Zero-copy serving: when set, readers see *shared_table (via
  /// evidence_table()) and `table` stays empty. Non-owning — the caller
  /// (serve::InferenceEngine borrowing from the store::TableRegistry)
  /// guarantees the pointee outlives the Sample. Registered tables are
  /// pre-warmed and safe for concurrent const readers, so many requests
  /// can share one without copies or index rebuilds.
  const Table* shared_table = nullptr;
  std::vector<std::string> paragraph;
  std::string sentence;

  /// \brief How programs interpreted against this sample execute (VM vs
  /// tree-walk, plan cache). Serving sets this per request so degraded
  /// mode can force the walker; the default is the compiled path.
  ExecOptions exec;

  /// \brief The evidence table every reader should consult: the borrowed
  /// registry table when present, the owned one otherwise.
  const Table& evidence_table() const {
    return shared_table != nullptr ? *shared_table : table;
  }

  // Gold output: label for fact verification, answer for QA.
  Label label = Label::kSupported;
  std::string answer;
  std::vector<Value> answer_values;

  /// \brief Training weight (confidence-reweighted self-training). 1.0 —
  /// the default for generated and human-labeled samples — reproduces
  /// unweighted training bit-for-bit; trainers skip non-positive or
  /// non-finite weights.
  double weight = 1.0;

  // Synthetic provenance (empty program text for human-labeled samples).
  Program program;
  std::string reasoning_type;
  EvidenceSource source = EvidenceSource::kTableOnly;
  std::vector<size_t> evidence_rows;
};

/// \brief A set of samples plus summary statistics.
struct Dataset {
  std::vector<Sample> samples;

  size_t size() const { return samples.size(); }
  bool empty() const { return samples.empty(); }

  size_t CountLabel(Label label) const;
  size_t CountSource(EvidenceSource source) const;
  size_t CountReasoningType(const std::string& tag) const;

  /// \brief Multi-line human-readable statistics block (Table II style).
  std::string Summary() const;
};

}  // namespace uctr

#endif  // UCTR_GEN_SAMPLE_H_
