#ifndef UCTR_GEN_PARALLEL_H_
#define UCTR_GEN_PARALLEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "gen/generator.h"
#include "program/library.h"

namespace uctr {

/// \brief Multi-threaded corpus generation.
///
/// Each corpus entry is processed by a Generator seeded as
/// `base_seed + entry_index`, so the output is bit-identical regardless of
/// `num_threads` (including 1) — parallelism changes wall-clock time, not
/// the dataset. Unknown-label evidence swaps, which need cross-table
/// state, are applied once after the parallel phase using
/// `base_seed ^ 0x9E37` as their seed.
///
/// \param library not owned; must outlive the call.
Dataset GenerateDatasetParallel(const GenerationConfig& config,
                                const TemplateLibrary* library,
                                const std::vector<TableWithText>& corpus,
                                uint64_t base_seed, size_t num_threads);

/// \brief Stable fingerprint of every GenerationConfig knob that shapes
/// the generated dataset (task, program types, sampling counts, pipeline
/// toggles, fractions, NL noise profile, reasoning weights, quarantine).
/// Two configs with equal fingerprints produce byte-identical datasets
/// from the same (library, corpus, seed). The lexicon override cannot be
/// content-hashed (it is an opaque borrowed pointer), so only its
/// presence is folded in — callers switching between two *non-default*
/// lexicons must use distinct checkpoint directories.
uint64_t GenerationConfigFingerprint(const GenerationConfig& config);

/// \brief Crash-safe checkpointing knobs for GenerateDatasetCheckpointed.
struct CheckpointOptions {
  /// Directory holding the checkpoint state: one `shard-<i>.jsonl` per
  /// completed corpus entry, a `MANIFEST`, and an append-only
  /// `attempts.log`. Created if missing.
  std::string directory;
  /// Poison-shard quarantine: a shard whose generation was *begun* (per
  /// attempts.log) in this many runs without ever completing is marked
  /// poisoned on the next resume and skipped — a shard that crashes the
  /// process cannot wedge the job forever. 0 disables quarantine.
  size_t quarantine_after = 3;
  /// Stop after persisting this many new shards (0 = no limit). Lets
  /// incremental jobs — and the kill/resume tests — run the generation in
  /// bounded slices that later resume byte-identically.
  size_t max_shards_this_run = 0;
};

/// \brief What a checkpointed run did; every count is in shards
/// (= corpus entries).
struct CheckpointReport {
  size_t total = 0;       ///< corpus entries
  size_t resumed = 0;     ///< loaded from shard files written by prior runs
  size_t generated = 0;   ///< newly generated and persisted this run
  size_t failed = 0;      ///< attempted this run but not persisted (faults)
  size_t poisoned = 0;    ///< quarantined, this run or previously
  size_t skipped = 0;     ///< left for a later run (max_shards_this_run)
  bool complete = false;  ///< every shard done; Unknown post-pass applied
};

/// \brief GenerateDatasetParallel with crash-safe checkpoint/resume.
///
/// Each completed corpus entry is persisted as `shard-<i>.jsonl`
/// (write-to-temp + atomic rename) and recorded in an atomically rewritten
/// `MANIFEST` keyed by (base_seed, corpus fingerprint, GenerationConfig
/// fingerprint); a run that is killed mid-way resumes from the manifest
/// and — because every shard is seeded `base_seed + i` exactly as in
/// GenerateDatasetParallel — the finished dataset is byte-identical to a
/// single uninterrupted run at any thread count and any kill/resume
/// schedule. A checkpoint directory whose manifest disagrees with (seed,
/// corpus, config) is rejected with kInvalidArgument rather than silently
/// mixing datasets — two runs differing only in config (e.g. successive
/// self-training rounds with an evolving GenerationConfig) can never
/// resume each other's shards. Manifests written before the config key
/// existed (v1) are likewise rejected; start them in a fresh directory.
///
/// The Unknown-label post-pass needs the complete dataset, so it runs only
/// when the final shard lands (`report->complete`). Partial runs return
/// the samples persisted so far.
///
/// \param report optional; filled with what this run did.
Result<Dataset> GenerateDatasetCheckpointed(
    const GenerationConfig& config, const TemplateLibrary* library,
    const std::vector<TableWithText>& corpus, uint64_t base_seed,
    size_t num_threads, const CheckpointOptions& checkpoint,
    CheckpointReport* report = nullptr);

}  // namespace uctr

#endif  // UCTR_GEN_PARALLEL_H_
