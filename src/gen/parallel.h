#ifndef UCTR_GEN_PARALLEL_H_
#define UCTR_GEN_PARALLEL_H_

#include <cstdint>
#include <vector>

#include "gen/generator.h"
#include "program/library.h"

namespace uctr {

/// \brief Multi-threaded corpus generation.
///
/// Each corpus entry is processed by a Generator seeded as
/// `base_seed + entry_index`, so the output is bit-identical regardless of
/// `num_threads` (including 1) — parallelism changes wall-clock time, not
/// the dataset. Unknown-label evidence swaps, which need cross-table
/// state, are applied once after the parallel phase using
/// `base_seed ^ 0x9E37` as their seed.
///
/// \param library not owned; must outlive the call.
Dataset GenerateDatasetParallel(const GenerationConfig& config,
                                const TemplateLibrary* library,
                                const std::vector<TableWithText>& corpus,
                                uint64_t base_seed, size_t num_threads);

}  // namespace uctr

#endif  // UCTR_GEN_PARALLEL_H_
