#ifndef UCTR_GEN_GENERATOR_H_
#define UCTR_GEN_GENERATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "gen/sample.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "hybrid/table_to_text.h"
#include "hybrid/text_to_table.h"
#include "nlgen/nl_generator.h"
#include "program/library.h"
#include "program/sampler.h"

namespace uctr {

/// \brief An unlabeled (table, paragraph) pair — the only input the
/// unsupervised setting assumes (Section II-B).
struct TableWithText {
  Table table;
  std::vector<std::string> paragraph;
};

/// \brief Knobs of the UCTR data generation pipeline.
struct GenerationConfig {
  TaskType task = TaskType::kQuestionAnswering;

  /// Program families to draw from; must be non-empty and consistent with
  /// the task (logical forms for verification, SQL/arithmetic for QA).
  std::vector<ProgramType> program_types = {ProgramType::kSql};

  /// Target number of synthetic samples per input table.
  size_t samples_per_table = 8;

  /// Random instantiations attempted per emitted sample before giving up
  /// (invalid programs are discarded, per Algorithm 1).
  size_t max_attempts = 12;

  /// Joint table-text operators (ablations A4/A5/A6 in Table VIII).
  bool use_table_to_text = true;   ///< enable the table-splitting pipeline
  bool use_text_to_table = true;   ///< enable the table-expansion pipeline

  /// Fraction of samples routed through a hybrid pipeline when possible.
  double hybrid_fraction = 0.5;

  /// Fact verification only: fraction of claims derived as true.
  double supported_fraction = 0.5;
  /// Fact verification only: fraction of samples whose evidence is swapped
  /// with an unrelated table, labeled Unknown (SEM-TAB-FACTS-style NEI).
  double unknown_fraction = 0.0;

  /// Surface diversity of the NL-Generator.
  nlgen::NlGeneratorConfig nl;
  /// Optional lexicon override for the NL-Generator (e.g. the richer
  /// "human annotator" lexicon of the benchmark simulators). Not owned;
  /// null means the default lexicon.
  const nlgen::Lexicon* lexicon = nullptr;

  /// Relative sampling weight per template reasoning_type (unlisted types
  /// weigh 1.0). The benchmark simulators use this to give gold data a
  /// skewed, human-like distribution of reasoning types that uniform
  /// synthetic sampling only approximates — one source of the paper's
  /// supervised/unsupervised gap.
  std::map<std::string, double> reasoning_weights;

  /// Poison-template quarantine: a template that fails this many attempts
  /// IN A ROW on one table is skipped for the remainder of that table, so
  /// a template that cannot instantiate on a given schema does not eat the
  /// whole attempt budget. 0 disables quarantine (the default — with it
  /// disabled the sampling sequence is byte-identical to older builds).
  /// State is per-table: the next table probes the template again.
  size_t quarantine_after = 0;
};

/// \brief Appends evidence-swapped Unknown/NEI samples to `dataset`
/// (fact verification): existing claims are paired with a table from a
/// different schema family, making them unverifiable. Exposed separately
/// so parallel generation can run it as a deterministic post-pass.
void AppendUnknownSamples(const std::vector<TableWithText>& corpus,
                          double fraction, Rng* rng, Dataset* dataset);

/// \brief The UCTR generator: implements Algorithm 1, combining the
/// Program-Executor, NL-Generator, Table-To-Text and Text-To-Table
/// components into the table-splitting and table-expansion pipelines.
class Generator {
 public:
  /// \param library,rng not owned; must outlive the generator.
  Generator(GenerationConfig config, const TemplateLibrary* library,
            Rng* rng);

  /// \brief Synthesizes up to `samples_per_table` samples from one
  /// (table, paragraph) pair.
  std::vector<Sample> GenerateFromTable(const TableWithText& input);

  /// \brief Runs over a corpus; `unknown_fraction` evidence swaps are drawn
  /// between corpus entries.
  Dataset GenerateDataset(const std::vector<TableWithText>& corpus);

  const GenerationConfig& config() const { return config_; }

 private:
  /// One attempt at a sample; error Status means "discard and retry".
  /// `quarantined` (empty = quarantine disabled) masks poisoned templates
  /// out of the weighted draw; the chosen template index is written to
  /// `used_template` (when non-null) even on failure, so the caller can
  /// attribute the failure for quarantine accounting.
  Result<Sample> TryGenerate(const TableWithText& input,
                             const std::vector<char>& quarantined,
                             size_t* used_template);

  /// Builds the program (+answer/label) on `table`.
  Result<SampledProgram> SampleProgram(const Table& table,
                                       const ProgramTemplate& tmpl);

  /// NL-Generator call wrapped in a "gen.nl" span.
  Result<std::string> RealizeSentence(const Program& program);

  /// Pipeline instruments, resolved once from obs::DefaultRegistry() at
  /// construction so the per-attempt hot path is pointer chases and
  /// relaxed atomic adds only (no registry lock).
  struct Instruments {
    obs::Counter* attempts;         ///< gen_attempts_total
    obs::Counter* emitted;          ///< gen_samples_total
    obs::Counter* duplicates;       ///< gen_discards_total{reason="Duplicate"}
    obs::Counter* exhausted;        ///< gen_slots_exhausted_total
    obs::Counter* quarantined;      ///< gen_templates_quarantined_total
    obs::Histogram* sample_us;      ///< latency_gen_sample_us (per emitted)
    obs::Histogram* table_us;       ///< latency_gen_table_us (per input)
    /// Attempts by template reasoning type, parallel to active_templates_.
    std::vector<obs::Counter*> template_attempts;
    /// Discarded attempts keyed by Status code of the failed stage.
    std::vector<obs::Counter*> discards_by_code;
  };

  GenerationConfig config_;
  const TemplateLibrary* library_;
  std::vector<ProgramTemplate> active_templates_;
  std::vector<double> template_weights_;
  Rng* rng_;
  ProgramSampler sampler_;
  nlgen::NlGenerator nl_generator_;
  hybrid::TableToText table_to_text_;
  hybrid::TextToTable text_to_table_;
  Instruments inst_;
  obs::Tracer* tracer_;
};

}  // namespace uctr

#endif  // UCTR_GEN_GENERATOR_H_
