#ifndef UCTR_MODEL_INTERPRETER_H_
#define UCTR_MODEL_INTERPRETER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "gen/sample.h"
#include "nlgen/nl_generator.h"
#include "program/library.h"
#include "table/table.h"

namespace uctr::model {

/// \brief One candidate reading of a sentence as an executable program.
struct Interpretation {
  Program program;
  ExecResult result;
  std::map<std::string, std::string> bindings;
  size_t template_index = 0;  ///< into the interpreter's template list
  double score = 0.0;         ///< token-F1 of re-realization vs. input
};

/// \brief Inverse of the NL-Generator: maps a question/claim back to the
/// most plausible program over a table, by slot-binding every known
/// template against the sentence, executing the candidates, and scoring
/// each by re-realizing it canonically and measuring token overlap with
/// the input sentence.
///
/// This is the "reasoning" half of the model substrate: the trainable
/// models (VerifierModel / QaModel) learn how much to trust which
/// interpretations, mirroring program-enhanced verification models and
/// semantic-parsing QA models in the paper's related work.
class NlInterpreter {
 public:
  explicit NlInterpreter(std::vector<ProgramTemplate> templates);

  const std::vector<ProgramTemplate>& templates() const { return templates_; }

  /// \brief All executable interpretations, best first. `task` selects
  /// claim-style binding (with a derived compared-to value) or
  /// question-style binding. `exec` picks the execution path for every
  /// candidate program (compiled VM by default).
  std::vector<Interpretation> RankAll(
      const std::string& sentence, const Table& table, TaskType task,
      const ExecOptions& exec = ExecOptions()) const;

  /// \brief Best interpretation, or NotFound when nothing binds+executes.
  Result<Interpretation> Interpret(
      const std::string& sentence, const Table& table, TaskType task,
      const ExecOptions& exec = ExecOptions()) const;

  /// \brief Extracts the claimed value from a claim sentence (the phrase
  /// after the final copula, e.g. "... is 8." -> "8"). Empty if absent.
  static std::string ClaimedValue(const std::string& sentence);

 private:
  /// Binds one template against (sentence, table); nullopt-like error when
  /// a slot cannot be filled.
  Result<std::map<std::string, std::string>> BindTemplate(
      const ProgramTemplate& tmpl, const std::string& sentence,
      const Table& table, TaskType task) const;

  std::vector<ProgramTemplate> templates_;
  nlgen::NlGenerator canonical_generator_;
};

}  // namespace uctr::model

#endif  // UCTR_MODEL_INTERPRETER_H_
