#include "model/confidence.h"

#include <algorithm>
#include <cmath>

namespace uctr::model {

Result<double> MarginToConfidence(double margin) {
  if (!std::isfinite(margin)) {
    return Status::InvalidArgument("non-finite decision margin");
  }
  if (margin < 0.0) {
    return Status::InvalidArgument("negative decision margin");
  }
  return margin / (1.0 + margin);
}

Result<Confidence> ScoreSample(const VerifierModel& model,
                               const Sample& sample) {
  Confidence out;
  if (sample.task != TaskType::kFactVerification) return out;
  std::vector<double> probs = model.Probabilities(sample);
  size_t top = 0;
  for (size_t c = 1; c < probs.size(); ++c) {
    if (probs[c] > probs[top]) top = c;
  }
  double second = 0.0;
  for (size_t c = 0; c < probs.size(); ++c) {
    if (c != top) second = std::max(second, probs[c]);
  }
  UCTR_ASSIGN_OR_RETURN(out.score,
                        MarginToConfidence(probs[top] - second));
  // Probabilities are indexed in LabelToClass order.
  Label predicted = top == 0   ? Label::kSupported
                    : top == 1 ? Label::kRefuted
                               : Label::kUnknown;
  out.agrees = predicted == sample.label;
  return out;
}

Result<Confidence> ScoreSample(const QaModel& model, const Sample& sample) {
  Confidence out;
  if (sample.task != TaskType::kQuestionAnswering) return out;
  QaModel::Prediction prediction = model.PredictWithMargin(sample);
  // Span-fallback answers carry no program-level evidence; their margin
  // of 0 maps to confidence 0, so any positive threshold drops them.
  UCTR_ASSIGN_OR_RETURN(out.score, MarginToConfidence(prediction.margin));
  out.agrees = AnswersMatch(prediction.answer, sample.answer);
  return out;
}

Result<FilterDecision> ApplyPolicy(const Confidence& confidence,
                                   const FilterPolicy& policy) {
  if (!std::isfinite(confidence.score) || confidence.score < 0.0) {
    return Status::InvalidArgument("invalid confidence score");
  }
  if (!std::isfinite(policy.temperature) || policy.temperature <= 0.0) {
    return Status::InvalidArgument("temperature must be positive");
  }
  FilterDecision decision;
  if (policy.require_agreement && !confidence.agrees) return decision;
  if (confidence.score < policy.threshold) return decision;
  decision.keep = true;
  decision.weight = std::pow(confidence.score, 1.0 / policy.temperature);
  // score in [0, 1) keeps pow finite, but a kept sample must always be
  // trainable: clamp the degenerate score==0, threshold==0 corner.
  if (!(decision.weight > 0.0)) decision.weight = 1e-6;
  return decision;
}

}  // namespace uctr::model
