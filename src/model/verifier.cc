#include "model/verifier.h"

namespace uctr::model {

namespace {

int LabelToClass(Label label) {
  switch (label) {
    case Label::kSupported:
      return 0;
    case Label::kRefuted:
      return 1;
    case Label::kUnknown:
      return 2;
  }
  return 0;
}

Label ClassToLabel(int c) {
  if (c == 0) return Label::kSupported;
  if (c == 1) return Label::kRefuted;
  return Label::kUnknown;
}

}  // namespace

VerifierModel::VerifierModel(VerifierConfig config,
                             std::vector<ProgramTemplate> claim_templates)
    : config_(config),
      interpreter_(std::move(claim_templates)),
      extractor_(config.features,
                 config.features.interpreter ? &interpreter_ : nullptr),
      model_(config.num_classes, config.features.dim) {}

void VerifierModel::RelinkExtractor() {
  extractor_.set_interpreter(config_.features.interpreter ? &interpreter_
                                                          : nullptr);
}

VerifierModel::VerifierModel(const VerifierModel& other)
    : config_(other.config_),
      interpreter_(other.interpreter_),
      extractor_(other.extractor_),
      text_to_table_(other.text_to_table_),
      model_(other.model_) {
  RelinkExtractor();
}

VerifierModel& VerifierModel::operator=(const VerifierModel& other) {
  if (this != &other) {
    config_ = other.config_;
    interpreter_ = other.interpreter_;
    extractor_ = other.extractor_;
    text_to_table_ = other.text_to_table_;
    model_ = other.model_;
    RelinkExtractor();
  }
  return *this;
}

VerifierModel::VerifierModel(VerifierModel&& other) noexcept
    : config_(std::move(other.config_)),
      interpreter_(std::move(other.interpreter_)),
      extractor_(std::move(other.extractor_)),
      text_to_table_(std::move(other.text_to_table_)),
      model_(std::move(other.model_)) {
  RelinkExtractor();
}

VerifierModel& VerifierModel::operator=(VerifierModel&& other) noexcept {
  if (this != &other) {
    config_ = std::move(other.config_);
    interpreter_ = std::move(other.interpreter_);
    extractor_ = std::move(other.extractor_);
    text_to_table_ = std::move(other.text_to_table_);
    model_ = std::move(other.model_);
    RelinkExtractor();
  }
  return *this;
}

std::optional<Sample> VerifierModel::WithTextEvidence(
    const Sample& sample) const {
  if (!config_.use_text_expansion || sample.paragraph.empty()) {
    return std::nullopt;
  }
  auto expanded = text_to_table_.Apply(sample.evidence_table(),
                                       sample.paragraph);
  if (!expanded.ok()) return std::nullopt;
  Sample out = sample;
  out.table = std::move(expanded).ValueOrDie();
  out.shared_table = nullptr;  // readers must see the expanded copy
  return out;
}

void VerifierModel::Train(const Dataset& data, Rng* rng,
                          std::vector<double>* epoch_losses) {
  std::vector<Example> examples;
  examples.reserve(data.size());
  for (const Sample& s : data.samples) {
    if (s.task != TaskType::kFactVerification) continue;
    int label = LabelToClass(s.label);
    if (label >= config_.num_classes) continue;  // Unknown in 2-way mode
    Example ex;
    std::optional<Sample> expanded = WithTextEvidence(s);
    ex.features = extractor_.Extract(expanded ? *expanded : s);
    ex.label = label;
    ex.weight = static_cast<float>(s.weight);
    examples.push_back(std::move(ex));
  }
  model_.Train(examples, config_.train, rng, epoch_losses);
}

Label VerifierModel::Predict(const Sample& sample) const {
  std::optional<Sample> expanded = WithTextEvidence(sample);
  FeatureVector features = extractor_.Extract(expanded ? *expanded : sample);
  return ClassToLabel(model_.Predict(features));
}

std::vector<double> VerifierModel::Probabilities(const Sample& sample) const {
  std::optional<Sample> expanded = WithTextEvidence(sample);
  FeatureVector features = extractor_.Extract(expanded ? *expanded : sample);
  return model_.Probabilities(features);
}

std::string VerifierModel::SaveWeights() const {
  return model_.SaveToString();
}

Status VerifierModel::LoadWeights(std::string_view text) {
  UCTR_ASSIGN_OR_RETURN(LinearModel loaded,
                        LinearModel::LoadFromString(text));
  if (loaded.num_classes() != model_.num_classes() ||
      loaded.dim() != model_.dim()) {
    return Status::InvalidArgument(
        "saved weights do not match this model's configuration");
  }
  model_ = std::move(loaded);
  return Status::OK();
}

double VerifierModel::Accuracy(const Dataset& data) const {
  size_t total = 0, correct = 0;
  for (const Sample& s : data.samples) {
    if (s.task != TaskType::kFactVerification) continue;
    if (LabelToClass(s.label) >= config_.num_classes) continue;
    ++total;
    if (Predict(s) == s.label) ++correct;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace uctr::model
