#ifndef UCTR_MODEL_LINEAR_MODEL_H_
#define UCTR_MODEL_LINEAR_MODEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace uctr::model {

/// \brief One sparse feature: hashed index and value.
struct Feature {
  uint32_t index = 0;
  float value = 1.0f;
};

using FeatureVector = std::vector<Feature>;

/// \brief A labeled training example. `weight` scales the example's
/// gradient and loss contribution (confidence-weighted self-training);
/// non-finite or non-positive weights are skipped during training. The
/// default 1.0 reproduces unweighted training bit-for-bit.
struct Example {
  FeatureVector features;
  int label = 0;
  float weight = 1.0f;
};

/// \brief Training hyper-parameters for the linear classifier.
struct TrainConfig {
  size_t epochs = 8;
  double learning_rate = 0.15;
  double l2 = 1e-6;
  bool shuffle = true;
};

/// \brief Multiclass logistic regression over hashed sparse features,
/// trained with AdaGrad SGD — the trainable core of every reasoning model
/// in this repo (the linear stand-in for the paper's fine-tuned
/// transformers; see DESIGN.md).
class LinearModel {
 public:
  /// \param num_classes >= 2, \param dim hashed feature space size.
  LinearModel(int num_classes, size_t dim);

  int num_classes() const { return num_classes_; }
  size_t dim() const { return dim_; }

  /// \brief Per-class scores (logits).
  std::vector<double> Scores(const FeatureVector& features) const;

  /// \brief Softmax probabilities.
  std::vector<double> Probabilities(const FeatureVector& features) const;

  /// \brief Argmax class.
  int Predict(const FeatureVector& features) const;

  /// \brief Runs AdaGrad SGD over `examples`. Repeated calls continue
  /// training from the current weights (used by few-shot fine-tuning).
  /// Returns the final-epoch weight-averaged loss; when `epoch_losses` is
  /// non-null it receives one entry per epoch (the full convergence
  /// trajectory — a caller can detect a diverging run by comparing the
  /// tail against the head instead of trusting one final number).
  double Train(const std::vector<Example>& examples, const TrainConfig& config,
               Rng* rng, std::vector<double>* epoch_losses = nullptr);

  /// \brief Mean accuracy of Predict over `examples`.
  double Evaluate(const std::vector<Example>& examples) const;

  /// \brief Serializes dimensions, non-zero weights, and AdaGrad state to
  /// a compact line-oriented text format (stable across builds), so a
  /// trained model can be stored and later resumed or served.
  std::string SaveToString() const;

  /// \brief Restores a model saved by SaveToString. All-or-nothing: a
  /// truncated, corrupt, out-of-order, non-finite, or trailing-garbage
  /// file yields a ParseError and never a partially initialized model.
  static Result<LinearModel> LoadFromString(std::string_view text);

 private:
  void Update(const Example& example, double learning_rate, double l2,
              double weight);

  int num_classes_;
  size_t dim_;
  std::vector<float> weights_;     // num_classes x dim, row-major
  std::vector<float> adagrad_;     // accumulated squared gradients
};

}  // namespace uctr::model

#endif  // UCTR_MODEL_LINEAR_MODEL_H_
