#ifndef UCTR_MODEL_QA_MODEL_H_
#define UCTR_MODEL_QA_MODEL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "gen/sample.h"
#include "hybrid/text_to_table.h"
#include "model/features.h"
#include "model/interpreter.h"
#include "model/linear_model.h"
#include "program/template.h"

namespace uctr::model {

/// \brief Configuration of the question-answering model.
struct QaConfig {
  /// Answer from table evidence (program interpretation). Disabling yields
  /// the "Text-Span only" weak baseline of Table III.
  bool use_table = true;
  /// Use paragraph evidence: Text-To-Table expansion plus span fallback.
  /// Disabling yields the "Table-Cell only" weak baseline.
  bool use_text = true;
  /// Weight of the learned template prior. The prior enters
  /// multiplicatively — score = binding * (1 + weight * P(template)) — so
  /// it re-ranks comparably bound candidates but can never rescue a
  /// poorly bound one (a skewed prior, e.g. from single-template MQA-QG
  /// data, should not override clear binding evidence).
  double classifier_weight = 1.0;
  FeatureConfig features;
  TrainConfig train;
};

/// \brief The trainable QA model (the role TAGOP / TAPEX play in the
/// paper): a weakly supervised semantic parser. Candidate programs come
/// from slot-binding the template inventory against the question; a
/// learned template classifier (trained on whichever dataset it is given —
/// gold, UCTR synthetic, or MQA-QG) re-ranks the candidates; the best
/// candidate's execution result is the answer. A span-extraction fallback
/// covers questions whose answer lives in the paragraph.
///
/// Thread safety (audited for the serving subsystem): Predict and
/// PredictCorrect are const over state written only by the constructor,
/// Train, and LoadWeights; there are no mutable members or lazy caches on
/// the inference path, so concurrent Predict calls are data-race-free.
/// (Unlike VerifierModel, the extractor here never points back into this
/// object — it is constructed with a null interpreter — so the default
/// copy/move are safe.) Train/LoadWeights must be externally serialized
/// against concurrent Predict calls.
class QaModel {
 public:
  QaModel(QaConfig config, std::vector<ProgramTemplate> question_templates);

  /// \brief Trains the template classifier with weak supervision: each
  /// training question is matched to the candidate programs that produce
  /// its gold answer. Repeated calls continue training (few-shot).
  /// Sample weights scale each example's gradient/loss contribution
  /// (1.0 = classic unweighted training); `epoch_losses`, when non-null,
  /// receives the per-epoch loss trajectory (see LinearModel::Train).
  void Train(const Dataset& data, Rng* rng,
             std::vector<double>* epoch_losses = nullptr);

  /// \brief Predicted answer display string; empty when the model abstains.
  std::string Predict(const Sample& sample) const;

  /// \brief A prediction plus the evidence of how decisive it was, for
  /// self-training confidence scoring (model::ScoreSample).
  struct Prediction {
    /// Same string Predict would return; empty when the model abstains.
    std::string answer;
    /// Combined score of the winning candidate minus the runner-up's
    /// (the runner-up of a lone candidate counts as 0, so unambiguous
    /// parses get a large margin). 0 for span-fallback answers and
    /// abstentions — those carry no program-level evidence.
    double margin = 0.0;
    /// True when a bound program produced the answer (margin meaningful).
    bool from_program = false;
  };

  Prediction PredictWithMargin(const Sample& sample) const;

  /// \brief True if the prediction matches the gold answer of `sample`
  /// (numeric-tolerant comparison).
  bool PredictCorrect(const Sample& sample) const;

  /// \brief Serializes the trained template classifier; restore with
  /// LoadWeights on a model built with the same templates and config.
  std::string SaveWeights() const;

  /// \brief Restores weights saved by SaveWeights. Returns an error
  /// Status on truncated/corrupt input or a template-count/dimension
  /// mismatch with this model's shape; on error the current classifier is
  /// left untouched (never a half-loaded model).
  Status LoadWeights(std::string_view text);

 private:
  /// Candidate interpretations over the sample's table, and over the
  /// text-expanded table when text evidence is enabled.
  std::vector<Interpretation> Candidates(const Sample& sample) const;

  /// Span-extraction fallback over the paragraph.
  std::string ExtractSpanAnswer(const Sample& sample) const;

  QaConfig config_;
  NlInterpreter interpreter_;
  FeatureExtractor extractor_;
  hybrid::TextToTable text_to_table_;
  LinearModel template_classifier_;
  bool trained_ = false;
};

/// \brief Numeric-tolerant answer comparison shared with the eval module.
bool AnswersMatch(const std::string& predicted, const std::string& gold);

}  // namespace uctr::model

#endif  // UCTR_MODEL_QA_MODEL_H_
