#ifndef UCTR_MODEL_FEATURES_H_
#define UCTR_MODEL_FEATURES_H_

#include <string>
#include <string_view>

#include "gen/sample.h"
#include "model/interpreter.h"
#include "model/linear_model.h"

namespace uctr::model {

/// \brief Feature extraction knobs.
struct FeatureConfig {
  size_t dim = 1u << 18;
  bool lexical = true;     ///< sentence unigrams + bigrams
  bool alignment = true;   ///< sentence-table / sentence-text overlap
  bool interpreter = true; ///< program-interpretation features (claims)
};

/// \brief Stable FNV-1a hash of a feature name into the weight space.
uint32_t HashFeature(std::string_view name);

/// \brief Maps a reasoning sample to hashed sparse features: lexical
/// n-grams of the sentence, alignment statistics against the table and
/// paragraph (token hits, numeric matches/misses), and — for claims —
/// the verdict and confidence of the NlInterpreter's best program reading.
///
/// The interpreter features are what let a linear model "reason": the
/// trained weights decide how much to trust a parsed program's verdict,
/// the same division of labor as program-enhanced verification models.
class FeatureExtractor {
 public:
  /// \param interpreter may be null (disables interpreter features).
  FeatureExtractor(FeatureConfig config, const NlInterpreter* interpreter)
      : config_(config), interpreter_(interpreter) {}

  /// \brief Re-points the interpreter. Owners that embed both the
  /// interpreter and this extractor (VerifierModel) call this after a
  /// copy/move so the pointer tracks the new owner's interpreter instead
  /// of dangling into the source object.
  void set_interpreter(const NlInterpreter* interpreter) {
    interpreter_ = interpreter;
  }

  FeatureVector Extract(const Sample& sample) const;

 private:
  void AddLexical(const Sample& sample, FeatureVector* out) const;
  void AddAlignment(const Sample& sample, FeatureVector* out) const;
  void AddInterpreter(const Sample& sample, FeatureVector* out) const;

  void Add(FeatureVector* out, std::string_view name, float value = 1.0f)
      const;

  FeatureConfig config_;
  const NlInterpreter* interpreter_;
};

}  // namespace uctr::model

#endif  // UCTR_MODEL_FEATURES_H_
