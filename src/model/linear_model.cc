#include "model/linear_model.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "common/numeric.h"
#include "common/string_util.h"

namespace uctr::model {

LinearModel::LinearModel(int num_classes, size_t dim)
    : num_classes_(num_classes),
      dim_(dim),
      weights_(static_cast<size_t>(num_classes) * dim, 0.0f),
      adagrad_(static_cast<size_t>(num_classes) * dim, 0.0f) {}

std::vector<double> LinearModel::Scores(const FeatureVector& features) const {
  std::vector<double> scores(num_classes_, 0.0);
  for (const Feature& f : features) {
    size_t idx = f.index % dim_;
    for (int c = 0; c < num_classes_; ++c) {
      scores[c] += weights_[static_cast<size_t>(c) * dim_ + idx] * f.value;
    }
  }
  return scores;
}

std::vector<double> LinearModel::Probabilities(
    const FeatureVector& features) const {
  std::vector<double> scores = Scores(features);
  double max_score = *std::max_element(scores.begin(), scores.end());
  double total = 0.0;
  for (double& s : scores) {
    s = std::exp(s - max_score);
    total += s;
  }
  for (double& s : scores) s /= total;
  return scores;
}

int LinearModel::Predict(const FeatureVector& features) const {
  std::vector<double> scores = Scores(features);
  return static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

void LinearModel::Update(const Example& example, double learning_rate,
                         double l2, double weight) {
  std::vector<double> probs = Probabilities(example.features);
  for (const Feature& f : example.features) {
    size_t idx = f.index % dim_;
    for (int c = 0; c < num_classes_; ++c) {
      double target = (c == example.label) ? 1.0 : 0.0;
      double grad = (probs[c] - target) * f.value * weight;
      size_t w = static_cast<size_t>(c) * dim_ + idx;
      grad += l2 * weights_[w];
      adagrad_[w] += static_cast<float>(grad * grad);
      double step =
          learning_rate / (1e-6 + std::sqrt(static_cast<double>(adagrad_[w])));
      weights_[w] -= static_cast<float>(step * grad);
    }
  }
}

double LinearModel::Train(const std::vector<Example>& examples,
                          const TrainConfig& config, Rng* rng,
                          std::vector<double>* epoch_losses) {
  if (epoch_losses != nullptr) epoch_losses->clear();
  if (examples.empty()) return 0.0;
  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  double last_loss = 0.0;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle && rng != nullptr) rng->Shuffle(&order);
    double loss = 0.0;
    double total_weight = 0.0;
    for (size_t i : order) {
      const Example& ex = examples[i];
      // Skip, don't scale: a NaN/inf/non-positive weight must never leak
      // into the AdaGrad accumulators or the reported loss.
      double w = static_cast<double>(ex.weight);
      if (!std::isfinite(w) || w <= 0.0) continue;
      std::vector<double> probs = Probabilities(ex.features);
      loss += w * -std::log(std::max(1e-12, probs[ex.label]));
      total_weight += w;
      Update(ex, config.learning_rate, config.l2, w);
    }
    last_loss = total_weight > 0.0 ? loss / total_weight : 0.0;
    if (epoch_losses != nullptr) epoch_losses->push_back(last_loss);
  }
  return last_loss;
}

std::string LinearModel::SaveToString() const {
  std::string out = "uctr_linear_model v1\n";
  out += std::to_string(num_classes_) + " " + std::to_string(dim_) + "\n";
  char buf[64];
  auto dump = [&](const std::vector<float>& values) {
    size_t nonzero = 0;
    for (float v : values) {
      if (v != 0.0f) ++nonzero;
    }
    out += std::to_string(nonzero) + "\n";
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i] == 0.0f) continue;
      std::snprintf(buf, sizeof(buf), "%zu %.9g\n", i,
                    static_cast<double>(values[i]));
      out += buf;
    }
  };
  dump(weights_);
  dump(adagrad_);
  return out;
}

namespace {

/// Strict non-negative integer: digits only (ParseNumber is deliberately
/// lenient about currency/percent text, which a weight file must not
/// contain).
std::optional<size_t> ParseIndex(const std::string& text) {
  if (text.empty() || text.size() > 18) return std::nullopt;
  size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  return value;
}

/// Strict finite decimal/scientific float, full-string match.
std::optional<double> ParseWeightValue(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

Result<LinearModel> LinearModel::LoadFromString(std::string_view text) {
  // Validation contract: either the whole file is well-formed and the
  // returned model is fully populated, or a ParseError comes back and no
  // model escapes — a truncated, corrupt, or concatenated file can never
  // produce a silently half-loaded model.
  std::vector<std::string> lines = Split(text, '\n');
  size_t line = 0;
  auto next_line = [&]() -> Result<std::string> {
    if (line >= lines.size()) {
      return Status::ParseError("truncated model file");
    }
    return lines[line++];
  };

  UCTR_ASSIGN_OR_RETURN(std::string header, next_line());
  if (Trim(header) != "uctr_linear_model v1") {
    return Status::ParseError("not a uctr linear model file");
  }
  UCTR_ASSIGN_OR_RETURN(std::string dims, next_line());
  std::vector<std::string> parts = SplitWhitespace(dims);
  if (parts.size() != 2) return Status::ParseError("bad dimensions line");
  auto classes = ParseIndex(parts[0]);
  auto dim = ParseIndex(parts[1]);
  constexpr size_t kMaxClasses = 1u << 16;
  constexpr size_t kMaxDim = 1u << 28;
  if (!classes || !dim || *classes < 2 || *classes > kMaxClasses ||
      *dim < 1 || *dim > kMaxDim) {
    return Status::ParseError("bad dimensions");
  }
  LinearModel model(static_cast<int>(*classes), *dim);

  auto load = [&](std::vector<float>* values, bool non_negative) -> Status {
    UCTR_ASSIGN_OR_RETURN(std::string count_line, next_line());
    auto count = ParseIndex(Trim(count_line));
    if (!count) return Status::ParseError("bad entry count");
    if (*count > values->size()) {
      return Status::ParseError("entry count exceeds weight matrix size");
    }
    // Entries are written in ascending index order; enforcing that catches
    // duplicated, reordered, or spliced-together files.
    bool first = true;
    size_t last_index = 0;
    for (size_t i = 0; i < *count; ++i) {
      UCTR_ASSIGN_OR_RETURN(std::string entry, next_line());
      std::vector<std::string> fields = SplitWhitespace(entry);
      if (fields.size() != 2) return Status::ParseError("bad weight entry");
      auto index = ParseIndex(fields[0]);
      auto value = ParseWeightValue(fields[1]);
      if (!index || *index >= values->size()) {
        return Status::ParseError("weight index out of range");
      }
      if (!value) {
        return Status::ParseError("non-finite or malformed weight value");
      }
      if (non_negative && *value < 0.0) {
        return Status::ParseError("negative AdaGrad accumulator");
      }
      if (!first && *index <= last_index) {
        return Status::ParseError("weight indices not strictly ascending");
      }
      first = false;
      last_index = *index;
      (*values)[*index] = static_cast<float>(*value);
    }
    return Status::OK();
  };
  UCTR_RETURN_NOT_OK(load(&model.weights_, /*non_negative=*/false));
  UCTR_RETURN_NOT_OK(load(&model.adagrad_, /*non_negative=*/true));
  // Anything besides trailing blank lines means the file was not produced
  // by SaveToString (e.g. two files concatenated): reject it.
  for (; line < lines.size(); ++line) {
    if (!Trim(lines[line]).empty()) {
      return Status::ParseError("trailing content after model data");
    }
  }
  return model;
}

double LinearModel::Evaluate(const std::vector<Example>& examples) const {
  if (examples.empty()) return 0.0;
  size_t correct = 0;
  for (const Example& ex : examples) {
    if (Predict(ex.features) == ex.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(examples.size());
}

}  // namespace uctr::model
