#include "model/features.h"

#include <cmath>
#include <set>

#include "common/numeric.h"
#include "common/string_util.h"

namespace uctr::model {

uint32_t HashFeature(std::string_view name) {
  uint32_t h = 2166136261u;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

void FeatureExtractor::Add(FeatureVector* out, std::string_view name,
                           float value) const {
  out->push_back(
      {static_cast<uint32_t>(HashFeature(name) % config_.dim), value});
}

void FeatureExtractor::AddLexical(const Sample& sample,
                                  FeatureVector* out) const {
  std::vector<std::string> tokens = WordTokens(sample.sentence);
  for (size_t i = 0; i < tokens.size(); ++i) {
    Add(out, "u:" + tokens[i]);
    if (i + 1 < tokens.size()) {
      Add(out, "b:" + tokens[i] + "_" + tokens[i + 1]);
    }
  }
  size_t bucket = std::min<size_t>(tokens.size() / 4, 8);
  Add(out, "len:" + std::to_string(bucket));
}

void FeatureExtractor::AddAlignment(const Sample& sample,
                                    FeatureVector* out) const {
  std::vector<std::string> tokens = WordTokens(sample.sentence);
  if (tokens.empty()) return;

  // Token inventory of the evidence.
  const Table& table = sample.evidence_table();
  std::set<std::string> table_tokens;
  std::set<double> table_numbers;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Value& v = table.cell(r, c);
      if (v.is_null()) continue;
      for (const std::string& t : WordTokens(v.ToDisplayString())) {
        table_tokens.insert(t);
      }
      if (v.is_number()) table_numbers.insert(v.number());
    }
  }
  for (size_t c = 0; c < table.num_columns(); ++c) {
    for (const std::string& t : WordTokens(table.schema().column(c).name)) {
      table_tokens.insert(t);
    }
  }
  std::set<std::string> text_tokens;
  std::set<double> text_numbers;
  for (const std::string& s : sample.paragraph) {
    for (const std::string& t : WordTokens(s)) {
      text_tokens.insert(t);
      if (auto n = ParseNumber(t)) text_numbers.insert(*n);
    }
  }

  size_t table_hits = 0, text_hits = 0;
  size_t num_match = 0, num_miss = 0;
  for (const std::string& t : tokens) {
    if (table_tokens.count(t)) ++table_hits;
    if (text_tokens.count(t)) ++text_hits;
    if (auto n = ParseNumber(t)) {
      bool matched = false;
      for (double x : table_numbers) {
        if (NearlyEqual(*n, x, 1e-6, 1e-6)) matched = true;
      }
      for (double x : text_numbers) {
        if (NearlyEqual(*n, x, 1e-6, 1e-6)) matched = true;
      }
      (matched ? num_match : num_miss) += 1;
    }
  }
  double coverage = static_cast<double>(table_hits) / tokens.size();
  Add(out, "align:table_cov",
      static_cast<float>(coverage));
  Add(out, "align:table_cov_b" +
               std::to_string(static_cast<int>(coverage * 5)));
  Add(out, "align:text_cov",
      static_cast<float>(static_cast<double>(text_hits) / tokens.size()));
  Add(out, "align:num_match", static_cast<float>(num_match));
  Add(out, "align:num_miss", static_cast<float>(num_miss));
  if (num_miss > 0) Add(out, "align:has_num_miss");
  if (!sample.paragraph.empty()) Add(out, "align:has_text");
}

void FeatureExtractor::AddInterpreter(const Sample& sample,
                                      FeatureVector* out) const {
  if (interpreter_ == nullptr) return;
  auto interp = interpreter_->Interpret(sample.sentence,
                                        sample.evidence_table(),
                                        TaskType::kFactVerification,
                                        sample.exec);
  if (!interp.ok()) {
    Add(out, "interp:none");
    return;
  }
  const Interpretation& best = interp.ValueOrDie();
  Add(out, "interp:found");
  Add(out, "interp:score", static_cast<float>(best.score));
  bool verdict = best.result.scalar().boolean();
  // Verdict weighted by parse confidence: a confident parse saying "true"
  // is the strongest Supported signal the model can receive.
  Add(out, verdict ? "interp:true" : "interp:false",
      static_cast<float>(best.score));
  Add(out, verdict ? "interp:true_flag" : "interp:false_flag");
  if (best.score > 0.75) {
    Add(out, verdict ? "interp:true_hi" : "interp:false_hi");
  }
}

FeatureVector FeatureExtractor::Extract(const Sample& sample) const {
  FeatureVector out;
  Add(&out, "bias");
  if (config_.lexical) AddLexical(sample, &out);
  if (config_.alignment) AddAlignment(sample, &out);
  if (config_.interpreter &&
      sample.task == TaskType::kFactVerification) {
    AddInterpreter(sample, &out);
  }
  return out;
}

}  // namespace uctr::model
