#ifndef UCTR_MODEL_CONFIDENCE_H_
#define UCTR_MODEL_CONFIDENCE_H_

#include "common/result.h"
#include "gen/sample.h"
#include "model/qa_model.h"
#include "model/verifier.h"

namespace uctr::model {

/// \brief How confident the current round's model is in its own
/// pseudo-label for a candidate sample (self-training, the sequel
/// paper's UCTR-ST loop). Scores live in [0, 1).
struct Confidence {
  /// MarginToConfidence of the model's decision margin.
  double score = 0.0;
  /// True when the model's prediction agrees with the label the
  /// generator attached to the sample (self-consistency check).
  bool agrees = false;
};

/// \brief Squashes a decision margin into [0, 1): m / (1 + m).
/// Monotone, 0 at margin 0, asymptotically 1 — so thresholds compose
/// across the verifier's probability margins (bounded by 1) and the QA
/// model's unbounded combined-score margins. Returns InvalidArgument for
/// NaN, infinite, or negative margins: a corrupted margin must never
/// silently become a confident sample.
Result<double> MarginToConfidence(double margin);

/// \brief Scores a fact-verification candidate: margin = p_top − p_second
/// of the verifier's class probabilities; `agrees` compares the argmax
/// against sample.label. Non-verification samples get score 0 / disagree.
Result<Confidence> ScoreSample(const VerifierModel& model,
                               const Sample& sample);

/// \brief Scores a QA candidate: margin from PredictWithMargin (0 when
/// the answer came from the span fallback, which carries no program
/// evidence); `agrees` uses numeric-tolerant AnswersMatch against
/// sample.answer. Non-QA samples get score 0 / disagree.
Result<Confidence> ScoreSample(const QaModel& model, const Sample& sample);

/// \brief One self-training round's filtering rule.
struct FilterPolicy {
  /// Minimum confidence score to keep a sample.
  double threshold = 0.5;
  /// Sharpening temperature for kept-sample weights:
  /// weight = score^(1/temperature). 1.0 = weight equals the score;
  /// lower values sharpen toward 0/1, higher flatten toward uniform.
  double temperature = 1.0;
  /// Drop samples whose model prediction contradicts the generated
  /// label, regardless of confidence (self-consistency filtering).
  bool require_agreement = true;
};

/// \brief Keep/drop plus the training weight for kept samples.
struct FilterDecision {
  bool keep = false;
  double weight = 0.0;
};

/// \brief Applies `policy` to a scored sample. Kept samples get
/// weight = score^(1/temperature), guaranteed finite and positive.
/// Rejects non-finite scores and non-positive temperatures.
Result<FilterDecision> ApplyPolicy(const Confidence& confidence,
                                   const FilterPolicy& policy);

}  // namespace uctr::model

#endif  // UCTR_MODEL_CONFIDENCE_H_
