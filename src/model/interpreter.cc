#include "model/interpreter.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "table/index.h"

namespace uctr::model {

namespace {

/// Fraction of `phrase` tokens that occur in `sentence_tokens`.
double CoverageScore(const std::string& phrase,
                     const std::set<std::string>& sentence_tokens) {
  std::vector<std::string> tokens = WordTokens(phrase);
  if (tokens.empty()) return 0.0;
  size_t hits = 0;
  for (const std::string& t : tokens) {
    if (sentence_tokens.count(t)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(tokens.size());
}

/// Ordinal mention in the sentence ("2nd", "third", ...), or 0.
int FindOrdinal(const std::vector<std::string>& tokens) {
  static const std::pair<const char*, int> kWords[] = {
      {"first", 1},  {"second", 2}, {"third", 3}, {"fourth", 4},
      {"fifth", 5},  {"1st", 1},    {"2nd", 2},   {"3rd", 3},
      {"4th", 4},    {"5th", 5},
  };
  for (const std::string& t : tokens) {
    for (const auto& [word, n] : kWords) {
      if (t == word) return n;
    }
  }
  return 0;
}

nlgen::NlGeneratorConfig CanonicalConfig() {
  nlgen::NlGeneratorConfig config;
  config.stochastic = false;
  return config;
}

}  // namespace

NlInterpreter::NlInterpreter(std::vector<ProgramTemplate> templates)
    : templates_(std::move(templates)),
      canonical_generator_(CanonicalConfig()) {}

std::string NlInterpreter::ClaimedValue(const std::string& sentence) {
  std::string lowered = ToLower(sentence);
  size_t pos = std::string::npos;
  size_t verb_len = 0;
  for (std::string_view verb : {" is ", " was ", " are ", " were "}) {
    size_t p = lowered.rfind(verb);
    if (p != std::string::npos && (pos == std::string::npos || p > pos)) {
      pos = p;
      verb_len = verb.size();
    }
  }
  if (pos == std::string::npos) return "";
  std::string tail = Trim(sentence.substr(pos + verb_len));
  // Strip hedges and negations that precede the value.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::string_view hedge :
         {"about ", "approximately ", "around ", "roughly ", "not ",
          "the same as ", "equal to "}) {
      if (tail.size() > hedge.size() &&
          EqualsIgnoreCase(tail.substr(0, hedge.size()), hedge)) {
        tail = Trim(tail.substr(hedge.size()));
        changed = true;
      }
    }
  }
  while (!tail.empty() &&
         (tail.back() == '.' || tail.back() == '?' || tail.back() == '!')) {
    tail.pop_back();
  }
  return Trim(tail);
}

Result<std::map<std::string, std::string>> NlInterpreter::BindTemplate(
    const ProgramTemplate& tmpl, const std::string& sentence,
    const Table& table, TaskType task) const {
  std::vector<std::string> tokens = WordTokens(sentence);
  std::set<std::string> token_set(tokens.begin(), tokens.end());

  std::map<std::string, std::string> bindings;
  std::map<std::string, size_t> column_of;
  std::set<size_t> used_columns;
  std::map<std::string, std::set<std::string>> used_values;  // per column id

  for (const Placeholder& p : tmpl.placeholders) {
    switch (p.kind) {
      case Placeholder::Kind::kColumn: {
        double best = 0.0;
        size_t best_col = table.num_columns();
        for (size_t c = 0; c < table.num_columns(); ++c) {
          if (used_columns.count(c)) continue;
          if (p.has_type_constraint &&
              table.schema().column(c).type != p.column_type) {
            continue;
          }
          double score =
              CoverageScore(table.schema().column(c).name, token_set);
          if (score > best) {
            best = score;
            best_col = c;
          }
        }
        if (best_col == table.num_columns() || best <= 0.0) {
          return Status::NotFound("no column matches slot '" + p.id + "'");
        }
        used_columns.insert(best_col);
        column_of[p.id] = best_col;
        bindings[p.id] = table.schema().column(best_col).name;
        break;
      }
      case Placeholder::Kind::kValue: {
        auto it = column_of.find(p.column_id);
        if (it == column_of.end()) {
          return Status::Internal("value slot before its column slot");
        }
        // Cached display strings: RankAll scores every template against
        // the same table, so the per-cell rendering is paid once.
        const TableIndex::Column& cache = table.index().column(it->second);
        double best = 0.0;
        std::string best_value;
        for (size_t r = 0; r < table.num_rows(); ++r) {
          if (cache.is_null[r]) continue;
          const std::string& display = cache.display[r];
          if (used_values[p.column_id].count(display)) continue;
          double score = CoverageScore(display, token_set);
          if (score > best) {
            best = score;
            best_value = display;
          }
        }
        if (best < 0.5) {
          return Status::NotFound("no cell value matches slot '" + p.id +
                                  "'");
        }
        used_values[p.column_id].insert(best_value);
        bindings[p.id] = best_value;
        break;
      }
      case Placeholder::Kind::kRow: {
        const TableIndex::Column& names = table.index().column(0);
        double best = 0.0;
        std::string best_name;
        for (size_t r = 0; r < table.num_rows(); ++r) {
          if (names.is_null[r]) continue;
          const std::string& display = names.display[r];
          if (used_values["__rows__"].count(display)) continue;
          double score = CoverageScore(display, token_set);
          if (score > best) {
            best = score;
            best_name = display;
          }
        }
        if (best < 0.5) {
          return Status::NotFound("no row name matches slot '" + p.id + "'");
        }
        used_values["__rows__"].insert(best_name);
        bindings[p.id] = best_name;
        break;
      }
      case Placeholder::Kind::kOrdinal: {
        int n = FindOrdinal(tokens);
        if (n == 0) {
          return Status::NotFound("no ordinal mention in the sentence");
        }
        bindings[p.id] = std::to_string(n);
        break;
      }
      case Placeholder::Kind::kDerive: {
        if (task != TaskType::kFactVerification) {
          return Status::InvalidArgument(
              "derive slot only binds for claims");
        }
        std::string claimed = ClaimedValue(sentence);
        if (claimed.empty()) {
          return Status::NotFound("no claimed value in the sentence");
        }
        bindings[p.id] = claimed;
        break;
      }
    }
  }
  return bindings;
}

std::vector<Interpretation> NlInterpreter::RankAll(
    const std::string& sentence, const Table& table, TaskType task,
    const ExecOptions& exec) const {
  std::vector<Interpretation> out;
  for (size_t i = 0; i < templates_.size(); ++i) {
    const ProgramTemplate& tmpl = templates_[i];
    // Claim templates only read claims, question templates only questions.
    bool is_claim_template = tmpl.type == ProgramType::kLogicalForm;
    if (is_claim_template != (task == TaskType::kFactVerification)) continue;

    auto bindings = BindTemplate(tmpl, sentence, table, task);
    if (!bindings.ok()) continue;
    auto filled = tmpl.Fill(bindings.ValueOrDie());
    if (!filled.ok()) continue;

    Interpretation interp;
    interp.program.type = tmpl.type;
    interp.program.text = std::move(filled).ValueOrDie();
    interp.bindings = std::move(bindings).ValueOrDie();
    interp.template_index = i;

    auto executed = interp.program.Execute(table, exec);
    if (!executed.ok()) continue;
    interp.result = std::move(executed).ValueOrDie();

    auto re_realized = canonical_generator_.GenerateCanonical(interp.program);
    if (!re_realized.ok()) continue;
    interp.score = TokenF1(re_realized.ValueOrDie(), sentence);
    out.push_back(std::move(interp));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Interpretation& a, const Interpretation& b) {
                     return a.score > b.score;
                   });
  return out;
}

Result<Interpretation> NlInterpreter::Interpret(
    const std::string& sentence, const Table& table, TaskType task,
    const ExecOptions& exec) const {
  std::vector<Interpretation> ranked = RankAll(sentence, table, task, exec);
  if (ranked.empty()) {
    return Status::NotFound("no template binds and executes");
  }
  return ranked.front();
}

}  // namespace uctr::model
