#ifndef UCTR_MODEL_VERIFIER_H_
#define UCTR_MODEL_VERIFIER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "gen/sample.h"
#include "hybrid/text_to_table.h"
#include "model/features.h"
#include "model/interpreter.h"
#include "model/linear_model.h"
#include "program/template.h"

namespace uctr::model {

/// \brief Configuration of the fact-verification model.
struct VerifierConfig {
  /// 2 = Supported/Refuted (FEVEROUS protocol), 3 = +Unknown
  /// (SEM-TAB-FACTS protocol).
  int num_classes = 2;
  /// Integrate paragraph text into the table (Text-To-Table) before
  /// interpreting a claim — the model's joint table-text reasoning path.
  bool use_text_expansion = true;
  FeatureConfig features;
  TrainConfig train;
};

/// \brief The trainable fact-verification model (the role TAPAS and the
/// FEVEROUS baseline play in the paper): a linear classifier over lexical,
/// alignment, and program-interpretation features.
///
/// Training data decides everything else — the same architecture is
/// trained on gold data (supervised), UCTR synthetic data (unsupervised),
/// MQA-QG data (baseline), or a few labeled samples (few-shot).
/// Thread safety (audited for the serving subsystem): Predict and
/// Accuracy are const over state written only by the constructor, Train,
/// and LoadWeights — there are no mutable members, lazy caches, or
/// globals on the inference path (NlInterpreter, FeatureExtractor,
/// TextToTable, LinearModel are likewise const-correct). Concurrent
/// Predict calls are therefore data-race-free; Train/LoadWeights must be
/// externally serialized against them.
class VerifierModel {
 public:
  VerifierModel(VerifierConfig config,
                std::vector<ProgramTemplate> claim_templates);

  // The extractor holds a pointer to this object's interpreter, so the
  // compiler-generated copy/move would leave it aimed at the source
  // object (dangling once the source dies). These overloads re-link it.
  VerifierModel(const VerifierModel& other);
  VerifierModel& operator=(const VerifierModel& other);
  VerifierModel(VerifierModel&& other) noexcept;
  VerifierModel& operator=(VerifierModel&& other) noexcept;

  /// \brief Trains (or continues training) on `data`. Sample weights
  /// scale each example's gradient/loss contribution (1.0 = classic
  /// unweighted training). When `epoch_losses` is non-null it receives
  /// the per-epoch loss trajectory (see LinearModel::Train).
  void Train(const Dataset& data, Rng* rng,
             std::vector<double>* epoch_losses = nullptr);

  Label Predict(const Sample& sample) const;

  /// \brief Softmax class probabilities for `sample`, indexed by
  /// LabelToClass order (Supported, Refuted[, Unknown]). The margin
  /// between the top two entries is the model's confidence signal for
  /// self-training (model::ScoreSample).
  std::vector<double> Probabilities(const Sample& sample) const;

  /// \brief Label accuracy over `data`.
  double Accuracy(const Dataset& data) const;

  /// \brief Serializes the trained classifier weights (the templates and
  /// config are code, not state). Restore with LoadWeights on a model
  /// built with the same config.
  std::string SaveWeights() const;

  /// \brief Restores weights saved by SaveWeights. Returns an error
  /// Status on truncated/corrupt input or a class-count/dimension
  /// mismatch with this model's config; on error the current weights are
  /// left untouched (never a half-loaded model).
  Status LoadWeights(std::string_view text);

 private:
  /// The sample with its paragraph folded into the table, or nullopt
  /// when no expansion applies — callers keep using the original Sample
  /// then, so the common no-paragraph serving path never copies a table.
  std::optional<Sample> WithTextEvidence(const Sample& sample) const;

  /// Points extractor_ at this object's interpreter_ (or null when
  /// interpreter features are disabled). Called after copy/move.
  void RelinkExtractor();

  VerifierConfig config_;
  NlInterpreter interpreter_;
  FeatureExtractor extractor_;
  hybrid::TextToTable text_to_table_;
  LinearModel model_;
};

}  // namespace uctr::model

#endif  // UCTR_MODEL_VERIFIER_H_
