#include "model/qa_model.h"

#include <algorithm>

#include "common/numeric.h"
#include "common/string_util.h"

namespace uctr::model {

bool AnswersMatch(const std::string& predicted, const std::string& gold) {
  if (predicted.empty() || gold.empty()) {
    return predicted.empty() && gold.empty();
  }
  Value a = Value::FromText(predicted);
  Value b = Value::FromText(gold);
  if (a.Equals(b)) return true;
  // Percent-scale tolerance: 0.2005 vs 20.05(%) — accept a 100x factor
  // when both parse numerically (TAT-QA answer normalization).
  auto na = a.ToNumber();
  auto nb = b.ToNumber();
  if (na.ok() && nb.ok()) {
    double x = na.ValueOrDie();
    double y = nb.ValueOrDie();
    if (NearlyEqual(x * 100.0, y, 1e-6, 1e-6) ||
        NearlyEqual(x, y * 100.0, 1e-6, 1e-6)) {
      return true;
    }
    return false;
  }
  return EqualsIgnoreCase(Trim(predicted), Trim(gold));
}

QaModel::QaModel(QaConfig config,
                 std::vector<ProgramTemplate> question_templates)
    : config_(config),
      interpreter_(std::move(question_templates)),
      extractor_([&] {
        FeatureConfig fc = config.features;
        fc.interpreter = false;  // the classifier is purely lexical
        return fc;
      }(), nullptr),
      template_classifier_(
          std::max<int>(2,
                        static_cast<int>(interpreter_.templates().size())),
          config.features.dim) {}

std::vector<Interpretation> QaModel::Candidates(const Sample& sample) const {
  std::vector<Interpretation> out;
  if (config_.use_table) {
    out = interpreter_.RankAll(sample.sentence, sample.evidence_table(),
                               TaskType::kQuestionAnswering, sample.exec);
  }
  // Expansion reads the table too, so it needs both evidence kinds; the
  // Text-Span-only baseline (use_table = false) must not see cells.
  if (config_.use_table && config_.use_text && !sample.paragraph.empty()) {
    auto expanded = text_to_table_.Apply(sample.evidence_table(),
                                         sample.paragraph);
    if (expanded.ok()) {
      std::vector<Interpretation> more = interpreter_.RankAll(
          sample.sentence, expanded.ValueOrDie(),
          TaskType::kQuestionAnswering, sample.exec);
      for (Interpretation& interp : more) {
        // Slight preference for readings that use the joint evidence.
        interp.score += 0.05;
        out.push_back(std::move(interp));
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Interpretation& a, const Interpretation& b) {
                     return a.score > b.score;
                   });
  return out;
}

std::string QaModel::ExtractSpanAnswer(const Sample& sample) const {
  if (!config_.use_text || sample.paragraph.empty()) return "";
  double best = -1.0;
  std::string best_sentence;
  for (const std::string& s : sample.paragraph) {
    double score = TokenF1(s, sample.sentence);
    if (score > best) {
      best = score;
      best_sentence = s;
    }
  }
  if (best_sentence.empty()) return "";
  // Prefer a number from the sentence that the question does not already
  // contain (the asked-for quantity); fall back to the trailing phrase.
  std::vector<std::string> q_tokens = WordTokens(sample.sentence);
  std::vector<std::string> s_tokens = WordTokens(best_sentence);
  for (auto it = s_tokens.rbegin(); it != s_tokens.rend(); ++it) {
    if (!LooksNumeric(*it)) continue;
    if (std::find(q_tokens.begin(), q_tokens.end(), *it) != q_tokens.end()) {
      continue;
    }
    return *it;
  }
  return NlInterpreter::ClaimedValue(best_sentence);
}

void QaModel::Train(const Dataset& data, Rng* rng,
                    std::vector<double>* epoch_losses) {
  std::vector<Example> examples;
  for (const Sample& s : data.samples) {
    if (s.task != TaskType::kQuestionAnswering) continue;
    std::vector<Interpretation> candidates = Candidates(s);
    // Weak supervision: the target class is the best-scoring candidate
    // whose execution reproduces the gold answer.
    int target = -1;
    for (const Interpretation& interp : candidates) {
      if (AnswersMatch(interp.result.ToDisplayString(), s.answer)) {
        target = static_cast<int>(interp.template_index);
        break;
      }
    }
    if (target < 0) continue;
    Example ex;
    ex.features = extractor_.Extract(s);
    ex.label = target;
    ex.weight = static_cast<float>(s.weight);
    examples.push_back(std::move(ex));
  }
  template_classifier_.Train(examples, config_.train, rng, epoch_losses);
  trained_ = trained_ || !examples.empty();
}

std::string QaModel::Predict(const Sample& sample) const {
  return PredictWithMargin(sample).answer;
}

QaModel::Prediction QaModel::PredictWithMargin(const Sample& sample) const {
  Prediction out;
  std::vector<Interpretation> candidates = Candidates(sample);
  if (candidates.empty()) {
    out.answer = ExtractSpanAnswer(sample);
    return out;  // span fallback or abstention: no program margin
  }
  out.from_program = true;

  if (!trained_) {
    out.answer = candidates.front().result.ToDisplayString();
    out.margin = candidates.front().score -
                 (candidates.size() > 1 ? candidates[1].score : 0.0);
    return out;
  }

  std::vector<double> prior =
      template_classifier_.Probabilities(extractor_.Extract(sample));
  // The learned prior disambiguates among *plausible* parses: only
  // candidates close to the best binding score compete, so a confident
  // prior can re-rank near-ties but never rescue a clearly worse binding.
  constexpr double kPlausibleMargin = 0.2;
  double top_binding = candidates.front().score;
  const Interpretation* best = nullptr;
  double best_score = -1.0;
  double second_score = 0.0;  // a lone candidate's runner-up counts as 0
  for (const Interpretation& interp : candidates) {
    if (interp.score < top_binding - kPlausibleMargin) continue;
    double p = interp.template_index < prior.size()
                   ? prior[interp.template_index]
                   : 0.0;
    double score = interp.score * (1.0 + config_.classifier_weight * p);
    if (score > best_score) {
      second_score = best_score < 0.0 ? 0.0 : best_score;
      best_score = score;
      best = &interp;
    } else if (score > second_score) {
      second_score = score;
    }
  }
  out.answer = best->result.ToDisplayString();
  out.margin = best_score - second_score;
  return out;
}

bool QaModel::PredictCorrect(const Sample& sample) const {
  return AnswersMatch(Predict(sample), sample.answer);
}

std::string QaModel::SaveWeights() const {
  return template_classifier_.SaveToString();
}

Status QaModel::LoadWeights(std::string_view text) {
  UCTR_ASSIGN_OR_RETURN(LinearModel loaded,
                        LinearModel::LoadFromString(text));
  if (loaded.num_classes() != template_classifier_.num_classes() ||
      loaded.dim() != template_classifier_.dim()) {
    return Status::InvalidArgument(
        "saved weights do not match this model's configuration");
  }
  template_classifier_ = std::move(loaded);
  trained_ = true;
  return Status::OK();
}

}  // namespace uctr::model
