#ifndef UCTR_SQL_AST_H_
#define UCTR_SQL_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "table/value.h"

namespace uctr::sql {

/// \brief Aggregate applied to a select item. kNone selects raw values.
enum class AggFunc {
  kNone = 0,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
};

const char* AggFuncToString(AggFunc f);

/// \brief Binary arithmetic inside a select item (the paper's sum(+) and
/// diff(-) reasoning types): `col_a + col_b` / `col_a - col_b`.
enum class ArithOp {
  kNone = 0,
  kAdd,
  kSub,
};

/// \brief One projection: `col`, `AGG(col)`, `AGG(*)`, or `col (+|-) col`.
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  bool star = false;        // COUNT(*)
  bool distinct = false;    // COUNT(DISTINCT col)
  std::string column;       // left column (empty when star)
  ArithOp arith = ArithOp::kNone;
  std::string rhs_column;   // right column when arith != kNone
};

/// \brief Comparison operator in a WHERE condition.
enum class CmpOp {
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
};

const char* CmpOpToString(CmpOp op);

/// \brief One conjunct: `column op literal`.
struct Condition {
  std::string column;
  CmpOp op = CmpOp::kEq;
  Value literal;
};

struct OrderBy {
  std::string column;
  bool descending = false;
};

/// \brief Parsed `SELECT ... FROM w [WHERE ...] [ORDER BY ...] [LIMIT n]`.
///
/// This is exactly the SQUALL template subset the paper samples: queries,
/// not updates; a single table `w`; conjunctive WHERE.
struct SelectStatement {
  std::vector<SelectItem> items;
  std::vector<Condition> where;
  std::optional<OrderBy> order_by;
  std::optional<int64_t> limit;

  /// \brief Re-renders the statement as canonical SQL text.
  std::string ToString() const;
};

}  // namespace uctr::sql

#endif  // UCTR_SQL_AST_H_
