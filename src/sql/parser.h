#ifndef UCTR_SQL_PARSER_H_
#define UCTR_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"

namespace uctr::sql {

/// \brief Parses a query in the supported SELECT subset:
///
///   SELECT item (, item)* FROM w
///     [WHERE col op literal (AND col op literal)*]
///     [ORDER BY col [ASC|DESC]] [LIMIT n]
///
/// where item is `col`, `AGG(col)`, `COUNT(*)`, `COUNT(DISTINCT col)`, or
/// `col (+|-) col`, and AGG is COUNT/SUM/AVG/MIN/MAX.
Result<SelectStatement> Parse(std::string_view query);

}  // namespace uctr::sql

#endif  // UCTR_SQL_PARSER_H_
