#ifndef UCTR_SQL_EXEC_INTERNAL_H_
#define UCTR_SQL_EXEC_INTERNAL_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "table/index.h"
#include "table/table.h"

/// Shared SQL execution primitives. Both the tree-walk executor
/// (sql/executor.cc) and the bytecode VM (ir/vm.cc) call these, so the two
/// paths run literally the same row-level code — the byte-identity contract
/// between them holds by construction, not by parallel maintenance.
namespace uctr::sql::internal {

/// `cell op literal`; a null cell never matches (SQL three-valued logic
/// collapsed to false).
bool EvalCondition(CmpOp op, const Value& literal, const Value& cell);

/// EvalCondition over cached column data; cell nullness handled here, the
/// rest mirrors Value::Equals/Compare exactly (see TableIndex contract).
bool EvalConditionIndexed(const TableIndex::Column& col, size_t r, CmpOp op,
                          const TableIndex::LiteralKey& lit);

/// One WHERE conjunct through the index: returns `rows` (which must be in
/// ascending order, as produced by iota + prior narrowing) narrowed to the
/// matching subset. Equality against a non-null non-numeric literal
/// intersects with the hash index posting list (no per-row work, nothing
/// added to rows_scanned) — and when `rows` covers the whole table it is
/// necessarily the identity permutation, so the posting list is returned
/// outright in O(matches); every other shape tests rows one by one.
std::vector<size_t> FilterOneIndexed(const TableIndex::Column& col, CmpOp op,
                                     const TableIndex::LiteralKey& lit,
                                     const std::vector<size_t>& rows,
                                     size_t* rows_scanned);

/// In-place variant for the walker's narrow-as-you-go WHERE loop.
void FilterOneIndexed(const TableIndex::Column& col, CmpOp op,
                      const TableIndex::LiteralKey& lit,
                      std::vector<size_t>* rows, size_t* rows_scanned);

/// Aggregate over `rows` of column `col` (ignored when `star`). The column
/// index must already be resolved; callers keep the walker's resolution
/// order by resolving immediately before the call.
Result<Value> EvalAggregate(AggFunc agg, bool star, bool distinct, size_t col,
                            const Table& table,
                            const std::vector<size_t>& rows);

/// EvalAggregate over the numeric column cache (SUM/AVG read pre-parsed
/// doubles, MIN/MAX compare cached keys, COUNT DISTINCT hashes cached
/// display strings without materializing copies).
Result<Value> EvalAggregateIndexed(AggFunc agg, bool star, bool distinct,
                                   size_t col, const Table& table,
                                   const TableIndex& index,
                                   const std::vector<size_t>& rows);

}  // namespace uctr::sql::internal

#endif  // UCTR_SQL_EXEC_INTERNAL_H_
