#ifndef UCTR_SQL_LEXER_H_
#define UCTR_SQL_LEXER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace uctr::sql {

/// \brief Tokenizes a SQL query string. The token list always ends with a
/// kEnd sentinel. Keywords are recognized case-insensitively and uppercased;
/// identifiers keep their original spelling ([brackets]/`backquotes` allow
/// spaces, matching the SQUALL template rendering of real headers).
Result<std::vector<Token>> Lex(std::string_view input);

}  // namespace uctr::sql

#endif  // UCTR_SQL_LEXER_H_
