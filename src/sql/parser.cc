#include "sql/parser.h"

#include <vector>

#include "sql/lexer.h"

namespace uctr::sql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseSelect() {
    UCTR_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    SelectStatement stmt;
    while (true) {
      UCTR_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt.items.push_back(std::move(item));
      if (!AcceptType(TokenType::kComma)) break;
    }
    UCTR_RETURN_NOT_OK(ExpectKeyword("FROM"));
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected table name after FROM");
    }
    Advance();  // table name is always the single table `w`; name ignored.

    if (AcceptKeyword("WHERE")) {
      while (true) {
        UCTR_ASSIGN_OR_RETURN(Condition cond, ParseCondition());
        stmt.where.push_back(std::move(cond));
        if (!AcceptKeyword("AND")) break;
      }
    }
    if (AcceptKeyword("ORDER")) {
      UCTR_RETURN_NOT_OK(ExpectKeyword("BY"));
      UCTR_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
      OrderBy ob;
      ob.column = std::move(col);
      if (AcceptKeyword("DESC")) {
        ob.descending = true;
      } else {
        AcceptKeyword("ASC");
      }
      stmt.order_by = std::move(ob);
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kNumber) {
        return Error("expected number after LIMIT");
      }
      stmt.limit = static_cast<int64_t>(Peek().number);
      Advance();
    }
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing token '" + Peek().text + "'");
    }
    if (stmt.items.empty()) return Error("empty select list");
    return stmt;
  }

 private:
  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    const Token& t = Peek();
    if (t.type == TokenType::kKeyword &&
        (t.text == "COUNT" || t.text == "SUM" || t.text == "AVG" ||
         t.text == "MIN" || t.text == "MAX")) {
      if (t.text == "COUNT") item.agg = AggFunc::kCount;
      if (t.text == "SUM") item.agg = AggFunc::kSum;
      if (t.text == "AVG") item.agg = AggFunc::kAvg;
      if (t.text == "MIN") item.agg = AggFunc::kMin;
      if (t.text == "MAX") item.agg = AggFunc::kMax;
      Advance();
      if (!AcceptType(TokenType::kLParen)) {
        return Error("expected '(' after aggregate");
      }
      if (AcceptType(TokenType::kStar)) {
        if (item.agg != AggFunc::kCount) {
          return Error("'*' only allowed in COUNT(*)");
        }
        item.star = true;
      } else {
        if (AcceptKeyword("DISTINCT")) item.distinct = true;
        UCTR_ASSIGN_OR_RETURN(item.column, ParseIdentifier());
      }
      if (!AcceptType(TokenType::kRParen)) {
        return Error("expected ')' after aggregate argument");
      }
      return item;
    }
    UCTR_ASSIGN_OR_RETURN(item.column, ParseIdentifier());
    if (AcceptType(TokenType::kPlus)) {
      item.arith = ArithOp::kAdd;
      UCTR_ASSIGN_OR_RETURN(item.rhs_column, ParseIdentifier());
    } else if (AcceptType(TokenType::kMinus)) {
      item.arith = ArithOp::kSub;
      UCTR_ASSIGN_OR_RETURN(item.rhs_column, ParseIdentifier());
    }
    return item;
  }

  Result<Condition> ParseCondition() {
    Condition cond;
    UCTR_ASSIGN_OR_RETURN(cond.column, ParseIdentifier());
    switch (Peek().type) {
      case TokenType::kEq:
        cond.op = CmpOp::kEq;
        break;
      case TokenType::kNe:
        cond.op = CmpOp::kNe;
        break;
      case TokenType::kLt:
        cond.op = CmpOp::kLt;
        break;
      case TokenType::kGt:
        cond.op = CmpOp::kGt;
        break;
      case TokenType::kLe:
        cond.op = CmpOp::kLe;
        break;
      case TokenType::kGe:
        cond.op = CmpOp::kGe;
        break;
      default:
        return Error("expected comparison operator");
    }
    Advance();
    const Token& lit = Peek();
    if (lit.type == TokenType::kNumber) {
      cond.literal = Value::NumberWithText(lit.number, lit.text);
      Advance();
    } else if (lit.type == TokenType::kString ||
               lit.type == TokenType::kIdentifier) {
      cond.literal = Value::FromText(lit.text);
      Advance();
    } else {
      return Error("expected literal after comparison operator");
    }
    return cond;
  }

  Result<std::string> ParseIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected identifier, got '" + Peek().text + "'");
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool AcceptType(TokenType type) {
    if (Peek().type == type) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptKeyword(const char* kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw + " near '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status Error(std::string msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> Parse(std::string_view query) {
  UCTR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(query));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

}  // namespace uctr::sql
