#ifndef UCTR_SQL_EXECUTOR_H_
#define UCTR_SQL_EXECUTOR_H_

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"
#include "table/exec_result.h"
#include "table/table.h"

namespace uctr::sql {

/// \brief Execution knobs.
struct ExecOptions {
  /// When true (the default) execution reads through Table::index() — the
  /// lazily built per-column numeric cache, equality hash index, and
  /// cached comparison keys. When false it runs the reference row scan.
  /// Both paths are bit-identical (values, evidence rows, tie-breaking,
  /// EmptyResult/error behavior); tests/index_test.cc proves it
  /// differentially. The scan exists as the executable specification and
  /// for benchmarking the speedup.
  bool use_index = true;
};

/// \brief Executes a parsed statement against a table (the paper's
/// Program-Executor instantiated for SQL; replaces sqlite3).
///
/// Semantics on the supported subset match SQLite: WHERE conjuncts filter
/// rows (NULL never matches), ORDER BY sorts stably, LIMIT truncates,
/// aggregates skip NULLs, COUNT(*) counts rows. Returns kEmptyResult when no
/// value survives — the pipeline discards such programs per Section IV-C.
Result<ExecResult> Execute(const SelectStatement& stmt, const Table& table,
                           const ExecOptions& opts = ExecOptions());

/// \brief Parses and executes in one step.
Result<ExecResult> ExecuteQuery(std::string_view query, const Table& table,
                                const ExecOptions& opts = ExecOptions());

}  // namespace uctr::sql

#endif  // UCTR_SQL_EXECUTOR_H_
