#ifndef UCTR_SQL_EXECUTOR_H_
#define UCTR_SQL_EXECUTOR_H_

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"
#include "table/exec_result.h"
#include "table/table.h"

namespace uctr::sql {

/// \brief Executes a parsed statement against a table (the paper's
/// Program-Executor instantiated for SQL; replaces sqlite3).
///
/// Semantics on the supported subset match SQLite: WHERE conjuncts filter
/// rows (NULL never matches), ORDER BY sorts stably, LIMIT truncates,
/// aggregates skip NULLs, COUNT(*) counts rows. Returns kEmptyResult when no
/// value survives — the pipeline discards such programs per Section IV-C.
Result<ExecResult> Execute(const SelectStatement& stmt, const Table& table);

/// \brief Parses and executes in one step.
Result<ExecResult> ExecuteQuery(std::string_view query, const Table& table);

}  // namespace uctr::sql

#endif  // UCTR_SQL_EXECUTOR_H_
