#include "sql/lexer.h"

#include <cctype>

#include "common/numeric.h"
#include "common/string_util.h"

namespace uctr::sql {

namespace {

const char* kKeywords[] = {"SELECT", "FROM",  "WHERE", "AND",   "OR",
                           "ORDER",  "BY",    "ASC",   "DESC",  "LIMIT",
                           "COUNT",  "SUM",   "AVG",   "MIN",   "MAX",
                           "DISTINCT"};

bool IsKeyword(const std::string& upper) {
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](TokenType type, std::string text, size_t offset) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.offset = offset;
    tokens.push_back(std::move(t));
  };

  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (c == ',') {
      push(TokenType::kComma, ",", start);
      ++i;
    } else if (c == '(') {
      push(TokenType::kLParen, "(", start);
      ++i;
    } else if (c == ')') {
      push(TokenType::kRParen, ")", start);
      ++i;
    } else if (c == '*') {
      push(TokenType::kStar, "*", start);
      ++i;
    } else if (c == '+') {
      push(TokenType::kPlus, "+", start);
      ++i;
    } else if (c == '=') {
      push(TokenType::kEq, "=", start);
      ++i;
    } else if (c == '!') {
      if (i + 1 < input.size() && input[i + 1] == '=') {
        push(TokenType::kNe, "!=", start);
        i += 2;
      } else {
        return Status::ParseError("stray '!' at offset " +
                                  std::to_string(start));
      }
    } else if (c == '<') {
      if (i + 1 < input.size() && input[i + 1] == '=') {
        push(TokenType::kLe, "<=", start);
        i += 2;
      } else if (i + 1 < input.size() && input[i + 1] == '>') {
        push(TokenType::kNe, "<>", start);
        i += 2;
      } else {
        push(TokenType::kLt, "<", start);
        ++i;
      }
    } else if (c == '>') {
      if (i + 1 < input.size() && input[i + 1] == '=') {
        push(TokenType::kGe, ">=", start);
        i += 2;
      } else {
        push(TokenType::kGt, ">", start);
        ++i;
      }
    } else if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < input.size()) {
        if (input[i] == quote) {
          if (i + 1 < input.size() && input[i + 1] == quote) {
            text.push_back(quote);
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          text.push_back(input[i]);
          ++i;
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(start));
      }
      push(TokenType::kString, std::move(text), start);
    } else if (c == '[' || c == '`') {
      char close = (c == '[') ? ']' : '`';
      ++i;
      std::string text;
      while (i < input.size() && input[i] != close) {
        text.push_back(input[i]);
        ++i;
      }
      if (i >= input.size()) {
        return Status::ParseError("unterminated identifier at offset " +
                                  std::to_string(start));
      }
      ++i;  // consume closer
      push(TokenType::kIdentifier, Trim(text), start);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < input.size() &&
                (std::isdigit(static_cast<unsigned char>(input[i + 1])) ||
                 input[i + 1] == '.')) ||
               (c == '.' && i + 1 < input.size() &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      std::string text;
      if (c == '-') {
        text.push_back(c);
        ++i;
      }
      bool seen_dot = false, seen_exp = false;
      while (i < input.size()) {
        char d = input[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          text.push_back(d);
        } else if (d == '.' && !seen_dot && !seen_exp) {
          seen_dot = true;
          text.push_back(d);
        } else if ((d == 'e' || d == 'E') && !seen_exp && !text.empty() &&
                   std::isdigit(static_cast<unsigned char>(text.back()))) {
          seen_exp = true;
          text.push_back(d);
          if (i + 1 < input.size() &&
              (input[i + 1] == '+' || input[i + 1] == '-')) {
            ++i;
            text.push_back(input[i]);
          }
        } else {
          break;
        }
        ++i;
      }
      auto value = ParseNumber(text);
      if (!value) {
        return Status::ParseError("malformed number '" + text +
                                  "' at offset " + std::to_string(start));
      }
      Token t;
      t.type = TokenType::kNumber;
      t.text = text;
      t.number = *value;
      t.offset = start;
      tokens.push_back(std::move(t));
    } else if (c == '-') {
      push(TokenType::kMinus, "-", start);
      ++i;
    } else if (IsIdentChar(c)) {
      std::string text;
      while (i < input.size() && IsIdentChar(input[i])) {
        text.push_back(input[i]);
        ++i;
      }
      std::string upper = ToUpper(text);
      if (IsKeyword(upper)) {
        push(TokenType::kKeyword, std::move(upper), start);
      } else {
        push(TokenType::kIdentifier, std::move(text), start);
      }
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(start));
    }
  }
  push(TokenType::kEnd, "", input.size());
  return tokens;
}

}  // namespace uctr::sql
