#include "sql/executor.h"

#include <algorithm>
#include <numeric>
#include <string_view>
#include <unordered_set>

#include "common/numeric.h"
#include "obs/metrics.h"
#include "sql/exec_internal.h"
#include "sql/parser.h"
#include "table/index.h"

namespace uctr::sql {

namespace internal {

bool EvalCondition(CmpOp op, const Value& literal, const Value& cell) {
  if (cell.is_null()) return false;
  switch (op) {
    case CmpOp::kEq:
      return cell.Equals(literal);
    case CmpOp::kNe:
      return !cell.Equals(literal);
    case CmpOp::kLt:
      return cell.Compare(literal) < 0;
    case CmpOp::kGt:
      return cell.Compare(literal) > 0;
    case CmpOp::kLe:
      return cell.Compare(literal) <= 0;
    case CmpOp::kGe:
      return cell.Compare(literal) >= 0;
  }
  return false;
}

bool EvalConditionIndexed(const TableIndex::Column& col, size_t r, CmpOp op,
                          const TableIndex::LiteralKey& lit) {
  if (col.is_null[r]) return false;
  switch (op) {
    case CmpOp::kEq:
      return TableIndex::CellEquals(col, r, lit);
    case CmpOp::kNe:
      return !TableIndex::CellEquals(col, r, lit);
    case CmpOp::kLt:
      return TableIndex::CellCompare(col, r, lit) < 0;
    case CmpOp::kGt:
      return TableIndex::CellCompare(col, r, lit) > 0;
    case CmpOp::kLe:
      return TableIndex::CellCompare(col, r, lit) <= 0;
    case CmpOp::kGe:
      return TableIndex::CellCompare(col, r, lit) >= 0;
  }
  return false;
}

std::vector<size_t> FilterOneIndexed(const TableIndex::Column& col, CmpOp op,
                                     const TableIndex::LiteralKey& lit,
                                     const std::vector<size_t>& rows,
                                     size_t* rows_scanned) {
  std::vector<size_t> kept;
  if (op == CmpOp::kEq && !lit.null && !lit.numeric) {
    auto hit = col.by_text.find(lit.norm);
    if (hit != col.by_text.end()) {
      // Both lists are ascending: intersect directly. No per-row cell
      // evaluation happens, so nothing is added to rows_scanned. A
      // full-size rows list is the identity permutation (iota narrowed
      // by nothing yet), so the posting list is already the answer.
      if (rows.size() == col.is_null.size()) {
        kept = hit->second;
      } else {
        std::set_intersection(rows.begin(), rows.end(), hit->second.begin(),
                              hit->second.end(), std::back_inserter(kept));
      }
    }
  } else {
    kept.reserve(rows.size());
    *rows_scanned += rows.size();
    for (size_t r : rows) {
      if (EvalConditionIndexed(col, r, op, lit)) kept.push_back(r);
    }
  }
  return kept;
}

void FilterOneIndexed(const TableIndex::Column& col, CmpOp op,
                      const TableIndex::LiteralKey& lit,
                      std::vector<size_t>* rows, size_t* rows_scanned) {
  *rows = FilterOneIndexed(col, op, lit, *rows, rows_scanned);
}

Result<Value> EvalAggregate(AggFunc agg, bool star, bool distinct, size_t col,
                            const Table& table,
                            const std::vector<size_t>& rows) {
  if (agg == AggFunc::kCount) {
    if (star) return Value::Number(static_cast<double>(rows.size()));
    if (distinct) {
      std::unordered_set<std::string> seen;
      for (size_t r : rows) {
        const Value& v = table.cell(r, col);
        if (!v.is_null()) seen.insert(v.ToDisplayString());
      }
      return Value::Number(static_cast<double>(seen.size()));
    }
    size_t count = 0;
    for (size_t r : rows) {
      if (!table.cell(r, col).is_null()) ++count;
    }
    return Value::Number(static_cast<double>(count));
  }

  double sum = 0;
  size_t n = 0;
  bool first = true;
  Value best;
  for (size_t r : rows) {
    const Value& v = table.cell(r, col);
    if (v.is_null()) continue;
    if (agg == AggFunc::kSum || agg == AggFunc::kAvg) {
      UCTR_ASSIGN_OR_RETURN(double x, v.ToNumber());
      sum += x;
      ++n;
    } else {  // MIN / MAX
      if (first) {
        best = v;
        first = false;
      } else if (agg == AggFunc::kMin ? v.Compare(best) < 0
                                      : v.Compare(best) > 0) {
        best = v;
      }
    }
  }
  switch (agg) {
    case AggFunc::kSum:
      if (n == 0) return Status::EmptyResult("SUM over no rows");
      return Value::Number(sum);
    case AggFunc::kAvg:
      if (n == 0) return Status::EmptyResult("AVG over no rows");
      return Value::Number(sum / static_cast<double>(n));
    case AggFunc::kMin:
    case AggFunc::kMax:
      if (first) return Status::EmptyResult("MIN/MAX over no rows");
      return best;
    default:
      return Status::Internal("unexpected aggregate");
  }
}

Result<Value> EvalAggregateIndexed(AggFunc agg, bool star, bool distinct,
                                   size_t col_idx, const Table& table,
                                   const TableIndex& index,
                                   const std::vector<size_t>& rows) {
  if (agg == AggFunc::kCount) {
    if (star) return Value::Number(static_cast<double>(rows.size()));
    const TableIndex::Column& col = index.column(col_idx);
    if (distinct) {
      std::unordered_set<std::string_view> seen;
      for (size_t r : rows) {
        if (!col.is_null[r]) seen.insert(col.display[r]);
      }
      return Value::Number(static_cast<double>(seen.size()));
    }
    size_t count = 0;
    for (size_t r : rows) {
      if (!col.is_null[r]) ++count;
    }
    return Value::Number(static_cast<double>(count));
  }

  const TableIndex::Column& col = index.column(col_idx);
  if (agg == AggFunc::kSum || agg == AggFunc::kAvg) {
    double sum = 0;
    size_t n = 0;
    for (size_t r : rows) {
      if (col.is_null[r]) continue;
      if (col.numeric[r]) {
        sum += col.number[r];
      } else {
        // Non-numeric cell: surface the exact scan-path TypeError.
        UCTR_ASSIGN_OR_RETURN(double x, table.cell(r, col_idx).ToNumber());
        sum += x;
      }
      ++n;
    }
    if (n == 0) {
      return Status::EmptyResult(agg == AggFunc::kSum ? "SUM over no rows"
                                                      : "AVG over no rows");
    }
    return Value::Number(agg == AggFunc::kSum ? sum
                                              : sum / static_cast<double>(n));
  }

  // MIN / MAX: linear pass with cached comparison keys; ties keep the
  // earliest row, exactly like the scan.
  bool first = true;
  size_t best_row = 0;
  for (size_t r : rows) {
    if (col.is_null[r]) continue;
    if (first) {
      best_row = r;
      first = false;
    } else if (agg == AggFunc::kMin
                   ? TableIndex::CompareRows(col, r, best_row) < 0
                   : TableIndex::CompareRows(col, r, best_row) > 0) {
      best_row = r;
    }
  }
  if (first) return Status::EmptyResult("MIN/MAX over no rows");
  return table.cell(best_row, col_idx);
}

}  // namespace internal

namespace {

/// Executor instruments, resolved once (thread-safe function-local
/// statics) so the per-query cost is relaxed atomic adds. Row work is
/// accumulated locally per query and added in one shot.
struct SqlInstruments {
  obs::Counter* exec_indexed;
  obs::Counter* exec_scan;
  obs::Counter* rows_scanned;
  static const SqlInstruments& Get() {
    static const SqlInstruments inst = [] {
      obs::MetricsRegistry& r = obs::DefaultRegistry();
      return SqlInstruments{r.counter("sql_exec_total{path=\"indexed\"}"),
                            r.counter("sql_exec_total{path=\"scan\"}"),
                            r.counter("sql_rows_scanned_total")};
    }();
    return inst;
  }
};

/// WHERE evaluation through the index. Conditions are applied in order to
/// a shrinking row set; an exhausted set stops early, matching the scan
/// path (which never resolves a condition's column once no row reaches
/// it). Equality against a non-numeric literal uses the hash index.
Result<std::vector<size_t>> FilterIndexed(const std::vector<Condition>& where,
                                          const Table& table,
                                          const TableIndex& index,
                                          size_t* rows_scanned) {
  std::vector<size_t> rows(table.num_rows());
  std::iota(rows.begin(), rows.end(), size_t{0});
  for (const Condition& cond : where) {
    if (rows.empty()) break;
    UCTR_ASSIGN_OR_RETURN(size_t c, table.ColumnIndex(cond.column));
    const TableIndex::Column& col = index.column(c);
    TableIndex::LiteralKey lit(cond.literal);
    internal::FilterOneIndexed(col, cond.op, lit, &rows, rows_scanned);
  }
  return rows;
}

/// Resolves a SelectItem's column (when needed) then aggregates.
Result<Value> EvalAggregateItem(const SelectItem& item, const Table& table,
                                const TableIndex* index,
                                const std::vector<size_t>& rows) {
  size_t c = 0;
  if (!item.star) {
    UCTR_ASSIGN_OR_RETURN(c, table.ColumnIndex(item.column));
  }
  if (index != nullptr) {
    return internal::EvalAggregateIndexed(item.agg, item.star, item.distinct,
                                          c, table, *index, rows);
  }
  return internal::EvalAggregate(item.agg, item.star, item.distinct, c, table,
                                 rows);
}

}  // namespace

Result<ExecResult> Execute(const SelectStatement& stmt, const Table& table,
                           const ExecOptions& opts) {
  // The table-level switch covers degraded serving: a table whose index
  // warming faulted executes on the scan path regardless of opts.
  const TableIndex* index =
      opts.use_index && table.index_enabled() ? &table.index() : nullptr;
  const SqlInstruments& inst = SqlInstruments::Get();
  (index ? inst.exec_indexed : inst.exec_scan)->Increment();
  size_t rows_scanned = 0;

  // 1. Filter.
  std::vector<size_t> rows;
  if (index) {
    UCTR_ASSIGN_OR_RETURN(
        rows, FilterIndexed(stmt.where, table, *index, &rows_scanned));
  } else {
    rows_scanned = table.num_rows();
    for (size_t r = 0; r < table.num_rows(); ++r) {
      bool keep = true;
      for (const Condition& cond : stmt.where) {
        UCTR_ASSIGN_OR_RETURN(size_t c, table.ColumnIndex(cond.column));
        if (!internal::EvalCondition(cond.op, cond.literal, table.cell(r, c))) {
          keep = false;
          break;
        }
      }
      if (keep) rows.push_back(r);
    }
  }
  inst.rows_scanned->Increment(rows_scanned);

  // 2. Order.
  if (stmt.order_by) {
    UCTR_ASSIGN_OR_RETURN(size_t c, table.ColumnIndex(stmt.order_by->column));
    bool desc = stmt.order_by->descending;
    if (index) {
      const TableIndex::Column& col = index->column(c);
      std::stable_sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
        int cmp = TableIndex::CompareRows(col, a, b);
        return desc ? cmp > 0 : cmp < 0;
      });
    } else {
      std::stable_sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
        int cmp = table.cell(a, c).Compare(table.cell(b, c));
        return desc ? cmp > 0 : cmp < 0;
      });
    }
  }

  // 3. Limit.
  if (stmt.limit && *stmt.limit >= 0 &&
      rows.size() > static_cast<size_t>(*stmt.limit)) {
    rows.resize(static_cast<size_t>(*stmt.limit));
  }

  // 4. Project.
  bool any_aggregate = false;
  for (const SelectItem& item : stmt.items) {
    if (item.agg != AggFunc::kNone) any_aggregate = true;
  }

  ExecResult result;
  result.evidence_rows = rows;
  if (any_aggregate) {
    for (const SelectItem& item : stmt.items) {
      if (item.agg == AggFunc::kNone) {
        return Status::InvalidArgument(
            "mixing aggregates and plain columns is not supported");
      }
      Result<Value> v = EvalAggregateItem(item, table, index, rows);
      UCTR_RETURN_NOT_OK(v.status());
      result.values.push_back(std::move(v).ValueOrDie());
    }
    // COUNT over an empty filter is a legitimate 0 answer, but evidence-free
    // results are useless for training samples; keep them (the generator
    // applies its own EmptyResult policy on values, not rows).
    return result;
  }

  for (size_t r : rows) {
    for (const SelectItem& item : stmt.items) {
      UCTR_ASSIGN_OR_RETURN(size_t c, table.ColumnIndex(item.column));
      const Value& lhs = table.cell(r, c);
      if (item.arith == ArithOp::kNone) {
        if (!lhs.is_null()) result.values.push_back(lhs);
        continue;
      }
      UCTR_ASSIGN_OR_RETURN(size_t c2, table.ColumnIndex(item.rhs_column));
      const Value& rhs = table.cell(r, c2);
      UCTR_ASSIGN_OR_RETURN(double a, lhs.ToNumber());
      UCTR_ASSIGN_OR_RETURN(double b, rhs.ToNumber());
      result.values.push_back(
          Value::Number(item.arith == ArithOp::kAdd ? a + b : a - b));
    }
  }
  if (result.values.empty()) {
    return Status::EmptyResult("query matched no rows");
  }
  return result;
}

Result<ExecResult> ExecuteQuery(std::string_view query, const Table& table,
                                const ExecOptions& opts) {
  UCTR_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(query));
  return Execute(stmt, table, opts);
}

}  // namespace uctr::sql
