#include "sql/executor.h"

#include <algorithm>
#include <set>

#include "common/numeric.h"
#include "sql/parser.h"

namespace uctr::sql {

namespace {

bool EvalCondition(const Condition& cond, const Value& cell) {
  if (cell.is_null()) return false;
  switch (cond.op) {
    case CmpOp::kEq:
      return cell.Equals(cond.literal);
    case CmpOp::kNe:
      return !cell.Equals(cond.literal);
    case CmpOp::kLt:
      return cell.Compare(cond.literal) < 0;
    case CmpOp::kGt:
      return cell.Compare(cond.literal) > 0;
    case CmpOp::kLe:
      return cell.Compare(cond.literal) <= 0;
    case CmpOp::kGe:
      return cell.Compare(cond.literal) >= 0;
  }
  return false;
}

Result<Value> EvalAggregate(const SelectItem& item, const Table& table,
                            const std::vector<size_t>& rows) {
  if (item.agg == AggFunc::kCount) {
    if (item.star) return Value::Number(static_cast<double>(rows.size()));
    UCTR_ASSIGN_OR_RETURN(size_t c, table.ColumnIndex(item.column));
    if (item.distinct) {
      std::set<std::string> seen;
      for (size_t r : rows) {
        const Value& v = table.cell(r, c);
        if (!v.is_null()) seen.insert(v.ToDisplayString());
      }
      return Value::Number(static_cast<double>(seen.size()));
    }
    size_t count = 0;
    for (size_t r : rows) {
      if (!table.cell(r, c).is_null()) ++count;
    }
    return Value::Number(static_cast<double>(count));
  }

  UCTR_ASSIGN_OR_RETURN(size_t c, table.ColumnIndex(item.column));
  double sum = 0;
  size_t n = 0;
  bool first = true;
  Value best;
  for (size_t r : rows) {
    const Value& v = table.cell(r, c);
    if (v.is_null()) continue;
    if (item.agg == AggFunc::kSum || item.agg == AggFunc::kAvg) {
      UCTR_ASSIGN_OR_RETURN(double x, v.ToNumber());
      sum += x;
      ++n;
    } else {  // MIN / MAX
      if (first) {
        best = v;
        first = false;
      } else if (item.agg == AggFunc::kMin ? v.Compare(best) < 0
                                           : v.Compare(best) > 0) {
        best = v;
      }
    }
  }
  switch (item.agg) {
    case AggFunc::kSum:
      if (n == 0) return Status::EmptyResult("SUM over no rows");
      return Value::Number(sum);
    case AggFunc::kAvg:
      if (n == 0) return Status::EmptyResult("AVG over no rows");
      return Value::Number(sum / static_cast<double>(n));
    case AggFunc::kMin:
    case AggFunc::kMax:
      if (first) return Status::EmptyResult("MIN/MAX over no rows");
      return best;
    default:
      return Status::Internal("unexpected aggregate");
  }
}

}  // namespace

Result<ExecResult> Execute(const SelectStatement& stmt, const Table& table) {
  // 1. Filter.
  std::vector<size_t> rows;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    bool keep = true;
    for (const Condition& cond : stmt.where) {
      UCTR_ASSIGN_OR_RETURN(size_t c, table.ColumnIndex(cond.column));
      if (!EvalCondition(cond, table.cell(r, c))) {
        keep = false;
        break;
      }
    }
    if (keep) rows.push_back(r);
  }

  // 2. Order.
  if (stmt.order_by) {
    UCTR_ASSIGN_OR_RETURN(size_t c, table.ColumnIndex(stmt.order_by->column));
    bool desc = stmt.order_by->descending;
    std::stable_sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
      int cmp = table.cell(a, c).Compare(table.cell(b, c));
      return desc ? cmp > 0 : cmp < 0;
    });
  }

  // 3. Limit.
  if (stmt.limit && *stmt.limit >= 0 &&
      rows.size() > static_cast<size_t>(*stmt.limit)) {
    rows.resize(static_cast<size_t>(*stmt.limit));
  }

  // 4. Project.
  bool any_aggregate = false;
  for (const SelectItem& item : stmt.items) {
    if (item.agg != AggFunc::kNone) any_aggregate = true;
  }

  ExecResult result;
  result.evidence_rows = rows;
  if (any_aggregate) {
    for (const SelectItem& item : stmt.items) {
      if (item.agg == AggFunc::kNone) {
        return Status::InvalidArgument(
            "mixing aggregates and plain columns is not supported");
      }
      UCTR_ASSIGN_OR_RETURN(Value v, EvalAggregate(item, table, rows));
      result.values.push_back(std::move(v));
    }
    // COUNT over an empty filter is a legitimate 0 answer, but evidence-free
    // results are useless for training samples; keep them (the generator
    // applies its own EmptyResult policy on values, not rows).
    return result;
  }

  for (size_t r : rows) {
    for (const SelectItem& item : stmt.items) {
      UCTR_ASSIGN_OR_RETURN(size_t c, table.ColumnIndex(item.column));
      const Value& lhs = table.cell(r, c);
      if (item.arith == ArithOp::kNone) {
        if (!lhs.is_null()) result.values.push_back(lhs);
        continue;
      }
      UCTR_ASSIGN_OR_RETURN(size_t c2, table.ColumnIndex(item.rhs_column));
      const Value& rhs = table.cell(r, c2);
      UCTR_ASSIGN_OR_RETURN(double a, lhs.ToNumber());
      UCTR_ASSIGN_OR_RETURN(double b, rhs.ToNumber());
      result.values.push_back(
          Value::Number(item.arith == ArithOp::kAdd ? a + b : a - b));
    }
  }
  if (result.values.empty()) {
    return Status::EmptyResult("query matched no rows");
  }
  return result;
}

Result<ExecResult> ExecuteQuery(std::string_view query, const Table& table) {
  UCTR_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(query));
  return Execute(stmt, table);
}

}  // namespace uctr::sql
