#ifndef UCTR_SQL_TOKEN_H_
#define UCTR_SQL_TOKEN_H_

#include <string>

namespace uctr::sql {

enum class TokenType {
  kKeyword,     // SELECT, FROM, WHERE, ...
  kIdentifier,  // column names, bare or [bracketed] / `backquoted`
  kNumber,
  kString,  // 'quoted' or "quoted"
  kComma,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kEq,  // =
  kNe,  // != or <>
  kLt,
  kGt,
  kLe,
  kGe,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier/keyword (keywords uppercased) or literal
  double number = 0;  // for kNumber
  size_t offset = 0;  // byte offset in the source, for error messages
};

}  // namespace uctr::sql

#endif  // UCTR_SQL_TOKEN_H_
