#include "sql/ast.h"

#include <cctype>

#include "common/string_util.h"

namespace uctr::sql {

namespace {

bool NeedsBrackets(const std::string& name) {
  if (name.empty()) return true;
  // A leading digit would lex as a number, and keyword collisions ("count")
  // would lex as keywords; bracket those too.
  if (std::isdigit(static_cast<unsigned char>(name[0]))) return true;
  for (const char* kw : {"select", "from", "where", "and", "or", "order",
                         "by", "asc", "desc", "limit", "count", "sum", "avg",
                         "min", "max", "distinct"}) {
    if (EqualsIgnoreCase(name, kw)) return true;
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return true;
    }
  }
  return false;
}

std::string QuoteIdent(const std::string& name) {
  if (NeedsBrackets(name)) return "[" + name + "]";
  return name;
}

std::string QuoteLiteral(const Value& v) {
  if (v.is_number() || v.is_bool()) return v.ToDisplayString();
  return "'" + v.ToDisplayString() + "'";
}

}  // namespace

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "";
}

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

std::string SelectStatement::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = items[i];
    if (item.agg != AggFunc::kNone) {
      out += AggFuncToString(item.agg);
      out += "(";
      if (item.distinct) out += "DISTINCT ";
      out += item.star ? "*" : QuoteIdent(item.column);
      out += ")";
    } else if (item.arith != ArithOp::kNone) {
      out += QuoteIdent(item.column);
      out += item.arith == ArithOp::kAdd ? " + " : " - ";
      out += QuoteIdent(item.rhs_column);
    } else {
      out += QuoteIdent(item.column);
    }
  }
  out += " FROM w";
  for (size_t i = 0; i < where.size(); ++i) {
    out += (i == 0) ? " WHERE " : " AND ";
    out += QuoteIdent(where[i].column);
    out += " ";
    out += CmpOpToString(where[i].op);
    out += " ";
    out += QuoteLiteral(where[i].literal);
  }
  if (order_by) {
    out += " ORDER BY " + QuoteIdent(order_by->column);
    out += order_by->descending ? " DESC" : " ASC";
  }
  if (limit) {
    out += " LIMIT " + std::to_string(*limit);
  }
  return out;
}

}  // namespace uctr::sql
