#ifndef UCTR_IR_IR_H_
#define UCTR_IR_IR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "table/exec_result.h"
#include "table/index.h"
#include "table/table.h"

namespace uctr::sql {
struct SelectStatement;
}
namespace uctr::logic {
struct Node;
}
namespace uctr::arith {
struct Expression;
}

/// Unified program IR: the three program families (SQUALL SQL, LOGIC2TEXT
/// logical forms, FinQA arithmetic) lower into one typed register bytecode
/// executed by a single VM over TableIndex accessors (UniRPG's unification
/// insight applied to the executor layer).
///
/// Contract with the tree-walk executors (sql/logic/arith): a program that
/// compiles executes byte-identically to its walker — same values, same
/// evidence rows, same error Status, proven differentially by
/// tests/ir_test.cc. Anything the lowering cannot reproduce exactly
/// (unknown columns, wrong arity, static type mismatches, unsupported
/// operand shapes) is rejected at compile time and the caller falls back
/// to the walker, so observable behavior never diverges. The VM ops call
/// the walkers' own row-level primitives (sql/logic/arith exec_internal.h),
/// making identity hold by construction on the accepted subset.
namespace uctr::ir {

/// \brief The program family a plan was compiled from. Kept separate from
/// uctr::ProgramType so uctr_ir does not depend on uctr_program (which
/// links against this library).
enum class Family : uint8_t {
  kSql = 0,
  kLogic = 1,
  kArith = 2,
};

const char* FamilyToString(Family family);

/// \brief Register bytecode opcodes. Registers are typed slots holding
/// either a row view (ordered row-index vector) or a scalar Value; the
/// verifier tracks types statically so the VM never checks at runtime.
enum class Op : uint16_t {
  kInvalid = 0,
  // -- shared --
  kLoadConst,   ///< dst(val) <- pool[imm]
  kAllRows,     ///< dst(rows) <- [0, num_rows)
  // -- sql --
  kSqlFilter,   ///< dst(rows) <- rows of a matching `col(imm) cmp(imm2) pool[b]`
  kOrderBy,     ///< dst(rows) <- a stable-sorted by col(imm); imm2 = descending
  kLimit,       ///< dst(rows) <- first imm rows of a
  kSqlAgg,      ///< dst(val) <- aggregate over rows a; imm = col,
                ///<   imm2 = agg | star<<8 | distinct<<9
  kEmitValue,   ///< out_values.push(a)
  kSqlProject,  ///< plain projection over rows a; items aux[imm, imm+3*imm2)
  kReturnSql,   ///< finish: evidence = rows a; imm = any_aggregate
  // -- logic --
  kFilterCmp,   ///< dst(rows) <- rows of view a matching `col(imm) cmp(imm2) b`
  kFilterAll,   ///< dst(rows) <- non-null rows of view a on col(imm)
  kMajority,    ///< dst(val Bool) <- majority/all of view a on col(imm) vs b;
                ///<   imm2 = cmp | require_all<<8
  kArgSuper,    ///< dst(rows,1) <- nth best row of view a by col(imm);
                ///<   imm2 = max | nth<<1; ordinal scalar in b when nth
  kCellFirst,   ///< dst(val) <- cell(a.rows[0], col(imm)); no evidence
  kHop,         ///< dst(val) <- cell(a.rows[0], col(imm)); evidence first row
  kCount,       ///< dst(val) <- Number(|a|); evidence a
  kLogicAgg,    ///< dst(val) <- sum/avg of view a on col(imm); imm2 = average
  kDiff,        ///< dst(val) <- Number(a - b)
  kBoolCmp,     ///< dst(val Bool) <- a cmp b; imm2: 0 eq, 1 not_eq,
                ///<   2 round_eq, 3 greater, 4 less
  kBoolAndOr,   ///< dst(val Bool) <- a op b; imm2 = is_and
  kBoolNot,     ///< dst(val Bool) <- !a
  kOnly,        ///< dst(val Bool) <- |a| == 1; evidence a
  kReturnLogic, ///< finish: result reg a; imm = is_view
  // -- arith --
  kCellLookup,  ///< dst(val) <- cell ref via pool strings aux[imm..imm+3)
                ///<   (column, row, original text); evidence
  kArithBin,    ///< dst(val) <- binop(a, b); imm2: 0 add, 1 subtract,
                ///<   2 multiply, 3 divide, 4 greater, 5 exp
  kTableAgg,    ///< dst(val) <- series aggregate of pool[imm].text();
                ///<   imm2: 0 max, 1 min, 2 sum, 3 average; evidence
  kReturnArith, ///< finish: answer reg a; evidence = sorted reads
};

/// \brief One fixed-width instruction (16 bytes). `imm` usually carries a
/// resolved column index or an aux offset, `imm2` packed flags.
struct Insn {
  uint16_t op = 0;
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint32_t imm = 0;
  uint32_t imm2 = 0;
};

/// \brief A compiled program: flat bytecode plus its constant pool, valid
/// for any table whose schema fingerprint matches `schema_fp` (column
/// names and types; cell contents are free to differ — plans are
/// value-independent). Immutable after compilation; safe to share across
/// threads behind shared_ptr<const Plan>.
struct Plan {
  Family family = Family::kSql;
  uint16_t num_regs = 0;
  uint32_t num_columns = 0;  ///< schema width the plan was compiled against
  uint64_t schema_fp = 0;
  std::vector<Value> pool;      ///< literals, resolved at compile time
  std::vector<uint32_t> aux;    ///< variable-length operand lists
  std::vector<Insn> code;

  /// Derived from `pool`, never serialized: each literal pre-analyzed as a
  /// predicate key (null/numeric/normalized text), so filters pay zero
  /// per-execution parsing or normalization. Compile() and DecodePlan()
  /// populate it; hand-built plans may leave it empty — the VM falls back
  /// to constructing keys on the fly (KeyFor returns nullptr).
  std::vector<TableIndex::LiteralKey> pool_keys;

  void RebuildPoolKeys();
  const TableIndex::LiteralKey* KeyFor(size_t i) const {
    return i < pool_keys.size() ? &pool_keys[i] : nullptr;
  }
};

/// \brief 64-bit FNV-1a over a schema's column names and types — the cache
/// identity of a plan. Cell contents do not participate: the same plan
/// serves every table with this shape.
uint64_t SchemaFingerprint(const Schema& schema);

/// \brief 64-bit FNV-1a over (family tag, program text).
uint64_t ProgramFingerprint(Family family, std::string_view text);

/// \brief FNV-1a over raw bytes (exposed for the codec and its tests).
uint64_t Fnv1a(const void* data, size_t size);

/// \brief Parses `text` as `family` and lowers it against `schema`.
/// Rejection (non-OK) means "run the tree-walk instead", not "the program
/// is wrong": the walker is the behavioral reference for everything the
/// bytecode cannot reproduce exactly.
Result<Plan> Compile(Family family, std::string_view text,
                     const Schema& schema);

/// Lowering from already-parsed ASTs (callers holding one skip the parse).
Result<Plan> LowerSql(const sql::SelectStatement& stmt, const Schema& schema);
Result<Plan> LowerLogic(const logic::Node& node, const Schema& schema);
Result<Plan> LowerArith(const arith::Expression& expr, const Schema& schema);

/// \brief Static checks making a plan safe to execute: register bounds and
/// type consistency (abstract interpretation over rows/value slot types),
/// pool/aux/column bounds, packed-flag ranges, and a single family-matching
/// return as the final instruction. Compile output always verifies;
/// DecodePlan runs this on everything it accepts.
Status VerifyPlan(const Plan& plan);

struct VmOptions {
  /// Mirrors the walkers' use_index: read through Table::index() when the
  /// table allows it, otherwise take the bit-identical scan path.
  bool use_index = true;
};

/// \brief Executes a verified plan. The table's schema fingerprint must
/// match the plan's (InvalidArgument otherwise — the plan cache keys on it,
/// so a schema change can never execute a stale plan).
Result<ExecResult> ExecutePlan(const Plan& plan, const Table& table,
                               const VmOptions& opts = VmOptions());

/// \brief Serializes a plan: versioned header, constant pool, aux, code,
/// trailing FNV-1a checksum. Encode does not validate — tests round-trip
/// deliberately broken plans to prove DecodePlan rejects them.
std::string EncodePlan(const Plan& plan);

/// \brief Total decoder: any byte string returns either a verified plan or
/// an error Status — never crashes, never reads out of bounds, never
/// returns an unverified plan (same contract as the store codec).
Result<Plan> DecodePlan(std::string_view bytes);

}  // namespace uctr::ir

#endif  // UCTR_IR_IR_H_
