#include "ir/plan_cache.h"

namespace uctr::ir {

PlanCache::PlanCache(size_t capacity, size_t num_shards,
                     obs::MetricsRegistry* metrics) {
  if (capacity < 1) capacity = 1;
  if (num_shards < 1) num_shards = 1;
  if (num_shards > capacity) num_shards = capacity;
  shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (metrics != nullptr) {
    hits_ = metrics->counter("plan_cache_hits_total");
    misses_ = metrics->counter("plan_cache_misses_total");
    evictions_ = metrics->counter("plan_cache_evictions_total");
    compiles_ = metrics->counter("plan_compiles_total");
  }
}

size_t PlanCache::KeyHash::operator()(const Key& k) const {
  // Splitmix-style finalize over the xor of the two fingerprints; both are
  // already FNV-avalanched, the mix just decorrelates shard selection.
  uint64_t h = k.program_fp ^ (k.schema_fp * 0x9E3779B97F4A7C15ULL);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  return static_cast<size_t>(h);
}

size_t PlanCache::ShardIndex(const Key& key) const {
  return KeyHash{}(key) % shards_.size();
}

std::optional<std::shared_ptr<const Plan>> PlanCache::Get(uint64_t program_fp,
                                                          uint64_t schema_fp) {
  Key key{program_fp, schema_fp};
  Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    if (misses_ != nullptr) misses_->Increment();
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (hits_ != nullptr) hits_->Increment();
  return it->second->second;
}

void PlanCache::Put(uint64_t program_fp, uint64_t schema_fp,
                    std::shared_ptr<const Plan> plan) {
  Key key{program_fp, schema_fp};
  Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    if (evictions_ != nullptr) evictions_->Increment();
  }
  shard.lru.emplace_front(key, std::move(plan));
  shard.index[key] = shard.lru.begin();
}

void PlanCache::NoteCompile() {
  if (compiles_ != nullptr) compiles_->Increment();
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

PlanCache& PlanCache::Default() {
  static PlanCache* cache =
      new PlanCache(1024, 8, &obs::DefaultRegistry());
  return *cache;
}

}  // namespace uctr::ir
