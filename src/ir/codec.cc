#include <cstring>
#include <limits>
#include <string>

#include "ir/ir.h"

/// Plan wire codec. Same discipline as the store codec (store/codec.cc):
/// encode is a straight dump, decode is *total* — every read is
/// bounds-checked, every count capped before allocation, a trailing FNV-1a
/// checksum rejects torn bytes, and whatever survives still has to pass
/// VerifyPlan before a caller can execute it.
namespace uctr::ir {

namespace {

constexpr uint32_t kMagic = 0x55504C4Eu;  // "UPLN"
constexpr uint32_t kVersion = 1;

// Caps chosen far above anything the lowerings emit but small enough that
// a hostile length field cannot drive a large allocation.
constexpr uint32_t kMaxPoolEntries = 1u << 16;
constexpr uint32_t kMaxAuxEntries = 1u << 20;
constexpr uint32_t kMaxCodeEntries = 1u << 20;
constexpr uint32_t kMaxTextBytes = 1u << 20;

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked little-endian reader over the input bytes.
struct Reader {
  const uint8_t* p;
  size_t size;
  size_t pos = 0;

  bool Take(size_t n, const uint8_t** out) {
    if (n > size - pos) return false;  // pos <= size always holds
    *out = p + pos;
    pos += n;
    return true;
  }
  bool U8(uint8_t* v) {
    const uint8_t* q;
    if (!Take(1, &q)) return false;
    *v = q[0];
    return true;
  }
  bool U16(uint16_t* v) {
    const uint8_t* q;
    if (!Take(2, &q)) return false;
    *v = static_cast<uint16_t>(q[0] | q[1] << 8);
    return true;
  }
  bool U32(uint32_t* v) {
    const uint8_t* q;
    if (!Take(4, &q)) return false;
    *v = static_cast<uint32_t>(q[0]) | static_cast<uint32_t>(q[1]) << 8 |
         static_cast<uint32_t>(q[2]) << 16 | static_cast<uint32_t>(q[3]) << 24;
    return true;
  }
  bool U64(uint64_t* v) {
    uint32_t lo, hi;
    if (!U32(&lo) || !U32(&hi)) return false;
    *v = static_cast<uint64_t>(hi) << 32 | lo;
    return true;
  }
};

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("plan decode: " + what);
}

}  // namespace

std::string EncodePlan(const Plan& plan) {
  std::string out;
  PutU32(&out, kMagic);
  PutU32(&out, kVersion);
  PutU8(&out, static_cast<uint8_t>(plan.family));
  PutU16(&out, plan.num_regs);
  PutU32(&out, plan.num_columns);
  PutU64(&out, plan.schema_fp);

  PutU32(&out, static_cast<uint32_t>(plan.pool.size()));
  for (const Value& v : plan.pool) {
    PutU8(&out, static_cast<uint8_t>(v.type()));
    double num = v.is_number() ? v.number() : (v.is_bool() ? (v.boolean() ? 1 : 0) : 0);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(num));
    std::memcpy(&bits, &num, sizeof(bits));
    PutU64(&out, bits);
    PutString(&out, v.text());
  }

  PutU32(&out, static_cast<uint32_t>(plan.aux.size()));
  for (uint32_t a : plan.aux) PutU32(&out, a);

  PutU32(&out, static_cast<uint32_t>(plan.code.size()));
  for (const Insn& insn : plan.code) {
    PutU16(&out, insn.op);
    PutU16(&out, insn.dst);
    PutU16(&out, insn.a);
    PutU16(&out, insn.b);
    PutU32(&out, insn.imm);
    PutU32(&out, insn.imm2);
  }

  PutU64(&out, Fnv1a(out.data(), out.size()));
  return out;
}

Result<Plan> DecodePlan(std::string_view bytes) {
  if (bytes.size() < 8 + 8) return Corrupt("truncated header");
  // Checksum first: everything after it assumes intact bytes.
  size_t body = bytes.size() - 8;
  Reader tail{reinterpret_cast<const uint8_t*>(bytes.data() + body), 8};
  uint64_t want = 0;
  tail.U64(&want);
  if (Fnv1a(bytes.data(), body) != want) return Corrupt("checksum mismatch");

  Reader r{reinterpret_cast<const uint8_t*>(bytes.data()), body};
  uint32_t magic = 0, version = 0;
  if (!r.U32(&magic) || magic != kMagic) return Corrupt("bad magic");
  if (!r.U32(&version) || version != kVersion) {
    return Corrupt("unsupported version");
  }

  Plan plan;
  uint8_t family = 0;
  if (!r.U8(&family) || family > 2) return Corrupt("bad family");
  plan.family = static_cast<Family>(family);
  if (!r.U16(&plan.num_regs)) return Corrupt("truncated register count");
  if (!r.U32(&plan.num_columns)) return Corrupt("truncated column count");
  if (!r.U64(&plan.schema_fp)) return Corrupt("truncated fingerprint");

  uint32_t pool_count = 0;
  if (!r.U32(&pool_count) || pool_count > kMaxPoolEntries) {
    return Corrupt("bad pool count");
  }
  plan.pool.reserve(pool_count);
  for (uint32_t i = 0; i < pool_count; ++i) {
    uint8_t type = 0;
    uint64_t bits = 0;
    uint32_t len = 0;
    if (!r.U8(&type) || !r.U64(&bits) || !r.U32(&len)) {
      return Corrupt("truncated pool entry");
    }
    if (len > kMaxTextBytes) return Corrupt("pool text too large");
    const uint8_t* text_bytes;
    if (!r.Take(len, &text_bytes)) return Corrupt("truncated pool text");
    std::string text(reinterpret_cast<const char*>(text_bytes), len);
    double num;
    std::memcpy(&num, &bits, sizeof(num));
    switch (static_cast<ValueType>(type)) {
      case ValueType::kNull:
        plan.pool.push_back(Value::Null());
        break;
      case ValueType::kString:
        plan.pool.push_back(Value::String(std::move(text)));
        break;
      case ValueType::kNumber:
        plan.pool.push_back(text.empty()
                                ? Value::Number(num)
                                : Value::NumberWithText(num, std::move(text)));
        break;
      case ValueType::kBool:
        plan.pool.push_back(Value::Bool(num != 0));
        break;
      default:
        return Corrupt("bad pool value type");
    }
  }

  uint32_t aux_count = 0;
  if (!r.U32(&aux_count) || aux_count > kMaxAuxEntries) {
    return Corrupt("bad aux count");
  }
  plan.aux.reserve(aux_count);
  for (uint32_t i = 0; i < aux_count; ++i) {
    uint32_t a = 0;
    if (!r.U32(&a)) return Corrupt("truncated aux entry");
    plan.aux.push_back(a);
  }

  uint32_t code_count = 0;
  if (!r.U32(&code_count) || code_count > kMaxCodeEntries) {
    return Corrupt("bad code count");
  }
  plan.code.reserve(code_count);
  for (uint32_t i = 0; i < code_count; ++i) {
    Insn insn;
    if (!r.U16(&insn.op) || !r.U16(&insn.dst) || !r.U16(&insn.a) ||
        !r.U16(&insn.b) || !r.U32(&insn.imm) || !r.U32(&insn.imm2)) {
      return Corrupt("truncated instruction");
    }
    plan.code.push_back(insn);
  }

  if (r.pos != body) return Corrupt("trailing bytes");
  UCTR_RETURN_NOT_OK(VerifyPlan(plan));
  // Derived field, not part of the wire format: rebuild after the plan is
  // proven well-formed so decoded plans execute as fast as compiled ones.
  plan.RebuildPoolKeys();
  return plan;
}

}  // namespace uctr::ir
