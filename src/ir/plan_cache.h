#ifndef UCTR_IR_PLAN_CACHE_H_
#define UCTR_IR_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/ir.h"
#include "obs/metrics.h"

namespace uctr::ir {

/// \brief Sharded LRU cache of compiled plans, keyed by
/// (program fingerprint, schema fingerprint). A hit hands back an
/// immutable shared plan: execution touches neither parser nor AST.
///
/// Negative entries: a null plan records "this program is not
/// bytecode-compilable against this schema", so hot unsupported templates
/// skip re-lowering on every request and go straight to the tree-walk.
///
/// Keying on the *schema* fingerprint (column names + types, not cell
/// contents) means one plan serves every table with that shape, and any
/// schema change — renamed column, type drift — misses and recompiles.
/// A first-compile race is benign: both threads compile the same
/// deterministic plan and the second Put simply refreshes the entry.
class PlanCache {
 public:
  /// \param capacity total entry budget (>= 1), split across shards.
  /// \param num_shards clamped to >= 1.
  /// \param metrics optional; records `plan_cache_hits_total`,
  ///        `plan_cache_misses_total`, `plan_cache_evictions_total`, and
  ///        `plan_compiles_total` (via NoteCompile).
  explicit PlanCache(size_t capacity, size_t num_shards = 8,
                     obs::MetricsRegistry* metrics = nullptr);

  /// \brief nullopt = miss (caller should compile and Put). A present
  /// value may still hold nullptr: known-unsupported, run the walker.
  std::optional<std::shared_ptr<const Plan>> Get(uint64_t program_fp,
                                                 uint64_t schema_fp);

  /// \brief Inserts or refreshes an entry (nullptr = negative entry),
  /// evicting the shard's LRU entry when the shard is at capacity.
  void Put(uint64_t program_fp, uint64_t schema_fp,
           std::shared_ptr<const Plan> plan);

  /// \brief Counts one compilation attempt (hit or reject) toward
  /// `plan_compiles_total`.
  void NoteCompile();

  /// \brief Total entries across all shards (approximate under concurrency).
  size_t size() const;

  size_t num_shards() const { return shards_.size(); }

  /// \brief Process-wide cache used when ExecOptions does not name one;
  /// registered against the default metrics registry.
  static PlanCache& Default();

 private:
  struct Key {
    uint64_t program_fp;
    uint64_t schema_fp;
    bool operator==(const Key& o) const {
      return program_fp == o.program_fp && schema_fp == o.schema_fp;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  using Entry = std::pair<Key, std::shared_ptr<const Plan>>;
  struct Shard {
    std::mutex mu;
    // Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
  };

  size_t ShardIndex(const Key& key) const;

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* compiles_ = nullptr;
};

}  // namespace uctr::ir

#endif  // UCTR_IR_PLAN_CACHE_H_
